// Package repro's root benchmarks time the building blocks behind every
// table and figure of the paper's evaluation, one group per experiment.
// They run the engines on the smaller suite members so a full
// `go test -bench=.` stays in the minutes range; regenerating the complete
// paper-scale tables is cmd/swiftbench's job.
package repro_test

import (
	"testing"

	"swift/internal/bench"
	"swift/internal/benchprog"
	"swift/internal/core"
	"swift/internal/driver"
	"swift/internal/hir"
	"swift/internal/pointer"
)

// build prepares a benchmark pipeline once per process.
var builds = map[string]*driver.Build{}

func buildFor(b *testing.B, name string) *driver.Build {
	b.Helper()
	if bl, ok := builds[name]; ok {
		return bl
	}
	p, ok := benchprog.ProfileByName(name)
	if !ok {
		b.Fatalf("unknown benchmark %s", name)
	}
	prog, err := benchprog.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	bl, err := driver.FromHIR(prog)
	if err != nil {
		b.Fatal(err)
	}
	builds[name] = bl
	return bl
}

func runEngine(b *testing.B, name, engine string, k, theta int) {
	b.Helper()
	bl := buildFor(b, name)
	cfg := core.DefaultConfig()
	cfg.K = k
	cfg.Theta = theta
	cfg.MaxPathEdges = 20_000_000
	cfg.MaxRelations = 5_000_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := bl.Run(engine, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Completed() {
			b.Fatalf("%s on %s did not finish: %v", engine, name, res.Err)
		}
	}
}

// BenchmarkTable1Characteristics times the pipeline work behind Table 1:
// generating a benchmark, building its call graph, and collecting its
// reachability statistics.
func BenchmarkTable1Characteristics(b *testing.B) {
	p, _ := benchprog.ProfileByName("toba-s")
	for i := 0; i < b.N; i++ {
		prog, err := benchprog.Generate(p)
		if err != nil {
			b.Fatal(err)
		}
		pts, err := pointer.Analyze(prog)
		if err != nil {
			b.Fatal(err)
		}
		st := pts.CollectStats()
		if st.ReachableMethods == 0 || hir.LineCount(prog) == 0 {
			b.Fatal("empty stats")
		}
	}
}

// BenchmarkTable2 times the three engines of Table 2 on the suite members
// every engine completes (the baselines are *expected* to exhaust their
// budgets on the larger ones, which is a result, not a benchmark).
func BenchmarkTable2(b *testing.B) {
	for _, name := range []string{"jpat-p", "elevator", "toba-s", "javasrc-p"} {
		for _, engine := range []string{"td", "bu", "swift"} {
			if engine == "bu" && name != "jpat-p" && name != "elevator" {
				continue // the unpruned baseline explodes beyond the smallest two
			}
			b.Run(name+"/"+engine, func(b *testing.B) {
				runEngine(b, name, engine, 5, 1)
			})
		}
	}
}

// BenchmarkTable2Large times the hybrid on the mid-size members where both
// baselines already struggle.
func BenchmarkTable2Large(b *testing.B) {
	for _, name := range []string{"hedc", "antlr", "kawa-c"} {
		b.Run(name+"/swift", func(b *testing.B) {
			runEngine(b, name, "swift", 5, 1)
		})
	}
}

// BenchmarkTable3VaryK sweeps the trigger threshold (Table 3's experiment)
// on a mid-size benchmark.
func BenchmarkTable3VaryK(b *testing.B) {
	for _, k := range []int{2, 5, 10, 50, 200} {
		b.Run(kName(k), func(b *testing.B) {
			runEngine(b, "javasrc-p", "swift", k, 1)
		})
	}
}

func kName(k int) string {
	return map[int]string{2: "k=2", 5: "k=5", 10: "k=10", 50: "k=50", 200: "k=200"}[k]
}

// BenchmarkTable4VaryTheta compares pruning widths (Table 4's experiment).
func BenchmarkTable4VaryTheta(b *testing.B) {
	for _, name := range []string{"toba-s", "javasrc-p", "hedc"} {
		for _, theta := range []int{1, 2} {
			b.Run(name+"/theta="+string(rune('0'+theta)), func(b *testing.B) {
				runEngine(b, name, "swift", 5, theta)
			})
		}
	}
}

// BenchmarkFigure5Series times producing the per-method summary series of
// Figure 5 (a TD run plus a SWIFT run plus the distribution extraction).
func BenchmarkFigure5Series(b *testing.B) {
	bl := buildFor(b, "toba-s")
	cfg := core.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tdCfg := cfg
		tdCfg.K = core.Unlimited
		td := bl.Core.RunTD(bl.TS.InitialState(), tdCfg)
		sw := bl.Core.RunSwift(bl.TS.InitialState(), cfg)
		if !td.Completed() || !sw.Completed() {
			b.Fatal("run failed")
		}
		n := 0
		for proc := range td.TD.Summaries {
			n += td.TD.SummaryCount(proc) + sw.TD.SummaryCount(proc)
		}
		if n == 0 {
			b.Fatal("no summaries")
		}
	}
}

// BenchmarkSuiteQuick exercises the whole table harness end to end at the
// reduced budget (the smoke configuration of cmd/swiftbench -quick).
func BenchmarkSuiteQuick(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := bench.NewSuite()
		if _, err := s.Run("toba-s", "swift", bench.QuickBudget(), 5, 1); err != nil {
			b.Fatal(err)
		}
	}
}
