// Command swift analyzes a mini-Java program with the SWIFT hybrid
// type-state analysis or one of its two conventional baselines.
//
// Usage:
//
//	swift [flags] program.mj
//
// The program file uses the mini-Java surface syntax of internal/source
// (see README.md). The tool builds the 0-CFA call graph, lowers the program
// to the command IR, runs the selected engine, and reports allocation sites
// whose tracked objects may reach a property error state, plus analysis
// statistics.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"swift/internal/core"
	"swift/internal/driver"
	"swift/internal/ir"
)

func main() {
	var (
		engine  = flag.String("engine", "swift", "analysis engine: swift, td or bu")
		k       = flag.Int("k", 5, "SWIFT trigger threshold k (distinct incoming states)")
		theta   = flag.Int("theta", 1, "SWIFT pruning width θ (relational cases kept)")
		timeout = flag.Duration("timeout", time.Minute, "wall-clock budget (0 = none)")
		edges   = flag.Int("max-path-edges", 20_000_000, "top-down path-edge budget")
		rels    = flag.Int("max-relations", 5_000_000, "bottom-up relation budget")
		stats   = flag.Bool("stats", false, "print per-procedure summary statistics")
		dumpBU  = flag.Bool("dump-summaries", false, "print bottom-up summaries (swift/bu engines)")
		dumpIR  = flag.Bool("dump-ir", false, "print the lowered command IR and exit")
		dumpCG  = flag.Bool("dump-callgraph", false, "print the 0-CFA call graph and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: swift [flags] program.mj\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	opts := options{
		engine: *engine, k: *k, theta: *theta, timeout: *timeout,
		edges: *edges, rels: *rels, stats: *stats,
		dumpBU: *dumpBU, dumpIR: *dumpIR, dumpCG: *dumpCG,
	}
	if err := run(os.Stdout, flag.Arg(0), opts); err != nil {
		fmt.Fprintln(os.Stderr, "swift:", err)
		os.Exit(1)
	}
}

// options carries the parsed flags; factored out so tests can drive run.
type options struct {
	engine         string
	k, theta       int
	timeout        time.Duration
	edges, rels    int
	stats          bool
	dumpBU         bool
	dumpIR, dumpCG bool
}

func run(w io.Writer, path string, o options) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	b, err := driver.FromSource(string(src))
	if err != nil {
		return err
	}
	if o.dumpIR {
		fmt.Fprint(w, ir.Print(b.Lowered.Prog))
		return nil
	}
	if o.dumpCG {
		for _, m := range b.Pointer.ReachableMethods() {
			fmt.Fprintf(w, "%s\n", m.QName())
			proc := b.Lowered.Prog.Procs[m.QName()]
			if proc == nil {
				continue
			}
			for _, callee := range ir.Callees(proc.Body) {
				fmt.Fprintf(w, "  -> %s\n", callee)
			}
		}
		return nil
	}

	ps := b.Pointer.CollectStats()
	fmt.Fprintf(w, "program: %d reachable methods, %d classes, %d allocation sites, %d tracked\n",
		ps.ReachableMethods, ps.ReachableClasses, ps.Sites, len(b.Lowered.Track))

	cfg := core.DefaultConfig()
	cfg.K = o.k
	cfg.Theta = o.theta
	cfg.Timeout = o.timeout
	cfg.MaxPathEdges = o.edges
	cfg.MaxRelations = o.rels
	res, err := b.Run(o.engine, cfg)
	if err != nil {
		return err
	}
	if !res.Completed() {
		return fmt.Errorf("engine %s did not finish: %v", o.engine, res.Err)
	}
	fmt.Fprintf(w, "engine %s finished in %v\n", o.engine, res.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "  top-down summaries: %d   bottom-up summaries: %d\n",
		res.TDSummaryTotal(), res.BUSummaryTotal())
	if o.engine == "swift" {
		fmt.Fprintf(w, "  bottom-up triggered on %d procedures; %d call events answered from summaries, %d analyzed top-down\n",
			len(res.Triggered), res.CallsViaBU, res.CallsViaTD)
	}

	errs, err := b.ErrorReport(res)
	if err != nil {
		return err
	}
	if len(errs) == 0 {
		fmt.Fprintln(w, "no type-state errors found")
	} else {
		fmt.Fprintf(w, "%d allocation site(s) may reach a property error state:\n", len(errs))
		for _, site := range errs {
			prop := b.Lowered.Track[site]
			name := "?"
			if prop != nil {
				name = prop.Name
			}
			fmt.Fprintf(w, "  %s (property %s)\n", site, name)
		}
	}

	if o.stats {
		type row struct {
			proc string
			n    int
		}
		var rows []row
		for proc := range res.TD.Summaries {
			rows = append(rows, row{proc, res.TD.SummaryCount(proc)})
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].n != rows[j].n {
				return rows[i].n > rows[j].n
			}
			return rows[i].proc < rows[j].proc
		})
		fmt.Fprintln(w, "per-procedure top-down summaries:")
		for _, r := range rows {
			fmt.Fprintf(w, "  %6d  %s\n", r.n, r.proc)
		}
	}
	if o.dumpBU {
		var names []string
		for name := range res.BU {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintln(w, "bottom-up summaries:")
		for _, name := range names {
			rs := res.BU[name]
			fmt.Fprintf(w, "  %s: %d relational case(s), %d ignored-set formula(s)\n",
				name, len(rs.Rels), len(rs.Sigma))
			for _, r := range rs.Rels {
				fmt.Fprintf(w, "    case %s\n", b.TS.RelString(r))
			}
			for _, q := range rs.Sigma {
				fmt.Fprintf(w, "    Σ    %s\n", b.TS.FormulaString(q))
			}
		}
	}
	return nil
}
