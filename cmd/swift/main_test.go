package main

import (
	"strings"
	"testing"
	"time"
)

func defaultOptions() options {
	return options{
		engine: "swift", k: 5, theta: 1, timeout: time.Minute,
		edges: 20_000_000, rels: 5_000_000,
	}
}

func TestCLIOnMirror(t *testing.T) {
	var b strings.Builder
	o := defaultOptions()
	o.k = 2
	o.stats = true
	o.dumpBU = true
	if err := run(&b, "../../testdata/mirror.mj", o); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"engine swift finished",
		"cacheFile (property File)",
		"retryConn (property Conn)",
		"per-procedure top-down summaries:",
		"bottom-up summaries:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "mainFile (property") {
		t.Error("clean site reported as error")
	}
}

func TestCLIEngines(t *testing.T) {
	for _, engine := range []string{"td", "bu"} {
		var b strings.Builder
		o := defaultOptions()
		o.engine = engine
		if err := run(&b, "../../testdata/mirror.mj", o); err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		if !strings.Contains(b.String(), "2 allocation site(s)") {
			t.Errorf("%s: error report missing:\n%s", engine, b.String())
		}
	}
}

func TestCLIDumps(t *testing.T) {
	var b strings.Builder
	o := defaultOptions()
	o.dumpIR = true
	if err := run(&b, "../../testdata/mirror.mj", o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "proc Mirror.fetch {") {
		t.Errorf("IR dump missing procedure:\n%.400s", b.String())
	}
	b.Reset()
	o = defaultOptions()
	o.dumpCG = true
	if err := run(&b, "../../testdata/mirror.mj", o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Main.main") || !strings.Contains(b.String(), "-> Mirror.fetch") {
		t.Errorf("call graph dump wrong:\n%s", b.String())
	}
}

func TestCLIErrors(t *testing.T) {
	o := defaultOptions()
	if err := run(&strings.Builder{}, "no-such-file.mj", o); err == nil {
		t.Error("missing file accepted")
	}
	o.engine = "bogus"
	if err := run(&strings.Builder{}, "../../testdata/mirror.mj", o); err == nil {
		t.Error("bogus engine accepted")
	}
}
