// Command swiftbench regenerates the paper's evaluation tables and figure
// on the synthetic benchmark suite:
//
//	swiftbench -table 1      benchmark characteristics (paper Table 1)
//	swiftbench -table 2      TD vs BU vs SWIFT costs and summaries (Table 2)
//	swiftbench -table 3      k sweep on the avrora stand-in (Table 3)
//	swiftbench -table 4      θ=1 vs θ=2 (Table 4)
//	swiftbench -figure 5     per-method summary distributions (Figure 5)
//	swiftbench -slices       site-sliced vs monolithic costs (sliced table)
//	swiftbench -all          everything
//
// -quick uses reduced budgets for a fast smoke run. -parallel bounds how
// many engine runs execute concurrently (default GOMAXPROCS); tables are
// byte-identical at any setting — only wall-clock changes, reported per run
// and in total on stderr. -sliceworkers bounds how many slices a single
// -slices run analyzes concurrently (default GOMAXPROCS); the sliced table
// too is byte-identical at any setting. -rawcfg and -nomemo time the
// superblock/memo ablations; they likewise leave every table byte-identical.
// -cpuprofile/-memprofile write pprof profiles; every engine run is labeled
// with its suite, engine and (when sliced) slice, so `go tool pprof -tags`
// attributes samples.
//
//	swiftbench -record DIR   record one live swift-async schedule per benchmark
//	swiftbench -replay DIR   render the swift-async table by replaying DIR
//
// Replay is bit-deterministic: the same trace directory renders the same
// table bytes at any -parallel setting. -faultevery N (with -faultseed)
// arms the chaos mode, injecting roughly one seeded client fault per N
// operations into every run; aborted runs render as DNF cells.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"swift/internal/bench"
)

func main() {
	var (
		tableN     = flag.Int("table", 0, "render table 1–4")
		figureN    = flag.Int("figure", 0, "render figure 5")
		all        = flag.Bool("all", false, "render every table and figure")
		quick      = flag.Bool("quick", false, "use reduced budgets (smoke run)")
		taint      = flag.Bool("taint", false, "run the kill/gen taint client generality experiment")
		ablation   = flag.Bool("ablation", false, "run the re-summarization ablation")
		verify     = flag.Bool("verify", false, "assert the paper's completion pattern holds")
		parallel   = flag.Int("parallel", runtime.GOMAXPROCS(0), "max concurrent engine runs (1 = serial)")
		slices     = flag.Bool("slices", false, "render the site-sliced vs monolithic cost table")
		sliceWkrs  = flag.Int("sliceworkers", runtime.GOMAXPROCS(0), "max concurrent slices per -slices run (1 = serial)")
		rawcfg     = flag.Bool("rawcfg", false, "run order-insensitive solvers on the uncompressed CFG view (A/B ablation; tables are identical, only timing changes)")
		nomemo     = flag.Bool("nomemo", false, "disable the per-superedge transfer caches (A/B ablation)")
		record     = flag.String("record", "", "record one live swift-async schedule per benchmark into this directory")
		replay     = flag.String("replay", "", "render the swift-async table by deterministically replaying the traces in this directory")
		faultevery = flag.Int64("faultevery", 0, "chaos mode: inject roughly one seeded client fault per N operations into every run (0 = off)")
		faultseed  = flag.Uint64("faultseed", 1, "seed for -faultevery's fault schedule")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if !*all && *tableN == 0 && *figureN == 0 && !*taint && !*ablation && !*verify &&
		!*slices && *record == "" && *replay == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "swiftbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "swiftbench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	budget := bench.DefaultBudget()
	if *quick {
		budget = bench.QuickBudget()
	}
	budget.RawCFG = *rawcfg
	budget.NoTransferMemo = *nomemo
	budget.FaultEvery = *faultevery
	budget.FaultSeed = *faultseed
	s := bench.NewSuite()
	s.Parallel = *parallel
	s.Telemetry = os.Stderr
	start := time.Now()
	run := func(name string, f func() error) {
		stepStart := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "swiftbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "swiftbench: %s wall-clock %s (parallel=%d)\n",
			name, time.Since(stepStart).Round(time.Millisecond), *parallel)
		fmt.Println()
	}
	if *all || *tableN == 1 {
		run("table 1", func() error { return s.Table1(os.Stdout) })
	}
	if *all || *tableN == 2 {
		run("table 2", func() error { return s.Table2(os.Stdout, budget) })
	}
	if *all || *tableN == 3 {
		run("table 3", func() error { return s.Table3(os.Stdout, budget) })
	}
	if *all || *tableN == 4 {
		run("table 4", func() error { return s.Table4(os.Stdout, budget) })
	}
	if *all || *figureN == 5 {
		run("figure 5", func() error { return s.Figure5(os.Stdout, budget) })
	}
	if *all || *slices {
		run("slices", func() error { return s.SlicedTable(os.Stdout, budget, *sliceWkrs) })
	}
	if *all || *taint {
		run("taint", func() error { return s.TaintTable(os.Stdout, budget) })
	}
	if *all || *ablation {
		run("ablation", func() error { return s.AblationTable(os.Stdout, budget) })
	}
	if *verify {
		run("verify", func() error { return s.Verify(os.Stdout, budget) })
	}
	if *record != "" {
		run("record", func() error { return s.RecordAsync(*record, budget) })
	}
	if *replay != "" {
		run("replay", func() error { return s.AsyncReplayTable(os.Stdout, budget, *replay) })
	}
	fmt.Fprintf(os.Stderr, "swiftbench: total wall-clock %s (parallel=%d)\n",
		time.Since(start).Round(time.Millisecond), *parallel)
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "swiftbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "swiftbench: %v\n", err)
			os.Exit(1)
		}
	}
}
