// Command swiftbench regenerates the paper's evaluation tables and figure
// on the synthetic benchmark suite:
//
//	swiftbench -table 1      benchmark characteristics (paper Table 1)
//	swiftbench -table 2      TD vs BU vs SWIFT costs and summaries (Table 2)
//	swiftbench -table 3      k sweep on the avrora stand-in (Table 3)
//	swiftbench -table 4      θ=1 vs θ=2 (Table 4)
//	swiftbench -figure 5     per-method summary distributions (Figure 5)
//	swiftbench -slices       site-sliced vs monolithic costs (sliced table)
//	swiftbench -all          everything
//
// -quick uses reduced budgets for a fast smoke run. -parallel bounds how
// many engine runs execute concurrently (default GOMAXPROCS); tables are
// byte-identical at any setting — only wall-clock changes, reported per run
// and in total on stderr. -sliceworkers bounds how many slices a single
// -slices run analyzes concurrently (default GOMAXPROCS); the sliced table
// too is byte-identical at any setting. -rawcfg and -nomemo time the
// superblock/memo ablations; -nosparse falls back to the dense FIFO
// worklist and -nostruct keeps the sparse scheduler but ignores loop
// structure (plain RPO batching, no region memoization). All four
// ablations leave every table byte-identical — only timing and the stderr
// telemetry change.
// -cpuprofile/-memprofile write pprof profiles; every engine run is labeled
// with its suite, engine and (when sliced) slice, so `go tool pprof -tags`
// attributes samples.
//
//	swiftbench -record DIR   record one live swift-async schedule per benchmark
//	swiftbench -replay DIR   render the swift-async table by replaying DIR
//
// Replay is bit-deterministic: the same trace directory renders the same
// table bytes at any -parallel setting. -faultevery N (with -faultseed)
// arms the chaos mode, injecting roughly one seeded client fault per N
// operations into every run; aborted runs render as DNF cells.
//
//	swiftbench -warmbench -storedir DIR   cold-vs-warm summary-store benchmark
//
// -warmbench runs the hybrid engine twice over the suite against the
// persistent summary store in -storedir (memory-only when empty) and
// verifies the warm pass reuses every stored summary and reproduces the
// cold pass's result tables byte for byte. Rerunning against the same
// directory starts warm from disk — the CI smoke does exactly that.
//
//	swiftbench -editbench [-editbenchmark NAME] [-edits N] [-editseed S]
//
// -editbench runs a deterministic edit stream (seeded single-procedure
// mutations) over one benchmark, analyzing each program version cold and
// incrementally against the store in -storedir, across all four engines.
// It verifies that reverting the edit reproduces the base run's result
// tables byte for byte under every engine and that the hybrid engine
// answers triggers with untouched call-graph closures from the store.
//
//	swiftbench -querybench [-querybenchmark NAME] [-queries N] [-queryseed S] [-querykinds K,K]
//
// -querybench runs the demand-vs-exhaustive experiment: one exhaustive run
// per benchmark and engine, then a seeded stream of randomized point
// queries answered through the demand-driven query engine with a fresh
// slice memo, reporting the stream's aggregate demand cost, slice-memo hit
// rate and the break-even query count against the exhaustive cost. Every
// isError answer is checked against the exhaustive error report on the
// fly.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"swift/internal/bench"
	"swift/internal/query"
)

// splitNonEmpty splits a comma-separated list, dropping empty items, so an
// empty flag value means "default" rather than one empty kind.
func splitNonEmpty(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func main() {
	os.Exit(cliMain(os.Args[1:], os.Stdout, os.Stderr))
}

// cliMain is the whole CLI behind an exit code instead of os.Exit, so
// every error path unwinds through the deferred cleanups (profile flush,
// file close). Calling os.Exit from main's depths used to truncate
// -cpuprofile output whenever a later step failed.
func cliMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("swiftbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		tableN      = fs.Int("table", 0, "render table 1–4")
		figureN     = fs.Int("figure", 0, "render figure 5")
		all         = fs.Bool("all", false, "render every table and figure")
		quick       = fs.Bool("quick", false, "use reduced budgets (smoke run)")
		taint       = fs.Bool("taint", false, "run the kill/gen taint client generality experiment")
		ablation    = fs.Bool("ablation", false, "run the re-summarization ablation")
		verify      = fs.Bool("verify", false, "assert the paper's completion pattern holds")
		parallel    = fs.Int("parallel", runtime.GOMAXPROCS(0), "max concurrent engine runs (1 = serial)")
		slices      = fs.Bool("slices", false, "render the site-sliced vs monolithic cost table")
		sliceWkrs   = fs.Int("sliceworkers", runtime.GOMAXPROCS(0), "max concurrent slices per -slices run (1 = serial)")
		rawcfg      = fs.Bool("rawcfg", false, "run order-insensitive solvers on the uncompressed CFG view (A/B ablation; tables are identical, only timing changes)")
		nomemo      = fs.Bool("nomemo", false, "disable the per-superedge transfer caches (A/B ablation)")
		nosparse    = fs.Bool("nosparse", false, "run order-insensitive solvers on the dense FIFO worklist instead of the structure-driven sparse scheduler (A/B ablation)")
		nostruct    = fs.Bool("nostruct", false, "keep the sparse scheduler but ignore loop structure: plain RPO batching, no region memoization (A/B ablation)")
		record      = fs.String("record", "", "record one live swift-async schedule per benchmark into this directory")
		replay      = fs.String("replay", "", "render the swift-async table by deterministically replaying the traces in this directory")
		warmbench   = fs.Bool("warmbench", false, "run the cold-vs-warm summary-store benchmark")
		editbench   = fs.Bool("editbench", false, "run the edit-stream incremental re-analysis benchmark")
		editBench   = fs.String("editbenchmark", "toba-s", "benchmark the -editbench edit stream mutates")
		editN       = fs.Int("edits", 4, "number of edits in the -editbench stream")
		editSeed    = fs.Int64("editseed", 7, "seed of the -editbench edit stream")
		querybench  = fs.Bool("querybench", false, "run the demand-vs-exhaustive point-query benchmark")
		queryN      = fs.Int("queries", 2000, "number of seeded queries per -querybench stream")
		querySeed   = fs.Int64("queryseed", 1, "seed of the -querybench query stream")
		queryKinds  = fs.String("querykinds", "", "comma-separated query kinds for -querybench (default: all of canReach,statesAt,isError)")
		queryBench  = fs.String("querybenchmark", "", "restrict -querybench to one benchmark (default: full suite)")
		soak        = fs.Bool("soak", false, "run the swiftd concurrent-load soak smoke (coalescing, shedding, cancellation, drain)")
		soakClients = fs.Int("soakclients", 0, "concurrent clients in the -soak coalesce wave (0 = default)")
		storedir    = fs.String("storedir", "", "persistent store directory for -warmbench/-editbench (empty = memory-only)")
		faultevery  = fs.Int64("faultevery", 0, "chaos mode: inject roughly one seeded client fault per N operations into every run (0 = off)")
		faultseed   = fs.Uint64("faultseed", 1, "seed for -faultevery's fault schedule")
		cpuprofile  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	// Flag validation happens before any work: a request for a table or
	// figure that does not exist is an error (exit 2 with usage), not a
	// silent no-op run that exits 0 having rendered nothing.
	if *tableN < 0 || *tableN > 4 {
		fmt.Fprintf(stderr, "swiftbench: -table %d does not exist (tables are 1–4)\n", *tableN)
		fs.Usage()
		return 2
	}
	if *figureN != 0 && *figureN != 5 {
		fmt.Fprintf(stderr, "swiftbench: -figure %d does not exist (the only figure is 5)\n", *figureN)
		fs.Usage()
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "swiftbench: unexpected arguments: %v\n", fs.Args())
		fs.Usage()
		return 2
	}
	if *nosparse && *nostruct {
		fmt.Fprintf(stderr, "swiftbench: -nostruct is only meaningful without -nosparse (the dense worklist has no structure to ignore)\n")
		fs.Usage()
		return 2
	}
	if *storedir != "" && !*warmbench && !*editbench {
		fmt.Fprintf(stderr, "swiftbench: -storedir is only meaningful with -warmbench or -editbench\n")
		fs.Usage()
		return 2
	}
	if *soakClients != 0 && !*soak {
		fmt.Fprintf(stderr, "swiftbench: -soakclients is only meaningful with -soak\n")
		fs.Usage()
		return 2
	}
	if *soakClients != 0 && *soakClients < 2 {
		fmt.Fprintf(stderr, "swiftbench: -soakclients %d must be at least 2\n", *soakClients)
		fs.Usage()
		return 2
	}
	if *editN < 1 {
		fmt.Fprintf(stderr, "swiftbench: -edits %d must be at least 1\n", *editN)
		fs.Usage()
		return 2
	}
	// The query flags only mean something under -querybench: silently
	// ignoring them would run a different experiment than the user asked
	// for. Explicitly-set flags are detected via Visit, so passing the
	// default value by hand is still an error.
	querySet := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { querySet[f.Name] = true })
	for _, name := range []string{"queries", "queryseed", "querykinds", "querybenchmark"} {
		if querySet[name] && !*querybench {
			fmt.Fprintf(stderr, "swiftbench: -%s is only meaningful with -querybench\n", name)
			fs.Usage()
			return 2
		}
	}
	if *queryN < 1 {
		fmt.Fprintf(stderr, "swiftbench: -queries %d must be at least 1\n", *queryN)
		fs.Usage()
		return 2
	}
	kinds, err := query.ParseKinds(splitNonEmpty(*queryKinds))
	if err != nil {
		fmt.Fprintf(stderr, "swiftbench: -querykinds: %v\n", err)
		fs.Usage()
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(stderr, "swiftbench: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "swiftbench: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	budget := bench.DefaultBudget()
	if *quick {
		budget = bench.QuickBudget()
	}
	budget.RawCFG = *rawcfg
	budget.NoTransferMemo = *nomemo
	budget.NoSparse = *nosparse
	budget.NoStructIndex = *nostruct
	budget.FaultEvery = *faultevery
	budget.FaultSeed = *faultseed
	s := bench.NewSuite()
	s.Parallel = *parallel
	s.Telemetry = stderr

	type step struct {
		name    string
		enabled bool
		fn      func() error
	}
	steps := []step{
		{"table 1", *all || *tableN == 1, func() error { return s.Table1(stdout) }},
		{"table 2", *all || *tableN == 2, func() error { return s.Table2(stdout, budget) }},
		{"table 3", *all || *tableN == 3, func() error { return s.Table3(stdout, budget) }},
		{"table 4", *all || *tableN == 4, func() error { return s.Table4(stdout, budget) }},
		{"figure 5", *all || *figureN == 5, func() error { return s.Figure5(stdout, budget) }},
		{"slices", *all || *slices, func() error { return s.SlicedTable(stdout, budget, *sliceWkrs) }},
		{"taint", *all || *taint, func() error { return s.TaintTable(stdout, budget) }},
		{"ablation", *all || *ablation, func() error { return s.AblationTable(stdout, budget) }},
		{"verify", *verify, func() error { return s.Verify(stdout, budget) }},
		{"warmbench", *warmbench, func() error { return s.WarmTable(stdout, budget, *storedir) }},
		{"editbench", *editbench, func() error {
			return s.EditTable(stdout, budget, *storedir, *editBench, *editSeed, *editN)
		}},
		{"querybench", *querybench, func() error {
			return s.QueryBenchTable(stdout, budget, *queryBench, *queryN, *querySeed, kinds, *sliceWkrs)
		}},
		{"soak", *soak, func() error {
			soakCfg := bench.DefaultSoakConfig()
			if *quick {
				soakCfg = bench.QuickSoakConfig()
			}
			if *soakClients != 0 {
				soakCfg.Clients = *soakClients
			}
			return bench.Soak(stdout, soakCfg)
		}},
		{"record", *record != "", func() error { return s.RecordAsync(*record, budget) }},
		{"replay", *replay != "", func() error { return s.AsyncReplayTable(stdout, budget, *replay) }},
	}
	selected := false
	for _, st := range steps {
		selected = selected || st.enabled
	}
	if !selected {
		fs.Usage()
		return 2
	}

	start := time.Now()
	for _, st := range steps {
		if !st.enabled {
			continue
		}
		stepStart := time.Now()
		if err := st.fn(); err != nil {
			fmt.Fprintf(stderr, "swiftbench: %s: %v\n", st.name, err)
			return 1
		}
		fmt.Fprintf(stderr, "swiftbench: %s wall-clock %s (parallel=%d)\n",
			st.name, time.Since(stepStart).Round(time.Millisecond), *parallel)
		fmt.Fprintln(stdout)
	}
	fmt.Fprintf(stderr, "swiftbench: total wall-clock %s (parallel=%d)\n",
		time.Since(start).Round(time.Millisecond), *parallel)

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(stderr, "swiftbench: %v\n", err)
			return 1
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(stderr, "swiftbench: %v\n", err)
			return 1
		}
	}
	return 0
}
