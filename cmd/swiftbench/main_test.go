package main

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := cliMain(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// TestFlagValidation pins the bugfix for silent no-op runs: a -table or
// -figure that does not exist must exit 2 with a diagnostic and usage,
// not exit 0 having rendered nothing.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"table too high", []string{"-table", "5"}, "-table 5 does not exist"},
		{"table negative", []string{"-table", "-1"}, "-table -1 does not exist"},
		{"figure wrong", []string{"-figure", "4"}, "-figure 4 does not exist"},
		{"no selection", []string{"-quick"}, "Usage"},
		{"stray args", []string{"-table", "1", "stray"}, "unexpected arguments"},
		{"storedir without warmbench", []string{"-table", "1", "-storedir", "/tmp/x"}, "-storedir is only meaningful"},
		{"edits below one", []string{"-editbench", "-edits", "0"}, "-edits 0 must be at least 1"},
		{"unknown flag", []string{"-frobnicate"}, "flag provided but not defined"},
		{"queries without querybench", []string{"-table", "1", "-queries", "10"}, "-queries is only meaningful"},
		{"queryseed without querybench", []string{"-table", "1", "-queryseed", "3"}, "-queryseed is only meaningful"},
		{"querykinds without querybench", []string{"-table", "1", "-querykinds", "isError"}, "-querykinds is only meaningful"},
		{"querybenchmark without querybench", []string{"-table", "1", "-querybenchmark", "elevator"}, "-querybenchmark is only meaningful"},
		{"queries zero", []string{"-querybench", "-queries", "0"}, "-queries 0 must be at least 1"},
		{"queries negative", []string{"-querybench", "-queries", "-5"}, "-queries -5 must be at least 1"},
		{"unknown query kind", []string{"-querybench", "-querykinds", "canReach,reaches"}, `unknown query kind "reaches"`},
		{"soakclients without soak", []string{"-table", "1", "-soakclients", "4"}, "-soakclients is only meaningful"},
		{"soakclients below two", []string{"-soak", "-soakclients", "1"}, "-soakclients 1 must be at least 2"},
		{"nostruct with nosparse", []string{"-table", "2", "-nosparse", "-nostruct"}, "-nostruct is only meaningful"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCLI(t, tc.args...)
			if code != 2 {
				t.Errorf("exit = %d, want 2", code)
			}
			if !strings.Contains(stderr, tc.want) {
				t.Errorf("stderr %q does not contain %q", stderr, tc.want)
			}
			if !strings.Contains(stderr, "Usage of swiftbench") {
				t.Errorf("stderr lacks usage text:\n%s", stderr)
			}
		})
	}
}

func TestTable1Renders(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-table", "1")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "Table 1") {
		t.Errorf("stdout lacks the table:\n%s", stdout)
	}
}

// readGzipProfile fully decompresses a pprof file; a profile truncated
// by a skipped pprof.StopCPUProfile fails here with unexpected EOF.
func readGzipProfile(t *testing.T, path string) []byte {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("profile missing: %v", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		t.Fatalf("profile is not a gzip stream (flush skipped?): %v", err)
	}
	data, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("profile truncated: %v", err)
	}
	if err := zr.Close(); err != nil {
		t.Fatalf("profile checksum: %v", err)
	}
	return data
}

// TestCPUProfileFlushedOnStepFailure pins the exit-path bugfix: when a
// step fails after profiling started, the deferred StopCPUProfile and
// Close must still run, leaving a complete, parseable profile. The old
// os.Exit(1) path truncated it.
func TestCPUProfileFlushedOnStepFailure(t *testing.T) {
	profile := filepath.Join(t.TempDir(), "cpu.pprof")
	code, _, stderr := runCLI(t,
		"-quick", "-cpuprofile", profile,
		"-replay", filepath.Join(t.TempDir(), "no-such-traces"))
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "replay") {
		t.Errorf("stderr does not name the failing step:\n%s", stderr)
	}
	if len(readGzipProfile(t, profile)) == 0 {
		t.Error("profile decompressed to zero bytes")
	}
}

// TestCPUProfileFlushedOnMemprofileFailure covers the other broken exit
// path: a failing -memprofile write must exit 1 and still leave the CPU
// profile complete.
func TestCPUProfileFlushedOnMemprofileFailure(t *testing.T) {
	profile := filepath.Join(t.TempDir(), "cpu.pprof")
	code, _, stderr := runCLI(t,
		"-table", "1", "-cpuprofile", profile,
		"-memprofile", filepath.Join(t.TempDir(), "no-such-dir", "heap.pprof"))
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, stderr)
	}
	readGzipProfile(t, profile)
}

// TestSparseAblationFlagsByteIdentical pins the -nosparse/-nostruct
// contract at the CLI: the scheduler ablations change only timing and
// stderr telemetry, never a rendered table byte.
func TestSparseAblationFlagsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("three full table-2 passes")
	}
	code, base, stderr := runCLI(t, "-quick", "-table", "2")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	for _, flag := range []string{"-nosparse", "-nostruct"} {
		code, got, stderr := runCLI(t, "-quick", "-table", "2", flag)
		if code != 0 {
			t.Fatalf("%s: exit = %d, stderr:\n%s", flag, code, stderr)
		}
		if got != base {
			t.Errorf("%s: table 2 differs from the default scheduler:\n--- default:\n%s--- %s:\n%s",
				flag, base, flag, got)
		}
	}
}

// TestWarmbenchFlag smokes the -warmbench step end to end on a real
// store directory (full suite, quick budget, two passes inside the step).
func TestWarmbenchFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("two full suite passes")
	}
	dir := t.TempDir()
	code, stdout, stderr := runCLI(t, "-quick", "-warmbench", "-storedir", dir)
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "second pass restored 12/12") {
		t.Errorf("warmbench summary missing:\n%s", stdout)
	}
}

// TestSoakFlag smokes the -soak step end to end: the in-process server
// must pass all four robustness phases.
func TestSoakFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a server and runs concurrent engine runs")
	}
	code, stdout, stderr := runCLI(t, "-quick", "-soak", "-soakclients", "3")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	for _, phase := range []string{"soak: coalesce", "soak: cancel", "soak: shed", "soak: drain", "soak: ok"} {
		if !strings.Contains(stdout, phase) {
			t.Errorf("soak output missing %q:\n%s", phase, stdout)
		}
	}
	if !strings.Contains(stdout, "engineRuns=1") {
		t.Errorf("coalesce phase did not report exactly one engine run:\n%s", stdout)
	}
}

// TestQuerybenchFlag smokes the -querybench step end to end on a small
// benchmark: all four engines, the table renders, and the break-even
// column is populated (the exhaustive runs complete under -quick on
// elevator, so a uniformly random stream must cross the exhaustive cost).
func TestQuerybenchFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("four exhaustive runs plus query streams")
	}
	code, stdout, stderr := runCLI(t, "-quick", "-querybench",
		"-querybenchmark", "elevator", "-queries", "100", "-queryseed", "2")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	for _, want := range []string{"Querybench:", "break-even", "elevator", "swift-async"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("querybench output lacks %q:\n%s", want, stdout)
		}
	}
}

// TestEditbenchFlag smokes the -editbench step end to end: a short edit
// stream on a small benchmark, store in a real directory, with the
// harness's hard checks (revert byte-identity, hybrid summary reuse)
// enforced inside the step.
func TestEditbenchFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-engine edit stream")
	}
	code, stdout, stderr := runCLI(t, "-quick", "-editbench",
		"-editbenchmark", "elevator", "-edits", "2", "-storedir", t.TempDir())
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "revert byte-identical under td/bu/swift/swift-async") {
		t.Errorf("editbench summary missing:\n%s", stdout)
	}
}
