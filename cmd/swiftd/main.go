// Command swiftd is the analysis server: a long-lived JSON-over-HTTP
// daemon that runs the type-state engines against a persistent summary
// store, so repeated analyses of the same (or overlapping) programs are
// answered from cache.
//
//	swiftd -addr 127.0.0.1:7411 -store /var/cache/swift
//
// Endpoints:
//
//	POST /analyze  {"source": "...", "engine": "swift", "k": 5, "theta": 1}
//	POST /query    {"source": "...", "query": {"kind": "isError", "site": "h1"}}
//	               (or "queries": [...] for a batch) — demand-driven point
//	               queries answered from per-site slice runs memoized in a
//	               process-wide slice cache, instead of exhaustive runs
//	GET  /stats    request, cache and query telemetry counters
//	GET  /healthz  liveness probe
//
// With -store "" the store is memory-only and dies with the process.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"swift/internal/store"
)

func main() {
	os.Exit(daemonMain(os.Args[1:]))
}

func daemonMain(args []string) int {
	fs := flag.NewFlagSet("swiftd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7411", "listen address")
	dir := fs.String("store", "", "on-disk store directory (empty: memory-only)")
	mem := fs.Int64("mem", 64<<20, "in-memory cache budget in bytes (<=0 disables the memory tier)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(fs.Output(), "swiftd: unexpected arguments: %v\n", fs.Args())
		fs.Usage()
		return 2
	}
	st, err := store.Open(*dir, *mem)
	if err != nil {
		log.Printf("swiftd: opening store: %v", err)
		return 1
	}
	srv := newServer(st)
	log.Printf("swiftd: listening on %s (store: %s)", *addr, storeDesc(*dir))
	if err := http.ListenAndServe(*addr, srv.handler()); err != nil {
		log.Printf("swiftd: %v", err)
		return 1
	}
	return 0
}

func storeDesc(dir string) string {
	if dir == "" {
		return "memory-only"
	}
	return dir
}
