// Command swiftd is the analysis server: a long-lived JSON-over-HTTP
// daemon that runs the type-state engines against a persistent summary
// store, so repeated analyses of the same (or overlapping) programs are
// answered from cache.
//
//	swiftd -addr 127.0.0.1:7411 -store /var/cache/swift
//
// Endpoints:
//
//	POST /analyze  {"source": "...", "engine": "swift", "k": 5, "theta": 1}
//	POST /query    {"source": "...", "query": {"kind": "isError", "site": "h1"}}
//	               (or "queries": [...] for a batch) — demand-driven point
//	               queries answered from per-site slice runs memoized in a
//	               process-wide slice cache, instead of exhaustive runs
//	GET  /stats    request, cache, query and robustness telemetry counters
//	GET  /healthz  liveness probe (writes/reads a store sentinel)
//	GET  /readyz   readiness probe (unready while draining or saturated)
//
// With -store "" the store is memory-only and dies with the process.
//
// The daemon is hardened for production use: concurrent engine runs are
// bounded (-maxinflight) with a bounded wait queue (-maxqueue,
// -queuewait) that sheds excess load with 429 + Retry-After; identical
// concurrent requests coalesce onto one engine run; a per-request
// deadline (-reqtimeout) turns runaway analyses into structured 504s;
// and SIGINT/SIGTERM trigger a graceful drain (-drain), after which
// stragglers are cooperatively canceled and the store is closed before
// exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"swift/internal/store"
	"swift/internal/swiftd"
)

func main() {
	os.Exit(daemonMain(os.Args[1:]))
}

func daemonMain(args []string) int {
	return daemonRun(args, nil)
}

// daemonRun is daemonMain with a test hook: ready (if non-nil) receives
// the bound listen address once the server is accepting connections.
func daemonRun(args []string, ready func(addr string)) int {
	fs := flag.NewFlagSet("swiftd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7411", "listen address")
	dir := fs.String("store", "", "on-disk store directory (empty: memory-only)")
	mem := fs.Int64("mem", 64<<20, "in-memory cache budget in bytes (<=0 disables the memory tier)")
	maxInFlight := fs.Int("maxinflight", 0, "max concurrent engine runs (<=0: GOMAXPROCS)")
	maxQueue := fs.Int("maxqueue", 16, "max requests queued for an engine slot (0: shed immediately when full)")
	queueWait := fs.Duration("queuewait", 2*time.Second, "max time a request waits in the admission queue")
	reqTimeout := fs.Duration("reqtimeout", 0, "per-request deadline (0: none); exceeding it returns 504 and cancels the run")
	maxBody := fs.Int64("maxbody", 8<<20, "max request body bytes (413 beyond)")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline before in-flight runs are canceled")
	quiet := fs.Bool("quiet", false, "suppress the per-request access log")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(fs.Output(), "swiftd: unexpected arguments: %v\n", fs.Args())
		fs.Usage()
		return 2
	}
	if *maxQueue < 0 || *queueWait < 0 || *reqTimeout < 0 || *maxBody <= 0 || *drain < 0 {
		fmt.Fprintln(fs.Output(), "swiftd: -maxqueue, -queuewait, -reqtimeout and -drain must be non-negative and -maxbody positive")
		fs.Usage()
		return 2
	}
	st, err := store.Open(*dir, *mem)
	if err != nil {
		log.Printf("swiftd: opening store: %v", err)
		return 1
	}
	srv := swiftd.New(st, swiftd.Options{
		MaxInFlight: *maxInFlight,
		MaxQueue:    *maxQueue,
		QueueWait:   *queueWait,
		ReqTimeout:  *reqTimeout,
		MaxBody:     *maxBody,
		Quiet:       *quiet,
	})

	// An explicit listener (instead of ListenAndServe) so the bound
	// address — which may use port 0 — is known before the first request.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Printf("swiftd: %v", err)
		return 1
	}
	httpSrv := &http.Server{
		Handler: srv.Handler(),
		// Slow-client bounds: a peer that trickles headers or a body
		// cannot pin a connection forever, and idle keep-alives expire.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigs)
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		sig, ok := <-sigs
		if !ok {
			return
		}
		log.Printf("swiftd: %v: draining for up to %s", sig, *drain)
		srv.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			// Drain deadline passed with requests still in flight: cancel
			// their engine runs cooperatively, then give the (now fast)
			// responses a moment to flush before closing connections.
			log.Printf("swiftd: drain deadline passed, canceling in-flight runs")
			srv.CancelInflight()
			ctx2, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel2()
			if err := httpSrv.Shutdown(ctx2); err != nil {
				log.Printf("swiftd: forced shutdown: %v", err)
			}
		}
	}()

	log.Printf("swiftd: listening on %s (store: %s)", ln.Addr(), storeDesc(*dir))
	if ready != nil {
		ready(ln.Addr().String())
	}
	err = httpSrv.Serve(ln)
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("swiftd: %v", err)
		signal.Stop(sigs)
		close(sigs)
		<-shutdownDone
		return 1
	}
	// Serve returned ErrServerClosed: Shutdown is in progress. Wait for
	// the drain to finish before closing the store, so no straggler
	// request writes to a closed store.
	<-shutdownDone
	if err := st.Close(); err != nil {
		log.Printf("swiftd: closing store: %v", err)
		return 1
	}
	log.Printf("swiftd: shutdown complete")
	return 0
}

func storeDesc(dir string) string {
	if dir == "" {
		return "memory-only"
	}
	return dir
}
