package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"swift/internal/store"
)

// TestDaemonMainFlagErrors pins the CLI exit codes: bad flags, stray
// arguments and out-of-range values exit 2 without starting a server.
func TestDaemonMainFlagErrors(t *testing.T) {
	if got := daemonMain([]string{"-nonsense"}); got != 2 {
		t.Errorf("bad flag exit = %d, want 2", got)
	}
	if got := daemonMain([]string{"stray"}); got != 2 {
		t.Errorf("stray argument exit = %d, want 2", got)
	}
	if got := daemonMain([]string{"-maxbody", "0"}); got != 2 {
		t.Errorf("zero -maxbody exit = %d, want 2", got)
	}
	if got := daemonMain([]string{"-drain", "-1s"}); got != 2 {
		t.Errorf("negative -drain exit = %d, want 2", got)
	}
}

// shutdownProgram builds a program variant whose /analyze run takes on
// the order of a second (a deep chain of loop-and-branch methods keeps
// the fixpoint busy), with a version marker so each variant misses
// every cache.
func shutdownProgram(variant int) string {
	const depth, width = 40, 20
	var sb strings.Builder
	fmt.Fprintf(&sb, `
property File {
  states closed opened error
  error error
  open: closed -> opened
  close: opened -> closed
  read: opened -> opened
}

class Main {
  method main() {
    v%d = new File @v%d
    w = new Worker @w1
    f = new File @h1
    f.open()
    w.m0(f)
    f.close()
  }
}

class Worker {
`, variant, variant)
	for i := 0; i < depth; i++ {
		fmt.Fprintf(&sb, "  method m%d(f) {\n    while (*) {\n", i)
		for j := 0; j < width; j++ {
			sb.WriteString("      if (*) { f.read() } else { f.open(); f.close(); f.open() }\n")
		}
		if i+1 < depth {
			fmt.Fprintf(&sb, "      this.m%d(f)\n", i+1)
		}
		sb.WriteString("    }\n  }\n")
	}
	sb.WriteString("}\n")
	return sb.String()
}

// checkNoLeakedGoroutines waits for the goroutine count to settle back
// to the baseline (same pattern as the core fault tests).
func checkNoLeakedGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShutdownUnderLoad floods a live daemon with /analyze traffic,
// SIGTERMs it mid-flight, and asserts the drain contract: exit 0, every
// client gets a response or a clean connection error, no goroutines
// leak, no torn temp files remain in the store directory, and the store
// reopens healthy with the blobs the completed runs published.
func TestShutdownUnderLoad(t *testing.T) {
	// Prime the os/signal runtime loop (a permanent singleton started by
	// the first Notify) so it doesn't read as a leaked goroutine.
	prime := make(chan os.Signal, 1)
	signal.Notify(prime, syscall.SIGHUP)
	signal.Stop(prime)

	before := runtime.NumGoroutine()
	dir := t.TempDir()

	ready := make(chan string, 1)
	exit := make(chan int, 1)
	go func() {
		exit <- daemonRun([]string{
			"-addr", "127.0.0.1:0",
			"-store", dir,
			"-quiet",
			"-maxinflight", "2",
			"-maxqueue", "8",
			"-drain", "300ms",
		}, func(addr string) { ready <- addr })
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not start")
	}
	base := "http://" + addr

	tr := &http.Transport{}
	defer tr.CloseIdleConnections()
	client := &http.Client{Transport: tr}

	// One request completes fully before the flood, so the reopened
	// store is guaranteed to hold at least one published blob.
	body, _ := json.Marshal(map[string]string{"source": shutdownProgram(0)})
	resp, err := client.Post(base+"/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("warmup request: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup status = %d", resp.StatusCode)
	}

	// Flood: distinct program variants so every request is a fresh
	// engine run, keeping work in flight when the signal lands.
	var wg sync.WaitGroup
	for i := 1; i <= 12; i++ {
		wg.Add(1)
		go func(variant int) {
			defer wg.Done()
			body, _ := json.Marshal(map[string]string{"source": shutdownProgram(variant)})
			resp, err := client.Post(base+"/analyze", "application/json", bytes.NewReader(body))
			if err != nil {
				// Connection errors are legal once the listener closes.
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable:
			default:
				t.Errorf("flood request %d: unexpected status %d", variant, resp.StatusCode)
			}
		}(i)
	}

	time.Sleep(100 * time.Millisecond) // let the flood reach the engines
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("daemon exit = %d, want 0", code)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	wg.Wait()

	// The atomic-write discipline must hold through the shutdown: no
	// abandoned temp files in the store directory.
	err = filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasPrefix(d.Name(), "put-") {
			t.Errorf("torn store blob left behind: %s", path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// The store reopens and still serves what the completed runs put.
	st, err := store.Open(dir, 1<<20)
	if err != nil {
		t.Fatalf("reopening store: %v", err)
	}
	if err := st.Probe(); err != nil {
		t.Fatalf("reopened store unhealthy: %v", err)
	}
	if st.Stats().DiskErrors != 0 {
		t.Fatalf("reopened store stats = %+v", st.Stats())
	}

	tr.CloseIdleConnections()
	checkNoLeakedGoroutines(t, before)
}
