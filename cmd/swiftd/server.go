package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"swift/internal/core"
	"swift/internal/driver"
	"swift/internal/store"
)

// server is the swiftd request handler: a JSON-over-HTTP front end over
// the persistent artifact store. Three cache layers cooperate on a
// request: whole-response blobs (Kind "result"), per-trigger summaries
// and intern-table snapshots (via driver.Warm). All are keyed by content
// digests, so serving a cached response for a byte-identical program is
// exact, not heuristic.
type server struct {
	store *store.Store

	// sliceMemo is the in-process slice-table cache behind /query, shared
	// across requests and program versions (its keys carry the program
	// digests, so cross-version reuse is impossible by construction).
	sliceMemo *driver.SliceMemo

	requests      atomic.Int64
	resultHits    atomic.Int64
	resultMisses  atomic.Int64
	resultCorrupt atomic.Int64

	// /query telemetry (see queryStats).
	queryBatches      atomic.Int64
	queriesServed     atomic.Int64
	queryMaxBatch     atomic.Int64
	queryCanReach     atomic.Int64
	queryStatesAt     atomic.Int64
	queryIsError      atomic.Int64
	queryResultHits   atomic.Int64
	queryResultMisses atomic.Int64

	// Incremental telemetry: cumulative warm-path counters across every
	// engine run, surfaced in /stats so repeated /analyze calls on
	// successive program versions show how much the store reused.
	restoredRuns   atomic.Int64
	relaxedRuns    atomic.Int64
	failedRestores atomic.Int64
	summaryHits    atomic.Int64
	summaryMisses  atomic.Int64
}

// analyzeRequest is the POST /analyze body. Absent k/theta default to
// core.DefaultConfig's thresholds; engine defaults to "swift".
type analyzeRequest struct {
	Source         string `json:"source"`
	Engine         string `json:"engine"`
	K              *int   `json:"k"`
	Theta          *int   `json:"theta"`
	RawCFG         bool   `json:"rawCFG"`
	NoTransferMemo bool   `json:"noTransferMemo"`
}

// analyzeResponse is the POST /analyze reply.
type analyzeResponse struct {
	Engine string `json:"engine"`
	// ErrorSites lists allocation sites whose tracked objects may reach a
	// property error state; empty means no misuse found.
	ErrorSites []string `json:"errorSites"`
	// Err is non-empty when the engine aborted (budget exhaustion); the
	// report is then unavailable rather than empty.
	Err       string `json:"err,omitempty"`
	Completed bool   `json:"completed"`
	// Cached reports the response was served from the result cache without
	// running any engine.
	Cached bool `json:"cached"`
	// TablesDigest fingerprints the deterministic result tables
	// (driver.ResultTablesDigest), so clients can compare runs.
	TablesDigest string `json:"tablesDigest,omitempty"`
	// Warm-start telemetry of the run that produced this response. Relaxed
	// means summaries were reused without a restored tables snapshot (same
	// report, but tables need not be byte-identical to the cold run).
	RestoredTables bool  `json:"restoredTables"`
	Relaxed        bool  `json:"relaxed"`
	SummaryHits    int64 `json:"summaryHits"`
	SummaryMisses  int64 `json:"summaryMisses"`
	ElapsedMS      int64 `json:"elapsedMs"`
}

// incrementalStats is the /stats incremental telemetry block.
type incrementalStats struct {
	// RestoredRuns counts runs that restored a tables snapshot
	// (byte-identity mode); RelaxedRuns counts runs with summary reuse but
	// no snapshot; FailedRestores counts corrupt snapshots dropped.
	RestoredRuns   int64 `json:"restoredRuns"`
	RelaxedRuns    int64 `json:"relaxedRuns"`
	FailedRestores int64 `json:"failedRestores"`
	SummaryHits    int64 `json:"summaryHits"`
	SummaryMisses  int64 `json:"summaryMisses"`
}

// statsResponse is the GET /stats reply.
type statsResponse struct {
	Requests      int64            `json:"requests"`
	ResultHits    int64            `json:"resultHits"`
	ResultMisses  int64            `json:"resultMisses"`
	ResultCorrupt int64            `json:"resultCorrupt"`
	Incremental   incrementalStats `json:"incremental"`
	Query         queryStats       `json:"query"`
	Store         store.Stats      `json:"store"`
}

func newServer(st *store.Store) *server {
	return &server{store: st, sliceMemo: driver.NewSliceMemo(0)}
}

// handler returns the routed HTTP handler.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/analyze", s.handleAnalyze)
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return mux
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

var validEngines = map[string]bool{"td": true, "bu": true, "swift": true, "swift-async": true}

func (s *server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	s.requests.Add(1)
	var req analyzeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Engine == "" {
		req.Engine = "swift"
	}
	if !validEngines[req.Engine] {
		httpError(w, http.StatusBadRequest, "unknown engine %q (want td, bu, swift or swift-async)", req.Engine)
		return
	}
	cfg := core.DefaultConfig()
	if req.K != nil {
		cfg.K = *req.K
	}
	if req.Theta != nil {
		cfg.Theta = *req.Theta
	}
	cfg.RawCFG = req.RawCFG
	cfg.NoTransferMemo = req.NoTransferMemo

	// The build (parse → points-to → lower → client construction) always
	// runs: the cache keys are content digests of the built pipeline.
	b, err := driver.FromSource(req.Source)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "build failed: %v", err)
		return
	}

	key := driver.ResultKey(b, req.Engine, cfg)
	{
		var resp analyzeResponse
		if s.lookupResult(key, &resp, &s.resultHits, &s.resultMisses) {
			resp.Cached = true
			writeJSON(w, resp)
			return
		}
	}

	start := time.Now()
	res, wstats, err := driver.Warm{Store: s.store}.Run(b, req.Engine, cfg)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "run failed: %v", err)
		return
	}
	if wstats.RestoredTables {
		s.restoredRuns.Add(1)
	}
	if wstats.Relaxed {
		s.relaxedRuns.Add(1)
	}
	if wstats.RestoreFailed {
		s.failedRestores.Add(1)
	}
	s.summaryHits.Add(wstats.SummaryHits)
	s.summaryMisses.Add(wstats.SummaryMisses)
	resp := analyzeResponse{
		Engine:         res.Engine,
		Completed:      res.Completed(),
		TablesDigest:   driver.ResultTablesDigest(b, res),
		RestoredTables: wstats.RestoredTables,
		Relaxed:        wstats.Relaxed,
		SummaryHits:    wstats.SummaryHits,
		SummaryMisses:  wstats.SummaryMisses,
		ElapsedMS:      time.Since(start).Milliseconds(),
	}
	if res.Err != nil {
		resp.Err = res.Err.Error()
	} else {
		sites, rerr := b.ErrorReport(res)
		if rerr != nil {
			httpError(w, http.StatusInternalServerError, "report failed: %v", rerr)
			return
		}
		resp.ErrorSites = sites
	}
	// Cache only deterministic outcomes: reruns of a wall-clock timeout
	// might succeed, so those must not be pinned.
	if res.Err == nil || (errors.Is(res.Err, core.ErrBudget) && !errors.Is(res.Err, core.ErrDeadline)) {
		if blob, merr := json.Marshal(resp); merr == nil {
			s.store.Put(key, blob)
		}
	}
	writeJSON(w, resp)
}

// lookupResult fetches and decodes a cached response blob, counting the
// outcome. A blob that fails to decode is corrupt: it is deleted and
// counted (resultCorrupt) so the caller recomputes once instead of every
// subsequent request paying a failed unmarshal. Without the delete, a
// rerun that ends in a wall-clock timeout (which never publishes) would
// leave the garbage blob in place forever. Shared by /analyze and /query.
func (s *server) lookupResult(key store.Key, out any, hits, misses *atomic.Int64) bool {
	if blob, ok := s.store.Get(key); ok {
		if err := json.Unmarshal(blob, out); err == nil {
			hits.Add(1)
			return true
		}
		s.store.Delete(key)
		s.resultCorrupt.Add(1)
	}
	misses.Add(1)
	return false
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, statsResponse{
		Requests:      s.requests.Load(),
		ResultHits:    s.resultHits.Load(),
		ResultMisses:  s.resultMisses.Load(),
		ResultCorrupt: s.resultCorrupt.Load(),
		Incremental: incrementalStats{
			RestoredRuns:   s.restoredRuns.Load(),
			RelaxedRuns:    s.relaxedRuns.Load(),
			FailedRestores: s.failedRestores.Load(),
			SummaryHits:    s.summaryHits.Load(),
			SummaryMisses:  s.summaryMisses.Load(),
		},
		Query: s.queryStatsSnapshot(),
		Store: s.store.Stats(),
	})
}
