package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"swift/internal/store"
)

const testProgram = `
property File {
  states closed opened error
  error error
  open: closed -> opened
  close: opened -> closed
  read: opened -> opened
}

class Main {
  method main() {
    w = new Worker @w1
    a = new File @h1
    b = new File @h2
    w.doubleOpen(a)
    w.ok(b)
  }
}

class Worker {
  method doubleOpen(f) { f.open(); f.open() }
  method ok(f) { f.open(); f.close() }
}
`

func newTestServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	st, err := store.Open(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(st)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postAnalyze(t *testing.T, url string, req analyzeRequest) (analyzeResponse, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out analyzeResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return out, resp.StatusCode
}

func getStats(t *testing.T, url string) statsResponse {
	t.Helper()
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/stats status = %d", resp.StatusCode)
	}
	var out statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestAnalyzeRepeatHitsCache is the tentpole acceptance check at the HTTP
// layer: the second identical request is served from the result cache,
// with identical findings and tables digest.
func TestAnalyzeRepeatHitsCache(t *testing.T) {
	_, ts := newTestServer(t)

	first, code := postAnalyze(t, ts.URL, analyzeRequest{Source: testProgram})
	if code != http.StatusOK {
		t.Fatalf("first request status = %d", code)
	}
	if first.Cached {
		t.Fatal("first request reported cached=true")
	}
	if len(first.ErrorSites) != 1 || first.ErrorSites[0] != "h1" {
		t.Fatalf("error sites = %v, want [h1]", first.ErrorSites)
	}
	if first.TablesDigest == "" {
		t.Fatal("first response missing tables digest")
	}

	second, code := postAnalyze(t, ts.URL, analyzeRequest{Source: testProgram})
	if code != http.StatusOK {
		t.Fatalf("second request status = %d", code)
	}
	if !second.Cached {
		t.Fatal("second identical request was not served from cache")
	}
	if second.TablesDigest != first.TablesDigest {
		t.Fatalf("cached tables digest %s != original %s", second.TablesDigest, first.TablesDigest)
	}
	if len(second.ErrorSites) != 1 || second.ErrorSites[0] != "h1" {
		t.Fatalf("cached error sites = %v, want [h1]", second.ErrorSites)
	}

	stats := getStats(t, ts.URL)
	if stats.Requests != 2 || stats.ResultHits != 1 || stats.ResultMisses != 1 {
		t.Fatalf("stats = %+v, want 2 requests / 1 hit / 1 miss", stats)
	}
	if stats.Store.Puts == 0 {
		t.Fatalf("store stats = %+v, expected puts from the first run", stats.Store)
	}
}

// TestAnalyzeEngineAndConfigPartitionCache: different engines and
// thresholds must not share result-cache entries, but identical settings
// expressed differently (td ignores K) must.
func TestAnalyzeEngineAndConfigPartitionCache(t *testing.T) {
	_, ts := newTestServer(t)

	swift, _ := postAnalyze(t, ts.URL, analyzeRequest{Source: testProgram, Engine: "swift"})
	td, _ := postAnalyze(t, ts.URL, analyzeRequest{Source: testProgram, Engine: "td"})
	if swift.Cached || td.Cached {
		t.Fatal("distinct engines shared a cache entry")
	}
	// td normalizes K away: a td request with any K hits the same entry.
	k := 3
	td2, _ := postAnalyze(t, ts.URL, analyzeRequest{Source: testProgram, Engine: "td", K: &k})
	if !td2.Cached {
		t.Fatal("td with explicit K missed; K should be normalized out of td keys")
	}
	// A different theta for swift is a different entry.
	th := 7
	sw2, _ := postAnalyze(t, ts.URL, analyzeRequest{Source: testProgram, Engine: "swift", Theta: &th})
	if sw2.Cached {
		t.Fatal("swift with different theta hit the default-theta entry")
	}
}

func TestAnalyzeRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t)

	if _, code := postAnalyze(t, ts.URL, analyzeRequest{Source: testProgram, Engine: "frobnicate"}); code != http.StatusBadRequest {
		t.Errorf("bad engine status = %d, want 400", code)
	}
	if _, code := postAnalyze(t, ts.URL, analyzeRequest{Source: "class {"}); code != http.StatusUnprocessableEntity {
		t.Errorf("unparsable source status = %d, want 422", code)
	}
	resp, err := http.Get(ts.URL + "/analyze")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /analyze status = %d, want 405", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status = %d", resp.StatusCode)
	}
}

// TestDaemonMainFlagErrors pins the CLI exit codes: bad flags and stray
// arguments exit 2 without starting a server.
func TestDaemonMainFlagErrors(t *testing.T) {
	if got := daemonMain([]string{"-nonsense"}); got != 2 {
		t.Errorf("bad flag exit = %d, want 2", got)
	}
	if got := daemonMain([]string{"stray"}); got != 2 {
		t.Errorf("stray argument exit = %d, want 2", got)
	}
}
