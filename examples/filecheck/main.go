// Filecheck: check two protocols at once (file handles and network
// connections) on a small "mirror service" program, and compare the
// conventional top-down analysis with the SWIFT hybrid on the same input —
// including a look at the relational summaries SWIFT computes.
//
//	go run ./examples/filecheck
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"swift/internal/core"
	"swift/internal/driver"
)

// program models a service that downloads remote documents into local
// files: connections must be connected before use and not used after
// close; files must be opened before writing. Two bugs are planted: the
// retry path reconnects an already-open connection (conn protocol), and
// the cache path writes a file it never opened.
const program = `
property File {
  states closed opened error
  error error
  open:  closed -> opened
  write: opened -> opened
  close: opened -> closed
}

property Conn {
  states fresh live done error
  error error
  connect: fresh -> live
  send:    live -> live
  recv:    live -> live
  close:   live -> done
}

class Main {
  method main() {
    svc = new Mirror @svc
    c1 = new Conn @mainConn
    f1 = new File @mainFile
    svc.fetch(c1, f1)

    c2 = new Conn @retryConn
    f2 = new File @retryFile
    svc.fetchWithRetry(c2, f2)

    f3 = new File @cacheFile
    svc.cacheNote(f3)
  }
}

class Mirror {
  method fetch(c, f) {
    c.connect()
    f.open()
    while (*) {
      c.send()
      c.recv()
      f.write()
    }
    f.close()
    c.close()
  }

  method fetchWithRetry(c, f) {
    c.connect()
    if (*) {
      c.connect()   // bug: reconnect while live
    }
    f.open()
    c.send()
    f.write()
    f.close()
    c.close()
  }

  method cacheNote(f) {
    f.write()       // bug: write before open
  }
}
`

func main() {
	b, err := driver.FromSource(program)
	if err != nil {
		log.Fatal(err)
	}

	// Run the conventional top-down baseline and the hybrid on the same
	// pipeline and compare.
	td, err := b.Run("td", core.TDConfig())
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.K = 2 // small program: trigger the bottom-up analysis early
	sw, err := b.Run("swift", cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("TD:    %8v  %4d top-down summaries\n",
		td.Elapsed.Round(time.Microsecond), td.TDSummaryTotal())
	fmt.Printf("SWIFT: %8v  %4d top-down summaries + %d relational cases (triggered on %d procedures)\n",
		sw.Elapsed.Round(time.Microsecond), sw.TDSummaryTotal(), sw.BUSummaryTotal(), len(sw.Triggered))

	// Both engines must agree on the verdict (Theorem 3.1).
	report, err := b.ErrorReport(sw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nerror report (both engines agree):")
	for _, site := range report {
		fmt.Printf("  %s violates the %s protocol\n", site, b.Lowered.Track[site].Name)
	}

	// Show the relational summaries SWIFT kept: the dominant cases are
	// identities guarded by "the receiver does not alias the tracked
	// object" — the paper's B1-style summaries.
	fmt.Println("\nbottom-up summaries kept by pruning (θ=1):")
	var names []string
	for name := range sw.BU {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rs := sw.BU[name]
		fmt.Printf("  %s:\n", name)
		for _, r := range rs.Rels {
			fmt.Printf("    %s\n", b.TS.RelString(r))
		}
	}
}
