// Quickstart: analyze a small mini-Java program with the SWIFT hybrid
// type-state analysis and print what it finds.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"swift/internal/core"
	"swift/internal/driver"
)

// program declares the classic File protocol and a small program with one
// correct use and one misuse (read after close).
const program = `
property File {
  states closed opened error
  error error
  open:  closed -> opened
  close: opened -> closed
  read:  opened -> opened
}

class Main {
  method main() {
    w = new Worker @worker
    good = new File @goodFile
    bad = new File @badFile
    w.copyAll(good)
    w.readClosed(bad)
  }
}

class Worker {
  method copyAll(f) {
    f.open()
    while (*) { f.read() }
    f.close()
  }
  method readClosed(f) {
    f.open()
    f.close()
    f.read()   // protocol violation: read after close
  }
}
`

func main() {
	// Build the full pipeline: parse, points-to/call-graph analysis,
	// lowering to the command IR, type-state client setup.
	b, err := driver.FromSource(program)
	if err != nil {
		log.Fatal(err)
	}

	// Run the hybrid engine with the paper's default thresholds k=5, θ=1.
	res, err := b.Run("swift", core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	if !res.Completed() {
		log.Fatalf("analysis did not finish: %v", res.Err)
	}

	fmt.Printf("analyzed in %v: %d top-down summaries, %d bottom-up summaries\n",
		res.Elapsed.Round(time.Microsecond), res.TDSummaryTotal(), res.BUSummaryTotal())

	errs, err := b.ErrorReport(res)
	if err != nil {
		log.Fatal(err)
	}
	if len(errs) == 0 {
		fmt.Println("no type-state errors")
		return
	}
	fmt.Println("allocation sites that may reach an error state:")
	for _, site := range errs {
		fmt.Printf("  %s (property %s)\n", site, b.Lowered.Track[site].Name)
	}
}
