// Taint: run the kill/gen taint analysis — the second SWIFT client, whose
// bottom-up side is synthesized automatically from the top-down kill/gen
// description per Section 5.2 of the paper — under all three engines.
//
//	go run ./examples/taint
package main

import (
	"fmt"
	"log"
	"time"

	"swift/internal/core"
	"swift/internal/driver"
	"swift/internal/killgen"
)

// program moves untrusted data around: Data objects allocated at the
// "userInput" site are tainted; send() is a sink; sanitize() clears taint.
// One path sends sanitized data (fine), one sends a config value (fine),
// and one forwards raw user input to send() (alert).
const program = `
property Data {
  states raw error
  error error
  sanitize: raw -> raw
  send:     raw -> raw
}

class Main {
  method main() {
    p = new Pipeline @pipe
    userIn = new Data @userInput
    config = new Data @configData
    p.cleanSend(userIn)
    p.directSend(config)
    p.directSend(userIn)
  }
}

class Pipeline {
  method cleanSend(d) {
    x = d
    x.sanitize()
    x.send()
  }
  method directSend(d) {
    d.send()
  }
}
`

func main() {
	// The front end gives us the lowered command IR; the taint client runs
	// on it directly.
	b, err := driver.FromSource(program)
	if err != nil {
		log.Fatal(err)
	}
	prog := b.Lowered.Prog
	taint := killgen.NewTaint(prog, killgen.TaintConfig{
		Sources:    []string{"userInput"},
		Sanitizers: []string{"sanitize"},
		Sinks:      []string{"send"},
	})
	an, err := core.NewAnalysis[string, string, string](taint, prog)
	if err != nil {
		log.Fatal(err)
	}

	init := taint.Initial()
	for _, engine := range []string{"td", "bu", "swift"} {
		var res *core.Result[string, string, string]
		switch engine {
		case "td":
			res = an.RunTD(init, core.TDConfig())
		case "bu":
			res = an.RunBU(init, core.BUConfig())
		default:
			cfg := core.DefaultConfig()
			cfg.K = 1
			res = an.RunSwift(init, cfg)
		}
		if !res.Completed() {
			log.Fatalf("%s did not finish: %v", engine, res.Err)
		}
		alert := false
		for _, s := range res.ExitStates(prog.Entry, init) {
			if taint.Alerted(s) {
				alert = true
			}
		}
		fmt.Printf("%-5s %8v: taint reaches a sink: %v\n",
			engine, res.Elapsed.Round(time.Microsecond), alert)
	}
	fmt.Println("\nall three engines agree (coincidence theorem); the alert is the raw")
	fmt.Println("userInput flowing through Pipeline.directSend into send().")
}
