// Tuning: sweep the SWIFT thresholds k and θ on one synthetic benchmark
// and print how running time and summary counts respond — a miniature of
// the paper's Tables 3 and 4.
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"
	"time"

	"swift/internal/benchprog"
	"swift/internal/core"
	"swift/internal/driver"
)

func main() {
	profile, ok := benchprog.ProfileByName("toba-s")
	if !ok {
		log.Fatal("unknown benchmark")
	}
	prog, err := benchprog.Generate(profile)
	if err != nil {
		log.Fatal(err)
	}
	b, err := driver.FromHIR(prog)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("k sweep (θ=1) on the toba-s stand-in:")
	fmt.Println("    k      time  TD summaries  triggered")
	for _, k := range []int{1, 2, 5, 10, 50, 200} {
		cfg := core.DefaultConfig()
		cfg.K = k
		cfg.Timeout = time.Minute
		res, err := b.Run("swift", cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %3d  %8v  %12d  %9d\n",
			k, res.Elapsed.Round(time.Millisecond), res.TDSummaryTotal(), len(res.Triggered))
	}

	fmt.Println("\nθ sweep (k=5):")
	fmt.Println("    θ      time  TD summaries  BU cases")
	for _, theta := range []int{1, 2, 3, 4} {
		cfg := core.DefaultConfig()
		cfg.Theta = theta
		cfg.Timeout = time.Minute
		res, err := b.Run("swift", cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %3d  %8v  %12d  %8d\n",
			theta, res.Elapsed.Round(time.Millisecond), res.TDSummaryTotal(), res.BUSummaryTotal())
	}

	fmt.Println("\nSetting k too low triggers summarization before the incoming-state")
	fmt.Println("sample is representative; setting it too high forfeits reuse. Raising θ")
	fmt.Println("keeps more relational cases: cheaper fallbacks, costlier summaries.")
}
