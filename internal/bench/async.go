package bench

// Record/replay integration for the asynchronous hybrid engine: record one
// live (timing-dependent) swift-async run per benchmark into a trace
// directory, then render result tables by replaying those traces. Replay
// is single-threaded and bit-deterministic (see internal/core/trace.go),
// which is what finally lets swift-async participate in the harness's
// byte-identical-table contract: the same trace directory renders the same
// table bytes at any -parallel setting, on any host.

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"swift/internal/core"
)

// asyncThresholds are the thresholds async experiments run at — the
// headline configuration of Table 2 (k=5, θ=1).
const (
	asyncK     = 5
	asyncTheta = 1
)

// tracePath names a benchmark's trace file inside a trace directory.
func tracePath(dir, name string) string {
	return filepath.Join(dir, name+".trace")
}

// dnfPath names a benchmark's did-not-finish marker. A live recording that
// blew a budget or deadline leaves workers with no recorded outcome, so
// its trace cannot replay; the marker records the outcome itself — the
// paper's "timeout" entries are first-class results — and the replay table
// renders it as a DNF row, still byte-identically.
func dnfPath(dir, name string) string {
	return filepath.Join(dir, name+".dnf")
}

// RecordAsync runs swift-async live on every suite benchmark with trace
// recording armed and writes one trace file per benchmark into dir
// (created if missing). The live runs themselves are timing-dependent —
// that is the point: the trace captures whatever schedule this host
// produced, and AsyncReplayTable re-renders it deterministically ever
// after. Runs execute on the worker pool like every other experiment.
func (s *Suite) RecordAsync(dir string, budget Budget) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("bench: record dir: %w", err)
	}
	names := s.sortedNames()
	traces := make([]*core.Trace, len(names))
	dnfs := make([]error, len(names))
	var jobs []func() error
	for i, name := range names {
		i, name := i, name
		jobs = append(jobs, func() error {
			trace := &core.Trace{Label: name}
			cfg := budget.config(asyncK, asyncTheta)
			cfg.RecordTrace = trace
			run, err := s.RunConfig(name, "swift-async", cfg)
			if err != nil {
				return err
			}
			if !run.Completed {
				// An aborted run's trace has spawns with no recorded
				// outcome and cannot replay; classified resource
				// exhaustion is a legitimate benchmark outcome (the
				// paper's timeout entries), recorded as a DNF marker.
				// Anything else is a harness failure.
				resErr := run.Result.Err
				if !errors.Is(resErr, core.ErrBudget) && !errors.Is(resErr, core.ErrDeadline) &&
					!errors.Is(resErr, core.ErrClientFault) && !errors.Is(resErr, core.ErrClientPanic) {
					return fmt.Errorf("bench: record %s: %w", name, resErr)
				}
				dnfs[i] = resErr
			}
			traces[i] = trace
			return nil
		})
	}
	if err := s.forEach(jobs); err != nil {
		return err
	}
	for i, name := range names {
		// Exactly one of .trace/.dnf survives, so a re-record that flips a
		// benchmark's outcome never leaves a stale file behind.
		if dnfs[i] != nil {
			os.Remove(tracePath(dir, name))
			if err := os.WriteFile(dnfPath(dir, name), []byte(dnfs[i].Error()+"\n"), 0o644); err != nil {
				return err
			}
			continue
		}
		os.Remove(dnfPath(dir, name))
		f, err := os.Create(tracePath(dir, name))
		if err != nil {
			return err
		}
		if err := traces[i].Encode(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// replayAsync replays one benchmark's recorded trace on a fresh pipeline.
func (s *Suite) replayAsync(dir, name string, budget Budget) (*EngineRun, error) {
	f, err := os.Open(tracePath(dir, name))
	if err != nil {
		return nil, fmt.Errorf("bench: replay %s (run RecordAsync / swiftbench -record first?): %w", name, err)
	}
	trace, err := core.DecodeTrace(f)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("bench: replay %s: %w", name, err)
	}
	cfg := budget.config(asyncK, asyncTheta)
	cfg.ReplayTrace = trace
	run, err := s.RunConfig(name, "swift-async", cfg)
	if err != nil {
		return nil, err
	}
	if errors.Is(run.Result.Err, core.ErrTraceMismatch) {
		// A mismatching trace is a stale or foreign recording, not a
		// benchmark outcome — surface it instead of rendering a DNF cell.
		return nil, fmt.Errorf("bench: replay %s: %w", name, run.Result.Err)
	}
	return run, nil
}

// AsyncReplayTable renders the asynchronous engine's result table by
// replaying the traces recorded in dir. Output is byte-identical across
// repeated renders, -parallel settings and hosts — the schedule is pinned
// by the traces, so the run's counters are as deterministic as the
// synchronous engines'.
func (s *Suite) AsyncReplayTable(w io.Writer, budget Budget, dir string) error {
	names := s.sortedNames()
	rows := make([][]string, len(names))
	var jobs []func() error
	for i, name := range names {
		i, name := i, name
		jobs = append(jobs, func() error {
			if _, err := os.Stat(dnfPath(dir, name)); err == nil {
				// The recorded live run did not finish; there is no
				// schedule to replay, only the outcome.
				rows[i] = []string{name, "DNF", "-", "-", "-", "-", "-", "-"}
				return nil
			}
			run, err := s.replayAsync(dir, name, budget)
			if err != nil {
				return err
			}
			res := run.Result
			rows[i] = []string{
				name,
				okOrDNF(run.Completed, run.Cost),
				fmtK(run.TDSummaries),
				fmtK(run.BUSummaries),
				fmtK(res.CallsViaBU),
				fmtK(res.CallsInSigma),
				fmt.Sprintf("%d", len(res.Triggered)),
				fmt.Sprintf("%d", len(res.BUFailed)),
			}
			s.Release(name)
			return nil
		})
	}
	if err := s.forEach(jobs); err != nil {
		return err
	}
	header := []string{"Benchmark", "Time", "TD summ.", "BU summ.", "Calls via BU", "Calls in Σ", "Triggers", "BU failed"}
	fmt.Fprintln(w, "Swift-async replay (k=5, θ=1) — deterministic re-run of recorded schedules")
	table(w, header, rows)
	return nil
}
