package bench

import (
	"os"
	"strings"
	"testing"
)

// TestAsyncRecordReplayByteIdentical extends the harness determinism
// contract to the asynchronous engine: once a schedule is recorded, the
// replay table renders byte-identically across repeated renders and
// -parallel settings (run under -race this also exercises concurrent
// replays for data races).
func TestAsyncRecordReplayByteIdentical(t *testing.T) {
	dir := t.TempDir()
	rec := smallSuite(2)
	if err := rec.RecordAsync(dir, QuickBudget()); err != nil {
		t.Fatalf("record: %v", err)
	}
	for _, p := range rec.Profiles {
		if _, err := os.Stat(tracePath(dir, p.Name)); err != nil {
			t.Fatalf("no trace written for %s: %v", p.Name, err)
		}
	}
	render := func(parallel int) string {
		s := smallSuite(parallel)
		var b strings.Builder
		if err := s.AsyncReplayTable(&b, QuickBudget(), dir); err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return b.String()
	}
	serial := render(1)
	for _, parallel := range []int{2, 8} {
		if got := render(parallel); got != serial {
			t.Errorf("parallel=%d replay table differs from serial:\n--- serial ---\n%s--- parallel ---\n%s",
				parallel, serial, got)
		}
	}
	for _, name := range []string{"jpat-p", "elevator", "toba-s"} {
		if !strings.Contains(serial, name) {
			t.Errorf("replay table missing %s:\n%s", name, serial)
		}
	}
}

// TestAsyncReplayMissingTrace pins the error message pointing the user at
// RecordAsync when the trace directory is missing or incomplete.
func TestAsyncReplayMissingTrace(t *testing.T) {
	s := smallSuite(1)
	var b strings.Builder
	err := s.AsyncReplayTable(&b, QuickBudget(), t.TempDir())
	if err == nil || !strings.Contains(err.Error(), "RecordAsync") {
		t.Fatalf("err = %v, want a hint at RecordAsync", err)
	}
}

// TestFaultBudgetChaosTable smokes the chaos mode: with a seeded fault
// plan armed on every run, Table 2 must still render — runs that abort
// become DNF cells instead of failing the experiment.
func TestFaultBudgetChaosTable(t *testing.T) {
	s := smallSuite(2)
	budget := QuickBudget()
	budget.FaultEvery = 5000
	budget.FaultSeed = 7
	var b strings.Builder
	if err := s.Table2(&b, budget); err != nil {
		t.Fatalf("chaos table: %v", err)
	}
	if !strings.Contains(b.String(), "jpat-p") {
		t.Errorf("unexpected chaos table:\n%s", b.String())
	}
}
