// Package bench is the experiment harness of the reproduction: it runs the
// three engines over the synthetic benchmark suite and renders every table
// and figure of the paper's evaluation section (Tables 1–4 and Figure 5).
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"swift/internal/benchprog"
	"swift/internal/core"
	"swift/internal/driver"
	"swift/internal/hir"
)

// Budget models the paper's testbed limits (24 h timeout, 16 GB memory).
// An engine that exceeds a budget "did not finish", like the paper's
// timeout/OOM entries. The defaults are sized so the expected shape emerges
// in seconds per benchmark: the hybrid finishes everywhere, the top-down
// baseline fails on the largest programs, and the unpruned bottom-up
// baseline fails on all but the smallest.
type Budget struct {
	PathEdges int
	Relations int
	Timeout   time.Duration
}

// DefaultBudget returns the budget used for the headline tables. The
// solvers are fully deterministic, so the exact thresholds reproduce the
// same completion pattern on every run: the top-down baseline's path-edge
// count exceeds the budget on exactly the three largest benchmarks, and
// the unpruned bottom-up baseline's relation count exceeds it on all but
// the two smallest.
func DefaultBudget() Budget {
	return Budget{
		PathEdges: 8_000_000,
		Relations: 100_000,
		Timeout:   300 * time.Second,
	}
}

// QuickBudget is a scaled-down budget for smoke runs and unit tests.
func QuickBudget() Budget {
	return Budget{
		PathEdges: 300_000,
		Relations: 60_000,
		Timeout:   30 * time.Second,
	}
}

// config builds an engine configuration from a budget and thresholds.
func (b Budget) config(k, theta int) core.Config {
	cfg := core.DefaultConfig()
	cfg.K = k
	cfg.Theta = theta
	cfg.MaxPathEdges = b.PathEdges
	cfg.MaxRelations = b.Relations
	cfg.Timeout = b.Timeout
	return cfg
}

// Suite caches built pipelines per benchmark so several experiments can
// share them.
type Suite struct {
	Profiles []benchprog.Profile
	builds   map[string]*driver.Build
	progs    map[string]*hir.Program
}

// NewSuite returns a suite over the full 12-benchmark set.
func NewSuite() *Suite {
	return &Suite{
		Profiles: benchprog.Profiles(),
		builds:   map[string]*driver.Build{},
		progs:    map[string]*hir.Program{},
	}
}

// Build returns the prepared pipeline for a benchmark, generating and
// caching it on first use.
func (s *Suite) Build(name string) (*driver.Build, error) {
	if b, ok := s.builds[name]; ok {
		return b, nil
	}
	p, ok := benchprog.ProfileByName(name)
	if !ok {
		return nil, fmt.Errorf("bench: unknown benchmark %q", name)
	}
	prog, err := benchprog.Generate(p)
	if err != nil {
		return nil, err
	}
	b, err := driver.FromHIR(prog)
	if err != nil {
		return nil, err
	}
	s.progs[name] = prog
	s.builds[name] = b
	return b, nil
}

// Program returns the benchmark's HIR (after Build).
func (s *Suite) Program(name string) *hir.Program { return s.progs[name] }

// Release drops a cached pipeline. Analysis runs grow the pipeline's
// interning tables (a budget-exhausted baseline run interns millions of
// states), so experiments that are done with a benchmark release it to keep
// the whole-suite memory footprint flat.
func (s *Suite) Release(name string) {
	delete(s.builds, name)
	delete(s.progs, name)
}

// EngineRun is the outcome of one engine on one benchmark.
type EngineRun struct {
	Benchmark   string
	Engine      string
	Elapsed     time.Duration
	Completed   bool
	TDSummaries int
	BUSummaries int
	Result      *driver.Result
}

// Run executes one engine on one benchmark.
func (s *Suite) Run(name, engine string, budget Budget, k, theta int) (*EngineRun, error) {
	b, err := s.Build(name)
	if err != nil {
		return nil, err
	}
	res, err := b.Run(engine, budget.config(k, theta))
	if err != nil {
		return nil, err
	}
	return &EngineRun{
		Benchmark:   name,
		Engine:      engine,
		Elapsed:     res.Elapsed,
		Completed:   res.Completed(),
		TDSummaries: res.TDSummaryTotal(),
		BUSummaries: res.BUSummaryTotal(),
		Result:      res,
	}, nil
}

// ---- shared rendering helpers ----

// fmtDur renders a duration in the paper's style (1m53s, 41s, 0.9s).
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Minute:
		m := int(d.Minutes())
		s := int(d.Seconds()) - 60*m
		return fmt.Sprintf("%dm%02ds", m, s)
	case d >= time.Second:
		return fmt.Sprintf("%.1fs", d.Seconds())
	default:
		return fmt.Sprintf("%dms", d.Milliseconds())
	}
}

// fmtK renders a count in thousands like the paper's tables ("6.5k").
func fmtK(n int) string {
	switch {
	case n >= 100_000:
		return fmt.Sprintf("%dk", n/1000)
	case n >= 1000:
		return fmt.Sprintf("%.1fk", float64(n)/1000)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// fmtSpeedup renders a speedup factor ("24X", "0.5X", "-").
func fmtSpeedup(base, other time.Duration, baseOK, otherOK bool) string {
	if !baseOK || !otherOK || other <= 0 {
		return "-"
	}
	f := float64(base) / float64(other)
	if f >= 10 {
		return fmt.Sprintf("%.0fX", f)
	}
	return fmt.Sprintf("%.1fX", f)
}

// table writes an aligned text table.
func table(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(header)
	total := len(header) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, r := range rows {
		line(r)
	}
}

// sortedNames returns the suite's benchmark names in Table 1 order.
func (s *Suite) sortedNames() []string {
	names := make([]string, len(s.Profiles))
	for i, p := range s.Profiles {
		names[i] = p.Name
	}
	return names
}

// descByCount sorts counts descending (Figure 5's x-axis ordering).
func descByCount(counts []int) []int {
	out := append([]int(nil), counts...)
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}
