// Package bench is the experiment harness of the reproduction: it runs the
// engines over the synthetic benchmark suite and renders every table and
// figure of the paper's evaluation section (Tables 1–4 and Figure 5), plus
// the asynchronous engine's record/replay table (async.go).
//
// Runs are independent — each gets its own freshly built pipeline — so the
// harness executes them on a bounded worker pool (Suite.Parallel) and
// assembles results in deterministic profile order: every table and figure
// renders byte-identically whatever the parallelism. Table cells therefore
// never contain wall-clock time; they show the engines' deterministic work
// counters scaled to a nominal cost duration (see EngineRun.Cost), while
// real wall-clock goes to the Telemetry stream.
package bench

import (
	"context"
	"fmt"
	"io"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"swift/internal/benchprog"
	"swift/internal/core"
	"swift/internal/driver"
	"swift/internal/hir"
)

// Budget models the paper's testbed limits (24 h timeout, 16 GB memory).
// An engine that exceeds a budget "did not finish", like the paper's
// timeout/OOM entries. The defaults are sized so the expected shape emerges
// in seconds per benchmark: the hybrid finishes everywhere, the top-down
// baseline fails on the largest programs, and the unpruned bottom-up
// baseline fails on all but the smallest.
type Budget struct {
	PathEdges int
	Relations int
	Timeout   time.Duration

	// RawCFG and NoTransferMemo forward the corresponding core.Config A/B
	// knobs: run the order-insensitive solvers on the uncompressed
	// control-flow view and/or without the per-superedge transfer caches.
	// Result tables are identical either way (budgets are counted in
	// original-graph units); the knobs exist so the experiment harness can
	// time the ablations.
	RawCFG         bool
	NoTransferMemo bool

	// NoSparse and NoStructIndex forward the sparse-scheduler ablation
	// knobs: dense FIFO fact draining, or sparse draining without the
	// loop-structure index (plain RPO batching, no region memoization).
	// Like RawCFG, result tables are identical either way.
	NoSparse      bool
	NoStructIndex bool

	// FaultEvery, when positive, arms a seeded fault-injection plan on
	// every engine run (roughly one injected fault per FaultEvery client
	// operations, drawn from FaultSeed): a chaos-smoke mode proving the
	// harness renders tables even when runs crash-degrade or abort. Each
	// run gets its own plan — core.FaultPlan carries a per-run operation
	// counter and must not be shared across concurrent runs.
	FaultEvery int64
	FaultSeed  uint64
}

// DefaultBudget returns the budget used for the headline tables. The
// solvers are fully deterministic, so the exact thresholds reproduce the
// same completion pattern on every run: the top-down baseline's path-edge
// count exceeds the budget on exactly the three largest benchmarks, and
// the unpruned bottom-up baseline's relation count exceeds it on all but
// the two smallest.
func DefaultBudget() Budget {
	return Budget{
		PathEdges: 8_000_000,
		Relations: 100_000,
		Timeout:   300 * time.Second,
	}
}

// QuickBudget is a scaled-down budget for smoke runs and unit tests.
func QuickBudget() Budget {
	return Budget{
		PathEdges: 300_000,
		Relations: 60_000,
		Timeout:   30 * time.Second,
	}
}

// config builds an engine configuration from a budget and thresholds.
func (b Budget) config(k, theta int) core.Config {
	cfg := core.DefaultConfig()
	cfg.K = k
	cfg.Theta = theta
	cfg.MaxPathEdges = b.PathEdges
	cfg.MaxRelations = b.Relations
	cfg.Timeout = b.Timeout
	cfg.RawCFG = b.RawCFG
	cfg.NoTransferMemo = b.NoTransferMemo
	cfg.NoSparse = b.NoSparse
	cfg.NoStructIndex = b.NoStructIndex
	if b.FaultEvery > 0 {
		cfg.Fault = core.SeededFaultPlan(b.FaultSeed, b.FaultEvery)
	}
	return cfg
}

// Suite caches generated benchmark programs (and one inspection pipeline
// per benchmark) so several experiments can share them. The cache is safe
// for concurrent use: lookups are single-flight per benchmark, so parallel
// runs of the same benchmark generate it once.
type Suite struct {
	Profiles []benchprog.Profile

	// Parallel bounds how many engine runs execute concurrently in the
	// experiment sweeps; zero or negative means GOMAXPROCS.
	Parallel int

	// Telemetry, when non-nil, receives one line of real wall-clock timing
	// per engine run. It is kept separate from the table writers so table
	// output stays byte-identical across Parallel settings.
	Telemetry io.Writer

	mu      sync.Mutex
	entries map[string]*suiteEntry
	telMu   sync.Mutex
}

// suiteEntry single-flights one benchmark's program generation and
// inspection build.
type suiteEntry struct {
	profile benchprog.Profile

	progOnce sync.Once
	prog     *hir.Program
	progErr  error

	buildOnce sync.Once
	build     *driver.Build
	buildErr  error
}

// NewSuite returns a suite over the full 12-benchmark set.
func NewSuite() *Suite {
	return &Suite{
		Profiles: benchprog.Profiles(),
		entries:  map[string]*suiteEntry{},
	}
}

// entry returns the benchmark's cache slot, creating it if needed.
func (s *Suite) entry(name string) (*suiteEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[name]; ok {
		return e, nil
	}
	p, ok := benchprog.ProfileByName(name)
	if !ok {
		return nil, fmt.Errorf("bench: unknown benchmark %q", name)
	}
	e := &suiteEntry{profile: p}
	s.entries[name] = e
	return e, nil
}

// Program returns the benchmark's generated HIR, generating and caching it
// on first use. The returned program is read-only shared state: pipeline
// construction never mutates it, so concurrent builds may share it.
func (s *Suite) Program(name string) (*hir.Program, error) {
	e, err := s.entry(name)
	if err != nil {
		return nil, err
	}
	e.progOnce.Do(func() {
		e.prog, e.progErr = benchprog.Generate(e.profile)
	})
	return e.prog, e.progErr
}

// Build returns the benchmark's cached inspection pipeline (used by the
// static-characteristics table and by experiments that only read lowered
// code), generating it on first use. Engine runs do NOT use this pipeline —
// see RunConfig.
func (s *Suite) Build(name string) (*driver.Build, error) {
	prog, err := s.Program(name)
	if err != nil {
		return nil, err
	}
	e, err := s.entry(name)
	if err != nil {
		return nil, err
	}
	e.buildOnce.Do(func() {
		e.build, e.buildErr = driver.FromHIR(prog)
	})
	return e.build, e.buildErr
}

// Release drops a benchmark's cached program and inspection pipeline.
// Experiments that are done with a benchmark release it to keep the
// whole-suite memory footprint flat. Safe to call concurrently; runs that
// already hold the program keep it alive until they finish.
func (s *Suite) Release(name string) {
	s.mu.Lock()
	delete(s.entries, name)
	s.mu.Unlock()
}

// telemetry writes one formatted line to the Telemetry stream, if any.
func (s *Suite) telemetry(format string, args ...any) {
	if s.Telemetry == nil {
		return
	}
	s.telMu.Lock()
	defer s.telMu.Unlock()
	fmt.Fprintf(s.Telemetry, format, args...)
}

// costPerWorkUnit scales the engines' deterministic work counters to the
// nominal durations shown in tables: 1 µs per step or materialized object.
const costPerWorkUnit = time.Microsecond

// EngineRun is the outcome of one engine on one benchmark.
type EngineRun struct {
	Benchmark string
	Engine    string
	// Elapsed is the run's real wall-clock time. It varies with load,
	// hardware and parallelism, so it is reported through Suite.Telemetry
	// and never rendered into tables.
	Elapsed time.Duration
	// Work is the run's deterministic machine-independent cost
	// (Result.WorkUnits): identical across repeated runs and across
	// parallelism settings.
	Work int
	// Cost is Work scaled by costPerWorkUnit — the "time" tables print.
	Cost        time.Duration
	Completed   bool
	TDSummaries int
	BUSummaries int
	Result      *driver.Result
}

// RunConfig executes one engine on one benchmark with an explicit
// configuration. Every run gets a freshly built pipeline: analysis runs
// grow a pipeline's interning tables, and interning history influences how
// the pruning operator breaks ranking ties, so sharing a pipeline across
// runs would make results depend on run order. Fresh pipelines make every
// run self-contained, which is also what lets independent runs execute
// concurrently and still produce output identical to a serial sweep.
func (s *Suite) RunConfig(name, engine string, cfg core.Config) (*EngineRun, error) {
	prog, err := s.Program(name)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	b, err := driver.FromHIR(prog)
	if err != nil {
		return nil, err
	}
	// Label the run for CPU profiles, so swiftbench -cpuprofile attributes
	// samples per benchmark and engine (sliced runs additionally label each
	// slice; see core.RunSliced).
	var res *driver.Result
	pprof.Do(context.Background(),
		pprof.Labels("suite", name, "engine", engine),
		func(context.Context) { res, err = b.Run(engine, cfg) })
	if err != nil {
		return nil, err
	}
	wall := time.Since(start)
	run := &EngineRun{
		Benchmark:   name,
		Engine:      engine,
		Elapsed:     res.Elapsed,
		Work:        res.WorkUnits(),
		Cost:        time.Duration(res.WorkUnits()) * costPerWorkUnit,
		Completed:   res.Completed(),
		TDSummaries: res.TDSummaryTotal(),
		BUSummaries: res.BUSummaryTotal(),
		Result:      res,
	}
	s.telemetry("run %-10s %-6s k=%-3d θ=%-3d wall=%-8s (build+run) cost=%s\n",
		name, engine, cfg.K, cfg.Theta, fmtDur(wall), fmtDur(run.Cost))
	if res.TD != nil && res.TD.Sparse.Enabled {
		// Structure telemetry of the sparse scheduler. pops compares the
		// priority worklist's node activations against the dense solver's
		// per-fact pops (== Steps at completion); skipped counts facts the
		// dirty frontier installed by region replay without ever scheduling
		// their nodes.
		sp := res.TD.Sparse
		s.telemetry("  struct %-10s %-6s regions=%d depth=%d memo=%d pops=%d/%d skipped=%d stale=%d rmemo=%d/%d/%d\n",
			name, engine, sp.Regions, sp.MaxDepth, sp.MemoRegions,
			sp.Pops, res.TD.Steps, sp.ReplayFacts, sp.StalePops,
			sp.RegionHits, sp.RegionMisses, sp.RegionFallbacks)
	}
	return run, nil
}

// Run executes one engine on one benchmark under a budget with the given
// thresholds.
func (s *Suite) Run(name, engine string, budget Budget, k, theta int) (*EngineRun, error) {
	return s.RunConfig(name, engine, budget.config(k, theta))
}

// ---- shared rendering helpers ----

// fmtDur renders a duration in the paper's style (1m53s, 41s, 0.9s).
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Minute:
		m := int(d.Minutes())
		s := int(d.Seconds()) - 60*m
		return fmt.Sprintf("%dm%02ds", m, s)
	case d >= time.Second:
		return fmt.Sprintf("%.1fs", d.Seconds())
	default:
		return fmt.Sprintf("%dms", d.Milliseconds())
	}
}

// fmtK renders a count in thousands like the paper's tables ("6.5k").
func fmtK(n int) string {
	switch {
	case n >= 100_000:
		return fmt.Sprintf("%dk", n/1000)
	case n >= 1000:
		return fmt.Sprintf("%.1fk", float64(n)/1000)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// fmtSpeedup renders a speedup factor ("24X", "0.5X", "-").
func fmtSpeedup(base, other time.Duration, baseOK, otherOK bool) string {
	if !baseOK || !otherOK || other <= 0 {
		return "-"
	}
	f := float64(base) / float64(other)
	if f >= 10 {
		return fmt.Sprintf("%.0fX", f)
	}
	return fmt.Sprintf("%.1fX", f)
}

// table writes an aligned text table.
func table(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(header)
	total := len(header) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, r := range rows {
		line(r)
	}
}

// sortedNames returns the suite's benchmark names in Table 1 order.
func (s *Suite) sortedNames() []string {
	names := make([]string, len(s.Profiles))
	for i, p := range s.Profiles {
		names[i] = p.Name
	}
	return names
}

// descByCount sorts counts descending (Figure 5's x-axis ordering).
func descByCount(counts []int) []int {
	out := append([]int(nil), counts...)
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}
