package bench

import (
	"strings"
	"testing"
	"time"
)

func TestTable1Renders(t *testing.T) {
	s := NewSuite()
	var b strings.Builder
	if err := s.Table1(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"jpat-p", "sablecc-j", "classes app", "KLOC"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
	// 12 benchmark rows plus header material.
	if rows := strings.Count(out, "\n"); rows < 14 {
		t.Errorf("Table 1 has %d lines", rows)
	}
}

func TestSuiteRunAndCaching(t *testing.T) {
	s := NewSuite()
	b1, err := s.Build("jpat-p")
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := s.Build("jpat-p")
	if b1 != b2 {
		t.Error("Build not cached")
	}
	if _, err := s.Build("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
	run, err := s.Run("jpat-p", "swift", QuickBudget(), 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !run.Completed || run.TDSummaries <= 0 {
		t.Errorf("run = %+v", run)
	}
}

func TestSmallBenchmarksShapeQuick(t *testing.T) {
	// On the two smallest benchmarks every engine completes under the
	// quick budget — the top of Table 2's completion pattern.
	s := NewSuite()
	for _, name := range []string{"jpat-p", "elevator"} {
		for _, engine := range []string{"td", "bu", "swift"} {
			run, err := s.Run(name, engine, QuickBudget(), 5, 1)
			if err != nil {
				t.Fatal(err)
			}
			if !run.Completed {
				t.Errorf("%s/%s did not complete under quick budget", name, engine)
			}
		}
	}
}

func TestFormatters(t *testing.T) {
	if got := fmtDur(90 * time.Second); got != "1m30s" {
		t.Errorf("fmtDur = %q", got)
	}
	if got := fmtDur(1500 * time.Millisecond); got != "1.5s" {
		t.Errorf("fmtDur = %q", got)
	}
	if got := fmtDur(12 * time.Millisecond); got != "12ms" {
		t.Errorf("fmtDur = %q", got)
	}
	if got := fmtK(6500); got != "6.5k" {
		t.Errorf("fmtK = %q", got)
	}
	if got := fmtK(2260000); got != "2260k" {
		t.Errorf("fmtK = %q", got)
	}
	if got := fmtK(82); got != "82" {
		t.Errorf("fmtK = %q", got)
	}
	if got := fmtSpeedup(10*time.Second, time.Second, true, true); got != "10X" {
		t.Errorf("fmtSpeedup = %q", got)
	}
	if got := fmtSpeedup(time.Second, 2*time.Second, true, true); got != "0.5X" {
		t.Errorf("fmtSpeedup = %q", got)
	}
	if got := fmtSpeedup(time.Second, time.Second, false, true); got != "-" {
		t.Errorf("fmtSpeedup DNF = %q", got)
	}
	if got := descByCount([]int{1, 5, 3}); got[0] != 5 || got[2] != 1 {
		t.Errorf("descByCount = %v", got)
	}
}

func TestTableRenderer(t *testing.T) {
	var b strings.Builder
	table(&b, []string{"a", "bb"}, [][]string{{"xxx", "y"}, {"z", "wwww"}})
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Errorf("missing rule: %q", lines[1])
	}
}
