package bench

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"swift/internal/benchprog"
	"swift/internal/core"
	"swift/internal/driver"
	"swift/internal/store"
)

// EditTable is the edit-stream incremental benchmark: a deterministic
// stream of single-procedure edits to one benchmark program
// (benchprog.EditStream), each analyzed cold and incrementally against a
// shared store, across all four engines. The version sequence is the
// base program, each edit applied to the base in isolation, and a final
// revert (the base again). Per version the table reports the
// invalidation frontier (procedures whose call-graph-closure digest
// changed, from driver.IndexClosures), whether the client's frozen
// construction survived the edit, cold-versus-incremental work units,
// and summary hit rates.
//
// The table is diagnostic; the correctness checks are hard errors:
//
//   - On the revert, every engine must restore the base run's tables
//     snapshot, reuse its summaries without a miss, and reproduce its
//     result tables byte for byte (swift-async via record/replay of the
//     base run's schedule).
//   - The hybrid engine must answer at least one trigger from the store
//     on the closure-preserving edits (those that keep the frozen
//     digest) — the incremental-reuse acceptance criterion.
func (s *Suite) EditTable(w io.Writer, budget Budget, dir, benchmark string, seed int64, nEdits int) error {
	if budget.FaultEvery > 0 {
		return fmt.Errorf("bench: EditTable is incompatible with fault injection (fault-armed runs bypass the store)")
	}
	p, ok := benchprog.ProfileByName(benchmark)
	if !ok {
		return fmt.Errorf("bench: unknown benchmark %q", benchmark)
	}
	st, err := store.Open(dir, 256<<20)
	if err != nil {
		return err
	}
	// k=1, θ=1: the low-threshold configuration triggers run_bu on nearly
	// every procedure, which is what gives the summary store something to
	// reuse between versions.
	cfg := budget.config(1, 1)

	edits, err := benchprog.EditStream(p, seed, nEdits)
	if err != nil {
		return err
	}
	type version struct {
		label string
		edit  string
		edits []benchprog.Edit

		// Engine-independent shape of the edit, filled on the first pass.
		frontier   int
		procs      int
		frozenSame bool
	}
	versions := make([]*version, 0, nEdits+2)
	versions = append(versions, &version{label: "base", edit: "-"})
	for i, e := range edits {
		versions = append(versions, &version{
			label: fmt.Sprintf("edit%d", i+1), edit: e.String(), edits: []benchprog.Edit{e},
		})
	}
	versions = append(versions, &version{label: "revert", edit: "-"})

	build := func(v *version) (*driver.Build, error) {
		prog, err := benchprog.GenerateEdited(p, v.edits...)
		if err != nil {
			return nil, err
		}
		return driver.FromHIR(prog)
	}

	// Shape the versions once: frontier sizes and frozen-digest survival
	// do not depend on the engine.
	baseBuild, err := build(versions[0])
	if err != nil {
		return err
	}
	baseIdx := driver.IndexClosures(baseBuild)
	baseFrozen := baseBuild.TS.FrozenDigest()
	for _, v := range versions {
		b, err := build(v)
		if err != nil {
			return err
		}
		v.frontier = len(driver.IndexClosures(b).Changed(baseIdx))
		v.procs = len(baseIdx)
		v.frozenSame = b.TS.FrozenDigest() == baseFrozen
	}

	engines := []string{"td", "bu", "swift", "swift-async"}
	var rows [][]string
	var swiftPreservingHits, preservingEdits int
	for _, v := range versions[1 : len(versions)-1] {
		if v.frozenSame {
			preservingEdits++
		}
	}

	for _, engine := range engines {
		var trace *core.Trace
		var baseEnc []byte
		for vi, v := range versions {
			revert := vi == len(versions)-1

			// Cold baseline: the same version with no store at all.
			bCold, err := build(v)
			if err != nil {
				return err
			}
			resCold, _, err := driver.Warm{}.Run(bCold, engine, cfg)
			if err != nil {
				return err
			}

			// Incremental run against the shared store. The base
			// swift-async run records its schedule; the revert replays it,
			// which is what makes async byte-identity checkable.
			cfgInc := cfg
			if engine == "swift-async" {
				if vi == 0 {
					trace = &core.Trace{}
					cfgInc.RecordTrace = trace
				} else if revert {
					cfgInc.ReplayTrace = trace
				}
			}
			start := time.Now()
			bInc, err := build(v)
			if err != nil {
				return err
			}
			resInc, stats, err := driver.Warm{Store: st}.Run(bInc, engine, cfgInc)
			if err != nil {
				return err
			}
			s.telemetry("editbench %-10s %-11s %-7s wall=%-8s hits=%d misses=%d\n",
				benchmark, engine, v.label, fmtDur(time.Since(start)), stats.SummaryHits, stats.SummaryMisses)

			rows = append(rows, []string{
				engine, v.label, v.edit,
				fmt.Sprintf("%d/%d", v.frontier, v.procs),
				map[bool]string{true: "same", false: "changed"}[v.frozenSame],
				fmtK(resCold.WorkUnits()), fmtK(resInc.WorkUnits()),
				fmt.Sprintf("%d/%d", stats.SummaryHits, stats.SummaryMisses),
				yn(stats.RestoredTables), yn(stats.Relaxed),
			})

			if engine == "swift" && vi > 0 && !revert && v.frozenSame {
				swiftPreservingHits += int(stats.SummaryHits)
			}
			enc := driver.EncodeResultTables(bInc, resInc)
			if vi == 0 {
				baseEnc = enc
			}
			if revert {
				if !stats.RestoredTables {
					return fmt.Errorf("bench: %s: revert did not restore the base tables snapshot", engine)
				}
				// Two engines may legitimately re-miss on the revert: bu does
				// not publish budget-aborted outcomes (the abort is its
				// terminal result, recomputed identically), and swift-async's
				// intermediate edit runs — live schedules — overwrite
				// shared-key summaries with frontiers from their own
				// schedules, which the replayed base schedule then rejects.
				// Byte-identity below is the binding check for both.
				if resInc.Completed() && engine != "swift-async" && stats.SummaryMisses != 0 {
					return fmt.Errorf("bench: %s: revert had %d summary misses", engine, stats.SummaryMisses)
				}
				if engine == "swift-async" && stats.SummaryHits == 0 {
					return fmt.Errorf("bench: swift-async: replayed revert reused no summaries")
				}
				if !bytes.Equal(baseEnc, enc) {
					return fmt.Errorf("bench: %s: reverted result tables differ from the base run", engine)
				}
			}
		}
	}

	fmt.Fprintf(w, "Edit-stream incremental benchmark (%s, k=1, θ=1, seed %d, %d edits) — store: %s\n\n",
		benchmark, seed, nEdits, storeDesc(dir))
	table(w, []string{"engine", "version", "edit", "invalidated", "frozen", "cold-work", "inc-work", "hits/miss", "restored", "relaxed"}, rows)

	if preservingEdits > 0 && swiftPreservingHits == 0 {
		return fmt.Errorf("bench: swift reused no summaries across %d closure-preserving edits", preservingEdits)
	}
	sst := st.Stats()
	fmt.Fprintf(w, "\neditbench: %d edits (%d closure-preserving), revert byte-identical under td/bu/swift/swift-async, swift reused %d summaries on closure-preserving edits\n",
		nEdits, preservingEdits, swiftPreservingHits)
	fmt.Fprintf(w, "store: mem %d hits / %d misses, disk %d hits / %d misses, %d puts, %d deletes, %d evictions\n",
		sst.MemHits, sst.MemMisses, sst.DiskHits, sst.DiskMisses, sst.Puts, sst.Deletes, sst.Evictions)
	return nil
}
