package bench

import (
	"bytes"
	"regexp"
	"testing"
)

// TestEditTable is the editbench smoke: a short edit stream over a small
// benchmark must pass the harness's hard checks (revert byte-identity
// under all four engines, hybrid summary reuse on closure-preserving
// edits) and say so in the summary line. With nEdits=2 the stream's kind
// cycle yields one tweak and one addcall — both closure-preserving — so
// the reuse check is genuinely exercised.
func TestEditTable(t *testing.T) {
	s := NewSuite()
	var out bytes.Buffer
	if err := s.EditTable(&out, QuickBudget(), t.TempDir(), "elevator", 7, 2); err != nil {
		t.Fatalf("EditTable: %v\n%s", err, out.String())
	}
	if !regexp.MustCompile(`revert byte-identical under td/bu/swift/swift-async`).Match(out.Bytes()) {
		t.Fatalf("summary line missing:\n%s", out.String())
	}
	if regexp.MustCompile(`swift reused 0 summaries`).Match(out.Bytes()) {
		t.Fatalf("no summary reuse on closure-preserving edits:\n%s", out.String())
	}
}

// TestEditTableRejectsFaultInjection mirrors WarmTable's guard.
func TestEditTableRejectsFaultInjection(t *testing.T) {
	s := NewSuite()
	budget := QuickBudget()
	budget.FaultEvery = 100
	if err := s.EditTable(&bytes.Buffer{}, budget, t.TempDir(), "elevator", 7, 2); err == nil {
		t.Fatal("EditTable accepted a fault-armed budget")
	}
}
