package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"swift/internal/core"
	"swift/internal/killgen"
)

// TaintTable runs the three engines with the kill/gen taint client over the
// smaller suite members — the framework-generality experiment: the same
// hybrid machinery, triggered and pruned the same way, drives a completely
// different abstract domain (bit-vector facts with guarded kill/gen
// relations synthesized per Section 5.2).
func (s *Suite) TaintTable(w io.Writer, budget Budget) error {
	header := []string{"benchmark", "TD time", "BU time", "SWIFT time", "TD summ (td)", "(swift)", "alerts"}
	var rows [][]string
	for _, name := range []string{"jpat-p", "elevator", "toba-s", "javasrc-p", "hedc", "antlr"} {
		b, err := s.Build(name)
		if err != nil {
			return err
		}
		prog := b.Lowered.Prog
		// Every third tracked allocation site is a taint source; reads are
		// sinks and close() sanitizes.
		var sites []string
		for site := range b.Lowered.Track {
			sites = append(sites, site)
		}
		sort.Strings(sites)
		var sources []string
		for i, site := range sites {
			if i%3 == 0 {
				sources = append(sources, site)
			}
		}
		taint := killgen.NewTaint(prog, killgen.TaintConfig{
			Sources:    sources,
			Sanitizers: []string{"close"},
			Sinks:      []string{"read"},
		})
		an, err := core.NewAnalysis[string, string, string](taint, prog)
		if err != nil {
			return err
		}
		init := taint.Initial()

		run := func(engine string, k, theta int) *core.Result[string, string, string] {
			cfg := budget.config(k, theta)
			switch engine {
			case "td":
				cfg.K = core.Unlimited
				return an.RunTD(init, cfg)
			case "bu":
				cfg.Theta = core.Unlimited
				return an.RunBU(init, cfg)
			default:
				return an.RunSwift(init, cfg)
			}
		}
		td := run("td", 5, 1)
		bu := run("bu", 5, 1)
		sw := run("swift", 5, 1)
		alerts := 0
		if sw.Completed() {
			for _, st := range sw.TD.AllStates() {
				if taint.Alerted(st) {
					alerts = 1
					break
				}
			}
		}
		cell := func(r *core.Result[string, string, string]) string {
			if !r.Completed() {
				return "DNF"
			}
			return fmtDur(r.Elapsed)
		}
		tdSumm := "-"
		if td.Completed() {
			tdSumm = fmtK(td.TDSummaryTotal())
		}
		rows = append(rows, []string{
			name, cell(td), cell(bu), cell(sw),
			tdSumm, fmtK(sw.TDSummaryTotal()),
			fmt.Sprintf("%d", alerts),
		})
		s.Release(name)
	}
	fmt.Fprintln(w, "Generality: the taint client (kill/gen family, Section 5.2) under the")
	fmt.Fprintln(w, "same three engines (k=5, θ=1).")
	table(w, header, rows)
	return nil
}

// AblationTable measures the adaptive re-summarization knob
// (Config.Resummarize): Algorithm 1's one-shot triggering versus allowing
// up to 4 summary recomputations when Σ-fallbacks accumulate. The sample
// the recomputation ranks against is biased toward fallback states (the
// dominant ones stopped arriving the moment the first summary was
// installed), so re-ranking tends to evict the dominant case — the
// one-shot default wins.
func (s *Suite) AblationTable(w io.Writer, budget Budget) error {
	header := []string{"benchmark", "one-shot time", "adaptive time", "TD summ one-shot", "adaptive", "recomputed"}
	var rows [][]string
	for _, name := range []string{"toba-s", "javasrc-p", "hedc", "antlr"} {
		b, err := s.Build(name)
		if err != nil {
			return err
		}
		run := func(resummarize int) *EngineRun {
			cfg := budget.config(5, 1)
			cfg.Resummarize = resummarize
			res, _ := b.Run("swift", cfg)
			return &EngineRun{
				Benchmark: name, Engine: "swift",
				Elapsed: res.Elapsed, Completed: res.Completed(),
				TDSummaries: res.TDSummaryTotal(), BUSummaries: res.BUSummaryTotal(),
				Result: res,
			}
		}
		oneShot := run(0)
		adaptive := run(4)
		redone := 0
		if adaptive.Result != nil {
			redone = adaptive.Result.Resummarized
		}
		t1, t2 := "DNF", "DNF"
		if oneShot.Completed {
			t1 = fmtDur(oneShot.Elapsed)
		}
		if adaptive.Completed {
			t2 = fmtDur(adaptive.Elapsed)
		}
		rows = append(rows, []string{
			name, t1, t2,
			fmtK(oneShot.TDSummaries), fmtK(adaptive.TDSummaries),
			fmt.Sprintf("%d", redone),
		})
		s.Release(name)
	}
	fmt.Fprintln(w, "Ablation: one-shot triggering (Algorithm 1) vs adaptive re-summarization.")
	table(w, header, rows)
	return nil
}

// KSweep runs the Table 3 experiment on an arbitrary benchmark (the paper
// uses avrora; smaller members make handy smoke runs).
func (s *Suite) KSweep(w io.Writer, name string, ks []int, budget Budget) error {
	header := []string{"k", "running time", "TD summaries", "triggered"}
	var rows [][]string
	for _, k := range ks {
		run, err := s.Run(name, "swift", budget, k, 1)
		if err != nil {
			return err
		}
		triggered := 0
		if run.Result != nil {
			triggered = len(run.Result.Triggered)
		}
		run.Result = nil
		s.Release(name)
		t := "DNF"
		if run.Completed {
			t = fmtDur(run.Elapsed)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", k), t, fmtK(run.TDSummaries), fmt.Sprintf("%d", triggered),
		})
	}
	fmt.Fprintf(w, "k sweep on %s (θ=1).\n", name)
	table(w, header, rows)
	return nil
}

// Verify re-runs the Table 2 experiment and asserts the paper's headline
// completion pattern and reduction floors hold, making the reproduction's
// central claim a checkable invariant:
//
//   - SWIFT completes on every benchmark;
//   - the top-down baseline fails on exactly the three largest;
//   - the unpruned bottom-up baseline completes on exactly the two
//     smallest;
//   - on every benchmark both engines complete, SWIFT computes at most
//     half the top-down summaries (the paper reports ≥66 % reductions
//     beyond the two smallest).
//
// It returns an error describing the first violated expectation.
func (s *Suite) Verify(w io.Writer, budget Budget) error {
	rows, err := s.RunTable2(budget)
	if err != nil {
		return err
	}
	tdFails := map[string]bool{"avrora": true, "rhino-a": true, "sablecc-j": true}
	buOK := map[string]bool{"jpat-p": true, "elevator": true}
	for _, r := range rows {
		if !r.Swift.Completed {
			return fmt.Errorf("verify: SWIFT did not finish on %s", r.Name)
		}
		if r.TD.Completed == tdFails[r.Name] {
			return fmt.Errorf("verify: TD completion on %s = %v, expected %v",
				r.Name, r.TD.Completed, !tdFails[r.Name])
		}
		if r.BU.Completed != buOK[r.Name] {
			return fmt.Errorf("verify: BU completion on %s = %v, expected %v",
				r.Name, r.BU.Completed, buOK[r.Name])
		}
		if r.TD.Completed && r.Name != "jpat-p" && r.Name != "elevator" {
			if 2*r.Swift.TDSummaries > r.TD.TDSummaries {
				return fmt.Errorf("verify: summary reduction on %s too small: swift %d vs td %d",
					r.Name, r.Swift.TDSummaries, r.TD.TDSummaries)
			}
		}
		fmt.Fprintf(w, "verify: %-10s ok (swift %s, td %s, bu %s)\n", r.Name,
			okOrDNF(r.Swift.Completed, r.Swift.Elapsed),
			okOrDNF(r.TD.Completed, r.TD.Elapsed),
			okOrDNF(r.BU.Completed, r.BU.Elapsed))
	}
	fmt.Fprintln(w, "verify: the paper's completion pattern holds")
	return nil
}

func okOrDNF(ok bool, d time.Duration) string {
	if !ok {
		return "DNF"
	}
	return fmtDur(d)
}
