package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"swift/internal/core"
	"swift/internal/killgen"
)

// TaintTable runs the three engines with the kill/gen taint client over the
// smaller suite members — the framework-generality experiment: the same
// hybrid machinery, triggered and pruned the same way, drives a completely
// different abstract domain (bit-vector facts with guarded kill/gen
// relations synthesized per Section 5.2). Each (benchmark, engine) run
// builds its own client and analysis (the kill/gen client is stateless
// strings, so there is no interning history to share), so the runs execute
// concurrently and assemble deterministically.
func (s *Suite) TaintTable(w io.Writer, budget Budget) error {
	names := []string{"jpat-p", "elevator", "toba-s", "javasrc-p", "hedc", "antlr"}
	engines := []string{"td", "bu", "swift"}
	type taintRun struct {
		completed bool
		cost      time.Duration
		tdSumm    int
		alerts    int
	}
	runs := make([]*taintRun, len(names)*len(engines))
	var jobs []func() error
	for i, name := range names {
		for j, engine := range engines {
			slot := i*len(engines) + j
			name, engine := name, engine
			jobs = append(jobs, func() error {
				b, err := s.Build(name)
				if err != nil {
					return err
				}
				prog := b.Lowered.Prog
				// Every third tracked allocation site is a taint source;
				// reads are sinks and close() sanitizes.
				var sites []string
				for site := range b.Lowered.Track {
					sites = append(sites, site)
				}
				sort.Strings(sites)
				var sources []string
				for k, site := range sites {
					if k%3 == 0 {
						sources = append(sources, site)
					}
				}
				taint := killgen.NewTaint(prog, killgen.TaintConfig{
					Sources:    sources,
					Sanitizers: []string{"close"},
					Sinks:      []string{"read"},
				})
				an, err := core.NewAnalysis[string, string, string](taint, prog)
				if err != nil {
					return err
				}
				init := taint.Initial()
				cfg := budget.config(5, 1)
				start := time.Now()
				var res *core.Result[string, string, string]
				switch engine {
				case "td":
					cfg.K = core.Unlimited
					res = an.RunTD(init, cfg)
				case "bu":
					cfg.Theta = core.Unlimited
					res = an.RunBU(init, cfg)
				default:
					res = an.RunSwift(init, cfg)
				}
				r := &taintRun{
					completed: res.Completed(),
					cost:      time.Duration(res.WorkUnits()) * costPerWorkUnit,
					tdSumm:    res.TDSummaryTotal(),
				}
				if engine == "swift" && res.Completed() {
					for _, st := range res.TD.AllStates() {
						if taint.Alerted(st) {
							r.alerts = 1
							break
						}
					}
				}
				s.telemetry("run %-10s taint/%-6s wall=%-8s cost=%s\n",
					name, engine, fmtDur(time.Since(start)), fmtDur(r.cost))
				runs[slot] = r
				return nil
			})
		}
	}
	if err := s.forEach(jobs); err != nil {
		return err
	}
	header := []string{"benchmark", "TD cost", "BU cost", "SWIFT cost", "TD summ (td)", "(swift)", "alerts"}
	var rows [][]string
	for i, name := range names {
		td := runs[i*len(engines)]
		bu := runs[i*len(engines)+1]
		sw := runs[i*len(engines)+2]
		s.Release(name)
		cell := func(r *taintRun) string {
			if !r.completed {
				return "DNF"
			}
			return fmtDur(r.cost)
		}
		tdSumm := "-"
		if td.completed {
			tdSumm = fmtK(td.tdSumm)
		}
		rows = append(rows, []string{
			name, cell(td), cell(bu), cell(sw),
			tdSumm, fmtK(sw.tdSumm),
			fmt.Sprintf("%d", sw.alerts),
		})
	}
	fmt.Fprintln(w, "Generality: the taint client (kill/gen family, Section 5.2) under the")
	fmt.Fprintln(w, "same three engines (k=5, θ=1).")
	table(w, header, rows)
	return nil
}

// AblationTable measures the adaptive re-summarization knob
// (Config.Resummarize): Algorithm 1's one-shot triggering versus allowing
// up to 4 summary recomputations when Σ-fallbacks accumulate. The sample
// the recomputation ranks against is biased toward fallback states (the
// dominant ones stopped arriving the moment the first summary was
// installed), so re-ranking tends to evict the dominant case — the
// one-shot default wins.
func (s *Suite) AblationTable(w io.Writer, budget Budget) error {
	names := []string{"toba-s", "javasrc-p", "hedc", "antlr"}
	modes := []int{0, 4}
	runs := make([]*EngineRun, len(names)*len(modes))
	redone := make([]int, len(names)*len(modes))
	var jobs []func() error
	for i, name := range names {
		for j, resummarize := range modes {
			slot := i*len(modes) + j
			name, resummarize := name, resummarize
			jobs = append(jobs, func() error {
				cfg := budget.config(5, 1)
				cfg.Resummarize = resummarize
				run, err := s.RunConfig(name, "swift", cfg)
				if err != nil {
					return err
				}
				redone[slot] = run.Result.Resummarized
				run.Result = nil
				runs[slot] = run
				return nil
			})
		}
	}
	if err := s.forEach(jobs); err != nil {
		return err
	}
	header := []string{"benchmark", "one-shot cost", "adaptive cost", "TD summ one-shot", "adaptive", "recomputed"}
	var rows [][]string
	for i, name := range names {
		oneShot, adaptive := runs[i*len(modes)], runs[i*len(modes)+1]
		s.Release(name)
		t1, t2 := "DNF", "DNF"
		if oneShot.Completed {
			t1 = fmtDur(oneShot.Cost)
		}
		if adaptive.Completed {
			t2 = fmtDur(adaptive.Cost)
		}
		rows = append(rows, []string{
			name, t1, t2,
			fmtK(oneShot.TDSummaries), fmtK(adaptive.TDSummaries),
			fmt.Sprintf("%d", redone[i*len(modes)+1]),
		})
	}
	fmt.Fprintln(w, "Ablation: one-shot triggering (Algorithm 1) vs adaptive re-summarization.")
	table(w, header, rows)
	return nil
}

// KSweep runs the Table 3 experiment on an arbitrary benchmark (the paper
// uses avrora; smaller members make handy smoke runs). The per-k runs
// execute concurrently and are assembled in k order.
func (s *Suite) KSweep(w io.Writer, name string, ks []int, budget Budget) error {
	runs := make([]*EngineRun, len(ks))
	triggered := make([]int, len(ks))
	jobs := make([]func() error, len(ks))
	for i, k := range ks {
		i, k := i, k
		jobs[i] = func() error {
			run, err := s.Run(name, "swift", budget, k, 1)
			if err != nil {
				return err
			}
			triggered[i] = len(run.Result.Triggered)
			run.Result = nil
			runs[i] = run
			return nil
		}
	}
	if err := s.forEach(jobs); err != nil {
		return err
	}
	s.Release(name)
	header := []string{"k", "cost", "TD summaries", "triggered"}
	var rows [][]string
	for i, k := range ks {
		t := "DNF"
		if runs[i].Completed {
			t = fmtDur(runs[i].Cost)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", k), t, fmtK(runs[i].TDSummaries), fmt.Sprintf("%d", triggered[i]),
		})
	}
	fmt.Fprintf(w, "k sweep on %s (θ=1).\n", name)
	table(w, header, rows)
	return nil
}

// Verify re-runs the Table 2 experiment and asserts the paper's headline
// completion pattern and reduction floors hold, making the reproduction's
// central claim a checkable invariant:
//
//   - SWIFT completes on every benchmark;
//   - the top-down baseline fails on exactly the three largest;
//   - the unpruned bottom-up baseline completes on exactly the two
//     smallest;
//   - on every benchmark both engines complete, SWIFT computes at most
//     half the top-down summaries (the paper reports ≥66 % reductions
//     beyond the two smallest).
//
// It returns an error describing the first violated expectation.
func (s *Suite) Verify(w io.Writer, budget Budget) error {
	rows, err := s.RunTable2(budget)
	if err != nil {
		return err
	}
	tdFails := map[string]bool{"avrora": true, "rhino-a": true, "sablecc-j": true}
	buOK := map[string]bool{"jpat-p": true, "elevator": true}
	for _, r := range rows {
		if !r.Swift.Completed {
			return fmt.Errorf("verify: SWIFT did not finish on %s", r.Name)
		}
		if r.TD.Completed == tdFails[r.Name] {
			return fmt.Errorf("verify: TD completion on %s = %v, expected %v",
				r.Name, r.TD.Completed, !tdFails[r.Name])
		}
		if r.BU.Completed != buOK[r.Name] {
			return fmt.Errorf("verify: BU completion on %s = %v, expected %v",
				r.Name, r.BU.Completed, buOK[r.Name])
		}
		if r.TD.Completed && r.Name != "jpat-p" && r.Name != "elevator" {
			if 2*r.Swift.TDSummaries > r.TD.TDSummaries {
				return fmt.Errorf("verify: summary reduction on %s too small: swift %d vs td %d",
					r.Name, r.Swift.TDSummaries, r.TD.TDSummaries)
			}
		}
		fmt.Fprintf(w, "verify: %-10s ok (swift %s, td %s, bu %s)\n", r.Name,
			okOrDNF(r.Swift.Completed, r.Swift.Cost),
			okOrDNF(r.TD.Completed, r.TD.Cost),
			okOrDNF(r.BU.Completed, r.BU.Cost))
	}
	fmt.Fprintln(w, "verify: the paper's completion pattern holds")
	return nil
}

func okOrDNF(ok bool, d time.Duration) string {
	if !ok {
		return "DNF"
	}
	return fmtDur(d)
}
