package bench

// The demand-vs-exhaustive experiment behind `swiftbench -querybench`: for
// each benchmark and engine, run the engine exhaustively once, then answer
// a seeded stream of randomized point queries through the demand-driven
// query engine (internal/query) with a fresh slice memo, tracking the
// aggregate demand cost as the stream progresses. The headline number is
// the break-even query count: how many uniformly random queries it takes
// before the accumulated demand work (each distinct site's slice runs
// once, memo hits are free) reaches the cost of the one exhaustive run. A
// "-" means the stream never got there — every slice the stream touched
// ran and their total still undercuts the exhaustive run, so demand wins
// at any query count.
//
// Cost cells are deterministic work units like every other table (the
// query stream is a pure function of program and seed, and memo hits
// depend only on the stream); wall clock goes to Telemetry. The
// swift-async engine's work counters are timing-dependent, so its cost and
// break-even cells — unlike its answers — can vary between runs; the
// deterministic engines' rows are byte-identical at any worker count.
//
// Every isError answer is checked against the exhaustive run's error
// report on the fly (when that run completed): a divergence fails the
// whole experiment rather than rendering a wrong table.

import (
	"context"
	"fmt"
	"io"
	"runtime/pprof"
	"time"

	"swift/internal/core"
	"swift/internal/driver"
	"swift/internal/query"
)

// queryEngines is every engine the query table exercises.
var queryEngines = []string{"td", "bu", "swift", "swift-async"}

// QueryBenchRun is the outcome of the query stream for one benchmark and
// engine.
type QueryBenchRun struct {
	Benchmark string
	Engine    string
	Sites     int
	Queries   int
	// Exhaustive is the one full run's deterministic cost; ExhaustiveOK is
	// false when it blew a budget (DNF).
	Exhaustive   time.Duration
	ExhaustiveOK bool
	// Demand is the stream's total demand cost (the sum of the slice runs
	// the memo missed); DemandOK is false when a slice run blew a budget.
	Demand   time.Duration
	DemandOK bool
	// Hits/Misses are the stream's slice-memo counters; BreakEven is the
	// 1-based index of the first query at which cumulative demand work
	// reached the exhaustive cost (0 = never, demand always cheaper).
	Hits      int64
	Misses    int64
	BreakEven int
}

// HitRate renders the stream's slice-memo hit rate in percent.
func (r *QueryBenchRun) HitRate() float64 {
	total := r.Hits + r.Misses
	if total == 0 {
		return 0
	}
	return 100 * float64(r.Hits) / float64(total)
}

// queryBenchOne runs one benchmark × engine cell: the exhaustive run, then
// the seeded query stream against it, each on its own fresh pipeline (see
// RunConfig for why runs never share one).
func (s *Suite) queryBenchOne(name, engine string, cfg core.Config, seed int64,
	kinds []query.Kind, n int) (*QueryBenchRun, error) {
	prog, err := s.Program(name)
	if err != nil {
		return nil, err
	}
	run := &QueryBenchRun{Benchmark: name, Engine: engine}

	// Exhaustive pass. The pipeline is kept alive just long enough to
	// render the error report the stream's isError answers are checked
	// against.
	exStart := time.Now()
	bEx, err := driver.FromHIR(prog)
	if err != nil {
		return nil, err
	}
	var mono *driver.Result
	pprof.Do(context.Background(),
		pprof.Labels("suite", name, "engine", engine, "mode", "exhaustive"),
		func(context.Context) { mono, err = bEx.Run(engine, cfg) })
	if err != nil {
		return nil, err
	}
	run.Exhaustive = time.Duration(mono.WorkUnits()) * costPerWorkUnit
	run.ExhaustiveOK = mono.Completed()
	var errSites map[string]bool
	if run.ExhaustiveOK {
		report, err := bEx.ErrorReport(mono)
		if err != nil {
			return nil, err
		}
		errSites = map[string]bool{}
		for _, site := range report {
			errSites[site] = true
		}
	}
	s.telemetry("querybench %-10s %-11s exhaustive wall=%-8s cost=%s\n",
		name, engine, fmtDur(time.Since(exStart)), fmtDur(run.Exhaustive))
	mono, bEx = nil, nil

	// Demand pass: a fresh pipeline and memo, one query at a time. Slice
	// runs label their profiles per slice; ProfileLabel threads the suite.
	cfg.ProfileLabel = name
	b, err := driver.FromHIR(prog)
	if err != nil {
		return nil, err
	}
	memo := driver.NewSliceMemo(0)
	e, err := query.New(b, engine, cfg, memo)
	if err != nil {
		return nil, err
	}
	run.Sites = len(e.TrackedSites())
	qs, err := query.Generate(b, kinds, seed, n)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	work := 0
	run.DemandOK = true
	for i, q := range qs {
		a, stats, err := e.Answer(q)
		if err != nil {
			// A slice that exhausts a budget is a DNF cell, like every
			// exhaustive DNF in the other tables; nothing was memoized, so
			// the stream cannot make progress and stops here.
			run.DemandOK = false
			s.telemetry("querybench %-10s %-11s DNF at query %d: %v\n", name, engine, i+1, err)
			break
		}
		work += stats.Work
		if run.BreakEven == 0 && run.ExhaustiveOK &&
			time.Duration(work)*costPerWorkUnit >= run.Exhaustive {
			run.BreakEven = i + 1
		}
		if q.Kind == query.KindIsError && errSites != nil && a.Reachable != errSites[q.Site] {
			return nil, fmt.Errorf("bench: %s/%s: demand isError(%s) = %v, exhaustive report says %v",
				name, engine, q.Site, a.Reachable, errSites[q.Site])
		}
	}
	run.Queries = len(qs)
	run.Demand = time.Duration(work) * costPerWorkUnit
	ms := memo.Stats()
	run.Hits, run.Misses = ms.Hits, ms.Misses
	s.telemetry("querybench %-10s %-11s queries=%d sites=%d wall=%-8s demand=%s hit%%=%.1f\n",
		name, engine, run.Queries, run.Sites, fmtDur(time.Since(start)),
		fmtDur(run.Demand), run.HitRate())
	return run, nil
}

// QueryBench runs the demand-vs-exhaustive experiment for one benchmark
// across all four engines.
func (s *Suite) QueryBench(name string, cfg core.Config, queries int, seed int64,
	kinds []query.Kind) ([]*QueryBenchRun, error) {
	runs := make([]*QueryBenchRun, 0, len(queryEngines))
	for _, engine := range queryEngines {
		run, err := s.queryBenchOne(name, engine, cfg, seed, kinds, queries)
		if err != nil {
			return nil, err
		}
		runs = append(runs, run)
	}
	return runs, nil
}

// QueryBenchTable renders the demand-vs-exhaustive table with the paper's
// headline thresholds (k=5, θ=1). An empty benchmark name sweeps the whole
// suite. Cells run serially — each demand stream already fans its memo
// misses out over sliceWorkers (zero = GOMAXPROCS).
func (s *Suite) QueryBenchTable(w io.Writer, budget Budget, benchmark string,
	queries int, seed int64, kinds []query.Kind, sliceWorkers int) error {
	names := s.sortedNames()
	if benchmark != "" {
		names = []string{benchmark}
	}
	cfg := budget.config(5, 1)
	cfg.SliceWorkers = sliceWorkers
	var all []*QueryBenchRun
	for _, name := range names {
		runs, err := s.QueryBench(name, cfg, queries, seed, kinds)
		if err != nil {
			return err
		}
		all = append(all, runs...)
		s.Release(name)
	}
	cell := func(ok bool, d time.Duration) string {
		if !ok {
			return "DNF"
		}
		return fmtDur(d)
	}
	header := []string{"benchmark", "engine", "sites", "queries",
		"exhaustive", "demand", "hit%", "break-even"}
	var rows [][]string
	for _, r := range all {
		breakEven := "-"
		if r.BreakEven > 0 {
			breakEven = fmt.Sprintf("%d", r.BreakEven)
		}
		rows = append(rows, []string{
			r.Benchmark, r.Engine,
			fmt.Sprintf("%d", r.Sites), fmt.Sprintf("%d", r.Queries),
			cell(r.ExhaustiveOK, r.Exhaustive), cell(r.DemandOK, r.Demand),
			fmt.Sprintf("%.1f", r.HitRate()), breakEven,
		})
	}
	fmt.Fprintln(w, "Querybench: demand-driven point queries vs one exhaustive run (k=5, θ=1).")
	fmt.Fprintln(w, "\"demand\" is the seeded query stream's total cost (memoized slices are")
	fmt.Fprintln(w, "free), \"break-even\" the first query at which cumulative demand cost")
	fmt.Fprintln(w, "reached the exhaustive cost (\"-\" = never: demand wins at any query")
	fmt.Fprintln(w, "count). DNF = a budget was exhausted.")
	table(w, header, rows)
	return nil
}
