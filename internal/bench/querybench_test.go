package bench

import (
	"bytes"
	"strings"
	"testing"

	"swift/internal/query"
)

// TestQueryBenchTableRenders smokes the whole experiment on one small
// benchmark, with the on-the-fly isError consistency check armed (the
// exhaustive runs complete under the quick budget on elevator).
func TestQueryBenchTableRenders(t *testing.T) {
	s := NewSuite()
	var out bytes.Buffer
	if err := s.QueryBenchTable(&out, QuickBudget(), "elevator", 150, 3, nil, 2); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"Querybench:", "break-even", "elevator", "td", "bu", "swift", "swift-async"} {
		if !strings.Contains(got, want) {
			t.Errorf("table lacks %q:\n%s", want, got)
		}
	}
	for _, line := range strings.Split(got, "\n") {
		if strings.HasPrefix(line, "elevator") && strings.Contains(line, "DNF") {
			t.Errorf("elevator under the quick budget should not DNF: %s", line)
		}
	}
}

// TestQueryBenchDeterministicEngineRows pins the harness convention for
// the new table: the deterministic engines' rows are byte-identical at any
// -sliceworkers setting and across repeated runs (the stream is a pure
// function of program and seed; costs are work units, not wall clock).
func TestQueryBenchDeterministicEngineRows(t *testing.T) {
	rows := func(workers int) map[string]string {
		s := NewSuite()
		var out bytes.Buffer
		if err := s.QueryBenchTable(&out, QuickBudget(), "elevator", 80, 5, nil, workers); err != nil {
			t.Fatal(err)
		}
		got := map[string]string{}
		for _, line := range strings.Split(out.String(), "\n") {
			f := strings.Fields(line)
			if len(f) > 2 && f[0] == "elevator" && f[1] != "swift-async" {
				got[f[1]] = line
			}
		}
		if len(got) != 3 {
			t.Fatalf("expected rows for td, bu, swift; got %v", got)
		}
		return got
	}
	base := rows(1)
	for _, workers := range []int{2, 8} {
		if diff := rows(workers); !equalRows(base, diff) {
			t.Errorf("rows differ between 1 and %d slice workers:\n%v\n%v", workers, base, diff)
		}
	}
}

func equalRows(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestQueryBenchKindSubset restricts the stream to one kind and checks the
// generator honours it (an isError-only stream touches no node queries, so
// it still runs every named site's slice and renders normally).
func TestQueryBenchKindSubset(t *testing.T) {
	s := NewSuite()
	var out bytes.Buffer
	err := s.QueryBenchTable(&out, QuickBudget(), "elevator", 40, 7,
		[]query.Kind{query.KindIsError}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "elevator") {
		t.Errorf("table did not render:\n%s", out.String())
	}
}
