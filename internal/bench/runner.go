package bench

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelism returns the effective worker count for experiment sweeps.
func (s *Suite) parallelism() int {
	if s.Parallel > 0 {
		return s.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// forEach executes the jobs on a bounded worker pool and returns the error
// of the lowest-indexed failed job (deterministic regardless of
// scheduling). Every job is attempted even when another fails: experiments
// fill slot-indexed result slices and render only after forEach returns, so
// partial early exits would save nothing, and running everything keeps the
// serial and parallel paths behaviorally identical.
func (s *Suite) forEach(jobs []func() error) error {
	if len(jobs) == 0 {
		return nil
	}
	workers := s.parallelism()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	errs := make([]error, len(jobs))
	if workers <= 1 {
		for i, job := range jobs {
			errs[i] = job()
		}
		return firstError(errs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				errs[i] = jobs[i]()
			}
		}()
	}
	wg.Wait()
	return firstError(errs)
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
