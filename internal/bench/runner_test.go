package bench

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// smallSuite restricts the suite to its three smallest benchmarks so the
// full parallel-vs-serial comparison stays fast enough for unit tests.
func smallSuite(parallel int) *Suite {
	s := NewSuite()
	var kept []string
	for _, want := range []string{"jpat-p", "elevator", "toba-s"} {
		kept = append(kept, want)
	}
	profiles := s.Profiles[:0:0]
	for _, p := range s.Profiles {
		for _, want := range kept {
			if p.Name == want {
				profiles = append(profiles, p)
			}
		}
	}
	s.Profiles = profiles
	s.Parallel = parallel
	return s
}

// TestParallelTable2ByteIdentical is the harness determinism contract: the
// same experiment must render byte-identical tables whether runs execute
// serially or on the worker pool. Run under -race this also exercises the
// suite cache and result assembly for data races.
func TestParallelTable2ByteIdentical(t *testing.T) {
	if len(smallSuite(1).Profiles) != 3 {
		t.Fatal("small suite does not have 3 benchmarks")
	}
	render := func(parallel int) string {
		s := smallSuite(parallel)
		var b strings.Builder
		if err := s.Table2(&b, QuickBudget()); err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return b.String()
	}
	serial := render(1)
	for _, parallel := range []int{2, 8} {
		if got := render(parallel); got != serial {
			t.Errorf("parallel=%d output differs from serial:\n--- serial ---\n%s--- parallel ---\n%s",
				parallel, serial, got)
		}
	}
	if !strings.Contains(serial, "jpat-p") || !strings.Contains(serial, "toba-s") {
		t.Errorf("unexpected table contents:\n%s", serial)
	}
}

// TestParallelKSweepByteIdentical covers a second experiment shape (per-k
// jobs on one benchmark) for the same determinism contract.
func TestParallelKSweepByteIdentical(t *testing.T) {
	render := func(parallel int) string {
		s := NewSuite()
		s.Parallel = parallel
		var b strings.Builder
		if err := s.KSweep(&b, "jpat-p", []int{1, 2, 5, 50}, QuickBudget()); err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return b.String()
	}
	serial := render(1)
	if got := render(4); got != serial {
		t.Errorf("parallel k sweep differs from serial:\n%s\nvs\n%s", serial, got)
	}
}

// TestSingleFlightBuild hammers the suite cache from many goroutines: each
// benchmark's program and inspection build must be generated exactly once
// and every caller must observe the same pointers.
func TestSingleFlightBuild(t *testing.T) {
	s := NewSuite()
	const workers = 16
	builds := make([]interface{}, workers)
	progs := make([]interface{}, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			b, err := s.Build("jpat-p")
			if err != nil {
				t.Error(err)
				return
			}
			p, err := s.Program("jpat-p")
			if err != nil {
				t.Error(err)
				return
			}
			builds[w], progs[w] = b, p
		}()
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if builds[w] != builds[0] {
			t.Fatalf("worker %d saw a different build", w)
		}
		if progs[w] != progs[0] {
			t.Fatalf("worker %d saw a different program", w)
		}
	}
	if _, err := s.Build("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

// TestForEach covers the pool runner: full coverage of the job list at any
// parallelism, and deterministic first-error-by-index selection no matter
// which worker hits an error first.
func TestForEach(t *testing.T) {
	for _, parallel := range []int{1, 3, 16} {
		s := NewSuite()
		s.Parallel = parallel
		const n = 50
		var ran [n]atomic.Int64
		jobs := make([]func() error, n)
		for i := range jobs {
			i := i
			jobs[i] = func() error {
				ran[i].Add(1)
				return nil
			}
		}
		if err := s.forEach(jobs); err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		for i := range ran {
			if got := ran[i].Load(); got != 1 {
				t.Fatalf("parallel=%d: job %d ran %d times", parallel, i, got)
			}
		}
	}

	errA := errors.New("a")
	errB := errors.New("b")
	s := NewSuite()
	s.Parallel = 8
	jobs := make([]func() error, 20)
	for i := range jobs {
		i := i
		jobs[i] = func() error {
			switch i {
			case 7:
				return errA
			case 3:
				return errB
			default:
				return nil
			}
		}
	}
	// 100 attempts under the race scheduler: the reported error must always
	// be the lowest-indexed one.
	for trial := 0; trial < 100; trial++ {
		if err := s.forEach(jobs); !errors.Is(err, errB) {
			t.Fatalf("trial %d: err = %v, want %v", trial, err, errB)
		}
	}
}

// TestForEachEmptyAndDefaultParallelism pins the edge cases.
func TestForEachEmptyAndDefaultParallelism(t *testing.T) {
	s := NewSuite()
	if err := s.forEach(nil); err != nil {
		t.Fatal(err)
	}
	if got := s.parallelism(); got < 1 {
		t.Fatalf("default parallelism = %d", got)
	}
	s.Parallel = 3
	if got := s.parallelism(); got != 3 {
		t.Fatalf("parallelism = %d, want 3", got)
	}
}

// TestTelemetrySeparateFromTables checks the telemetry stream gets per-run
// wall-clock lines while table output stays free of them.
func TestTelemetrySeparateFromTables(t *testing.T) {
	s := NewSuite()
	s.Parallel = 4
	var tel strings.Builder
	s.Telemetry = &tel
	var out strings.Builder
	if err := s.KSweep(&out, "jpat-p", []int{1, 5}, QuickBudget()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tel.String(), "wall=") {
		t.Errorf("telemetry missing wall-clock lines:\n%s", tel.String())
	}
	if strings.Contains(out.String(), "wall=") {
		t.Errorf("table output contains wall-clock telemetry:\n%s", out.String())
	}
	for i, line := range strings.Split(strings.TrimSpace(tel.String()), "\n") {
		if !strings.HasPrefix(line, "run ") {
			t.Errorf("telemetry line %d malformed: %q", i, line)
		}
	}
	if want := fmt.Sprintf("k sweep on %s", "jpat-p"); !strings.Contains(out.String(), want) {
		t.Errorf("missing %q in output", want)
	}
}
