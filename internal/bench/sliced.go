package bench

// The site-sliced experiment: run the deterministic engines monolithically
// and site-sliced on every benchmark and compare their deterministic work
// costs. Slicing wins twice — wall-clock parallelism across slices, and
// smaller per-slice state spaces shrinking the superlinear path-edge
// blowup even at one worker — and the table shows both: the sliced total
// cost (all slices summed, the one-worker cost) and the critical-path cost
// (the largest single slice, the cost floor at unlimited workers).
//
// Every cost cell is computed from the engines' deterministic work
// counters and the slices are aggregated in sorted site order, so the
// table is byte-identical at any -sliceworkers setting; real wall-clock
// goes to the Telemetry stream like everywhere else in this harness.

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"swift/internal/core"
	"swift/internal/driver"
)

// slicedEngines are the engines the sliced table compares. The async
// engine is excluded: its counters are timing-dependent, so its cells
// would not be byte-identical across runs (its sliced *report* is still
// covered by the equivalence tests in internal/driver).
var slicedEngines = []string{"td", "swift"}

// SlicedRun is the outcome of one sliced engine run on one benchmark.
type SlicedRun struct {
	Benchmark string
	Engine    string
	Slices    int
	// Work sums the slices' deterministic work counters; MaxWork is the
	// largest single slice (the critical path). Cost/CritCost are the
	// scaled durations the tables print.
	Work      int
	MaxWork   int
	Cost      time.Duration
	CritCost  time.Duration
	Completed bool
	Elapsed   time.Duration
	Result    *driver.SlicedResult
}

// RunSlicedConfig executes one engine site-sliced on one benchmark, on a
// freshly built pipeline (see RunConfig for why runs never share one).
func (s *Suite) RunSlicedConfig(name, engine string, cfg core.Config) (*SlicedRun, error) {
	prog, err := s.Program(name)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	b, err := driver.FromHIR(prog)
	if err != nil {
		return nil, err
	}
	// The dispatch goroutine gets suite + engine-sliced labels; each slice
	// labels itself engine/slice and inherits the suite via ProfileLabel.
	cfg.ProfileLabel = name
	var res *driver.SlicedResult
	pprof.Do(context.Background(),
		pprof.Labels("suite", name, "engine", engine+"-sliced"),
		func(context.Context) { res, err = b.RunSliced(engine, cfg) })
	if err != nil {
		return nil, err
	}
	wall := time.Since(start)
	run := &SlicedRun{
		Benchmark: name,
		Engine:    engine,
		Slices:    len(res.Slices),
		Work:      res.WorkUnits(),
		MaxWork:   res.MaxSliceWork(),
		Cost:      time.Duration(res.WorkUnits()) * costPerWorkUnit,
		CritCost:  time.Duration(res.MaxSliceWork()) * costPerWorkUnit,
		Completed: res.Completed(),
		Elapsed:   res.Elapsed,
		Result:    res,
	}
	s.telemetry("run %-10s %-6s sliced over %d sites, workers=%-3d wall=%-8s cost=%s crit=%s\n",
		name, engine, run.Slices, cfg.SliceWorkers, fmtDur(wall), fmtDur(run.Cost), fmtDur(run.CritCost))
	return run, nil
}

// SlicedTable renders the site-sliced vs monolithic comparison with the
// paper's headline thresholds (k=5, θ=1). Monolithic runs execute on the
// suite's worker pool; each sliced run then parallelizes internally over
// workers (zero means GOMAXPROCS). "total" sums every slice (the
// one-worker cost: the state-space effect alone), "crit" is the largest
// slice (the cost floor at unlimited workers); DNF marks a run — or any
// slice of it — that exhausted a budget.
func (s *Suite) SlicedTable(w io.Writer, budget Budget, workers int) error {
	// On a single-core host the sliced runs execute one after another: each
	// already fans out over its slices, and stacking the suite pool on top
	// would only add scheduling churn. With real cores available the
	// benchmark cells go on the suite pool like every other experiment —
	// serializing there left multi-core hosts idle (the PR 5 note in
	// ROADMAP.md kept it always-on as a dodge, which was the bug).
	return s.slicedTable(w, budget, workers, runtime.GOMAXPROCS(0) == 1)
}

// slicedTable is SlicedTable with the suite-serialization decision
// explicit, so tests can pin that both paths render identical bytes.
func (s *Suite) slicedTable(w io.Writer, budget Budget, workers int, serialize bool) error {
	names := s.sortedNames()
	mono := make([]*EngineRun, len(names)*len(slicedEngines))
	var jobs []func() error
	for i, name := range names {
		for j, engine := range slicedEngines {
			slot := i*len(slicedEngines) + j
			name, engine := name, engine
			jobs = append(jobs, func() error {
				run, err := s.Run(name, engine, budget, 5, 1)
				if err != nil {
					return err
				}
				run.Result = nil
				mono[slot] = run
				return nil
			})
		}
	}
	if err := s.forEach(jobs); err != nil {
		return err
	}
	sliced := make([]*SlicedRun, len(names)*len(slicedEngines))
	cfg := budget.config(5, 1)
	cfg.SliceWorkers = workers
	runSliced := func(i, j int) error {
		run, err := s.RunSlicedConfig(names[i], slicedEngines[j], cfg)
		if err != nil {
			return err
		}
		run.Result = nil
		sliced[i*len(slicedEngines)+j] = run
		return nil
	}
	if serialize {
		for i, name := range names {
			for j := range slicedEngines {
				if err := runSliced(i, j); err != nil {
					return err
				}
			}
			s.Release(name)
		}
	} else {
		// Per-benchmark release accounting keeps the memory footprint flat
		// on the pool too: the last engine cell of a benchmark releases it.
		var mu sync.Mutex
		left := make([]int, len(names))
		for i := range left {
			left[i] = len(slicedEngines)
		}
		var sjobs []func() error
		for i := range names {
			for j := range slicedEngines {
				i, j := i, j
				sjobs = append(sjobs, func() error {
					err := runSliced(i, j)
					mu.Lock()
					left[i]--
					done := left[i] == 0
					mu.Unlock()
					if done {
						s.Release(names[i])
					}
					return err
				})
			}
		}
		if err := s.forEach(sjobs); err != nil {
			return err
		}
	}
	cell := func(ok bool, d time.Duration) string {
		if !ok {
			return "DNF"
		}
		return fmtDur(d)
	}
	header := []string{"benchmark", "slices",
		"TD mono", "total", "crit",
		"SWIFT mono", "total", "crit"}
	var rows [][]string
	for i, name := range names {
		tdM, swM := mono[i*2], mono[i*2+1]
		tdS, swS := sliced[i*2], sliced[i*2+1]
		rows = append(rows, []string{
			name, fmt.Sprintf("%d", tdS.Slices),
			cell(tdM.Completed, tdM.Cost), cell(tdS.Completed, tdS.Cost), cell(tdS.Completed, tdS.CritCost),
			cell(swM.Completed, swM.Cost), cell(swS.Completed, swS.Cost), cell(swS.Completed, swS.CritCost),
		})
	}
	fmt.Fprintln(w, "Sliced: site-sliced vs monolithic cost (k=5, θ=1). \"total\" sums all")
	fmt.Fprintln(w, "slices (the one-worker cost), \"crit\" is the largest slice (the cost")
	fmt.Fprintln(w, "floor at unlimited workers). DNF = a budget was exhausted.")
	table(w, header, rows)
	return nil
}
