package bench

import (
	"strings"
	"testing"

	"swift/internal/driver"
)

func TestRunSlicedConfig(t *testing.T) {
	s := smallSuite(2)
	cfg := QuickBudget().config(5, 1)
	cfg.SliceWorkers = 2
	run, err := s.RunSlicedConfig("jpat-p", "swift", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !run.Completed || run.Slices < 2 || run.Work <= 0 {
		t.Errorf("sliced run = %+v", run)
	}
	if run.MaxWork >= run.Work {
		t.Errorf("critical path (%d) should be under the total (%d) with %d slices",
			run.MaxWork, run.Work, run.Slices)
	}
}

// TestSlicedTableWorkerDeterminism is the harness half of the tentpole's
// determinism claim: the rendered sliced table is byte-identical across
// -sliceworkers settings.
func TestSlicedTableWorkerDeterminism(t *testing.T) {
	budget := QuickBudget()
	var tables []string
	for _, workers := range []int{1, 8} {
		s := smallSuite(2)
		var b strings.Builder
		if err := s.SlicedTable(&b, budget, workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		tables = append(tables, b.String())
	}
	if tables[0] != tables[1] {
		t.Errorf("sliced table differs between 1 and 8 workers:\n--- 1:\n%s--- 8:\n%s",
			tables[0], tables[1])
	}
	for _, want := range []string{"jpat-p", "elevator", "toba-s", "slices", "crit"} {
		if !strings.Contains(tables[0], want) {
			t.Errorf("sliced table missing %q:\n%s", want, tables[0])
		}
	}
}

// TestSlicedTableSerializationGate pins the suite-scheduling fix: running
// the sliced cells serially is a single-core fallback, not part of the
// table's semantics, so the serialized and pooled dispatch paths must
// render byte-identical tables.
func TestSlicedTableSerializationGate(t *testing.T) {
	budget := QuickBudget()
	var tables []string
	for _, serialize := range []bool{true, false} {
		s := smallSuite(3)
		var b strings.Builder
		if err := s.slicedTable(&b, budget, 2, serialize); err != nil {
			t.Fatalf("serialize=%v: %v", serialize, err)
		}
		tables = append(tables, b.String())
	}
	if tables[0] != tables[1] {
		t.Errorf("sliced table differs between serialized and pooled dispatch:\n--- serialized:\n%s--- pooled:\n%s",
			tables[0], tables[1])
	}
}

// benchmarkSliced measures one full sliced swift run (fresh pipeline each
// iteration, like the harness) at a fixed worker count; compare against
// BenchmarkSlicedMonolithic for the state-space win and across worker
// counts for the scaling curve.
func benchmarkSliced(b *testing.B, workers int) {
	s := NewSuite()
	prog, err := s.Program("toba-s")
	if err != nil {
		b.Fatal(err)
	}
	cfg := QuickBudget().config(5, 1)
	cfg.SliceWorkers = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bd, err := driver.FromHIR(prog)
		if err != nil {
			b.Fatal(err)
		}
		res, err := bd.RunSliced("swift", cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Completed() {
			b.Fatal(res.Err())
		}
	}
}

func BenchmarkSlicedWorkers1(b *testing.B) { benchmarkSliced(b, 1) }
func BenchmarkSlicedWorkers2(b *testing.B) { benchmarkSliced(b, 2) }
func BenchmarkSlicedWorkers4(b *testing.B) { benchmarkSliced(b, 4) }
func BenchmarkSlicedWorkers8(b *testing.B) { benchmarkSliced(b, 8) }

// BenchmarkSlicedMonolithic is the unsliced baseline of the same run.
func BenchmarkSlicedMonolithic(b *testing.B) {
	s := NewSuite()
	prog, err := s.Program("toba-s")
	if err != nil {
		b.Fatal(err)
	}
	cfg := QuickBudget().config(5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bd, err := driver.FromHIR(prog)
		if err != nil {
			b.Fatal(err)
		}
		res, err := bd.Run("swift", cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Completed() {
			b.Fatal(res.Err)
		}
	}
}
