package bench

// Soak is the concurrent-load smoke for the hardened swiftd server: it
// boots an in-process server over a temporary store and drives it
// through the four robustness behaviors in sequence — single-flight
// coalescing (N identical concurrent requests, exactly one engine
// run), load shedding (a held slot plus a zero-length queue yields
// 429 + Retry-After), cooperative cancellation (a client disconnect
// aborts the in-flight run), and drain mode (/readyz and the analysis
// endpoints turn 503). Every assertion reads the public /stats JSON,
// so the soak exercises exactly what an operator can observe.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"swift/internal/store"
	"swift/internal/swiftd"
)

// SoakConfig sizes the soak run.
type SoakConfig struct {
	// Clients is the width of the coalesce wave (>= 2).
	Clients int
	// Depth and Width size the generated program: a chain of Depth
	// methods, each a loop over Width branches, keeps an engine run in
	// flight long enough for the wave to overlap it.
	Depth, Width int
}

// DefaultSoakConfig runs second-scale engine runs; QuickSoakConfig is
// the CI smoke variant.
func DefaultSoakConfig() SoakConfig { return SoakConfig{Clients: 6, Depth: 30, Width: 15} }
func QuickSoakConfig() SoakConfig   { return SoakConfig{Clients: 4, Depth: 20, Width: 10} }

// soakProgram renders a program variant whose analysis takes long
// enough that concurrent requests reliably overlap; the variant marker
// partitions every cache layer.
func soakProgram(variant, depth, width int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, `
property File {
  states closed opened error
  error error
  open: closed -> opened
  close: opened -> closed
  read: opened -> opened
}

class Main {
  method main() {
    v%d = new File @v%d
    w = new Worker @w1
    f = new File @h1
    f.open()
    w.m0(f)
    f.close()
  }
}

class Worker {
`, variant, variant)
	for i := 0; i < depth; i++ {
		fmt.Fprintf(&sb, "  method m%d(f) {\n    while (*) {\n", i)
		for j := 0; j < width; j++ {
			sb.WriteString("      if (*) { f.read() } else { f.open(); f.close(); f.open() }\n")
		}
		if i+1 < depth {
			fmt.Fprintf(&sb, "      this.m%d(f)\n", i+1)
		}
		sb.WriteString("    }\n  }\n")
	}
	sb.WriteString("}\n")
	return sb.String()
}

// soakStats is the slice of the /stats JSON the soak asserts on.
type soakStats struct {
	Robustness struct {
		EngineRuns   int64 `json:"engineRuns"`
		Coalesced    int64 `json:"coalesced"`
		Shed         int64 `json:"shed"`
		CanceledRuns int64 `json:"canceledRuns"`
		InFlight     int64 `json:"inFlight"`
		Draining     bool  `json:"draining"`
	} `json:"robustness"`
}

type soakHarness struct {
	srv     *swiftd.Server
	httpSrv *http.Server
	base    string
	served  chan error
	stopped bool
}

func startSoakServer(st *store.Store) (*soakHarness, error) {
	// One engine slot and no queue: the coalesce wave must share it, a
	// second distinct request must shed.
	srv := swiftd.New(st, swiftd.Options{
		MaxInFlight: 1,
		MaxQueue:    0,
		QueueWait:   time.Second,
		Quiet:       true,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	h := &soakHarness{
		srv:     srv,
		httpSrv: &http.Server{Handler: srv.Handler()},
		base:    "http://" + ln.Addr().String(),
		served:  make(chan error, 1),
	}
	go func() { h.served <- h.httpSrv.Serve(ln) }()
	return h, nil
}

// stop shuts the server down; safe to call twice (the deferred call
// after an explicit one is a no-op).
func (h *soakHarness) stop() error {
	if h.stopped {
		return nil
	}
	h.stopped = true
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := h.httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	if err := <-h.served; err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}

func (h *soakHarness) post(ctx context.Context, source string) (int, string, http.Header, error) {
	body, err := json.Marshal(map[string]string{"source": source})
	if err != nil {
		return 0, "", nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, h.base+"/analyze", bytes.NewReader(body))
	if err != nil {
		return 0, "", nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, "", nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, "", nil, err
	}
	return resp.StatusCode, string(out), resp.Header, nil
}

func (h *soakHarness) stats() (soakStats, error) {
	var out soakStats
	resp, err := http.Get(h.base + "/stats")
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	err = json.NewDecoder(resp.Body).Decode(&out)
	return out, err
}

// waitStats polls /stats until cond holds or the deadline passes.
func (h *soakHarness) waitStats(what string, cond func(soakStats) bool) error {
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := h.stats()
		if err != nil {
			return err
		}
		if cond(st) {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("soak: timed out waiting for %s (stats %+v)", what, st.Robustness)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Soak runs the concurrent-load smoke, reporting each phase to w and
// failing on the first violated robustness contract.
func Soak(w io.Writer, cfg SoakConfig) error {
	if cfg.Clients < 2 {
		return fmt.Errorf("soak: need at least 2 clients, have %d", cfg.Clients)
	}
	dir, err := os.MkdirTemp("", "swift-soak-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir, 16<<20)
	if err != nil {
		return err
	}
	h, err := startSoakServer(st)
	if err != nil {
		return err
	}
	defer h.stop()

	// Phase 1 — coalesce: identical concurrent requests, one engine run.
	type result struct {
		code int
		body string
		err  error
	}
	wave := make(chan result, cfg.Clients)
	src := soakProgram(1, cfg.Depth, cfg.Width)
	for i := 0; i < cfg.Clients; i++ {
		go func() {
			code, body, _, err := h.post(context.Background(), src)
			wave <- result{code, body, err}
		}()
	}
	var first string
	for i := 0; i < cfg.Clients; i++ {
		r := <-wave
		if r.err != nil {
			return fmt.Errorf("soak: coalesce wave request: %w", r.err)
		}
		if r.code != http.StatusOK {
			return fmt.Errorf("soak: coalesce wave status %d (body %s)", r.code, r.body)
		}
		if first == "" {
			first = r.body
		} else if r.body != first {
			return fmt.Errorf("soak: coalesce wave responses diverged")
		}
	}
	stats, err := h.stats()
	if err != nil {
		return err
	}
	if stats.Robustness.EngineRuns != 1 {
		return fmt.Errorf("soak: coalesce wave ran %d engines, want exactly 1", stats.Robustness.EngineRuns)
	}
	if stats.Robustness.Coalesced < 1 {
		return fmt.Errorf("soak: coalesce wave coalesced nothing")
	}
	fmt.Fprintf(w, "soak: coalesce  clients=%d engineRuns=%d coalesced=%d\n",
		cfg.Clients, stats.Robustness.EngineRuns, stats.Robustness.Coalesced)

	// Phase 2 — cancel: a client disconnect aborts the in-flight run.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cancelDone := make(chan result, 1)
	go func() {
		code, body, _, err := h.post(ctx, soakProgram(2, cfg.Depth, cfg.Width))
		cancelDone <- result{code, body, err}
	}()
	if err := h.waitStats("cancel run in flight", func(s soakStats) bool {
		return s.Robustness.InFlight == 1
	}); err != nil {
		return err
	}
	cancel()
	if r := <-cancelDone; r.err == nil {
		return fmt.Errorf("soak: disconnected request still got status %d", r.code)
	}
	if err := h.waitStats("canceled run to unwind", func(s soakStats) bool {
		return s.Robustness.CanceledRuns == 1 && s.Robustness.InFlight == 0
	}); err != nil {
		return err
	}
	fmt.Fprintf(w, "soak: cancel    canceledRuns=1\n")

	// Phase 3 — shed: hold the only slot, then a distinct request must
	// get 429 + Retry-After.
	holdDone := make(chan result, 1)
	go func() {
		code, body, _, err := h.post(context.Background(), soakProgram(3, cfg.Depth, cfg.Width))
		holdDone <- result{code, body, err}
	}()
	if err := h.waitStats("held slot", func(s soakStats) bool {
		return s.Robustness.InFlight == 1
	}); err != nil {
		return err
	}
	code, body, hdr, err := h.post(context.Background(), soakProgram(4, cfg.Depth, cfg.Width))
	if err != nil {
		return fmt.Errorf("soak: shed request: %w", err)
	}
	if code != http.StatusTooManyRequests {
		return fmt.Errorf("soak: saturated request status %d, want 429 (body %s)", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		return fmt.Errorf("soak: 429 without Retry-After")
	}
	if r := <-holdDone; r.err != nil || r.code != http.StatusOK {
		return fmt.Errorf("soak: held request ended %d %v", r.code, r.err)
	}
	stats, err = h.stats()
	if err != nil {
		return err
	}
	if stats.Robustness.Shed < 1 {
		return fmt.Errorf("soak: shed counter is zero after a 429")
	}
	fmt.Fprintf(w, "soak: shed      429 retryAfter=%ss shed=%d\n", hdr.Get("Retry-After"), stats.Robustness.Shed)

	// Phase 4 — drain: new analysis work is rejected and /readyz flips.
	h.srv.BeginDrain()
	code, body, _, err = h.post(context.Background(), soakProgram(5, cfg.Depth, cfg.Width))
	if err != nil {
		return err
	}
	if code != http.StatusServiceUnavailable {
		return fmt.Errorf("soak: draining /analyze status %d, want 503 (body %s)", code, body)
	}
	readyResp, err := http.Get(h.base + "/readyz")
	if err != nil {
		return err
	}
	io.Copy(io.Discard, readyResp.Body)
	readyResp.Body.Close()
	if readyResp.StatusCode != http.StatusServiceUnavailable {
		return fmt.Errorf("soak: draining /readyz status %d, want 503", readyResp.StatusCode)
	}
	fmt.Fprintf(w, "soak: drain     analyze=503 readyz=503\n")

	if err := h.stop(); err != nil {
		return fmt.Errorf("soak: server shutdown: %w", err)
	}
	if err := st.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "soak: ok\n")
	return nil
}
