package bench

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"swift/internal/driver"
	"swift/internal/store"
)

// WarmTable is the cold-versus-warm benchmark of the persistent summary
// store: two serial passes of the hybrid engine (k=5, θ=1 — the headline
// Table 2 configuration) over the suite against one store directory,
// printing per-benchmark wall-clock and cache telemetry. Within the
// process it is cold → warm; pointed at a directory populated by an
// earlier process, the first pass is already warm — which is how the CI
// smoke proves cross-process persistence (its second invocation must
// report every first-pass run as restored).
//
// The table is diagnostic output; the correctness checks are hard
// errors: every warm pass must restore the cold pass's intern tables,
// reuse its summaries without a single miss, and reproduce its result
// tables byte for byte (driver.EncodeResultTables).
func (s *Suite) WarmTable(w io.Writer, budget Budget, dir string) error {
	if budget.FaultEvery > 0 {
		return fmt.Errorf("bench: WarmTable is incompatible with fault injection (fault-armed runs bypass the store)")
	}
	st, err := store.Open(dir, 256<<20)
	if err != nil {
		return err
	}
	cfg := budget.config(5, 1)
	names := s.sortedNames()

	type passRun struct {
		run   *EngineRun
		stats *driver.WarmStats
		enc   []byte
		wall  time.Duration
	}
	// Both passes run serially: the point is the per-run cold/warm
	// wall-clock contrast, which parallelism would blur.
	pass := func() ([]passRun, error) {
		out := make([]passRun, 0, len(names))
		for _, name := range names {
			prog, err := s.Program(name)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			b, err := driver.FromHIR(prog)
			if err != nil {
				return nil, err
			}
			res, stats, err := driver.Warm{Store: st}.Run(b, "swift", cfg)
			if err != nil {
				return nil, err
			}
			wall := time.Since(start)
			run := &EngineRun{
				Benchmark:   name,
				Engine:      "swift",
				Elapsed:     res.Elapsed,
				Work:        res.WorkUnits(),
				Cost:        time.Duration(res.WorkUnits()) * costPerWorkUnit,
				Completed:   res.Completed(),
				TDSummaries: res.TDSummaryTotal(),
				BUSummaries: res.BUSummaryTotal(),
			}
			out = append(out, passRun{run: run, stats: stats, enc: driver.EncodeResultTables(b, res), wall: wall})
		}
		return out, nil
	}

	first, err := pass()
	if err != nil {
		return err
	}
	second, err := pass()
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "Warm-start benchmark (swift, k=5, θ=1) — store: %s\n\n", storeDesc(dir))
	fmt.Fprintf(w, "%-12s %9s %9s %9s %9s %14s %14s\n",
		"benchmark", "wall1", "wall2", "restored1", "restored2", "hits/miss 1", "hits/miss 2")
	firstRestored := 0
	for i, name := range names {
		f, g := first[i], second[i]
		if f.stats.RestoredTables {
			firstRestored++
		}
		fmt.Fprintf(w, "%-12s %9s %9s %9s %9s %9d/%-4d %9d/%-4d\n",
			name, fmtDur(f.wall), fmtDur(g.wall),
			yn(f.stats.RestoredTables), yn(g.stats.RestoredTables),
			f.stats.SummaryHits, f.stats.SummaryMisses,
			g.stats.SummaryHits, g.stats.SummaryMisses)

		if !g.stats.RestoredTables {
			return fmt.Errorf("bench: %s: warm pass did not restore tables", name)
		}
		if g.stats.SummaryMisses != 0 {
			return fmt.Errorf("bench: %s: warm pass had %d summary misses", name, g.stats.SummaryMisses)
		}
		if !bytes.Equal(f.enc, g.enc) {
			return fmt.Errorf("bench: %s: warm result tables differ from the first pass", name)
		}
		s.Release(name)
	}
	sst := st.Stats()
	fmt.Fprintf(w, "\nwarmbench: %d benchmarks, first pass restored %d/%d, second pass restored %d/%d, all tables byte-identical\n",
		len(names), firstRestored, len(names), len(names), len(names))
	fmt.Fprintf(w, "store: mem %d hits / %d misses, disk %d hits / %d misses, %d puts, %d evictions\n",
		sst.MemHits, sst.MemMisses, sst.DiskHits, sst.DiskMisses, sst.Puts, sst.Evictions)
	return nil
}

func yn(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func storeDesc(dir string) string {
	if dir == "" {
		return "memory-only"
	}
	return dir
}
