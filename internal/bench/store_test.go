package bench

import (
	"bytes"
	"regexp"
	"testing"
)

// TestWarmTable exercises the cold-vs-warm benchmark on a subset of the
// suite: the first invocation must report a cold first pass and a fully
// restored second pass; a second invocation over the same directory (a
// stand-in for the CI smoke's second process) must report every run as
// restored, proving cross-process persistence through the disk tier.
func TestWarmTable(t *testing.T) {
	dir := t.TempDir()
	budget := QuickBudget()

	s := NewSuite()
	s.Profiles = s.Profiles[:3]
	var out bytes.Buffer
	if err := s.WarmTable(&out, budget, dir); err != nil {
		t.Fatalf("first WarmTable: %v\n%s", err, out.String())
	}
	if !regexp.MustCompile(`first pass restored 0/3, second pass restored 3/3`).Match(out.Bytes()) {
		t.Fatalf("first invocation summary unexpected:\n%s", out.String())
	}

	// Fresh suite, same directory: only the disk tier connects them.
	s2 := NewSuite()
	s2.Profiles = s2.Profiles[:3]
	var out2 bytes.Buffer
	if err := s2.WarmTable(&out2, budget, dir); err != nil {
		t.Fatalf("second WarmTable: %v\n%s", err, out2.String())
	}
	if !regexp.MustCompile(`first pass restored 3/3`).Match(out2.Bytes()) {
		t.Fatalf("second invocation was not warm from disk:\n%s", out2.String())
	}
}

// TestWarmTableRejectsFaultInjection: fault-armed runs bypass the store,
// so the benchmark refuses the combination instead of silently measuring
// nothing.
func TestWarmTableRejectsFaultInjection(t *testing.T) {
	s := NewSuite()
	budget := QuickBudget()
	budget.FaultEvery = 100
	if err := s.WarmTable(&bytes.Buffer{}, budget, t.TempDir()); err == nil {
		t.Fatal("WarmTable accepted a fault-armed budget")
	}
}
