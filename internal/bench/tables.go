package bench

import (
	"fmt"
	"io"
	"strings"

	"swift/internal/hir"
)

// Table1 renders the benchmark characteristics table (paper Table 1):
// classes, methods, code size and lines of code, split into application
// code ("app": the Main and App layers) and the total including the
// utility library that stands in for the JDK. All numbers are computed over
// the 0-CFA-reachable part of each program, as in the paper.
func (s *Suite) Table1(w io.Writer) error {
	header := []string{"benchmark", "description",
		"classes app", "total", "methods app", "total",
		"code(KB) app", "total", "KLOC app", "total"}
	var rows [][]string
	for _, p := range s.Profiles {
		b, err := s.Build(p.Name)
		if err != nil {
			return err
		}
		appClasses, totClasses := map[string]bool{}, map[string]bool{}
		appMethods, totMethods := 0, 0
		appLines, totLines := 0, 0
		appBytes, totBytes := 0, 0
		prog := s.Program(p.Name)
		for _, m := range b.Pointer.ReachableMethods() {
			app := isAppClass(m.Class.Name)
			totClasses[m.Class.Name] = true
			totMethods++
			sub := &hir.Program{}
			_ = sub
			lines, bytes := methodSize(prog, m.Class.Name, m.Name)
			totLines += lines
			totBytes += bytes
			if app {
				appClasses[m.Class.Name] = true
				appMethods++
				appLines += lines
				appBytes += bytes
			}
		}
		rows = append(rows, []string{
			p.Name, p.Desc,
			fmt.Sprintf("%d", len(appClasses)), fmt.Sprintf("%d", len(totClasses)),
			fmt.Sprintf("%d", appMethods), fmt.Sprintf("%d", totMethods),
			fmt.Sprintf("%.1f", float64(appBytes)/1024), fmt.Sprintf("%.1f", float64(totBytes)/1024),
			fmt.Sprintf("%.2f", float64(appLines)/1000), fmt.Sprintf("%.2f", float64(totLines)/1000),
		})
	}
	fmt.Fprintln(w, "Table 1: Benchmark characteristics (0-CFA-reachable code).")
	table(w, header, rows)
	return nil
}

// isAppClass splits the generated programs into application and library
// layers: Main and App* are the application; Util*, Dispatch are the
// library standing in for the JDK.
func isAppClass(name string) bool {
	return name == "Main" || strings.HasPrefix(name, "App")
}

// methodSize measures one method's printed source: lines and bytes (the
// "bytecode KB" stand-in).
func methodSize(prog *hir.Program, class, method string) (lines, bytes int) {
	c := prog.Class(class)
	if c == nil {
		return 0, 0
	}
	m := c.Method(method)
	if m == nil {
		return 0, 0
	}
	one := hir.NewProgram()
	oc := hir.NewClass(class, "")
	oc.AddMethod(&hir.Method{Name: m.Name, Params: m.Params, Body: m.Body})
	one.AddClass(oc)
	src := hir.Print(one)
	return strings.Count(src, "\n"), len(src)
}

// Table2Row is one benchmark's outcome under the three engines.
type Table2Row struct {
	Name          string
	TD, BU, Swift *EngineRun
}

// RunTable2 executes the three engines on every benchmark with the paper's
// headline thresholds (k=5, θ=1). Only scalar outcomes are retained; the
// heavyweight per-run state (path-edge maps, interners) is released after
// each benchmark so the sweep's memory stays flat.
func (s *Suite) RunTable2(budget Budget) ([]Table2Row, error) {
	var rows []Table2Row
	for _, name := range s.sortedNames() {
		td, err := s.Run(name, "td", budget, 5, 1)
		if err != nil {
			return nil, err
		}
		td.Result = nil
		bu, err := s.Run(name, "bu", budget, 5, 1)
		if err != nil {
			return nil, err
		}
		bu.Result = nil
		sw, err := s.Run(name, "swift", budget, 5, 1)
		if err != nil {
			return nil, err
		}
		sw.Result = nil
		s.Release(name)
		rows = append(rows, Table2Row{Name: name, TD: td, BU: bu, Swift: sw})
	}
	return rows, nil
}

// Table2 renders the running-time and summary-count comparison (paper
// Table 2). DNF marks runs that exhausted the work budget or deadline, the
// analogue of the paper's timeout/OOM entries.
func (s *Suite) Table2(w io.Writer, budget Budget) error {
	rows, err := s.RunTable2(budget)
	if err != nil {
		return err
	}
	header := []string{"benchmark",
		"TD time", "BU time", "SWIFT time", "vs TD", "vs BU",
		"TD summ (td)", "(swift)", "drop",
		"BU summ (bu)", "(swift)", "drop"}
	var out [][]string
	for _, r := range rows {
		tdTime, buTime, swTime := "DNF", "DNF", "DNF"
		if r.TD.Completed {
			tdTime = fmtDur(r.TD.Elapsed)
		}
		if r.BU.Completed {
			buTime = fmtDur(r.BU.Elapsed)
		}
		if r.Swift.Completed {
			swTime = fmtDur(r.Swift.Elapsed)
		}
		tdDrop, buDrop := "-", "-"
		tdCount, buCount := "-", "-"
		if r.TD.Completed {
			tdCount = fmtK(r.TD.TDSummaries)
			if r.TD.TDSummaries > 0 {
				tdDrop = fmt.Sprintf("%d%%", 100-100*r.Swift.TDSummaries/r.TD.TDSummaries)
			}
		}
		if r.BU.Completed {
			buCount = fmtK(r.BU.BUSummaries)
			if r.BU.BUSummaries > 0 {
				buDrop = fmt.Sprintf("%d%%", 100-100*r.Swift.BUSummaries/r.BU.BUSummaries)
			}
		}
		out = append(out, []string{
			r.Name, tdTime, buTime, swTime,
			fmtSpeedup(r.TD.Elapsed, r.Swift.Elapsed, r.TD.Completed, r.Swift.Completed),
			fmtSpeedup(r.BU.Elapsed, r.Swift.Elapsed, r.BU.Completed, r.Swift.Completed),
			tdCount, fmtK(r.Swift.TDSummaries), tdDrop,
			buCount, fmtK(r.Swift.BUSummaries), buDrop,
		})
	}
	fmt.Fprintln(w, "Table 2: Running time and number of summaries, SWIFT (k=5, θ=1) vs the")
	fmt.Fprintln(w, "TD and BU baselines. DNF = work budget or deadline exhausted.")
	table(w, header, out)
	return nil
}

// Table3 renders the k-sweep on the avrora stand-in (paper Table 3):
// running time and top-down summary count for k ∈ {2,5,10,50,100,200,500},
// θ=1.
func (s *Suite) Table3(w io.Writer, budget Budget) error {
	header := []string{"k", "running time", "TD summaries"}
	var rows [][]string
	for _, k := range []int{2, 5, 10, 50, 100, 200, 500} {
		run, err := s.Run("avrora", "swift", budget, k, 1)
		if err != nil {
			return err
		}
		run.Result = nil
		// Rebuild between runs: the interning tables otherwise accumulate
		// the states of every k setting.
		s.Release("avrora")
		t := "DNF"
		if run.Completed {
			t = fmtDur(run.Elapsed)
		}
		rows = append(rows, []string{fmt.Sprintf("%d", k), t, fmtK(run.TDSummaries)})
	}
	fmt.Fprintln(w, "Table 3: Effect of varying k on the avrora stand-in (θ=1).")
	table(w, header, rows)
	return nil
}

// Table4 renders the θ comparison (paper Table 4): θ=1 vs θ=2 with k=5 on
// the ten benchmarks from toba-s up (the paper's selection).
func (s *Suite) Table4(w io.Writer, budget Budget) error {
	header := []string{"benchmark", "time θ=1", "time θ=2", "TD summ θ=1", "θ=2"}
	var rows [][]string
	for _, name := range s.sortedNames() {
		if name == "jpat-p" || name == "elevator" {
			continue
		}
		r1, err := s.Run(name, "swift", budget, 5, 1)
		if err != nil {
			return err
		}
		r1.Result = nil
		r2, err := s.Run(name, "swift", budget, 5, 2)
		if err != nil {
			return err
		}
		r2.Result = nil
		s.Release(name)
		t1, t2 := "DNF", "DNF"
		if r1.Completed {
			t1 = fmtDur(r1.Elapsed)
		}
		if r2.Completed {
			t2 = fmtDur(r2.Elapsed)
		}
		rows = append(rows, []string{name, t1, t2, fmtK(r1.TDSummaries), fmtK(r2.TDSummaries)})
	}
	fmt.Fprintln(w, "Table 4: Effect of varying θ with k=5.")
	table(w, header, rows)
	return nil
}

// Figure5 renders the per-method top-down summary counts of TD and SWIFT
// for the three benchmarks the paper plots (toba-s, javasrc-p, antlr):
// methods sorted by descending count, one series per engine, printed both
// as a data listing and an ASCII log-scale sketch.
func (s *Suite) Figure5(w io.Writer, budget Budget) error {
	for _, name := range []string{"toba-s", "javasrc-p", "antlr"} {
		td, err := s.Run(name, "td", budget, 5, 1)
		if err != nil {
			return err
		}
		sw, err := s.Run(name, "swift", budget, 5, 1)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "Figure 5 (%s): per-method top-down summaries, methods sorted by count.\n", name)
		if !td.Completed || !sw.Completed {
			fmt.Fprintln(w, "  (a run did not finish; series omitted)")
			continue
		}
		tdSeries := perMethodCounts(td)
		swSeries := perMethodCounts(sw)
		td.Result, sw.Result = nil, nil
		s.Release(name)
		writeSeries(w, "TD   ", tdSeries)
		writeSeries(w, "SWIFT", swSeries)
		sketchLog(w, tdSeries, swSeries)
	}
	return nil
}

// perMethodCounts extracts the per-procedure summary counts of a run,
// sorted descending (Figure 5's x-axis).
func perMethodCounts(run *EngineRun) []int {
	var counts []int
	for proc := range run.Result.TD.Summaries {
		counts = append(counts, run.Result.TD.SummaryCount(proc))
	}
	return descByCount(counts)
}

// writeSeries prints a compact series listing (first methods, then every
// tenth).
func writeSeries(w io.Writer, label string, series []int) {
	fmt.Fprintf(w, "  %s:", label)
	for i, v := range series {
		if i < 8 || i%10 == 0 {
			fmt.Fprintf(w, " %d:%d", i, v)
		}
	}
	fmt.Fprintln(w)
}

// sketchLog draws a small ASCII chart with a log-scale y-axis, mirroring
// the figure's visual comparison of the two curves.
func sketchLog(w io.Writer, td, sw []int) {
	const width = 64
	n := len(td)
	if len(sw) > n {
		n = len(sw)
	}
	if n == 0 {
		return
	}
	maxV := 1
	for _, v := range td {
		if v > maxV {
			maxV = v
		}
	}
	levels := 0
	for m := maxV; m > 0; m /= 10 {
		levels++
	}
	at := func(series []int, x int) int {
		idx := x * n / width
		if idx >= len(series) {
			return 0
		}
		return series[idx]
	}
	for lvl := levels; lvl >= 1; lvl-- {
		lo := ipow10(lvl - 1)
		fmt.Fprintf(w, "  %7d |", lo)
		for x := 0; x < width; x++ {
			t := at(td, x) >= lo
			s := at(sw, x) >= lo
			switch {
			case t && s:
				fmt.Fprint(w, "*")
			case t:
				fmt.Fprint(w, "t")
			case s:
				fmt.Fprint(w, "s")
			default:
				fmt.Fprint(w, " ")
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "          +%s  (t=TD only, s=SWIFT only, *=both)\n", strings.Repeat("-", width))
}

func ipow10(n int) int {
	out := 1
	for i := 0; i < n; i++ {
		out *= 10
	}
	return out
}
