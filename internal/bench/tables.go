package bench

import (
	"fmt"
	"io"
	"strings"

	"swift/internal/hir"
)

// Table1 renders the benchmark characteristics table (paper Table 1):
// classes, methods, code size and lines of code, split into application
// code ("app": the Main and App layers) and the total including the
// utility library that stands in for the JDK. All numbers are computed over
// the 0-CFA-reachable part of each program, as in the paper.
func (s *Suite) Table1(w io.Writer) error {
	header := []string{"benchmark", "description",
		"classes app", "total", "methods app", "total",
		"code(KB) app", "total", "KLOC app", "total"}
	var rows [][]string
	for _, p := range s.Profiles {
		b, err := s.Build(p.Name)
		if err != nil {
			return err
		}
		prog, err := s.Program(p.Name)
		if err != nil {
			return err
		}
		appClasses, totClasses := map[string]bool{}, map[string]bool{}
		appMethods, totMethods := 0, 0
		appLines, totLines := 0, 0
		appBytes, totBytes := 0, 0
		for _, m := range b.Pointer.ReachableMethods() {
			app := isAppClass(m.Class.Name)
			totClasses[m.Class.Name] = true
			totMethods++
			lines, bytes := methodSize(prog, m.Class.Name, m.Name)
			totLines += lines
			totBytes += bytes
			if app {
				appClasses[m.Class.Name] = true
				appMethods++
				appLines += lines
				appBytes += bytes
			}
		}
		rows = append(rows, []string{
			p.Name, p.Desc,
			fmt.Sprintf("%d", len(appClasses)), fmt.Sprintf("%d", len(totClasses)),
			fmt.Sprintf("%d", appMethods), fmt.Sprintf("%d", totMethods),
			fmt.Sprintf("%.1f", float64(appBytes)/1024), fmt.Sprintf("%.1f", float64(totBytes)/1024),
			fmt.Sprintf("%.2f", float64(appLines)/1000), fmt.Sprintf("%.2f", float64(totLines)/1000),
		})
	}
	fmt.Fprintln(w, "Table 1: Benchmark characteristics (0-CFA-reachable code).")
	table(w, header, rows)
	return nil
}

// isAppClass splits the generated programs into application and library
// layers: Main and App* are the application; Util*, Dispatch are the
// library standing in for the JDK.
func isAppClass(name string) bool {
	return name == "Main" || strings.HasPrefix(name, "App")
}

// methodSize measures one method's printed source: lines and bytes (the
// "bytecode KB" stand-in).
func methodSize(prog *hir.Program, class, method string) (lines, bytes int) {
	c := prog.Class(class)
	if c == nil {
		return 0, 0
	}
	m := c.Method(method)
	if m == nil {
		return 0, 0
	}
	one := hir.NewProgram()
	oc := hir.NewClass(class, "")
	oc.AddMethod(&hir.Method{Name: m.Name, Params: m.Params, Body: m.Body})
	one.AddClass(oc)
	src := hir.Print(one)
	return strings.Count(src, "\n"), len(src)
}

// Table2Row is one benchmark's outcome under the three engines.
type Table2Row struct {
	Name          string
	TD, BU, Swift *EngineRun
}

// table2Engines is the engine column order of Table 2.
var table2Engines = []string{"td", "bu", "swift"}

// RunTable2 executes the three engines on every benchmark with the paper's
// headline thresholds (k=5, θ=1). The 36 runs are independent, so they run
// on the suite's worker pool; results land in slots indexed by (benchmark,
// engine), which makes the assembled rows — and everything rendered from
// them — identical to a serial sweep. Only scalar outcomes are retained;
// the heavyweight per-run state (path-edge maps, interners) is dropped as
// each run finishes so the sweep's memory stays flat.
func (s *Suite) RunTable2(budget Budget) ([]Table2Row, error) {
	names := s.sortedNames()
	runs := make([]*EngineRun, len(names)*len(table2Engines))
	var jobs []func() error
	for i, name := range names {
		for j, engine := range table2Engines {
			slot := i*len(table2Engines) + j
			name, engine := name, engine
			jobs = append(jobs, func() error {
				run, err := s.Run(name, engine, budget, 5, 1)
				if err != nil {
					return err
				}
				run.Result = nil
				runs[slot] = run
				return nil
			})
		}
	}
	if err := s.forEach(jobs); err != nil {
		return nil, err
	}
	rows := make([]Table2Row, len(names))
	for i, name := range names {
		rows[i] = Table2Row{
			Name:  name,
			TD:    runs[i*len(table2Engines)+0],
			BU:    runs[i*len(table2Engines)+1],
			Swift: runs[i*len(table2Engines)+2],
		}
		s.Release(name)
	}
	return rows, nil
}

// Table2 renders the cost and summary-count comparison (paper Table 2).
// The time columns show deterministic work-unit cost (see EngineRun.Cost),
// so the table is identical at any parallelism; DNF marks runs that
// exhausted the work budget or deadline, the analogue of the paper's
// timeout/OOM entries.
func (s *Suite) Table2(w io.Writer, budget Budget) error {
	rows, err := s.RunTable2(budget)
	if err != nil {
		return err
	}
	header := []string{"benchmark",
		"TD cost", "BU cost", "SWIFT cost", "vs TD", "vs BU",
		"TD summ (td)", "(swift)", "drop",
		"BU summ (bu)", "(swift)", "drop"}
	var out [][]string
	for _, r := range rows {
		tdTime, buTime, swTime := "DNF", "DNF", "DNF"
		if r.TD.Completed {
			tdTime = fmtDur(r.TD.Cost)
		}
		if r.BU.Completed {
			buTime = fmtDur(r.BU.Cost)
		}
		if r.Swift.Completed {
			swTime = fmtDur(r.Swift.Cost)
		}
		tdDrop, buDrop := "-", "-"
		tdCount, buCount := "-", "-"
		if r.TD.Completed {
			tdCount = fmtK(r.TD.TDSummaries)
			if r.TD.TDSummaries > 0 {
				tdDrop = fmt.Sprintf("%d%%", 100-100*r.Swift.TDSummaries/r.TD.TDSummaries)
			}
		}
		if r.BU.Completed {
			buCount = fmtK(r.BU.BUSummaries)
			if r.BU.BUSummaries > 0 {
				buDrop = fmt.Sprintf("%d%%", 100-100*r.Swift.BUSummaries/r.BU.BUSummaries)
			}
		}
		out = append(out, []string{
			r.Name, tdTime, buTime, swTime,
			fmtSpeedup(r.TD.Cost, r.Swift.Cost, r.TD.Completed, r.Swift.Completed),
			fmtSpeedup(r.BU.Cost, r.Swift.Cost, r.BU.Completed, r.Swift.Completed),
			tdCount, fmtK(r.Swift.TDSummaries), tdDrop,
			buCount, fmtK(r.Swift.BUSummaries), buDrop,
		})
	}
	fmt.Fprintln(w, "Table 2: Work cost and number of summaries, SWIFT (k=5, θ=1) vs the")
	fmt.Fprintln(w, "TD and BU baselines. DNF = work budget or deadline exhausted.")
	table(w, header, out)
	return nil
}

// Table3 renders the k-sweep on the avrora stand-in (paper Table 3):
// cost and top-down summary count for k ∈ {2,5,10,50,100,200,500}, θ=1.
// The per-k runs execute concurrently (each on its own pipeline) and are
// assembled in k order.
func (s *Suite) Table3(w io.Writer, budget Budget) error {
	ks := []int{2, 5, 10, 50, 100, 200, 500}
	runs := make([]*EngineRun, len(ks))
	jobs := make([]func() error, len(ks))
	for i, k := range ks {
		i, k := i, k
		jobs[i] = func() error {
			run, err := s.Run("avrora", "swift", budget, k, 1)
			if err != nil {
				return err
			}
			run.Result = nil
			runs[i] = run
			return nil
		}
	}
	if err := s.forEach(jobs); err != nil {
		return err
	}
	s.Release("avrora")
	header := []string{"k", "cost", "TD summaries"}
	var rows [][]string
	for i, k := range ks {
		t := "DNF"
		if runs[i].Completed {
			t = fmtDur(runs[i].Cost)
		}
		rows = append(rows, []string{fmt.Sprintf("%d", k), t, fmtK(runs[i].TDSummaries)})
	}
	fmt.Fprintln(w, "Table 3: Effect of varying k on the avrora stand-in (θ=1).")
	table(w, header, rows)
	return nil
}

// Table4 renders the θ comparison (paper Table 4): θ=1 vs θ=2 with k=5 on
// the ten benchmarks from toba-s up (the paper's selection). Runs execute
// concurrently, slotted by (benchmark, θ).
func (s *Suite) Table4(w io.Writer, budget Budget) error {
	var names []string
	for _, name := range s.sortedNames() {
		if name == "jpat-p" || name == "elevator" {
			continue
		}
		names = append(names, name)
	}
	thetas := []int{1, 2}
	runs := make([]*EngineRun, len(names)*len(thetas))
	var jobs []func() error
	for i, name := range names {
		for j, theta := range thetas {
			slot := i*len(thetas) + j
			name, theta := name, theta
			jobs = append(jobs, func() error {
				run, err := s.Run(name, "swift", budget, 5, theta)
				if err != nil {
					return err
				}
				run.Result = nil
				runs[slot] = run
				return nil
			})
		}
	}
	if err := s.forEach(jobs); err != nil {
		return err
	}
	header := []string{"benchmark", "cost θ=1", "cost θ=2", "TD summ θ=1", "θ=2"}
	var rows [][]string
	for i, name := range names {
		r1, r2 := runs[i*len(thetas)], runs[i*len(thetas)+1]
		s.Release(name)
		t1, t2 := "DNF", "DNF"
		if r1.Completed {
			t1 = fmtDur(r1.Cost)
		}
		if r2.Completed {
			t2 = fmtDur(r2.Cost)
		}
		rows = append(rows, []string{name, t1, t2, fmtK(r1.TDSummaries), fmtK(r2.TDSummaries)})
	}
	fmt.Fprintln(w, "Table 4: Effect of varying θ with k=5.")
	table(w, header, rows)
	return nil
}

// Figure5 renders the per-method top-down summary counts of TD and SWIFT
// for the three benchmarks the paper plots (toba-s, javasrc-p, antlr):
// methods sorted by descending count, one series per engine, printed both
// as a data listing and an ASCII log-scale sketch. The six runs execute
// concurrently; series are extracted during ordered assembly.
func (s *Suite) Figure5(w io.Writer, budget Budget) error {
	names := []string{"toba-s", "javasrc-p", "antlr"}
	engines := []string{"td", "swift"}
	runs := make([]*EngineRun, len(names)*len(engines))
	var jobs []func() error
	for i, name := range names {
		for j, engine := range engines {
			slot := i*len(engines) + j
			name, engine := name, engine
			jobs = append(jobs, func() error {
				run, err := s.Run(name, engine, budget, 5, 1)
				if err != nil {
					return err
				}
				runs[slot] = run
				return nil
			})
		}
	}
	if err := s.forEach(jobs); err != nil {
		return err
	}
	for i, name := range names {
		td, sw := runs[i*len(engines)], runs[i*len(engines)+1]
		fmt.Fprintf(w, "Figure 5 (%s): per-method top-down summaries, methods sorted by count.\n", name)
		if !td.Completed || !sw.Completed {
			fmt.Fprintln(w, "  (a run did not finish; series omitted)")
			continue
		}
		tdSeries := perMethodCounts(td)
		swSeries := perMethodCounts(sw)
		td.Result, sw.Result = nil, nil
		s.Release(name)
		writeSeries(w, "TD   ", tdSeries)
		writeSeries(w, "SWIFT", swSeries)
		sketchLog(w, tdSeries, swSeries)
	}
	return nil
}

// perMethodCounts extracts the per-procedure summary counts of a run,
// sorted descending (Figure 5's x-axis).
func perMethodCounts(run *EngineRun) []int {
	var counts []int
	for proc := range run.Result.TD.Summaries {
		counts = append(counts, run.Result.TD.SummaryCount(proc))
	}
	return descByCount(counts)
}

// writeSeries prints a compact series listing (first methods, then every
// tenth).
func writeSeries(w io.Writer, label string, series []int) {
	fmt.Fprintf(w, "  %s:", label)
	for i, v := range series {
		if i < 8 || i%10 == 0 {
			fmt.Fprintf(w, " %d:%d", i, v)
		}
	}
	fmt.Fprintln(w)
}

// sketchLog draws a small ASCII chart with a log-scale y-axis, mirroring
// the figure's visual comparison of the two curves.
func sketchLog(w io.Writer, td, sw []int) {
	const width = 64
	n := len(td)
	if len(sw) > n {
		n = len(sw)
	}
	if n == 0 {
		return
	}
	maxV := 1
	for _, v := range td {
		if v > maxV {
			maxV = v
		}
	}
	levels := 0
	for m := maxV; m > 0; m /= 10 {
		levels++
	}
	at := func(series []int, x int) int {
		idx := x * n / width
		if idx >= len(series) {
			return 0
		}
		return series[idx]
	}
	for lvl := levels; lvl >= 1; lvl-- {
		lo := ipow10(lvl - 1)
		fmt.Fprintf(w, "  %7d |", lo)
		for x := 0; x < width; x++ {
			t := at(td, x) >= lo
			s := at(sw, x) >= lo
			switch {
			case t && s:
				fmt.Fprint(w, "*")
			case t:
				fmt.Fprint(w, "t")
			case s:
				fmt.Fprint(w, "s")
			default:
				fmt.Fprint(w, " ")
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "          +%s  (t=TD only, s=SWIFT only, *=both)\n", strings.Repeat("-", width))
}

func ipow10(n int) int {
	out := 1
	for i := 0; i < n; i++ {
		out *= 10
	}
	return out
}
