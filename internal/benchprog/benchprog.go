// Package benchprog generates the synthetic benchmark suite standing in
// for the paper's 12 Java programs (Table 1: jpat-p … sablecc-j). The
// generators are deterministic (seeded) and parameterized by a Profile
// whose knobs reproduce the two structural pathologies the paper's
// evaluation exercises:
//
//   - context diversity: many call sites invoke a shared utility layer with
//     distinct tracked objects and alias shapes, so the top-down analysis
//     computes per-context summaries that never get reused (its blow-up);
//   - alias tangling: utility bodies copy tracked references through
//     branchy local chains, so the bottom-up analysis case-splits
//     exponentially without pruning (its blow-up).
//
// Each generated program is a mini-Java HIR: an application layer (classes
// App0…, plus Main) allocating File objects and invoking a library layer
// (classes Util0… with subclass variants, a Dispatch registry) that plays
// the role of the JDK in the paper's app/total accounting.
package benchprog

import (
	"fmt"
	"math/rand"

	"swift/internal/hir"
	"swift/internal/typestate"
)

// Profile parametrizes one synthetic benchmark.
type Profile struct {
	// Name and Desc identify the benchmark (paper Table 1 row).
	Name string
	Desc string
	// Seed drives all generator randomness.
	Seed int64

	// Utils is the library chain length: Util k calls Util k+1.
	Utils int
	// UtilVariants is the number of overriding subclasses per util class
	// (dispatch diversity).
	UtilVariants int
	// AliasTangle is the length of the branchy copy chain in each util
	// body — the bottom-up case-splitting knob. The chain stays within the
	// first file's alias family, so the pruned analysis can cover the
	// dominant incoming states with a single case (θ=1).
	AliasTangle int
	// DualTangle adds a second copy chain whose branches mix both files'
	// alias families; covering the dominant states then needs two kept
	// cases, which is what makes θ=2 pay off on the avrora-like profiles
	// (paper Table 4).
	DualTangle int

	// AppClasses and MethodsPerClass size the application layer.
	AppClasses      int
	MethodsPerClass int
	// PoolFiles is the number of long-lived tracked objects allocated in
	// main and threaded through the app layer as parameters. They are what
	// the top-down analysis re-analyzes per calling context (their alias
	// sets differ along every call path) and what the pruned bottom-up
	// summary covers with one dominant case — the paper's summary-reuse
	// phenomenon.
	PoolFiles int
	// CallsPerMethod is how many utility invocations (each with fresh
	// tracked objects) an app method makes — the top-down context-
	// diversity knob.
	CallsPerMethod int
	// CrossCalls is how many sibling app methods each app method invokes.
	CrossCalls int
	// SloppyEvery makes every Nth app method misuse the protocol
	// (a genuine double-open), 0 for never.
	SloppyEvery int
	// LoopNest is the nesting depth of each util body's read loop: depth 1
	// (or 0) keeps the paper shape — a single while — while larger values
	// wrap it in further while loops, each level reading the file again.
	// The knob exists to stress the loop-structure index behind the sparse
	// tabulation scheduler (deep nests exercise region priorities and
	// region-level memoization); it leaves the protocol behaviour of the
	// body unchanged.
	LoopNest int
	// Dispatch adds a registry class and routes every Nth utility call
	// through it, merging utility variants into multi-target virtual
	// calls; 0 disables.
	Dispatch int
}

// Generate builds the benchmark program for a profile. The result is
// finalized and validated.
func Generate(p Profile) (*hir.Program, error) {
	g := &generator{p: p, rng: rand.New(rand.NewSource(p.Seed))}
	prog := g.build()
	prog.Finalize()
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("benchprog %s: %w", p.Name, err)
	}
	return prog, nil
}

type generator struct {
	p   Profile
	rng *rand.Rand
}

func (g *generator) utilClass(k, variant int) string {
	if variant == 0 {
		return fmt.Sprintf("Util%d", k)
	}
	return fmt.Sprintf("Util%dv%d", k, variant)
}

// pickUtil selects a utility class of layer k, any variant.
func (g *generator) pickUtil(k int) string {
	return g.utilClass(k, g.rng.Intn(g.p.UtilVariants+1))
}

func (g *generator) build() *hir.Program {
	prog := hir.NewProgram()
	prog.AddProperty(typestate.FileProperty())

	g.buildLibrary(prog)
	if g.p.Dispatch > 0 {
		g.buildDispatch(prog)
	}
	g.buildApps(prog)
	g.buildMain(prog)
	return prog
}

// buildLibrary emits the Util chain: each layer opens/reads/closes its
// first file through an alias tangle, then forwards both files (swapped) to
// the next layer.
func (g *generator) buildLibrary(prog *hir.Program) {
	for k := 0; k < g.p.Utils; k++ {
		for v := 0; v <= g.p.UtilVariants; v++ {
			name := g.utilClass(k, v)
			super := ""
			if v > 0 {
				super = g.utilClass(k, 0)
			}
			c := hir.NewClass(name, super)
			if v == 0 || g.rng.Intn(2) == 0 {
				c.AddMethod(&hir.Method{
					Name:   "process",
					Params: []string{"f", "g"},
					Body:   g.utilBody(k, v),
				})
			}
			prog.AddClass(c)
		}
	}
}

// utilBody is the body of Util<k>.process(f, g): the alias tangle, the
// protocol-correct use of f, and the forwarding call.
func (g *generator) utilBody(k, variant int) *hir.Block {
	b := &hir.Block{}
	// Alias tangle: a chain of branchy copies within f's alias family.
	// Each copy with a statically unknown source splits the bottom-up
	// analysis; without pruning the cases multiply down the chain.
	prev := "f"
	for i := 0; i < g.p.AliasTangle; i++ {
		x := fmt.Sprintf("x%d", i)
		other := "f"
		if i > 0 && g.rng.Intn(2) == 0 {
			other = fmt.Sprintf("x%d", g.rng.Intn(i))
		}
		b.Stmts = append(b.Stmts, &hir.If{
			Then: &hir.Block{Stmts: []hir.Stmt{&hir.Assign{Dst: x, Src: prev}}},
			Else: &hir.Block{Stmts: []hir.Stmt{&hir.Assign{Dst: x, Src: other}}},
		})
		prev = x
	}
	// Dual tangle: branches mix f's and g's families, so no single
	// relational case covers even the dominant incoming states and a θ=1
	// summary of this layer is mostly useless. Applied to every third
	// layer only, so the benchmark stays analyzable at θ=1 while θ=2
	// recovers the affected layers (the paper's avrora behaviour).
	dual := g.p.DualTangle
	if (k+variant)%3 != 0 {
		dual = 0
	}
	for i := 0; i < dual; i++ {
		y := fmt.Sprintf("y%d", i)
		src := "f"
		if i > 0 {
			src = fmt.Sprintf("y%d", i-1)
		}
		b.Stmts = append(b.Stmts, &hir.If{
			Then: &hir.Block{Stmts: []hir.Stmt{&hir.Assign{Dst: y, Src: src}}},
			Else: &hir.Block{Stmts: []hir.Stmt{&hir.Assign{Dst: y, Src: "g"}}},
		})
	}
	// Protocol-correct use of f. LoopNest > 1 deepens the read loop into a
	// nest; each outer level re-reads the file and carries a per-level
	// local copy, so every level is a distinct loop region rather than a
	// chain the superblock view would collapse.
	loop := hir.Stmt(&hir.While{Body: &hir.Block{Stmts: []hir.Stmt{
		&hir.CallStmt{Recv: "f", Method: "read"},
	}}})
	for d := 1; d < g.p.LoopNest; d++ {
		loop = &hir.While{Body: &hir.Block{Stmts: []hir.Stmt{
			loop,
			&hir.Assign{Dst: fmt.Sprintf("l%d", d), Src: "f"},
			&hir.CallStmt{Recv: "f", Method: "read"},
		}}}
	}
	b.Stmts = append(b.Stmts,
		&hir.CallStmt{Recv: "f", Method: "open"},
		loop,
		&hir.CallStmt{Recv: "f", Method: "close"},
	)
	// Forward down the chain with the files swapped, so deeper layers see
	// fresh role combinations.
	if k+1 < g.p.Utils {
		b.Stmts = append(b.Stmts,
			&hir.NewStmt{Dst: "u", Type: g.pickUtil(k + 1)},
			&hir.CallStmt{Recv: "u", Method: "process", Args: []string{"g", "f"}},
		)
	}
	return b
}

// buildDispatch emits the registry that merges utility variants into
// multi-target calls.
func (g *generator) buildDispatch(prog *hir.Program) {
	c := hir.NewClass("Dispatch", "")
	c.Fields = append(c.Fields, "slot")
	c.AddMethod(&hir.Method{Name: "put", Params: []string{"u"},
		Body: &hir.Block{Stmts: []hir.Stmt{
			&hir.StoreStmt{Base: "this", Field: "slot", Src: "u"},
		}}})
	c.AddMethod(&hir.Method{Name: "pick",
		Body: &hir.Block{Stmts: []hir.Stmt{
			&hir.LoadStmt{Dst: "r", Base: "this", Field: "slot"},
			&hir.Return{Src: "r"},
		}}})
	prog.AddClass(c)
}

// buildApps emits the application layer. Every work method takes two pool
// files as parameters.
func (g *generator) buildApps(prog *hir.Program) {
	for i := 0; i < g.p.AppClasses; i++ {
		c := hir.NewClass(fmt.Sprintf("App%d", i), "")
		for j := 0; j < g.p.MethodsPerClass; j++ {
			c.AddMethod(&hir.Method{
				Name:   fmt.Sprintf("work%d", j),
				Params: []string{"pa", "pb"},
				Body:   g.appBody(i, j),
			})
		}
		prog.AddClass(c)
	}
}

// appBody drives the utility layer with the two inherited pool files and
// passes them down an acyclic sibling chain, so pool objects accumulate a
// different alias history along every call path. Occasionally a method
// misuses the protocol (SloppyEvery).
//
// App methods deliberately do NOT allocate tracked objects: rtrans of a
// tracked allocation yields two always-applicable relations (the frame
// transformer and the fresh object's constant relation), so a θ=1 pruned
// summary of an allocating procedure must drop one of them, its ignored
// set becomes ⊤, and — because ignored sets propagate backward through
// calls — every transitive caller becomes unsummarizable too. Real
// type-state subjects behave the same way: hot methods operate on resources
// created in a few cold spots. main allocates the pool instead.
func (g *generator) appBody(class, method int) *hir.Block {
	b := &hir.Block{}
	idx := class*g.p.MethodsPerClass + method
	mix := []string{"pa", "pb"}
	for cSite := 0; cSite < g.p.CallsPerMethod; cSite++ {
		layer := g.rng.Intn(g.p.Utils)
		util := fmt.Sprintf("u%d", cSite)
		useDispatch := g.p.Dispatch > 0 && (idx+cSite)%g.p.Dispatch == 0
		if useDispatch {
			d := fmt.Sprintf("d%d", cSite)
			b.Stmts = append(b.Stmts,
				&hir.NewStmt{Dst: d, Type: "Dispatch"},
				&hir.NewStmt{Dst: util, Type: g.pickUtil(layer)},
				&hir.CallStmt{Recv: d, Method: "put", Args: []string{util}},
				&hir.NewStmt{Dst: util + "b", Type: g.pickUtil(layer)},
				&hir.CallStmt{Recv: d, Method: "put", Args: []string{util + "b"}},
				&hir.CallStmt{Dst: util, Recv: d, Method: "pick"},
			)
		} else {
			b.Stmts = append(b.Stmts, &hir.NewStmt{Dst: util, Type: g.pickUtil(layer)})
		}
		// Rotate which files this call actually touches; everything else
		// flows through the callee untouched (the dominant class).
		a1 := mix[(idx+cSite)%len(mix)]
		a2 := mix[(idx+cSite+1+cSite%2)%len(mix)]
		b.Stmts = append(b.Stmts, &hir.CallStmt{Recv: util, Method: "process", Args: []string{a1, a2}})
	}
	if g.p.SloppyEvery > 0 && idx%g.p.SloppyEvery == g.p.SloppyEvery-1 {
		// A genuine protocol violation: conditional double open on a pool
		// file.
		b.Stmts = append(b.Stmts,
			&hir.CallStmt{Recv: "pa", Method: "open"},
			&hir.If{Then: &hir.Block{Stmts: []hir.Stmt{
				&hir.CallStmt{Recv: "pa", Method: "open"},
			}}},
			&hir.CallStmt{Recv: "pa", Method: "close"},
		)
	}
	for x := 0; x < g.p.CrossCalls; x++ {
		// Acyclic forward chain: each method only calls later siblings,
		// threading a rotating mix of pool and local files down the chain.
		target := method + 1 + x
		if target >= g.p.MethodsPerClass {
			break
		}
		b.Stmts = append(b.Stmts, &hir.CallStmt{
			Method: fmt.Sprintf("work%d", target),
			Args:   []string{mix[(idx+x)%len(mix)], mix[(idx+x+1)%len(mix)]},
		})
	}
	return b
}

// buildMain emits Main.main: it allocates the long-lived file pool and the
// app objects, then drives the app layer with rotating pool pairs. Only a
// few pool files exist before the first app call — so a very low trigger
// threshold k summarizes procedures while their incoming-state sample is
// still dominated by the affected tuples and mispredicts the dominant case
// (the left side of the paper's Table 3 U-shape); the rest of the pool is
// allocated before the remaining calls.
func (g *generator) buildMain(prog *hir.Program) {
	c := hir.NewClass("Main", "")
	body := &hir.Block{}
	pool := g.p.PoolFiles
	if pool < 2 {
		pool = 2
	}
	early := 4
	if pool < early {
		early = pool
	}
	for i := 0; i < early; i++ {
		body.Stmts = append(body.Stmts, &hir.NewStmt{Dst: fmt.Sprintf("p%d", i), Type: "File"})
	}
	first := true
	for i := 0; i < g.p.AppClasses; i++ {
		a := fmt.Sprintf("a%d", i)
		body.Stmts = append(body.Stmts, &hir.NewStmt{Dst: a, Type: fmt.Sprintf("App%d", i)})
		calls := 1
		if g.p.MethodsPerClass > 1 {
			calls = 2
		}
		for j := 0; j < calls; j++ {
			if first {
				first = false
				body.Stmts = append(body.Stmts,
					&hir.CallStmt{Recv: a, Method: "work0", Args: []string{"p0", "p1"}})
				// The bulk of the pool arrives after the first drive.
				for k := early; k < pool; k++ {
					body.Stmts = append(body.Stmts,
						&hir.NewStmt{Dst: fmt.Sprintf("p%d", k), Type: "File"})
				}
				continue
			}
			pa := fmt.Sprintf("p%d", (2*i+j)%pool)
			pb := fmt.Sprintf("p%d", (2*i+j+1)%pool)
			body.Stmts = append(body.Stmts,
				&hir.CallStmt{Recv: a, Method: fmt.Sprintf("work%d", j), Args: []string{pa, pb}})
		}
	}
	c.AddMethod(&hir.Method{Name: "main", Body: body})
	prog.AddClass(c)
}
