package benchprog

import (
	"testing"
	"time"

	"swift/internal/core"
	"swift/internal/driver"
	"swift/internal/hir"
)

// TestGenerateAllProfiles checks every profile builds a valid program with
// a working pipeline.
func TestGenerateAllProfiles(t *testing.T) {
	for _, p := range Profiles() {
		prog, err := Generate(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if _, err := driver.FromHIR(prog); err != nil {
			t.Fatalf("%s: pipeline: %v", p.Name, err)
		}
	}
}

// TestGenerateDeterministic checks the generator is reproducible.
func TestGenerateDeterministic(t *testing.T) {
	p, _ := ProfileByName("toba-s")
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if hir.Print(a) != hir.Print(b) {
		t.Fatal("same profile generated different programs")
	}
}

// TestCalibrationSmall runs SWIFT on the two smallest profiles end to end.
func TestCalibrationSmall(t *testing.T) {
	for _, name := range []string{"jpat-p", "elevator"} {
		p, _ := ProfileByName(name)
		prog, err := Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := driver.FromHIR(prog)
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultConfig()
		cfg.Timeout = 30 * time.Second
		res, err := b.Run("swift", cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed() {
			t.Fatalf("%s: swift did not complete: %v", name, res.Err)
		}
		t.Logf("%s: swift %v, %d TD summaries, %d BU summaries",
			name, res.Elapsed, res.TDSummaryTotal(), res.BUSummaryTotal())
	}
}
