package benchprog

// This file models the incremental-analysis workload: a deterministic
// stream of small edits to a generated benchmark program, standing in for
// a developer editing one procedure between analysis runs. Each edit is a
// self-contained mutation of a freshly generated base program (edits are
// not cumulative), so "revert" is simply analyzing the base program again.
//
// The edit kinds are chosen to exercise the summary store's invalidation
// frontier from both sides:
//
//   - EditTweakBody and EditAddCall change one procedure's body without
//     adding variables, allocation sites or points-to flows. The type-state
//     client's frozen construction (path universe, may-alias oracle —
//     typestate.FrozenDigest) is therefore unchanged, and every trigger
//     whose call-graph closure avoids the edited procedure keeps its
//     summary-store key: an incremental run reuses those summaries.
//
//   - EditRemoveCall deletes a call edge, which may shrink the callee's
//     points-to sets and with them the may-alias matrix; EditRename
//     renames a procedure, which renames every local in its frame and so
//     changes the path universe. Both typically change the frozen digest
//     and honestly invalidate the whole store — the cold end of the
//     cold-vs-incremental contrast.

import (
	"fmt"
	"math/rand"
	"strings"

	"swift/internal/hir"
)

// EditKind enumerates the deterministic mutation kinds of an edit stream.
type EditKind int

const (
	// EditTweakBody inserts a redundant protocol operation (an extra
	// f.read() right after the open) into one utility body: the body bytes
	// change, its semantics and the program's points-to facts do not.
	EditTweakBody EditKind = iota
	// EditAddCall duplicates an existing utility invocation in one app
	// method: a new call site over an existing call edge, with existing
	// receiver and arguments.
	EditAddCall
	// EditRemoveCall removes the last sibling cross-call from one app
	// method: a call edge disappears, which may shrink points-to sets.
	EditRemoveCall
	// EditRename renames one app method and rewires every call site that
	// dispatches to it (sibling this-calls and allocation-typed receivers).
	EditRename

	numEditKinds
)

func (k EditKind) String() string {
	switch k {
	case EditTweakBody:
		return "tweak"
	case EditAddCall:
		return "addcall"
	case EditRemoveCall:
		return "rmcall"
	case EditRename:
		return "rename"
	}
	return fmt.Sprintf("EditKind(%d)", int(k))
}

// Edit is one deterministic mutation of a generated benchmark program.
// Class and Method name the edited procedure (its pre-edit name for
// EditRename).
type Edit struct {
	Kind          EditKind
	Class, Method string
}

func (e Edit) String() string { return fmt.Sprintf("%s(%s.%s)", e.Kind, e.Class, e.Method) }

// renamedSuffix is appended to a method name by EditRename.
const renamedSuffix = "_r"

// editCandidates collects, in declaration order, the procedures each edit
// kind can target in a generated program.
type editCandidates struct {
	tweak  []Edit // utility bodies with an open on "f"
	add    []Edit // app methods with a utility invocation
	remove []Edit // app methods with a sibling cross-call
	rename []Edit // app methods
}

func collectCandidates(prog *hir.Program) editCandidates {
	var c editCandidates
	for _, cls := range prog.Classes {
		for _, m := range cls.Methods {
			if m.Name == "process" && findLastCall(m.Body, isOpenCall) != nil {
				c.tweak = append(c.tweak, Edit{Kind: EditTweakBody, Class: cls.Name, Method: m.Name})
			}
			if !strings.HasPrefix(cls.Name, "App") {
				continue
			}
			if findLastCall(m.Body, func(cs *hir.CallStmt) bool {
				return cs.Recv != "" && cs.Method == "process"
			}) != nil {
				c.add = append(c.add, Edit{Kind: EditAddCall, Class: cls.Name, Method: m.Name})
			}
			if findLastCall(m.Body, isCrossCall) != nil {
				c.remove = append(c.remove, Edit{Kind: EditRemoveCall, Class: cls.Name, Method: m.Name})
			}
			c.rename = append(c.rename, Edit{Kind: EditRename, Class: cls.Name, Method: m.Name})
		}
	}
	return c
}

func isCrossCall(cs *hir.CallStmt) bool {
	return cs.Recv == "" && strings.HasPrefix(cs.Method, "work")
}

// EditStream returns n seeded edits for the profile's generated program.
// The stream cycles through the edit kinds (skipping kinds the program
// offers no target for) and picks targets without replacement while
// possible, all driven by the seed: the same (profile, seed, n) always
// yields the same edits, and applying any of them to a freshly generated
// base program yields the same mutated program.
func EditStream(p Profile, seed int64, n int) ([]Edit, error) {
	prog, err := Generate(p)
	if err != nil {
		return nil, err
	}
	cands := collectCandidates(prog)
	pools := [numEditKinds][]Edit{cands.tweak, cands.add, cands.remove, cands.rename}
	rng := rand.New(rand.NewSource(seed))
	used := map[Edit]bool{}
	out := make([]Edit, 0, n)
	kind := 0
	for len(out) < n {
		// Advance to the next kind with any target at all; give up only if
		// every pool is empty.
		empty := 0
		for len(pools[kind%int(numEditKinds)]) == 0 {
			kind++
			if empty++; empty == int(numEditKinds) {
				return nil, fmt.Errorf("benchprog: profile %s offers no edit targets", p.Name)
			}
		}
		pool := pools[kind%int(numEditKinds)]
		// Prefer unused targets; fall back to reuse when exhausted.
		fresh := make([]Edit, 0, len(pool))
		for _, e := range pool {
			if !used[e] {
				fresh = append(fresh, e)
			}
		}
		if len(fresh) == 0 {
			fresh = pool
		}
		e := fresh[rng.Intn(len(fresh))]
		used[e] = true
		out = append(out, e)
		kind++
	}
	return out, nil
}

// ApplyEdit applies the edit to prog in place and revalidates it. prog
// must be a freshly generated program of the profile the edit was drawn
// from (ApplyEdit mutates bodies; never pass a shared cached program).
func ApplyEdit(prog *hir.Program, e Edit) error {
	cls := prog.Class(e.Class)
	if cls == nil {
		return fmt.Errorf("benchprog: edit %s: no class %s", e, e.Class)
	}
	m := cls.Method(e.Method)
	if m == nil {
		return fmt.Errorf("benchprog: edit %s: no method %s.%s", e, e.Class, e.Method)
	}
	switch e.Kind {
	case EditTweakBody:
		blk, i := findLastCallIdx(m.Body, isOpenCall)
		if blk == nil {
			return fmt.Errorf("benchprog: edit %s: body has no open call on f", e)
		}
		// Insert f.read() right after f.open(): the object is opened there,
		// and read maps opened→opened, so the protocol outcome is unchanged
		// while the body bytes (and every closure containing them) are not.
		blk.Stmts = append(blk.Stmts[:i+1],
			append([]hir.Stmt{&hir.CallStmt{Recv: "f", Method: "read"}}, blk.Stmts[i+1:]...)...)
	case EditAddCall:
		blk, i := findLastCallIdx(m.Body, func(cs *hir.CallStmt) bool {
			return cs.Recv != "" && cs.Method == "process"
		})
		if blk == nil {
			return fmt.Errorf("benchprog: edit %s: body has no utility invocation", e)
		}
		orig := blk.Stmts[i].(*hir.CallStmt)
		dup := &hir.CallStmt{Dst: "", Recv: orig.Recv, Method: orig.Method,
			Args: append([]string(nil), orig.Args...)}
		blk.Stmts = append(blk.Stmts[:i+1], append([]hir.Stmt{dup}, blk.Stmts[i+1:]...)...)
	case EditRemoveCall:
		blk, i := findLastCallIdx(m.Body, isCrossCall)
		if blk == nil {
			return fmt.Errorf("benchprog: edit %s: body has no sibling cross-call", e)
		}
		blk.Stmts = append(blk.Stmts[:i], blk.Stmts[i+1:]...)
	case EditRename:
		renamed := e.Method + renamedSuffix
		if !cls.RenameMethod(e.Method, renamed) {
			return fmt.Errorf("benchprog: edit %s: rename to %s failed", e, renamed)
		}
		rewireCalls(prog, e.Class, e.Method, renamed)
	default:
		return fmt.Errorf("benchprog: unknown edit kind %d", e.Kind)
	}
	// No edit introduces allocation sites, so Finalize is a no-op for
	// labels; Validate re-checks the whole mutated program.
	prog.Finalize()
	return prog.Validate()
}

// GenerateEdited builds the profile's program and applies the edits in
// order. An empty edit list returns the base program (the "revert"
// version of an edit stream).
func GenerateEdited(p Profile, edits ...Edit) (*hir.Program, error) {
	prog, err := Generate(p)
	if err != nil {
		return nil, err
	}
	for _, e := range edits {
		if err := ApplyEdit(prog, e); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

// rewireCalls rewrites every call site that dispatches old on class to
// the renamed method: this-calls inside the class itself, and calls whose
// receiver local is allocated as the class in the same body (how Main
// drives the app layer).
func rewireCalls(prog *hir.Program, class, old, renamed string) {
	for _, cls := range prog.Classes {
		inClass := cls.Name == class
		for _, m := range cls.Methods {
			allocType := map[string]string{}
			var walk func(s hir.Stmt)
			walk = func(s hir.Stmt) {
				switch s := s.(type) {
				case *hir.Block:
					for _, st := range s.Stmts {
						walk(st)
					}
				case *hir.If:
					walk(s.Then)
					if s.Else != nil {
						walk(s.Else)
					}
				case *hir.While:
					walk(s.Body)
				case *hir.NewStmt:
					allocType[s.Dst] = s.Type
				case *hir.CallStmt:
					if s.Method != old {
						return
					}
					if (s.Recv == "" && inClass) || allocType[s.Recv] == class {
						s.Method = renamed
					}
				}
			}
			walk(m.Body)
		}
	}
}

func isOpenCall(cs *hir.CallStmt) bool { return cs.Recv == "f" && cs.Method == "open" }

// findLastCall reports whether any call statement matches the predicate.
func findLastCall(s hir.Stmt, pred func(*hir.CallStmt) bool) *hir.Block {
	blk, _ := findLastCallIdx(s, pred)
	return blk
}

// findLastCallIdx returns the block and index of the last matching call
// statement anywhere under s, or (nil, -1).
func findLastCallIdx(s hir.Stmt, pred func(*hir.CallStmt) bool) (*hir.Block, int) {
	var foundBlk *hir.Block
	foundIdx := -1
	var walk func(s hir.Stmt)
	walk = func(s hir.Stmt) {
		switch s := s.(type) {
		case *hir.Block:
			for i, st := range s.Stmts {
				if cs, ok := st.(*hir.CallStmt); ok && pred(cs) {
					foundBlk, foundIdx = s, i
				}
				walk(st)
			}
		case *hir.If:
			walk(s.Then)
			if s.Else != nil {
				walk(s.Else)
			}
		case *hir.While:
			walk(s.Body)
		}
	}
	walk(s)
	return foundBlk, foundIdx
}
