package benchprog

import (
	"strings"
	"testing"

	"swift/internal/hir"
)

// editProfile is a small but structurally complete profile for mutation
// tests: several utility layers, cross-calls (so EditRemoveCall has
// targets) and a dispatch registry.
func editProfile() Profile {
	p, ok := ProfileByName("toba-s")
	if !ok {
		panic("toba-s profile missing")
	}
	return p
}

// TestEditStreamDeterministic: the same (profile, seed, n) yields the
// same edits, and applying an edit to a fresh base program yields the
// same program bytes, run after run.
func TestEditStreamDeterministic(t *testing.T) {
	p := editProfile()
	first, err := EditStream(p, 7, 8)
	if err != nil {
		t.Fatal(err)
	}
	second, err := EditStream(p, 7, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 8 {
		t.Fatalf("stream has %d edits, want 8", len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("edit %d differs across runs: %v vs %v", i, first[i], second[i])
		}
	}
	for _, e := range first {
		a, err := GenerateEdited(p, e)
		if err != nil {
			t.Fatalf("apply %v: %v", e, err)
		}
		b, err := GenerateEdited(p, e)
		if err != nil {
			t.Fatalf("re-apply %v: %v", e, err)
		}
		if hir.Print(a) != hir.Print(b) {
			t.Fatalf("edit %v applied twice produced different programs", e)
		}
	}
}

// TestEditStreamSeedsDiverge: different seeds pick different targets
// somewhere in a long enough stream.
func TestEditStreamSeedsDiverge(t *testing.T) {
	p := editProfile()
	a, err := EditStream(p, 1, 12)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EditStream(p, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical 12-edit streams")
	}
}

// TestEditStreamCoversKinds: one cycle of the stream exercises every
// edit kind on a profile that offers targets for all of them.
func TestEditStreamCoversKinds(t *testing.T) {
	edits, err := EditStream(editProfile(), 3, int(numEditKinds))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[EditKind]bool{}
	for _, e := range edits {
		seen[e.Kind] = true
	}
	for k := EditKind(0); k < numEditKinds; k++ {
		if !seen[k] {
			t.Errorf("stream of %d edits never used kind %v", len(edits), k)
		}
	}
}

// TestEditsChangeTheProgram: every edit kind actually changes the program
// text, and only the expected procedure's body for the closure-preserving
// kinds.
func TestEditsChangeTheProgram(t *testing.T) {
	p := editProfile()
	base, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	basePrint := hir.Print(base)
	edits, err := EditStream(p, 3, int(numEditKinds))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edits {
		mutated, err := GenerateEdited(p, e)
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		if hir.Print(mutated) == basePrint {
			t.Errorf("%v left the program unchanged", e)
		}
		if err := mutated.Validate(); err != nil {
			t.Errorf("%v produced an invalid program: %v", e, err)
		}
	}
}

// TestEditRenameRewires: after a rename, no rewirable call site still
// dispatches the old name on the renamed class, and the renamed method
// exists.
func TestEditRenameRewires(t *testing.T) {
	p := editProfile()
	edits, err := EditStream(p, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	var ren *Edit
	for i := range edits {
		if edits[i].Kind == EditRename {
			ren = &edits[i]
			break
		}
	}
	if ren == nil {
		t.Fatal("no rename edit in stream")
	}
	mutated, err := GenerateEdited(p, *ren)
	if err != nil {
		t.Fatal(err)
	}
	cls := mutated.Class(ren.Class)
	if cls.Method(ren.Method) != nil {
		t.Errorf("old method %s.%s still declared", ren.Class, ren.Method)
	}
	if cls.Method(ren.Method+renamedSuffix) == nil {
		t.Errorf("renamed method %s.%s%s missing", ren.Class, ren.Method, renamedSuffix)
	}
	// Sibling this-calls in the renamed class must have been rewired.
	for _, m := range cls.Methods {
		blk, _ := findLastCallIdx(m.Body, func(cs *hir.CallStmt) bool {
			return cs.Recv == "" && cs.Method == ren.Method
		})
		if blk != nil {
			t.Errorf("method %s.%s still this-calls the old name %s", ren.Class, m.Name, ren.Method)
		}
	}
}

// TestEditStreamRejectsBarrenProfile: a degenerate profile with no
// targets is an explicit error, not an infinite loop.
func TestEditStreamRejectsBarrenProfile(t *testing.T) {
	p := Profile{
		Name: "barren", Seed: 1,
		Utils: 0, AppClasses: 0, MethodsPerClass: 0, PoolFiles: 2,
	}
	if _, err := EditStream(p, 1, 1); err == nil {
		t.Fatal("barren profile produced an edit stream")
	} else if !strings.Contains(err.Error(), "no edit targets") {
		t.Fatalf("unexpected error: %v", err)
	}
}
