package benchprog

// Profiles returns the 12 benchmark profiles mirroring Table 1 of the
// paper. Sizes are scaled down (the paper analyzes 60–250 KLOC Java
// programs with a 24 h budget; this suite targets seconds per benchmark on
// one machine) but the relative ordering and the structural character of
// each program are preserved:
//
//   - PoolFiles drives the ratio of summary-reusable incoming states to
//     fallback states, and with it the hybrid's speedup over top-down —
//     it grows with benchmark size like the tracked-object population of
//     the paper's subjects;
//   - the three largest stand-ins (avrora, rhino-a, sablecc-j) have enough
//     calling-context diversity to exhaust the top-down budget;
//   - all but the two smallest have enough alias tangling to exhaust the
//     unpruned bottom-up budget;
//   - the three largest have a smaller pool relative to their call
//     traffic, so the second-ranked relational case (the must-alias strong
//     update) carries real weight there and θ=2 pays off, most of all on
//     the avrora stand-in (paper Table 4).
func Profiles() []Profile {
	return []Profile{
		{
			Name: "jpat-p", Desc: "protein analysis tools", Seed: 101,
			Utils: 2, UtilVariants: 0, AliasTangle: 0,
			AppClasses: 2, MethodsPerClass: 3, CallsPerMethod: 1, PoolFiles: 4,
			CrossCalls: 0, SloppyEvery: 0, Dispatch: 0,
		},
		{
			Name: "elevator", Desc: "discrete event simulator", Seed: 102,
			Utils: 2, UtilVariants: 0, AliasTangle: 1,
			AppClasses: 3, MethodsPerClass: 3, CallsPerMethod: 1, PoolFiles: 5,
			CrossCalls: 1, SloppyEvery: 0, Dispatch: 0,
		},
		{
			Name: "toba-s", Desc: "java bytecode to C compiler", Seed: 103,
			Utils: 4, UtilVariants: 1, AliasTangle: 2,
			AppClasses: 5, MethodsPerClass: 4, CallsPerMethod: 2, PoolFiles: 10,
			CrossCalls: 1, SloppyEvery: 9, Dispatch: 4,
		},
		{
			Name: "javasrc-p", Desc: "java source to HTML translator", Seed: 104,
			Utils: 5, UtilVariants: 1, AliasTangle: 2,
			AppClasses: 6, MethodsPerClass: 5, CallsPerMethod: 2, PoolFiles: 16,
			CrossCalls: 1, SloppyEvery: 9, Dispatch: 4,
		},
		{
			Name: "hedc", Desc: "web crawler from ETH", Seed: 105,
			Utils: 6, UtilVariants: 1, AliasTangle: 3,
			AppClasses: 7, MethodsPerClass: 5, CallsPerMethod: 2, PoolFiles: 20,
			CrossCalls: 2, SloppyEvery: 10, Dispatch: 5,
		},
		{
			Name: "antlr", Desc: "parser/translator generator", Seed: 106,
			Utils: 8, UtilVariants: 2, AliasTangle: 3,
			AppClasses: 8, MethodsPerClass: 6, CallsPerMethod: 3, PoolFiles: 24,
			CrossCalls: 2, SloppyEvery: 10, Dispatch: 5,
		},
		{
			Name: "luindex", Desc: "document indexing and search tool", Seed: 107,
			Utils: 8, UtilVariants: 2, AliasTangle: 3,
			AppClasses: 8, MethodsPerClass: 5, CallsPerMethod: 3, PoolFiles: 26,
			CrossCalls: 2, SloppyEvery: 12, Dispatch: 6,
		},
		{
			Name: "lusearch", Desc: "text indexing and search tool", Seed: 108,
			Utils: 8, UtilVariants: 2, AliasTangle: 3,
			AppClasses: 8, MethodsPerClass: 6, CallsPerMethod: 3, PoolFiles: 26,
			CrossCalls: 2, SloppyEvery: 12, Dispatch: 6,
		},
		{
			Name: "kawa-c", Desc: "scheme to java bytecode compiler", Seed: 109,
			Utils: 8, UtilVariants: 2, AliasTangle: 3,
			AppClasses: 8, MethodsPerClass: 5, CallsPerMethod: 3, PoolFiles: 24,
			CrossCalls: 2, SloppyEvery: 11, Dispatch: 5,
		},
		{
			Name: "avrora", Desc: "microcontroller simulator/analyzer", Seed: 110,
			Utils: 10, UtilVariants: 2, AliasTangle: 4,
			AppClasses: 8, MethodsPerClass: 6, CallsPerMethod: 3, PoolFiles: 18,
			CrossCalls: 3, SloppyEvery: 13, Dispatch: 6,
		},
		{
			Name: "rhino-a", Desc: "JavaScript interpreter", Seed: 111,
			Utils: 6, UtilVariants: 2, AliasTangle: 4,
			AppClasses: 8, MethodsPerClass: 6, CallsPerMethod: 5, PoolFiles: 16,
			CrossCalls: 4, SloppyEvery: 9, Dispatch: 4,
		},
		{
			Name: "sablecc-j", Desc: "parser generator", Seed: 112,
			Utils: 9, UtilVariants: 2, AliasTangle: 4,
			AppClasses: 9, MethodsPerClass: 6, CallsPerMethod: 3, PoolFiles: 18,
			CrossCalls: 3, SloppyEvery: 12, Dispatch: 5,
		},
	}
}

// ExtraProfiles returns fixture programs outside the paper's Table 1 set.
// They are reachable through ProfileByName and used by the equivalence and
// structure tests, but deliberately excluded from Profiles() so the
// 12-row result tables (and their stored digests) stay stable.
func ExtraProfiles() []Profile {
	return []Profile{
		{
			// deep-nest stresses the loop-structure index behind the sparse
			// scheduler: every util body runs a depth-6 loop nest, so the
			// structure index sees real region hierarchies instead of the
			// single-loop shape the Table 1 profiles produce.
			Name: "deep-nest", Desc: "deep loop-nest structure stress", Seed: 201,
			Utils: 3, UtilVariants: 1, AliasTangle: 2, LoopNest: 6,
			AppClasses: 3, MethodsPerClass: 3, CallsPerMethod: 2, PoolFiles: 8,
			CrossCalls: 1, SloppyEvery: 7, Dispatch: 0,
		},
	}
}

// ProfileByName returns the named profile — from Profiles or ExtraProfiles
// — or false.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	for _, p := range ExtraProfiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
