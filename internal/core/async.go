package core

import (
	"cmp"
	"sync"
	"time"

	"swift/internal/ir"
)

// This file implements the parallelization sketched in the paper's
// Section 7: "whenever a bottom-up summary is to be computed, [SWIFT]
// spawns a new thread to do this bottom-up analysis, and itself continues
// the top-down analysis." Use RunSwiftAsync with a Synchronized client.
// Each trigger's bottom-up run gets its own (non-cumulative) relation and
// step budget from the configuration.
//
// Asynchronous summarization preserves correctness — a summary is only
// consulted after it is fully installed, and Theorem 3.1 applies to
// whatever summaries exist at each call event — but not determinism: how
// many call events are answered from summaries depends on when triggers
// finish, so counters (and therefore summary counts) vary run to run. The
// final abstract states still coincide with the top-down analysis.

// Synchronized wraps a client with a mutex so the top-down solver (main
// goroutine) and asynchronous bottom-up runs (worker goroutines) can share
// its interning tables. The serialization limits the achievable overlap to
// the solvers' non-client work; the win is latency hiding, not parallel
// speedup of client operations.
func Synchronized[S cmp.Ordered, R cmp.Ordered, P cmp.Ordered](c Client[S, R, P]) Client[S, R, P] {
	return &lockedClient[S, R, P]{inner: c}
}

// lockedClient serializes all client calls.
type lockedClient[S cmp.Ordered, R cmp.Ordered, P cmp.Ordered] struct {
	mu    sync.Mutex
	inner Client[S, R, P]
}

func (l *lockedClient[S, R, P]) Trans(c *ir.Prim, s S) []S {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Trans(c, s)
}

func (l *lockedClient[S, R, P]) Identity() R {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Identity()
}

func (l *lockedClient[S, R, P]) RTrans(c *ir.Prim, r R) []R {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.RTrans(c, r)
}

func (l *lockedClient[S, R, P]) RComp(r1, r2 R) []R {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.RComp(r1, r2)
}

func (l *lockedClient[S, R, P]) Applies(r R, s S) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Applies(r, s)
}

func (l *lockedClient[S, R, P]) Apply(r R, s S) []S {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Apply(r, s)
}

func (l *lockedClient[S, R, P]) PreOf(r R) P {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.PreOf(r)
}

func (l *lockedClient[S, R, P]) PreHolds(pre P, s S) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.PreHolds(pre, s)
}

func (l *lockedClient[S, R, P]) PreImplies(p, q P) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.PreImplies(p, q)
}

func (l *lockedClient[S, R, P]) WPre(r R, post P) []P {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.WPre(r, post)
}

func (l *lockedClient[S, R, P]) Reduce(rels []R) []R {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Reduce(rels)
}

// asyncState carries the shared summary store of an asynchronous hybrid
// run.
type asyncState[S cmp.Ordered, R cmp.Ordered, P cmp.Ordered] struct {
	mu       sync.Mutex
	bu       map[string]RSet[R, P]
	failed   map[string]bool
	inFlight map[string]bool
	wg       sync.WaitGroup
}

// snapshotEntrySeen deep-copies the trigger procedure's incoming-state
// multisets so the worker ranks against a stable sample while the top-down
// analysis keeps mutating the live map.
func snapshotEntrySeen[S cmp.Ordered](src map[string]multiset[S]) map[string]multiset[S] {
	out := make(map[string]multiset[S], len(src))
	for proc, m := range src {
		cp := make(multiset[S], len(m))
		for s, n := range m {
			cp[s] = n
		}
		out[proc] = cp
	}
	return out
}

// asyncHybrid is the interceptor for RunSwiftAsync.
type asyncHybrid[S cmp.Ordered, R cmp.Ordered, P cmp.Ordered] struct {
	a      *Analysis[S, R, P]
	config Config
	res    *Result[S, R, P]
	st     *asyncState[S, R, P]
}

func (h *asyncHybrid[S, R, P]) beforeCall(callee string, s S) ([]S, bool, error) {
	h.st.mu.Lock()
	rs, ok := h.st.bu[callee]
	h.st.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	if Ignores(h.a.Client, rs, s) {
		h.res.CallsInSigma++
		return nil, false, nil
	}
	results := ApplySummary(h.a.Client, rs, s)
	if len(results) == 0 {
		return nil, false, nil // defensive: see hybrid.beforeCall
	}
	h.res.CallsViaBU++
	return results, true, nil
}

func (h *asyncHybrid[S, R, P]) afterCall(callee string, s S) error {
	h.res.CallsViaTD++
	if h.config.K == Unlimited {
		return nil
	}
	if h.res.TD.EntrySeen[callee].distinct() <= h.config.K {
		return nil
	}
	h.st.mu.Lock()
	_, done := h.st.bu[callee]
	busy := h.st.inFlight[callee]
	failed := h.st.failed[callee]
	if done || busy || failed {
		h.st.mu.Unlock()
		return nil
	}
	// Collect the frontier under the lock (it reads h.st.bu).
	frontier := h.frontierLocked(callee)
	ready := true
	for _, g := range frontier {
		if h.res.TD.EntrySeen[g].distinct() == 0 {
			ready = false
			break
		}
	}
	if !ready {
		h.st.mu.Unlock()
		return nil // postponed: a later call event retries
	}
	h.st.inFlight[callee] = true
	preEta := make(map[string]RSet[R, P], len(h.st.bu))
	for k, v := range h.st.bu {
		preEta[k] = v
	}
	h.st.mu.Unlock()

	rank := snapshotEntrySeen(h.res.TD.EntrySeen)
	h.st.wg.Add(1)
	go func() {
		defer h.st.wg.Done()
		var stats BUStats
		eta, err := runBU(h.a.Client, h.a.Prog, h.config, h.config.Theta,
			frontier, preEta, rank, &stats)
		h.st.mu.Lock()
		defer h.st.mu.Unlock()
		h.st.inFlight[callee] = false
		if err != nil {
			h.st.failed[callee] = true
			return
		}
		for name, rs := range eta {
			h.st.bu[name] = rs
		}
	}()
	return nil
}

// frontierLocked is reachableWithoutSummaries against the shared store;
// the caller holds st.mu.
func (h *asyncHybrid[S, R, P]) frontierLocked(f string) []string {
	seen := map[string]bool{}
	var out []string
	var visit func(string)
	visit = func(name string) {
		if seen[name] {
			return
		}
		seen[name] = true
		if _, done := h.st.bu[name]; done {
			return
		}
		proc, ok := h.a.Prog.Procs[name]
		if !ok {
			return
		}
		out = append(out, name)
		for _, callee := range ir.Callees(proc.Body) {
			visit(callee)
		}
	}
	visit(f)
	return newSortedSet(out)
}

// RunSwiftAsync runs Algorithm 1 with asynchronous bottom-up triggers: each
// run_bu executes on its own goroutine while the top-down analysis
// continues, per the parallelization sketch of the paper's Section 7. The
// client must be safe for concurrent use — wrap it with Synchronized.
// Results coincide with RunSwift/RunTD states-wise, but summary-usage
// counters are timing-dependent.
func (a *Analysis[S, R, P]) RunSwiftAsync(initial S, config Config) *Result[S, R, P] {
	start := time.Now()
	res := &Result[S, R, P]{
		Engine:   "swift-async",
		BU:       map[string]RSet[R, P]{},
		BUFailed: map[string]bool{},
	}
	st := &asyncState[S, R, P]{
		bu:       map[string]RSet[R, P]{},
		failed:   map[string]bool{},
		inFlight: map[string]bool{},
	}
	h := &asyncHybrid[S, R, P]{a: a, config: config, res: res, st: st}
	t := newTDSolver(a.Client, a.CFG, config, h)
	res.TD = t.res
	err := t.seed(initial)
	if err == nil {
		err = t.run()
	}
	// Drain in-flight summarizations so the result is stable.
	st.wg.Wait()
	st.mu.Lock()
	for name, rs := range st.bu {
		res.BU[name] = rs
	}
	for name := range st.failed {
		res.BUFailed[name] = true
	}
	st.mu.Unlock()
	for name := range res.BU {
		res.Triggered = append(res.Triggered, name)
	}
	res.Triggered = newSortedSet(res.Triggered)
	res.Elapsed = time.Since(start)
	res.Err = err
	return res
}
