package core

import (
	"cmp"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"swift/internal/ir"
)

// This file implements the parallelization sketched in the paper's
// Section 7: "whenever a bottom-up summary is to be computed, [SWIFT]
// spawns a new thread to do this bottom-up analysis, and itself continues
// the top-down analysis." Use RunSwiftAsync with a Synchronized client.
// Each trigger's bottom-up run gets its own (non-cumulative) relation and
// step budget from the configuration.
//
// Asynchronous summarization preserves correctness — a summary is only
// consulted after it is fully installed, and Theorem 3.1 applies to
// whatever summaries exist at each call event — but a live run is not
// deterministic: how many call events are answered from summaries depends
// on when triggers finish, so counters (and therefore summary counts) vary
// run to run. The final abstract states still coincide with the top-down
// analysis. Config.RecordTrace captures one run's schedule and
// Config.ReplayTrace re-executes it deterministically; see trace.go.
//
// Concurrency structure: workers never touch the engine's scheduling
// state. A worker runs one bottom-up invocation on snapshots taken at
// spawn time and posts an asyncCompletion to a queue; the main goroutine
// drains the queue at the start of each call event (and between drain
// waves), so every install, failure, retry and abort decision is taken on
// the main goroutine — which is exactly what makes the schedule
// recordable as a stream of main-goroutine-relative events.

// ConcurrentClient marks a Client implementation as safe for concurrent
// use by any number of goroutines without external locking — typically
// because its interning tables are internally sharded (internal/typestate)
// or because it keeps no mutable state at all (internal/killgen).
// Synchronized returns marked clients unchanged, so their operations run
// lock-free from the engine's point of view and mutating traffic contends
// only on whatever internal striping the client provides.
type ConcurrentClient interface {
	// ConcurrentClient is a marker; implementations assert thread safety.
	ConcurrentClient()
}

// Synchronized makes a client safe to share between the top-down solver
// (main goroutine) and asynchronous bottom-up runs (worker goroutines).
//
// Clients that declare themselves concurrency-safe via the
// ConcurrentClient marker are returned unchanged: both in-tree clients
// qualify (typestate's interners are sharded with per-stripe locks;
// killgen is stateless after construction), so no engine-level lock is
// taken on any of their operations.
//
// Other clients are wrapped with a read/write-split lock: operations that
// only consult already-interned data — Applies, PreHolds, PreImplies,
// PreOf and Identity — take a read lock and run concurrently across
// workers, while operations that may intern new states, relations or
// formulas — Trans, RTrans, RComp, Apply, WPre and Reduce — take the
// write lock. Applies and the precondition queries dominate the bottom-up
// solver's inner loops (prune ranks every relation against every sampled
// state; clean checks every relation against every Sigma member), so the
// split turns the hottest client traffic into shared-access reads instead
// of serializing everything behind one mutex.
//
// Contract for wrapped clients: Applies, PreHolds, PreImplies, PreOf and
// Identity must not mutate client state. Clients whose read operations
// memoize internally must do their own locking — or do it properly and
// implement ConcurrentClient.
func Synchronized[S cmp.Ordered, R cmp.Ordered, P cmp.Ordered](c Client[S, R, P]) Client[S, R, P] {
	if _, ok := any(c).(ConcurrentClient); ok {
		return c
	}
	return &lockedClient[S, R, P]{inner: c}
}

// lockedClient applies the read/write lock split described at Synchronized.
type lockedClient[S cmp.Ordered, R cmp.Ordered, P cmp.Ordered] struct {
	mu    sync.RWMutex
	inner Client[S, R, P]
}

func (l *lockedClient[S, R, P]) Trans(c *ir.Prim, s S) []S {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Trans(c, s)
}

func (l *lockedClient[S, R, P]) Identity() R {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.inner.Identity()
}

func (l *lockedClient[S, R, P]) RTrans(c *ir.Prim, r R) []R {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.RTrans(c, r)
}

func (l *lockedClient[S, R, P]) RComp(r1, r2 R) []R {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.RComp(r1, r2)
}

func (l *lockedClient[S, R, P]) Applies(r R, s S) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.inner.Applies(r, s)
}

func (l *lockedClient[S, R, P]) Apply(r R, s S) []S {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Apply(r, s)
}

func (l *lockedClient[S, R, P]) PreOf(r R) P {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.inner.PreOf(r)
}

func (l *lockedClient[S, R, P]) PreHolds(pre P, s S) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.inner.PreHolds(pre, s)
}

func (l *lockedClient[S, R, P]) PreImplies(p, q P) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.inner.PreImplies(p, q)
}

func (l *lockedClient[S, R, P]) WPre(r R, post P) []P {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.WPre(r, post)
}

// Reduce is grouped with the mutators even though the in-tree clients
// implement it read-only: its contract allows arbitrary subsumption
// reasoning, which a client may well memoize.
func (l *lockedClient[S, R, P]) Reduce(rels []R) []R {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Reduce(rels)
}

// add accumulates worker-local counters into an aggregate.
func (s *BUStats) add(o BUStats) {
	s.Relations += o.Relations
	s.Steps += o.Steps
	s.Rounds += o.Rounds
}

// snapshotEntrySeen deep-copies the trigger procedure's incoming-state
// multisets so the worker ranks against a stable sample while the top-down
// analysis keeps mutating the live map.
func snapshotEntrySeen[S cmp.Ordered](src map[string]multiset[S]) map[string]multiset[S] {
	out := make(map[string]multiset[S], len(src))
	for proc, m := range src {
		cp := make(multiset[S], len(m))
		for s, n := range m {
			cp[s] = n
		}
		out[proc] = cp
	}
	return out
}

// errWorkerFailed is the internal abort sentinel the interceptor returns
// to stop the tabulation once a worker's fatal error has been drained. The
// entry point strips it and substitutes the deterministically joined
// per-trigger worker errors; it never escapes to callers.
var errWorkerFailed = errors.New("core: async worker failed")

// asyncCompletion is one worker's finished bottom-up invocation, posted to
// the completion queue for the main goroutine to apply.
type asyncCompletion[S cmp.Ordered, R cmp.Ordered, P cmp.Ordered] struct {
	trigger  string
	frontier []string
	eta      map[string]RSet[R, P]
	stats    BUStats
	err      error
}

// asyncState is the only state shared with worker goroutines: the
// completion queue and the WaitGroup that guarantees no worker outlives
// the run. Everything else the engine schedules with is owned by the main
// goroutine.
type asyncState[S cmp.Ordered, R cmp.Ordered, P cmp.Ordered] struct {
	mu   sync.Mutex
	done []asyncCompletion[S, R, P]
	wg   sync.WaitGroup
}

// post enqueues a completion; called from worker goroutines.
func (st *asyncState[S, R, P]) post(c asyncCompletion[S, R, P]) {
	st.mu.Lock()
	st.done = append(st.done, c)
	st.mu.Unlock()
}

// take removes and returns all queued completions, in posting order.
func (st *asyncState[S, R, P]) take() []asyncCompletion[S, R, P] {
	st.mu.Lock()
	out := st.done
	st.done = nil
	st.mu.Unlock()
	return out
}

// asyncHybrid is the interceptor for RunSwiftAsync. All fields below st
// are owned by the main goroutine.
type asyncHybrid[S cmp.Ordered, R cmp.Ordered, P cmp.Ordered] struct {
	a *Analysis[S, R, P]
	// client is the effective client of the run (fault wrapper included).
	client Client[S, R, P]
	config Config
	res    *Result[S, R, P]
	st     *asyncState[S, R, P]
	// busy marks every procedure covered by some in-flight worker's
	// frontier, not just its trigger: two triggers whose frontiers overlap
	// would otherwise summarize the shared procedures twice concurrently,
	// wasting budget and racing on installation order. Non-overlapping
	// triggers proceed concurrently.
	busy map[string]bool
	// pending holds triggers postponed because their frontier overlapped an
	// in-flight worker, contained a procedure with no top-down incoming
	// state to rank by, or panicked and earned a retry; they are retried
	// periodically and drained at the end of the run.
	pending map[string]bool
	// panicked counts contained run_bu panics per trigger, bounding retries
	// at panicRetryLimit before the trigger degrades to BUFailed.
	panicked map[string]int
	// errs collects fatal worker errors by trigger; the entry point joins
	// them in sorted-trigger order, so concurrent failures aggregate
	// deterministically instead of racing for a single error slot.
	errs map[string]error
	// aborted is set when the first fatal worker error is drained; no
	// further triggers spawn and later completions are discarded.
	aborted bool
	// retryTick throttles pending retries.
	retryTick int

	// seq counts call events; it increments at the start of every
	// beforeCall, so trace events recorded while handling one call event
	// all carry that event's ordinal (see trace.go).
	seq int
	// rec is the trace being recorded, nil when not recording.
	rec *Trace
	// replay is the trace being replayed, nil for a live run. cursor is
	// the next event to consume and stash holds the outcome of each
	// synchronously executed spawn until its install/fail event.
	replay *Trace
	cursor int
	stash  map[string]asyncCompletion[S, R, P]
}

// record appends a trace event at the current call-event ordinal when
// recording is armed.
func (h *asyncHybrid[S, R, P]) record(kind TraceEventKind, trigger string, forced bool) {
	if h.rec != nil {
		h.rec.add(h.seq, kind, trigger, forced)
	}
}

func (h *asyncHybrid[S, R, P]) beforeCall(callee string, s S) ([]S, bool, error) {
	h.seq++
	if h.replay != nil {
		if err := h.replayOutcomesAt(); err != nil {
			return nil, false, err
		}
	} else {
		h.drainCompletions()
	}
	if h.aborted {
		return nil, false, errWorkerFailed
	}
	rs, ok := h.res.BU[callee]
	if !ok {
		return nil, false, nil
	}
	if Ignores(h.client, rs, s) {
		h.res.CallsInSigma++
		return nil, false, nil
	}
	results := ApplySummary(h.client, rs, s)
	if len(results) == 0 {
		return nil, false, nil // defensive: see hybrid.beforeCall
	}
	h.res.CallsViaBU++
	return results, true, nil
}

func (h *asyncHybrid[S, R, P]) afterCall(callee string, s S) error {
	h.res.CallsViaTD++
	if h.aborted {
		return errWorkerFailed
	}
	if h.replay != nil {
		// The trace dictates the schedule: consume this call event's
		// recorded spawns instead of evaluating the trigger condition.
		h.replaySpawnsAt()
		return nil
	}
	if h.config.K == Unlimited {
		return nil
	}
	if h.res.TD.EntrySeen[callee].distinct() > h.config.K {
		if _, done := h.res.BU[callee]; !done && !h.res.BUFailed[callee] {
			h.tryTrigger(callee, false)
		}
	}
	// Retry postponed triggers periodically, mirroring the synchronous
	// hybrid driver: a procedure's calls often arrive in a burst before its
	// callees have any incoming states to rank by, or while an overlapping
	// worker is still running.
	h.retryTick++
	if h.retryTick&0x3f == 0 && len(h.pending) > 0 {
		for _, f := range newSortedSet(keysOf(h.pending)) {
			h.tryTrigger(f, false)
		}
	}
	return nil
}

// drainCompletions applies every queued worker completion, in posting
// order. Main goroutine only.
func (h *asyncHybrid[S, R, P]) drainCompletions() {
	for _, c := range h.st.take() {
		h.applyCompletion(c)
	}
}

// applyCompletion is where every worker outcome becomes engine state:
// summaries install, budget exhaustion degrades to a top-down fallback,
// contained panics earn a bounded retry and then degrade too
// (Theorem 3.1 makes both fallbacks safe), and anything else is fatal.
func (h *asyncHybrid[S, R, P]) applyCompletion(c asyncCompletion[S, R, P]) {
	for _, g := range c.frontier {
		delete(h.busy, g)
	}
	h.res.BUStats.add(c.stats)
	if h.aborted {
		// The run is already aborting: discard the outcome — nothing is
		// installed or recorded — but keep fatal errors for the aggregate.
		if c.err != nil && !errors.Is(c.err, ErrBudget) && !errors.Is(c.err, ErrClientPanic) {
			h.errs[c.trigger] = errors.Join(h.errs[c.trigger], c.err)
		}
		return
	}
	switch {
	case c.err == nil:
		for name, rs := range c.eta {
			h.res.BU[name] = rs
		}
		h.res.Triggered = append(h.res.Triggered, c.trigger)
		h.record(TraceInstall, c.trigger, false)
	case errors.Is(c.err, ErrClientPanic):
		h.res.ClientPanics++
		h.panicked[c.trigger]++
		if h.panicked[c.trigger] <= panicRetryLimit {
			// Bounded retry: park the trigger; the periodic retry or the
			// final drain respawns it with a fresh budget.
			h.pending[c.trigger] = true
			return
		}
		h.res.BUFailed[c.trigger] = true
		h.record(TraceFail, c.trigger, false)
	case errors.Is(c.err, ErrBudget):
		h.res.BUFailed[c.trigger] = true
		h.record(TraceFail, c.trigger, false)
	default:
		h.errs[c.trigger] = c.err
		h.aborted = true
		h.record(TraceFail, c.trigger, false)
	}
}

// joinedWorkerErrs joins the fatal worker errors in sorted-trigger order:
// a deterministic aggregate no matter in which order the workers crossed
// the finish line.
func (h *asyncHybrid[S, R, P]) joinedWorkerErrs() error {
	if len(h.errs) == 0 {
		return nil
	}
	names := make([]string, 0, len(h.errs))
	for name := range h.errs {
		names = append(names, name)
	}
	sort.Strings(names)
	joined := make([]error, 0, len(names))
	for _, name := range names {
		joined = append(joined, fmt.Errorf("trigger %s: %w", name, h.errs[name]))
	}
	return errors.Join(joined...)
}

// tryTrigger spawns an asynchronous run_bu for callee if it is ready:
// no summary or failure recorded yet, no in-flight worker covering any
// frontier procedure, and (unless force is set) every frontier procedure
// has at least one top-down incoming state to rank by. Not-ready triggers
// are parked in pending for the periodic retry and the final drain. It
// reports whether a worker was spawned. Main goroutine only.
func (h *asyncHybrid[S, R, P]) tryTrigger(callee string, force bool) bool {
	if h.aborted {
		return false
	}
	if _, done := h.res.BU[callee]; done || h.res.BUFailed[callee] {
		delete(h.pending, callee)
		return false
	}
	frontier := h.frontier(callee)
	for _, g := range frontier {
		if h.busy[g] {
			h.pending[callee] = true
			return false
		}
	}
	if !force {
		for _, g := range frontier {
			if h.res.TD.EntrySeen[g].distinct() == 0 {
				h.pending[callee] = true
				return false
			}
		}
	}
	delete(h.pending, callee)
	for _, g := range frontier {
		h.busy[g] = true
	}
	// Snapshot the worker's inputs: it must not read engine state the main
	// goroutine keeps mutating.
	preEta := make(map[string]RSet[R, P], len(h.res.BU))
	for k, v := range h.res.BU {
		preEta[k] = v
	}
	rank := snapshotEntrySeen(h.res.TD.EntrySeen)
	h.record(TraceSpawn, callee, force)
	h.st.wg.Add(1)
	go func() {
		defer h.st.wg.Done()
		// Warm-start is consulted inside the worker, not at the spawn site:
		// a synchronous install in tryTrigger would record spawn and install
		// at the same call event, violating the replay cursor's invariant
		// that installs become visible at a later event than their spawn.
		// The hit still flows through the completion queue like any other
		// outcome, so recording, retries and abort handling are uniform.
		if warm := h.a.Warm; warm != nil {
			if out, ok := warm.Lookup(callee, frontier); ok {
				c := asyncCompletion[S, R, P]{trigger: callee, frontier: frontier, eta: out.Eta}
				if out.Failed {
					c.eta = nil
					c.err = errCachedBudget()
				}
				h.st.post(c)
				return
			}
		}
		var stats BUStats
		// safeRunBU contains client panics inside the worker; whatever
		// happens, exactly one completion is posted and Done is called, so
		// the drain logic never deadlocks on a crashed worker.
		eta, err := safeRunBU(h.client, h.a.Prog, h.config, h.config.Theta,
			frontier, preEta, rank, &stats)
		publishOutcome(h.a.Warm, callee, frontier, eta, err)
		h.st.post(asyncCompletion[S, R, P]{
			trigger: callee, frontier: frontier, eta: eta, stats: stats, err: err,
		})
	}()
	return true
}

// drainPending flushes triggers still parked after the top-down worklist
// emptied — without it, triggers postponed inside the last retry window
// would be silently dropped and the run would under-summarize. It runs in
// waves: wait for in-flight workers (their completion clears busy overlaps
// and may install summaries that shrink other frontiers), retry everything
// pending, and if nothing could be spawned force the remainder (their
// unranked frontier procedures were never reached top-down; prune falls
// back to canonical order without ranking data).
func (h *asyncHybrid[S, R, P]) drainPending() error {
	// One seq bump for the whole drain phase: its events sort after every
	// call event's, and replay processes them in list order.
	h.seq++
	for {
		h.st.wg.Wait()
		h.drainCompletions()
		if h.aborted {
			return errWorkerFailed
		}
		if len(h.pending) == 0 {
			return nil
		}
		spawned := false
		for _, f := range newSortedSet(keysOf(h.pending)) {
			if h.tryTrigger(f, false) {
				spawned = true
			}
		}
		if !spawned {
			// With no workers in flight, the first forced trigger always
			// spawns, so every wave makes progress and the loop terminates.
			for _, f := range newSortedSet(keysOf(h.pending)) {
				h.tryTrigger(f, true)
			}
		}
	}
}

// frontier is reachableWithoutSummaries against the main-owned store.
func (h *asyncHybrid[S, R, P]) frontier(f string) []string {
	seen := map[string]bool{}
	var out []string
	var visit func(string)
	visit = func(name string) {
		if seen[name] {
			return
		}
		seen[name] = true
		if _, done := h.res.BU[name]; done {
			return
		}
		proc, ok := h.a.Prog.Procs[name]
		if !ok {
			return
		}
		out = append(out, name)
		for _, callee := range ir.Callees(proc.Body) {
			visit(callee)
		}
	}
	visit(f)
	return newSortedSet(out)
}

// replayOutcomesAt consumes this call event's recorded install/fail
// events, publishing the stashed outcome of each synchronously executed
// spawn — the moment the recorded run's top-down analysis first saw it.
func (h *asyncHybrid[S, R, P]) replayOutcomesAt() error {
	for h.cursor < len(h.replay.Events) {
		e := h.replay.Events[h.cursor]
		if e.Seq < h.seq {
			return fmt.Errorf("%w: event %d (%s %s at seq %d) was never consumed",
				ErrTraceMismatch, h.cursor, e.Kind, e.Trigger, e.Seq)
		}
		if e.Seq != h.seq || e.Kind == TraceSpawn {
			return nil
		}
		h.cursor++
		if err := h.applyReplayOutcome(e); err != nil {
			return err
		}
	}
	return nil
}

// replaySpawnsAt consumes this call event's recorded spawns.
func (h *asyncHybrid[S, R, P]) replaySpawnsAt() {
	for h.cursor < len(h.replay.Events) {
		e := h.replay.Events[h.cursor]
		if e.Seq != h.seq || e.Kind != TraceSpawn {
			return
		}
		h.cursor++
		h.replaySpawn(e)
	}
}

// replaySpawn executes a recorded spawn synchronously and stashes its
// outcome until the trace says it became visible. The inputs equal the
// recorded worker's snapshots: the summary store and incoming-state
// multisets exactly as they stood at this point of the recorded run
// (equality holds inductively — every earlier event replayed
// identically).
func (h *asyncHybrid[S, R, P]) replaySpawn(e TraceEvent) {
	frontier := h.frontier(e.Trigger)
	// Same warm-start seam as the live worker: a replayed spawn may be
	// answered from the store, which is how a recorded cold run replays
	// warm with byte-identical tables (the hit returns exactly what the
	// recorded run computed and published).
	if warm := h.a.Warm; warm != nil {
		if out, ok := warm.Lookup(e.Trigger, frontier); ok {
			c := asyncCompletion[S, R, P]{trigger: e.Trigger, frontier: frontier, eta: out.Eta}
			if out.Failed {
				c.eta = nil
				c.err = errCachedBudget()
			}
			h.stash[e.Trigger] = c
			return
		}
	}
	var stats BUStats
	eta, err := safeRunBU(h.client, h.a.Prog, h.config, h.config.Theta,
		frontier, h.res.BU, h.res.TD.EntrySeen, &stats)
	h.res.BUStats.add(stats)
	publishOutcome(h.a.Warm, e.Trigger, frontier, eta, err)
	h.stash[e.Trigger] = asyncCompletion[S, R, P]{
		trigger: e.Trigger, frontier: frontier, eta: eta, err: err,
	}
}

// applyReplayOutcome publishes a stashed spawn outcome at its recorded
// install/fail point, verifying the replayed run_bu agreed with the
// recorded one about succeeding.
func (h *asyncHybrid[S, R, P]) applyReplayOutcome(e TraceEvent) error {
	c, ok := h.stash[e.Trigger]
	if !ok {
		return fmt.Errorf("%w: %s of %s at seq %d without a preceding spawn",
			ErrTraceMismatch, e.Kind, e.Trigger, e.Seq)
	}
	delete(h.stash, e.Trigger)
	switch e.Kind {
	case TraceInstall:
		if c.err != nil {
			return fmt.Errorf("%w: trace installs %s but the replayed run_bu failed: %v",
				ErrTraceMismatch, e.Trigger, c.err)
		}
		for name, rs := range c.eta {
			h.res.BU[name] = rs
		}
		h.res.Triggered = append(h.res.Triggered, e.Trigger)
	case TraceFail:
		switch {
		case c.err == nil:
			return fmt.Errorf("%w: trace fails %s but the replayed run_bu succeeded",
				ErrTraceMismatch, e.Trigger)
		case errors.Is(c.err, ErrClientPanic):
			h.res.ClientPanics++
			h.res.BUFailed[e.Trigger] = true
		case errors.Is(c.err, ErrBudget):
			h.res.BUFailed[e.Trigger] = true
		default:
			h.errs[e.Trigger] = c.err
			h.aborted = true
		}
	default:
		return fmt.Errorf("%w: unexpected %s event at seq %d", ErrTraceMismatch, e.Kind, e.Seq)
	}
	return nil
}

// replayDrain processes the drain-phase tail of the trace in list order.
func (h *asyncHybrid[S, R, P]) replayDrain() error {
	for h.cursor < len(h.replay.Events) {
		e := h.replay.Events[h.cursor]
		h.cursor++
		if e.Kind == TraceSpawn {
			h.replaySpawn(e)
			continue
		}
		if err := h.applyReplayOutcome(e); err != nil {
			return err
		}
		if h.aborted {
			return errWorkerFailed
		}
	}
	if len(h.stash) > 0 {
		names := make([]string, 0, len(h.stash))
		for name := range h.stash {
			names = append(names, name)
		}
		sort.Strings(names)
		return fmt.Errorf("%w: trace ended with unresolved spawns: %v", ErrTraceMismatch, names)
	}
	return nil
}

// RunSwiftAsync runs Algorithm 1 with asynchronous bottom-up triggers: each
// run_bu executes on its own goroutine while the top-down analysis
// continues, per the parallelization sketch of the paper's Section 7.
// Workers whose trigger frontiers do not overlap run concurrently with each
// other as well as with the tabulation. The client must be safe for
// concurrent use — wrap it with Synchronized. Results coincide with
// RunSwift/RunTD states-wise, but summary-usage counters are
// timing-dependent unless the run replays a recorded trace
// (Config.RecordTrace / Config.ReplayTrace; see trace.go).
//
// No goroutine outlives the call: every worker is awaited before the
// result is assembled, whether the run completed, aborted on an error, or
// contained a panic.
func (a *Analysis[S, R, P]) RunSwiftAsync(initial S, config Config) *Result[S, R, P] {
	start := time.Now()
	res := &Result[S, R, P]{
		Engine:   "swift-async",
		BU:       map[string]RSet[R, P]{},
		BUFailed: map[string]bool{},
	}
	client := effectiveClient(a.Client, config)
	h := &asyncHybrid[S, R, P]{
		a: a, client: client, config: config, res: res,
		st:       &asyncState[S, R, P]{},
		busy:     map[string]bool{},
		pending:  map[string]bool{},
		panicked: map[string]int{},
		errs:     map[string]error{},
	}
	switch {
	case config.ReplayTrace != nil:
		h.replay = config.ReplayTrace
		h.stash = map[string]asyncCompletion[S, R, P]{}
		if err := h.replay.validate(a.Prog.Entry, config); err != nil {
			res.Elapsed = time.Since(start)
			res.Err = err
			return res
		}
	case config.RecordTrace != nil:
		h.rec = config.RecordTrace
		h.rec.reset(a.Prog.Entry, config)
	}
	// Raw view and dense scheduler for the same reason as RunSwift: trigger
	// decisions sample EntrySeen mid-run, so traversal order is observable.
	t := newTDSolver(client, a.raw(), config, h, nil)
	res.TD = t.res
	err := func() (err error) {
		defer contain(&err)
		if err := t.seed(initial); err != nil {
			return err
		}
		if err := t.run(); err != nil {
			return err
		}
		if h.replay != nil {
			return h.replayDrain()
		}
		return h.drainPending()
	}()
	// Wait out every worker — no goroutine outlives the run — then absorb
	// whatever completions they posted (post-abort ones are discarded
	// except for their counters and fatal errors).
	h.st.wg.Wait()
	h.drainCompletions()
	res.Triggered = newSortedSet(res.Triggered)
	if errors.Is(err, errWorkerFailed) {
		err = nil // replaced by the joined worker errors below
	}
	if werr := h.joinedWorkerErrs(); werr != nil {
		if err != nil {
			err = errors.Join(err, werr)
		} else {
			err = werr
		}
	}
	res.Elapsed = time.Since(start)
	res.Err = err
	return res
}
