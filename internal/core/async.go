package core

import (
	"cmp"
	"errors"
	"sync"
	"time"

	"swift/internal/ir"
)

// This file implements the parallelization sketched in the paper's
// Section 7: "whenever a bottom-up summary is to be computed, [SWIFT]
// spawns a new thread to do this bottom-up analysis, and itself continues
// the top-down analysis." Use RunSwiftAsync with a Synchronized client.
// Each trigger's bottom-up run gets its own (non-cumulative) relation and
// step budget from the configuration.
//
// Asynchronous summarization preserves correctness — a summary is only
// consulted after it is fully installed, and Theorem 3.1 applies to
// whatever summaries exist at each call event — but not determinism: how
// many call events are answered from summaries depends on when triggers
// finish, so counters (and therefore summary counts) vary run to run. The
// final abstract states still coincide with the top-down analysis.

// ConcurrentClient marks a Client implementation as safe for concurrent
// use by any number of goroutines without external locking — typically
// because its interning tables are internally sharded (internal/typestate)
// or because it keeps no mutable state at all (internal/killgen).
// Synchronized returns marked clients unchanged, so their operations run
// lock-free from the engine's point of view and mutating traffic contends
// only on whatever internal striping the client provides.
type ConcurrentClient interface {
	// ConcurrentClient is a marker; implementations assert thread safety.
	ConcurrentClient()
}

// Synchronized makes a client safe to share between the top-down solver
// (main goroutine) and asynchronous bottom-up runs (worker goroutines).
//
// Clients that declare themselves concurrency-safe via the
// ConcurrentClient marker are returned unchanged: both in-tree clients
// qualify (typestate's interners are sharded with per-stripe locks;
// killgen is stateless after construction), so no engine-level lock is
// taken on any of their operations.
//
// Other clients are wrapped with a read/write-split lock: operations that
// only consult already-interned data — Applies, PreHolds, PreImplies,
// PreOf and Identity — take a read lock and run concurrently across
// workers, while operations that may intern new states, relations or
// formulas — Trans, RTrans, RComp, Apply, WPre and Reduce — take the
// write lock. Applies and the precondition queries dominate the bottom-up
// solver's inner loops (prune ranks every relation against every sampled
// state; clean checks every relation against every Sigma member), so the
// split turns the hottest client traffic into shared-access reads instead
// of serializing everything behind one mutex.
//
// Contract for wrapped clients: Applies, PreHolds, PreImplies, PreOf and
// Identity must not mutate client state. Clients whose read operations
// memoize internally must do their own locking — or do it properly and
// implement ConcurrentClient.
func Synchronized[S cmp.Ordered, R cmp.Ordered, P cmp.Ordered](c Client[S, R, P]) Client[S, R, P] {
	if _, ok := any(c).(ConcurrentClient); ok {
		return c
	}
	return &lockedClient[S, R, P]{inner: c}
}

// lockedClient applies the read/write lock split described at Synchronized.
type lockedClient[S cmp.Ordered, R cmp.Ordered, P cmp.Ordered] struct {
	mu    sync.RWMutex
	inner Client[S, R, P]
}

func (l *lockedClient[S, R, P]) Trans(c *ir.Prim, s S) []S {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Trans(c, s)
}

func (l *lockedClient[S, R, P]) Identity() R {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.inner.Identity()
}

func (l *lockedClient[S, R, P]) RTrans(c *ir.Prim, r R) []R {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.RTrans(c, r)
}

func (l *lockedClient[S, R, P]) RComp(r1, r2 R) []R {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.RComp(r1, r2)
}

func (l *lockedClient[S, R, P]) Applies(r R, s S) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.inner.Applies(r, s)
}

func (l *lockedClient[S, R, P]) Apply(r R, s S) []S {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Apply(r, s)
}

func (l *lockedClient[S, R, P]) PreOf(r R) P {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.inner.PreOf(r)
}

func (l *lockedClient[S, R, P]) PreHolds(pre P, s S) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.inner.PreHolds(pre, s)
}

func (l *lockedClient[S, R, P]) PreImplies(p, q P) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.inner.PreImplies(p, q)
}

func (l *lockedClient[S, R, P]) WPre(r R, post P) []P {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.WPre(r, post)
}

// Reduce is grouped with the mutators even though the in-tree clients
// implement it read-only: its contract allows arbitrary subsumption
// reasoning, which a client may well memoize.
func (l *lockedClient[S, R, P]) Reduce(rels []R) []R {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Reduce(rels)
}

// asyncState carries the shared summary store of an asynchronous hybrid
// run.
type asyncState[S cmp.Ordered, R cmp.Ordered, P cmp.Ordered] struct {
	mu     sync.Mutex
	bu     map[string]RSet[R, P]
	failed map[string]bool
	// busy marks every procedure covered by some in-flight worker's
	// frontier, not just its trigger: two triggers whose frontiers overlap
	// would otherwise summarize the shared procedures twice concurrently,
	// wasting budget and racing on installation order. Non-overlapping
	// triggers proceed concurrently.
	busy map[string]bool
	// pending holds triggers postponed because their frontier overlapped an
	// in-flight worker or contained a procedure with no top-down incoming
	// state to rank by; they are retried periodically and drained at the
	// end of the run.
	pending map[string]bool
	// triggered records trigger procedures whose run_bu completed
	// successfully (completion order; sorted into Result.Triggered).
	triggered []string
	// stats accumulates the workers' bottom-up counters.
	stats BUStats
	// err holds the first non-budget error any worker hit (deadline,
	// client failure). Once set, no further triggers are spawned and the
	// run aborts with it, mirroring the synchronous engine.
	err error
	wg  sync.WaitGroup
}

// add accumulates worker-local counters into an aggregate.
func (s *BUStats) add(o BUStats) {
	s.Relations += o.Relations
	s.Steps += o.Steps
	s.Rounds += o.Rounds
}

// snapshotEntrySeen deep-copies the trigger procedure's incoming-state
// multisets so the worker ranks against a stable sample while the top-down
// analysis keeps mutating the live map.
func snapshotEntrySeen[S cmp.Ordered](src map[string]multiset[S]) map[string]multiset[S] {
	out := make(map[string]multiset[S], len(src))
	for proc, m := range src {
		cp := make(multiset[S], len(m))
		for s, n := range m {
			cp[s] = n
		}
		out[proc] = cp
	}
	return out
}

// asyncHybrid is the interceptor for RunSwiftAsync.
type asyncHybrid[S cmp.Ordered, R cmp.Ordered, P cmp.Ordered] struct {
	a      *Analysis[S, R, P]
	config Config
	res    *Result[S, R, P]
	st     *asyncState[S, R, P]
	// retryTick throttles pending retries; main goroutine only.
	retryTick int
}

func (h *asyncHybrid[S, R, P]) beforeCall(callee string, s S) ([]S, bool, error) {
	h.st.mu.Lock()
	rs, ok := h.st.bu[callee]
	h.st.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	if Ignores(h.a.Client, rs, s) {
		h.res.CallsInSigma++
		return nil, false, nil
	}
	results := ApplySummary(h.a.Client, rs, s)
	if len(results) == 0 {
		return nil, false, nil // defensive: see hybrid.beforeCall
	}
	h.res.CallsViaBU++
	return results, true, nil
}

func (h *asyncHybrid[S, R, P]) afterCall(callee string, s S) error {
	h.res.CallsViaTD++
	// Abort the tabulation as soon as a worker has failed: its error is
	// the run's error, and spawning more triggers would only waste work.
	h.st.mu.Lock()
	werr := h.st.err
	h.st.mu.Unlock()
	if werr != nil {
		return werr
	}
	if h.config.K == Unlimited {
		return nil
	}
	if h.res.TD.EntrySeen[callee].distinct() > h.config.K {
		h.tryTrigger(callee, false)
	}
	// Retry postponed triggers periodically, mirroring the synchronous
	// hybrid driver: a procedure's calls often arrive in a burst before its
	// callees have any incoming states to rank by, or while an overlapping
	// worker is still running.
	h.retryTick++
	if h.retryTick&0x3f == 0 {
		for _, f := range h.pendingSnapshot() {
			h.tryTrigger(f, false)
		}
	}
	return nil
}

// pendingSnapshot returns the sorted pending triggers.
func (h *asyncHybrid[S, R, P]) pendingSnapshot() []string {
	h.st.mu.Lock()
	defer h.st.mu.Unlock()
	return newSortedSet(keysOf(h.st.pending))
}

// tryTrigger spawns an asynchronous run_bu for callee if it is ready:
// no summary or failure recorded yet, no in-flight worker covering any
// frontier procedure, and (unless force is set) every frontier procedure
// has at least one top-down incoming state to rank by. Not-ready triggers
// are parked in pending for the periodic retry and the final drain. It
// reports whether a worker was spawned. Main goroutine only (reads
// EntrySeen).
func (h *asyncHybrid[S, R, P]) tryTrigger(callee string, force bool) bool {
	h.st.mu.Lock()
	if h.st.err != nil {
		h.st.mu.Unlock()
		return false
	}
	_, done := h.st.bu[callee]
	if done || h.st.failed[callee] {
		delete(h.st.pending, callee)
		h.st.mu.Unlock()
		return false
	}
	// Collect the frontier under the lock (it reads h.st.bu).
	frontier := h.frontierLocked(callee)
	for _, g := range frontier {
		if h.st.busy[g] {
			h.st.pending[callee] = true
			h.st.mu.Unlock()
			return false
		}
	}
	if !force {
		for _, g := range frontier {
			if h.res.TD.EntrySeen[g].distinct() == 0 {
				h.st.pending[callee] = true
				h.st.mu.Unlock()
				return false
			}
		}
	}
	delete(h.st.pending, callee)
	for _, g := range frontier {
		h.st.busy[g] = true
	}
	preEta := make(map[string]RSet[R, P], len(h.st.bu))
	for k, v := range h.st.bu {
		preEta[k] = v
	}
	h.st.mu.Unlock()

	rank := snapshotEntrySeen(h.res.TD.EntrySeen)
	h.st.wg.Add(1)
	go func() {
		defer h.st.wg.Done()
		var stats BUStats
		eta, err := runBU(h.a.Client, h.a.Prog, h.config, h.config.Theta,
			frontier, preEta, rank, &stats)
		h.st.mu.Lock()
		defer h.st.mu.Unlock()
		for _, g := range frontier {
			delete(h.st.busy, g)
		}
		h.st.stats.add(stats)
		if err != nil {
			// Only a blown budget means "fall back to top-down for this
			// trigger". Deadlines and genuine client errors must surface as
			// the run's error (first one wins), exactly as the synchronous
			// engine aborts — anything else leaves the engines silently
			// non-comparable.
			if errors.Is(err, ErrBudget) {
				h.st.failed[callee] = true
			} else if h.st.err == nil {
				h.st.err = err
			}
			return
		}
		for name, rs := range eta {
			h.st.bu[name] = rs
		}
		h.st.triggered = append(h.st.triggered, callee)
	}()
	return true
}

// drainPending flushes triggers still parked after the top-down worklist
// emptied — without it, triggers postponed inside the last retry window
// would be silently dropped and the run would under-summarize. It runs in
// waves: wait for in-flight workers (their completion clears busy overlaps
// and may install summaries that shrink other frontiers), retry everything
// pending, and if nothing could be spawned force the remainder (their
// unranked frontier procedures were never reached top-down; prune falls
// back to canonical order without ranking data).
func (h *asyncHybrid[S, R, P]) drainPending() {
	for {
		h.st.wg.Wait()
		h.st.mu.Lock()
		werr := h.st.err
		h.st.mu.Unlock()
		if werr != nil {
			return // a worker failed; the run aborts with its error
		}
		pending := h.pendingSnapshot()
		if len(pending) == 0 {
			return
		}
		spawned := false
		for _, f := range pending {
			if h.tryTrigger(f, false) {
				spawned = true
			}
		}
		if !spawned {
			// With no workers in flight, the first forced trigger always
			// spawns, so every wave makes progress and the loop terminates.
			for _, f := range h.pendingSnapshot() {
				h.tryTrigger(f, true)
			}
		}
	}
}

// frontierLocked is reachableWithoutSummaries against the shared store;
// the caller holds st.mu.
func (h *asyncHybrid[S, R, P]) frontierLocked(f string) []string {
	seen := map[string]bool{}
	var out []string
	var visit func(string)
	visit = func(name string) {
		if seen[name] {
			return
		}
		seen[name] = true
		if _, done := h.st.bu[name]; done {
			return
		}
		proc, ok := h.a.Prog.Procs[name]
		if !ok {
			return
		}
		out = append(out, name)
		for _, callee := range ir.Callees(proc.Body) {
			visit(callee)
		}
	}
	visit(f)
	return newSortedSet(out)
}

// RunSwiftAsync runs Algorithm 1 with asynchronous bottom-up triggers: each
// run_bu executes on its own goroutine while the top-down analysis
// continues, per the parallelization sketch of the paper's Section 7.
// Workers whose trigger frontiers do not overlap run concurrently with each
// other as well as with the tabulation. The client must be safe for
// concurrent use — wrap it with Synchronized. Results coincide with
// RunSwift/RunTD states-wise, but summary-usage counters are
// timing-dependent.
func (a *Analysis[S, R, P]) RunSwiftAsync(initial S, config Config) *Result[S, R, P] {
	start := time.Now()
	res := &Result[S, R, P]{
		Engine:   "swift-async",
		BU:       map[string]RSet[R, P]{},
		BUFailed: map[string]bool{},
	}
	st := &asyncState[S, R, P]{
		bu:      map[string]RSet[R, P]{},
		failed:  map[string]bool{},
		busy:    map[string]bool{},
		pending: map[string]bool{},
	}
	h := &asyncHybrid[S, R, P]{a: a, config: config, res: res, st: st}
	// Raw view for the same reason as RunSwift: trigger decisions sample
	// EntrySeen mid-run, so traversal order is observable.
	t := newTDSolver(a.Client, a.raw(), config, h)
	res.TD = t.res
	err := t.seed(initial)
	if err == nil {
		err = t.run()
	}
	if err == nil {
		h.drainPending()
	}
	// Drain in-flight summarizations so the result is stable.
	st.wg.Wait()
	st.mu.Lock()
	for name, rs := range st.bu {
		res.BU[name] = rs
	}
	for name := range st.failed {
		res.BUFailed[name] = true
	}
	res.Triggered = newSortedSet(st.triggered)
	res.BUStats = st.stats
	if err == nil {
		err = st.err
	}
	st.mu.Unlock()
	res.Elapsed = time.Since(start)
	res.Err = err
	return res
}
