package core_test

import (
	"testing"

	"swift/internal/core"
	"swift/internal/ir"
	"swift/internal/killgen"
)

// TestAsyncEngine checks the Section 7 asynchronous hybrid against the
// top-down baseline on the kill/gen fixture, several times (run with -race
// to exercise the locking).
func TestAsyncEngine(t *testing.T) {
	prog, taint := fixture()
	sync := core.Synchronized[string, string, string](taint)
	an, err := core.NewAnalysis[string, string, string](sync, prog)
	if err != nil {
		t.Fatal(err)
	}
	init := taint.Initial()
	td := an.RunTD(init, core.TDConfig())
	if !td.Completed() {
		t.Fatal(td.Err)
	}
	want := td.ExitStates("main", init)
	cfg := core.DefaultConfig()
	cfg.K = 1
	for round := 0; round < 8; round++ {
		async := an.RunSwiftAsync(init, cfg)
		if !async.Completed() {
			t.Fatalf("round %d: %v", round, async.Err)
		}
		if async.Engine != "swift-async" {
			t.Fatalf("engine = %q", async.Engine)
		}
		got := async.ExitStates("main", init)
		if len(got) != len(want) {
			t.Fatalf("round %d: %d exit states, want %d", round, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("round %d: exit[%d] differs", round, i)
			}
		}
	}
}

// TestAsyncBudgetFailure checks that a failing asynchronous trigger
// degrades to top-down behaviour rather than corrupting the run.
func TestAsyncBudgetFailure(t *testing.T) {
	prog, taint := fixture()
	sync := core.Synchronized[string, string, string](taint)
	an, err := core.NewAnalysis[string, string, string](sync, prog)
	if err != nil {
		t.Fatal(err)
	}
	init := taint.Initial()
	cfg := core.DefaultConfig()
	cfg.K = 1
	cfg.MaxRelations = 1
	async := an.RunSwiftAsync(init, cfg)
	if !async.Completed() {
		t.Fatalf("async run should complete by fallback: %v", async.Err)
	}
	if len(async.BUFailed) == 0 {
		t.Error("expected failed triggers")
	}
	td := an.RunTD(init, core.TDConfig())
	want := td.ExitStates("main", init)
	got := async.ExitStates("main", init)
	if len(got) != len(want) {
		t.Fatalf("exit states %d, want %d", len(got), len(want))
	}
}

// TestApplySummaryAndIgnores covers the exported summary helpers.
func TestApplySummaryAndIgnores(t *testing.T) {
	prog, taint := fixture()
	an, err := core.NewAnalysis[string, string, string](taint, prog)
	if err != nil {
		t.Fatal(err)
	}
	init := taint.Initial()
	cfg := core.DefaultConfig()
	cfg.K = 1
	cfg.Theta = core.Unlimited // keep every case: summaries are total
	res := an.RunSwift(init, cfg)
	if !res.Completed() {
		t.Fatal(res.Err)
	}
	if len(res.BU) == 0 {
		t.Skip("no procedure summarized")
	}
	for name, rs := range res.BU {
		if rs.Size() != len(rs.Rels) {
			t.Errorf("%s: Size mismatch", name)
		}
		// With θ=∞, Σ is empty, so no state is ignored and every entry
		// state has results.
		if core.Ignores[string, string, string](taint, rs, init) {
			t.Errorf("%s: θ=∞ summary ignores a state", name)
		}
	}
}

// TestSynthOnKillgen checks FromBottomUp over the kill/gen client: a full
// engine run with the synthesized Trans matches the native one.
func TestSynthOnKillgen(t *testing.T) {
	prog, taint := fixture()
	synth := core.FromBottomUp[string, string, string](taint)
	an1, _ := core.NewAnalysis[string, string, string](taint, prog)
	an2, _ := core.NewAnalysis[string, string, string](synth, prog)
	init := taint.Initial()
	a := an1.RunTD(init, core.TDConfig())
	b := an2.RunTD(init, core.TDConfig())
	if a.TDSummaryTotal() != b.TDSummaryTotal() {
		t.Errorf("summary totals differ: %d vs %d", a.TDSummaryTotal(), b.TDSummaryTotal())
	}
	wa := a.ExitStates("main", init)
	wb := b.ExitStates("main", init)
	if len(wa) != len(wb) {
		t.Fatalf("exit states differ: %d vs %d", len(wa), len(wb))
	}
	for i := range wa {
		if wa[i] != wb[i] {
			t.Errorf("exit[%d] differs", i)
		}
	}
}

// TestNopPrimEverywhere checks the solvers tolerate programs that are all
// structure and no effect.
func TestNopPrimEverywhere(t *testing.T) {
	prog := ir.NewProgram("main")
	prog.Add(&ir.Proc{Name: "main", Body: &ir.Loop{Body: &ir.Choice{Alts: []ir.Cmd{
		&ir.Prim{Kind: ir.Nop},
		&ir.Seq{},
	}}}})
	taint := killgen.NewTaint(prog, killgen.TaintConfig{})
	an, err := core.NewAnalysis[string, string, string](taint, prog)
	if err != nil {
		t.Fatal(err)
	}
	init := taint.Initial()
	for _, res := range []*core.Result[string, string, string]{
		an.RunTD(init, core.TDConfig()),
		an.RunBU(init, core.BUConfig()),
		an.RunSwift(init, core.DefaultConfig()),
	} {
		if !res.Completed() {
			t.Fatalf("%s: %v", res.Engine, res.Err)
		}
		exits := res.ExitStates("main", init)
		if len(exits) != 1 || exits[0] != init {
			t.Errorf("%s: exits = %v", res.Engine, exits)
		}
	}
}
