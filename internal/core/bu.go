package core

import (
	"cmp"
	"fmt"
	"sort"

	"swift/internal/ir"
)

// RSet is an element of the abstract domain Dr of the pruned bottom-up
// analysis (Section 3.4): a set of abstract relations Rels together with the
// set Sigma of ignored incoming abstract states, represented symbolically as
// a union of client preconditions. The invariant ∀r∈Rels: dom(r) ⊄ Sigma is
// maintained by clean (up to the client's PreImplies approximation).
type RSet[R cmp.Ordered, P cmp.Ordered] struct {
	Rels  sortedSet[R]
	Sigma sortedSet[P]
}

// equal reports equality of domain elements.
func (x RSet[R, P]) equal(y RSet[R, P]) bool {
	return x.Rels.equal(y.Rels) && x.Sigma.equal(y.Sigma)
}

// Size returns the number of relational cases, the paper's "bottom-up
// summaries" count for one procedure.
func (x RSet[R, P]) Size() int { return len(x.Rels) }

// Ignores reports whether state s is in the ignored set Sigma.
func Ignores[S cmp.Ordered, R cmp.Ordered, P cmp.Ordered](c Client[S, R, P], x RSet[R, P], s S) bool {
	for _, q := range x.Sigma {
		if c.PreHolds(q, s) {
			return true
		}
	}
	return false
}

// ApplySummary instantiates a bottom-up summary on an incoming state: it
// returns γ†(Rels) applied to s. Callers must first check !Ignores(c, x, s);
// Theorem 3.1 then guarantees the result coincides with the top-down
// analysis of the procedure body.
func ApplySummary[S cmp.Ordered, R cmp.Ordered, P cmp.Ordered](c Client[S, R, P], x RSet[R, P], s S) []S {
	var out []S
	for _, r := range x.Rels {
		if c.Applies(r, s) {
			out = append(out, c.Apply(r, s)...)
		}
	}
	return newSortedSet(out)
}

// BUStats aggregates work counters of the bottom-up solver.
type BUStats struct {
	// Relations counts every abstract relation materialized by rtrans and
	// rcomp calls (the dominant cost of the bottom-up approach).
	Relations int
	// Steps counts command evaluations including fixpoint re-iterations.
	Steps int
	// Rounds counts outer fixpoint rounds over the procedure set.
	Rounds int
}

// buSolver evaluates the bottom-up abstract semantics with pruning
// (Sections 3.4–3.5) over procedure bodies.
type buSolver[S cmp.Ordered, R cmp.Ordered, P cmp.Ordered] struct {
	client Client[S, R, P]
	prog   *ir.Program
	theta  int
	// rank maps procedure → multiset M of incoming states observed by the
	// top-down analysis; nil (or missing entries) means no ranking data, in
	// which case pruning keeps the θ first relations in canonical order.
	rank   map[string]multiset[S]
	eta    map[string]RSet[R, P]
	stats  *BUStats
	budget Config
	// rmemo caches RTrans images per primitive, lazily allocated. One
	// bottom-up invocation re-evaluates procedure bodies to a fixpoint, so
	// the same (prim, relation) pair recurs every outer round and every
	// loop iteration. Budget charges are unchanged on hits — the solver
	// charges materialized relations whether or not they came from the
	// cache — so BUStats is identical with and without it.
	rmemo map[*ir.Prim]map[R][]R
	dl    deadline
}

// runBU computes bottom-up summaries for the procedures in F (sorted), using
// preEta for procedures outside F that already have summaries. theta is the
// pruning width (Unlimited disables pruning). The returned map contains
// summaries for exactly the procedures in F.
func runBU[S cmp.Ordered, R cmp.Ordered, P cmp.Ordered](
	client Client[S, R, P],
	prog *ir.Program,
	config Config,
	theta int,
	f []string,
	preEta map[string]RSet[R, P],
	rank map[string]multiset[S],
	stats *BUStats,
) (map[string]RSet[R, P], error) {
	if name, ok := config.Fault.triggerBudgetFault(f); ok {
		// Injected per-trigger budget exhaustion: the hybrid drivers see
		// the same ErrBudget a genuinely blown budget produces and fall
		// back to top-down analysis for this trigger.
		return nil, fmt.Errorf("core: run_bu(%s): injected trigger budget fault: %w", name, ErrBudget)
	}
	b := &buSolver[S, R, P]{
		client: client,
		prog:   prog,
		theta:  theta,
		rank:   rank,
		eta:    map[string]RSet[R, P]{},
		stats:  stats,
		budget: config,
		dl:     newDeadline(config),
	}
	for name, rs := range preEta {
		b.eta[name] = rs
	}
	inF := map[string]bool{}
	for _, name := range f {
		inF[name] = true
		if _, ok := b.eta[name]; !ok {
			b.eta[name] = RSet[R, P]{}
		}
	}
	// Outer fixpoint: iterate the procedure-summary map until stable
	// (the fix_η0 computation of Section 3.5).
	for {
		b.stats.Rounds++
		changed := false
		for _, name := range f {
			init := RSet[R, P]{Rels: sortedSet[R]{client.Identity()}}
			out, err := b.eval(name, b.prog.Procs[name].Body, init)
			if err != nil {
				// Wrap with the procedure being evaluated; callers match the
				// budget sentinels with errors.Is.
				return nil, fmt.Errorf("core: run_bu(%s): %w", name, err)
			}
			merged := b.prune(name, b.join(out, b.eta[name]))
			if !merged.equal(b.eta[name]) {
				b.eta[name] = merged
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	res := map[string]RSet[R, P]{}
	for _, name := range f {
		res[name] = b.eta[name]
	}
	return res, nil
}

// bump charges budget for one evaluation step.
func (b *buSolver[S, R, P]) bump() error {
	b.stats.Steps++
	if b.stats.Steps > b.budget.MaxBUSteps {
		return ErrBudget
	}
	return b.dl.check()
}

// charge accounts newly materialized relations against the budget.
func (b *buSolver[S, R, P]) charge(n int) error {
	b.stats.Relations += n
	if b.stats.Relations > b.budget.MaxRelations {
		return ErrBudget
	}
	return nil
}

// eval computes JCK^r_{f,η}(x), the pruned relational semantics of a command
// within procedure f.
func (b *buSolver[S, R, P]) eval(f string, c ir.Cmd, x RSet[R, P]) (RSet[R, P], error) {
	if err := b.bump(); err != nil {
		return x, err
	}
	switch c := c.(type) {
	case *ir.Prim:
		var rels []R
		for _, r := range x.Rels {
			out := b.rtrans(c, r)
			if err := b.charge(len(out)); err != nil {
				return x, err
			}
			rels = append(rels, out...)
		}
		return b.prune(f, b.clean(RSet[R, P]{Rels: newSortedSet(rels), Sigma: x.Sigma})), nil

	case *ir.Seq:
		cur := x
		for _, s := range c.Cmds {
			var err error
			cur, err = b.eval(f, s, cur)
			if err != nil {
				return cur, err
			}
		}
		return cur, nil

	case *ir.Choice:
		acc := RSet[R, P]{}
		for _, a := range c.Alts {
			out, err := b.eval(f, a, x)
			if err != nil {
				return x, err
			}
			acc = b.join(acc, out)
		}
		return b.prune(f, acc), nil

	case *ir.Loop:
		cur := x
		for {
			body, err := b.eval(f, c.Body, cur)
			if err != nil {
				return cur, err
			}
			next := b.prune(f, b.join(cur, body))
			if next.equal(cur) {
				return cur, nil
			}
			cur = next
			if err := b.bump(); err != nil {
				return cur, err
			}
		}

	case *ir.Call:
		callee := b.eta[c.Callee]
		var rels []R
		for _, r := range x.Rels {
			for _, rc := range callee.Rels {
				out := b.client.RComp(r, rc)
				if err := b.charge(len(out)); err != nil {
					return x, err
				}
				rels = append(rels, out...)
			}
		}
		// Pull the callee's ignored set back to the entry of f: a state σ
		// must be ignored here if some relation maps it into the callee's
		// Sigma (the paper's Σ″ = S \ ∩{wp(r, S\Σ′) | r ∈ R}).
		sigma := x.Sigma
		for _, r := range x.Rels {
			for _, q := range callee.Sigma {
				sigma = sigma.union(newSortedSet(b.client.WPre(r, q)))
			}
		}
		return b.prune(f, b.clean(RSet[R, P]{Rels: newSortedSet(rels), Sigma: sigma})), nil
	}
	panic("core: eval on invalid command")
}

// rtrans answers rtrans(c)(r) from the memo when possible. RTrans is
// required to be a deterministic function of its arguments, so the cached
// slice — which callers never mutate — is indistinguishable from a fresh
// call.
func (b *buSolver[S, R, P]) rtrans(c *ir.Prim, r R) []R {
	if b.budget.NoTransferMemo {
		return b.client.RTrans(c, r)
	}
	if b.rmemo == nil {
		b.rmemo = map[*ir.Prim]map[R][]R{}
	}
	byRel := b.rmemo[c]
	if byRel == nil {
		byRel = map[R][]R{}
		b.rmemo[c] = byRel
	}
	out, ok := byRel[r]
	if !ok {
		out = b.client.RTrans(c, r)
		byRel[r] = out
	}
	return out
}

// join is the domain join ⊔: union both components, then clean.
func (b *buSolver[S, R, P]) join(x, y RSet[R, P]) RSet[R, P] {
	return b.clean(RSet[R, P]{Rels: x.Rels.union(y.Rels), Sigma: x.Sigma.union(y.Sigma)})
}

// clean removes relations whose domain is contained in Sigma (the paper's
// excl operator), using the client's PreImplies entailment check, and then
// drops relations subsumed by others via the client's Reduce.
func (b *buSolver[S, R, P]) clean(x RSet[R, P]) RSet[R, P] {
	if len(x.Rels) == 0 {
		return x
	}
	kept := x.Rels
	if len(x.Sigma) > 0 {
		kept = make(sortedSet[R], 0, len(x.Rels))
		for _, r := range x.Rels {
			pre := b.client.PreOf(r)
			subsumed := false
			for _, q := range x.Sigma {
				if b.client.PreImplies(pre, q) {
					subsumed = true
					break
				}
			}
			if !subsumed {
				kept = append(kept, r)
			}
		}
	}
	kept = newSortedSet(b.client.Reduce(kept))
	return RSet[R, P]{Rels: kept, Sigma: x.Sigma}
}

// prune implements the paper's prune operator for procedure f: rank the
// relations by how many top-down-observed incoming states of f fall in their
// domains, keep the best θ, move the domains of the rest into Sigma, and
// re-clean.
func (b *buSolver[S, R, P]) prune(f string, x RSet[R, P]) RSet[R, P] {
	if b.theta >= len(x.Rels) || b.theta == Unlimited {
		return x
	}
	m := b.rank[f]
	type ranked struct {
		r    R
		rank int
	}
	rs := make([]ranked, len(x.Rels))
	for i, r := range x.Rels {
		score := 0
		for s, count := range m {
			if b.client.Applies(r, s) {
				score += count
			}
		}
		rs[i] = ranked{r: r, rank: score}
	}
	// Sort by descending rank; x.Rels is sorted, so SliceStable makes ties
	// deterministic in the relations' canonical order.
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].rank > rs[j].rank })
	kept := make([]R, 0, b.theta)
	sigma := x.Sigma
	for i, rr := range rs {
		if i < b.theta {
			kept = append(kept, rr.r)
			continue
		}
		var added bool
		sigma, added = sigma.insert(b.client.PreOf(rr.r))
		_ = added
	}
	return b.clean(RSet[R, P]{Rels: newSortedSet(kept), Sigma: sigma})
}
