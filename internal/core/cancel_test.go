package core_test

// Cooperative-cancellation tests: closing Config.Cancel must abort every
// engine with a wrapped core.ErrCanceled at its next periodic check,
// leak no goroutines, and publish nothing to a summary source — a
// canceled run's outcome is nondeterministic, like a wall-clock timeout.

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"swift/internal/core"
	"swift/internal/ir"
	"swift/internal/killgen"
)

// cancelFixture builds a call chain of n procedures, each with heavy
// straight-line prims plus a loop and branching — enough work that every
// engine takes far more than one check interval (256 periodic checks) to
// finish, so a closed cancel channel reliably aborts mid-run. heavy also
// bounds run_bu from below: one bottom-up evaluation round of a single
// procedure costs at least heavy steps.
func cancelFixture(n, heavy int) (*ir.Program, *killgen.Taint) {
	prog := ir.NewProgram("main")
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("p%d", i)
		body := []ir.Cmd{}
		for j := 0; j < heavy; j++ {
			src, dst := name+"$x", name+"$y"
			if j%2 == 1 {
				src, dst = dst, src
			}
			body = append(body, &ir.Prim{Kind: ir.Copy, Dst: dst, Src: src})
		}
		body = append(body, &ir.Loop{Body: &ir.Choice{Alts: []ir.Cmd{
			&ir.Prim{Kind: ir.Copy, Dst: name + "$x", Src: name + "$y"},
			&ir.Prim{Kind: ir.Nop},
		}}})
		if i+1 < n {
			next := fmt.Sprintf("p%d", i+1)
			body = append(body,
				&ir.Prim{Kind: ir.Copy, Dst: next + "$x", Src: name + "$y"},
				&ir.Call{Callee: next},
			)
		}
		prog.Add(&ir.Proc{Name: name, Body: &ir.Seq{Cmds: body}})
	}
	prog.Add(&ir.Proc{Name: "main", Body: &ir.Seq{Cmds: []ir.Cmd{
		&ir.Prim{Kind: ir.New, Dst: "t", Site: "src"},
		&ir.Prim{Kind: ir.New, Dst: "c", Site: "ok"},
		&ir.Loop{Body: &ir.Choice{Alts: []ir.Cmd{
			&ir.Prim{Kind: ir.Copy, Dst: "p0$x", Src: "t"},
			&ir.Prim{Kind: ir.Copy, Dst: "p0$x", Src: "c"},
		}}},
		&ir.Call{Callee: "p0"},
		&ir.Prim{Kind: ir.TSCall, Dst: "p0$y", Method: "emit"},
	}}})
	taint := killgen.NewTaint(prog, killgen.TaintConfig{
		Sources: []string{"src"},
		Sinks:   []string{"emit"},
	})
	return prog, taint
}

func cancelAnalysis(t *testing.T, n, heavy int) (*core.Analysis[string, string, string], *killgen.Taint) {
	t.Helper()
	prog, taint := cancelFixture(n, heavy)
	an, err := core.NewAnalysis[string, string, string](taint, prog)
	if err != nil {
		t.Fatal(err)
	}
	return an, taint
}

// closedChan returns an already-closed cancel channel.
func closedChan() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}

// TestCancelPreClosedAbortsAllEngines runs every engine with the cancel
// channel closed before the run starts: each must abort with ErrCanceled
// — never ErrDeadline or a silent completion — having done only a
// fraction of the full run's work, and leak nothing.
func TestCancelPreClosedAbortsAllEngines(t *testing.T) {
	before := runtime.NumGoroutine()
	for _, engine := range []string{"td", "bu", "swift", "swift-async"} {
		t.Run(engine, func(t *testing.T) {
			an, taint := cancelAnalysis(t, 40, 8)
			cfg := core.DefaultConfig()
			cfg.K = 1

			full, err := an.RunEngine(engine, taint.Initial(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if full.Err != nil {
				t.Fatalf("uncanceled %s run failed: %v", engine, full.Err)
			}

			an2, taint2 := cancelAnalysis(t, 40, 8)
			ccfg := cfg
			ccfg.Cancel = closedChan()
			res, err := an2.RunEngine(engine, taint2.Initial(), ccfg)
			if err != nil {
				t.Fatal(err)
			}
			if !errors.Is(res.Err, core.ErrCanceled) {
				t.Fatalf("canceled %s run: Err = %v, want ErrCanceled", engine, res.Err)
			}
			if errors.Is(res.Err, core.ErrDeadline) {
				t.Fatalf("canceled %s run also reports ErrDeadline: %v", engine, res.Err)
			}
			// One check interval is 256 periodic checks; aborting there
			// must leave the bulk of the run undone.
			if full.WorkUnits() > 0 && res.WorkUnits() >= full.WorkUnits() {
				t.Fatalf("canceled %s run did full work: %d >= %d",
					engine, res.WorkUnits(), full.WorkUnits())
			}
		})
	}
	checkNoLeakedGoroutines(t, before)
}

// TestCancelMidRunAsync closes the cancel channel while RunSwiftAsync is
// in flight: the run must return promptly with ErrCanceled and wait out
// all of its workers (no goroutine outlives the run).
func TestCancelMidRunAsync(t *testing.T) {
	before := runtime.NumGoroutine()
	an, taint := cancelAnalysis(t, 60, 8)
	cfg := core.DefaultConfig()
	cfg.K = 1
	cancel := make(chan struct{})
	cfg.Cancel = cancel

	done := make(chan *core.Result[string, string, string], 1)
	go func() {
		res, err := an.RunEngine("swift-async", taint.Initial(), cfg)
		if err != nil {
			panic(err)
		}
		done <- res
	}()
	time.Sleep(5 * time.Millisecond)
	close(cancel)
	select {
	case res := <-done:
		// A fast machine may finish the whole run before the close lands;
		// both outcomes are legal, but an error must be ErrCanceled.
		if res.Err != nil && !errors.Is(res.Err, core.ErrCanceled) {
			t.Fatalf("Err = %v, want nil or ErrCanceled", res.Err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("canceled swift-async run did not return")
	}
	checkNoLeakedGoroutines(t, before)
}

// countingSource records summary-source traffic and closes a cancel
// channel on its first Lookup — a deterministic way to cancel exactly
// when the first trigger's run_bu is about to start.
type countingSource struct {
	cancel    chan struct{}
	lookups   atomic.Int64
	publishes atomic.Int64
}

func (c *countingSource) Lookup(trigger string, frontier []string) (core.TriggerOutcome[string, string], bool) {
	if c.lookups.Add(1) == 1 && c.cancel != nil {
		close(c.cancel)
	}
	return core.TriggerOutcome[string, string]{}, false
}

func (c *countingSource) Publish(trigger string, frontier []string, out core.TriggerOutcome[string, string]) {
	c.publishes.Add(1)
}

// TestCancelPublishesNothing cancels a hybrid run at the moment its first
// trigger consults the summary source: the in-flight run_bu aborts with
// ErrCanceled and nothing — neither summaries nor Failed markers — may be
// published. This is the no-publish rule ErrDeadline already obeys. The
// fixture's 400-prim bodies make any single run_bu round cost more than
// one check interval, so the cancellation is observed before run_bu can
// complete; the single-threaded swift engine then aborts the whole run
// with no publish window left (the async engine's equivalent guarantee
// is covered at the store level by the driver's cancel tests).
func TestCancelPublishesNothing(t *testing.T) {
	an, taint := cancelAnalysis(t, 12, 400)
	src := &countingSource{cancel: make(chan struct{})}
	an.Warm = src
	cfg := core.DefaultConfig()
	cfg.K = 1
	cfg.Cancel = src.cancel
	res := an.RunSwift(taint.Initial(), cfg)
	if !errors.Is(res.Err, core.ErrCanceled) {
		t.Fatalf("Err = %v, want ErrCanceled", res.Err)
	}
	if src.lookups.Load() == 0 {
		t.Fatal("summary source was never consulted — cancellation untested")
	}
	if n := src.publishes.Load(); n != 0 {
		t.Fatalf("canceled run published %d outcomes, want 0", n)
	}
}
