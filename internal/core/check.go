package core

import (
	"cmp"
	"fmt"

	"swift/internal/ir"
)

// This file provides executable checks for the framework conditions of
// Figure 4 of the paper. Clients use them in property-based tests: each
// check compares the symbolic operator (rtrans, rcomp, wp) against its
// state-level specification on a sample of abstract states.

// CheckC1 verifies condition C1 at a sample state: relating s through
// rtrans(c)(r) must coincide with relating s through r and then applying
// trans(c).
func CheckC1[S cmp.Ordered, R cmp.Ordered, P cmp.Ordered](
	c Client[S, R, P], prim *ir.Prim, r R, s S,
) error {
	var lhs []S
	for _, r2 := range c.RTrans(prim, r) {
		if c.Applies(r2, s) {
			lhs = append(lhs, c.Apply(r2, s)...)
		}
	}
	var rhs []S
	if c.Applies(r, s) {
		for _, mid := range c.Apply(r, s) {
			rhs = append(rhs, c.Trans(prim, mid)...)
		}
	}
	if !newSortedSet(lhs).equal(newSortedSet(rhs)) {
		return fmt.Errorf("C1 violated for %s at state %v: rtrans gives %v, trans gives %v",
			prim, s, newSortedSet(lhs), newSortedSet(rhs))
	}
	return nil
}

// CheckC2 verifies condition C2 at a sample state: rcomp(r1, r2) must relate
// s to exactly the states reachable by relating through r1 then r2.
func CheckC2[S cmp.Ordered, R cmp.Ordered, P cmp.Ordered](
	c Client[S, R, P], r1, r2 R, s S,
) error {
	var lhs []S
	for _, rc := range c.RComp(r1, r2) {
		if c.Applies(rc, s) {
			lhs = append(lhs, c.Apply(rc, s)...)
		}
	}
	var rhs []S
	if c.Applies(r1, s) {
		for _, mid := range c.Apply(r1, s) {
			if c.Applies(r2, mid) {
				rhs = append(rhs, c.Apply(r2, mid)...)
			}
		}
	}
	if !newSortedSet(lhs).equal(newSortedSet(rhs)) {
		return fmt.Errorf("C2 violated at state %v: rcomp gives %v, composition gives %v",
			s, newSortedSet(lhs), newSortedSet(rhs))
	}
	return nil
}

// CheckWPre verifies the WPre operator (condition C3 restricted to dom(r))
// at a sample state: s satisfies some precondition in WPre(r, post) iff s is
// in dom(r) and every r-successor of s satisfies post.
func CheckWPre[S cmp.Ordered, R cmp.Ordered, P cmp.Ordered](
	c Client[S, R, P], r R, post P, s S,
) error {
	lhs := false
	for _, p := range c.WPre(r, post) {
		if c.PreHolds(p, s) {
			lhs = true
			break
		}
	}
	rhs := false
	if c.Applies(r, s) {
		rhs = true
		for _, out := range c.Apply(r, s) {
			if !c.PreHolds(post, out) {
				rhs = false
				break
			}
		}
	}
	if lhs != rhs {
		return fmt.Errorf("WPre violated at state %v: symbolic=%v, semantic=%v", s, lhs, rhs)
	}
	return nil
}

// CheckPre verifies that PreOf(r) denotes exactly dom(r) at a sample state.
func CheckPre[S cmp.Ordered, R cmp.Ordered, P cmp.Ordered](
	c Client[S, R, P], r R, s S,
) error {
	if c.PreHolds(c.PreOf(r), s) != c.Applies(r, s) {
		return fmt.Errorf("PreOf violated at state %v: PreHolds=%v, Applies=%v",
			s, c.PreHolds(c.PreOf(r), s), c.Applies(r, s))
	}
	return nil
}

// CheckIdentity verifies that Identity relates a sample state to exactly
// itself.
func CheckIdentity[S cmp.Ordered, R cmp.Ordered, P cmp.Ordered](
	c Client[S, R, P], s S,
) error {
	id := c.Identity()
	if !c.Applies(id, s) {
		return fmt.Errorf("identity does not apply to state %v", s)
	}
	out := newSortedSet(c.Apply(id, s))
	if len(out) != 1 || out[0] != s {
		return fmt.Errorf("identity maps %v to %v", s, out)
	}
	return nil
}

// SynthTopDown derives a top-down transfer function from a client's
// bottom-up analysis via the Section 5.1 recipe
//
//	trans(c)(σ) = {σ′ | (σ,σ′) ∈ γ(rtrans(c)(id#))},
//
// which satisfies condition C1 by construction. It can be used both to
// build a top-down analysis from scratch and, in tests, to cross-check a
// hand-written Trans against the client's own RTrans.
func SynthTopDown[S cmp.Ordered, R cmp.Ordered, P cmp.Ordered](
	c Client[S, R, P], prim *ir.Prim, s S,
) []S {
	var out []S
	for _, r := range c.RTrans(prim, c.Identity()) {
		if c.Applies(r, s) {
			out = append(out, c.Apply(r, s)...)
		}
	}
	return newSortedSet(out)
}
