// Package core implements the SWIFT framework of Zhang, Mangal, Naik and
// Yang (PLDI 2014): a generic hybrid interprocedural analysis that combines
// a top-down (tabulating) analysis with a bottom-up (relational) analysis
// whose case splitting is limited by a pruning operator guided by the
// top-down analysis.
//
// The framework is parametrized by a Client, which supplies both analyses:
//
//   - the top-down analysis A = (S, trans) of Section 3.1 via Trans;
//   - the bottom-up analysis B = (R, id#, γ, rtrans, rcomp) of Section 3.2
//     via Identity, RTrans, RComp, Applies and Apply;
//   - the weakest-precondition machinery of Section 3.3 (condition C3) via
//     the symbolic precondition type P and PreOf, PreHolds, PreImplies and
//     WPre.
//
// Three solvers are provided:
//
//   - RunTD: the conventional top-down tabulation baseline;
//   - RunBU: the conventional bottom-up baseline (relational solver without
//     pruning, followed by a top-down instantiation pass);
//   - RunSwift: Algorithm 1 of the paper, the hybrid analysis with
//     thresholds k and θ.
//
// All solvers are deterministic: worklists are FIFO (or, for the sparse
// scheduler, a priority order fixed by the program's structure) and every
// set iteration is over sorted keys, so repeated runs on the same program
// produce identical results and identical counters.
package core

import (
	"cmp"
	"errors"
	"math"
	"time"

	"swift/internal/ir"
)

// Client couples a top-down analysis with a bottom-up analysis over the same
// abstract state space, as required by the SWIFT framework. The type
// parameters are:
//
//   - S: abstract states (Section 3.1). Must be ordered so state sets can be
//     kept canonical; implementations typically intern states to integers.
//   - R: abstract relations (Section 3.2), similarly ordered/interned.
//   - P: symbolic preconditions describing sets of abstract states. The
//     framework represents the ignored set Σ of the pruned bottom-up
//     analysis as a finite union of P values (exactly like the paper's
//     example Σ' = {(h,t,a) | f ∉ a}).
//
// Implementations must satisfy conditions C1–C3 of the paper (Figure 4);
// package core provides CheckC1 and friends to property-test them.
type Client[S cmp.Ordered, R cmp.Ordered, P cmp.Ordered] interface {
	// Trans is the top-down transfer function trans(c): S → 2^S of a
	// primitive command. It must handle every ir.PrimKind including Nop
	// (identity).
	Trans(c *ir.Prim, s S) []S

	// Identity returns id#, the abstract relation denoting the identity
	// relation on abstract states.
	Identity() R

	// RTrans is the bottom-up transfer function rtrans(c): R → 2^R. The
	// result set covers exactly the state pairs required by condition C1;
	// infeasible case splits (false preconditions) must be omitted.
	RTrans(c *ir.Prim, r R) []R

	// RComp composes two abstract relations per condition C2: the returned
	// set means {(σ,σ″) | ∃σ′: (σ,σ′)∈γ(r1) ∧ (σ′,σ″)∈γ(r2)}. An empty
	// result means the composition is void.
	RComp(r1, r2 R) []R

	// Applies reports whether s ∈ dom(r).
	Applies(r R, s S) bool

	// Apply returns {σ′ | (s,σ′) ∈ γ(r)}. It is only called when
	// Applies(r, s) is true.
	Apply(r R, s S) []S

	// PreOf returns a symbolic precondition denoting exactly dom(r).
	PreOf(r R) P

	// PreHolds reports whether s satisfies the precondition.
	PreHolds(pre P, s S) bool

	// PreImplies reports whether pre p entails pre q (p ⊆ q as state sets).
	// A sound under-approximation (answering false when unsure) is
	// acceptable: it only causes void relations to be retained, which never
	// affects results on non-ignored states.
	PreImplies(p, q P) bool

	// WPre returns preconditions whose union denotes
	// {σ | σ ∈ dom(r) ∧ ∀σ′:(σ,σ′)∈γ(r) ⇒ σ′ ⊨ post}, i.e. the paper's
	// dom(r) ∧ wp(r, post). It is used to propagate a callee's ignored set
	// backward through the relations at a call site (Section 3.5).
	WPre(r R, post P) []P

	// Reduce removes relations that are subsumed by others in the set
	// (γ(r) ⊆ γ(r′) for some kept r′), preserving γ† of the set exactly.
	// Joins of control-flow branches routinely produce the same transformer
	// under both a weaker and a stronger precondition; dropping the
	// stronger one costs nothing — in particular it needs no addition to
	// the ignored set Σ — and is what lets a single relational case cover a
	// procedure's dominant behaviour. Returning the input unchanged is
	// always correct, just less effective.
	Reduce(rels []R) []R
}

// TransCompiler is an optional capability of Client. CompileTrans returns
// a specialized, append-style form of Trans(c, ·) with the
// state-independent work of the primitive — name resolution, method-table
// lookups, fixed operand sets — hoisted out of the per-state path, and
// with whatever per-primitive memoization the client can key on its
// interned representations. The returned function must append exactly what
// Trans(c, s) returns (same states, same order) to dst and return the
// extended slice, and must be safe for concurrent use if the client itself
// is.
//
// The tabulation solver probes for this interface on the compressed view
// and composes superblock chains out of compiled transfers; clients that
// do not implement it are served by plain Trans. The raw view never uses
// compiled transfers: the hybrid engines replay raw Trans output
// bit-for-bit from the transfer memo (see DESIGN.md).
type TransCompiler[S cmp.Ordered] interface {
	CompileTrans(c *ir.Prim) func(s S, dst []S) []S
}

// Budget errors returned by the solvers when a resource limit is hit. The
// baselines are expected to hit these on the larger benchmarks, mirroring
// the paper's timeouts and out-of-memory failures.
var (
	// ErrBudget indicates a work or memory budget was exhausted.
	ErrBudget = errors.New("core: analysis budget exhausted")
	// ErrDeadline indicates the wall-clock deadline passed.
	ErrDeadline = errors.New("core: analysis deadline exceeded")
	// ErrCanceled indicates the caller canceled the run via Config.Cancel.
	// Like ErrDeadline it is nondeterministic — a rerun of the same inputs
	// would not abort — so canceled outcomes are never published to a
	// summary source, never snapshotted as tables, and never memoized as
	// slice results (see publishOutcome and the driver's warm/demand
	// paths).
	ErrCanceled = errors.New("core: analysis canceled")
)

// Unlimited disables a numeric budget field.
const Unlimited = math.MaxInt

// Config controls a solver run. The zero value is not useful; start from
// DefaultConfig.
type Config struct {
	// K is the SWIFT trigger threshold: the bottom-up analysis is triggered
	// on a procedure once the top-down analysis has seen more than K
	// distinct incoming abstract states for it. Unlimited disables
	// triggering (pure top-down behaviour).
	K int

	// Theta is the pruning width θ: the maximum number of relational cases
	// kept by the pruning operator at each step. Unlimited disables pruning
	// (the conventional bottom-up analysis).
	Theta int

	// MaxPathEdges bounds the number of top-down path edges (pairs (σ,σ′)
	// recorded at program points). Models the paper's memory exhaustion.
	MaxPathEdges int

	// MaxTDSummaries bounds the total number of top-down summaries (pairs
	// of input-output states per procedure).
	MaxTDSummaries int

	// MaxRelations bounds the number of distinct abstract relations
	// materialized by one bottom-up invocation. Models the exponential
	// case explosion of the conventional bottom-up analysis. The budget is
	// per trigger in both hybrid engines — every run_bu (and each async
	// worker) starts from a fresh counter, and Result.BUStats aggregates
	// the per-trigger counters afterwards — so RunSwift and RunSwiftAsync
	// agree on which triggers exhaust it. For RunBU the entire analysis is
	// one invocation, so the bound is effectively global there.
	MaxRelations int

	// MaxBUSteps bounds the number of evaluation steps taken by one
	// bottom-up invocation (fixpoint iterations included). Per trigger,
	// like MaxRelations.
	MaxBUSteps int

	// Timeout bounds wall-clock time for the whole run; zero means none.
	Timeout time.Duration

	// Cancel, when non-nil, lets the caller abort the run cooperatively:
	// once the channel is closed, every solver returns ErrCanceled from
	// its next periodic check — the same low-cost points that poll the
	// wall-clock deadline (the TD worklist, each BU evaluation step, the
	// hybrid trigger and async completion loops), plus a pre-dispatch
	// check in RunSliceSet's slice workers. Closing the channel is the
	// only supported signal; sending on it does nothing.
	Cancel <-chan struct{}

	// RawCFG forces the order-insensitive solvers (RunTD, and RunBU's
	// instantiation pass) onto the raw one-superedge-per-edge control-flow
	// view instead of the compressed superblock view. Both views produce
	// identical result tables and identical counters — budgets are counted
	// in original-graph units either way — so this is an A/B knob for
	// benchmarking and for the equivalence property tests, not a semantic
	// switch. The hybrid engines always run on the raw view regardless
	// (their trigger sampling is traversal-order-sensitive; see DESIGN.md).
	RawCFG bool

	// NoTransferMemo disables the per-superedge transfer caches (the
	// top-down chain memo and the bottom-up RTrans memo), making every
	// traversal call the client afresh — the pre-memoization behaviour.
	// Like RawCFG, results and counters are identical either way.
	NoTransferMemo bool

	// NoSparse forces the order-insensitive solvers (RunTD, and RunBU's
	// instantiation pass) onto the dense FIFO fact worklist instead of the
	// structure-driven sparse scheduler (sparse.go). Both schedulers
	// produce identical result tables and identical counters — budgets and
	// Steps are counted in original-graph units either way — so, like
	// RawCFG, this is an A/B knob for benchmarking and the equivalence
	// property tests, not a semantic switch. The hybrid engines always run
	// dense regardless (their trigger sampling is order-sensitive).
	NoSparse bool

	// NoStructIndex keeps the sparse scheduler but strips its use of the
	// loop-structure index: nodes drain in plain reverse postorder with no
	// region priority, and region-level closure memoization is disabled.
	// An ablation knob isolating the structure index's contribution from
	// plain batched RPO draining; results and counters are identical
	// either way. Implied moot when NoSparse is set.
	NoStructIndex bool

	// Fault, when non-nil, arms the deterministic fault-injection layer:
	// every engine entry point wraps the client so the plan's scheduled
	// faults (errors, panics, stalls, forced budget exhaustion) fire at
	// their operation indices, and run_bu honours the plan's per-trigger
	// budget faults. Results with an empty plan are byte-identical to an
	// unarmed run (the wrapper only counts). See fault.go.
	Fault *FaultPlan

	// RecordTrace, when non-nil, makes RunSwiftAsync record its
	// scheduling-visible decisions (worker spawns, summary installs and
	// failures, relative to the call-event stream) into the trace. The
	// trace is rewritten from scratch; see trace.go.
	RecordTrace *Trace

	// ReplayTrace, when non-nil, makes RunSwiftAsync re-run a recorded
	// schedule deterministically on a single goroutine: each run_bu
	// executes synchronously at its recorded spawn point and its outcome
	// becomes visible at its recorded install point. Replays of the same
	// trace on identically built pipelines are bit-identical. A trace
	// that does not match the run (different program, thresholds, or
	// client behaviour) fails with ErrTraceMismatch. Takes precedence
	// over RecordTrace.
	ReplayTrace *Trace

	// SliceWorkers bounds how many slices RunSliced analyzes concurrently;
	// zero or negative means GOMAXPROCS. Merged sliced results are
	// independent of this setting — every slice runs on its own client
	// instance and slices are aggregated in sorted slice order — so it is
	// purely a wall-clock knob, like bench.Suite.Parallel.
	SliceWorkers int

	// ProfileLabel, when non-empty, is added as the "suite" pprof label to
	// every slice run of RunSliced (alongside "engine" and "slice"), so
	// CPU profiles attribute per-slice samples back to the caller's run
	// name. It has no effect on analysis results.
	ProfileLabel string

	// Resummarize bounds how many times the hybrid driver may recompute a
	// procedure's bottom-up summary after the pruning oracle mispredicted
	// the dominant case. The paper's Algorithm 1 summarizes each procedure
	// once, ranking cases by the incoming states seen so far; when the
	// trigger fires early in the run that sample is unrepresentative and
	// the kept case can be useless (the failure mode Section 4 discusses).
	// This implementation can watch the Σ-fallback rate per summarized
	// procedure and re-run run_bu — with the now much larger sample — up
	// to Resummarize times per procedure. Zero (the default) reproduces the
	// one-shot behaviour of Algorithm 1, which also performs best in our
	// experiments: after a procedure is summarized, only non-dominant
	// states still reach it top-down, so the later sample is biased and
	// re-ranking against it tends to evict the dominant case (the ablation
	// benchmarks record this).
	Resummarize int
}

// DefaultConfig returns the configuration used throughout the evaluation
// section: the paper's overall-optimal thresholds k=5, θ=1 and generous
// budgets.
func DefaultConfig() Config {
	return Config{
		K:              5,
		Theta:          1,
		MaxPathEdges:   Unlimited,
		MaxTDSummaries: Unlimited,
		MaxRelations:   Unlimited,
		MaxBUSteps:     Unlimited,
		Resummarize:    0,
	}
}

// TDConfig returns the pure top-down baseline configuration.
func TDConfig() Config {
	c := DefaultConfig()
	c.K = Unlimited
	return c
}

// BUConfig returns the pure bottom-up baseline configuration (no pruning).
func BUConfig() Config {
	c := DefaultConfig()
	c.Theta = Unlimited
	return c
}

// deadline tracks the run's abort conditions cheaply: an optional
// wall-clock limit and an optional cancellation channel, both polled by
// the solvers every few hundred steps via check. One check interval
// (256 calls) bounds how stale either signal can get.
type deadline struct {
	at     time.Time
	armed  bool
	cancel <-chan struct{}
	count  int
}

func newDeadline(config Config) deadline {
	d := deadline{cancel: config.Cancel}
	if config.Timeout > 0 {
		d.at = time.Now().Add(config.Timeout)
		d.armed = true
	}
	return d
}

func (d *deadline) check() error {
	if !d.armed && d.cancel == nil {
		return nil
	}
	d.count++
	if d.count&0xff != 0 {
		return nil
	}
	select {
	case <-d.cancel:
		// Cancellation wins over the deadline: a canceled run must never
		// be mistaken for a deadline abort, whose Failed markers other
		// layers treat differently.
		return ErrCanceled
	default:
	}
	if d.armed && time.Now().After(d.at) {
		return ErrDeadline
	}
	return nil
}
