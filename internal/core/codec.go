package core

import (
	"cmp"
	"fmt"
	"sort"

	"swift/internal/wire"
)

// This file gives the persistent store (internal/store, internal/driver)
// codec access to the framework's result shapes whose representation is
// unexported: RSet construction from decoded parts, and a versioned,
// canonical encoding of TDResult tables. Canonical means independent of
// map iteration order — procedures, entry contexts and states are written
// sorted — so encoding the same tables twice, or re-encoding a decoded
// copy, is byte-identical. State values S are translated through
// caller-supplied enc/dec functions, since only the client knows what its
// IDs mean (the typestate client's are dense interned int32s).

const tdMagic = "SWTD1"

// MakeRSet builds a summary-domain element from decoded parts,
// canonicalizing both sets. It is the only way to construct an RSet
// outside this package (the set representation is unexported on purpose —
// the solvers rely on its invariants).
func MakeRSet[R cmp.Ordered, P cmp.Ordered](rels []R, sigma []P) RSet[R, P] {
	return RSet[R, P]{Rels: newSortedSet(rels), Sigma: newSortedSet(sigma)}
}

// RSetParts returns the relation and Sigma members of a summary, sorted.
// The returned slices are the set's own storage; callers must not mutate
// them.
func RSetParts[R cmp.Ordered, P cmp.Ordered](x RSet[R, P]) (rels []R, sigma []P) {
	return x.Rels, x.Sigma
}

// EncodeTDResult appends the canonical encoding of the top-down tables to
// w: path edges, procedure summaries, incoming-state multisets and the
// work counters. The unexported snapshot caches are derived state and are
// not part of the encoding.
func EncodeTDResult[S cmp.Ordered](w *wire.Writer, r *TDResult[S], enc func(S) int64) {
	w.Raw([]byte(tdMagic))
	w.Uint(uint64(len(r.PathEdges)))
	for _, byIn := range r.PathEdges {
		writeStateMap(w, byIn, enc)
	}
	procs := sortedKeys(r.Summaries)
	w.Uint(uint64(len(procs)))
	for _, name := range procs {
		w.String(name)
		writeStateMap(w, r.Summaries[name], enc)
	}
	procs = sortedKeys(r.EntrySeen)
	w.Uint(uint64(len(procs)))
	for _, name := range procs {
		w.String(name)
		m := r.EntrySeen[name]
		states := make([]S, 0, len(m))
		for s := range m {
			states = append(states, s)
		}
		states = newSortedSet(states)
		w.Uint(uint64(len(states)))
		for _, s := range states {
			w.Int(enc(s))
			w.Int(int64(m[s]))
		}
	}
	w.Int(int64(r.NumPathEdges))
	w.Int(int64(r.NumSummaries))
	w.Int(int64(r.Steps))
}

// writeStateMap encodes a context → state-set bucket map in sorted
// context order.
func writeStateMap[S cmp.Ordered](w *wire.Writer, m map[S]sortedSet[S], enc func(S) int64) {
	ins := make([]S, 0, len(m))
	for in := range m {
		ins = append(ins, in)
	}
	ins = newSortedSet(ins)
	w.Uint(uint64(len(ins)))
	for _, in := range ins {
		w.Int(enc(in))
		outs := m[in]
		w.Uint(uint64(len(outs)))
		for _, s := range outs {
			w.Int(enc(s))
		}
	}
}

// DecodeTDResult decodes an EncodeTDResult record. dec must reject values
// that are not valid states (the store treats any error as a cache miss).
// Decoded state sets are re-canonicalized, so a well-formed record decodes
// into tables upholding the solver invariants regardless of how it was
// produced.
func DecodeTDResult[S cmp.Ordered](data []byte, dec func(int64) (S, error)) (*TDResult[S], error) {
	r := wire.NewReader(data)
	r.Expect(tdMagic)
	res := &TDResult[S]{
		Summaries: map[string]map[S]sortedSet[S]{},
		EntrySeen: map[string]multiset[S]{},
	}
	nNodes := r.Len()
	res.PathEdges = make([]map[S]sortedSet[S], 0, nNodes)
	for i := 0; i < nNodes && r.Err() == nil; i++ {
		m, err := readStateMap(r, dec)
		if err != nil {
			return nil, err
		}
		res.PathEdges = append(res.PathEdges, m)
	}
	nProcs := r.Len()
	for i := 0; i < nProcs && r.Err() == nil; i++ {
		name := r.String()
		m, err := readStateMap(r, dec)
		if err != nil {
			return nil, err
		}
		res.Summaries[name] = m
	}
	nProcs = r.Len()
	for i := 0; i < nProcs && r.Err() == nil; i++ {
		name := r.String()
		n := r.Len()
		m := make(multiset[S], n)
		for j := 0; j < n && r.Err() == nil; j++ {
			s, err := decodeState(r, dec)
			if err != nil {
				return nil, err
			}
			count := r.Int()
			if r.Err() == nil && count <= 0 {
				return nil, fmt.Errorf("core: non-positive multiset count %d", count)
			}
			m[s] = int(count)
		}
		res.EntrySeen[name] = m
	}
	res.NumPathEdges = int(r.Int())
	res.NumSummaries = int(r.Int())
	res.Steps = int(r.Int())
	if err := r.Done(); err != nil {
		return nil, err
	}
	return res, nil
}

func readStateMap[S cmp.Ordered](r *wire.Reader, dec func(int64) (S, error)) (map[S]sortedSet[S], error) {
	n := r.Len()
	if r.Err() != nil {
		return nil, r.Err()
	}
	m := make(map[S]sortedSet[S], n)
	for i := 0; i < n && r.Err() == nil; i++ {
		in, err := decodeState(r, dec)
		if err != nil {
			return nil, err
		}
		k := r.Len()
		outs := make([]S, 0, k)
		for j := 0; j < k && r.Err() == nil; j++ {
			s, err := decodeState(r, dec)
			if err != nil {
				return nil, err
			}
			outs = append(outs, s)
		}
		m[in] = newSortedSet(outs)
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	return m, nil
}

func decodeState[S cmp.Ordered](r *wire.Reader, dec func(int64) (S, error)) (S, error) {
	v := r.Int()
	if err := r.Err(); err != nil {
		var zero S
		return zero, err
	}
	return dec(v)
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
