package core_test

// Equivalence tests for the superblock-compressed solver view and the
// transfer memo: on every program we can get our hands on — the killgen
// fixture, randomized killgen programs, testdata/, and generated
// paper-mirror benchmarks — the compressed and raw solvers must produce
// identical TDResult tables and identical counters, and the memo must be
// observably transparent in every engine including the order-sensitive
// hybrid.

import (
	"cmp"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"testing"

	"swift/internal/benchprog"
	"swift/internal/core"
	"swift/internal/driver"
	"swift/internal/ir"
	"swift/internal/killgen"
)

// sameTD asserts two tabulation results are identical: the full path-edge
// table, summaries, entry multisets and every counter.
func sameTD[S cmp.Ordered](t *testing.T, label string, a, b *core.TDResult[S]) {
	t.Helper()
	if a.NumPathEdges != b.NumPathEdges || a.NumSummaries != b.NumSummaries || a.Steps != b.Steps {
		t.Errorf("%s: counters differ: (%d,%d,%d) vs (%d,%d,%d)", label,
			a.NumPathEdges, a.NumSummaries, a.Steps,
			b.NumPathEdges, b.NumSummaries, b.Steps)
	}
	if !reflect.DeepEqual(a.PathEdges, b.PathEdges) {
		t.Errorf("%s: path-edge tables differ", label)
	}
	if !reflect.DeepEqual(a.Summaries, b.Summaries) {
		t.Errorf("%s: summary tables differ", label)
	}
	if !reflect.DeepEqual(a.EntrySeen, b.EntrySeen) {
		t.Errorf("%s: entry multisets differ", label)
	}
}

// tdVariants runs RunTD under all four view/memo combinations and asserts
// they are indistinguishable. The default (compressed+memo) is returned.
func tdVariants[S cmp.Ordered, R cmp.Ordered, P cmp.Ordered](
	t *testing.T, label string, an *core.Analysis[S, R, P], init S, cfg core.Config,
) *core.Result[S, R, P] {
	t.Helper()
	base := an.RunTD(init, cfg)
	for _, v := range []struct {
		name      string
		raw, nomo bool
	}{
		{"raw+nomemo", true, true}, {"raw", true, false}, {"nomemo", false, true},
	} {
		c := cfg
		c.RawCFG = v.raw
		c.NoTransferMemo = v.nomo
		got := an.RunTD(init, c)
		if !errors.Is(got.Err, base.Err) && !errors.Is(base.Err, got.Err) {
			t.Errorf("%s/%s: err = %v, want %v", label, v.name, got.Err, base.Err)
			continue
		}
		sameTD(t, label+"/"+v.name, base.TD, got.TD)
	}
	return base
}

func TestCompressedMatchesRawOnFixture(t *testing.T) {
	an, taint := newAnalysis(t)
	init := taint.Initial()
	res := tdVariants(t, "fixture", an, init, core.TDConfig())
	if !res.Completed() {
		t.Fatalf("td: %v", res.Err)
	}

	// The bottom-up baseline's instantiation pass uses the same solver.
	buBase := an.RunBU(init, core.BUConfig())
	buCfg := core.BUConfig()
	buCfg.RawCFG = true
	buCfg.NoTransferMemo = true
	buRaw := an.RunBU(init, buCfg)
	if !buBase.Completed() || !buRaw.Completed() {
		t.Fatalf("bu: %v / %v", buBase.Err, buRaw.Err)
	}
	sameTD(t, "fixture/bu", buBase.TD, buRaw.TD)
	if buBase.BUStats != buRaw.BUStats {
		t.Errorf("bu stats differ: %+v vs %+v", buBase.BUStats, buRaw.BUStats)
	}
}

// TestBudgetAbortAgreesAcrossViews pins the original-graph-units contract
// at the abort point: a path-edge budget must fire on the same insert
// count on either view (Steps at abort legitimately differs — the raw
// solver still owes pops for queued facts the compressed walk already
// charged).
func TestBudgetAbortAgreesAcrossViews(t *testing.T) {
	an, taint := newAnalysis(t)
	init := taint.Initial()
	cfg := core.TDConfig()
	cfg.MaxPathEdges = 7
	comp := an.RunTD(init, cfg)
	cfg.RawCFG = true
	cfg.NoTransferMemo = true
	raw := an.RunTD(init, cfg)
	if !errors.Is(comp.Err, core.ErrBudget) || !errors.Is(raw.Err, core.ErrBudget) {
		t.Fatalf("budget did not fire: %v / %v", comp.Err, raw.Err)
	}
	if comp.TD.NumPathEdges != raw.TD.NumPathEdges {
		t.Errorf("path edges at abort: %d vs %d", comp.TD.NumPathEdges, raw.TD.NumPathEdges)
	}
}

// TestMemoTransparentInHybrid asserts the transfer memo changes nothing
// observable in the order-sensitive hybrid engine: every counter, the
// trigger set and the full tabulation tables must be bit-identical with
// the memo on and off.
func TestMemoTransparentInHybrid(t *testing.T) {
	an, taint := newAnalysis(t)
	init := taint.Initial()
	cfg := core.DefaultConfig()
	cfg.K = 1
	base := an.RunSwift(init, cfg)
	cfg.NoTransferMemo = true
	plain := an.RunSwift(init, cfg)
	if !base.Completed() || !plain.Completed() {
		t.Fatalf("swift: %v / %v", base.Err, plain.Err)
	}
	sameTD(t, "swift", base.TD, plain.TD)
	if !reflect.DeepEqual(base.Triggered, plain.Triggered) {
		t.Errorf("Triggered differs: %v vs %v", base.Triggered, plain.Triggered)
	}
	if base.BUStats != plain.BUStats {
		t.Errorf("BUStats differs: %+v vs %+v", base.BUStats, plain.BUStats)
	}
	got := [4]int{base.CallsViaBU, base.CallsViaTD, base.CallsInSigma, base.Resummarized}
	want := [4]int{plain.CallsViaBU, plain.CallsViaTD, plain.CallsInSigma, plain.Resummarized}
	if got != want {
		t.Errorf("call counters differ: %v vs %v", got, want)
	}
}

// randomKillgenProgram builds a small random program over the taint
// client's primitive forms, structurally similar to the typestate
// coincidence generator.
func randomKillgenProgram(rng *rand.Rand) (*ir.Program, *killgen.Taint) {
	vars := []string{"a", "b", "c"}
	numProcs := 2 + rng.Intn(3)
	procName := func(i int) string { return fmt.Sprintf("p%d", i) }
	randVar := func() string { return vars[rng.Intn(len(vars))] }
	randPrim := func() ir.Cmd {
		switch rng.Intn(7) {
		case 0:
			return &ir.Prim{Kind: ir.New, Dst: randVar(), Site: "src"}
		case 1:
			return &ir.Prim{Kind: ir.New, Dst: randVar(), Site: "ok"}
		case 2, 3:
			return &ir.Prim{Kind: ir.Copy, Dst: randVar(), Src: randVar()}
		case 4:
			return &ir.Prim{Kind: ir.Kill, Dst: randVar()}
		case 5:
			return &ir.Prim{Kind: ir.TSCall, Dst: randVar(), Method: "emit"}
		default:
			return &ir.Prim{Kind: ir.Nop}
		}
	}
	var randCmd func(depth, self int) ir.Cmd
	randCmd = func(depth, self int) ir.Cmd {
		if depth > 0 {
			switch rng.Intn(6) {
			case 0:
				return &ir.Choice{Alts: []ir.Cmd{randCmd(depth-1, self), randCmd(depth-1, self)}}
			case 1:
				return &ir.Loop{Body: randCmd(depth-1, self)}
			case 2:
				if self+1 < numProcs {
					callee := self + 1 + rng.Intn(numProcs-self-1)
					if rng.Intn(4) == 0 {
						callee = self
					}
					return &ir.Call{Callee: procName(callee)}
				}
			}
		}
		n := 1 + rng.Intn(4)
		seq := make([]ir.Cmd, n)
		for i := range seq {
			seq[i] = randPrim()
		}
		return &ir.Seq{Cmds: seq}
	}
	prog := ir.NewProgram(procName(0))
	for i := 0; i < numProcs; i++ {
		body := make([]ir.Cmd, 2+rng.Intn(3))
		for j := range body {
			body[j] = randCmd(2, i)
		}
		prog.Add(&ir.Proc{Name: procName(i), Body: &ir.Seq{Cmds: body}})
	}
	taint := killgen.NewTaint(prog, killgen.TaintConfig{
		Sources: []string{"src"},
		Sinks:   []string{"emit"},
	})
	return prog, taint
}

func TestCompressedMatchesRawRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		prog, taint := randomKillgenProgram(rng)
		an, err := core.NewAnalysis[string, string, string](taint, prog)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		init := taint.Initial()
		label := fmt.Sprintf("trial%d", trial)
		tdVariants(t, label, an, init, core.TDConfig())

		cfg := core.DefaultConfig()
		cfg.K = 1
		base := an.RunSwift(init, cfg)
		cfg.NoTransferMemo = true
		plain := an.RunSwift(init, cfg)
		if base.Err != nil || plain.Err != nil {
			t.Fatalf("%s: swift: %v / %v", label, base.Err, plain.Err)
		}
		sameTD(t, label+"/swift", base.TD, plain.TD)
		if base.BUStats != plain.BUStats || !reflect.DeepEqual(base.Triggered, plain.Triggered) {
			t.Errorf("%s: swift diverged with memo disabled", label)
		}
	}
}

func TestCompressedMatchesRawOnTestdata(t *testing.T) {
	src, err := os.ReadFile("../../testdata/mirror.mj")
	if err != nil {
		t.Fatal(err)
	}
	// Both runs share one build — and hence one typestate interner — so the
	// AbsID numbering is identical and the tables are directly comparable.
	// (The interner assigns IDs in first-encounter order, which differs
	// between traversal orders; separate builds would produce semantically
	// equal tables under different numberings.)
	b, err := driver.FromSource(string(src))
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.TDConfig()
	comp, err := b.Run("td", cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.RawCFG = true
	cfg.NoTransferMemo = true
	raw, err := b.Run("td", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Err != nil || raw.Err != nil {
		t.Fatalf("td: %v / %v", comp.Err, raw.Err)
	}
	sameTD(t, "mirror.mj", comp.TD, raw.TD)
}

// TestCompressedMatchesRawOnBenchSuite drives the full pipeline on the
// smaller paper-mirror benchmarks: identical tables, counters and
// therefore identical WorkUnits (the quantity the results/ tables print).
func TestCompressedMatchesRawOnBenchSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("bench-suite equivalence is not a -short test")
	}
	for _, tc := range []struct {
		name   string
		engine string
	}{
		{"jpat-p", "td"}, {"jpat-p", "bu"},
		{"elevator", "td"}, {"elevator", "bu"},
		{"toba-s", "td"},
	} {
		t.Run(tc.name+"/"+tc.engine, func(t *testing.T) {
			p, ok := benchprog.ProfileByName(tc.name)
			if !ok {
				t.Fatalf("unknown profile %s", tc.name)
			}
			prog, err := benchprog.Generate(p)
			if err != nil {
				t.Fatal(err)
			}
			// One build for both runs: shared interner, comparable AbsIDs
			// (see TestCompressedMatchesRawOnTestdata).
			b, err := driver.FromHIR(prog)
			if err != nil {
				t.Fatal(err)
			}
			run := func(raw bool) *driver.Result {
				cfg := core.DefaultConfig()
				cfg.RawCFG = raw
				cfg.NoTransferMemo = raw
				res, err := b.Run(tc.engine, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if res.Err != nil {
					t.Fatalf("%s raw=%v: %v", tc.engine, raw, res.Err)
				}
				return res
			}
			comp, raw := run(false), run(true)
			sameTD(t, tc.name, comp.TD, raw.TD)
			if comp.WorkUnits() != raw.WorkUnits() {
				t.Errorf("work units: %d vs %d", comp.WorkUnits(), raw.WorkUnits())
			}
			if comp.BUStats != raw.BUStats {
				t.Errorf("bu stats: %+v vs %+v", comp.BUStats, raw.BUStats)
			}
		})
	}
}
