package core_test

// Regression tests pinning RunSwift and RunSwiftAsync to the same
// observable behaviour: worker errors must surface as Result.Err in both
// engines, bottom-up budgets are per trigger in both, and Result.Triggered
// is sorted in both. Each test fails against the pre-fix engines (swallowed
// async worker errors, cumulative sync budgets, completion-order Triggered).

import (
	"errors"
	"testing"
	"time"

	"swift/internal/core"
	"swift/internal/ir"
	"swift/internal/killgen"
)

// slowClient delays every bottom-up transfer so a run_bu invocation blows
// the wall-clock deadline while the top-down analysis (which never calls
// RTrans) stays fast. It poisons only the workers: the error every engine
// must surface is the deadline the bottom-up side hits.
type slowClient struct {
	core.Client[string, string, string]
	delay time.Duration
}

func (s *slowClient) RTrans(c *ir.Prim, r string) []string {
	time.Sleep(s.delay)
	return s.Client.RTrans(c, r)
}

// ConcurrentClient marks the wrapper concurrency-safe: it is stateless and
// the wrapped taint client is itself concurrent, so Synchronized must not
// add a lock that would serialize the top-down analysis behind the
// sleeping workers (which would let the tabulation hit the deadline by
// itself and mask the bug under test).
func (s *slowClient) ConcurrentClient() {}

// slowFixture builds a program whose single callee is triggered early and
// takes ≥256 bottom-up evaluation steps, so the worker's deadline check
// (which only consults the clock every 256th step) fires mid-run_bu.
func slowFixture() (*ir.Program, *killgen.Taint) {
	prog := ir.NewProgram("main")
	nops := make([]ir.Cmd, 350)
	for i := range nops {
		nops[i] = &ir.Prim{Kind: ir.Nop}
	}
	prog.Add(&ir.Proc{Name: "slow", Body: &ir.Seq{Cmds: nops}})
	prog.Add(&ir.Proc{Name: "main", Body: &ir.Seq{Cmds: []ir.Cmd{
		&ir.Prim{Kind: ir.New, Dst: "t", Site: "src"},
		&ir.Prim{Kind: ir.New, Dst: "c", Site: "ok"},
		&ir.Loop{Body: &ir.Choice{Alts: []ir.Cmd{
			&ir.Prim{Kind: ir.Copy, Dst: "slow$x", Src: "t"},
			&ir.Prim{Kind: ir.Copy, Dst: "slow$x", Src: "c"},
		}}},
		&ir.Call{Callee: "slow"},
		&ir.Prim{Kind: ir.TSCall, Dst: "slow$x", Method: "emit"},
	}}})
	taint := killgen.NewTaint(prog, killgen.TaintConfig{
		Sources: []string{"src"},
		Sinks:   []string{"emit"},
	})
	return prog, taint
}

// TestWorkerErrorSurfaces checks that a non-budget error inside run_bu —
// here the wall-clock deadline — reaches Result.Err in both hybrid
// engines instead of being downgraded to a silent top-down fallback.
func TestWorkerErrorSurfaces(t *testing.T) {
	prog, taint := slowFixture()
	slow := &slowClient{Client: taint, delay: time.Millisecond}
	an, err := core.NewAnalysis[string, string, string](
		core.Synchronized[string, string, string](slow), prog)
	if err != nil {
		t.Fatal(err)
	}
	init := taint.Initial()
	cfg := core.DefaultConfig()
	cfg.K = 1
	cfg.Timeout = 50 * time.Millisecond

	for name, run := range map[string]func() *core.Result[string, string, string]{
		"swift":       func() *core.Result[string, string, string] { return an.RunSwift(init, cfg) },
		"swift-async": func() *core.Result[string, string, string] { return an.RunSwiftAsync(init, cfg) },
	} {
		res := run()
		if res.Err == nil {
			t.Errorf("%s: deadline inside run_bu was swallowed (Triggered=%v BUFailed=%v)",
				name, res.Triggered, res.BUFailed)
			continue
		}
		if !errors.Is(res.Err, core.ErrDeadline) {
			t.Errorf("%s: err = %v, want ErrDeadline", name, res.Err)
		}
	}
}

// budgetFixture builds two structurally identical, call-disjoint callees
// ("zz" is reached first, "aa" second), each triggered under k=1. Because
// the procedures are identical and independent, each trigger charges
// exactly half the total relation count of an unlimited run.
func budgetFixture() (*ir.Program, *killgen.Taint) {
	prog := ir.NewProgram("main")
	body := func(p string) ir.Cmd {
		return &ir.Seq{Cmds: []ir.Cmd{
			&ir.Choice{Alts: []ir.Cmd{
				&ir.Prim{Kind: ir.Copy, Dst: p + "$y", Src: p + "$x"},
				&ir.Prim{Kind: ir.Nop},
			}},
			&ir.Prim{Kind: ir.Copy, Dst: p + "$z", Src: p + "$y"},
		}}
	}
	prog.Add(&ir.Proc{Name: "aa", Body: body("aa")})
	prog.Add(&ir.Proc{Name: "zz", Body: body("zz")})
	call := func(p string) []ir.Cmd {
		return []ir.Cmd{
			&ir.Loop{Body: &ir.Choice{Alts: []ir.Cmd{
				&ir.Prim{Kind: ir.Copy, Dst: p + "$x", Src: "t"},
				&ir.Prim{Kind: ir.Copy, Dst: p + "$x", Src: "c"},
			}}},
			&ir.Call{Callee: p},
		}
	}
	cmds := []ir.Cmd{
		&ir.Prim{Kind: ir.New, Dst: "t", Site: "src"},
		&ir.Prim{Kind: ir.New, Dst: "c", Site: "ok"},
	}
	cmds = append(cmds, call("zz")...)
	cmds = append(cmds, call("aa")...)
	prog.Add(&ir.Proc{Name: "main", Body: &ir.Seq{Cmds: cmds}})
	taint := killgen.NewTaint(prog, killgen.TaintConfig{Sources: []string{"src"}})
	return prog, taint
}

// TestPerTriggerBudget pins the budget model: MaxRelations bounds each
// run_bu invocation, so a budget that fits one trigger fits every trigger
// in both engines. Under the old cumulative accounting the synchronous
// engine failed the second trigger that the async engine completed.
func TestPerTriggerBudget(t *testing.T) {
	prog, taint := budgetFixture()
	an, err := core.NewAnalysis[string, string, string](
		core.Synchronized[string, string, string](taint), prog)
	if err != nil {
		t.Fatal(err)
	}
	init := taint.Initial()
	cfg := core.DefaultConfig()
	cfg.K = 1
	// Disable pruning so each trigger's relation count is independent of
	// ranking data and identical across engines and runs.
	cfg.Theta = core.Unlimited

	// Calibrate: an unlimited run triggers both procedures; the two are
	// identical and call-disjoint, so each charged exactly half the total.
	full := an.RunSwift(init, cfg)
	if !full.Completed() {
		t.Fatal(full.Err)
	}
	want := []string{"aa", "zz"}
	if len(full.Triggered) != 2 || full.Triggered[0] != want[0] || full.Triggered[1] != want[1] {
		t.Fatalf("calibration run triggered %v, want %v", full.Triggered, want)
	}
	perTrigger := full.BUStats.Relations / 2

	cfg.MaxRelations = perTrigger
	for name, run := range map[string]func() *core.Result[string, string, string]{
		"swift":       func() *core.Result[string, string, string] { return an.RunSwift(init, cfg) },
		"swift-async": func() *core.Result[string, string, string] { return an.RunSwiftAsync(init, cfg) },
	} {
		res := run()
		if !res.Completed() {
			t.Fatalf("%s: %v", name, res.Err)
		}
		if len(res.BUFailed) != 0 {
			t.Errorf("%s: triggers failed under a per-trigger budget that fits each: %v",
				name, res.BUFailed)
		}
		if len(res.Triggered) != 2 || res.Triggered[0] != want[0] || res.Triggered[1] != want[1] {
			t.Errorf("%s: Triggered = %v, want %v", name, res.Triggered, want)
		}
		if res.BUStats.Relations != full.BUStats.Relations {
			t.Errorf("%s: aggregated relations = %d, want %d",
				name, res.BUStats.Relations, full.BUStats.Relations)
		}
	}
}

// TestTriggeredSorted pins the Result.Triggered contract: sorted in both
// engines, regardless of completion order ("zz" completes first here).
func TestTriggeredSorted(t *testing.T) {
	prog, taint := budgetFixture()
	an, err := core.NewAnalysis[string, string, string](
		core.Synchronized[string, string, string](taint), prog)
	if err != nil {
		t.Fatal(err)
	}
	init := taint.Initial()
	cfg := core.DefaultConfig()
	cfg.K = 1
	sync := an.RunSwift(init, cfg)
	async := an.RunSwiftAsync(init, cfg)
	for name, res := range map[string]*core.Result[string, string, string]{
		"swift": sync, "swift-async": async,
	} {
		if !res.Completed() {
			t.Fatalf("%s: %v", name, res.Err)
		}
		for i := 1; i < len(res.Triggered); i++ {
			if res.Triggered[i-1] >= res.Triggered[i] {
				t.Errorf("%s: Triggered not sorted: %v", name, res.Triggered)
			}
		}
	}
	if len(sync.Triggered) != len(async.Triggered) {
		t.Fatalf("engines disagree on triggers: %v vs %v", sync.Triggered, async.Triggered)
	}
	for i := range sync.Triggered {
		if sync.Triggered[i] != async.Triggered[i] {
			t.Fatalf("engines disagree on triggers: %v vs %v", sync.Triggered, async.Triggered)
		}
	}
}
