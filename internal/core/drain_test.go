package core_test

// Regression tests for the pending-trigger drain: a trigger postponed while
// some frontier procedure has no top-down incoming state used to be retried
// only every 64th call event, so programs whose last call events arrive
// inside a retry window gap silently dropped the trigger and the run
// under-summarized. The fixtures here produce well under 64 call events, so
// without the final drain pass the trigger is lost.

import (
	"slices"
	"testing"

	"swift/internal/core"
	"swift/internal/ir"
	"swift/internal/killgen"
)

// drainClient builds a kill/gen client over facts {p, q, r} whose primitive
// commands are selected by the Dst tag of a Nop:
//
//	genp, genq  — generate the fact
//	norm        — kill p and q, generate r (collapses all states to {r})
//	block       — no cases: nothing flows past it (assume-false)
//
// Any other tag is the identity.
func drainClient() *killgen.Analysis {
	kg := killgen.NewAnalysis([]string{"p", "q", "r"})
	norm := kg.KillCase("p", "q")
	norm.Gen = kg.MakeBits("r")
	kg.SetSpec(func(c *ir.Prim) []killgen.Case {
		switch c.Dst {
		case "genp":
			return []killgen.Case{kg.GenCase("p")}
		case "genq":
			return []killgen.Case{kg.GenCase("q")}
		case "norm":
			return []killgen.Case{norm}
		case "block":
			return nil
		}
		return []killgen.Case{kg.IdentityCase()}
	})
	return kg
}

func tag(name string) *ir.Prim { return &ir.Prim{Kind: ir.Nop, Dst: name} }

// drainProgram delivers two distinct states to f (triggering it at k=1)
// before f's body — which collapses both to one state and then calls g —
// has run: at trigger time g has no incoming states, so the trigger is
// postponed. Only a handful of call events follow, far fewer than the 64
// needed for a periodic retry.
func drainProgram() *ir.Program {
	prog := ir.NewProgram("main")
	prog.Add(&ir.Proc{Name: "main", Body: &ir.Choice{Alts: []ir.Cmd{
		&ir.Seq{Cmds: []ir.Cmd{tag("genp"), &ir.Call{Callee: "f"}}},
		&ir.Seq{Cmds: []ir.Cmd{tag("genq"), &ir.Call{Callee: "f"}}},
	}}})
	prog.Add(&ir.Proc{Name: "f", Body: &ir.Seq{Cmds: []ir.Cmd{
		tag("norm"), &ir.Call{Callee: "g"},
	}}})
	prog.Add(&ir.Proc{Name: "g", Body: tag("noop")})
	return prog
}

// blockedProgram is drainProgram with an extra callee h of f that is
// unreachable top-down (guarded by "block"), so EntrySeen[h] stays empty
// forever and the trigger for f can only run forced.
func blockedProgram() *ir.Program {
	prog := ir.NewProgram("main")
	prog.Add(&ir.Proc{Name: "main", Body: &ir.Choice{Alts: []ir.Cmd{
		&ir.Seq{Cmds: []ir.Cmd{tag("genp"), &ir.Call{Callee: "f"}}},
		&ir.Seq{Cmds: []ir.Cmd{tag("genq"), &ir.Call{Callee: "f"}}},
	}}})
	prog.Add(&ir.Proc{Name: "f", Body: &ir.Choice{Alts: []ir.Cmd{
		&ir.Seq{Cmds: []ir.Cmd{tag("norm"), &ir.Call{Callee: "g"}}},
		&ir.Seq{Cmds: []ir.Cmd{tag("block"), &ir.Call{Callee: "h"}}},
	}}})
	prog.Add(&ir.Proc{Name: "g", Body: tag("noop")})
	prog.Add(&ir.Proc{Name: "h", Body: tag("noop")})
	return prog
}

func runDrainFixture(t *testing.T, prog *ir.Program, async bool) *core.Result[string, string, string] {
	t.Helper()
	kg := drainClient()
	var client core.Client[string, string, string] = kg
	if async {
		client = core.Synchronized[string, string, string](kg)
	}
	an, err := core.NewAnalysis[string, string, string](client, prog)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.K = 1
	init := kg.State(kg.MakeBits())
	if async {
		return an.RunSwiftAsync(init, cfg)
	}
	return an.RunSwift(init, cfg)
}

func checkDrained(t *testing.T, res *core.Result[string, string, string], wantBU []string) {
	t.Helper()
	if !res.Completed() {
		t.Fatalf("run failed: %v", res.Err)
	}
	if !slices.Equal(res.Triggered, []string{"f"}) {
		t.Errorf("Triggered = %v, want [f] (pending trigger dropped?)", res.Triggered)
	}
	for _, name := range wantBU {
		if _, ok := res.BU[name]; !ok {
			t.Errorf("no bottom-up summary for %s; BU has %d entries", name, len(res.BU))
		}
	}
}

func TestPendingTriggerDrained(t *testing.T) {
	res := runDrainFixture(t, drainProgram(), false)
	checkDrained(t, res, []string{"f", "g"})
}

// TestPendingTriggerForcedDrain covers the frontier-never-ready case: h is
// unreachable top-down, so the drain must force the trigger (pruning falls
// back to canonical order for procedures without ranking data).
func TestPendingTriggerForcedDrain(t *testing.T) {
	res := runDrainFixture(t, blockedProgram(), false)
	checkDrained(t, res, []string{"f", "g", "h"})
}

// TestAsyncPendingTriggerDrained is the asynchronous-engine analogue; it
// also pins the Result.Triggered fix (trigger procedures only, not every
// summarized frontier procedure).
func TestAsyncPendingTriggerDrained(t *testing.T) {
	res := runDrainFixture(t, drainProgram(), true)
	checkDrained(t, res, []string{"f", "g"})
}

func TestAsyncPendingTriggerForcedDrain(t *testing.T) {
	res := runDrainFixture(t, blockedProgram(), true)
	checkDrained(t, res, []string{"f", "g", "h"})
}

// TestSwiftDrainCoincidence checks Theorem 3.1 still holds on the drain
// fixtures: exit states match the pure top-down analysis.
func TestSwiftDrainCoincidence(t *testing.T) {
	for _, prog := range []*ir.Program{drainProgram(), blockedProgram()} {
		kg := drainClient()
		an, err := core.NewAnalysis[string, string, string](kg, prog)
		if err != nil {
			t.Fatal(err)
		}
		init := kg.State(kg.MakeBits())
		td := an.RunTD(init, core.TDConfig())
		cfg := core.DefaultConfig()
		cfg.K = 1
		sw := an.RunSwift(init, cfg)
		if !td.Completed() || !sw.Completed() {
			t.Fatalf("td err=%v swift err=%v", td.Err, sw.Err)
		}
		want := td.ExitStates("main", init)
		got := sw.ExitStates("main", init)
		if !slices.Equal(want, got) {
			t.Errorf("exit states: swift %v, td %v", got, want)
		}
	}
}
