package core_test

// Black-box tests of the framework solvers using the kill/gen client (the
// simplest exact Client implementation).

import (
	"errors"
	"testing"
	"time"

	"swift/internal/core"
	"swift/internal/ir"
	"swift/internal/killgen"
)

// fixture builds a program with recursion, loops and branching plus its
// taint client.
func fixture() (*ir.Program, *killgen.Taint) {
	prog := ir.NewProgram("main")
	// rec: recursive with a terminating path; propagates x through y.
	prog.Add(&ir.Proc{Name: "rec", Body: &ir.Seq{Cmds: []ir.Cmd{
		&ir.Prim{Kind: ir.Copy, Dst: "rec$y", Src: "rec$x"},
		&ir.Choice{Alts: []ir.Cmd{
			&ir.Seq{Cmds: []ir.Cmd{
				&ir.Prim{Kind: ir.Copy, Dst: "rec$x", Src: "rec$y"},
				&ir.Call{Callee: "rec"},
			}},
			&ir.Prim{Kind: ir.Nop},
		}},
	}}})
	prog.Add(&ir.Proc{Name: "main", Body: &ir.Seq{Cmds: []ir.Cmd{
		&ir.Prim{Kind: ir.New, Dst: "t", Site: "src"},
		&ir.Prim{Kind: ir.New, Dst: "c", Site: "ok"},
		&ir.Loop{Body: &ir.Choice{Alts: []ir.Cmd{
			&ir.Prim{Kind: ir.Copy, Dst: "rec$x", Src: "t"},
			&ir.Prim{Kind: ir.Copy, Dst: "rec$x", Src: "c"},
		}}},
		&ir.Call{Callee: "rec"},
		&ir.Prim{Kind: ir.TSCall, Dst: "rec$y", Method: "emit"},
	}}})
	taint := killgen.NewTaint(prog, killgen.TaintConfig{
		Sources: []string{"src"},
		Sinks:   []string{"emit"},
	})
	return prog, taint
}

func newAnalysis(t *testing.T) (*core.Analysis[string, string, string], *killgen.Taint) {
	t.Helper()
	prog, taint := fixture()
	an, err := core.NewAnalysis[string, string, string](taint, prog)
	if err != nil {
		t.Fatal(err)
	}
	return an, taint
}

func TestEnginesAgreeOnRecursiveProgram(t *testing.T) {
	an, taint := newAnalysis(t)
	init := taint.Initial()
	td := an.RunTD(init, core.TDConfig())
	if !td.Completed() {
		t.Fatalf("td: %v", td.Err)
	}
	bu := an.RunBU(init, core.BUConfig())
	if !bu.Completed() {
		t.Fatalf("bu: %v", bu.Err)
	}
	cfg := core.DefaultConfig()
	cfg.K = 1
	sw := an.RunSwift(init, cfg)
	if !sw.Completed() {
		t.Fatalf("swift: %v", sw.Err)
	}
	want := td.ExitStates("main", init)
	if len(want) == 0 {
		t.Fatal("td produced no exit states")
	}
	for name, res := range map[string]*core.Result[string, string, string]{"bu": bu, "swift": sw} {
		got := res.ExitStates("main", init)
		if len(got) != len(want) {
			t.Fatalf("%s: %d exit states, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s: exit[%d] = %s, want %s", name, i,
					taint.StateString(got[i]), taint.StateString(want[i]))
			}
		}
	}
	// The alert must be reachable (t flows into rec$x on some loop path).
	alerted := false
	for _, s := range want {
		if taint.Alerted(s) {
			alerted = true
		}
	}
	if !alerted {
		t.Error("expected an alerting exit state")
	}
}

func TestSwiftEngineLabels(t *testing.T) {
	an, taint := newAnalysis(t)
	init := taint.Initial()
	if got := an.RunTD(init, core.TDConfig()).Engine; got != "td" {
		t.Errorf("engine = %q", got)
	}
	if got := an.RunBU(init, core.BUConfig()).Engine; got != "bu" {
		t.Errorf("engine = %q", got)
	}
	if got := an.RunSwift(init, core.DefaultConfig()).Engine; got != "swift" {
		t.Errorf("engine = %q", got)
	}
}

func TestBudgetsAbort(t *testing.T) {
	an, taint := newAnalysis(t)
	init := taint.Initial()

	cfg := core.TDConfig()
	cfg.MaxPathEdges = 3
	if res := an.RunTD(init, cfg); !errors.Is(res.Err, core.ErrBudget) {
		t.Errorf("path-edge budget: err = %v", res.Err)
	}
	cfg = core.TDConfig()
	cfg.MaxTDSummaries = 1
	if res := an.RunTD(init, cfg); !errors.Is(res.Err, core.ErrBudget) {
		t.Errorf("summary budget: err = %v", res.Err)
	}
	cfg = core.BUConfig()
	cfg.MaxRelations = 2
	if res := an.RunBU(init, cfg); !errors.Is(res.Err, core.ErrBudget) {
		t.Errorf("relation budget: err = %v", res.Err)
	}
	cfg = core.BUConfig()
	cfg.MaxBUSteps = 2
	if res := an.RunBU(init, cfg); !errors.Is(res.Err, core.ErrBudget) {
		t.Errorf("step budget: err = %v", res.Err)
	}
	cfg = core.TDConfig()
	cfg.Timeout = time.Nanosecond
	res := an.RunTD(init, cfg)
	if res.Err != nil && !errors.Is(res.Err, core.ErrDeadline) {
		t.Errorf("deadline: err = %v", res.Err)
	}
}

// TestBudgetErrorsAreWrapped pins the error contract: the bottom-up solver
// returns budget failures wrapped with context, so drivers and callers must
// match them with errors.Is rather than direct comparison.
func TestBudgetErrorsAreWrapped(t *testing.T) {
	an, taint := newAnalysis(t)
	init := taint.Initial()
	cfg := core.BUConfig()
	cfg.MaxRelations = 2
	res := an.RunBU(init, cfg)
	if res.Err == nil {
		t.Fatal("expected a budget error")
	}
	if res.Err == core.ErrBudget {
		t.Fatal("bottom-up budget error should carry context, not the bare sentinel")
	}
	if !errors.Is(res.Err, core.ErrBudget) {
		t.Fatalf("wrapped error does not match sentinel: %v", res.Err)
	}
}

// TestSwiftBUFallback checks that a bottom-up budget failure in hybrid mode
// degrades to pure top-down rather than aborting.
func TestSwiftBUFallback(t *testing.T) {
	an, taint := newAnalysis(t)
	init := taint.Initial()
	cfg := core.DefaultConfig()
	cfg.K = 1
	cfg.MaxRelations = 1 // any trigger will fail
	res := an.RunSwift(init, cfg)
	if !res.Completed() {
		t.Fatalf("swift should complete by falling back: %v", res.Err)
	}
	if len(res.BUFailed) == 0 {
		t.Error("expected at least one failed bottom-up trigger")
	}
	td := an.RunTD(init, core.TDConfig())
	if got, want := res.TDSummaryTotal(), td.TDSummaryTotal(); got != want {
		t.Errorf("degraded swift computed %d summaries, td computes %d", got, want)
	}
}

// TestTriggerRespectsK checks that no procedure with ≤ k distinct incoming
// states is summarized.
func TestTriggerRespectsK(t *testing.T) {
	an, taint := newAnalysis(t)
	init := taint.Initial()
	cfg := core.DefaultConfig()
	cfg.K = core.Unlimited
	res := an.RunSwift(init, cfg)
	if len(res.BU) != 0 || len(res.Triggered) != 0 {
		t.Errorf("k=∞ must never trigger; got %v", res.Triggered)
	}
	cfg.K = 1
	res = an.RunSwift(init, cfg)
	for _, f := range res.Triggered {
		if n := len(res.TD.EntryStates(f)); n <= 1 {
			t.Errorf("%s triggered with %d entry states at k=1", f, n)
		}
	}
}

// TestResultAccessors covers the small reporting helpers.
func TestResultAccessors(t *testing.T) {
	an, taint := newAnalysis(t)
	init := taint.Initial()
	cfg := core.DefaultConfig()
	cfg.K = 1
	res := an.RunSwift(init, cfg)
	if res.TDSummaryTotal() <= 0 || res.TD.Steps <= 0 {
		t.Error("empty counters")
	}
	if len(res.BU) == 0 {
		t.Error("no procedures were summarized despite triggers")
	}
	// At θ=1 both guard cases of this program are common, so the pruned
	// summary may legitimately keep zero relations with Σ covering both;
	// either way the counters must be consistent.
	if res.BUSummaryTotal() < 0 || res.BUStats.Relations <= 0 {
		t.Error("inconsistent bottom-up counters")
	}
	states := res.TD.AllStates()
	if len(states) == 0 {
		t.Error("AllStates empty")
	}
	if got := res.TD.NodeStatesIn(0, init); len(got) != 1 || got[0] != init {
		t.Errorf("entry node states = %v", got)
	}
}
