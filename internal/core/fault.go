package core

// This file is the fault-injection and panic-containment layer of the
// engines. The paper's evaluation treats resource exhaustion as a
// first-class outcome (the "timeout" table entries), and Theorem 3.1
// guarantees the hybrid driver may always fall back to analyzing a callee
// top-down when no usable bottom-up summary exists — which makes *any*
// per-trigger failure (budget, panic, injected error) safely degradable.
// The FaultPlan below turns every such degradation path into a
// deterministic, on-demand event so the tests can walk all of them, and
// the containment helpers guarantee a panicking client surfaces as a
// wrapped Result.Err (or a per-trigger fallback) instead of crashing the
// process.

import (
	"cmp"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"swift/internal/ir"
)

// Failure sentinels of the containment layer, matched with errors.Is.
var (
	// ErrClientPanic indicates a client operation panicked; the panic was
	// recovered by the engine and converted into this error (engine-level)
	// or into a per-trigger BUFailed fallback (bottom-up workers).
	ErrClientPanic = errors.New("core: client operation panicked")
	// ErrClientFault indicates an injected client-operation failure (the
	// FaultErr kind). Real clients have no error returns, so the fault
	// layer models "the operation failed" as a panic carrying this error;
	// the containment layer surfaces it verbatim.
	ErrClientFault = errors.New("core: injected client fault")
	// ErrTraceMismatch indicates a replayed trace does not correspond to
	// the program, configuration or client behaviour of this run.
	ErrTraceMismatch = errors.New("core: trace does not match the run")
)

// FaultKind selects what an injected fault does to the client operation it
// fires on.
type FaultKind uint8

const (
	// FaultNone is the zero value; it never fires.
	FaultNone FaultKind = iota
	// FaultErr fails the operation: the run observes an error wrapping
	// ErrClientFault. Inside a bottom-up trigger this is a fatal worker
	// error (the run aborts with it); on the top-down path it becomes
	// Result.Err.
	FaultErr
	// FaultPanic panics with a non-error value, exercising the recover
	// paths: per-trigger panics degrade to a bounded retry and then a
	// BUFailed top-down fallback, engine-level panics become Result.Err
	// wrapping ErrClientPanic.
	FaultPanic
	// FaultSleep stalls the operation for Fault.Sleep, inducing wall-clock
	// deadline trips when Config.Timeout is armed.
	FaultSleep
	// FaultBudget declares the enclosing budget exhausted: inside a
	// bottom-up trigger the trigger falls back to top-down (BUFailed),
	// on the top-down path the run stops with ErrBudget — exactly the
	// paper's "did not finish" outcome, forced at one operation.
	FaultBudget
)

// String names the kind for messages and table output.
func (k FaultKind) String() string {
	switch k {
	case FaultErr:
		return "err"
	case FaultPanic:
		return "panic"
	case FaultSleep:
		return "sleep"
	case FaultBudget:
		return "budget"
	}
	return "none"
}

// Fault is one scheduled client-operation fault.
type Fault struct {
	Kind FaultKind
	// Sleep is the stall duration of a FaultSleep (default 1ms).
	Sleep time.Duration
}

// FaultPlan is a deterministic schedule of injected faults for one engine
// run. Engines arm it through Config.Fault: every client operation
// (Trans, RTrans, RComp, …) is counted by a single run-wide operation
// counter, and the plan decides per index whether a fault fires. For the
// deterministic engines the operation stream is identical on every run, so
// a plan pins a fault to one reproducible program point; under the
// asynchronous engine the indices workers observe depend on scheduling,
// which is fine for crashworthiness sweeps (the schedule is still seeded
// and bounded).
//
// The operation counter lives in the plan, so a plan must not be shared by
// two concurrent runs; reusing it across sequential runs continues the
// stream unless Reset is called. The zero plan injects nothing and merely
// counts — useful for sizing sweeps via OpCount.
type FaultPlan struct {
	// Ops schedules explicit faults by operation index (0-based).
	Ops map[int64]Fault
	// Every, with Seed and Kinds, arms a pseudo-random periodic schedule:
	// each operation index fires with probability 1/Every, with the kind
	// drawn from Kinds (default: FaultErr and FaultPanic alternating by
	// hash). Zero disables the periodic schedule.
	Every int64
	// Seed makes the periodic schedule reproducible.
	Seed uint64
	// Kinds are the fault kinds the periodic schedule draws from.
	Kinds []FaultKind
	// TriggerBudget forces ErrBudget for every bottom-up invocation whose
	// frontier contains a listed procedure — the "this trigger exhausts
	// its budget" outcome, keyed by procedure name so the synchronous and
	// asynchronous engines agree on which triggers fail.
	TriggerBudget map[string]bool

	n atomic.Int64
}

// SeededFaultPlan returns a periodic plan injecting roughly one fault per
// every operations, drawn deterministically from seed.
func SeededFaultPlan(seed uint64, every int64, kinds ...FaultKind) *FaultPlan {
	return &FaultPlan{Every: every, Seed: seed, Kinds: kinds}
}

// OpCount returns how many client operations the plan has observed since
// construction or the last Reset.
func (p *FaultPlan) OpCount() int64 { return p.n.Load() }

// Reset rewinds the operation counter so the plan can be reused for a
// fresh run.
func (p *FaultPlan) Reset() { p.n.Store(0) }

// Fork returns a plan with the same schedule (Ops, periodic parameters and
// TriggerBudget, all shared read-only) but a fresh operation counter, so
// concurrent runs — one per slice in RunSliced — can each count their own
// operation stream. Per-slice op indices therefore start at 0 in every
// slice: an Ops entry for index k fires at the k-th client operation of
// EACH slice, not of the merged run. Fork of nil is nil.
func (p *FaultPlan) Fork() *FaultPlan {
	if p == nil {
		return nil
	}
	return &FaultPlan{
		Ops:           p.Ops,
		Every:         p.Every,
		Seed:          p.Seed,
		Kinds:         p.Kinds,
		TriggerBudget: p.TriggerBudget,
	}
}

// splitmix64 is the SplitMix64 finalizer; cheap, stateless, and good
// enough to decorrelate consecutive operation indices.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fault decides whether a fault fires at operation index k.
func (p *FaultPlan) fault(k int64) (Fault, bool) {
	if f, ok := p.Ops[k]; ok && f.Kind != FaultNone {
		return f, true
	}
	if p.Every > 0 {
		h := splitmix64(p.Seed ^ uint64(k))
		if h%uint64(p.Every) == 0 {
			kinds := p.Kinds
			if len(kinds) == 0 {
				kinds = []FaultKind{FaultErr, FaultPanic}
			}
			return Fault{Kind: kinds[(h>>32)%uint64(len(kinds))]}, true
		}
	}
	return Fault{}, false
}

// triggerBudgetFault reports whether the plan forces budget exhaustion for
// a bottom-up invocation over frontier f, naming the matched procedure.
func (p *FaultPlan) triggerBudgetFault(f []string) (string, bool) {
	if p == nil || len(p.TriggerBudget) == 0 {
		return "", false
	}
	for _, name := range f {
		if p.TriggerBudget[name] {
			return name, true
		}
	}
	return "", false
}

// faultError is a panic payload carrying an error the containment layer
// surfaces verbatim (rather than wrapping as ErrClientPanic). The fault
// client uses it to model failed operations and forced budget exhaustion
// through the Client interface, which has no error returns.
type faultError struct{ err error }

// recoveredError converts a recovered panic value into the run's error.
func recoveredError(r any) error {
	if fe, ok := r.(faultError); ok {
		return fe.err
	}
	return fmt.Errorf("%w: %v", ErrClientPanic, r)
}

// contain is the engine entry points' deferred panic barrier: it converts
// an escaping panic — a client bug or an injected fault on the top-down
// path — into the run's error instead of crashing the process.
func contain(errp *error) {
	if r := recover(); r != nil {
		*errp = recoveredError(r)
	}
}

// effectiveClient wraps the client with the fault layer when a plan is
// armed. The wrapper intentionally does not forward the TransCompiler
// capability: compiled transfers would bypass operation counting, and a
// fault sweep must see every transfer application.
func effectiveClient[S cmp.Ordered, R cmp.Ordered, P cmp.Ordered](
	c Client[S, R, P], config Config,
) Client[S, R, P] {
	if config.Fault == nil {
		return c
	}
	return &faultClient[S, R, P]{inner: c, plan: config.Fault}
}

// faultClient intercepts every client operation, counts it against the
// plan's run-wide operation counter, and fires the scheduled fault (if
// any) before delegating. It adds no locking of its own — the counter is
// atomic — so it is exactly as concurrency-safe as the client it wraps,
// and it is always installed after Synchronized has done its work.
type faultClient[S cmp.Ordered, R cmp.Ordered, P cmp.Ordered] struct {
	inner Client[S, R, P]
	plan  *FaultPlan
}

// op charges one operation and fires a scheduled fault. Faults are
// delivered as panics — the only failure channel the Client interface has
// — and the engines' containment converts them back into errors.
func (f *faultClient[S, R, P]) op(name string) {
	k := f.plan.n.Add(1) - 1
	ft, ok := f.plan.fault(k)
	if !ok {
		return
	}
	switch ft.Kind {
	case FaultSleep:
		d := ft.Sleep
		if d <= 0 {
			d = time.Millisecond
		}
		time.Sleep(d)
	case FaultErr:
		panic(faultError{fmt.Errorf("%w: %s at client op %d", ErrClientFault, name, k)})
	case FaultBudget:
		panic(faultError{fmt.Errorf("core: injected budget exhaustion: %s at client op %d: %w", name, k, ErrBudget)})
	case FaultPanic:
		panic(fmt.Sprintf("core: injected panic: %s at client op %d", name, k))
	}
}

func (f *faultClient[S, R, P]) Trans(c *ir.Prim, s S) []S {
	f.op("Trans")
	return f.inner.Trans(c, s)
}

func (f *faultClient[S, R, P]) Identity() R {
	f.op("Identity")
	return f.inner.Identity()
}

func (f *faultClient[S, R, P]) RTrans(c *ir.Prim, r R) []R {
	f.op("RTrans")
	return f.inner.RTrans(c, r)
}

func (f *faultClient[S, R, P]) RComp(r1, r2 R) []R {
	f.op("RComp")
	return f.inner.RComp(r1, r2)
}

func (f *faultClient[S, R, P]) Applies(r R, s S) bool {
	f.op("Applies")
	return f.inner.Applies(r, s)
}

func (f *faultClient[S, R, P]) Apply(r R, s S) []S {
	f.op("Apply")
	return f.inner.Apply(r, s)
}

func (f *faultClient[S, R, P]) PreOf(r R) P {
	f.op("PreOf")
	return f.inner.PreOf(r)
}

func (f *faultClient[S, R, P]) PreHolds(pre P, s S) bool {
	f.op("PreHolds")
	return f.inner.PreHolds(pre, s)
}

func (f *faultClient[S, R, P]) PreImplies(p, q P) bool {
	f.op("PreImplies")
	return f.inner.PreImplies(p, q)
}

func (f *faultClient[S, R, P]) WPre(r R, post P) []P {
	f.op("WPre")
	return f.inner.WPre(r, post)
}

func (f *faultClient[S, R, P]) Reduce(rels []R) []R {
	f.op("Reduce")
	return f.inner.Reduce(rels)
}

// safeRunBU is runBU behind a panic barrier: a client panic inside a
// bottom-up invocation becomes an error wrapping ErrClientPanic, which the
// hybrid drivers degrade to a bounded retry and then a BUFailed top-down
// fallback (Theorem 3.1 makes the fallback safe). Injected faultError
// payloads surface their carried error instead.
func safeRunBU[S cmp.Ordered, R cmp.Ordered, P cmp.Ordered](
	client Client[S, R, P],
	prog *ir.Program,
	config Config,
	theta int,
	f []string,
	preEta map[string]RSet[R, P],
	rank map[string]multiset[S],
	stats *BUStats,
) (eta map[string]RSet[R, P], err error) {
	defer func() {
		if r := recover(); r != nil {
			eta, err = nil, recoveredError(r)
		}
	}()
	return runBU(client, prog, config, theta, f, preEta, rank, stats)
}

// panicRetryLimit bounds how many times a hybrid driver re-runs a trigger
// whose bottom-up invocation panicked before giving up and falling back to
// top-down analysis for it. One retry distinguishes transient faults (an
// injected one-shot fault, a data race the retry escapes) from a
// deterministic client bug, without risking unbounded re-execution.
const panicRetryLimit = 1
