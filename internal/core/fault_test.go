package core_test

// Crashworthiness tests of the fault-injection layer: a fault at any
// client operation must never crash, deadlock or leak a goroutine — it
// either degrades to a per-trigger top-down fallback or surfaces as a
// properly wrapped Result.Err. The sweep walks every operation index of a
// small fixture across all four engines.

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"swift/internal/core"
	"swift/internal/ir"
)

// fingerprintResult renders every deterministic field of a result (maps
// print in sorted key order), so byte-equal fingerprints mean byte-equal
// result tables. Elapsed is excluded on purpose.
func fingerprintResult(res *core.Result[string, string, string], entry, init string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "engine=%s err=%v\n", res.Engine, res.Err)
	if res.TD != nil {
		fmt.Fprintf(&b, "td steps=%d pathedges=%d summaries=%d\n",
			res.TD.Steps, res.TD.NumPathEdges, res.TD.NumSummaries)
		fmt.Fprintf(&b, "exit=%v\n", res.ExitStates(entry, init))
	}
	fmt.Fprintf(&b, "bustats=%+v\n", res.BUStats)
	fmt.Fprintf(&b, "calls bu=%d td=%d sigma=%d panics=%d resum=%d\n",
		res.CallsViaBU, res.CallsViaTD, res.CallsInSigma, res.ClientPanics, res.Resummarized)
	fmt.Fprintf(&b, "triggered=%v failed=%v\n", res.Triggered, res.BUFailed)
	names := make([]string, 0, len(res.BU))
	for name := range res.BU {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rs := res.BU[name]
		fmt.Fprintf(&b, "bu %s rels=%v sigma=%v\n", name, rs.Rels, rs.Sigma)
	}
	return b.String()
}

// checkNoLeakedGoroutines waits for the goroutine count to settle back to
// the baseline: every engine guarantees no worker outlives the run.
func checkNoLeakedGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d at start, %d after runs\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// sweepEngine describes one engine entry point over the drain fixture.
type sweepEngine struct {
	name string
	run  func(t *testing.T, prog *ir.Program, cfg core.Config) *core.Result[string, string, string]
}

func sweepEngines() []sweepEngine {
	build := func(t *testing.T, prog *ir.Program, async bool) (*core.Analysis[string, string, string], string) {
		t.Helper()
		kg := drainClient()
		var client core.Client[string, string, string] = kg
		if async {
			client = core.Synchronized[string, string, string](kg)
		}
		an, err := core.NewAnalysis[string, string, string](client, prog)
		if err != nil {
			t.Fatal(err)
		}
		return an, kg.State(kg.MakeBits())
	}
	return []sweepEngine{
		{"td", func(t *testing.T, prog *ir.Program, cfg core.Config) *core.Result[string, string, string] {
			an, init := build(t, prog, false)
			cfg.K = core.Unlimited
			return an.RunTD(init, cfg)
		}},
		{"bu", func(t *testing.T, prog *ir.Program, cfg core.Config) *core.Result[string, string, string] {
			an, init := build(t, prog, false)
			cfg.Theta = core.Unlimited
			return an.RunBU(init, cfg)
		}},
		{"swift", func(t *testing.T, prog *ir.Program, cfg core.Config) *core.Result[string, string, string] {
			an, init := build(t, prog, false)
			return an.RunSwift(init, cfg)
		}},
		{"swift-async", func(t *testing.T, prog *ir.Program, cfg core.Config) *core.Result[string, string, string] {
			an, init := build(t, prog, true)
			return an.RunSwiftAsync(init, cfg)
		}},
	}
}

func sweepConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.K = 1
	return cfg
}

// TestFaultSweepAllEngines injects one fault at every operation index of
// every engine's operation stream, for each fault kind, and asserts the
// run always terminates with either a clean degradation or a properly
// wrapped error. The blocked program exercises the forced-drain path too.
func TestFaultSweepAllEngines(t *testing.T) {
	before := runtime.NumGoroutine()
	kinds := []core.FaultKind{core.FaultErr, core.FaultPanic, core.FaultBudget}
	for _, prog := range []func() *ir.Program{drainProgram, blockedProgram} {
		for _, eng := range sweepEngines() {
			// Size the stream with a counting-only plan.
			plan := &core.FaultPlan{}
			cfg := sweepConfig()
			cfg.Fault = plan
			res := eng.run(t, prog(), cfg)
			if res.Err != nil {
				t.Fatalf("%s: counting run failed: %v", eng.name, res.Err)
			}
			n := plan.OpCount()
			if n == 0 {
				t.Fatalf("%s: no client operations counted", eng.name)
			}
			stride := int64(1)
			if testing.Short() {
				stride = n/64 + 1
			}
			for _, kind := range kinds {
				for i := int64(0); i < n; i += stride {
					cfg := sweepConfig()
					cfg.Fault = &core.FaultPlan{Ops: map[int64]core.Fault{i: {Kind: kind}}}
					res := eng.run(t, prog(), cfg)
					if res.Err == nil {
						continue // degraded cleanly (or the index was never reached)
					}
					if !errors.Is(res.Err, core.ErrClientFault) &&
						!errors.Is(res.Err, core.ErrClientPanic) &&
						!errors.Is(res.Err, core.ErrBudget) &&
						!errors.Is(res.Err, core.ErrDeadline) {
						t.Fatalf("%s: %s at op %d: unclassified error %v",
							eng.name, kind, i, res.Err)
					}
					switch res.Err {
					case core.ErrClientFault, core.ErrClientPanic, core.ErrBudget, core.ErrDeadline:
						t.Fatalf("%s: %s at op %d: bare sentinel without context", eng.name, kind, i)
					}
				}
			}
		}
	}
	checkNoLeakedGoroutines(t, before)
}

// TestFaultEmptyPlanByteIdentical pins the zero-overhead contract: arming
// an empty plan changes nothing about a deterministic engine's result.
func TestFaultEmptyPlanByteIdentical(t *testing.T) {
	kg := drainClient()
	init := kg.State(kg.MakeBits()) // state encodings are instance-independent
	for _, eng := range sweepEngines() {
		if eng.name == "swift-async" {
			continue // live async runs are timing-dependent either way
		}
		plain := eng.run(t, drainProgram(), sweepConfig())
		cfg := sweepConfig()
		cfg.Fault = &core.FaultPlan{}
		armed := eng.run(t, drainProgram(), cfg)
		got := fingerprintResult(armed, "main", init)
		want := fingerprintResult(plain, "main", init)
		if got != want {
			t.Errorf("%s: empty plan changed the result\n--- armed ---\n%s--- plain ---\n%s",
				eng.name, got, want)
		}
	}
}

// TestFaultPanicSurfacesWrapped pins the acceptance contract for
// engine-level panics: a client panic on the top-down path becomes a
// wrapped Result.Err instead of crashing the process.
func TestFaultPanicSurfacesWrapped(t *testing.T) {
	for _, eng := range sweepEngines() {
		cfg := sweepConfig()
		cfg.Fault = &core.FaultPlan{Ops: map[int64]core.Fault{0: {Kind: core.FaultPanic}}}
		res := eng.run(t, drainProgram(), cfg)
		if !errors.Is(res.Err, core.ErrClientPanic) {
			t.Errorf("%s: op-0 panic: err = %v, want wrapped ErrClientPanic", eng.name, res.Err)
		}
	}
}

// TestFaultErrSurfacesWrapped is the analogue for injected operation
// failures.
func TestFaultErrSurfacesWrapped(t *testing.T) {
	for _, eng := range sweepEngines() {
		cfg := sweepConfig()
		cfg.Fault = &core.FaultPlan{Ops: map[int64]core.Fault{0: {Kind: core.FaultErr}}}
		res := eng.run(t, drainProgram(), cfg)
		if !errors.Is(res.Err, core.ErrClientFault) {
			t.Errorf("%s: op-0 fault: err = %v, want wrapped ErrClientFault", eng.name, res.Err)
		}
	}
}

// TestFaultTriggerBudgetFallsBack forces budget exhaustion for one
// trigger: both hybrid engines must degrade it to BUFailed and complete
// with the top-down fallback (Theorem 3.1), not abort.
func TestFaultTriggerBudgetFallsBack(t *testing.T) {
	before := runtime.NumGoroutine()
	for _, eng := range sweepEngines() {
		if eng.name == "td" || eng.name == "bu" {
			continue
		}
		cfg := sweepConfig()
		cfg.Fault = &core.FaultPlan{TriggerBudget: map[string]bool{"f": true}}
		res := eng.run(t, drainProgram(), cfg)
		if res.Err != nil {
			t.Fatalf("%s: should complete by falling back: %v", eng.name, res.Err)
		}
		if !res.BUFailed["f"] {
			t.Errorf("%s: BUFailed = %v, want f marked", eng.name, res.BUFailed)
		}
		if len(res.Triggered) != 0 {
			t.Errorf("%s: Triggered = %v, want none", eng.name, res.Triggered)
		}
	}
	checkNoLeakedGoroutines(t, before)
}

// rtransPanicClient panics on every RTrans call. RTrans is only reached
// from inside run_bu, so every bottom-up trigger panics on every attempt —
// the worst case for the containment layer's retry logic.
type rtransPanicClient struct {
	core.Client[string, string, string]
}

func (c *rtransPanicClient) RTrans(*ir.Prim, string) []string {
	panic("rtransPanicClient: injected client bug")
}

// TestClientPanicInTriggerDegrades pins the acceptance contract for
// per-trigger panics: a client that panics inside every bottom-up
// invocation degrades each trigger to BUFailed after a bounded retry, the
// run completes, and the exit states match the pure top-down analysis.
func TestClientPanicInTriggerDegrades(t *testing.T) {
	before := runtime.NumGoroutine()
	prog := drainProgram()
	kg := drainClient()
	init := kg.State(kg.MakeBits())
	tdAn, err := core.NewAnalysis[string, string, string](kg, prog)
	if err != nil {
		t.Fatal(err)
	}
	td := tdAn.RunTD(init, core.TDConfig())
	if !td.Completed() {
		t.Fatalf("td: %v", td.Err)
	}
	want := td.ExitStates("main", init)

	for _, async := range []bool{false, true} {
		var client core.Client[string, string, string] = &rtransPanicClient{Client: drainClient()}
		if async {
			client = core.Synchronized[string, string, string](client)
		}
		an, err := core.NewAnalysis[string, string, string](client, prog)
		if err != nil {
			t.Fatal(err)
		}
		cfg := sweepConfig()
		var res *core.Result[string, string, string]
		if async {
			res = an.RunSwiftAsync(init, cfg)
		} else {
			res = an.RunSwift(init, cfg)
		}
		name := map[bool]string{false: "swift", true: "swift-async"}[async]
		if res.Err != nil {
			t.Fatalf("%s: should complete by falling back: %v", name, res.Err)
		}
		if res.ClientPanics < 2 {
			t.Errorf("%s: ClientPanics = %d, want >= 2 (attempt + bounded retry)", name, res.ClientPanics)
		}
		if !res.BUFailed["f"] {
			t.Errorf("%s: BUFailed = %v, want f marked", name, res.BUFailed)
		}
		got := res.ExitStates("main", init)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("%s: exit states %v, td %v", name, got, want)
		}
	}
	checkNoLeakedGoroutines(t, before)
}

// TestFaultSeededPlanTerminates smokes the periodic schedule on the larger
// recursive fixture: a seeded storm of mixed faults must still terminate
// every engine with a classified outcome.
func TestFaultSeededPlanTerminates(t *testing.T) {
	before := runtime.NumGoroutine()
	an, taint := newAnalysis(t)
	init := taint.Initial()
	for seed := uint64(1); seed <= 8; seed++ {
		plan := core.SeededFaultPlan(seed, 200,
			core.FaultErr, core.FaultPanic, core.FaultBudget, core.FaultSleep)
		cfg := core.DefaultConfig()
		cfg.K = 1
		cfg.Fault = plan
		for _, res := range []*core.Result[string, string, string]{
			an.RunTD(init, cfg),
			an.RunSwift(init, cfg),
		} {
			if res.Err == nil {
				continue
			}
			if !errors.Is(res.Err, core.ErrClientFault) &&
				!errors.Is(res.Err, core.ErrClientPanic) &&
				!errors.Is(res.Err, core.ErrBudget) &&
				!errors.Is(res.Err, core.ErrDeadline) {
				t.Fatalf("seed %d: unclassified error %v", seed, res.Err)
			}
		}
	}
	checkNoLeakedGoroutines(t, before)
}
