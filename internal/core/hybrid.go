package core

import (
	"cmp"
	"errors"
	"fmt"
	"time"

	"swift/internal/ir"
)

// Analysis binds a client to a program, caching the program's control-flow
// graph so the three engines (top-down, bottom-up, hybrid) can be run and
// compared on the same input.
type Analysis[S cmp.Ordered, R cmp.Ordered, P cmp.Ordered] struct {
	Client Client[S, R, P]
	Prog   *ir.Program
	CFG    *ir.CFG

	// rawView and compView are the two solver-facing traversal overlays of
	// CFG (see ir.RawView/ir.CompressedView), built lazily and shared by
	// every run on this Analysis. Which engines may use the compressed view
	// is a correctness question, not a tuning one — see tdView.
	rawView  *ir.CFGView
	compView *ir.CFGView

	// rawStruct and compStruct are the loop-structure indexes of the two
	// views, built lazily for the sparse scheduler. Pure graph structure,
	// so — like the views — one instance is shared by every run, including
	// concurrent sliced runs (RunSliceSet pre-builds them).
	rawStruct  *ir.StructIndex
	compStruct *ir.StructIndex

	// Warm, when non-nil, is consulted before every run_bu invocation and
	// offered every deterministic outcome (see warm.go). Sliced runs do not
	// inherit it: RunSliced's per-slice analyses are built without it, as
	// slice clients produce summaries in a different ID space.
	Warm SummarySource[R, P]
}

// NewAnalysis validates the program, builds its CFG and returns an Analysis
// ready to run.
func NewAnalysis[S cmp.Ordered, R cmp.Ordered, P cmp.Ordered](
	client Client[S, R, P], prog *ir.Program,
) (*Analysis[S, R, P], error) {
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &Analysis[S, R, P]{Client: client, Prog: prog, CFG: ir.BuildCFG(prog)}, nil
}

// raw returns the raw traversal view, building it on first use. Engine
// entry points run on the caller's goroutine, so no locking is needed.
func (a *Analysis[S, R, P]) raw() *ir.CFGView {
	if a.rawView == nil {
		a.rawView = ir.RawView(a.CFG)
	}
	return a.rawView
}

// tdView returns the traversal view for the order-insensitive solvers. At
// completion, RunTD and RunBU's instantiation pass compute closure
// properties — fact sets, summary tables, entry multiplicities and the
// original-graph-unit counters are independent of worklist pop order — so
// they default to the compressed superblock view. The hybrid engines must
// NOT use it: their trigger decisions sample EntrySeen mid-run, where pop
// order is observable (see DESIGN.md), so they always take the raw view.
func (a *Analysis[S, R, P]) tdView(config Config) *ir.CFGView {
	if config.RawCFG {
		return a.raw()
	}
	if a.compView == nil {
		a.compView = ir.CompressedView(a.CFG)
	}
	return a.compView
}

// sparseIndex returns the structure index matching tdView(config), or nil
// when the sparse scheduler is disabled (Config.NoSparse). Only the
// order-insensitive solvers call it; the hybrids always pass newTDSolver a
// nil index (see RunSwift).
func (a *Analysis[S, R, P]) sparseIndex(config Config) *ir.StructIndex {
	if config.NoSparse {
		return nil
	}
	if config.RawCFG {
		if a.rawStruct == nil {
			a.rawStruct = ir.BuildStructIndex(a.raw())
		}
		return a.rawStruct
	}
	if a.compStruct == nil {
		a.compStruct = ir.BuildStructIndex(a.tdView(config))
	}
	return a.compStruct
}

// Result is the outcome of one engine run.
type Result[S cmp.Ordered, R cmp.Ordered, P cmp.Ordered] struct {
	// Engine names the solver that produced the result: "td", "bu" or
	// "swift".
	Engine string
	// TD holds the tabulation output (path edges, summaries, incoming-state
	// multisets). For the bottom-up baseline it holds the instantiation
	// pass's output.
	TD *TDResult[S]
	// BU maps procedures to their bottom-up summaries (empty for pure TD).
	BU map[string]RSet[R, P]
	// BUFailed marks procedures whose bottom-up analysis hit its budget in
	// hybrid mode (the driver falls back to top-down for them).
	BUFailed map[string]bool
	// Triggered lists the trigger procedures whose run_bu completed
	// successfully, sorted and deduplicated. Both hybrid engines produce
	// it in this form, so table code can diff the field across engines.
	Triggered []string
	// BUStats aggregates bottom-up work counters.
	BUStats BUStats
	// CallsViaBU and CallsViaTD count call-site events answered by
	// bottom-up summaries versus handled by tabulation. Of the CallsViaTD
	// events in hybrid mode, CallsInSigma were fallbacks forced by the
	// incoming state being in the summary's ignored set Σ (the rest had no
	// summary yet).
	CallsViaBU   int
	CallsViaTD   int
	CallsInSigma int
	// Resummarized counts adaptive summary recomputations (see
	// Config.Resummarize).
	Resummarized int
	// ClientPanics counts client panics contained inside bottom-up
	// triggers (each is retried up to panicRetryLimit times, then the
	// trigger degrades to a BUFailed top-down fallback). Engine-level
	// panics are not counted here; they surface in Err.
	ClientPanics int
	// Elapsed is wall-clock duration of the run.
	Elapsed time.Duration
	// Err is nil if the run completed, or a wrapped
	// ErrBudget/ErrDeadline/ErrClientPanic/ErrClientFault if the engine
	// did not finish (the paper's "timeout" entries, plus the fault
	// model's containment outcomes). Match with errors.Is.
	Err error
}

// Completed reports whether the engine finished within its budgets.
func (r *Result[S, R, P]) Completed() bool { return r.Err == nil }

// WorkUnits returns a machine-independent cost measure for the run: the sum
// of the solvers' step and materialization counters. For the deterministic
// engines (td, bu, swift) it is identical across repeated runs and across
// hosts, which is what lets the benchmark harness render comparable cost
// columns regardless of scheduling; wall-clock stays in Elapsed. For
// swift-async the counters are timing-dependent, so WorkUnits is too.
func (r *Result[S, R, P]) WorkUnits() int {
	n := r.BUStats.Steps + r.BUStats.Relations
	if r.TD != nil {
		n += r.TD.Steps + r.TD.NumPathEdges
	}
	return n
}

// TDSummaryTotal returns the total number of top-down summaries.
func (r *Result[S, R, P]) TDSummaryTotal() int {
	if r.TD == nil {
		return 0
	}
	return r.TD.NumSummaries
}

// BUSummaryTotal returns the total number of bottom-up summaries (relational
// cases across all procedures).
func (r *Result[S, R, P]) BUSummaryTotal() int {
	n := 0
	for _, rs := range r.BU {
		n += rs.Size()
	}
	return n
}

// ExitStates returns the analysis result at the exit of the entry procedure
// for the given initial state: the abstract states the whole program may end
// in. All three engines agree on this set when they complete (Theorem 3.1).
func (r *Result[S, R, P]) ExitStates(entry string, initial S) []S {
	if r.TD == nil {
		return nil
	}
	return r.TD.Summaries[entry][initial]
}

// RunTD runs the conventional top-down baseline.
func (a *Analysis[S, R, P]) RunTD(initial S, config Config) *Result[S, R, P] {
	start := time.Now()
	client := effectiveClient(a.Client, config)
	t := newTDSolver(client, a.tdView(config), config, nil, a.sparseIndex(config))
	res := &Result[S, R, P]{Engine: "td", TD: t.res}
	err := func() (err error) {
		defer contain(&err)
		if err := t.seed(initial); err != nil {
			return err
		}
		return t.run()
	}()
	res.Elapsed = time.Since(start)
	res.Err = err
	return res
}

// RunBU runs the conventional bottom-up baseline: relational summaries with
// no pruning for every procedure reachable from the entry, followed by a
// top-down instantiation pass that answers every call from those summaries.
func (a *Analysis[S, R, P]) RunBU(initial S, config Config) *Result[S, R, P] {
	start := time.Now()
	res := &Result[S, R, P]{Engine: "bu", BU: map[string]RSet[R, P]{}}
	client := effectiveClient(a.Client, config)
	err := func() (err error) {
		defer contain(&err)
		f := a.Prog.Reachable(a.Prog.Entry)
		// The whole bottom-up phase is one run_bu invocation over the entry
		// closure, so it warm-starts as a single outcome keyed on the entry.
		// Failed outcomes are not reused here: a budget abort is this
		// engine's terminal result, so reproducing it saves nothing and
		// would fabricate BUStats-free failures.
		var eta map[string]RSet[R, P]
		if a.Warm != nil {
			if out, ok := a.Warm.Lookup(a.Prog.Entry, f); ok && !out.Failed {
				eta = out.Eta
			}
		}
		if eta == nil {
			eta, err = safeRunBU(client, a.Prog, config, Unlimited, f, nil, nil, &res.BUStats)
			if err != nil {
				return err
			}
			publishOutcome(a.Warm, a.Prog.Entry, f, eta, nil)
		}
		res.BU = eta
		inst := &buInstantiator[S, R, P]{client: client, eta: eta, res: res}
		t := newTDSolver(client, a.tdView(config), config, inst, a.sparseIndex(config))
		res.TD = t.res
		if err := t.seed(initial); err != nil {
			return err
		}
		return t.run()
	}()
	res.Elapsed = time.Since(start)
	res.Err = err
	return res
}

// buInstantiator answers every call from precomputed bottom-up summaries.
type buInstantiator[S cmp.Ordered, R cmp.Ordered, P cmp.Ordered] struct {
	client Client[S, R, P]
	eta    map[string]RSet[R, P]
	res    *Result[S, R, P]
}

func (b *buInstantiator[S, R, P]) beforeCall(callee string, s S) ([]S, bool, error) {
	rs, ok := b.eta[callee]
	if !ok {
		return nil, false, nil
	}
	b.res.CallsViaBU++
	return ApplySummary(b.client, rs, s), true, nil
}

func (b *buInstantiator[S, R, P]) afterCall(string, S) error { return nil }

// RunSwift runs Algorithm 1: top-down tabulation with bottom-up
// summarization triggered at threshold k and pruned at width θ.
func (a *Analysis[S, R, P]) RunSwift(initial S, config Config) *Result[S, R, P] {
	start := time.Now()
	res := &Result[S, R, P]{
		Engine:   "swift",
		BU:       map[string]RSet[R, P]{},
		BUFailed: map[string]bool{},
	}
	client := effectiveClient(a.Client, config)
	h := &hybrid[S, R, P]{
		a: a, client: client, config: config, res: res,
		watch:    map[string]*watchRec{},
		pending:  map[string]bool{},
		panicked: map[string]int{},
	}
	// The hybrid engine steps the raw view: trigger timing depends on pop
	// order, which compression would change (see tdView). It still gets the
	// transfer memo, whose hits replay raw Trans output bit-for-bit. For
	// the same reason the sparse scheduler stays off here (nil index):
	// reordering pops would move the EntrySeen samples triggers rank by.
	t := newTDSolver(client, a.raw(), config, h, nil)
	h.td = t
	res.TD = t.res
	err := func() (err error) {
		defer contain(&err)
		if err := t.seed(initial); err != nil {
			return err
		}
		if err := t.run(); err != nil {
			return err
		}
		// The worklist is empty; flush triggers still postponed in pending
		// (the periodic retry only fires every 64th call event, so triggers
		// whose last chance fell inside a retry window gap would otherwise
		// be dropped and the run would under-summarize).
		return h.drainPending()
	}()
	res.Triggered = newSortedSet(res.Triggered)
	res.Elapsed = time.Since(start)
	res.Err = err
	return res
}

// hybrid is the call interceptor implementing the SWIFT-specific parts of
// Algorithm 1 (lines 12–19).
type hybrid[S cmp.Ordered, R cmp.Ordered, P cmp.Ordered] struct {
	a *Analysis[S, R, P]
	// client is the effective client of this run (the analysis client, or
	// its fault wrapper when Config.Fault is armed).
	client Client[S, R, P]
	td     *tdSolver[S, R, P]
	config Config
	res    *Result[S, R, P]
	// panicked counts contained run_bu panics per trigger, bounding retries
	// at panicRetryLimit before the trigger degrades to BUFailed.
	panicked map[string]int
	// watch tracks per-procedure Σ-fallbacks to drive adaptive
	// re-summarization (Config.Resummarize).
	watch map[string]*watchRec
	// pending holds procedures whose trigger fired but whose run_bu was
	// postponed because some reachable procedure had no top-down incoming
	// state yet to rank by (Section 4). Postponed means deferred, not
	// dropped: the driver periodically retries them.
	pending map[string]bool
	// retryTick throttles pending retries.
	retryTick int
}

// watchRec tracks how useful a procedure's bottom-up summary has been.
type watchRec struct {
	fallbacks int // Σ-fallbacks since the last (re-)summarization
	redone    int // re-summarizations performed
	limit     int // fallback budget before the next re-summarization
}

// beforeCall applies a bottom-up summary when one exists and the incoming
// state is not in its ignored set Σ (line 12 of Algorithm 1); Theorem 3.1
// guarantees the result equals re-analyzing the callee top-down.
func (h *hybrid[S, R, P]) beforeCall(callee string, s S) ([]S, bool, error) {
	rs, ok := h.res.BU[callee]
	if !ok {
		return nil, false, nil
	}
	if Ignores(h.client, rs, s) {
		h.res.CallsInSigma++
		if err := h.noteFallback(callee); err != nil {
			return nil, false, err
		}
		return nil, false, nil
	}
	results := ApplySummary(h.client, rs, s)
	if len(results) == 0 {
		// The commands of the language are total, so a correct client's
		// summary relates every non-ignored state to at least one output
		// (Theorem 3.1). Guard against client bugs by re-analyzing
		// top-down instead of silently dropping the state.
		return nil, false, nil
	}
	h.res.CallsViaBU++
	return results, true, nil
}

// noteFallback records a Σ-fallback and, once the summary has proven
// ineffective often enough, recomputes it against the current (much larger)
// incoming-state sample.
func (h *hybrid[S, R, P]) noteFallback(callee string) error {
	if h.config.Resummarize <= 0 {
		return nil
	}
	w := h.watch[callee]
	if w == nil {
		w = &watchRec{limit: 8 * (h.config.K + 1)}
		h.watch[callee] = w
	}
	w.fallbacks++
	if w.redone >= h.config.Resummarize || w.fallbacks < w.limit {
		return nil
	}
	w.redone++
	w.fallbacks = 0
	w.limit *= 4
	old := h.res.BU[callee]
	delete(h.res.BU, callee)
	var stats BUStats
	eta, err := safeRunBU(
		h.client, h.a.Prog, h.config, h.config.Theta,
		[]string{callee}, h.res.BU, h.res.TD.EntrySeen, &stats,
	)
	h.res.BUStats.add(stats)
	if errors.Is(err, ErrClientPanic) {
		// A panicking recomputation is treated like a blown budget: keep the
		// old (still sound) summary and move on.
		h.res.ClientPanics++
		h.res.BU[callee] = old
		return nil
	}
	if errors.Is(err, ErrBudget) {
		h.res.BU[callee] = old
		return nil
	}
	if err != nil {
		return err
	}
	h.res.BU[callee] = eta[callee]
	h.res.Resummarized++
	return nil
}

// afterCall checks the trigger condition (line 17): once the callee has more
// than k distinct incoming states and no bottom-up summary yet, run the
// pruned bottom-up analysis on all procedures reachable from it. Postponed
// triggers are retried periodically: a procedure's calls often arrive in a
// burst before its callees have any incoming states to rank by, and the
// retry fires run_bu once they do.
func (h *hybrid[S, R, P]) afterCall(callee string, s S) error {
	h.res.CallsViaTD++
	if h.config.K == Unlimited {
		return nil
	}
	if h.res.TD.EntrySeen[callee].distinct() > h.config.K {
		if _, done := h.res.BU[callee]; !done && !h.res.BUFailed[callee] {
			if err := h.trigger(callee, false); err != nil {
				return err
			}
		}
	}
	h.retryTick++
	if h.retryTick&0x3f == 0 && len(h.pending) > 0 {
		if err := h.retryPending(); err != nil {
			return err
		}
	}
	return nil
}

// retryPending re-attempts every postponed trigger once, in sorted order.
func (h *hybrid[S, R, P]) retryPending() error {
	for _, f := range newSortedSet(keysOf(h.pending)) {
		if _, done := h.res.BU[f]; done || h.res.BUFailed[f] {
			delete(h.pending, f)
			continue
		}
		if err := h.trigger(f, false); err != nil {
			return err
		}
	}
	return nil
}

// drainPending is the final flush of postponed triggers, run after the
// top-down worklist empties. Earlier triggers can install summaries that
// shrink later triggers' frontiers, so it retries in rounds while that
// makes progress; triggers still postponed then are waiting on procedures
// the top-down analysis never reached (dead branches of the frontier) and
// are forced — the pruning operator handles absent ranking data by keeping
// the first θ relations in canonical order.
func (h *hybrid[S, R, P]) drainPending() error {
	for len(h.pending) > 0 {
		before := len(h.pending)
		if err := h.retryPending(); err != nil {
			return err
		}
		if len(h.pending) < before {
			continue
		}
		for _, f := range newSortedSet(keysOf(h.pending)) {
			if err := h.trigger(f, true); err != nil {
				return err
			}
		}
	}
	return nil
}

func keysOf(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// trigger runs run_bu(Γ, θ, f, bu) with the paper's two implementation
// refinements (Section 4): procedures that already have summaries are reused
// rather than recomputed, and triggering is postponed until every procedure
// to be analyzed has at least one top-down incoming state (otherwise the
// pruning operator has no data to rank by). force skips the postpone check;
// the final drain uses it for frontiers the top-down analysis never
// completes.
func (h *hybrid[S, R, P]) trigger(f string, force bool) error {
	frontier := h.reachableWithoutSummaries(f)
	if !force {
		for _, g := range frontier {
			if h.res.TD.EntrySeen[g].distinct() == 0 {
				h.pending[f] = true // postpone: retried once g has data
				return nil
			}
		}
	}
	delete(h.pending, f)
	// Warm-start: the lookup sits exactly where run_bu would start, after
	// the postpone check, so a warm run makes the same scheduling decisions
	// as the cold run that published the outcome — the prerequisite for
	// byte-identical replays (see warm.go and internal/driver).
	if h.a.Warm != nil {
		if out, ok := h.a.Warm.Lookup(f, frontier); ok {
			if out.Failed {
				h.res.BUFailed[f] = true
				return nil
			}
			for name, rs := range out.Eta {
				h.res.BU[name] = rs
			}
			h.res.Triggered = append(h.res.Triggered, f)
			return nil
		}
	}
	for {
		// Each trigger gets the full MaxRelations/MaxBUSteps budget from the
		// config (worker-local counters, aggregated after), matching the
		// async engine's per-worker accounting — a cumulative charge here
		// would make the two engines disagree on which trigger DNFs.
		var stats BUStats
		eta, err := safeRunBU(
			h.client, h.a.Prog, h.config, h.config.Theta,
			frontier, h.res.BU, h.res.TD.EntrySeen, &stats,
		)
		h.res.BUStats.add(stats)
		publishOutcome(h.a.Warm, f, frontier, eta, err)
		if errors.Is(err, ErrClientPanic) {
			// A contained panic inside the trigger: retry a bounded number
			// of times, then degrade to the same top-down fallback a blown
			// budget gets (Theorem 3.1 makes the fallback safe).
			h.res.ClientPanics++
			h.panicked[f]++
			if h.panicked[f] <= panicRetryLimit {
				continue
			}
			h.res.BUFailed[f] = true
			return nil
		}
		if errors.Is(err, ErrBudget) {
			// The bottom-up side ran out of budget: fall back to pure
			// top-down for this trigger procedure and carry on.
			h.res.BUFailed[f] = true
			return nil
		}
		if err != nil {
			return err
		}
		for name, rs := range eta {
			h.res.BU[name] = rs
		}
		h.res.Triggered = append(h.res.Triggered, f)
		return nil
	}
}

// reachableWithoutSummaries returns the procedures reachable from f by call
// chains, not expanding through procedures that already have bottom-up
// summaries (they are reused via η), sorted.
func (h *hybrid[S, R, P]) reachableWithoutSummaries(f string) []string {
	seen := map[string]bool{}
	var out []string
	var visit func(string)
	visit = func(name string) {
		if seen[name] {
			return
		}
		seen[name] = true
		if _, done := h.res.BU[name]; done {
			return
		}
		proc, ok := h.a.Prog.Procs[name]
		if !ok {
			return
		}
		out = append(out, name)
		for _, callee := range ir.Callees(proc.Body) {
			visit(callee)
		}
	}
	visit(f)
	return newSortedSet(out)
}
