package core

// The pre-rework tabulation solver, preserved verbatim (modulo renaming)
// from the seed tree as the "before" baseline for the tabulation
// benchmarks and as a counter-equivalence oracle: BenchmarkTabulationRaw
// measures this solver, and TestLegacySolverCountersMatch (core_test)
// checks the reworked solver reproduces its NumPathEdges/NumSummaries/
// Steps exactly. It is test-only code — the shipped solver lives in td.go.
//
// Shape of the original: path edges are map[pathPair]bool per node, every
// CFG edge is walked individually, client.Trans runs on every traversal
// (no memoization), and the drained worklist keeps its backing array.

import (
	"cmp"

	"swift/internal/ir"
)

// LegacyTDResult mirrors the seed TDResult: the td map as raw pair sets
// plus the counters the results tables consume.
type LegacyTDResult[S cmp.Ordered] struct {
	PathEdges    []map[pathPair[S]]bool
	Summaries    map[string]map[S]sortedSet[S]
	NumPathEdges int
	NumSummaries int
	Steps        int
}

type legacySolver[S cmp.Ordered, R cmp.Ordered, P cmp.Ordered] struct {
	client  Client[S, R, P]
	cfg     *ir.CFG
	cfgOf   map[string]*ir.ProcCFG
	config  Config
	res     *LegacyTDResult[S]
	entry   map[string]multiset[S]
	callers map[string]map[S][]callerRec[S]
	work    []workItem[S]
	head    int
	dl      deadline
}

// LegacyRunTD runs the seed tabulation to completion on the original CFG.
func LegacyRunTD[S cmp.Ordered, R cmp.Ordered, P cmp.Ordered](
	client Client[S, R, P], cfg *ir.CFG, config Config, initial S,
) (*LegacyTDResult[S], error) {
	res := &LegacyTDResult[S]{
		PathEdges: make([]map[pathPair[S]]bool, cfg.NodeCount),
		Summaries: map[string]map[S]sortedSet[S]{},
	}
	t := &legacySolver[S, R, P]{
		client:  client,
		cfg:     cfg,
		cfgOf:   cfg.ByProc,
		config:  config,
		res:     res,
		entry:   map[string]multiset[S]{},
		callers: map[string]map[S][]callerRec[S]{},
		dl:      newDeadline(config),
	}
	for _, name := range cfg.Program.ProcNames() {
		res.Summaries[name] = map[S]sortedSet[S]{}
		t.entry[name] = multiset[S]{}
	}
	entry := t.cfgOf[t.cfg.Program.Entry]
	t.entry[t.cfg.Program.Entry].add(initial, 1)
	if err := t.propagate(entry.Entry.ID, initial, initial); err != nil {
		return res, err
	}
	for t.head < len(t.work) {
		item := t.work[t.head]
		t.head++
		t.res.Steps++
		if err := t.dl.check(); err != nil {
			return res, err
		}
		if err := t.step(item); err != nil {
			return res, err
		}
	}
	return res, nil
}

func (t *legacySolver[S, R, P]) propagate(node int, in, out S) error {
	m := t.res.PathEdges[node]
	if m == nil {
		m = map[pathPair[S]]bool{}
		t.res.PathEdges[node] = m
	}
	p := pathPair[S]{in: in, out: out}
	if m[p] {
		return nil
	}
	m[p] = true
	t.res.NumPathEdges++
	if t.res.NumPathEdges > t.config.MaxPathEdges {
		return ErrBudget
	}
	t.work = append(t.work, workItem[S]{node: node, edge: p})
	return nil
}

func (t *legacySolver[S, R, P]) step(item workItem[S]) error {
	node := t.cfg.AllNodes[item.node]
	pc := t.cfgOf[node.Proc]
	if node.ID == pc.Exit.ID {
		if err := t.recordSummary(node.Proc, item.edge.in, item.edge.out); err != nil {
			return err
		}
	}
	for _, e := range node.Out {
		if e.IsCall() {
			if err := t.handleCall(e, item.edge.in, item.edge.out); err != nil {
				return err
			}
			continue
		}
		for _, s := range t.client.Trans(e.Prim, item.edge.out) {
			if err := t.propagate(e.To.ID, item.edge.in, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func (t *legacySolver[S, R, P]) recordSummary(proc string, in, out S) error {
	exits := t.res.Summaries[proc][in]
	exits, added := exits.insert(out)
	if !added {
		return nil
	}
	t.res.Summaries[proc][in] = exits
	t.res.NumSummaries++
	if t.res.NumSummaries > t.config.MaxTDSummaries {
		return ErrBudget
	}
	for _, c := range t.callers[proc][in] {
		if err := t.propagate(c.ret, c.in, out); err != nil {
			return err
		}
	}
	return nil
}

func (t *legacySolver[S, R, P]) handleCall(e *ir.Edge, callerIn, s S) error {
	callee := e.Call
	t.entry[callee].add(s, 1)
	byIn := t.callers[callee]
	if byIn == nil {
		byIn = map[S][]callerRec[S]{}
		t.callers[callee] = byIn
	}
	byIn[s] = append(byIn[s], callerRec[S]{ret: e.To.ID, in: callerIn})
	if err := t.propagate(t.cfgOf[callee].Entry.ID, s, s); err != nil {
		return err
	}
	for _, out := range t.res.Summaries[callee][s] {
		if err := t.propagate(e.To.ID, callerIn, out); err != nil {
			return err
		}
	}
	return nil
}
