package core

// White-box property tests of the pruned bottom-up domain operators
// (Section 3.4): prune must keep at most θ relations, only ever grow the
// ignored set, and preserve the meaning of the kept relations on
// non-ignored states; clean must preserve γ† on non-ignored states.

import (
	"testing"

	"swift/internal/ir"
	"swift/internal/killgen"
)

// pruneFixture builds a solver over the taint client with a seeded rank
// multiset.
func pruneFixture(t *testing.T, theta int) (*buSolver[string, string, string], *killgen.Taint, []*ir.Prim) {
	t.Helper()
	prims := []*ir.Prim{
		{Kind: ir.New, Dst: "a", Site: "src"},
		{Kind: ir.New, Dst: "b", Site: "clean"},
		{Kind: ir.Copy, Dst: "b", Src: "a"},
		{Kind: ir.Copy, Dst: "c", Src: "b"},
		{Kind: ir.Copy, Dst: "a", Src: "c"},
		{Kind: ir.TSCall, Dst: "c", Method: "sink"},
		{Kind: ir.Kill, Dst: "b"},
	}
	body := make([]ir.Cmd, len(prims))
	for i, p := range prims {
		body[i] = p
	}
	prog := ir.NewProgram("main")
	prog.Add(&ir.Proc{Name: "main", Body: &ir.Seq{Cmds: body}})
	taint := killgen.NewTaint(prog, killgen.TaintConfig{
		Sources: []string{"src"},
		Sinks:   []string{"sink"},
	})
	// Rank data: a few sample states with multiplicities.
	m := multiset[string]{}
	m.add(taint.Initial(), 5)
	m.add(taint.State(taint.MakeBits("a")), 2)
	m.add(taint.State(taint.MakeBits("a", "b")), 1)
	b := &buSolver[string, string, string]{
		client: taint,
		prog:   prog,
		theta:  theta,
		rank:   map[string]multiset[string]{"main": m},
		stats:  &BUStats{},
		budget: BUConfig(),
	}
	return b, taint, prims
}

// grow produces a diverse relation set by pushing prims through rtrans.
func grow(b *buSolver[string, string, string], taint *killgen.Taint, prims []*ir.Prim) sortedSet[string] {
	rels := sortedSet[string]{taint.Identity()}
	for _, p := range prims {
		var next []string
		for _, r := range rels {
			next = append(next, taint.RTrans(p, r)...)
		}
		rels = rels.union(newSortedSet(next))
	}
	return rels
}

func TestPruneLaws(t *testing.T) {
	for _, theta := range []int{1, 2, 3, 5} {
		b, taint, prims := pruneFixture(t, theta)
		rels := grow(b, taint, prims)
		if len(rels) <= theta {
			t.Fatalf("fixture too small: %d relations", len(rels))
		}
		in := RSet[string, string]{Rels: rels}
		out := b.prune("main", in)

		// Law 1: at most θ relations kept.
		if len(out.Rels) > theta {
			t.Errorf("θ=%d: kept %d relations", theta, len(out.Rels))
		}
		// Law 2: Σ only grows (here: from empty).
		if len(out.Sigma) == 0 {
			t.Errorf("θ=%d: dropped relations left no Σ entries", theta)
		}
		// Law 3: kept relations are a subset of the input.
		for _, r := range out.Rels {
			if !in.Rels.has(r) {
				t.Errorf("θ=%d: prune invented relation", theta)
			}
		}
		// Law 4 (the coincidence core): for any state NOT ignored by Σ,
		// γ†(kept) equals γ†(input). Check on a sample of states.
		samples := []string{
			taint.Initial(),
			taint.State(taint.MakeBits("a")),
			taint.State(taint.MakeBits("a", "b")),
			taint.State(taint.MakeBits("b", "c")),
			taint.State(taint.MakeBits("ALERT")),
		}
		for _, s := range samples {
			if Ignores[string, string, string](taint, out, s) {
				continue
			}
			want := ApplySummary(taint, RSet[string, string]{Rels: in.Rels}, s)
			got := ApplySummary(taint, out, s)
			if len(want) != len(got) {
				t.Fatalf("θ=%d: meaning changed on non-ignored state: %d vs %d outputs",
					theta, len(want), len(got))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("θ=%d: output %d differs on non-ignored state", theta, i)
				}
			}
		}
	}
}

func TestCleanRemovesSubsumedDomains(t *testing.T) {
	b, taint, prims := pruneFixture(t, 1)
	rels := grow(b, taint, prims)
	// Put one relation's domain into Σ: clean must drop relations whose
	// precondition implies it, keep the rest, and never change Σ.
	victim := rels[len(rels)/2]
	sigma := sortedSet[string]{taint.PreOf(victim)}
	out := b.clean(RSet[string, string]{Rels: rels, Sigma: sigma})
	if out.Rels.has(victim) {
		t.Error("clean kept a relation whose domain is in Σ")
	}
	if !out.Sigma.equal(sigma) {
		t.Error("clean changed Σ")
	}
	for _, r := range out.Rels {
		if b.client.PreImplies(b.client.PreOf(r), taint.PreOf(victim)) {
			t.Errorf("clean kept a subsumed relation")
		}
	}
}

func TestJoinIsUpperBound(t *testing.T) {
	b, taint, prims := pruneFixture(t, 3)
	rels := grow(b, taint, prims)
	half := len(rels) / 2
	x := RSet[string, string]{Rels: newSortedSet(rels[:half])}
	y := RSet[string, string]{Rels: newSortedSet(rels[half:])}
	j := b.join(x, y)
	// Every input relation is represented: either kept, or subsumed by a
	// kept one with the same behaviour (Reduce), never silently lost.
	samples := []string{taint.Initial(), taint.State(taint.MakeBits("a", "c"))}
	for _, s := range samples {
		want := ApplySummary(taint, RSet[string, string]{Rels: newSortedSet(rels)}, s)
		got := ApplySummary(taint, j, s)
		if len(want) != len(got) {
			t.Fatalf("join lost behaviour: %d vs %d", len(want), len(got))
		}
	}
	// Join with the empty element is identity up to Reduce.
	j2 := b.join(x, RSet[string, string]{})
	for _, r := range j2.Rels {
		if !x.Rels.has(r) {
			t.Error("join with bottom invented relations")
		}
	}
}
