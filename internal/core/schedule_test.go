package core_test

// Trace-driven schedule exploration (ROADMAP item): systematically permute
// the install-event order of a recorded asynchronous schedule and replay
// every variant. A permutation inside the validity bounds — the sequence
// numbers stay monotone and no outcome precedes its spawn — replays
// cleanly and, by Theorem 3.1 (errors are absorbing, so completion-visible
// states agree), reaches the same exit states as the recorded schedule;
// anything outside the bounds is rejected with ErrTraceMismatch. Either
// way the replayer must neither panic nor hang nor leak goroutines.

import (
	"errors"
	"fmt"
	"runtime"
	"testing"

	"swift/internal/core"
	"swift/internal/ir"
)

// fanoutProgram triggers three independent bottom-up workers: each fi is
// called with two distinct states (so k=1 triggers it) and has its own
// private callee, keeping the three summaries disjoint. Its recorded
// traces are the interesting ones for exploration — multiple installs
// whose relative order genuinely can be permuted.
func fanoutProgram() *ir.Program {
	prog := ir.NewProgram("main")
	// Each fi normalizes the state, so the branch re-diversifies (genp vs
	// genq) before the next call — otherwise only f1 would ever trigger.
	branch := func(gen string) ir.Cmd {
		return &ir.Seq{Cmds: []ir.Cmd{
			tag(gen), &ir.Call{Callee: "f1"},
			tag(gen), &ir.Call{Callee: "f2"},
			tag(gen), &ir.Call{Callee: "f3"},
		}}
	}
	prog.Add(&ir.Proc{Name: "main", Body: &ir.Choice{Alts: []ir.Cmd{
		branch("genp"), branch("genq"),
	}}})
	for i := 1; i <= 3; i++ {
		f, g := fmt.Sprintf("f%d", i), fmt.Sprintf("g%d", i)
		prog.Add(&ir.Proc{Name: f, Body: &ir.Seq{Cmds: []ir.Cmd{
			tag("norm"), &ir.Call{Callee: g},
		}}})
		prog.Add(&ir.Proc{Name: g, Body: tag("noop")})
	}
	return prog
}

// cloneTrace deep-copies a trace so a variant can mutate it freely.
func cloneTrace(tr *core.Trace) *core.Trace {
	cp := *tr
	cp.Events = append([]core.TraceEvent(nil), tr.Events...)
	return &cp
}

// swapKeepingSeqs exchanges the payloads of events i and i+1 while each
// position keeps its sequence number, so the trace stays monotone — the
// smallest possible schedule perturbation.
func swapKeepingSeqs(tr *core.Trace, i int) {
	a, b := tr.Events[i], tr.Events[i+1]
	a.Seq, b.Seq = b.Seq, a.Seq
	tr.Events[i], tr.Events[i+1] = b, a
}

// delayToEnd moves event i to the drain-phase tail of the trace: same
// payload, visible only at the final sequence number.
func delayToEnd(tr *core.Trace, i int) {
	e := tr.Events[i]
	e.Seq = tr.Events[len(tr.Events)-1].Seq
	rest := append([]core.TraceEvent(nil), tr.Events[:i]...)
	rest = append(rest, tr.Events[i+1:]...)
	tr.Events = append(rest, e)
}

// replayVariant replays a (possibly mutated) trace on a fresh pipeline and
// returns the raw result; callers classify Err themselves.
func replayVariant(t *testing.T, prog func() *ir.Program, trace *core.Trace) *core.Result[string, string, string] {
	t.Helper()
	kg := drainClient()
	an, err := core.NewAnalysis[string, string, string](kg, prog())
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.K = 1
	cfg.ReplayTrace = trace
	return an.RunSwiftAsync(kg.State(kg.MakeBits()), cfg)
}

func TestScheduleExplorationPermutedInstalls(t *testing.T) {
	before := runtime.NumGoroutine()
	// Totals across all programs: the tiny drain fixtures only produce
	// out-of-bounds permutations (their single install cannot legally
	// move), while fanout's multi-trigger traces permute both ways.
	totalClean, totalRejected := 0, 0
	for _, prog := range []struct {
		name  string
		build func() *ir.Program
	}{{"drain", drainProgram}, {"blocked", blockedProgram}, {"fanout", fanoutProgram}} {
		trace, _ := recordRun(t, prog.build)
		init := drainClient().State(drainClient().MakeBits())
		base := replayVariant(t, prog.build, trace)
		if base.Err != nil {
			t.Fatalf("%s: baseline replay failed: %v", prog.name, base.Err)
		}
		want := fmt.Sprint(base.ExitStates("main", init))

		// Every adjacent payload swap touching an install, and every
		// install delayed to the drain tail.
		var variants []*core.Trace
		for i := 0; i+1 < len(trace.Events); i++ {
			if trace.Events[i].Kind != core.TraceInstall && trace.Events[i+1].Kind != core.TraceInstall {
				continue
			}
			v := cloneTrace(trace)
			swapKeepingSeqs(v, i)
			variants = append(variants, v)
		}
		for i, e := range trace.Events {
			if e.Kind != core.TraceInstall || i == len(trace.Events)-1 {
				continue
			}
			v := cloneTrace(trace)
			delayToEnd(v, i)
			variants = append(variants, v)
		}
		// One deliberately out-of-bounds schedule: hoist an install to the
		// front, before any spawn could have produced its summaries.
		for i, e := range trace.Events {
			if e.Kind != core.TraceInstall || i == 0 {
				continue
			}
			v := cloneTrace(trace)
			hoisted := v.Events[i]
			hoisted.Seq = v.Events[0].Seq
			v.Events = append([]core.TraceEvent{hoisted},
				append(v.Events[:i:i], v.Events[i+1:]...)...)
			variants = append(variants, v)
			break
		}

		clean, rejected := 0, 0
		for vi, v := range variants {
			res := replayVariant(t, prog.build, v)
			switch {
			case res.Err == nil:
				clean++
				if got := fmt.Sprint(res.ExitStates("main", init)); got != want {
					t.Errorf("%s: variant %d replayed cleanly but exit states diverge\n got %s\nwant %s",
						prog.name, vi, got, want)
				}
			case errors.Is(res.Err, core.ErrTraceMismatch):
				rejected++
			default:
				t.Errorf("%s: variant %d failed outside the contract: %v", prog.name, vi, res.Err)
			}
		}
		totalClean += clean
		totalRejected += rejected
		t.Logf("%s: %d variants, %d clean, %d rejected", prog.name, len(variants), clean, rejected)
	}
	if totalClean == 0 {
		t.Error("no permutation replayed cleanly — the exploration never stayed in bounds")
	}
	if totalRejected == 0 {
		t.Error("no permutation was rejected — the validity bounds were never exercised")
	}
	checkNoLeakedGoroutines(t, before)
}
