package core

import (
	"cmp"
	"slices"
)

// sortedSet is a canonical (sorted, duplicate-free) slice of ordered values.
// The solvers keep all state, relation and precondition sets in this form so
// iteration order — and therefore every counter and result — is
// deterministic.
type sortedSet[T cmp.Ordered] []T

// newSortedSet canonicalizes an arbitrary slice.
func newSortedSet[T cmp.Ordered](xs []T) sortedSet[T] {
	if len(xs) == 0 {
		return nil
	}
	out := slices.Clone(xs)
	slices.Sort(out)
	return slices.Compact(out)
}

// has reports membership by binary search.
func (s sortedSet[T]) has(x T) bool {
	_, ok := slices.BinarySearch(s, x)
	return ok
}

// insert returns the set with x added, reporting whether it was new. The
// result is always a fresh slice: sorted sets are shared freely across
// domain elements, so in-place extension would corrupt aliases.
func (s sortedSet[T]) insert(x T) (sortedSet[T], bool) {
	i, ok := slices.BinarySearch(s, x)
	if ok {
		return s, false
	}
	out := make(sortedSet[T], len(s)+1)
	copy(out, s[:i])
	out[i] = x
	copy(out[i+1:], s[i:])
	return out, true
}

// union returns the union of two sorted sets.
func (s sortedSet[T]) union(t sortedSet[T]) sortedSet[T] {
	if len(t) == 0 {
		return s
	}
	if len(s) == 0 {
		return t
	}
	out := make(sortedSet[T], 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			out = append(out, s[i])
			i++
		case t[j] < s[i]:
			out = append(out, t[j])
			j++
		default:
			out = append(out, s[i])
			i, j = i+1, j+1
		}
	}
	out = append(out, s[i:]...)
	out = append(out, t[j:]...)
	return out
}

// mergeAppend merges sorted set src into dst in place, reusing dst's
// capacity when it suffices (callers must own dst exclusively — the solver's
// path-edge buckets qualify during a run, since results are only read after
// the drain). Newly added elements are appended to buf, which is returned
// so callers can reuse it as a scratch buffer; when src ⊆ dst the call
// performs one linear scan and no allocation. src is never modified.
func mergeAppend[T cmp.Ordered](dst sortedSet[T], src sortedSet[T], buf []T) (sortedSet[T], []T) {
	buf = buf[:0]
	// First pass: count the genuinely new elements.
	novel := 0
	i, j := 0, 0
	for i < len(dst) && j < len(src) {
		switch {
		case dst[i] < src[j]:
			i++
		case src[j] < dst[i]:
			novel++
			j++
		default:
			i, j = i+1, j+1
		}
	}
	novel += len(src) - j
	if novel == 0 {
		return dst, buf
	}
	// Grow by the exact overflow, then merge backwards so every element is
	// moved at most once and no temporary is needed.
	n := len(dst)
	dst = append(dst, src[:novel]...) // content overwritten below; just grows
	i, j = n-1, len(src)-1
	for k := len(dst) - 1; j >= 0; k-- {
		switch {
		case i >= 0 && dst[i] > src[j]:
			dst[k] = dst[i]
			i--
		case i >= 0 && dst[i] == src[j]:
			dst[k] = dst[i]
			i--
			j--
		default:
			dst[k] = src[j]
			buf = append(buf, src[j])
			j--
		}
	}
	return dst, buf
}

// equal reports set equality.
func (s sortedSet[T]) equal(t sortedSet[T]) bool { return slices.Equal(s, t) }

// multiset counts occurrences of ordered values; used for the incoming-state
// multiset M that guides the pruning operator's ranking.
type multiset[T cmp.Ordered] map[T]int

// add increments the count of x by n.
func (m multiset[T]) add(x T, n int) { m[x] += n }

// distinct returns the number of distinct elements.
func (m multiset[T]) distinct() int { return len(m) }
