package core

import (
	"sort"
	"testing"
	"testing/quick"
)

// ref builds the reference set (deduped, sorted) from a slice.
func ref(xs []int) []int {
	m := map[int]bool{}
	for _, x := range xs {
		m[x] = true
	}
	out := make([]int, 0, len(m))
	for x := range m {
		out = append(out, x)
	}
	sort.Ints(out)
	return out
}

func equalInts(a sortedSet[int], b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSortedSetQuick(t *testing.T) {
	if err := quick.Check(func(xs []int) bool {
		return equalInts(newSortedSet(xs), ref(xs))
	}, nil); err != nil {
		t.Errorf("canonicalization: %v", err)
	}
	if err := quick.Check(func(xs, ys []int) bool {
		u := newSortedSet(xs).union(newSortedSet(ys))
		return equalInts(u, ref(append(append([]int{}, xs...), ys...)))
	}, nil); err != nil {
		t.Errorf("union: %v", err)
	}
	if err := quick.Check(func(xs []int, x int) bool {
		s := newSortedSet(xs)
		had := s.has(x)
		s2, added := s.insert(x)
		if added == had {
			return false
		}
		// The original set must be untouched (sets are shared).
		if !equalInts(s, ref(xs)) {
			return false
		}
		return s2.has(x) && equalInts(s2, ref(append(append([]int{}, xs...), x)))
	}, nil); err != nil {
		t.Errorf("insert: %v", err)
	}
	if err := quick.Check(func(xs, ys []int) bool {
		a, b := newSortedSet(xs), newSortedSet(ys)
		u := a.union(b)
		// union is an upper bound and is idempotent
		for _, x := range a {
			if !u.has(x) {
				return false
			}
		}
		return u.union(a).equal(u)
	}, nil); err != nil {
		t.Errorf("union laws: %v", err)
	}
}

func TestSortedSetEdges(t *testing.T) {
	var empty sortedSet[int]
	if empty.has(1) {
		t.Error("empty has")
	}
	if !empty.union(nil).equal(nil) {
		t.Error("empty union")
	}
	s, added := empty.insert(5)
	if !added || !s.has(5) || len(s) != 1 {
		t.Error("insert into empty")
	}
	if _, again := s.insert(5); again {
		t.Error("duplicate insert reported as new")
	}
}

func TestMultiset(t *testing.T) {
	m := multiset[string]{}
	m.add("a", 1)
	m.add("a", 2)
	m.add("b", 1)
	if m["a"] != 3 || m.distinct() != 2 {
		t.Errorf("multiset = %v", m)
	}
}

func TestDeadline(t *testing.T) {
	d := newDeadline(Config{})
	for i := 0; i < 1000; i++ {
		if err := d.check(); err != nil {
			t.Fatal("disarmed deadline fired")
		}
	}
	d = newDeadline(Config{Timeout: 1})
	var err error
	for i := 0; i < 10000 && err == nil; i++ {
		err = d.check()
	}
	if err != ErrDeadline {
		t.Fatalf("armed deadline did not fire: %v", err)
	}
}

func TestDeadlineCancel(t *testing.T) {
	ch := make(chan struct{})
	d := newDeadline(Config{Cancel: ch})
	for i := 0; i < 1000; i++ {
		if err := d.check(); err != nil {
			t.Fatalf("open cancel channel fired: %v", err)
		}
	}
	close(ch)
	// A closed channel must be noticed within one check interval (256
	// calls).
	var err error
	for i := 0; i < 256 && err == nil; i++ {
		err = d.check()
	}
	if err != ErrCanceled {
		t.Fatalf("closed cancel channel: err = %v within one interval, want ErrCanceled", err)
	}

	// Cancellation wins when a wall-clock deadline has also passed.
	d = newDeadline(Config{Timeout: 1, Cancel: ch})
	err = nil
	for i := 0; i < 256 && err == nil; i++ {
		err = d.check()
	}
	if err != ErrCanceled {
		t.Fatalf("cancel + expired deadline: err = %v, want ErrCanceled", err)
	}
}
