package core

// This file is the site-sliced parallel execution layer. A sliceable
// client decomposes its abstract domain into independent slices — the
// type-state client uses one slice per tracked allocation site — and
// RunSliced analyzes each slice with its own client instance on a bounded
// worker pool, under any of the four engines.
//
// Slices are independent by construction: each slice's client spawns
// tracked tuples only at its own site, and the shared (sliceless) part of
// the domain evolves identically in every slice. Determinism across worker
// counts follows from instance isolation: a slice's client interns into
// tables only that slice's run touches, so its ID assignment — and with it
// worklist order, pruning tie-breaks and trigger sampling — is exactly
// that of a fresh monolithic run of the restricted client, regardless of
// what other slices do concurrently. Aggregation walks slices in sorted
// SliceID order, so merged reports, counters and tables are byte-identical
// at any SliceWorkers setting.

import (
	"cmp"
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/pprof"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SliceID names one slice of a sliceable client's abstract domain. For the
// type-state client it is a tracked allocation-site label.
type SliceID string

// SliceableClient is an optional capability of Client: a client that can
// decompose its analysis into independent slices. Implementations must
// guarantee that the union of the slices' results over error-observable
// states equals the monolithic result (the type-state argument is spelled
// out in DESIGN.md), and that SliceClient returns a client whose behaviour
// depends only on the slice — never on other concurrently running slices.
type SliceableClient[S cmp.Ordered, R cmp.Ordered, P cmp.Ordered] interface {
	Client[S, R, P]

	// Slices enumerates the client's slices. The order is not significant:
	// RunSliced sorts the IDs before dispatching and aggregating.
	Slices() []SliceID

	// SliceClient returns an independent client restricted to the slice,
	// together with the slice's initial abstract state in that client's
	// own representation. Each call must return a fresh instance that can
	// run concurrently with every other slice's instance.
	SliceClient(id SliceID) (Client[S, R, P], S, error)
}

// SliceRun is one slice's outcome inside a sliced run. Result's abstract
// state and relation IDs are in the slice Client's own ID space, so
// interpreting them (e.g. rendering error sites) must go through Client,
// not through the monolithic client the slices were derived from.
type SliceRun[S cmp.Ordered, R cmp.Ordered, P cmp.Ordered] struct {
	ID     SliceID
	Client Client[S, R, P]
	Result *Result[S, R, P]
}

// SlicedResult aggregates one engine's per-slice outcomes. Slices is in
// sorted SliceID order; every accessor folds over it in that order, so
// merged values are independent of how the slices were scheduled.
type SlicedResult[S cmp.Ordered, R cmp.Ordered, P cmp.Ordered] struct {
	Engine string
	Slices []SliceRun[S, R, P]
	// Elapsed is the wall-clock duration of the whole sliced run (the
	// parallel makespan, not the per-slice sum).
	Elapsed time.Duration
}

// Completed reports whether every slice finished within its budgets.
func (r *SlicedResult[S, R, P]) Completed() bool {
	for i := range r.Slices {
		if !r.Slices[i].Result.Completed() {
			return false
		}
	}
	return true
}

// Err joins the per-slice run errors, each annotated with its slice ID, in
// sorted slice order; nil when every slice completed.
func (r *SlicedResult[S, R, P]) Err() error {
	var errs []error
	for i := range r.Slices {
		if err := r.Slices[i].Result.Err; err != nil {
			errs = append(errs, fmt.Errorf("slice %s: %w", r.Slices[i].ID, err))
		}
	}
	return errors.Join(errs...)
}

// WorkUnits sums the slices' deterministic work counters. Comparing it
// against the monolithic run's WorkUnits measures the state-space effect
// of slicing independently of parallelism: smaller per-slice state spaces
// shrink the superlinear path-edge blowup even at one worker.
func (r *SlicedResult[S, R, P]) WorkUnits() int {
	n := 0
	for i := range r.Slices {
		n += r.Slices[i].Result.WorkUnits()
	}
	return n
}

// MaxSliceWork returns the largest single slice's work — the critical path
// of the sliced run, i.e. the deterministic cost lower bound at unlimited
// workers.
func (r *SlicedResult[S, R, P]) MaxSliceWork() int {
	n := 0
	for i := range r.Slices {
		if w := r.Slices[i].Result.WorkUnits(); w > n {
			n = w
		}
	}
	return n
}

// BUStatsTotal sums the slices' bottom-up work counters in slice order.
func (r *SlicedResult[S, R, P]) BUStatsTotal() BUStats {
	var total BUStats
	for i := range r.Slices {
		total.add(r.Slices[i].Result.BUStats)
	}
	return total
}

// TDSummaryTotal sums the slices' top-down summary counts.
func (r *SlicedResult[S, R, P]) TDSummaryTotal() int {
	n := 0
	for i := range r.Slices {
		n += r.Slices[i].Result.TDSummaryTotal()
	}
	return n
}

// BUSummaryTotal sums the slices' bottom-up summary counts.
func (r *SlicedResult[S, R, P]) BUSummaryTotal() int {
	n := 0
	for i := range r.Slices {
		n += r.Slices[i].Result.BUSummaryTotal()
	}
	return n
}

// Triggered concatenates the slices' sorted trigger lists in slice order,
// each entry prefixed with its slice ID so repeated triggers across slices
// stay distinguishable.
func (r *SlicedResult[S, R, P]) Triggered() []string {
	var out []string
	for i := range r.Slices {
		for _, f := range r.Slices[i].Result.Triggered {
			out = append(out, string(r.Slices[i].ID)+"/"+f)
		}
	}
	return out
}

// RunEngine dispatches an engine by name, applying the baseline threshold
// conventions (td disables triggering, bu disables pruning). It is the
// single dispatch point shared by the driver's monolithic path and
// RunSliced's per-slice workers.
func (a *Analysis[S, R, P]) RunEngine(engine string, initial S, config Config) (*Result[S, R, P], error) {
	switch engine {
	case "td":
		config.K = Unlimited
		return a.RunTD(initial, config), nil
	case "bu":
		config.Theta = Unlimited
		return a.RunBU(initial, config), nil
	case "swift":
		return a.RunSwift(initial, config), nil
	case "swift-async":
		return a.RunSwiftAsync(initial, config), nil
	}
	return nil, fmt.Errorf("core: unknown engine %q (want td, bu, swift or swift-async)", engine)
}

// withClient returns an Analysis over the same program and traversal views
// but a different client. The views must already be built (see RunSliced):
// the lazy builders are unlocked, so a derived Analysis handed to another
// goroutine must never be the first to build one.
func (a *Analysis[S, R, P]) withClient(client Client[S, R, P]) *Analysis[S, R, P] {
	return &Analysis[S, R, P]{
		Client: client, Prog: a.Prog, CFG: a.CFG,
		rawView: a.rawView, compView: a.compView,
		rawStruct: a.rawStruct, compStruct: a.compStruct,
	}
}

// RunSliced runs one independent analysis per slice of the client on a
// bounded worker pool (Config.SliceWorkers; GOMAXPROCS when unset) and
// returns the per-slice results in sorted SliceID order. Every engine is
// supported. A slice whose engine run merely exhausts a budget is a normal
// outcome (its Result.Err is reported through SlicedResult.Err); RunSliced
// itself fails only on dispatch-level errors — a non-sliceable client, an
// unknown engine, or a SliceClient failure — joined in sorted slice order.
func (a *Analysis[S, R, P]) RunSliced(engine string, config Config) (*SlicedResult[S, R, P], error) {
	sc, ok := any(a.Client).(SliceableClient[S, R, P])
	if !ok {
		return nil, fmt.Errorf("core: client %T does not support slicing", a.Client)
	}
	return a.RunSliceSet(engine, config, sc.Slices())
}

// RunSliceSet is RunSliced restricted to a subset of the client's slices:
// the demand-driven hook behind point queries, which name one slice (or a
// few) instead of wanting the whole decomposition. The ids are sorted and
// deduplicated before dispatch, so the result order — and, per slice,
// every byte of the outcome (fresh per-slice interners; see the file
// comment) — is independent of both the caller's order and the worker
// count. Unknown slice IDs surface as SliceClient dispatch errors.
func (a *Analysis[S, R, P]) RunSliceSet(engine string, config Config, subset []SliceID) (*SlicedResult[S, R, P], error) {
	sc, ok := any(a.Client).(SliceableClient[S, R, P])
	if !ok {
		return nil, fmt.Errorf("core: client %T does not support slicing", a.Client)
	}
	// Build the traversal views (and, for the order-insensitive engines,
	// the structure index) the engine will use on this goroutine, before
	// any worker can race to build them lazily. Both are immutable once
	// built, so the slice runs share them freely.
	switch engine {
	case "td", "bu":
		a.tdView(config)
		a.sparseIndex(config)
	case "swift", "swift-async":
		a.raw()
	default:
		return nil, fmt.Errorf("core: unknown engine %q (want td, bu, swift or swift-async)", engine)
	}
	ids := append([]SliceID(nil), subset...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	ids = slices.Compact(ids)

	start := time.Now()
	out := &SlicedResult[S, R, P]{
		Engine: engine,
		Slices: make([]SliceRun[S, R, P], len(ids)),
	}
	errs := make([]error, len(ids))
	runOne := func(i int) {
		id := ids[i]
		// Pre-dispatch cancellation check: a canceled sliced run should
		// stop launching queued slices promptly instead of letting each
		// one start and abort on its own first periodic check. A slice
		// skipped here is a dispatch-level failure, like an unknown ID —
		// the caller gets no partial SlicedResult to misread as complete.
		if config.Cancel != nil {
			select {
			case <-config.Cancel:
				errs[i] = fmt.Errorf("slice %s: %w", id, ErrCanceled)
				return
			default:
			}
		}
		client, initial, err := sc.SliceClient(id)
		if err != nil {
			errs[i] = fmt.Errorf("slice %s: %w", id, err)
			return
		}
		cfg := config
		// Each slice counts its own operation stream (see FaultPlan.Fork):
		// sharing the counter would make fault indices depend on
		// scheduling.
		cfg.Fault = config.Fault.Fork()
		labels := []string{"engine", engine, "slice", string(id)}
		if config.ProfileLabel != "" {
			labels = append(labels, "suite", config.ProfileLabel)
		}
		var res *Result[S, R, P]
		pprof.Do(context.Background(), pprof.Labels(labels...),
			func(context.Context) {
				res, err = a.withClient(client).RunEngine(engine, initial, cfg)
			})
		if err != nil {
			errs[i] = fmt.Errorf("slice %s: %w", id, err)
			return
		}
		out.Slices[i] = SliceRun[S, R, P]{ID: id, Client: client, Result: res}
	}

	workers := config.SliceWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ids) {
		workers = len(ids)
	}
	if workers <= 1 {
		for i := range ids {
			runOne(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(ids) {
						return
					}
					runOne(i)
				}
			}()
		}
		wg.Wait()
	}
	out.Elapsed = time.Since(start)
	var fatal []error
	for _, err := range errs {
		if err != nil {
			fatal = append(fatal, err)
		}
	}
	if len(fatal) > 0 {
		return nil, errors.Join(fatal...)
	}
	return out, nil
}
