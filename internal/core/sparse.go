package core

// This file is the sparse tabulation scheduler: a structure-driven
// replacement for the dense FIFO fact worklist, used by the
// order-insensitive solvers (RunTD, and RunBU's instantiation pass). It
// reads the loop-nest structure index (ir.BuildStructIndex) and changes
// three things about how the same facts get processed:
//
//  1. Priority draining. Facts are batched per node and nodes are popped
//     from a priority heap ordered (innermost loop region first, then
//     reverse postorder), so a dirty loop saturates before its results
//     fan out — the dense FIFO instead interleaves loop iteration with
//     downstream propagation and re-touches the downstream nodes once per
//     wave.
//  2. Dirty-frontier stamps. Each node carries an input generation,
//     bumped when a fact lands on it; a pop whose generation didn't
//     advance past the last visit is skipped. Together with per-node
//     batching this means a node is visited once per batch of incoming
//     facts, not once per fact.
//  3. Region-level memoization. For a memoizable loop region (single
//     entry at the header, call-free, no entry/exit node inside — see
//     ir.Region), the closure of the whole region under a seed state at
//     its header is computed once with the chain-memo machinery and
//     cached per seed. Re-entering the region under a new calling context
//     replays the cached per-node image sets with batch inserts instead
//     of re-iterating the loop to a fixpoint.
//
// Everything observable is preserved: the fact closure is order
// independent, budgets and Steps stay in original-graph units (every
// inserted fact charges exactly one step, so Steps == NumPathEdges at
// completion, as on the dense paths), and a budget trip lands the
// path-edge counter on exactly MaxPathEdges+1 like both dense views. The
// hybrid engines (swift, swift-async) never run sparse: their trigger
// decisions sample EntrySeen mid-run, where fact pop order is observable —
// the same constraint that pins them to the raw view (see DESIGN.md §13).

import (
	"cmp"

	"swift/internal/ir"
)

// SparseStats reports the sparse scheduler's per-run structure telemetry.
// It is observational only: it is excluded from EncodeTDResult, so encoded
// result tables stay byte-identical across scheduler choices.
type SparseStats struct {
	// Enabled reports whether the run used the sparse scheduler.
	Enabled bool
	// Regions, MaxDepth and MemoRegions describe the structure index:
	// loop-region count, deepest nesting, and regions eligible for
	// region-level memoization.
	Regions     int
	MaxDepth    int
	MemoRegions int
	// Pops counts node activations popped from the priority worklist. The
	// dense solver pops once per fact instead, so the dense equivalent is
	// Steps (== NumPathEdges at completion); Pops/Steps is the batching
	// win.
	Pops int
	// StalePops counts pops skipped because the node's input generation
	// did not advance since its last visit.
	StalePops int
	// ReplayFacts counts facts installed by region replays without ever
	// being scheduled — the nodes the dirty frontier skipped.
	ReplayFacts int
	// RegionHits/RegionMisses/RegionFallbacks count region-closure memo
	// lookups: hits replayed a cached image, misses computed one, and
	// fallbacks reverted to generic propagation (closure larger than
	// maxRegionClosureFacts).
	RegionHits      int
	RegionMisses    int
	RegionFallbacks int
}

// sparseNodeBits is the width of the node-ID field in a heap key; nodes,
// and RPO positions, must fit in it.
const sparseNodeBits = 22

// maxRegionClosureFacts caps the fact count of one region-closure
// computation. The closure runs outside the path-edge budget (its facts
// are only charged when a replay installs them), so a pathological
// state-space blowup inside a single region must not be able to run away:
// past the cap the solver falls back to generic scheduled propagation,
// which charges the budget fact by fact exactly like the dense solver.
const maxRegionClosureFacts = 1 << 20

// sparseState is the scheduler state of one sparse run.
type sparseState[S cmp.Ordered] struct {
	idx *ir.StructIndex
	// useRegions gates the region-memo path: compressed view only (the
	// closure needs canonical chain sets) and not under NoStructIndex.
	useRegions bool
	// key packs each node's heap priority and identity:
	// (maxDepth-depth) << 44 | rpo << 22 | nodeID, popped min-first.
	key []int64
	// pend holds per-node pending facts in arrival order; gen/done are the
	// dirty-frontier input-generation stamps; inq dedupes heap entries.
	pend      [][]pathPair[S]
	gen, done []uint32
	inq       []bool
	heap      []int64
	free      [][]pathPair[S]
	rmeta     []*regionMeta[S]
	stats     *SparseStats
}

// regionMeta is the solver-side view of one memoizable region: member
// positions, exit edges grouped by source node, and the per-seed closure
// memo.
type regionMeta[S cmp.Ordered] struct {
	r       *ir.Region
	pos     map[int]int32
	exitsAt map[int][]*ir.SuperEdge
	// memo maps a header seed state to an index into images, or -1 when
	// the closure overflowed and the seed is pinned to the fallback path.
	memo   map[S]int32
	images []regionImage[S]
}

// regionImage is one cached region closure: for every original node the
// region touches (view members and chain interiors), the sorted state set
// reachable inside the region from the seed. nodes is sorted by ID.
type regionImage[S cmp.Ordered] struct {
	nodes []int32
	sets  []sortedSet[S]
}

// newSparseState builds scheduler state for one run, or returns nil when
// the program exceeds the key packing limits (the run then stays dense;
// the limits are program properties, so the choice is deterministic).
func newSparseState[S cmp.Ordered](idx *ir.StructIndex, config Config, stats *SparseStats) *sparseState[S] {
	n := idx.View.CFG.NodeCount
	if n >= 1<<sparseNodeBits || idx.MaxDepth >= 1<<15 {
		return nil
	}
	sp := &sparseState[S]{
		idx:        idx,
		useRegions: idx.View.Compressed && !config.NoStructIndex,
		key:        make([]int64, n),
		pend:       make([][]pathPair[S], n),
		gen:        make([]uint32, n),
		done:       make([]uint32, n),
		inq:        make([]bool, n),
		rmeta:      make([]*regionMeta[S], len(idx.Regions)),
		stats:      stats,
	}
	maxd := int64(idx.MaxDepth)
	for i := 0; i < n; i++ {
		rpo := int64(idx.RPO[i])
		if rpo < 0 {
			sp.key[i] = -1 // chain interior: never scheduled
			continue
		}
		d := int64(idx.Depth[i])
		if config.NoStructIndex {
			d = maxd // uniform: plain RPO order, no region priority
		}
		sp.key[i] = (maxd-d)<<44 | rpo<<sparseNodeBits | int64(i)
	}
	stats.Enabled = true
	stats.Regions = len(idx.Regions)
	stats.MaxDepth = idx.MaxDepth
	if sp.useRegions {
		stats.MemoRegions = idx.MemoizableRegions
	}
	return sp
}

// enqueue records a newly inserted fact for its node and schedules the
// node if it is not already queued.
func (sp *sparseState[S]) enqueue(node int, p pathPair[S]) {
	buf := sp.pend[node]
	if buf == nil {
		if k := len(sp.free); k > 0 {
			buf = sp.free[k-1]
			sp.free = sp.free[:k-1]
		}
	}
	sp.pend[node] = append(buf, p)
	sp.gen[node]++
	if !sp.inq[node] {
		sp.inq[node] = true
		sp.heapPush(sp.key[node])
	}
}

func (sp *sparseState[S]) heapPush(k int64) {
	h := append(sp.heap, k)
	for i := len(h) - 1; i > 0; {
		p := (i - 1) / 2
		if h[p] <= h[i] {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	sp.heap = h
}

func (sp *sparseState[S]) heapPop() int64 {
	h := sp.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h) && h[l] < h[m] {
			m = l
		}
		if r < len(h) && h[r] < h[m] {
			m = r
		}
		if m == i {
			break
		}
		h[m], h[i] = h[i], h[m]
		i = m
	}
	sp.heap = h
	return top
}

// putBuf recycles a drained pending buffer (elements already zeroed).
func (sp *sparseState[S]) putBuf(buf []pathPair[S]) {
	if cap(buf) == 0 || cap(buf) > maxRetainedWork || len(sp.free) >= 64 {
		return
	}
	sp.free = append(sp.free, buf[:0])
}

// regionMeta returns the solver-side metadata of a memoizable region,
// building it on first use.
func (sp *sparseState[S]) regionMeta(rid int) *regionMeta[S] {
	rm := sp.rmeta[rid]
	if rm != nil {
		return rm
	}
	r := sp.idx.Regions[rid]
	rm = &regionMeta[S]{
		r:       r,
		pos:     make(map[int]int32, len(r.ViewNodes)),
		exitsAt: map[int][]*ir.SuperEdge{},
		memo:    map[S]int32{},
	}
	for i, n := range r.ViewNodes {
		rm.pos[n] = int32(i)
	}
	for _, se := range r.Exits {
		rm.exitsAt[se.From.ID] = append(rm.exitsAt[se.From.ID], se)
	}
	sp.rmeta[rid] = rm
	return rm
}

// runSparse drains the priority worklist to a fixpoint. It is the sparse
// counterpart of run; the per-fact processing it delegates to is the same
// step logic the dense path uses, so the resulting fact closure, summary
// table, entry multisets and counters are identical.
func (t *tdSolver[S, R, P]) runSparse() error {
	sp := t.sp
	for len(sp.heap) > 0 {
		node := int(sp.heapPop() & (1<<sparseNodeBits - 1))
		sp.inq[node] = false
		g := sp.gen[node]
		if g == sp.done[node] {
			sp.stats.StalePops++
			continue
		}
		pend := sp.pend[node]
		sp.pend[node] = nil
		sp.stats.Pops++
		if err := t.dl.check(); err != nil {
			return err
		}
		err := t.stepSparseBatch(node, pend)
		sp.putBuf(pend)
		sp.done[node] = g
		if err != nil {
			return err
		}
	}
	return nil
}

// stepSparseBatch processes one node's pending facts in arrival order.
// Facts that arrive at this node while the batch runs (self-loops,
// immediate summaries) go to a fresh pending buffer and reschedule the
// node; the generation snapshot in runSparse keeps them unprocessed here.
func (t *tdSolver[S, R, P]) stepSparseBatch(node int, pend []pathPair[S]) error {
	n := t.cfg.AllNodes[node]
	pc := t.cfgOf[n.Proc]
	isExit := n.ID == pc.Exit.ID
	var rm *regionMeta[S]
	if t.sp.useRegions {
		if rid := t.sp.idx.MemoHeader[node]; rid >= 0 {
			rm = t.sp.regionMeta(int(rid))
		}
	}
	for i := range pend {
		p := pend[i]
		pend[i] = pathPair[S]{}
		if isExit {
			if err := t.recordSummary(n.Proc, p.in, p.out); err != nil {
				return err
			}
		}
		if rm != nil {
			if err := t.regionStep(rm, p.in, p.out); err != nil {
				return err
			}
			continue
		}
		for _, se := range t.view.Out[node] {
			if se.IsCall() {
				if err := t.handleCall(se, p.in, p.out); err != nil {
					return err
				}
				continue
			}
			if err := t.traverse(se, p.in, p.out); err != nil {
				return err
			}
		}
	}
	return nil
}

// regionStep handles a fact arriving at the header of a memoizable region:
// the region's closure under the seed is replayed wholesale instead of
// scheduling its nodes. In-region edges never run here — the image already
// contains their contribution — and exit edges fire exactly once per state
// that is new at their source under this context (the seed itself, plus
// whatever the replay adds), which is precisely when the dense solver's
// per-fact step would have fired them.
func (t *tdSolver[S, R, P]) regionStep(rm *regionMeta[S], in, seed S) error {
	img, ok, err := t.regionImage(rm, seed)
	if err != nil {
		return err
	}
	if !ok {
		// Closure overflow: generic propagation for this fact. Member
		// nodes then schedule normally; budgets charge fact by fact.
		t.sp.stats.RegionFallbacks++
		for _, se := range t.view.Out[rm.r.Header] {
			if se.IsCall() {
				if err := t.handleCall(se, in, seed); err != nil {
					return err
				}
				continue
			}
			if err := t.traverse(se, in, seed); err != nil {
				return err
			}
		}
		return nil
	}
	header := rm.r.Header
	var exitNodes []int
	var exitSets []sortedSet[S]
	for i, nd := range img.nodes {
		node := int(nd)
		added, insErr := t.insertFactSet(node, in, img.sets[i])
		t.sp.stats.ReplayFacts += len(added)
		if len(rm.exitsAt[node]) > 0 && (len(added) > 0 || node == header) {
			// Capture the states to push through this node's exit edges:
			// the newly added ones, plus the seed at the header (it was
			// inserted by the propagate that scheduled this step, so no
			// earlier replay covered it). added aliases addbuf and is in
			// descending order (mergeAppend merges backwards) — rebuild it
			// ascending in a copy that survives addbuf reuse.
			out := make(sortedSet[S], 0, len(added)+1)
			for x := len(added) - 1; x >= 0; x-- {
				out = append(out, added[x])
			}
			if node == header {
				out, _ = out.insert(seed)
			}
			exitNodes = append(exitNodes, node)
			exitSets = append(exitSets, out)
		}
		if insErr != nil {
			return insErr
		}
		if err := t.dl.check(); err != nil {
			return err
		}
	}
	for j, node := range exitNodes {
		for _, se := range rm.exitsAt[node] {
			if se.IsCall() {
				for _, s := range exitSets[j] {
					if err := t.handleCall(se, in, s); err != nil {
						return err
					}
				}
				continue
			}
			for _, s := range exitSets[j] {
				if err := t.traverse(se, in, s); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// regionImage looks up or computes the closure image of a seed at the
// region header. ok is false when the seed is pinned to the fallback path.
func (t *tdSolver[S, R, P]) regionImage(rm *regionMeta[S], seed S) (*regionImage[S], bool, error) {
	if k, hit := rm.memo[seed]; hit {
		if k < 0 {
			return nil, false, nil
		}
		t.sp.stats.RegionHits++
		return &rm.images[k], true, nil
	}
	t.sp.stats.RegionMisses++
	img, ok, err := t.computeRegionImage(rm, seed)
	if err != nil {
		return nil, false, err
	}
	if !ok {
		rm.memo[seed] = -1
		return nil, false, nil
	}
	rm.images = append(rm.images, *img)
	rm.memo[seed] = int32(len(rm.images) - 1)
	return &rm.images[len(rm.images)-1], true, nil
}

// computeRegionImage runs the region-local fixpoint: starting from the
// seed at the header, push states through the region's internal superedges
// (chain memos supply the per-position sets) until nothing new appears.
// The sweep visits member nodes in RPO order, so the client's Trans calls
// — and hence any interning it performs — happen in a deterministic order;
// the resulting image is the unique closure regardless. Exit edges are
// deliberately not walked: replays fire them per new state.
func (t *tdSolver[S, R, P]) computeRegionImage(rm *regionMeta[S], seed S) (*regionImage[S], bool, error) {
	r := rm.r
	acc := make([]sortedSet[S], len(r.ViewNodes))
	frontier := make([]sortedSet[S], len(r.ViewNodes))
	intAcc := map[int]sortedSet[S]{}
	hp := rm.pos[r.Header]
	acc[hp] = sortedSet[S]{seed}
	frontier[hp] = sortedSet[S]{seed}
	total := 1
	var rev sortedSet[S]
	for {
		dirty := false
		for i, nodeID := range r.ViewNodes {
			f := frontier[i]
			if len(f) == 0 {
				continue
			}
			dirty = true
			frontier[i] = nil
			for _, se := range t.view.Out[nodeID] {
				tp, inRegion := rm.pos[se.To.ID]
				if !inRegion || se.IsCall() {
					continue // exit edges and calls are replay business
				}
				for _, s := range f {
					m, k := t.chainEntry(se, s)
					rows := int32(len(se.Interior) + 1)
					off, lrow := m.starts[k], k*rows
					for wi, w := range se.Interior {
						set := m.states[off : off+m.lens[lrow+int32(wi)]]
						off += m.lens[lrow+int32(wi)]
						merged, added := mergeAppend(intAcc[w.ID], set, t.addbuf)
						t.addbuf = added
						if len(added) > 0 {
							intAcc[w.ID] = merged
							total += len(added)
						}
					}
					final := m.states[off : off+m.lens[lrow+rows-1]]
					merged, added := mergeAppend(acc[tp], final, t.addbuf)
					t.addbuf = added
					if len(added) > 0 {
						acc[tp] = merged
						total += len(added)
						// added is in descending order (mergeAppend merges
						// backwards); reverse it before extending the
						// frontier.
						rev = rev[:0]
						for x := len(added) - 1; x >= 0; x-- {
							rev = append(rev, added[x])
						}
						if len(frontier[tp]) == 0 {
							// union would alias the reused rev buffer here.
							frontier[tp] = append(sortedSet[S]{}, rev...)
						} else {
							frontier[tp] = frontier[tp].union(rev)
						}
					}
				}
			}
			if total > maxRegionClosureFacts {
				return nil, false, nil
			}
			if err := t.dl.check(); err != nil {
				return nil, false, err
			}
		}
		if !dirty {
			break
		}
	}
	img := &regionImage[S]{}
	for i, nodeID := range r.ViewNodes {
		if len(acc[i]) > 0 {
			img.nodes = append(img.nodes, int32(nodeID))
			img.sets = append(img.sets, acc[i])
		}
	}
	for w, set := range intAcc {
		img.nodes = append(img.nodes, int32(w))
		img.sets = append(img.sets, set)
	}
	sortImageByNode(img)
	return img, true, nil
}

// sortImageByNode sorts the parallel image arrays by node ID (insertion
// order of the interior entries comes from map iteration and must not leak
// into replay order).
func sortImageByNode[S cmp.Ordered](img *regionImage[S]) {
	// Simple insertion sort: images are small and almost sorted (view
	// members arrive in RPO order, interiors follow).
	for i := 1; i < len(img.nodes); i++ {
		for j := i; j > 0 && img.nodes[j-1] > img.nodes[j]; j-- {
			img.nodes[j-1], img.nodes[j] = img.nodes[j], img.nodes[j-1]
			img.sets[j-1], img.sets[j] = img.sets[j], img.sets[j-1]
		}
	}
}
