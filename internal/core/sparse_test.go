package core_test

// Equivalence tests for the structure-driven sparse scheduler: on every
// program we can get our hands on — the killgen fixture, randomized
// killgen programs, the paper-mirror benchmarks and the deep-nest
// structure stress — the sparse priority worklist (with and without the
// loop-structure index and region memoization) must produce result tables
// and counters byte-identical to the dense FIFO baseline, under every
// engine and at every slice-worker count. The sparse path is purely a
// scheduling optimization; these tests are the contract that makes the
// -nosparse/-nostruct ablation knobs meaningful A/B switches.

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"swift/internal/benchprog"
	"swift/internal/core"
	"swift/internal/driver"
)

// sparseConfigs are the scheduler/view combinations that must all be
// observationally identical. The zero config is the default: sparse
// scheduler over the compressed view with region memoization.
var sparseConfigs = []struct {
	name            string
	noSparse, noIdx bool
	rawCFG          bool
}{
	{"sparse+compressed", false, false, false},
	{"dense", true, false, false},
	{"nostruct", false, true, false},
	{"sparse+raw", false, false, true},
	{"dense+raw", true, false, true},
}

func applySparse(cfg core.Config, noSparse, noIdx, raw bool) core.Config {
	cfg.NoSparse = noSparse
	cfg.NoStructIndex = noIdx
	cfg.RawCFG = raw
	return cfg
}

// sparseVariants runs RunTD under every scheduler/view combination and
// asserts the tables and counters are indistinguishable, plus that the
// sparse stats honestly report whether the scheduler engaged. The default
// (sparse) result is returned.
func sparseVariants(t *testing.T, label string, an *core.Analysis[string, string, string], init string, cfg core.Config) *core.Result[string, string, string] {
	t.Helper()
	base := an.RunTD(init, applySparse(cfg, false, false, false))
	if !base.TD.Sparse.Enabled {
		t.Errorf("%s: sparse scheduler did not engage on the default config", label)
	}
	for _, v := range sparseConfigs[1:] {
		got := an.RunTD(init, applySparse(cfg, v.noSparse, v.noIdx, v.rawCFG))
		if !errors.Is(got.Err, base.Err) && !errors.Is(base.Err, got.Err) {
			t.Errorf("%s/%s: err = %v, want %v", label, v.name, got.Err, base.Err)
			continue
		}
		sameTD(t, label+"/"+v.name, base.TD, got.TD)
		if got.TD.Sparse.Enabled == v.noSparse {
			t.Errorf("%s/%s: Sparse.Enabled = %v under noSparse=%v",
				label, v.name, got.TD.Sparse.Enabled, v.noSparse)
		}
	}
	return base
}

func TestSparseMatchesDenseOnFixture(t *testing.T) {
	an, taint := newAnalysis(t)
	init := taint.Initial()
	res := sparseVariants(t, "fixture", an, init, core.TDConfig())
	if !res.Completed() {
		t.Fatalf("td: %v", res.Err)
	}

	// The bottom-up baseline's instantiation pass runs the same solver, so
	// it must be equally indifferent to the scheduler.
	buBase := an.RunBU(init, core.BUConfig())
	for _, v := range sparseConfigs[1:] {
		got := an.RunBU(init, applySparse(core.BUConfig(), v.noSparse, v.noIdx, v.rawCFG))
		if !buBase.Completed() || !got.Completed() {
			t.Fatalf("bu/%s: %v / %v", v.name, buBase.Err, got.Err)
		}
		sameTD(t, "fixture/bu/"+v.name, buBase.TD, got.TD)
		if buBase.BUStats != got.BUStats {
			t.Errorf("bu/%s: stats differ: %+v vs %+v", v.name, buBase.BUStats, got.BUStats)
		}
	}
}

// TestSparseMatchesDenseRandomPrograms fuzzes the equivalence over seeded
// random programs: every scheduler/view combination of the top-down
// solver, the bottom-up instantiation pass, and the hybrid (which must be
// bit-identical because it always pins the dense FIFO — the knobs are
// no-ops there, not perturbations).
func TestSparseMatchesDenseRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 12; trial++ {
		prog, taint := randomKillgenProgram(rng)
		an, err := core.NewAnalysis[string, string, string](taint, prog)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		init := taint.Initial()
		label := fmt.Sprintf("trial%d", trial)
		sparseVariants(t, label, an, init, core.TDConfig())

		buBase := an.RunBU(init, core.BUConfig())
		buDense := an.RunBU(init, applySparse(core.BUConfig(), true, false, false))
		if buBase.Err != nil || buDense.Err != nil {
			t.Fatalf("%s: bu: %v / %v", label, buBase.Err, buDense.Err)
		}
		sameTD(t, label+"/bu", buBase.TD, buDense.TD)
		if buBase.BUStats != buDense.BUStats {
			t.Errorf("%s: bu stats differ: %+v vs %+v", label, buBase.BUStats, buDense.BUStats)
		}

		cfg := core.DefaultConfig()
		cfg.K = 1
		swBase := an.RunSwift(init, cfg)
		swKnob := an.RunSwift(init, applySparse(cfg, true, true, false))
		if swBase.Err != nil || swKnob.Err != nil {
			t.Fatalf("%s: swift: %v / %v", label, swBase.Err, swKnob.Err)
		}
		sameTD(t, label+"/swift", swBase.TD, swKnob.TD)
		if swBase.TD.Sparse.Enabled || swKnob.TD.Sparse.Enabled {
			t.Errorf("%s: hybrid reported a sparse run; it must stay dense", label)
		}
		if swBase.BUStats != swKnob.BUStats {
			t.Errorf("%s: swift stats differ with knobs set", label)
		}
	}
}

// TestSparseMatchesDenseOnBenchSuite drives the full pipeline on every
// paper-mirror benchmark plus the deep-nest structure stress: the encoded
// result tables — every path edge, summary, entry multiset, error text and
// counter — must be byte-identical between the dense and sparse runs of
// one shared build. Runs that exhaust the (deliberately modest) path-edge
// budget must abort on the identical insert count, per the
// original-graph-units contract.
func TestSparseMatchesDenseOnBenchSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("bench-suite equivalence is not a -short test")
	}
	names := []string{"deep-nest"}
	for _, p := range benchprog.Profiles() {
		names = append(names, p.Name)
	}
	for _, name := range names {
		for _, engine := range []string{"td", "bu"} {
			t.Run(name+"/"+engine, func(t *testing.T) {
				p, ok := benchprog.ProfileByName(name)
				if !ok {
					t.Fatalf("unknown profile %s", name)
				}
				prog, err := benchprog.Generate(p)
				if err != nil {
					t.Fatal(err)
				}
				// One build for all runs: shared interner, comparable AbsIDs
				// (see TestCompressedMatchesRawOnTestdata).
				b, err := driver.FromHIR(prog)
				if err != nil {
					t.Fatal(err)
				}
				run := func(noSparse, noIdx bool) *driver.Result {
					cfg := core.DefaultConfig()
					// The quick-budget caps: the largest stand-ins are built
					// to exhaust the TD path-edge budget, and the unpruned
					// bottom-up phase needs a relation budget to terminate at
					// all on the alias-tangled ones.
					cfg.MaxPathEdges = 300_000
					cfg.MaxRelations = 60_000
					cfg.NoSparse = noSparse
					cfg.NoStructIndex = noIdx
					res, err := b.Run(engine, cfg)
					if err != nil {
						t.Fatal(err)
					}
					return res
				}
				dense := run(true, false)
				sparse := run(false, false)
				nostruct := run(false, true)
				for _, v := range []struct {
					name string
					res  *driver.Result
				}{{"sparse", sparse}, {"nostruct", nostruct}} {
					if (dense.Err == nil) != (v.res.Err == nil) ||
						(dense.Err != nil && !errors.Is(v.res.Err, core.ErrBudget)) {
						t.Fatalf("%s: err = %v, dense err = %v", v.name, v.res.Err, dense.Err)
					}
					if dense.Err != nil {
						// Budget abort: only the insert count is pinned across
						// schedulers (see TestBudgetAbortAgreesAcrossViews). A
						// bu run aborted before instantiation has no TD table
						// at all — then both sides must lack one.
						if (dense.TD == nil) != (v.res.TD == nil) {
							t.Errorf("%s: TD table presence differs at abort", v.name)
						} else if dense.TD != nil && dense.TD.NumPathEdges != v.res.TD.NumPathEdges {
							t.Errorf("%s: path edges at abort: %d vs %d",
								v.name, v.res.TD.NumPathEdges, dense.TD.NumPathEdges)
						}
						continue
					}
					if !bytes.Equal(driver.EncodeResultTables(b, dense), driver.EncodeResultTables(b, v.res)) {
						sameTD(t, v.name, dense.TD, v.res.TD) // pinpoint the field
						t.Errorf("%s: encoded result tables differ from dense", v.name)
					}
				}
			})
		}
	}
}

// TestSparseStatsSanity pins that the scheduler's telemetry reflects real
// work: batching must pop far fewer times than it propagates on loopy
// programs, and the deep loop nest must exercise region memoization.
func TestSparseStatsSanity(t *testing.T) {
	for _, tc := range []struct {
		name       string
		wantRegion bool
	}{{"elevator", false}, {"deep-nest", true}} {
		p, ok := benchprog.ProfileByName(tc.name)
		if !ok {
			t.Fatalf("unknown profile %s", tc.name)
		}
		prog, err := benchprog.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := driver.FromHIR(prog)
		if err != nil {
			t.Fatal(err)
		}
		res, err := b.Run("td", core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if res.Err != nil {
			t.Fatalf("%s: %v", tc.name, res.Err)
		}
		sp := res.TD.Sparse
		if !sp.Enabled || sp.Regions == 0 || sp.MaxDepth == 0 {
			t.Errorf("%s: structure index missing from stats: %+v", tc.name, sp)
		}
		if sp.Pops == 0 || sp.Pops >= res.TD.Steps {
			t.Errorf("%s: batching ineffective: %d pops for %d steps", tc.name, sp.Pops, res.TD.Steps)
		}
		if sp.RegionFallbacks != 0 {
			t.Errorf("%s: %d region replay fallbacks", tc.name, sp.RegionFallbacks)
		}
		// RegionHits stays zero when every (region, seed) pair is unique —
		// a repeated seed is filtered at the path-edge table before it can
		// re-reach the header — so the engagement signal is computed images
		// (misses) being replayed, not hits.
		if tc.wantRegion && (sp.MemoRegions == 0 || sp.RegionMisses == 0 || sp.ReplayFacts == 0) {
			t.Errorf("%s: region memoization did not engage: %+v", tc.name, sp)
		}
	}
}

// TestSparseKnobsInertInAsyncReplay covers the fourth engine: the
// asynchronous hybrid always pins the dense FIFO over the raw view, so a
// recorded schedule must replay bit-identically regardless of the sparse
// knobs' settings.
func TestSparseKnobsInertInAsyncReplay(t *testing.T) {
	trace, recorded := recordRun(t, drainProgram)
	for _, v := range []struct {
		name            string
		noSparse, noIdx bool
	}{{"default", false, false}, {"nosparse", true, false}, {"nostruct", false, true}} {
		kg := drainClient()
		an, err := core.NewAnalysis[string, string, string](kg, drainProgram())
		if err != nil {
			t.Fatal(err)
		}
		init := kg.State(kg.MakeBits())
		cfg := core.DefaultConfig()
		cfg.K = 1
		cfg.ReplayTrace = trace
		cfg.NoSparse = v.noSparse
		cfg.NoStructIndex = v.noIdx
		res := an.RunSwiftAsync(init, cfg)
		if res.Err != nil {
			t.Fatalf("%s: replay failed: %v", v.name, res.Err)
		}
		if res.TD.Sparse.Enabled {
			t.Errorf("%s: async hybrid reported a sparse run; it must stay dense", v.name)
		}
		if got := fingerprintResult(res, "main", init); got != recorded {
			t.Errorf("%s: replay diverges from record\n--- record ---\n%s--- replay ---\n%s",
				v.name, recorded, got)
		}
	}
}

// TestSparseMatchesDenseSliced closes the loop at the driver's sliced
// layer. Per-slice clients intern fresh, so same-scheduler runs produce
// identical per-slice tables at every worker count; across schedulers the
// traversal order — and with it the AbsID numbering — differs, so the
// comparison drops to the ID-independent quantities: every per-slice
// counter, the aggregate work, and the merged error report.
func TestSparseMatchesDenseSliced(t *testing.T) {
	p, ok := benchprog.ProfileByName("toba-s")
	if !ok {
		t.Fatal("unknown profile toba-s")
	}
	prog, err := benchprog.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := driver.FromHIR(prog)
	if err != nil {
		t.Fatal(err)
	}
	runSliced := func(workers int, noSparse bool) (*driver.SlicedResult, []string) {
		cfg := core.DefaultConfig()
		cfg.SliceWorkers = workers
		cfg.NoSparse = noSparse
		res, err := b.RunSliced("td", cfg)
		if err != nil {
			t.Fatalf("workers=%d nosparse=%v: %v", workers, noSparse, err)
		}
		if e := res.Err(); e != nil {
			t.Fatalf("workers=%d nosparse=%v: %v", workers, noSparse, e)
		}
		report, err := b.SlicedErrorReport(res)
		if err != nil {
			t.Fatalf("workers=%d nosparse=%v: %v", workers, noSparse, err)
		}
		return res, report
	}
	base, baseReport := runSliced(1, false)
	for _, workers := range []int{1, 2, 8} {
		for _, noSparse := range []bool{false, true} {
			if workers == 1 && !noSparse {
				continue // the baseline itself
			}
			label := fmt.Sprintf("workers=%d/nosparse=%v", workers, noSparse)
			got, report := runSliced(workers, noSparse)
			if len(got.Slices) != len(base.Slices) {
				t.Fatalf("%s: %d slices, want %d", label, len(got.Slices), len(base.Slices))
			}
			for i := range base.Slices {
				if got.Slices[i].ID != base.Slices[i].ID {
					t.Fatalf("%s: slice %d is %s, want %s", label, i, got.Slices[i].ID, base.Slices[i].ID)
				}
				slabel := label + "/" + string(base.Slices[i].ID)
				bt, gt := base.Slices[i].Result.TD, got.Slices[i].Result.TD
				if noSparse {
					if bt.NumPathEdges != gt.NumPathEdges || bt.NumSummaries != gt.NumSummaries || bt.Steps != gt.Steps {
						t.Errorf("%s: counters differ: (%d,%d,%d) vs (%d,%d,%d)", slabel,
							bt.NumPathEdges, bt.NumSummaries, bt.Steps,
							gt.NumPathEdges, gt.NumSummaries, gt.Steps)
					}
				} else {
					sameTD(t, slabel, bt, gt)
				}
			}
			if got.WorkUnits() != base.WorkUnits() {
				t.Errorf("%s: work units %d, want %d", label, got.WorkUnits(), base.WorkUnits())
			}
			if fmt.Sprint(report) != fmt.Sprint(baseReport) {
				t.Errorf("%s: merged report %v, want %v", label, report, baseReport)
			}
		}
	}
}
