package core

import (
	"cmp"

	"swift/internal/ir"
)

// BottomUp is the bottom-up half of a Client: everything except the
// top-down transfer functions. Section 5.1 of the paper observes that a
// top-down analysis satisfying condition C1 can be synthesized from it
// mechanically:
//
//	trans(c)(σ) = {σ′ | (σ,σ′) ∈ γ(rtrans(c)(id#))}.
type BottomUp[S cmp.Ordered, R cmp.Ordered, P cmp.Ordered] interface {
	Identity() R
	RTrans(c *ir.Prim, r R) []R
	RComp(r1, r2 R) []R
	Applies(r R, s S) bool
	Apply(r R, s S) []S
	PreOf(r R) P
	PreHolds(pre P, s S) bool
	PreImplies(p, q P) bool
	WPre(r R, post P) []P
	Reduce(rels []R) []R
}

// FromBottomUp completes a bottom-up analysis into a full Client by
// synthesizing Trans per the Section 5.1 recipe. The per-command relation
// sets rtrans(c)(id#) are memoized, so the synthesized top-down transfer
// costs one relation-set application per state.
//
// The resulting Client satisfies condition C1 by construction; the
// remaining obligations on the bottom-up analysis (C2 for RComp, C3 for
// WPre) are unchanged.
func FromBottomUp[S cmp.Ordered, R cmp.Ordered, P cmp.Ordered](b BottomUp[S, R, P]) Client[S, R, P] {
	return &synthClient[S, R, P]{BottomUp: b, memo: map[string][]R{}}
}

// synthClient derives Trans from the embedded bottom-up analysis.
type synthClient[S cmp.Ordered, R cmp.Ordered, P cmp.Ordered] struct {
	BottomUp[S, R, P]
	memo map[string][]R
}

// Trans implements core.Client via the synthesis recipe.
func (c *synthClient[S, R, P]) Trans(prim *ir.Prim, s S) []S {
	key := prim.Key()
	rels, ok := c.memo[key]
	if !ok {
		rels = c.RTrans(prim, c.Identity())
		c.memo[key] = rels
	}
	var out []S
	for _, r := range rels {
		if c.Applies(r, s) {
			out = append(out, c.Apply(r, s)...)
		}
	}
	return newSortedSet(out)
}
