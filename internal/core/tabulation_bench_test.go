package core_test

// Tabulation hot-path benchmarks on the paper-mirror programs:
//
//   - BenchmarkTabulationCompressed — the shipped solver: superblock view,
//     chain transfer memo, per-node map[in]sortedSet path-edge table,
//     structure-driven sparse scheduler (DESIGN.md §13).
//   - BenchmarkTabulationDense — A/B control: the shipped solver with the
//     sparse scheduler off (Config.NoSparse), i.e. the dense FIFO that was
//     the shipped configuration before the structure layer.
//   - BenchmarkTabulationNoStruct — A/B control: sparse scheduler without
//     the loop-structure index (Config.NoStructIndex): plain RPO batching,
//     no region memoization.
//   - BenchmarkTabulationRaw — the pre-optimization solver preserved in
//     legacy_bench_test.go: one edge per traversal, map[pathPair]bool
//     table, no memo. This is the "before" the ratio is measured against.
//   - BenchmarkTabulationRawView — A/B control: the shipped solver on the
//     raw view with the memo off, isolating how much of the win comes from
//     compression+memo versus the path-edge table rework.
//
// Run with:
//
//	go test ./internal/core -bench BenchmarkTabulation -benchmem
//
// The measured ratios are recorded in EXPERIMENTS.md.

import (
	"reflect"
	"testing"

	"swift/internal/benchprog"
	"swift/internal/core"
	"swift/internal/driver"
)

// tabulationProfiles are the paper-mirror programs used for the benchmark
// (small, medium and the largest profiles the TD baseline completes
// quickly) plus deep-nest, the loop-structure stress fixture where region
// memoization carries most of the propagation.
var tabulationProfiles = []string{"jpat-p", "elevator", "toba-s", "javasrc-p", "deep-nest"}

func tabulationBuild(tb testing.TB, name string) *driver.Build {
	tb.Helper()
	p, ok := benchprog.ProfileByName(name)
	if !ok {
		tb.Fatalf("unknown profile %s", name)
	}
	prog, err := benchprog.Generate(p)
	if err != nil {
		tb.Fatal(err)
	}
	bl, err := driver.FromHIR(prog)
	if err != nil {
		tb.Fatal(err)
	}
	return bl
}

func BenchmarkTabulationCompressed(b *testing.B) {
	for _, name := range tabulationProfiles {
		b.Run(name, func(b *testing.B) {
			bl := tabulationBuild(b, name)
			cfg := core.TDConfig()
			// Warm once: interning and view construction happen on the first
			// run; the loop then measures the steady-state solve.
			if res, err := bl.Run("td", cfg); err != nil || res.Err != nil {
				b.Fatalf("warmup: %v / %v", err, res.Err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := bl.Run("td", cfg)
				if err != nil || res.Err != nil {
					b.Fatalf("%v / %v", err, res.Err)
				}
			}
		})
	}
}

// tabulationKnob benchmarks the shipped solver with one scheduler knob
// set — the -nosparse/-nostruct ablation controls.
func tabulationKnob(b *testing.B, noSparse, noIdx bool) {
	for _, name := range tabulationProfiles {
		b.Run(name, func(b *testing.B) {
			bl := tabulationBuild(b, name)
			cfg := core.TDConfig()
			cfg.NoSparse = noSparse
			cfg.NoStructIndex = noIdx
			if res, err := bl.Run("td", cfg); err != nil || res.Err != nil {
				b.Fatalf("warmup: %v / %v", err, res.Err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := bl.Run("td", cfg)
				if err != nil || res.Err != nil {
					b.Fatalf("%v / %v", err, res.Err)
				}
			}
		})
	}
}

func BenchmarkTabulationDense(b *testing.B)    { tabulationKnob(b, true, false) }
func BenchmarkTabulationNoStruct(b *testing.B) { tabulationKnob(b, false, true) }

func BenchmarkTabulationRaw(b *testing.B) {
	for _, name := range tabulationProfiles {
		b.Run(name, func(b *testing.B) {
			bl := tabulationBuild(b, name)
			cfg := core.TDConfig()
			init := bl.TS.InitialState()
			if _, err := core.LegacyRunTD(bl.Core.Client, bl.Core.CFG, cfg, init); err != nil {
				b.Fatalf("warmup: %v", err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.LegacyRunTD(bl.Core.Client, bl.Core.CFG, cfg, init); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTabulationRawView(b *testing.B) {
	for _, name := range tabulationProfiles {
		b.Run(name, func(b *testing.B) {
			bl := tabulationBuild(b, name)
			cfg := core.TDConfig()
			cfg.RawCFG = true
			cfg.NoTransferMemo = true
			if res, err := bl.Run("td", cfg); err != nil || res.Err != nil {
				b.Fatalf("warmup: %v / %v", err, res.Err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := bl.Run("td", cfg)
				if err != nil || res.Err != nil {
					b.Fatalf("%v / %v", err, res.Err)
				}
			}
		})
	}
}

// TestLegacySolverCountersMatch pins the baseline to the shipped solver: on
// the benchmark profiles, the seed algorithm preserved for the Raw
// benchmark must agree with the reworked solver on every counter the
// results tables consume and on the summary tables themselves. The legacy
// run goes first so it populates the shared interner; the shipped run then
// reuses the same state IDs, making the tables directly comparable.
func TestLegacySolverCountersMatch(t *testing.T) {
	for _, name := range []string{"jpat-p", "elevator", "toba-s"} {
		t.Run(name, func(t *testing.T) {
			bl := tabulationBuild(t, name)
			cfg := core.TDConfig()
			legacy, err := core.LegacyRunTD(bl.Core.Client, bl.Core.CFG, cfg, bl.TS.InitialState())
			if err != nil {
				t.Fatalf("legacy solver: %v", err)
			}
			res, err := bl.Run("td", cfg)
			if err != nil || res.Err != nil {
				t.Fatalf("shipped solver: %v / %v", err, res.Err)
			}
			td := res.TD
			if legacy.NumPathEdges != td.NumPathEdges ||
				legacy.NumSummaries != td.NumSummaries ||
				legacy.Steps != td.Steps {
				t.Fatalf("counters diverge: legacy edges=%d summaries=%d steps=%d, shipped edges=%d summaries=%d steps=%d",
					legacy.NumPathEdges, legacy.NumSummaries, legacy.Steps,
					td.NumPathEdges, td.NumSummaries, td.Steps)
			}
			if !reflect.DeepEqual(legacy.Summaries, td.Summaries) {
				t.Fatal("summary tables diverge between legacy and shipped solver")
			}
		})
	}
}
