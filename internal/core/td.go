package core

import (
	"cmp"
	"slices"

	"swift/internal/ir"
)

// pathPair is a top-down path edge at a program point: the procedure was
// entered in state in and has reached the point in state out. These pairs
// are exactly what the paper's td: PC → 2^(S×S) map records.
type pathPair[S cmp.Ordered] struct {
	in  S
	out S
}

// callerRec remembers a pending call so callee summaries can be plumbed back
// to the return site: the caller was entered in state in and control resumes
// at node ret.
type callerRec[S cmp.Ordered] struct {
	ret int
	in  S
}

// TDResult holds the output of the top-down tabulation: the td map, the
// procedure summary table, and the incoming-state bookkeeping used by SWIFT
// for triggering and for ranking relational cases.
type TDResult[S cmp.Ordered] struct {
	// PathEdges is the td map, indexed by CFG node ID: entry context of the
	// enclosing procedure → sorted set of states reached at the node under
	// that context. This groups the paper's td: PC → 2^(S×S) pairs by their
	// first component, so summary resumption and NodeStatesIn read one
	// bucket instead of scanning every pair at the node.
	PathEdges []map[S]sortedSet[S]
	// Summaries maps procedure → entry state → exit states. Each (entry,
	// exit) pair is one "top-down summary" in the paper's accounting.
	Summaries map[string]map[S]sortedSet[S]
	// EntrySeen maps procedure → multiset of incoming abstract states. The
	// multiplicity of σ is the number of distinct (call site, caller
	// context) pairs that delivered σ; it drives the prune ranking.
	EntrySeen map[string]multiset[S]
	// NumPathEdges and NumSummaries are running totals used for budgets and
	// reporting. Both are counted in original-graph units: a fact recorded
	// at an interior node of a compressed chain charges exactly like the
	// raw solver's insert at that node would have.
	NumPathEdges int
	NumSummaries int
	// Steps counts propagation work in original-graph units. On the dense
	// paths it counts worklist pops (one per fact), plus — on the
	// compressed view — one unit per new interior-node fact, which is the
	// pop the raw solver would have performed for it. The sparse scheduler
	// batches pops, so it charges one unit per inserted fact directly. At
	// completion Steps therefore equals NumPathEdges under every scheduler
	// and view.
	Steps int
	// Sparse reports the sparse scheduler's telemetry (zero value when the
	// run was dense). Observational only: excluded from EncodeTDResult.
	Sparse SparseStats

	// version counts path-edge insertions; the snapshot caches below are
	// dropped when it moves. The accessors memoize because clients call
	// them per check (error scans, per-node property tests); they are not
	// safe for concurrent use — call them after the run, or from the
	// solver's goroutine.
	version   int
	allSnap   sortedSet[S]
	allSnapV  int
	allSnapOK bool
	nodeSnap  map[int]sortedSet[S]
	nodeSnapV int
}

// SummaryCount returns the number of top-down summaries recorded for the
// procedure.
func (r *TDResult[S]) SummaryCount(proc string) int {
	n := 0
	for _, exits := range r.Summaries[proc] {
		n += len(exits)
	}
	return n
}

// nodeSnapshots returns the per-node snapshot cache, valid for the current
// version.
func (r *TDResult[S]) nodeSnapshots() map[int]sortedSet[S] {
	if r.nodeSnap == nil || r.nodeSnapV != r.version {
		r.nodeSnap = map[int]sortedSet[S]{}
		r.nodeSnapV = r.version
	}
	return r.nodeSnap
}

// NodeStates returns the sorted abstract states recorded at a CFG node,
// ignoring entry contexts. The result is memoized until the next path-edge
// insertion; callers must not mutate it.
func (r *TDResult[S]) NodeStates(node int) []S {
	snap := r.nodeSnapshots()
	if s, ok := snap[node]; ok {
		return s
	}
	var s sortedSet[S]
	for _, outs := range r.PathEdges[node] {
		s = s.union(outs)
	}
	snap[node] = s
	return s
}

// AllStates returns the sorted distinct abstract states recorded at any
// program point in any context — everything the analysis has shown may be
// reached. Clients scan it for error states, typically once per check, so
// the result is memoized until the next path-edge insertion; callers must
// not mutate it.
func (r *TDResult[S]) AllStates() []S {
	if r.allSnapOK && r.allSnapV == r.version {
		return r.allSnap
	}
	seen := map[S]bool{}
	var out []S
	for _, byIn := range r.PathEdges {
		for _, outs := range byIn {
			for _, s := range outs {
				if !seen[s] {
					seen[s] = true
					out = append(out, s)
				}
			}
		}
	}
	r.allSnap = newSortedSet(out)
	r.allSnapV = r.version
	r.allSnapOK = true
	return r.allSnap
}

// NodeStatesIn returns the sorted abstract states recorded at a CFG node
// for one entry context of the enclosing procedure. The returned slice is
// the solver's own bucket; callers must not mutate it.
func (r *TDResult[S]) NodeStatesIn(node int, in S) []S {
	return r.PathEdges[node][in]
}

// EntryStates returns the sorted distinct incoming states of a procedure.
func (r *TDResult[S]) EntryStates(proc string) []S {
	m := r.EntrySeen[proc]
	out := make([]S, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	return newSortedSet(out)
}

// interceptor lets the hybrid driver hook procedure calls in the tabulation:
// beforeCall may answer a call from bottom-up summaries; afterCall observes
// calls the tabulation handled itself (so the driver can check the trigger
// condition).
type interceptor[S cmp.Ordered] interface {
	beforeCall(callee string, s S) (results []S, handled bool, err error)
	afterCall(callee string, s S) error
}

// seMemo caches chain images for one superedge as flat arenas rather than
// per-state objects: entry k stores its len(Interior)+1 state sets
// back-to-back in states, with per-set lengths in lens[k*rows:(k+1)*rows]
// and its arena offset in starts[k]. For interned integer state types the
// states arena is pointer-free, so the cache adds nothing to GC scan work,
// and a miss costs two amortized appends instead of a handful of small
// allocations.
//
// On the compressed view every set is canonical (sorted, deduplicated). On
// the raw view the single set per entry is the client's raw Trans output
// with order and duplicates preserved, so replaying a memo hit propagates
// bit-for-bit like calling Trans again — the hybrid engines depend on that
// (see DESIGN.md).
type seMemo[S cmp.Ordered] struct {
	idx    map[S]int32
	starts []int32
	lens   []int32
	states []S
}

// tdSolver runs the tabulation algorithm of Reps–Horwitz–Sagiv (the paper's
// run_td) over a view of the program CFG.
type tdSolver[S cmp.Ordered, R cmp.Ordered, P cmp.Ordered] struct {
	client  Client[S, R, P]
	cfg     *ir.CFG
	cfgOf   map[string]*ir.ProcCFG
	view    *ir.CFGView
	config  Config
	hook    interceptor[S]
	res     *TDResult[S]
	callers map[string]map[S][]callerRec[S]
	work    []workItem[S]
	head    int
	// memo caches chain images per superedge ID; entries are allocated on
	// first traversal. A state reached under N entry contexts pays for the
	// Trans composition once. Safe because Trans is required to be a
	// deterministic function of (prim, state): repeated calls return the
	// same slice contents, so skipping them is unobservable.
	memo []*seMemo[S]
	// scratch backs chain walks when NoTransferMemo disables caching; it is
	// reset before every walk.
	scratch seMemo[S]
	// addbuf is the scratch buffer insertFactSet hands to mergeAppend; it
	// holds the newly added states of the latest batch only. frontA/frontB
	// are the chain walk's frontier double-buffer.
	addbuf []S
	frontA []S
	frontB []S
	// compiler/cchains hold the client's compiled transfers
	// (TransCompiler), resolved lazily per superedge into a chain of
	// append-style functions indexed like se.Prims. Non-nil only on the
	// compressed view: the raw view must observe raw Trans output verbatim
	// for the hybrid engines' bit-exact memo replay.
	compiler TransCompiler[S]
	cchains  [][]func(S, []S) []S
	// sp is the sparse scheduler state, nil for a dense run. Set only by
	// the order-insensitive engines (td, bu): the hybrids observe pop
	// order through their trigger sampling and always run dense.
	sp *sparseState[S]
	dl deadline
}

type workItem[S cmp.Ordered] struct {
	node int
	edge pathPair[S]
}

// maxRetainedWork caps the worklist backing array kept after a drain; the
// hybrid engines re-enter run after every bottom-up trigger, and an array
// sized by the largest burst would otherwise be pinned for the whole run.
const maxRetainedWork = 1 << 14

// newTDSolver builds a solver over the view. sidx, when non-nil, selects
// the sparse scheduler (see sparse.go); it must be a structure index of the
// same view. Callers whose result order is observable mid-run (the hybrid
// engines) must pass nil.
func newTDSolver[S cmp.Ordered, R cmp.Ordered, P cmp.Ordered](
	client Client[S, R, P], view *ir.CFGView, config Config, hook interceptor[S],
	sidx *ir.StructIndex,
) *tdSolver[S, R, P] {
	cfg := view.CFG
	res := &TDResult[S]{
		PathEdges: make([]map[S]sortedSet[S], cfg.NodeCount),
		Summaries: map[string]map[S]sortedSet[S]{},
		EntrySeen: map[string]multiset[S]{},
	}
	for _, name := range cfg.Program.ProcNames() {
		res.Summaries[name] = map[S]sortedSet[S]{}
		res.EntrySeen[name] = multiset[S]{}
	}
	t := &tdSolver[S, R, P]{
		client:  client,
		cfg:     cfg,
		cfgOf:   cfg.ByProc,
		view:    view,
		config:  config,
		hook:    hook,
		res:     res,
		callers: map[string]map[S][]callerRec[S]{},
		memo:    make([]*seMemo[S], view.NumSuperEdges),
		dl:      newDeadline(config),
	}
	if view.Compressed {
		if tc, ok := client.(TransCompiler[S]); ok {
			t.compiler = tc
			t.cchains = make([][]func(S, []S) []S, view.NumSuperEdges)
		}
	}
	if sidx != nil {
		t.sp = newSparseState[S](sidx, config, &res.Sparse)
	}
	return t
}

// chainFuncs returns the compiled transfer chain of a superedge (indexed
// like se.Prims), or nil when the client compiles nothing.
func (t *tdSolver[S, R, P]) chainFuncs(se *ir.SuperEdge) []func(S, []S) []S {
	if t.compiler == nil {
		return nil
	}
	fs := t.cchains[se.ID]
	if fs == nil {
		fs = make([]func(S, []S) []S, len(se.Prims))
		for i, p := range se.Prims {
			fs[i] = t.compiler.CompileTrans(p)
		}
		t.cchains[se.ID] = fs
	}
	return fs
}

// insertFact records state out at node under entry context in, reporting
// whether it was new and charging the path-edge budget.
func (t *tdSolver[S, R, P]) insertFact(node int, in, out S) (bool, error) {
	m := t.res.PathEdges[node]
	if m == nil {
		m = make(map[S]sortedSet[S], 4)
		t.res.PathEdges[node] = m
	}
	outs, added := m[in].insert(out)
	if !added {
		return false, nil
	}
	m[in] = outs
	t.res.version++
	t.res.NumPathEdges++
	if t.sp != nil {
		// The sparse scheduler pops per node batch, not per fact; charge
		// the fact's step here so Steps stays in original-graph units.
		t.res.Steps++
	}
	if t.res.NumPathEdges > t.config.MaxPathEdges {
		return true, ErrBudget
	}
	return true, nil
}

// propagate inserts a path edge and schedules it if new.
func (t *tdSolver[S, R, P]) propagate(node int, in, out S) error {
	added, err := t.insertFact(node, in, out)
	if err != nil || !added {
		return err
	}
	if t.sp != nil {
		t.sp.enqueue(node, pathPair[S]{in: in, out: out})
		return nil
	}
	t.work = append(t.work, workItem[S]{node: node, edge: pathPair[S]{in: in, out: out}})
	return nil
}

// batched inserts below serve the compressed chain walk; the per-fact
// insertFact/propagate pair above serves every worklist-driven path.

// insertFactSet batch-inserts a sorted set of states at (node, in): one
// bucket fetch and one in-place merge instead of a fetch, binary search and
// fresh slice per state. The returned slice of new states is the solver's
// scratch buffer — valid until the next insertFactSet call. On a budget
// trip the counter lands on exactly MaxPathEdges+1, matching where the
// per-fact path stops, so the two views agree on NumPathEdges at an abort.
func (t *tdSolver[S, R, P]) insertFactSet(node int, in S, states sortedSet[S]) ([]S, error) {
	if len(states) == 0 {
		return nil, nil
	}
	m := t.res.PathEdges[node]
	if m == nil {
		m = make(map[S]sortedSet[S], 4)
		t.res.PathEdges[node] = m
	}
	merged, added := mergeAppend(m[in], states, t.addbuf)
	t.addbuf = added
	if len(added) == 0 {
		return nil, nil
	}
	m[in] = merged
	t.res.version++
	if t.sp != nil {
		t.res.Steps += len(added) // per-fact step charge; see insertFact
	}
	if len(added) > t.config.MaxPathEdges-t.res.NumPathEdges {
		t.res.NumPathEdges = t.config.MaxPathEdges + 1
		return added, ErrBudget
	}
	t.res.NumPathEdges += len(added)
	return added, nil
}

// recordInteriorSet inserts the chain image at an interior node of a
// compressed chain. These facts never enter the worklist — the chain walk
// carries them forward — so the pops the raw solver would have performed
// are charged here, keeping Steps in original-graph units.
func (t *tdSolver[S, R, P]) recordInteriorSet(node int, in S, states sortedSet[S]) (int, error) {
	added, err := t.insertFactSet(node, in, states)
	if t.sp == nil {
		t.res.Steps += len(added) // sparse charged these in insertFactSet
	}
	if err != nil {
		return len(added), err
	}
	if len(added) == 0 {
		return 0, nil
	}
	return len(added), t.dl.check()
}

// propagateSet batch-inserts path edges at (node, in) and schedules the new
// ones.
func (t *tdSolver[S, R, P]) propagateSet(node int, in S, states sortedSet[S]) error {
	added, err := t.insertFactSet(node, in, states)
	if t.sp != nil {
		for _, s := range added {
			t.sp.enqueue(node, pathPair[S]{in: in, out: s})
		}
		return err
	}
	for _, s := range added {
		t.work = append(t.work, workItem[S]{node: node, edge: pathPair[S]{in: in, out: s}})
	}
	return err
}

// seed enters the analysis at the program entry with the initial state.
func (t *tdSolver[S, R, P]) seed(initial S) error {
	entry := t.cfgOf[t.cfg.Program.Entry]
	t.res.EntrySeen[t.cfg.Program.Entry].add(initial, 1)
	return t.propagate(entry.Entry.ID, initial, initial)
}

// run drains the worklist to a fixpoint.
func (t *tdSolver[S, R, P]) run() error {
	if t.sp != nil {
		return t.runSparse()
	}
	for t.head < len(t.work) {
		item := t.work[t.head]
		// Zero the popped slot: the backing array survives across the
		// re-entries of long hybrid runs and would otherwise pin every
		// popped state for the lifetime of the run.
		t.work[t.head] = workItem[S]{}
		t.head++
		t.res.Steps++
		if err := t.dl.check(); err != nil {
			return err
		}
		if err := t.step(item); err != nil {
			return err
		}
	}
	// Release the drained worklist eagerly; oversized backing arrays from a
	// burst are dropped wholesale rather than retained until the next one.
	if cap(t.work) > maxRetainedWork {
		t.work = nil
	} else {
		t.work = t.work[:0]
	}
	t.head = 0
	return nil
}

func (t *tdSolver[S, R, P]) step(item workItem[S]) error {
	node := t.cfg.AllNodes[item.node]
	pc := t.cfgOf[node.Proc]
	if node.ID == pc.Exit.ID {
		if err := t.recordSummary(node.Proc, item.edge.in, item.edge.out); err != nil {
			return err
		}
	}
	for _, se := range t.view.Out[item.node] {
		if se.IsCall() {
			if err := t.handleCall(se, item.edge.in, item.edge.out); err != nil {
				return err
			}
			continue
		}
		if err := t.traverse(se, item.edge.in, item.edge.out); err != nil {
			return err
		}
	}
	return nil
}

// traverse pushes state out through a primitive superedge under entry
// context in: interior nodes of a compressed chain receive their facts
// eagerly (so every original-graph observation is preserved), and the
// chain's final states propagate to the superedge target.
func (t *tdSolver[S, R, P]) traverse(se *ir.SuperEdge, in, out S) error {
	if !t.view.Compressed {
		// Per-element, in raw Trans order: the hybrid engines replay memo
		// hits bit-for-bit through this path (see seMemo).
		if t.config.NoTransferMemo {
			for _, s := range t.client.Trans(se.Prims[0], out) {
				if err := t.propagate(se.To.ID, in, s); err != nil {
					return err
				}
			}
			return nil
		}
		m, k := t.chainEntry(se, out)
		start := m.starts[k]
		for _, s := range m.states[start : start+m.lens[k]] {
			if err := t.propagate(se.To.ID, in, s); err != nil {
				return err
			}
		}
		return nil
	}
	m, k := t.chainEntry(se, out)
	rows := int32(len(se.Interior) + 1)
	off, lrow := m.starts[k], k*rows
	for i, w := range se.Interior {
		set := m.states[off : off+m.lens[lrow+int32(i)]]
		off += m.lens[lrow+int32(i)]
		n, err := t.recordInteriorSet(w.ID, in, set)
		if err != nil {
			return err
		}
		if n == 0 {
			// Frontier fully known at this position under this context: the
			// walks that first recorded these states also recorded their
			// images at every later position and propagated the finals, so
			// the rest of the chain is a no-op — exactly where the raw
			// solver stops propagating duplicates.
			return nil
		}
	}
	return t.propagateSet(se.To.ID, in, m.states[off:off+m.lens[lrow+rows-1]])
}

// chainEntry returns the memo holding the image of state s0 under the
// superedge's primitive sequence, and the entry index of s0 within it,
// computing and caching the image on a miss.
func (t *tdSolver[S, R, P]) chainEntry(se *ir.SuperEdge, s0 S) (*seMemo[S], int32) {
	if t.config.NoTransferMemo {
		m := &t.scratch
		m.starts, m.lens, m.states = m.starts[:0], m.lens[:0], m.states[:0]
		return m, t.computeChain(se, s0, m)
	}
	m := t.memo[se.ID]
	if m == nil {
		m = &seMemo[S]{idx: make(map[S]int32, 8)}
		t.memo[se.ID] = m
	}
	if k, ok := m.idx[s0]; ok {
		return m, k
	}
	k := t.computeChain(se, s0, m)
	m.idx[s0] = k
	return m, k
}

// computeChain composes the superedge's transfer functions on one state,
// appending the resulting state sets to the memo's arenas and returning the
// new entry's index.
func (t *tdSolver[S, R, P]) computeChain(se *ir.SuperEdge, s0 S, m *seMemo[S]) int32 {
	k := int32(len(m.starts))
	m.starts = append(m.starts, int32(len(m.states)))
	if len(se.Prims) == 1 {
		if !t.view.Compressed {
			// Raw Trans output, order and duplicates preserved: see seMemo.
			finals := t.client.Trans(se.Prims[0], s0)
			m.states = append(m.states, finals...)
			m.lens = append(m.lens, int32(len(finals)))
			return k
		}
		// The compressed traverse path batch-merges every set, which needs
		// them canonical; order is unobservable off the raw view.
		var front []S
		if fs := t.chainFuncs(se); fs != nil {
			front = fs[0](s0, t.frontA[:0])
		} else {
			front = append(t.frontA[:0], t.client.Trans(se.Prims[0], s0)...)
		}
		slices.Sort(front)
		front = slices.Compact(front)
		t.frontA = front[:0]
		m.states = append(m.states, front...)
		m.lens = append(m.lens, int32(len(front)))
		return k
	}
	fs := t.chainFuncs(se)
	front := append(t.frontA[:0], s0)
	next := t.frontB[:0]
	for i, p := range se.Prims {
		next = next[:0]
		if fs != nil {
			f := fs[i]
			for _, s := range front {
				next = f(s, next)
			}
		} else {
			for _, s := range front {
				next = append(next, t.client.Trans(p, s)...)
			}
		}
		slices.Sort(next)
		next = slices.Compact(next)
		m.states = append(m.states, next...)
		m.lens = append(m.lens, int32(len(next)))
		front, next = next, front
	}
	t.frontA, t.frontB = front[:0], next[:0]
	return k
}

// recordSummary adds (in → out) to the summary table of proc and resumes all
// callers waiting on that entry state.
func (t *tdSolver[S, R, P]) recordSummary(proc string, in, out S) error {
	exits := t.res.Summaries[proc][in]
	exits, added := exits.insert(out)
	if !added {
		return nil
	}
	t.res.Summaries[proc][in] = exits
	t.res.NumSummaries++
	if t.res.NumSummaries > t.config.MaxTDSummaries {
		return ErrBudget
	}
	for _, c := range t.callers[proc][in] {
		if err := t.propagate(c.ret, c.in, out); err != nil {
			return err
		}
	}
	return nil
}

// handleCall implements lines 9–21 of Algorithm 1 for one call edge: first
// the hook (bottom-up summaries) gets a chance; otherwise the call is
// tabulated top-down and the hook is notified so it can check the trigger.
func (t *tdSolver[S, R, P]) handleCall(e *ir.SuperEdge, callerIn, s S) error {
	callee := e.Call
	if t.hook != nil {
		results, handled, err := t.hook.beforeCall(callee, s)
		if err != nil {
			return err
		}
		if handled {
			for _, out := range results {
				if err := t.propagate(e.To.ID, callerIn, out); err != nil {
					return err
				}
			}
			return nil
		}
	}
	t.res.EntrySeen[callee].add(s, 1)
	byIn := t.callers[callee]
	if byIn == nil {
		byIn = map[S][]callerRec[S]{}
		t.callers[callee] = byIn
	}
	byIn[s] = append(byIn[s], callerRec[S]{ret: e.To.ID, in: callerIn})
	if err := t.propagate(t.cfgOf[callee].Entry.ID, s, s); err != nil {
		return err
	}
	for _, out := range t.res.Summaries[callee][s] {
		if err := t.propagate(e.To.ID, callerIn, out); err != nil {
			return err
		}
	}
	if t.hook != nil {
		return t.hook.afterCall(callee, s)
	}
	return nil
}
