package core

import (
	"cmp"

	"swift/internal/ir"
)

// pathPair is a top-down path edge at a program point: the procedure was
// entered in state in and has reached the point in state out. These pairs
// are exactly what the paper's td: PC → 2^(S×S) map records.
type pathPair[S cmp.Ordered] struct {
	in  S
	out S
}

// callerRec remembers a pending call so callee summaries can be plumbed back
// to the return site: the caller was entered in state in and control resumes
// at node ret.
type callerRec[S cmp.Ordered] struct {
	ret int
	in  S
}

// TDResult holds the output of the top-down tabulation: the td map, the
// procedure summary table, and the incoming-state bookkeeping used by SWIFT
// for triggering and for ranking relational cases.
type TDResult[S cmp.Ordered] struct {
	// PathEdges is the td map, indexed by CFG node ID.
	PathEdges []map[pathPair[S]]bool
	// Summaries maps procedure → entry state → exit states. Each (entry,
	// exit) pair is one "top-down summary" in the paper's accounting.
	Summaries map[string]map[S]sortedSet[S]
	// EntrySeen maps procedure → multiset of incoming abstract states. The
	// multiplicity of σ is the number of distinct (call site, caller
	// context) pairs that delivered σ; it drives the prune ranking.
	EntrySeen map[string]multiset[S]
	// NumPathEdges and NumSummaries are running totals used for budgets and
	// reporting.
	NumPathEdges int
	NumSummaries int
	// Steps counts worklist pops (a machine-independent cost measure).
	Steps int
}

// SummaryCount returns the number of top-down summaries recorded for the
// procedure.
func (r *TDResult[S]) SummaryCount(proc string) int {
	n := 0
	for _, exits := range r.Summaries[proc] {
		n += len(exits)
	}
	return n
}

// NodeStates returns the sorted abstract states recorded at a CFG node,
// ignoring entry contexts.
func (r *TDResult[S]) NodeStates(node int) []S {
	var out []S
	for p := range r.PathEdges[node] {
		out = append(out, p.out)
	}
	return newSortedSet(out)
}

// AllStates returns the sorted distinct abstract states recorded at any
// program point in any context — everything the analysis has shown may be
// reached. Clients scan it for error states.
func (r *TDResult[S]) AllStates() []S {
	seen := map[S]bool{}
	var out []S
	for _, edges := range r.PathEdges {
		for p := range edges {
			if !seen[p.out] {
				seen[p.out] = true
				out = append(out, p.out)
			}
		}
	}
	return newSortedSet(out)
}

// NodeStatesIn returns the sorted abstract states recorded at a CFG node
// for one entry context of the enclosing procedure.
func (r *TDResult[S]) NodeStatesIn(node int, in S) []S {
	var out []S
	for p := range r.PathEdges[node] {
		if p.in == in {
			out = append(out, p.out)
		}
	}
	return newSortedSet(out)
}

// EntryStates returns the sorted distinct incoming states of a procedure.
func (r *TDResult[S]) EntryStates(proc string) []S {
	m := r.EntrySeen[proc]
	out := make([]S, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	return newSortedSet(out)
}

// interceptor lets the hybrid driver hook procedure calls in the tabulation:
// beforeCall may answer a call from bottom-up summaries; afterCall observes
// calls the tabulation handled itself (so the driver can check the trigger
// condition).
type interceptor[S cmp.Ordered] interface {
	beforeCall(callee string, s S) (results []S, handled bool, err error)
	afterCall(callee string, s S) error
}

// tdSolver runs the tabulation algorithm of Reps–Horwitz–Sagiv (the paper's
// run_td) over the program CFG.
type tdSolver[S cmp.Ordered, R cmp.Ordered, P cmp.Ordered] struct {
	client  Client[S, R, P]
	cfg     *ir.CFG
	cfgOf   map[string]*ir.ProcCFG
	config  Config
	hook    interceptor[S]
	res     *TDResult[S]
	callers map[string]map[S][]callerRec[S]
	work    []workItem[S]
	head    int
	dl      deadline
}

type workItem[S cmp.Ordered] struct {
	node int
	edge pathPair[S]
}

func newTDSolver[S cmp.Ordered, R cmp.Ordered, P cmp.Ordered](
	client Client[S, R, P], cfg *ir.CFG, config Config, hook interceptor[S],
) *tdSolver[S, R, P] {
	res := &TDResult[S]{
		PathEdges: make([]map[pathPair[S]]bool, cfg.NodeCount),
		Summaries: map[string]map[S]sortedSet[S]{},
		EntrySeen: map[string]multiset[S]{},
	}
	for _, name := range cfg.Program.ProcNames() {
		res.Summaries[name] = map[S]sortedSet[S]{}
		res.EntrySeen[name] = multiset[S]{}
	}
	return &tdSolver[S, R, P]{
		client:  client,
		cfg:     cfg,
		cfgOf:   cfg.ByProc,
		config:  config,
		hook:    hook,
		res:     res,
		callers: map[string]map[S][]callerRec[S]{},
		dl:      newDeadline(config.Timeout),
	}
}

// propagate inserts a path edge and schedules it if new.
func (t *tdSolver[S, R, P]) propagate(node int, in, out S) error {
	m := t.res.PathEdges[node]
	if m == nil {
		m = map[pathPair[S]]bool{}
		t.res.PathEdges[node] = m
	}
	p := pathPair[S]{in: in, out: out}
	if m[p] {
		return nil
	}
	m[p] = true
	t.res.NumPathEdges++
	if t.res.NumPathEdges > t.config.MaxPathEdges {
		return ErrBudget
	}
	t.work = append(t.work, workItem[S]{node: node, edge: p})
	return nil
}

// seed enters the analysis at the program entry with the initial state.
func (t *tdSolver[S, R, P]) seed(initial S) error {
	entry := t.cfgOf[t.cfg.Program.Entry]
	t.res.EntrySeen[t.cfg.Program.Entry].add(initial, 1)
	return t.propagate(entry.Entry.ID, initial, initial)
}

// run drains the worklist to a fixpoint.
func (t *tdSolver[S, R, P]) run() error {
	for t.head < len(t.work) {
		item := t.work[t.head]
		t.head++
		t.res.Steps++
		if err := t.dl.check(); err != nil {
			return err
		}
		if err := t.step(item); err != nil {
			return err
		}
	}
	// Release the drained worklist eagerly; long hybrid runs re-enter run
	// after bottom-up triggers.
	t.work = t.work[:0]
	t.head = 0
	return nil
}

func (t *tdSolver[S, R, P]) step(item workItem[S]) error {
	node := t.cfg.AllNodes[item.node]
	pc := t.cfgOf[node.Proc]
	if node.ID == pc.Exit.ID {
		if err := t.recordSummary(node.Proc, item.edge.in, item.edge.out); err != nil {
			return err
		}
	}
	for _, e := range node.Out {
		if e.IsCall() {
			if err := t.handleCall(e, item.edge.in, item.edge.out); err != nil {
				return err
			}
			continue
		}
		for _, s := range t.client.Trans(e.Prim, item.edge.out) {
			if err := t.propagate(e.To.ID, item.edge.in, s); err != nil {
				return err
			}
		}
	}
	return nil
}

// recordSummary adds (in → out) to the summary table of proc and resumes all
// callers waiting on that entry state.
func (t *tdSolver[S, R, P]) recordSummary(proc string, in, out S) error {
	exits := t.res.Summaries[proc][in]
	exits, added := exits.insert(out)
	if !added {
		return nil
	}
	t.res.Summaries[proc][in] = exits
	t.res.NumSummaries++
	if t.res.NumSummaries > t.config.MaxTDSummaries {
		return ErrBudget
	}
	for _, c := range t.callers[proc][in] {
		if err := t.propagate(c.ret, c.in, out); err != nil {
			return err
		}
	}
	return nil
}

// handleCall implements lines 9–21 of Algorithm 1 for one call edge: first
// the hook (bottom-up summaries) gets a chance; otherwise the call is
// tabulated top-down and the hook is notified so it can check the trigger.
func (t *tdSolver[S, R, P]) handleCall(e *ir.Edge, callerIn, s S) error {
	callee := e.Call
	if t.hook != nil {
		results, handled, err := t.hook.beforeCall(callee, s)
		if err != nil {
			return err
		}
		if handled {
			for _, out := range results {
				if err := t.propagate(e.To.ID, callerIn, out); err != nil {
					return err
				}
			}
			return nil
		}
	}
	t.res.EntrySeen[callee].add(s, 1)
	byIn := t.callers[callee]
	if byIn == nil {
		byIn = map[S][]callerRec[S]{}
		t.callers[callee] = byIn
	}
	byIn[s] = append(byIn[s], callerRec[S]{ret: e.To.ID, in: callerIn})
	if err := t.propagate(t.cfgOf[callee].Entry.ID, s, s); err != nil {
		return err
	}
	for _, out := range t.res.Summaries[callee][s] {
		if err := t.propagate(e.To.ID, callerIn, out); err != nil {
			return err
		}
	}
	if t.hook != nil {
		return t.hook.afterCall(callee, s)
	}
	return nil
}
