package core

// White-box tests of the tabulation solver's memory behaviour: the worklist
// must not pin popped states through its backing array, oversized burst
// arrays must be released on drain, and the AllStates/NodeStates snapshot
// caches must be reused until the next insertion invalidates them.

import (
	"fmt"
	"testing"

	"swift/internal/ir"
	"swift/internal/killgen"
)

// tdFixture builds a solver over a small taint program with a loop and a
// branch, ready to seed and run.
func tdFixture(t *testing.T, config Config) (*tdSolver[string, string, string], *killgen.Taint) {
	t.Helper()
	prog := ir.NewProgram("main")
	prog.Add(&ir.Proc{Name: "main", Body: &ir.Seq{Cmds: []ir.Cmd{
		&ir.Prim{Kind: ir.New, Dst: "a", Site: "src"},
		&ir.Loop{Body: &ir.Choice{Alts: []ir.Cmd{
			&ir.Prim{Kind: ir.Copy, Dst: "b", Src: "a"},
			&ir.Prim{Kind: ir.Kill, Dst: "b"},
		}}},
		&ir.Prim{Kind: ir.TSCall, Dst: "b", Method: "sink"},
	}}})
	taint := killgen.NewTaint(prog, killgen.TaintConfig{
		Sources: []string{"src"},
		Sinks:   []string{"sink"},
	})
	view := ir.CompressedView(ir.BuildCFG(prog))
	return newTDSolver[string, string, string](taint, view, config, nil, nil), taint
}

// TestRunZeroesPoppedWorkItems pins the fix for the worklist retention bug:
// popping by reslicing alone leaves every popped workItem — and the states
// it holds — reachable through the backing array. After a drain, every slot
// of the retained array must hold the zero workItem.
func TestRunZeroesPoppedWorkItems(t *testing.T) {
	s, taint := tdFixture(t, TDConfig())
	if err := s.seed(taint.Initial()); err != nil {
		t.Fatal(err)
	}
	if err := s.run(); err != nil {
		t.Fatal(err)
	}
	if s.res.Steps == 0 {
		t.Fatal("solver did no work")
	}
	if s.work == nil {
		t.Fatal("small worklist should keep its backing array")
	}
	var zero workItem[string]
	for i, w := range s.work[:cap(s.work)] {
		if w != zero {
			t.Fatalf("slot %d still holds %+v after drain", i, w)
		}
	}
	if len(s.work) != 0 || s.head != 0 {
		t.Fatalf("worklist not reset: len=%d head=%d", len(s.work), s.head)
	}
}

// TestRunReleasesOversizedWorklist pins the other half of the fix: a burst
// that grew the backing array past maxRetainedWork must be dropped
// wholesale on drain instead of being pinned until the next burst.
func TestRunReleasesOversizedWorklist(t *testing.T) {
	s, _ := tdFixture(t, TDConfig())
	s.work = make([]workItem[string], maxRetainedWork+1)
	s.head = len(s.work) // already drained: run goes straight to release
	if err := s.run(); err != nil {
		t.Fatal(err)
	}
	if s.work != nil {
		t.Fatalf("oversized worklist retained: cap=%d", cap(s.work))
	}
	if s.head != 0 {
		t.Fatalf("head not reset: %d", s.head)
	}
}

// syntheticResult builds a TDResult with nodes×contexts×width facts.
func syntheticResult(nodes, contexts, width int) *TDResult[int] {
	r := &TDResult[int]{PathEdges: make([]map[int]sortedSet[int], nodes)}
	for n := 0; n < nodes; n++ {
		m := map[int]sortedSet[int]{}
		for c := 0; c < contexts; c++ {
			outs := make(sortedSet[int], width)
			for w := 0; w < width; w++ {
				outs[w] = n + c + w
			}
			m[c] = newSortedSet(outs)
		}
		r.PathEdges[n] = m
		r.version += contexts * width
	}
	return r
}

// TestAllStatesMemoized checks that repeated snapshot calls allocate
// nothing and that an insertion invalidates both caches.
func TestAllStatesMemoized(t *testing.T) {
	r := syntheticResult(64, 3, 4)
	first := r.AllStates()
	if avg := testing.AllocsPerRun(100, func() { r.AllStates() }); avg != 0 {
		t.Errorf("AllStates allocated %.1f per call on a clean cache", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { r.NodeStates(7) }); avg != 0 {
		t.Errorf("NodeStates allocated %.1f per call on a clean cache", avg)
	}
	// Simulate what insertFact does: new fact, version bump.
	const novel = 1 << 20
	outs, added := r.PathEdges[0][0].insert(novel)
	if !added {
		t.Fatal("novel state not added")
	}
	r.PathEdges[0][0] = outs
	r.version++
	second := r.AllStates()
	if len(second) != len(first)+1 {
		t.Fatalf("stale snapshot after insertion: %d vs %d states", len(second), len(first))
	}
	if !sortedSet[int](second).has(novel) {
		t.Fatal("recomputed snapshot misses the new state")
	}
	if !sortedSet[int](r.NodeStates(0)).has(novel) {
		t.Fatal("recomputed node snapshot misses the new state")
	}
}

func benchmarkAllStates(b *testing.B, fresh bool) {
	r := syntheticResult(2000, 4, 6)
	r.AllStates() // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fresh {
			r.version++ // forces a rebuild, like an interleaved insertion
		}
		if len(r.AllStates()) == 0 {
			b.Fatal("empty snapshot")
		}
	}
}

func BenchmarkAllStatesMemoized(b *testing.B) { benchmarkAllStates(b, false) }
func BenchmarkAllStatesFresh(b *testing.B)    { benchmarkAllStates(b, true) }

// TestTransferMemoHits sanity-checks that the chain memo actually engages
// on a looping program (the perf claim depends on it): after a run, at
// least one superedge must have seen more than one distinct input state,
// and re-traversing a memoized edge returns the identical cached object.
func TestTransferMemoHits(t *testing.T) {
	s, taint := tdFixture(t, TDConfig())
	if err := s.seed(taint.Initial()); err != nil {
		t.Fatal(err)
	}
	if err := s.run(); err != nil {
		t.Fatal(err)
	}
	populated := 0
	for id, mm := range s.memo {
		if mm == nil || len(mm.idx) == 0 {
			continue
		}
		populated++
		var se *ir.SuperEdge
		for _, out := range s.view.Out {
			for _, cand := range out {
				if cand.ID == id {
					se = cand
				}
			}
		}
		states := len(mm.states)
		for s0, want := range mm.idx {
			got, k := s.chainEntry(se, s0)
			if got != mm || k != want {
				t.Fatalf("superedge %d: memo miss on cached state %v", id, s0)
			}
		}
		if len(mm.states) != states {
			t.Fatalf("superedge %d: hits grew the arena", id)
		}
	}
	if populated == 0 {
		t.Fatal("no superedge memo was populated")
	}
}

// TestCompressedViewSmallerOnChains is the structural payoff check: on a
// straight-line-heavy program the compressed view must have strictly fewer
// superedges than the raw view has edges.
func TestCompressedViewSmallerOnChains(t *testing.T) {
	prog := ir.NewProgram("main")
	cmds := make([]ir.Cmd, 40)
	for i := range cmds {
		cmds[i] = &ir.Prim{Kind: ir.Copy, Dst: fmt.Sprintf("v%d", i%5), Src: "v0"}
	}
	prog.Add(&ir.Proc{Name: "main", Body: &ir.Seq{Cmds: cmds}})
	g := ir.BuildCFG(prog)
	raw, comp := ir.RawView(g), ir.CompressedView(g)
	if comp.NumSuperEdges >= raw.NumSuperEdges {
		t.Fatalf("no compression: %d superedges vs %d raw edges",
			comp.NumSuperEdges, raw.NumSuperEdges)
	}
}
