package core

// Trigger record/replay for the asynchronous hybrid engine.
//
// RunSwiftAsync's result tables are timing-dependent for exactly one
// reason: the top-down tabulation's decisions depend on *which bottom-up
// summaries are visible at each call event*, and summaries are installed
// by concurrent workers. Everything else — the tabulation itself, each
// run_bu given its inputs — is deterministic. So the schedule is fully
// captured by three event kinds aligned to the main goroutine's call-event
// stream: when a trigger's worker was spawned (its inputs are snapshots of
// main-goroutine state at that point), and when its outcome became visible
// (installed, or failed). A recorded Trace replays by re-running the same
// tabulation single-threaded, executing each run_bu synchronously at its
// recorded spawn point and publishing its outcome at its recorded
// install/fail point — bit-deterministic, which is what lets swift-async
// join the byte-identical table harness (see DESIGN.md §7).

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// TraceEventKind classifies one scheduling decision of an asynchronous
// run.
type TraceEventKind uint8

const (
	// TraceSpawn records that a bottom-up worker for Trigger was spawned.
	TraceSpawn TraceEventKind = iota + 1
	// TraceInstall records that the worker's summaries became visible to
	// the top-down analysis.
	TraceInstall
	// TraceFail records that the worker completed without installing
	// (budget exhaustion, a contained panic, or a fatal error).
	TraceFail
)

func (k TraceEventKind) String() string {
	switch k {
	case TraceSpawn:
		return "spawn"
	case TraceInstall:
		return "install"
	case TraceFail:
		return "fail"
	}
	return "?"
}

// TraceEvent is one recorded scheduling decision. Seq is the number of
// call events the main goroutine had processed when the decision was
// taken; the drain phase after the worklist empties runs at one final seq
// past the last call event. Within one seq, list order is authoritative
// (installs and fails precede spawns).
type TraceEvent struct {
	Seq     int
	Kind    TraceEventKind
	Trigger string
	// Forced marks a drain-phase spawn whose frontier never became ready
	// (recorded for inspection; replay follows the event stream either
	// way).
	Forced bool
}

// Trace is a recorded asynchronous schedule plus the identity of the run
// that produced it. Record with Config.RecordTrace, replay with
// Config.ReplayTrace; Encode/DecodeTrace round-trip it through a text
// format for cmd/swiftbench -record/-replay.
type Trace struct {
	// Label is an uninterpreted caller-chosen name (e.g. the benchmark);
	// core only carries it through serialization.
	Label string
	// Entry is the program entry procedure; K and Theta are the
	// thresholds of the recorded configuration. Replay validates all
	// three against the run.
	Entry string
	K     int
	Theta int

	Events []TraceEvent
}

// reset prepares the trace for a fresh recording.
func (t *Trace) reset(entry string, config Config) {
	t.Entry = entry
	t.K = config.K
	t.Theta = config.Theta
	t.Events = t.Events[:0]
}

// add appends one event.
func (t *Trace) add(seq int, kind TraceEventKind, trigger string, forced bool) {
	t.Events = append(t.Events, TraceEvent{Seq: seq, Kind: kind, Trigger: trigger, Forced: forced})
}

// validate checks a trace against the run about to replay it.
func (t *Trace) validate(entry string, config Config) error {
	if t.Entry != entry {
		return fmt.Errorf("%w: trace entry %q, program entry %q", ErrTraceMismatch, t.Entry, entry)
	}
	if t.K != config.K || t.Theta != config.Theta {
		return fmt.Errorf("%w: trace recorded with k=%d theta=%d, replaying with k=%d theta=%d",
			ErrTraceMismatch, t.K, t.Theta, config.K, config.Theta)
	}
	seq := 0
	for i, e := range t.Events {
		if e.Seq < seq {
			return fmt.Errorf("%w: event %d out of order (seq %d after %d)", ErrTraceMismatch, i, e.Seq, seq)
		}
		seq = e.Seq
		if e.Trigger == "" || e.Kind < TraceSpawn || e.Kind > TraceFail {
			return fmt.Errorf("%w: malformed event %d", ErrTraceMismatch, i)
		}
	}
	return nil
}

// traceHeader is the first line of the serialized format.
const traceHeader = "swift-async-trace v1"

// Encode writes the trace in a line-oriented text format:
//
//	swift-async-trace v1
//	label elevator
//	entry main
//	k 5
//	theta 1
//	spawn 12 f
//	install 15 f
//	spawn 17 g forced
//	fail 17 g
func (t *Trace) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, traceHeader)
	if t.Label != "" {
		fmt.Fprintf(bw, "label %s\n", t.Label)
	}
	fmt.Fprintf(bw, "entry %s\n", t.Entry)
	fmt.Fprintf(bw, "k %d\n", t.K)
	fmt.Fprintf(bw, "theta %d\n", t.Theta)
	for _, e := range t.Events {
		if e.Forced {
			fmt.Fprintf(bw, "%s %d %s forced\n", e.Kind, e.Seq, e.Trigger)
			continue
		}
		fmt.Fprintf(bw, "%s %d %s\n", e.Kind, e.Seq, e.Trigger)
	}
	return bw.Flush()
}

// DecodeTrace parses a trace serialized by Encode.
func DecodeTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("core: empty trace: %w", ErrTraceMismatch)
	}
	if strings.TrimSpace(sc.Text()) != traceHeader {
		return nil, fmt.Errorf("core: not a %s file: %w", traceHeader, ErrTraceMismatch)
	}
	t := &Trace{}
	line := 1
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		bad := func() (*Trace, error) {
			return nil, fmt.Errorf("core: trace line %d malformed: %w", line, ErrTraceMismatch)
		}
		switch fields[0] {
		case "label":
			if len(fields) != 2 {
				return bad()
			}
			t.Label = fields[1]
		case "entry":
			if len(fields) != 2 {
				return bad()
			}
			t.Entry = fields[1]
		case "k", "theta":
			if len(fields) != 2 {
				return bad()
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return bad()
			}
			if fields[0] == "k" {
				t.K = n
			} else {
				t.Theta = n
			}
		case "spawn", "install", "fail":
			if len(fields) < 3 || len(fields) > 4 {
				return bad()
			}
			seq, err := strconv.Atoi(fields[1])
			if err != nil {
				return bad()
			}
			kind := TraceSpawn
			switch fields[0] {
			case "install":
				kind = TraceInstall
			case "fail":
				kind = TraceFail
			}
			forced := false
			if len(fields) == 4 {
				if fields[3] != "forced" {
					return bad()
				}
				forced = true
			}
			t.add(seq, kind, fields[2], forced)
		default:
			return bad()
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("core: reading trace: %w", err)
	}
	return t, nil
}
