package core_test

// Record/replay determinism tests for the asynchronous hybrid engine: a
// recorded schedule replays bit-identically, closing the "Async
// determinism" roadmap item. The kill/gen client is used throughout —
// its string states are instance-independent, so whole result tables can
// be compared byte-for-byte across fresh pipelines.

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"swift/internal/core"
	"swift/internal/ir"
)

// recordRun executes one live asynchronous run on a fresh pipeline with
// recording armed and returns the trace and the run's fingerprint.
func recordRun(t *testing.T, prog func() *ir.Program) (*core.Trace, string) {
	t.Helper()
	kg := drainClient()
	client := core.Synchronized[string, string, string](kg)
	an, err := core.NewAnalysis[string, string, string](client, prog())
	if err != nil {
		t.Fatal(err)
	}
	init := kg.State(kg.MakeBits())
	trace := &core.Trace{Label: "drain"}
	cfg := core.DefaultConfig()
	cfg.K = 1
	cfg.RecordTrace = trace
	res := an.RunSwiftAsync(init, cfg)
	if res.Err != nil {
		t.Fatalf("record run failed: %v", res.Err)
	}
	return trace, fingerprintResult(res, "main", init)
}

// replayRun replays a trace on a fresh pipeline and returns the result's
// fingerprint.
func replayRun(t *testing.T, prog func() *ir.Program, trace *core.Trace) string {
	t.Helper()
	kg := drainClient()
	an, err := core.NewAnalysis[string, string, string](kg, prog())
	if err != nil {
		t.Fatal(err)
	}
	init := kg.State(kg.MakeBits())
	cfg := core.DefaultConfig()
	cfg.K = 1
	cfg.ReplayTrace = trace
	res := an.RunSwiftAsync(init, cfg)
	if res.Err != nil {
		t.Fatalf("replay failed: %v", res.Err)
	}
	return fingerprintResult(res, "main", init)
}

// TestReplayMatchesRecord pins full byte identity between a recorded
// asynchronous run and its single-threaded replay: same counters, same
// Triggered, same bottom-up summaries, same exit states.
func TestReplayMatchesRecord(t *testing.T) {
	before := runtime.NumGoroutine()
	for _, prog := range []struct {
		name  string
		build func() *ir.Program
	}{{"drain", drainProgram}, {"blocked", blockedProgram}} {
		trace, recorded := recordRun(t, prog.build)
		if len(trace.Events) == 0 {
			t.Fatalf("%s: recorded no events", prog.name)
		}
		replayed := replayRun(t, prog.build, trace)
		if replayed != recorded {
			t.Errorf("%s: replay diverges from record\n--- record ---\n%s--- replay ---\n%s",
				prog.name, recorded, replayed)
		}
	}
	checkNoLeakedGoroutines(t, before)
}

// TestReplayDeterministicParallel is the acceptance pin: replaying one
// recorded trace on fresh, identically built pipelines is bit-identical,
// including when the replays run concurrently with each other (run with
// -race and -parallel > 1).
func TestReplayDeterministicParallel(t *testing.T) {
	trace, _ := recordRun(t, blockedProgram)
	want := replayRun(t, blockedProgram, trace)
	for i := 0; i < 4; i++ {
		t.Run(fmt.Sprintf("replay%d", i), func(t *testing.T) {
			t.Parallel()
			if got := replayRun(t, blockedProgram, trace); got != want {
				t.Errorf("replay not deterministic\n--- want ---\n%s--- got ---\n%s", want, got)
			}
		})
	}
}

// TestTraceEncodeDecodeRoundTrip checks the text serialization preserves
// a recorded trace exactly, and that replaying the decoded copy matches.
func TestTraceEncodeDecodeRoundTrip(t *testing.T) {
	trace, _ := recordRun(t, blockedProgram)
	var buf bytes.Buffer
	if err := trace.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := core.DecodeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("decode: %v\n%s", err, buf.String())
	}
	if !reflect.DeepEqual(trace, decoded) {
		t.Fatalf("round-trip changed the trace\nin:  %+v\nout: %+v", trace, decoded)
	}
	want := replayRun(t, blockedProgram, trace)
	if got := replayRun(t, blockedProgram, decoded); got != want {
		t.Errorf("decoded trace replays differently\n--- want ---\n%s--- got ---\n%s", want, got)
	}
}

// TestReplayValidation checks that traces not matching the run fail with
// ErrTraceMismatch instead of silently producing a different analysis.
func TestReplayValidation(t *testing.T) {
	trace, _ := recordRun(t, drainProgram)

	run := func(mutate func(tr *core.Trace), cfgEdit func(cfg *core.Config)) error {
		cp := *trace
		cp.Events = append([]core.TraceEvent(nil), trace.Events...)
		if mutate != nil {
			mutate(&cp)
		}
		kg := drainClient()
		an, err := core.NewAnalysis[string, string, string](kg, drainProgram())
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultConfig()
		cfg.K = 1
		cfg.ReplayTrace = &cp
		if cfgEdit != nil {
			cfgEdit(&cfg)
		}
		return an.RunSwiftAsync(kg.State(kg.MakeBits()), cfg).Err
	}

	cases := []struct {
		name   string
		mutate func(tr *core.Trace)
		cfg    func(cfg *core.Config)
	}{
		{"wrong k", nil, func(cfg *core.Config) { cfg.K = 2 }},
		{"wrong entry", func(tr *core.Trace) { tr.Entry = "other" }, nil},
		{"install without spawn", func(tr *core.Trace) {
			tr.Events = []core.TraceEvent{{Seq: 1, Kind: core.TraceInstall, Trigger: "f"}}
		}, nil},
		{"unresolved spawn", func(tr *core.Trace) {
			// Keep only the spawn events: every install/fail disappears.
			var kept []core.TraceEvent
			for _, e := range tr.Events {
				if e.Kind == core.TraceSpawn {
					kept = append(kept, e)
				}
			}
			tr.Events = kept
		}, nil},
	}
	for _, tc := range cases {
		if err := run(tc.mutate, tc.cfg); !errors.Is(err, core.ErrTraceMismatch) {
			t.Errorf("%s: err = %v, want ErrTraceMismatch", tc.name, err)
		}
	}
}

// TestDecodeTraceRejectsGarbage covers the parser's failure modes.
func TestDecodeTraceRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"",
		"not a trace\n",
		"swift-async-trace v1\nentry\n",
		"swift-async-trace v1\nk five\n",
		"swift-async-trace v1\nspawn x f\n",
		"swift-async-trace v1\nspawn 1 f unforced\n",
		"swift-async-trace v1\nwhat 1 f\n",
	} {
		if _, err := core.DecodeTrace(strings.NewReader(in)); err == nil {
			t.Errorf("decoded garbage %q", in)
		}
	}
}

// TestReplayExitStatesMatchSync sanity-checks Theorem 3.1 through the
// replay path: the replayed asynchronous run agrees with the synchronous
// engines on the program's exit states.
func TestReplayExitStatesMatchSync(t *testing.T) {
	trace, _ := recordRun(t, drainProgram)
	kg := drainClient()
	an, err := core.NewAnalysis[string, string, string](kg, drainProgram())
	if err != nil {
		t.Fatal(err)
	}
	init := kg.State(kg.MakeBits())
	td := an.RunTD(init, core.TDConfig())
	cfg := core.DefaultConfig()
	cfg.K = 1
	cfg.ReplayTrace = trace
	rep := an.RunSwiftAsync(init, cfg)
	if td.Err != nil || rep.Err != nil {
		t.Fatalf("td err=%v replay err=%v", td.Err, rep.Err)
	}
	if got, want := fmt.Sprint(rep.ExitStates("main", init)), fmt.Sprint(td.ExitStates("main", init)); got != want {
		t.Errorf("exit states: replay %s, td %s", got, want)
	}
}
