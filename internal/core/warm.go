package core

import (
	"cmp"
	"errors"
	"fmt"
)

// This file defines the warm-start seam between the engines and a
// persistent summary store (internal/store, wired up by internal/driver):
// every place the hybrid engines would invoke run_bu first consults an
// optional SummarySource, and every deterministic run_bu outcome is
// offered back to it.
//
// What is cached is a whole trigger outcome — the eta map run_bu returned
// for one (trigger, frontier) invocation, or the fact that the invocation
// deterministically exhausted its budget. Reusing a stored outcome is
// sound whenever the bodies of every procedure reachable from the trigger
// are unchanged and the client's frozen construction (property layout,
// may-alias oracle) is identical: a bottom-up summary over-approximates
// its procedure's top-down behaviour as a property of the code alone
// (Theorem 3.1), independent of the run that computed it. The stored
// outcome may still differ from what a cold run at this point would
// compute — pruning ranks against the live incoming-state sample, and
// callee summaries outside the frontier may differ — which changes
// counters and Σ-fallbacks but never final state sets. Byte-identical
// warm runs additionally require restoring the cold run's intern tables;
// the driver's Warm runner handles that and the store key pins the rest.

// TriggerOutcome is one cached run_bu invocation result: the summaries it
// produced, or Failed for a deterministic budget exhaustion (cached so a
// warm run skips recomputing a doomed trigger just to watch it fail
// again).
type TriggerOutcome[R cmp.Ordered, P cmp.Ordered] struct {
	Eta    map[string]RSet[R, P]
	Failed bool
}

// SummarySource serves and accepts trigger outcomes. Implementations must
// be safe for concurrent use (the async engine's workers call both
// methods from worker goroutines) and must return freshly allocated maps
// from Lookup — the engines install the eta directly into their results.
// Lookup must only report a hit when the stored outcome was recorded for
// the same trigger with the same frontier under an equivalent
// configuration; how that is keyed is the implementation's business (see
// internal/store and internal/driver).
type SummarySource[R cmp.Ordered, P cmp.Ordered] interface {
	Lookup(trigger string, frontier []string) (TriggerOutcome[R, P], bool)
	Publish(trigger string, frontier []string, out TriggerOutcome[R, P])
}

// publishOutcome offers a finished run_bu invocation to the source, if
// its outcome is deterministic: a success publishes the summaries; a
// budget exhaustion publishes a Failed marker unless a wall-clock
// deadline or a caller cancellation (both nondeterministic by nature) or
// the fault layer was involved. Contained panics are never published —
// they earn retries.
func publishOutcome[R cmp.Ordered, P cmp.Ordered](
	w SummarySource[R, P], trigger string, frontier []string,
	eta map[string]RSet[R, P], err error,
) {
	if w == nil {
		return
	}
	switch {
	case err == nil:
		w.Publish(trigger, frontier, TriggerOutcome[R, P]{Eta: eta})
	case errors.Is(err, ErrBudget) &&
		!errors.Is(err, ErrDeadline) &&
		!errors.Is(err, ErrCanceled) &&
		!errors.Is(err, ErrClientPanic) &&
		!errors.Is(err, ErrClientFault):
		w.Publish(trigger, frontier, TriggerOutcome[R, P]{Failed: true})
	}
}

// errCachedBudget reconstructs the error shape of a budget-failed trigger
// when its cached outcome is replayed without rerunning run_bu.
func errCachedBudget() error {
	return fmt.Errorf("core: cached trigger outcome: %w", ErrBudget)
}
