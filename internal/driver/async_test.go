package driver

import (
	"testing"

	"swift/internal/benchprog"
	"swift/internal/core"
	"swift/internal/typestate"
)

// TestAsyncHybridCoincides runs the asynchronous hybrid (the paper's
// Section 7 parallelization sketch) and checks its abstract results
// coincide with the top-down analysis even though summary usage is
// timing-dependent. Run with -race to exercise the synchronization.
func TestAsyncHybridCoincides(t *testing.T) {
	b, err := FromSource(goodProgram)
	if err != nil {
		t.Fatal(err)
	}
	sync := core.Synchronized[typestate.AbsID, typestate.RelID, typestate.FormulaID](b.TS)
	an, err := core.NewAnalysis[typestate.AbsID, typestate.RelID, typestate.FormulaID](sync, b.Lowered.Prog)
	if err != nil {
		t.Fatal(err)
	}
	init := b.TS.InitialState()
	td := an.RunTD(init, core.TDConfig())
	if !td.Completed() {
		t.Fatal(td.Err)
	}
	entry := b.Lowered.Prog.Entry
	want := td.ExitStates(entry, init)
	cfg := core.DefaultConfig()
	cfg.K = 2
	for round := 0; round < 5; round++ {
		async := an.RunSwiftAsync(init, cfg)
		if !async.Completed() {
			t.Fatalf("round %d: %v", round, async.Err)
		}
		got := async.ExitStates(entry, init)
		if len(got) != len(want) {
			t.Fatalf("round %d: exit states %d, want %d", round, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("round %d: exit[%d] differs", round, i)
			}
		}
		if errs := b.TS.ErrorSites(async.TD.AllStates()); len(errs) != 0 {
			t.Errorf("round %d: spurious errors %v", round, errs)
		}
	}
}

func TestAsyncHybridOnBenchmark(t *testing.T) {
	p, _ := benchprog.ProfileByName("elevator")
	hprog, err := benchprog.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromHIR(hprog)
	if err != nil {
		t.Fatal(err)
	}
	sync := core.Synchronized[typestate.AbsID, typestate.RelID, typestate.FormulaID](b.TS)
	an, err := core.NewAnalysis[typestate.AbsID, typestate.RelID, typestate.FormulaID](sync, b.Lowered.Prog)
	if err != nil {
		t.Fatal(err)
	}
	init := b.TS.InitialState()
	td := an.RunTD(init, core.TDConfig())
	if !td.Completed() {
		t.Fatal(td.Err)
	}
	async := an.RunSwiftAsync(init, core.DefaultConfig())
	if !async.Completed() {
		t.Fatal(async.Err)
	}
	entry := b.Lowered.Prog.Entry
	want := td.ExitStates(entry, init)
	got := async.ExitStates(entry, init)
	if len(got) != len(want) {
		t.Fatalf("exit states %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("exit[%d] differs", i)
		}
	}
	wantErrs := b.TS.ErrorSites(td.TD.AllStates())
	gotErrs := b.TS.ErrorSites(async.TD.AllStates())
	if len(wantErrs) != len(gotErrs) {
		t.Errorf("error sites differ: %v vs %v", wantErrs, gotErrs)
	}
}
