package driver

// Cancellation tests at the warm/demand layer: a canceled run publishes
// nothing to the store (no tables snapshot, no summaries), memoizes no
// slice tables, and a subsequent identical request recomputes tables
// byte-identical to a never-canceled cold run — for all four engines,
// swift-async via record/replay.

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"swift/internal/core"
)

// heavySource renders a program whose straight-line main body has n
// tracked-object operations: enough periodic-check traffic that a
// pre-closed cancel channel reliably aborts any engine mid-run (one
// check interval is 256 checks).
func heavySource(n int) string {
	var sb strings.Builder
	sb.WriteString(`
property File {
  states closed opened error
  error error
  open: closed -> opened
  close: opened -> closed
  read: opened -> opened
}

class Main {
  method main() {
    f = new File @h1
    f.open()
`)
	for i := 0; i < n; i++ {
		sb.WriteString("    f.read()\n")
	}
	sb.WriteString(`    f.close()
  }
}
`)
	return sb.String()
}

func closedCancel() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}

// TestCanceledWarmRunPublishesNothing: for every engine, a Warm.Run with
// a pre-closed cancel channel returns ErrCanceled and leaves the store
// untouched — zero Puts across the tables, summary and any other layer.
func TestCanceledWarmRunPublishesNothing(t *testing.T) {
	src := heavySource(2000)
	for _, engine := range []string{"td", "bu", "swift", "swift-async"} {
		t.Run(engine, func(t *testing.T) {
			st := openStore(t)
			cfg := lowConfig()
			cfg.Cancel = closedCancel()
			b := mustBuild(t, src)
			res, stats, err := Warm{Store: st}.Run(b, engine, cfg)
			if err != nil {
				t.Fatalf("Warm.Run: %v", err)
			}
			if !errors.Is(res.Err, core.ErrCanceled) {
				t.Fatalf("Err = %v, want ErrCanceled", res.Err)
			}
			if stats.PublishedTables {
				t.Fatal("canceled run published tables")
			}
			if n := st.Stats().Puts; n != 0 {
				t.Fatalf("canceled run put %d store entries, want 0", n)
			}
		})
	}
}

// TestCancelThenRecomputeByteIdentical pins the acceptance criterion: on
// a store polluted by nothing (because the canceled run published
// nothing), an identical follow-up request recomputes result tables
// byte-identical to a never-canceled cold run on a fresh store.
func TestCancelThenRecomputeByteIdentical(t *testing.T) {
	src := heavySource(2000)
	for _, engine := range []string{"td", "bu", "swift"} {
		t.Run(engine, func(t *testing.T) {
			// Never-canceled cold reference on its own fresh store.
			ref := mustBuild(t, src)
			refRes, _, err := Warm{Store: openStore(t)}.Run(ref, engine, lowConfig())
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			if !refRes.Completed() {
				t.Fatalf("reference did not complete: %v", refRes.Err)
			}
			want := EncodeResultTables(ref, refRes)

			// Canceled run, then an identical request against the same store.
			st := openStore(t)
			ccfg := lowConfig()
			ccfg.Cancel = closedCancel()
			b1 := mustBuild(t, src)
			res1, _, err := Warm{Store: st}.Run(b1, engine, ccfg)
			if err != nil {
				t.Fatalf("canceled: %v", err)
			}
			if !errors.Is(res1.Err, core.ErrCanceled) {
				t.Fatalf("canceled run: Err = %v, want ErrCanceled", res1.Err)
			}
			b2 := mustBuild(t, src)
			res2, stats2, err := Warm{Store: st}.Run(b2, engine, lowConfig())
			if err != nil {
				t.Fatalf("recompute: %v", err)
			}
			if !res2.Completed() {
				t.Fatalf("recompute did not complete: %v", res2.Err)
			}
			if stats2.RestoredTables || stats2.SummaryHits > 0 {
				t.Fatalf("recompute warm-started from a canceled run's leftovers: %+v", stats2)
			}
			if got := EncodeResultTables(b2, res2); !bytes.Equal(got, want) {
				t.Fatal("recomputed tables differ from the never-canceled cold run")
			}
		})
	}
}

// TestCancelThenReplayByteIdentical is the swift-async variant: the
// recompute after a canceled run replays the reference run's trace, which
// must reproduce its tables byte for byte — possible only because the
// canceled run published nothing for the replay to warm-start from
// differently.
func TestCancelThenReplayByteIdentical(t *testing.T) {
	src := heavySource(2000)

	ref := mustBuild(t, src)
	cfgRec := lowConfig()
	cfgRec.RecordTrace = &core.Trace{}
	refRes, _, err := Warm{Store: openStore(t)}.Run(ref, "swift-async", cfgRec)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	if !refRes.Completed() {
		t.Fatalf("reference did not complete: %v", refRes.Err)
	}
	want := EncodeResultTables(ref, refRes)

	st := openStore(t)
	ccfg := lowConfig()
	ccfg.Cancel = closedCancel()
	b1 := mustBuild(t, src)
	res1, _, err := Warm{Store: st}.Run(b1, "swift-async", ccfg)
	if err != nil {
		t.Fatalf("canceled: %v", err)
	}
	if !errors.Is(res1.Err, core.ErrCanceled) {
		t.Fatalf("canceled run: Err = %v, want ErrCanceled", res1.Err)
	}
	if n := st.Stats().Puts; n != 0 {
		t.Fatalf("canceled run put %d store entries, want 0", n)
	}

	b2 := mustBuild(t, src)
	cfgRep := lowConfig()
	cfgRep.ReplayTrace = cfgRec.RecordTrace
	res2, _, err := Warm{Store: st}.Run(b2, "swift-async", cfgRep)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !res2.Completed() {
		t.Fatalf("replay did not complete: %v", res2.Err)
	}
	if got := EncodeResultTables(b2, res2); !bytes.Equal(got, want) {
		t.Fatal("replayed tables after a canceled run differ from the reference run")
	}
}

// TestCanceledSliceNotMemoized: the demand path must fail a canceled
// batch without memoizing anything — under td, whose aborts leave a
// partial non-nil TD table that would otherwise silently answer
// "unreachable" everywhere — and a later evaluator on the same memo must
// recompute and succeed.
func TestCanceledSliceNotMemoized(t *testing.T) {
	b, err := FromSource(badProgram) // tracked sites h1, h2
	if err != nil {
		t.Fatal(err)
	}
	memo := NewSliceMemo(8)
	ccfg := lowConfig()
	ccfg.Cancel = closedCancel()
	e1, err := NewDemandEvaluator(b, "td", ccfg, memo)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e1.Tables([]core.SliceID{"h1"}); err == nil {
		t.Fatal("canceled batch succeeded")
	} else if !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("canceled batch: err = %v, want ErrCanceled in the chain", err)
	}
	if n := memo.Stats().Entries; n != 0 {
		t.Fatalf("canceled batch memoized %d slice tables, want 0", n)
	}

	e2, err := NewDemandEvaluator(b, "td", lowConfig(), memo)
	if err != nil {
		t.Fatal(err)
	}
	tables, _, err := e2.Tables([]core.SliceID{"h1"})
	if err != nil {
		t.Fatalf("recompute after cancel: %v", err)
	}
	if !tables["h1"].ErrorSite {
		t.Fatal("recomputed slice lost the h1 error verdict")
	}
}

// TestAbortedSliceWithPartialTDNotMemoized pins the partial-table guard
// directly: a td slice run aborted by a budget (not a cancellation)
// leaves res.TD non-nil but incomplete, and must still fail table
// construction instead of building a table that answers from the partial
// run.
func TestAbortedSliceWithPartialTDNotMemoized(t *testing.T) {
	b, err := FromSource(heavySource(600))
	if err != nil {
		t.Fatal(err)
	}
	memo := NewSliceMemo(8)
	cfg := lowConfig()
	cfg.MaxPathEdges = 50
	e, err := NewDemandEvaluator(b, "td", cfg, memo)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = e.Tables([]core.SliceID{"h1"})
	if err == nil {
		t.Fatal("budget-aborted batch succeeded")
	}
	if !errors.Is(err, core.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget in the chain", err)
	}
	if !strings.Contains(err.Error(), "h1") {
		t.Fatalf("err %q does not name the aborted slice", err)
	}
	if n := memo.Stats().Entries; n != 0 {
		t.Fatalf("aborted batch memoized %d slice tables, want 0", n)
	}
}
