package driver

// This file is the demand-driven serving layer under internal/query: point
// queries name one tracked allocation site, so they can be answered by
// running only that site's slice (core.RunSliceSet over PR 5's sliceable
// client) instead of the whole program. Completed slice runs are folded
// into immutable SliceTables and memoized in an in-memory cache keyed by
// the same content digests the warm store uses (program digest + frozen
// digest + engine + normalized thresholds + slice ID), so repeated and
// overlapping queries against one program version run each slice at most
// once — and typically run nothing at all.
//
// Determinism carries over from the sliced execution layer unchanged:
// every slice runs on fresh mutable interners over the frozen tables, so
// its table is byte-identical whether it was computed alone, beside other
// slices on the pool, or replayed from the memo. Answers therefore do not
// depend on Config.SliceWorkers, batch composition, or cache state.

import (
	"container/list"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"swift/internal/core"
	"swift/internal/store"
	"swift/internal/typestate"
)

// RunSliceSet runs only the named slices of the type-state decomposition
// (core.RunSliceSet): the demand path behind point queries. Slice IDs are
// tracked allocation-site labels.
func (b *Build) RunSliceSet(engine string, cfg core.Config, ids []core.SliceID) (*SlicedResult, error) {
	return b.Core.RunSliceSet(engine, cfg, ids)
}

// SliceRunKey is the store key identifying one slice's completed run for
// one program version: the whole-program digest (any source change
// invalidates every slice), the client's frozen-construction digest, the
// engine with its normalized thresholds, and the slice ID in the Proc
// field. SliceMemo uses its content address as the memo key, so demand
// queries reuse exactly when a warm-store artifact would.
func SliceRunKey(b *Build, engine string, cfg core.Config, id core.SliceID) store.Key {
	k := keyTemplate(b, engine, normalizeConfig(engine, cfg))
	k.Kind = "slicerun"
	k.Proc = string(id)
	k.Body = ProgramDigest(b)
	return k
}

// SliceTable is the immutable query-facing digest of one completed slice
// run: everything a point query about the slice's site can ask, rendered
// to stable strings so concurrent queries share it without touching the
// run's lazily-memoizing result accessors.
type SliceTable struct {
	// Engine and Site identify the run ("td", "bu", "swift", "swift-async"
	// and the tracked allocation-site label).
	Engine string
	Site   string
	// ErrorSite reports the site appears in the slice's error report: some
	// tracked tuple of the site may reach its property's error state.
	ErrorSite bool
	// StatesAt, indexed by global CFG node ID, holds the sorted distinct
	// FSM state names of the site's tuples recorded at the node (bootstrap
	// states excluded); nil where the site's tuples never reach. Callers
	// must not mutate the inner slices.
	StatesAt [][]string
	// Work is the slice run's deterministic work-unit cost — what one
	// demand query pays when the memo misses.
	Work int
}

// buildSliceTable folds one completed slice run into its immutable table.
// The slice result's abstract-state IDs live in the slice client's own ID
// space, so everything is interpreted through that client, exactly like
// SlicedErrorReport. A run without instantiated states (budget or fault
// abort) has no table: that is an explicit error, not an empty table,
// since an empty table answers "unreachable" to every query.
func buildSliceTable(sl *core.SliceRun[typestate.AbsID, typestate.RelID, typestate.FormulaID]) (*SliceTable, error) {
	ts, ok := sl.Client.(*typestate.Analysis)
	if !ok {
		return nil, fmt.Errorf("driver: slice %s has client %T, want *typestate.Analysis", sl.ID, sl.Client)
	}
	res := sl.Result
	if res.TD == nil {
		if res.Err != nil {
			return nil, fmt.Errorf("driver: %s slice %s run aborted before instantiating states: %w",
				res.Engine, sl.ID, res.Err)
		}
		return nil, fmt.Errorf("driver: %s slice %s has no instantiated states to answer queries from",
			res.Engine, sl.ID)
	}
	site := string(sl.ID)
	t := &SliceTable{
		Engine:   res.Engine,
		Site:     site,
		StatesAt: make([][]string, len(res.TD.PathEdges)),
		Work:     res.WorkUnits(),
	}
	for _, s := range ts.ErrorSites(res.TD.AllStates()) {
		if s == site {
			t.ErrorSite = true
		}
	}
	for node := range t.StatesAt {
		var names []string
		for _, s := range res.TD.NodeStates(node) {
			if ts.Site(s) == site {
				names = append(names, ts.StateName(s))
			}
		}
		if len(names) == 0 {
			continue
		}
		sort.Strings(names)
		j := 0
		for i, n := range names {
			if i == 0 || n != names[j-1] {
				names[j] = n
				j++
			}
		}
		t.StatesAt[node] = names[:j:j]
	}
	return t, nil
}

// StatesAtNode returns the table's state names at a global CFG node ID
// (nil when the site's tuples never reach it, or the ID is out of range —
// validation happens at the query layer).
func (t *SliceTable) StatesAtNode(node int) []string {
	if node < 0 || node >= len(t.StatesAt) {
		return nil
	}
	return t.StatesAt[node]
}

// SliceMemo is the in-memory slice-result cache behind demand queries: a
// bounded LRU from SliceRunKey content addresses to SliceTables, shared
// across evaluators (and, in swiftd, across requests). Only completed
// deterministic slice runs are stored, so a hit is exact: the table bytes
// equal what recomputing the slice would produce.
//
// Concurrent evaluators that miss on the same key may both compute the
// slice; both publish the identical table, so the race costs duplicate
// work, never a divergent answer.
type SliceMemo struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used

	hits   atomic.Int64
	misses atomic.Int64
}

// memoCell is one LRU slot.
type memoCell struct {
	key   string
	table *SliceTable
}

// DefaultSliceMemoCap bounds a NewSliceMemo(0) memo: at a few thousand
// live slice tables the memo is a cache, not a leak, even in a long-lived
// swiftd serving many program versions.
const DefaultSliceMemoCap = 4096

// NewSliceMemo returns an empty memo holding at most cap slice tables
// (DefaultSliceMemoCap when cap <= 0).
func NewSliceMemo(cap int) *SliceMemo {
	if cap <= 0 {
		cap = DefaultSliceMemoCap
	}
	return &SliceMemo{
		cap:     cap,
		entries: map[string]*list.Element{},
		order:   list.New(),
	}
}

// lookup returns the memoized table for the key, updating recency and the
// hit/miss counters.
func (m *SliceMemo) lookup(key string) (*SliceTable, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.entries[key]
	if !ok {
		m.misses.Add(1)
		return nil, false
	}
	m.order.MoveToFront(el)
	m.hits.Add(1)
	return el.Value.(*memoCell).table, true
}

// add publishes a table under the key, evicting the least recently used
// entries beyond the capacity. Re-adding an existing key refreshes
// recency; the tables are deterministic, so which copy survives is
// unobservable.
func (m *SliceMemo) add(key string, t *SliceTable) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.entries[key]; ok {
		el.Value.(*memoCell).table = t
		m.order.MoveToFront(el)
		return
	}
	m.entries[key] = m.order.PushFront(&memoCell{key: key, table: t})
	for m.order.Len() > m.cap {
		back := m.order.Back()
		m.order.Remove(back)
		delete(m.entries, back.Value.(*memoCell).key)
	}
}

// MemoStats is a point-in-time snapshot of a SliceMemo.
type MemoStats struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Entries int   `json:"entries"`
}

// Stats snapshots the memo's cumulative hit/miss counters and current
// size.
func (m *SliceMemo) Stats() MemoStats {
	m.mu.Lock()
	n := len(m.entries)
	m.mu.Unlock()
	return MemoStats{Hits: m.hits.Load(), Misses: m.misses.Load(), Entries: n}
}

// DemandEvaluator is the batch evaluator behind point queries: it binds
// one built pipeline, one engine and one configuration to a slice memo,
// and turns a coalesced set of slice IDs into SliceTables — answering
// from the memo where possible and computing the distinct missing slices
// in a single RunSliceSet on the bounded pool (Config.SliceWorkers).
type DemandEvaluator struct {
	B      *Build
	Engine string
	Cfg    core.Config
	Memo   *SliceMemo

	// tmpl caches the per-program key fields (program digest, frozen
	// digest) so a batch of queries hashes the program once, not once per
	// slice lookup.
	tmplOnce sync.Once
	tmpl     store.Key
}

// NewDemandEvaluator validates the engine name (fault-armed configs are
// rejected: injected operation indices would make slice outcomes depend
// on cache state, exactly why Warm.Run bypasses the store for them) and
// binds the evaluator. A nil memo gets a fresh default-capacity one.
func NewDemandEvaluator(b *Build, engine string, cfg core.Config, memo *SliceMemo) (*DemandEvaluator, error) {
	switch engine {
	case "td", "bu", "swift", "swift-async":
	default:
		return nil, fmt.Errorf("driver: unknown engine %q (want td, bu, swift or swift-async)", engine)
	}
	if cfg.Fault != nil {
		return nil, fmt.Errorf("driver: demand queries are incompatible with fault injection")
	}
	if memo == nil {
		memo = NewSliceMemo(0)
	}
	return &DemandEvaluator{B: b, Engine: engine, Cfg: cfg, Memo: memo}, nil
}

// key returns the memo key of one slice, sharing the cached program-level
// template.
func (e *DemandEvaluator) key(id core.SliceID) string {
	e.tmplOnce.Do(func() {
		e.tmpl = SliceRunKey(e.B, e.Engine, e.Cfg, "")
	})
	k := e.tmpl
	k.Proc = string(id)
	return k.ID()
}

// EvalStats reports what one Tables call did: how many distinct slices
// the batch coalesced to, how many were answered from the memo, and the
// deterministic work units spent computing the misses (zero on a fully
// memoized batch — the "repeated queries pay nothing" contract).
type EvalStats struct {
	Slices int
	Hits   int
	Misses int
	Work   int
}

// Tables resolves a batch's slice set. ids may repeat and arrive in any
// order; the result maps each distinct ID to its table. Missing slices
// run together in one RunSliceSet — the per-slice outcomes are
// schedule-independent, so answers are identical at any worker count. An
// aborted slice run (budget, deadline) fails the whole call and is not
// memoized; a later retry recomputes it.
func (e *DemandEvaluator) Tables(ids []core.SliceID) (map[core.SliceID]*SliceTable, EvalStats, error) {
	distinct := append([]core.SliceID(nil), ids...)
	sort.Slice(distinct, func(i, j int) bool { return distinct[i] < distinct[j] })
	j := 0
	for i, id := range distinct {
		if i == 0 || id != distinct[j-1] {
			distinct[j] = id
			j++
		}
	}
	distinct = distinct[:j]

	out := make(map[core.SliceID]*SliceTable, len(distinct))
	stats := EvalStats{Slices: len(distinct)}
	var missing []core.SliceID
	for _, id := range distinct {
		if t, ok := e.Memo.lookup(e.key(id)); ok {
			out[id] = t
			stats.Hits++
		} else {
			missing = append(missing, id)
			stats.Misses++
		}
	}
	if len(missing) == 0 {
		return out, stats, nil
	}
	res, err := e.B.RunSliceSet(e.Engine, e.Cfg, missing)
	if err != nil {
		return nil, stats, err
	}
	for i := range res.Slices {
		sl := &res.Slices[i]
		// An aborted slice (budget, deadline, cancellation) must fail the
		// call before table construction: under td/swift/swift-async the
		// abort leaves a partial — but non-nil — TD table behind, which
		// buildSliceTable would happily fold into a table that answers
		// "unreachable" for everything the run never got to. Only
		// completed runs may be built and memoized.
		if rerr := sl.Result.Err; rerr != nil {
			return nil, stats, fmt.Errorf("driver: %s slice %s run aborted: %w", sl.Result.Engine, sl.ID, rerr)
		}
		t, err := buildSliceTable(sl)
		if err != nil {
			return nil, stats, err
		}
		stats.Work += t.Work
		// Memoize only deterministic outcomes; aborted runs never reach
		// here (rejected above).
		e.Memo.add(e.key(sl.ID), t)
		out[sl.ID] = t
	}
	return out, stats, nil
}

// Table is Tables for a single slice.
func (e *DemandEvaluator) Table(id core.SliceID) (*SliceTable, EvalStats, error) {
	m, stats, err := e.Tables([]core.SliceID{id})
	if err != nil {
		return nil, stats, err
	}
	return m[id], stats, nil
}
