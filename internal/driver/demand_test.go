package driver

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"swift/internal/core"
	"swift/internal/typestate"
)

// exhaustiveSiteStates renders, from a completed monolithic run, the
// sorted distinct FSM state names of one site's tuples at one global node
// — the reference a demand SliceTable must reproduce under the exhaustive
// engines.
func exhaustiveSiteStates(b *Build, res *Result, site string, node int) []string {
	var names []string
	for _, s := range res.TD.NodeStates(node) {
		if b.TS.Site(s) == site {
			names = append(names, b.TS.StateName(s))
		}
	}
	sort.Strings(names)
	j := 0
	for i, n := range names {
		if i == 0 || n != names[j-1] {
			names[j] = n
			j++
		}
	}
	return names[:j]
}

// TestSliceTableMatchesExhaustive pins the demand layer's core guarantee
// against monolithic runs on the fixture programs: per-site error verdicts
// equal the exhaustive error report for every engine, and per-node state
// sets equal the exhaustive run's NodeStates under the engines whose
// monolithic run tabulates every context top-down (td; and bu, whose
// instantiation pass applies the same summaries either way).
func TestSliceTableMatchesExhaustive(t *testing.T) {
	for _, src := range []struct{ label, src string }{{"good", goodProgram}, {"bad", badProgram}} {
		for _, engine := range allEngines {
			b, err := FromSource(src.src)
			if err != nil {
				t.Fatal(err)
			}
			cfg := core.DefaultConfig()
			cfg.K = 1
			mono, err := b.Run(engine, cfg)
			if err != nil {
				t.Fatalf("%s/%s: Run: %v", src.label, engine, err)
			}
			report, err := b.ErrorReport(mono)
			if err != nil {
				t.Fatalf("%s/%s: ErrorReport: %v", src.label, engine, err)
			}
			errSites := map[string]bool{}
			for _, s := range report {
				errSites[s] = true
			}
			eval, err := NewDemandEvaluator(b, engine, cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, site := range b.TS.TrackedSites() {
				tab, _, err := eval.Table(core.SliceID(site))
				if err != nil {
					t.Fatalf("%s/%s/%s: Table: %v", src.label, engine, site, err)
				}
				if tab.ErrorSite != errSites[site] {
					t.Errorf("%s/%s: demand IsError(%s) = %v, exhaustive report %v",
						src.label, engine, site, tab.ErrorSite, report)
				}
				if engine != "td" && engine != "bu" {
					continue
				}
				for node := 0; node < b.Core.CFG.NodeCount; node++ {
					want := exhaustiveSiteStates(b, mono, site, node)
					got := tab.StatesAtNode(node)
					if len(want) == 0 && len(got) == 0 {
						continue
					}
					if !reflect.DeepEqual(got, want) {
						t.Errorf("%s/%s: StatesAt(%s, node %d) = %v, exhaustive %v",
							src.label, engine, site, node, got, want)
					}
				}
			}
		}
	}
}

// TestDemandEvaluatorMemo covers the hit/miss accounting contract: a first
// batch pays for its distinct slices, a repeat batch — and any overlapping
// batch's shared slices — pays nothing.
func TestDemandEvaluatorMemo(t *testing.T) {
	b, err := FromSource(badProgram) // tracked sites h1, h2
	if err != nil {
		t.Fatal(err)
	}
	memo := NewSliceMemo(0)
	eval, err := NewDemandEvaluator(b, "swift", core.DefaultConfig(), memo)
	if err != nil {
		t.Fatal(err)
	}

	// Duplicated, unsorted batch coalesces to two distinct slices.
	tables, stats, err := eval.Tables([]core.SliceID{"h2", "h1", "h2", "h1", "h1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 || tables["h1"] == nil || tables["h2"] == nil {
		t.Fatalf("tables = %v, want h1 and h2", tables)
	}
	if stats.Slices != 2 || stats.Hits != 0 || stats.Misses != 2 || stats.Work <= 0 {
		t.Errorf("cold batch stats = %+v, want 2 slices, 2 misses, positive work", stats)
	}

	// The same batch again: all hits, zero work, identical tables (same
	// pointers — served from the memo, not recomputed).
	again, stats, err := eval.Tables([]core.SliceID{"h1", "h2"})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Hits != 2 || stats.Misses != 0 || stats.Work != 0 {
		t.Errorf("warm batch stats = %+v, want 2 hits and no work", stats)
	}
	if again["h1"] != tables["h1"] || again["h2"] != tables["h2"] {
		t.Error("warm batch rebuilt tables instead of serving memoized ones")
	}

	// A fresh evaluator over the same build and memo still hits: keys are
	// content addresses, not evaluator identity.
	eval2, err := NewDemandEvaluator(b, "swift", core.DefaultConfig(), memo)
	if err != nil {
		t.Fatal(err)
	}
	if _, stats, err = eval2.Tables([]core.SliceID{"h1"}); err != nil {
		t.Fatal(err)
	} else if stats.Hits != 1 || stats.Misses != 0 {
		t.Errorf("cross-evaluator stats = %+v, want a pure hit", stats)
	}

	// A different engine misses: the engine is part of the key.
	evalTD, err := NewDemandEvaluator(b, "td", core.DefaultConfig(), memo)
	if err != nil {
		t.Fatal(err)
	}
	if _, stats, err = evalTD.Tables([]core.SliceID{"h1"}); err != nil {
		t.Fatal(err)
	} else if stats.Misses != 1 {
		t.Errorf("cross-engine stats = %+v, want a miss", stats)
	}

	ms := memo.Stats()
	if ms.Entries != 3 || ms.Hits != 3 || ms.Misses != 3 {
		t.Errorf("memo stats = %+v, want 3 entries, 3 hits, 3 misses", ms)
	}
}

// TestSliceMemoLRUEviction pins the bounded-capacity behaviour: the least
// recently used entry goes first, and lookups refresh recency.
func TestSliceMemoLRUEviction(t *testing.T) {
	m := NewSliceMemo(2)
	tab := func(site string) *SliceTable { return &SliceTable{Site: site} }
	m.add("a", tab("a"))
	m.add("b", tab("b"))
	if _, ok := m.lookup("a"); !ok { // refresh a; b is now LRU
		t.Fatal("a should be present")
	}
	m.add("c", tab("c")) // evicts b
	if _, ok := m.lookup("b"); ok {
		t.Error("b should have been evicted as LRU")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := m.lookup(k); !ok {
			t.Errorf("%s should have survived eviction", k)
		}
	}
	if s := m.Stats(); s.Entries != 2 {
		t.Errorf("entries = %d, want 2", s.Entries)
	}
}

// TestDemandEvaluatorRejects covers constructor validation: unknown
// engines and fault-armed configs are refused up front.
func TestDemandEvaluatorRejects(t *testing.T) {
	b, err := FromSource(goodProgram)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDemandEvaluator(b, "nope", core.DefaultConfig(), nil); err == nil {
		t.Error("unknown engine should be rejected")
	}
	cfg := core.DefaultConfig()
	cfg.Fault = &core.FaultPlan{Every: 3}
	if _, err := NewDemandEvaluator(b, "td", cfg, nil); err == nil {
		t.Error("fault-armed config should be rejected")
	}
}

// TestSliceRunKeyDistinguishes pins what the memo key must separate:
// slice, engine, thresholds and program version all change the content
// address; td's ignored trigger threshold does not (normalizeConfig).
func TestSliceRunKeyDistinguishes(t *testing.T) {
	b, err := FromSource(goodProgram)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := FromSource(badProgram)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	base := SliceRunKey(b, "swift", cfg, "h1").ID()
	seen := map[string]string{"base": base}
	for label, id := range map[string]string{
		"other slice":   SliceRunKey(b, "swift", cfg, "h2").ID(),
		"other engine":  SliceRunKey(b, "td", cfg, "h1").ID(),
		"other program": SliceRunKey(b2, "swift", cfg, "h1").ID(),
	} {
		if id == base {
			t.Errorf("%s produced the same key as base", label)
		}
		for prev, pid := range seen {
			if pid == id {
				t.Errorf("%s and %s collide", label, prev)
			}
		}
		seen[label] = id
	}
	kcfg := cfg
	kcfg.K = 2
	if SliceRunKey(b, "swift", kcfg, "h1").ID() == base {
		t.Error("changing K should change a swift key")
	}
	if SliceRunKey(b, "td", kcfg, "h1").ID() != SliceRunKey(b, "td", cfg, "h1").ID() {
		t.Error("td ignores K; its key should too")
	}
}

// TestAbortedSliceNotMemoized: a slice run that aborts on a budget fails
// the Tables call with the slice named, and nothing is memoized — an
// aborted run has no instantiated states and must never answer
// "unreachable" from an empty table.
func TestAbortedSliceNotMemoized(t *testing.T) {
	b, err := FromSource(badProgram)
	if err != nil {
		t.Fatal(err)
	}
	memo := NewSliceMemo(0)
	cfg := core.DefaultConfig()
	cfg.MaxBUSteps = 1
	eval, err := NewDemandEvaluator(b, "bu", cfg, memo)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eval.Table("h1"); err == nil {
		t.Fatal("budget-aborted slice should fail the Tables call")
	} else if !strings.Contains(err.Error(), "h1") {
		t.Errorf("abort error should name the slice: %v", err)
	}
	if s := memo.Stats(); s.Entries != 0 {
		t.Errorf("aborted run was memoized: %+v", s)
	}
	// With the budget lifted the same memo serves the slice normally.
	eval, err = NewDemandEvaluator(b, "bu", core.DefaultConfig(), memo)
	if err != nil {
		t.Fatal(err)
	}
	tab, stats, err := eval.Table("h1")
	if err != nil {
		t.Fatal(err)
	}
	if tab == nil || stats.Misses != 1 {
		t.Fatalf("recovery run: table=%v stats=%+v", tab, stats)
	}
}

// TestTablesUnknownSlice: an unknown slice ID surfaces as a dispatch
// error from the slice layer, not a silent empty table.
func TestTablesUnknownSlice(t *testing.T) {
	b, err := FromSource(goodProgram)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := NewDemandEvaluator(b, "td", core.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eval.Tables([]core.SliceID{"no-such-site"}); err == nil {
		t.Error("unknown slice should fail")
	}
}

// TestRunSliceSetSubset: the core hook really runs only the named subset,
// and its per-slice outcomes are byte-identical to the same slices inside
// a full sliced run.
func TestRunSliceSetSubset(t *testing.T) {
	b, err := FromSource(badProgram)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.K = 1
	full, err := b.RunSliced("swift", cfg)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := b.RunSliceSet("swift", cfg, []core.SliceID{"h2", "h2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Slices) != 1 || sub.Slices[0].ID != "h2" {
		t.Fatalf("subset run has slices %v, want exactly h2", len(sub.Slices))
	}
	var wantRun *core.SliceRun[typestate.AbsID, typestate.RelID, typestate.FormulaID]
	for i := range full.Slices {
		if full.Slices[i].ID == "h2" {
			wantRun = &full.Slices[i]
		}
	}
	if wantRun == nil {
		t.Fatal("full run is missing slice h2")
	}
	got := fmt.Sprintf("work=%d tdsum=%d busum=%d triggered=%v",
		sub.Slices[0].Result.WorkUnits(), sub.Slices[0].Result.TDSummaryTotal(),
		sub.Slices[0].Result.BUSummaryTotal(), sub.Slices[0].Result.Triggered)
	want := fmt.Sprintf("work=%d tdsum=%d busum=%d triggered=%v",
		wantRun.Result.WorkUnits(), wantRun.Result.TDSummaryTotal(),
		wantRun.Result.BUSummaryTotal(), wantRun.Result.Triggered)
	if got != want {
		t.Errorf("subset slice outcome %q, inside full run %q", got, want)
	}
}
