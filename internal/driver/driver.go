// Package driver assembles the full toolchain: mini-Java source (or a
// programmatically built HIR program) → pointer analysis → lowering →
// type-state analysis ready to run under any of the three engines. The CLI
// tools, the examples and the benchmark harness all build on it.
package driver

import (
	"fmt"
	"sort"

	"swift/internal/core"
	"swift/internal/hir"
	"swift/internal/ir"
	"swift/internal/lower"
	"swift/internal/pointer"
	"swift/internal/source"
	"swift/internal/typestate"
)

// Build is a fully prepared analysis pipeline for one program.
type Build struct {
	// HIR is the front-end program.
	HIR *hir.Program
	// Pointer is the 0-CFA points-to and call-graph result.
	Pointer *pointer.Result
	// Lowered is the command IR program plus tracking metadata.
	Lowered *lower.Output
	// TS is the type-state client (implements core.Client).
	TS *typestate.Analysis
	// Core binds the client to the lowered program's CFG.
	Core *core.Analysis[typestate.AbsID, typestate.RelID, typestate.FormulaID]
}

// FromSource parses, validates and prepares a mini-Java program.
func FromSource(src string) (*Build, error) {
	prog, err := source.Parse(src)
	if err != nil {
		return nil, err
	}
	return FromHIR(prog)
}

// FromHIR prepares an already-built HIR program. The program must be
// finalized; it is validated here.
func FromHIR(prog *hir.Program) (*Build, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	pts, err := pointer.Analyze(prog)
	if err != nil {
		return nil, err
	}
	low, err := lower.Lower(prog, pts)
	if err != nil {
		return nil, err
	}
	ts, err := typestate.NewAnalysis(low.Prog, low.Track, pts)
	if err != nil {
		return nil, err
	}
	ca, err := core.NewAnalysis[typestate.AbsID, typestate.RelID, typestate.FormulaID](ts, low.Prog)
	if err != nil {
		return nil, err
	}
	return &Build{HIR: prog, Pointer: pts, Lowered: low, TS: ts, Core: ca}, nil
}

// Result is a type-state analysis result under one engine.
type Result = core.Result[typestate.AbsID, typestate.RelID, typestate.FormulaID]

// Run executes the named engine ("td", "bu", "swift" or "swift-async")
// with the given configuration, starting from the bootstrap state. The
// type-state client is a ConcurrentClient (sharded interners), so
// swift-async needs no Synchronized wrapper.
func (b *Build) Run(engine string, cfg core.Config) (*Result, error) {
	return b.Core.RunEngine(engine, b.TS.InitialState(), cfg)
}

// SlicedResult is a site-sliced engine outcome (one Result per tracked
// allocation site, in sorted site order).
type SlicedResult = core.SlicedResult[typestate.AbsID, typestate.RelID, typestate.FormulaID]

// RunSliced executes the named engine once per tracked allocation site on
// a bounded worker pool (cfg.SliceWorkers), each slice on its own
// independent type-state client. The merged report (SlicedErrorReport) and
// all aggregated counters are independent of the worker count.
func (b *Build) RunSliced(engine string, cfg core.Config) (*SlicedResult, error) {
	return b.Core.RunSliced(engine, cfg)
}

// ErrorReport lists the allocation sites whose tracked objects may reach a
// property error state anywhere in the program, per the engine result.
// Error states are absorbing, so they are visible in the instantiated
// top-down states for every engine — including "bu", whose instantiation
// pass fills res.TD. A result without instantiated states (the run aborted
// before or during the bottom-up phase) has no report; that is an explicit
// error here, not an empty report, since an empty report means "no misuse
// found".
func (b *Build) ErrorReport(res *Result) ([]string, error) {
	if res.TD == nil {
		if res.Err != nil {
			return nil, fmt.Errorf("driver: %s run has no instantiated states to report on: %w", res.Engine, res.Err)
		}
		return nil, fmt.Errorf("driver: %s run has no instantiated states to report on", res.Engine)
	}
	return b.TS.ErrorSites(res.TD.AllStates()), nil
}

// SlicedErrorReport merges the per-slice error reports of a sliced run
// into the monolithic report: the sorted union, in slice order, of each
// slice's error sites. Per-slice abstract-state IDs live in the slice
// client's own ID space, so each slice's states are interpreted by its own
// client. Like ErrorReport, a slice without instantiated states is an
// explicit error.
func (b *Build) SlicedErrorReport(res *SlicedResult) ([]string, error) {
	set := map[string]bool{}
	for i := range res.Slices {
		sl := &res.Slices[i]
		ts, ok := sl.Client.(*typestate.Analysis)
		if !ok {
			return nil, fmt.Errorf("driver: slice %s has client %T, want *typestate.Analysis", sl.ID, sl.Client)
		}
		if sl.Result.TD == nil {
			// Distinguish an aborted slice from one that genuinely produced
			// no states: a fault or budget abort is the real cause, and the
			// report names it (with the slice's engine, like the monolithic
			// path) instead of mislabeling it as an empty-state condition.
			if sl.Result.Err != nil {
				return nil, fmt.Errorf("driver: %s slice %s run aborted before instantiating states: %w",
					sl.Result.Engine, sl.ID, sl.Result.Err)
			}
			return nil, fmt.Errorf("driver: %s slice %s has no instantiated states to report on",
				sl.Result.Engine, sl.ID)
		}
		for _, site := range ts.ErrorSites(sl.Result.TD.AllStates()) {
			set[site] = true
		}
	}
	out := make([]string, 0, len(set))
	for site := range set {
		out = append(out, site)
	}
	sort.Strings(out)
	return out, nil
}

// ProgramStats summarizes the lowered program.
func (b *Build) ProgramStats() ir.Stats { return ir.CollectStats(b.Lowered.Prog) }
