// Package driver assembles the full toolchain: mini-Java source (or a
// programmatically built HIR program) → pointer analysis → lowering →
// type-state analysis ready to run under any of the three engines. The CLI
// tools, the examples and the benchmark harness all build on it.
package driver

import (
	"fmt"

	"swift/internal/core"
	"swift/internal/hir"
	"swift/internal/ir"
	"swift/internal/lower"
	"swift/internal/pointer"
	"swift/internal/source"
	"swift/internal/typestate"
)

// Build is a fully prepared analysis pipeline for one program.
type Build struct {
	// HIR is the front-end program.
	HIR *hir.Program
	// Pointer is the 0-CFA points-to and call-graph result.
	Pointer *pointer.Result
	// Lowered is the command IR program plus tracking metadata.
	Lowered *lower.Output
	// TS is the type-state client (implements core.Client).
	TS *typestate.Analysis
	// Core binds the client to the lowered program's CFG.
	Core *core.Analysis[typestate.AbsID, typestate.RelID, typestate.FormulaID]
}

// FromSource parses, validates and prepares a mini-Java program.
func FromSource(src string) (*Build, error) {
	prog, err := source.Parse(src)
	if err != nil {
		return nil, err
	}
	return FromHIR(prog)
}

// FromHIR prepares an already-built HIR program. The program must be
// finalized; it is validated here.
func FromHIR(prog *hir.Program) (*Build, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	pts, err := pointer.Analyze(prog)
	if err != nil {
		return nil, err
	}
	low, err := lower.Lower(prog, pts)
	if err != nil {
		return nil, err
	}
	ts, err := typestate.NewAnalysis(low.Prog, low.Track, pts)
	if err != nil {
		return nil, err
	}
	ca, err := core.NewAnalysis[typestate.AbsID, typestate.RelID, typestate.FormulaID](ts, low.Prog)
	if err != nil {
		return nil, err
	}
	return &Build{HIR: prog, Pointer: pts, Lowered: low, TS: ts, Core: ca}, nil
}

// Result is a type-state analysis result under one engine.
type Result = core.Result[typestate.AbsID, typestate.RelID, typestate.FormulaID]

// Run executes the named engine ("td", "bu", "swift" or "swift-async")
// with the given configuration, starting from the bootstrap state.
func (b *Build) Run(engine string, cfg core.Config) (*Result, error) {
	init := b.TS.InitialState()
	switch engine {
	case "td":
		cfg.K = core.Unlimited
		return b.Core.RunTD(init, cfg), nil
	case "bu":
		cfg.Theta = core.Unlimited
		return b.Core.RunBU(init, cfg), nil
	case "swift":
		return b.Core.RunSwift(init, cfg), nil
	case "swift-async":
		// The type-state client is a ConcurrentClient (sharded interners),
		// so no Synchronized wrapper is needed.
		return b.Core.RunSwiftAsync(init, cfg), nil
	}
	return nil, fmt.Errorf("driver: unknown engine %q (want td, bu, swift or swift-async)", engine)
}

// ErrorReport lists the allocation sites whose tracked objects may reach a
// property error state anywhere in the program, per the engine result.
func (b *Build) ErrorReport(res *Result) []string {
	var states []typestate.AbsID
	if res.TD != nil {
		states = res.TD.AllStates()
	}
	return b.TS.ErrorSites(states)
}

// ProgramStats summarizes the lowered program.
func (b *Build) ProgramStats() ir.Stats { return ir.CollectStats(b.Lowered.Prog) }
