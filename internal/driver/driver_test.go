package driver

import (
	"testing"

	"swift/internal/core"
)

// goodProgram exercises the whole front end: properties, classes,
// inheritance, virtual dispatch, fields, loops and branches — with correct
// file-protocol usage everywhere.
const goodProgram = `
property File {
  states closed opened error
  error error
  open: closed -> opened
  close: opened -> closed
  read: opened -> opened
}

class Main {
  method main() {
    w = new Worker @w1
    h = new Helper @w2
    f1 = new File @h1
    f2 = new File @h2
    w.process(f1)
    w.process(f2)
    h.process(f1)
    box = new Box @b1
    thing = new Thing @t1
    box.put(thing)
    g = box.get()
    w.use(g)
  }
}

class Thing {
}

class Box {
  field item
  method put(x) { this.item = x }
  method get() { r = this.item; return r }
}

class Worker {
  method process(f) {
    f.open()
    while (*) { f.read() }
    f.close()
  }
  method use(x) {
    y = x
    return y
  }
}

class Helper extends Worker {
}
`

// badProgram misuses the protocol: a double open on h1 and a read of a
// closed file on h2, while h3 is used correctly.
const badProgram = `
property File {
  states closed opened error
  error error
  open: closed -> opened
  close: opened -> closed
  read: opened -> opened
}

class Main {
  method main() {
    w = new Worker @w1
    a = new File @h1
    b = new File @h2
    c = new File @h3
    w.doubleOpen(a)
    b.read()
    w.ok(c)
  }
}

class Worker {
  method doubleOpen(f) { f.open(); f.open() }
  method ok(f) { f.open(); f.close() }
}
`

func TestPipelineCleanProgram(t *testing.T) {
	b, err := FromSource(goodProgram)
	if err != nil {
		t.Fatalf("FromSource: %v", err)
	}
	for _, engine := range []string{"td", "swift", "bu"} {
		cfg := core.DefaultConfig()
		cfg.K = 2
		res, err := b.Run(engine, cfg)
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		if !res.Completed() {
			t.Fatalf("%s did not complete: %v", engine, res.Err)
		}
		errs, err := b.ErrorReport(res)
		if err != nil {
			t.Fatalf("%s: ErrorReport: %v", engine, err)
		}
		if len(errs) != 0 {
			t.Errorf("%s: spurious errors %v", engine, errs)
		}
	}
}

func TestPipelineDetectsErrors(t *testing.T) {
	b, err := FromSource(badProgram)
	if err != nil {
		t.Fatalf("FromSource: %v", err)
	}
	for _, engine := range []string{"td", "swift", "bu"} {
		cfg := core.DefaultConfig()
		cfg.K = 1
		res, err := b.Run(engine, cfg)
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		if !res.Completed() {
			t.Fatalf("%s did not complete: %v", engine, res.Err)
		}
		errs, err := b.ErrorReport(res)
		if err != nil {
			t.Fatalf("%s: ErrorReport: %v", engine, err)
		}
		want := []string{"h1", "h2"}
		if len(errs) != len(want) || errs[0] != want[0] || errs[1] != want[1] {
			t.Errorf("%s: error sites = %v, want %v", engine, errs, want)
		}
	}
}

func TestPipelineDevirtualization(t *testing.T) {
	b, err := FromSource(goodProgram)
	if err != nil {
		t.Fatal(err)
	}
	// Helper inherits process from Worker, so no Helper method exists;
	// reachable: Main.main, Worker.process, Worker.use, Box.put, Box.get.
	if got := len(b.Pointer.ReachableMethods()); got != 5 {
		var names []string
		for _, m := range b.Pointer.ReachableMethods() {
			names = append(names, m.QName())
		}
		t.Errorf("reachable methods = %v (%d), want 5", names, got)
	}
	stats := b.Pointer.CollectStats()
	if stats.Sites != 6 {
		t.Errorf("sites = %d, want 6", stats.Sites)
	}
	// The box's field must flow: Box.get's return may point to t1 only.
	if !b.Pointer.PathMayPoint("Box.get$r", "", "t1") {
		t.Errorf("Box.get$r should may-point to t1")
	}
	if b.Pointer.PathMayPoint("Box.get$r", "", "h1") {
		t.Errorf("Box.get$r should not may-point to h1")
	}
	// Field-sensitive query: Box.put's receiver field holds t1.
	if !b.Pointer.PathMayPoint("Box.put$this", "item", "t1") {
		t.Errorf("Box.put$this.item should may-point to t1")
	}
}

// TestHeapMediatedFlowIsConservative documents a known, sound imprecision
// of the paper's formal setting: when a tracked object flows through a heap
// cell across call boundaries, the global-namespace call convention of
// Section 3.5 cannot carry the caller-scope field fact (there is no scope
// mapping at calls, unlike Fink et al.'s implementation), so the analysis
// conservatively reports a may-error on the stored object.
func TestHeapMediatedFlowIsConservative(t *testing.T) {
	const prog = `
property File {
  states closed opened error
  error error
  open: closed -> opened
  close: opened -> closed
}
class Main {
  method main() {
    w = new Worker @w1
    box = new Box @b1
    f = new File @h1
    box.put(f)
    g = box.get()
    w.process(g)
  }
}
class Box {
  field item
  method put(x) { this.item = x }
  method get() { r = this.item; return r }
}
class Worker {
  method process(f) { f.open(); f.close() }
}
`
	b, err := FromSource(prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run("td", core.TDConfig())
	if err != nil || !res.Completed() {
		t.Fatalf("td: %v / %v", err, res.Err)
	}
	errs, err := b.ErrorReport(res)
	if err != nil {
		t.Fatalf("ErrorReport: %v", err)
	}
	if len(errs) != 1 || errs[0] != "h1" {
		t.Errorf("expected the conservative alarm on h1, got %v", errs)
	}
}

func TestEngineAgreementOnPipeline(t *testing.T) {
	b, err := FromSource(goodProgram)
	if err != nil {
		t.Fatal(err)
	}
	init := b.TS.InitialState()
	td, _ := b.Run("td", core.TDConfig())
	cfg := core.DefaultConfig()
	cfg.K = 1
	cfg.Theta = 1
	sw, _ := b.Run("swift", cfg)
	bu, _ := b.Run("bu", core.BUConfig())
	entry := b.Lowered.Prog.Entry
	tdExit := td.ExitStates(entry, init)
	for name, res := range map[string]*Result{"swift": sw, "bu": bu} {
		got := res.ExitStates(entry, init)
		if len(got) != len(tdExit) {
			t.Fatalf("%s: %d exit states, td has %d", name, len(got), len(tdExit))
		}
		for i := range got {
			if got[i] != tdExit[i] {
				t.Errorf("%s: exit state %d = %s, td has %s",
					name, i, b.TS.StateString(got[i]), b.TS.StateString(tdExit[i]))
			}
		}
	}
	if sw.TDSummaryTotal() >= td.TDSummaryTotal() {
		t.Errorf("swift TD summaries (%d) should be fewer than TD (%d)",
			sw.TDSummaryTotal(), td.TDSummaryTotal())
	}
}
