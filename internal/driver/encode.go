package driver

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"

	"swift/internal/core"
	"swift/internal/typestate"
	"swift/internal/wire"
)

// EncodeResultTables renders everything deterministic about a Result into
// one canonical byte string: the engine name, the error text, the
// top-down tables (raw interned IDs — meaningful because byte-identity is
// only claimed between runs over identical intern tables, i.e. cold
// versus tables-restored warm), the bottom-up summaries (structural, via
// the summary codec), and the deterministic counters. Elapsed and BUStats
// are deliberately excluded: wall-clock varies, and a warm run does less
// bottom-up work by design.
//
// The encoding exists to PIN warm-start correctness: a tables-restored
// warm run under td, bu or swift — or a swift-async trace replay — must
// produce exactly these bytes again (see driver's warm tests and
// bench.WarmTable).
func EncodeResultTables(b *Build, res *Result) []byte {
	var w wire.Writer
	w.Raw([]byte("SWRT1"))
	w.String(res.Engine)
	if res.Err != nil {
		w.String(res.Err.Error())
	} else {
		w.String("")
	}
	w.Bool(res.TD != nil)
	if res.TD != nil {
		core.EncodeTDResult(&w, res.TD, func(s typestate.AbsID) int64 { return int64(s) })
	}
	w.String(string(b.TS.EncodeSummaries(nil, res.BU, false)))
	failed := make([]string, 0, len(res.BUFailed))
	for name, v := range res.BUFailed {
		if v {
			failed = append(failed, name)
		}
	}
	sort.Strings(failed)
	w.Uint(uint64(len(failed)))
	for _, name := range failed {
		w.String(name)
	}
	w.Uint(uint64(len(res.Triggered)))
	for _, name := range res.Triggered {
		w.String(name)
	}
	for _, n := range []int{
		res.CallsViaBU, res.CallsViaTD, res.CallsInSigma,
		res.ClientPanics, res.Resummarized,
	} {
		w.Int(int64(n))
	}
	return w.Bytes()
}

// ResultTablesDigest is EncodeResultTables folded to a short printable
// form, for logs and the swiftd response.
func ResultTablesDigest(b *Build, res *Result) string {
	sum := sha256.Sum256(EncodeResultTables(b, res))
	return hex.EncodeToString(sum[:])
}
