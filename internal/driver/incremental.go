package driver

// This file gives the incremental re-analysis layer its measuring stick:
// a per-procedure index of the same call-graph-closure digests that key
// the summary store. Diffing the indexes of two program versions yields
// the invalidation frontier — procedures whose stored summaries an
// incremental run cannot reuse — without running any engine. The warm
// path itself needs no index (matching keys hit the store by
// construction); the index exists so edit-stream benchmarks and servers
// can surface how much of the program an edit invalidated.

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"

	"swift/internal/ir"
)

// DigestIndex maps every procedure of one program version to its
// call-graph-closure digest — the Body component of the "summary" store
// keys its trigger outcomes live under. Procedures with equal digests
// across versions keep their summaries (same closure bytes, same key);
// procedures whose digest changed lost all of them.
type DigestIndex map[string]string

// IndexClosures computes the digest index of the build's lowered
// program. Each procedure's digest equals closureDigest of the same
// root; body prints are memoized so indexing the whole program costs one
// print per procedure plus one hash per closure.
func IndexClosures(b *Build) DigestIndex {
	prog := b.Lowered.Prog
	bodies := map[string][]byte{}
	bodyOf := func(name string) []byte {
		if blob, ok := bodies[name]; ok {
			return blob
		}
		var blob []byte
		if p, ok := prog.Procs[name]; ok {
			blob = []byte(ir.Print(&ir.Program{Procs: map[string]*ir.Proc{name: p}}))
		}
		bodies[name] = blob
		return blob
	}
	idx := make(DigestIndex, len(prog.Procs))
	for _, name := range prog.ProcNames() {
		h := sha256.New()
		for _, r := range prog.Reachable(name) {
			h.Write([]byte(r))
			h.Write([]byte{0})
			h.Write(bodyOf(r))
			h.Write([]byte{0})
		}
		idx[name] = hex.EncodeToString(h.Sum(nil))
	}
	return idx
}

// Changed returns the sorted names of procedures whose closure digest
// differs between idx and other, including procedures present in only
// one of the two — the invalidation frontier between two program
// versions.
func (idx DigestIndex) Changed(other DigestIndex) []string {
	set := map[string]bool{}
	for name, d := range idx {
		if od, ok := other[name]; !ok || od != d {
			set[name] = true
		}
	}
	for name := range other {
		if _, ok := idx[name]; !ok {
			set[name] = true
		}
	}
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
