package driver

import (
	"bytes"
	"slices"
	"testing"

	"swift/internal/benchprog"
	"swift/internal/core"
)

// tweakUtil0 is the canonical closure-preserving edit for these tests:
// Util0.process sits at the top of the utility chain, so every other
// utility layer's call-graph closure excludes it and keeps its summary
// keys across the edit.
var tweakUtil0 = benchprog.Edit{Kind: benchprog.EditTweakBody, Class: "Util0", Method: "process"}

func buildToba(t *testing.T, edits ...benchprog.Edit) *Build {
	t.Helper()
	p, ok := benchprog.ProfileByName("toba-s")
	if !ok {
		t.Fatal("toba-s profile missing")
	}
	prog, err := benchprog.GenerateEdited(p, edits...)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromHIR(prog)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDigestIndexMatchesClosureDigest: the index must produce exactly
// the digests the summary keys use, or its invalidation frontier would
// not describe the store.
func TestDigestIndexMatchesClosureDigest(t *testing.T) {
	b := buildToba(t)
	idx := IndexClosures(b)
	names := b.Lowered.Prog.ProcNames()
	if len(idx) != len(names) {
		t.Fatalf("index has %d procedures, program %d", len(idx), len(names))
	}
	for _, name := range names {
		if idx[name] != closureDigest(b.Lowered.Prog, name) {
			t.Errorf("index digest of %s differs from closureDigest", name)
		}
	}
}

// TestDigestIndexFrontier: identical programs diff to nothing; a
// single-procedure body edit invalidates exactly the edited procedure
// and its transitive callers — a proper subset of the program.
func TestDigestIndexFrontier(t *testing.T) {
	base := IndexClosures(buildToba(t))
	if ch := base.Changed(IndexClosures(buildToba(t))); len(ch) != 0 {
		t.Fatalf("identical programs have frontier %v", ch)
	}
	edited := IndexClosures(buildToba(t, tweakUtil0))
	frontier := edited.Changed(base)
	if len(frontier) == 0 {
		t.Fatal("edit produced an empty invalidation frontier")
	}
	if len(frontier) >= len(base) {
		t.Fatalf("frontier covers %d of %d procedures; want a proper subset", len(frontier), len(base))
	}
	if !slices.Contains(frontier, "Util0.process") {
		t.Fatalf("frontier %v does not contain the edited procedure", frontier)
	}
	for _, name := range frontier {
		if edited[name] == base[name] {
			t.Errorf("%s is in the frontier but its digest is unchanged", name)
		}
	}
}

// TestIncrementalSummaryReuseAfterEdit is the tentpole acceptance
// criterion at the driver layer: after a single-procedure edit, triggers
// whose call-graph closure is untouched are answered from the store, in
// relaxed mode (no tables snapshot exists for the new program digest).
func TestIncrementalSummaryReuseAfterEdit(t *testing.T) {
	st := openStore(t)
	cfg := lowConfig()

	cold := buildToba(t)
	res1, stats1, err := Warm{Store: st}.Run(cold, "swift", cfg)
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	if !res1.Completed() {
		t.Fatalf("cold did not complete: %v", res1.Err)
	}
	if stats1.SummaryMisses == 0 {
		t.Fatal("cold run triggered no run_bu; the fixture no longer exercises summaries")
	}

	edited := buildToba(t, tweakUtil0)
	if cold.TS.FrozenDigest() != edited.TS.FrozenDigest() {
		t.Fatal("tweak edit changed the frozen digest; relaxed reuse is impossible")
	}
	res2, stats2, err := Warm{Store: st}.Run(edited, "swift", cfg)
	if err != nil {
		t.Fatalf("edited: %v", err)
	}
	if !res2.Completed() {
		t.Fatalf("edited run did not complete: %v", res2.Err)
	}
	if stats2.RestoredTables {
		t.Fatal("edited program restored the base program's tables snapshot")
	}
	if stats2.SummaryHits == 0 {
		t.Fatal("edited run reused no summaries; untouched closures must hit")
	}
	if !stats2.Relaxed {
		t.Fatal("summary reuse without tables restore not flagged as relaxed")
	}
}

// TestIncrementalRevertByteIdentical: after an edit is reverted (the
// base program is analyzed again), the warm run must restore the cold
// run's snapshot and reproduce its result tables byte for byte — under
// every deterministic engine, with the edited version's artifacts
// sitting in the same store.
func TestIncrementalRevertByteIdentical(t *testing.T) {
	for _, engine := range []string{"td", "bu", "swift"} {
		t.Run(engine, func(t *testing.T) {
			st := openStore(t)
			cfg := lowConfig()

			cold := buildToba(t)
			res1, stats1, err := Warm{Store: st}.Run(cold, engine, cfg)
			if err != nil {
				t.Fatalf("cold: %v", err)
			}
			if !stats1.PublishedTables {
				t.Fatal("cold run did not publish tables")
			}
			enc1 := EncodeResultTables(cold, res1)

			edited := buildToba(t, tweakUtil0)
			if _, _, err := (Warm{Store: st}).Run(edited, engine, cfg); err != nil {
				t.Fatalf("edited: %v", err)
			}

			revert := buildToba(t)
			res3, stats3, err := Warm{Store: st}.Run(revert, engine, cfg)
			if err != nil {
				t.Fatalf("revert: %v", err)
			}
			if !stats3.RestoredTables {
				t.Fatal("reverted program did not restore the base snapshot")
			}
			if stats3.SummaryMisses != 0 {
				t.Fatalf("reverted run had %d summary misses, want 0", stats3.SummaryMisses)
			}
			if !bytes.Equal(enc1, EncodeResultTables(revert, res3)) {
				t.Fatal("reverted result tables differ from the cold run's")
			}
		})
	}
}

// TestIncrementalRevertAsyncReplay covers the fourth engine: record the
// cold swift-async run, edit, then replay the recorded trace on the
// reverted program. Restored tables plus the replayed schedule reproduce
// the recording byte for byte.
func TestIncrementalRevertAsyncReplay(t *testing.T) {
	st := openStore(t)

	cold := buildToba(t)
	cfgRec := lowConfig()
	cfgRec.RecordTrace = &core.Trace{}
	res1, stats1, err := Warm{Store: st}.Run(cold, "swift-async", cfgRec)
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	if !stats1.PublishedTables {
		t.Fatal("recorded run did not publish tables")
	}
	enc1 := EncodeResultTables(cold, res1)

	edited := buildToba(t, tweakUtil0)
	if _, _, err := (Warm{Store: st}).Run(edited, "swift-async", lowConfig()); err != nil {
		t.Fatalf("edited: %v", err)
	}

	revert := buildToba(t)
	cfgRep := lowConfig()
	cfgRep.ReplayTrace = cfgRec.RecordTrace
	res3, stats3, err := Warm{Store: st}.Run(revert, "swift-async", cfgRep)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !stats3.RestoredTables {
		t.Fatal("reverted replay did not restore tables")
	}
	if stats3.SummaryMisses != 0 {
		t.Fatalf("reverted replay had %d summary misses, want 0", stats3.SummaryMisses)
	}
	if !bytes.Equal(enc1, EncodeResultTables(revert, res3)) {
		t.Fatal("reverted replay tables differ from the recording")
	}
}

// TestWarmRestoreFailedNoPublish is the satellite-1 regression: a
// truncated tables snapshot must fail the restore without poisoning the
// store — the run must not publish its (possibly polluted) tables, the
// corrupt blob must be deleted, and the next fresh run must re-publish a
// good snapshot that subsequent runs restore.
func TestWarmRestoreFailedNoPublish(t *testing.T) {
	st := openStore(t)
	cfg := lowConfig()

	cold := mustBuild(t, badProgram)
	if _, stats, err := (Warm{Store: st}).Run(cold, "swift", cfg); err != nil || !stats.PublishedTables {
		t.Fatalf("cold: err=%v stats=%+v", err, stats)
	}
	tablesKey := keyTemplate(cold, "swift", normalizeConfig("swift", cfg))
	tablesKey.Kind = "tables"
	tablesKey.Body = ProgramDigest(cold)
	blob, ok := st.Get(tablesKey)
	if !ok {
		t.Fatal("published tables not in store")
	}
	st.Put(tablesKey, blob[:len(blob)/2])

	poisoned := mustBuild(t, badProgram)
	res2, stats2, err := Warm{Store: st}.Run(poisoned, "swift", cfg)
	if err != nil {
		t.Fatalf("run against truncated snapshot: %v", err)
	}
	if !res2.Completed() {
		t.Fatalf("run against truncated snapshot did not complete: %v", res2.Err)
	}
	if stats2.RestoredTables {
		t.Fatal("truncated snapshot restored")
	}
	if !stats2.RestoreFailed {
		t.Fatal("failed restore not recorded")
	}
	if stats2.PublishedTables {
		t.Fatal("run published tables after a failed restore")
	}
	if _, ok := st.Get(tablesKey); ok {
		t.Fatal("corrupt snapshot still in store")
	}

	// The next fresh run finds no snapshot, re-publishes a good one, and
	// the run after that restores it and reproduces its tables.
	repub := mustBuild(t, badProgram)
	res3, stats3, err := Warm{Store: st}.Run(repub, "swift", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !stats3.PublishedTables || stats3.RestoreFailed {
		t.Fatalf("re-publish run stats = %+v", stats3)
	}
	enc3 := EncodeResultTables(repub, res3)

	warm := mustBuild(t, badProgram)
	res4, stats4, err := Warm{Store: st}.Run(warm, "swift", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !stats4.RestoredTables {
		t.Fatal("restore after re-publish failed")
	}
	if !bytes.Equal(enc3, EncodeResultTables(warm, res4)) {
		t.Fatal("restored run differs from the re-published one")
	}
}
