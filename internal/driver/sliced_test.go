package driver

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"testing"

	"swift/internal/core"
)

// allEngines is every engine the sliced execution layer must support.
var allEngines = []string{"td", "bu", "swift", "swift-async"}

// checkSlicedEquivalence asserts, for every engine, that the sliced run's
// merged error report equals the monolithic run's report, at two worker
// counts.
func checkSlicedEquivalence(t *testing.T, label, src string) {
	t.Helper()
	b, err := FromSource(src)
	if err != nil {
		t.Fatalf("%s: FromSource: %v", label, err)
	}
	for _, engine := range allEngines {
		cfg := core.DefaultConfig()
		cfg.K = 1 // trigger the bottom-up side early so slices exercise it
		mono, err := b.Run(engine, cfg)
		if err != nil {
			t.Fatalf("%s/%s: Run: %v", label, engine, err)
		}
		if !mono.Completed() {
			t.Fatalf("%s/%s: monolithic run did not complete: %v", label, engine, mono.Err)
		}
		want, err := b.ErrorReport(mono)
		if err != nil {
			t.Fatalf("%s/%s: ErrorReport: %v", label, engine, err)
		}
		for _, workers := range []int{1, 3} {
			cfg.SliceWorkers = workers
			sliced, err := b.RunSliced(engine, cfg)
			if err != nil {
				t.Fatalf("%s/%s/w=%d: RunSliced: %v", label, engine, workers, err)
			}
			if !sliced.Completed() {
				t.Fatalf("%s/%s/w=%d: sliced run did not complete: %v",
					label, engine, workers, sliced.Err())
			}
			got, err := b.SlicedErrorReport(sliced)
			if err != nil {
				t.Fatalf("%s/%s/w=%d: SlicedErrorReport: %v", label, engine, workers, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s/%s/w=%d: sliced report %v, monolithic %v",
					label, engine, workers, got, want)
			}
		}
	}
}

func TestSlicedEquivalenceFixtures(t *testing.T) {
	checkSlicedEquivalence(t, "good", goodProgram)
	checkSlicedEquivalence(t, "bad", badProgram)
}

func TestSlicedEquivalenceTestdata(t *testing.T) {
	src, err := os.ReadFile("../../testdata/mirror.mj")
	if err != nil {
		t.Fatal(err)
	}
	checkSlicedEquivalence(t, "mirror", string(src))
}

// randomSource generates a small random mini-Java program over the File
// protocol: several tracked and untracked allocation sites, helper methods
// with random (often protocol-violating) operation sequences, loops,
// branches and cross-method aliasing.
func randomSource(rng *rand.Rand) string {
	ops := []string{"open", "close", "read"}
	nSites := 1 + rng.Intn(4)
	nMethods := 1 + rng.Intn(3)

	var body func(depth int) string
	body = func(depth int) string {
		n := 1 + rng.Intn(3)
		out := ""
		for i := 0; i < n; i++ {
			switch k := rng.Intn(6); {
			case k == 0 && depth > 0:
				out += "while (*) { " + body(depth-1) + "} "
			case k == 1 && depth > 0:
				out += "if (*) { " + body(depth-1) + "} "
			case k == 2:
				out += "g = f; g." + ops[rng.Intn(len(ops))] + "(); "
			default:
				out += "f." + ops[rng.Intn(len(ops))] + "(); "
			}
		}
		return out
	}

	src := `
property File {
  states closed opened error
  error error
  open: closed -> opened
  close: opened -> closed
  read: opened -> opened
}
class Worker {
`
	for m := 0; m < nMethods; m++ {
		src += fmt.Sprintf("  method m%d(f) { %s}\n", m, body(2))
	}
	src += "}\nclass Main {\n  method main() {\n    w = new Worker @w\n"
	for s := 0; s < nSites; s++ {
		src += fmt.Sprintf("    f%d = new File @h%d\n", s, s)
	}
	// An untracked allocation mixed in, so slicing also sees spawnless New.
	src += "    u = new Worker @u0\n"
	for c := 0; c < 2+rng.Intn(4); c++ {
		src += fmt.Sprintf("    w.m%d(f%d)\n", rng.Intn(nMethods), rng.Intn(nSites))
	}
	src += "  }\n}\n"
	return src
}

func TestSlicedEquivalenceRandomPrograms(t *testing.T) {
	trials := 8
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		src := randomSource(rng)
		checkSlicedEquivalence(t, fmt.Sprintf("rand%d", trial), src)
	}
}

// sliceFingerprint renders everything deterministic about a sliced run.
func sliceFingerprint(res *SlicedResult) string {
	out := res.Engine + "\n"
	for i := range res.Slices {
		sl := &res.Slices[i]
		r := sl.Result
		out += fmt.Sprintf("slice %s: work=%d tdsum=%d busum=%d steps=%d rels=%d triggered=%v err=%v\n",
			sl.ID, r.WorkUnits(), r.TDSummaryTotal(), r.BUSummaryTotal(),
			r.BUStats.Steps, r.BUStats.Relations, r.Triggered, r.Err)
	}
	out += fmt.Sprintf("total work=%d max=%d tdsum=%d busum=%d triggered=%v\n",
		res.WorkUnits(), res.MaxSliceWork(), res.TDSummaryTotal(),
		res.BUSummaryTotal(), res.Triggered())
	return out
}

// TestSlicedWorkerCountDeterminism pins the tentpole's determinism claim
// at the engine level: for the deterministic engines, the entire sliced
// outcome — per-slice counters, summaries, triggers, merged totals — is
// byte-identical across worker counts.
func TestSlicedWorkerCountDeterminism(t *testing.T) {
	src, err := os.ReadFile("../../testdata/mirror.mj")
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []string{"td", "bu", "swift"} {
		b, err := FromSource(string(src))
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultConfig()
		cfg.K = 1
		cfg.SliceWorkers = 1
		serial, err := b.RunSliced(engine, cfg)
		if err != nil {
			t.Fatalf("%s: RunSliced(1): %v", engine, err)
		}
		want := sliceFingerprint(serial)
		wantReport, err := b.SlicedErrorReport(serial)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 8} {
			cfg.SliceWorkers = workers
			res, err := b.RunSliced(engine, cfg)
			if err != nil {
				t.Fatalf("%s: RunSliced(%d): %v", engine, workers, err)
			}
			if got := sliceFingerprint(res); got != want {
				t.Errorf("%s: fingerprint differs between 1 and %d workers:\n--- 1:\n%s--- %d:\n%s",
					engine, workers, want, workers, got)
			}
			report, err := b.SlicedErrorReport(res)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(report, wantReport) {
				t.Errorf("%s: report at %d workers = %v, want %v", engine, workers, report, wantReport)
			}
		}
	}
	// swift-async counters are timing-dependent, but the merged report is
	// still pinned across worker counts (its states are deterministic).
	b, err := FromSource(string(src))
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.K = 1
	var reports [][]string
	for _, workers := range []int{1, 8} {
		cfg.SliceWorkers = workers
		res, err := b.RunSliced("swift-async", cfg)
		if err != nil {
			t.Fatalf("swift-async: RunSliced(%d): %v", workers, err)
		}
		report, err := b.SlicedErrorReport(res)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, report)
	}
	if !reflect.DeepEqual(reports[0], reports[1]) {
		t.Errorf("swift-async: report at 1 worker %v, at 8 workers %v", reports[0], reports[1])
	}
}

// TestErrorReportRequiresInstantiatedStates is the regression test for the
// old behaviour where a result without instantiated top-down states (here:
// a bu run whose bottom-up phase blew its step budget) silently produced
// an empty — i.e. "no misuse found" — report.
func TestErrorReportRequiresInstantiatedStates(t *testing.T) {
	b, err := FromSource(badProgram)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.MaxBUSteps = 1
	res, err := b.Run("bu", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed() || res.TD != nil {
		t.Fatalf("expected an aborted bu run without instantiated states, got err=%v TD=%v", res.Err, res.TD)
	}
	report, rerr := b.ErrorReport(res)
	if rerr == nil {
		t.Fatalf("ErrorReport on a stateless result returned %v, want an error", report)
	}
	if !errors.Is(rerr, core.ErrBudget) {
		t.Errorf("ErrorReport error should carry the run error, got: %v", rerr)
	}
	// A completed bu run, by contrast, reports through its instantiation
	// pass like every other engine.
	res, err = b.Run("bu", core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	report, rerr = b.ErrorReport(res)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if !reflect.DeepEqual(report, []string{"h1", "h2"}) {
		t.Errorf("completed bu report = %v, want [h1 h2]", report)
	}
}

// TestSlicedRejectsUnknownEngineAndSlice covers the dispatch-level error
// paths of the sliced runner.
func TestSlicedRejectsUnknownEngineAndSlice(t *testing.T) {
	b, err := FromSource(goodProgram)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.RunSliced("nope", core.DefaultConfig()); err == nil {
		t.Error("RunSliced with an unknown engine should fail")
	}
	if _, _, err := b.TS.SliceClient("no-such-site"); err == nil {
		t.Error("SliceClient of an unknown site should fail")
	}
	if _, _, err := b.TS.SliceClient("w1"); err == nil {
		t.Error("SliceClient of an untracked site should fail")
	}
}
