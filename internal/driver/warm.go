package driver

// This file wires the persistent artifact store (internal/store) into the
// pipeline: Warm.Run is Build.Run with a summary cache and intern-table
// snapshots around it.
//
// Two artifact kinds cooperate:
//
//   - "tables": the full mutable intern-table snapshot of a completed run
//     (typestate.EncodeTables), keyed by the whole program's digest. A
//     warm run restores it into its fresh pipeline before solving, which
//     pins every interned ID to the cold run's value — the precondition
//     for byte-identical result tables (EncodeResultTables) under the
//     deterministic engines.
//
//   - "summary": one trigger outcome (typestate.EncodeSummaries), keyed
//     by the trigger's call-graph-closure digest. The closure covers
//     every procedure whose body can influence the outcome — including
//     already-summarized callees outside the run_bu frontier, whose
//     stored summaries the solver consults — so a hit is sound whenever
//     the key matches. Lookup additionally requires the stored frontier
//     to equal the live one; otherwise the outcome belongs to a different
//     summarization state and is treated as a miss.
//
// Summary hits without a restored tables snapshot ("relaxed" reuse,
// e.g. after editing an unrelated procedure changed the program digest
// but not a trigger's closure) are still sound and yield the same error
// report, but decoded components intern to different IDs, so the result
// tables need not be byte-identical to a cold run's. WarmStats records
// which mode a run got.
//
// Fault-injection runs (cfg.Fault != nil) bypass the store entirely: the
// fault plan's operation indices count client calls, and warm-skipped
// work would shift every subsequent fault site.

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"slices"
	"sync"
	"sync/atomic"

	"swift/internal/core"
	"swift/internal/ir"
	"swift/internal/store"
	"swift/internal/typestate"
)

// Warm runs engines against a persistent artifact store.
type Warm struct {
	Store *store.Store
}

// WarmStats describes what one Warm.Run got from (and gave to) the store.
type WarmStats struct {
	// RestoredTables reports that the cold run's intern tables were
	// restored before solving — the byte-identity precondition.
	RestoredTables bool
	// PublishedTables reports that this run's tables were snapshotted into
	// the store for future warm starts.
	PublishedTables bool
	// RestoreFailed reports that a stored tables snapshot was found but
	// failed to restore (corrupt or mismatched blob). The pipeline may hold
	// partially replayed interners after a replay-phase failure, so such a
	// run never publishes its tables; the corrupt snapshot is deleted so a
	// later fresh run can re-publish a good one.
	RestoreFailed bool
	// Relaxed reports summary-level reuse without a restored tables
	// snapshot: sound, same error report, but decoded components intern to
	// fresh IDs, so result tables need not be byte-identical to the cold
	// run that published the summaries.
	Relaxed bool
	// SummaryHits and SummaryMisses count run_bu invocations answered from
	// the store versus computed (and, when deterministic, published).
	SummaryHits   int64
	SummaryMisses int64
}

// normalizeConfig mirrors core.RunEngine's per-engine overrides so store
// keys are computed from the thresholds the engine actually runs with
// (td always analyzes with K=∞, bu with θ=∞ — without this, td runs
// requested with different K would occupy distinct keys for identical
// artifacts).
func normalizeConfig(engine string, cfg core.Config) core.Config {
	switch engine {
	case "td":
		cfg.K = core.Unlimited
	case "bu":
		cfg.Theta = core.Unlimited
	}
	return cfg
}

// keyTemplate fills the key fields shared by every artifact of one run.
func keyTemplate(b *Build, engine string, cfg core.Config) store.Key {
	return store.Key{
		Frozen:         b.TS.FrozenDigest(),
		Engine:         engine,
		K:              cfg.K,
		Theta:          cfg.Theta,
		RawCFG:         cfg.RawCFG,
		NoTransferMemo: cfg.NoTransferMemo,
		NoSparse:       cfg.NoSparse,
		NoStructIndex:  cfg.NoStructIndex,
	}
}

// ProgramDigest returns the hex digest of the whole lowered program.
func ProgramDigest(b *Build) string {
	sum := sha256.Sum256([]byte(ir.Print(b.Lowered.Prog)))
	return hex.EncodeToString(sum[:])
}

// closureDigest hashes the bodies of every procedure reachable from root
// by call chains (root included), in sorted order. Procedures named but
// absent from the program hash as their name alone, matching how the
// solvers treat them (no-op bodies).
func closureDigest(prog *ir.Program, root string) string {
	h := sha256.New()
	for _, name := range prog.Reachable(root) {
		h.Write([]byte(name))
		h.Write([]byte{0})
		if p, ok := prog.Procs[name]; ok {
			h.Write([]byte(ir.Print(&ir.Program{Procs: map[string]*ir.Proc{name: p}})))
		}
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ResultKey is the store key under which a whole analysis response for
// this (program, engine, config) may be cached — swiftd's outermost
// cache layer. The body digest covers the entire lowered program, so any
// source change invalidates it.
func ResultKey(b *Build, engine string, cfg core.Config) store.Key {
	k := keyTemplate(b, engine, normalizeConfig(engine, cfg))
	k.Kind = "result"
	k.Body = ProgramDigest(b)
	return k
}

// summarySource adapts the store to core.SummarySource for one run. Safe
// for concurrent use (async workers look up and publish from worker
// goroutines).
type summarySource struct {
	b     *Build
	store *store.Store
	tmpl  store.Key

	mu      sync.Mutex
	digests map[string]string // trigger → closure digest

	hits   atomic.Int64
	misses atomic.Int64
}

func (s *summarySource) key(trigger string) store.Key {
	s.mu.Lock()
	d, ok := s.digests[trigger]
	if !ok {
		d = closureDigest(s.b.Lowered.Prog, trigger)
		s.digests[trigger] = d
	}
	s.mu.Unlock()
	k := s.tmpl
	k.Kind = "summary"
	k.Proc = trigger
	k.Body = d
	return k
}

// Lookup implements core.SummarySource. Corrupt blobs, digest mismatches
// and frontier mismatches all degrade to misses.
func (s *summarySource) Lookup(trigger string, frontier []string) (core.TriggerOutcome[typestate.RelID, typestate.FormulaID], bool) {
	var zero core.TriggerOutcome[typestate.RelID, typestate.FormulaID]
	blob, ok := s.store.Get(s.key(trigger))
	if !ok {
		s.misses.Add(1)
		return zero, false
	}
	storedFrontier, eta, failed, err := s.b.TS.DecodeSummaries(blob)
	if err != nil || !slices.Equal(storedFrontier, frontier) {
		s.misses.Add(1)
		return zero, false
	}
	s.hits.Add(1)
	return core.TriggerOutcome[typestate.RelID, typestate.FormulaID]{Eta: eta, Failed: failed}, true
}

// Publish implements core.SummarySource.
func (s *summarySource) Publish(trigger string, frontier []string, out core.TriggerOutcome[typestate.RelID, typestate.FormulaID]) {
	s.store.Put(s.key(trigger), s.b.TS.EncodeSummaries(frontier, out.Eta, out.Failed))
}

// deterministicOutcome reports whether a run outcome is reproducible on
// an identical rebuild: a completed run, or a budget abort that did not
// involve the wall clock or a caller cancellation. ErrCanceled never
// wraps ErrBudget today, but the exclusion is spelled out anyway: a
// canceled run's tables are partial and must never be snapshotted.
func deterministicOutcome(err error) bool {
	if err == nil {
		return true
	}
	return errors.Is(err, core.ErrBudget) &&
		!errors.Is(err, core.ErrDeadline) &&
		!errors.Is(err, core.ErrCanceled)
}

// Run executes the engine like Build.Run, warm-starting from the store
// and feeding it afterwards. b must be a freshly built pipeline for
// tables restore (and publication) to engage; a non-fresh pipeline still
// gets summary-level reuse.
func (w Warm) Run(b *Build, engine string, cfg core.Config) (*Result, *WarmStats, error) {
	stats := &WarmStats{}
	if w.Store == nil || cfg.Fault != nil {
		// No store, or fault injection armed (see file comment): run cold
		// and unobserved.
		res, err := b.Run(engine, cfg)
		return res, stats, err
	}
	ncfg := normalizeConfig(engine, cfg)
	tmpl := keyTemplate(b, engine, ncfg)

	tablesKey := tmpl
	tablesKey.Kind = "tables"
	tablesKey.Body = ProgramDigest(b)

	wasFresh := b.TS.Fresh()
	if wasFresh {
		if blob, ok := w.Store.Get(tablesKey); ok {
			if err := b.TS.RestoreTables(blob); err == nil {
				stats.RestoredTables = true
			} else {
				stats.RestoreFailed = true
				w.Store.Delete(tablesKey)
			}
		}
	}

	src := &summarySource{b: b, store: w.Store, tmpl: tmpl, digests: map[string]string{}}
	b.Core.Warm = src
	defer func() { b.Core.Warm = nil }()

	res, err := b.Run(engine, cfg)
	stats.SummaryHits = src.hits.Load()
	stats.SummaryMisses = src.misses.Load()
	stats.Relaxed = stats.SummaryHits > 0 && !stats.RestoredTables
	if err != nil {
		return res, stats, err
	}

	// Snapshot the finished run's tables for the next cold start. Gated on
	// a fresh start (a polluted pipeline's tables would not reproduce a
	// cold run — and a failed restore may have polluted it), and a
	// deterministic outcome; re-publishing after a restore is skipped —
	// the stored snapshot already equals these tables.
	if wasFresh && !stats.RestoredTables && !stats.RestoreFailed && deterministicOutcome(res.Err) {
		w.Store.Put(tablesKey, b.TS.EncodeTables())
		stats.PublishedTables = true
	}
	return res, stats, nil
}
