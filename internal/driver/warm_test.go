package driver

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"swift/internal/core"
	"swift/internal/store"
)

func openStore(t *testing.T) *store.Store {
	t.Helper()
	s, err := store.Open(t.TempDir(), 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustBuild(t *testing.T, src string) *Build {
	t.Helper()
	b, err := FromSource(src)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func lowConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.K = 1
	cfg.Theta = 1
	return cfg
}

// TestWarmRunByteIdentical is the issue's acceptance criterion for the
// deterministic engines: a warm run against the store a cold run
// populated must produce byte-identical result tables, with zero summary
// misses.
func TestWarmRunByteIdentical(t *testing.T) {
	for _, engine := range []string{"td", "bu", "swift"} {
		t.Run(engine, func(t *testing.T) {
			st := openStore(t)
			cfg := lowConfig()

			cold := mustBuild(t, badProgram)
			res1, stats1, err := Warm{Store: st}.Run(cold, engine, cfg)
			if err != nil {
				t.Fatalf("cold: %v", err)
			}
			if !res1.Completed() {
				t.Fatalf("cold did not complete: %v", res1.Err)
			}
			if stats1.RestoredTables {
				t.Fatal("cold run restored tables from an empty store")
			}
			if !stats1.PublishedTables {
				t.Fatal("cold run did not publish its tables")
			}
			if stats1.SummaryHits != 0 {
				t.Fatalf("cold run had %d summary hits", stats1.SummaryHits)
			}
			enc1 := EncodeResultTables(cold, res1)
			report1, err := cold.ErrorReport(res1)
			if err != nil {
				t.Fatal(err)
			}

			warm := mustBuild(t, badProgram)
			res2, stats2, err := Warm{Store: st}.Run(warm, engine, cfg)
			if err != nil {
				t.Fatalf("warm: %v", err)
			}
			if !stats2.RestoredTables {
				t.Fatal("warm run did not restore tables")
			}
			if stats2.SummaryMisses != 0 {
				t.Fatalf("warm run had %d summary misses, want 0", stats2.SummaryMisses)
			}
			if engine != "td" && stats2.SummaryHits == 0 {
				t.Fatalf("%s warm run had no summary hits; the store did nothing", engine)
			}
			if stats2.PublishedTables {
				t.Fatal("warm run re-published tables it restored")
			}
			enc2 := EncodeResultTables(warm, res2)
			if !bytes.Equal(enc1, enc2) {
				t.Fatalf("result tables differ: cold %d bytes, warm %d bytes", len(enc1), len(enc2))
			}
			report2, err := warm.ErrorReport(res2)
			if err != nil {
				t.Fatal(err)
			}
			if strings.Join(report1, ",") != strings.Join(report2, ",") {
				t.Fatalf("reports differ: %v vs %v", report1, report2)
			}
		})
	}
}

// TestWarmAsyncReplayByteIdentical covers the fourth engine: record a
// cold swift-async run (publishing its summaries), then replay the same
// trace warm. The replayed schedule plus warm summary hits must
// reproduce the recorded run's tables byte for byte.
func TestWarmAsyncReplayByteIdentical(t *testing.T) {
	st := openStore(t)

	cold := mustBuild(t, badProgram)
	cfgRec := lowConfig()
	cfgRec.RecordTrace = &core.Trace{}
	res1, stats1, err := Warm{Store: st}.Run(cold, "swift-async", cfgRec)
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	if !res1.Completed() {
		t.Fatalf("record did not complete: %v", res1.Err)
	}
	if !stats1.PublishedTables {
		t.Fatal("recorded run did not publish tables")
	}
	enc1 := EncodeResultTables(cold, res1)

	warm := mustBuild(t, badProgram)
	cfgRep := lowConfig()
	cfgRep.ReplayTrace = cfgRec.RecordTrace
	res2, stats2, err := Warm{Store: st}.Run(warm, "swift-async", cfgRep)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !stats2.RestoredTables {
		t.Fatal("replay did not restore tables")
	}
	if stats2.SummaryMisses != 0 {
		t.Fatalf("replay had %d summary misses, want 0", stats2.SummaryMisses)
	}
	if stats2.SummaryHits == 0 {
		t.Fatal("replay had no summary hits")
	}
	enc2 := EncodeResultTables(warm, res2)
	if !bytes.Equal(enc1, enc2) {
		t.Fatal("recorded and warm-replayed result tables differ")
	}
}

// TestWarmTDKeyNormalization: td ignores K, so td runs requested with
// different K values must share store entries.
func TestWarmTDKeyNormalization(t *testing.T) {
	st := openStore(t)
	cfg := core.DefaultConfig()
	cfg.K = 3
	if _, stats, err := (Warm{Store: st}).Run(mustBuild(t, goodProgram), "td", cfg); err != nil || !stats.PublishedTables {
		t.Fatalf("cold td: err=%v stats=%+v", err, stats)
	}
	cfg.K = 9
	_, stats, err := Warm{Store: st}.Run(mustBuild(t, goodProgram), "td", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.RestoredTables {
		t.Fatal("td with a different K missed the tables; K should be normalized out")
	}
}

// TestWarmInvalidation: a formatting-only source change (same lowered
// program) still hits; a semantic change misses the tables snapshot and
// recomputes — and still reports correctly.
func TestWarmInvalidation(t *testing.T) {
	st := openStore(t)
	cfg := lowConfig()

	if _, stats, err := (Warm{Store: st}).Run(mustBuild(t, badProgram), "swift", cfg); err != nil || !stats.PublishedTables {
		t.Fatalf("cold: err=%v stats=%+v", err, stats)
	}

	// Whitespace and comment-free reformatting lowers identically.
	reformatted := strings.ReplaceAll(badProgram, "\n", "\n ")
	_, stats, err := Warm{Store: st}.Run(mustBuild(t, reformatted), "swift", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.RestoredTables {
		t.Fatal("reformatted source missed; keys must depend on the lowered program, not the text")
	}

	// A semantic change (an extra misuse call) must miss the snapshot.
	changed := strings.Replace(badProgram, "w.doubleOpen(a)", "w.doubleOpen(a)\n    w.doubleOpen(a)", 1)
	b := mustBuild(t, changed)
	res, stats, err := Warm{Store: st}.Run(b, "swift", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RestoredTables {
		t.Fatal("changed program restored the old tables snapshot")
	}
	report, err := b.ErrorReport(res)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(report, ",") != "h1,h2" {
		t.Fatalf("report after change = %v, want [h1 h2]", report)
	}
}

// TestWarmBudgetAbortReproduced: a deterministic budget abort is a
// cacheable outcome — the warm rerun aborts identically, byte for byte.
func TestWarmBudgetAbortReproduced(t *testing.T) {
	st := openStore(t)
	cfg := lowConfig()
	cfg.MaxRelations = 1

	cold := mustBuild(t, badProgram)
	res1, stats1, err := Warm{Store: st}.Run(cold, "bu", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Completed() || !errors.Is(res1.Err, core.ErrBudget) {
		t.Fatalf("bu with MaxRelations=1 should abort on budget, got %v", res1.Err)
	}
	if !stats1.PublishedTables {
		t.Fatal("deterministic abort did not publish tables")
	}
	enc1 := EncodeResultTables(cold, res1)

	warm := mustBuild(t, badProgram)
	res2, stats2, err := Warm{Store: st}.Run(warm, "bu", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !stats2.RestoredTables {
		t.Fatal("warm abort rerun did not restore tables")
	}
	if !bytes.Equal(enc1, EncodeResultTables(warm, res2)) {
		t.Fatal("aborted runs differ between cold and warm")
	}
}

// TestWarmWithoutStoreRunsCold: Warm with a nil store degrades to
// Build.Run exactly.
func TestWarmWithoutStoreRunsCold(t *testing.T) {
	b := mustBuild(t, badProgram)
	res, stats, err := Warm{}.Run(b, "swift", lowConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed() {
		t.Fatal(res.Err)
	}
	if *stats != (WarmStats{}) {
		t.Fatalf("nil-store stats = %+v, want zero", *stats)
	}
}

// TestSlicedErrorReportNamesAbortCause pins the bugfix: a slice aborted
// by budget exhaustion must be reported as an abort of that slice's
// engine — with the cause wrapped — not as the misleading "has no
// instantiated states to report on".
func TestSlicedErrorReportNamesAbortCause(t *testing.T) {
	b := mustBuild(t, badProgram)
	cfg := lowConfig()
	cfg.MaxRelations = 1
	res, err := b.RunSliced("bu", cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, rerr := b.SlicedErrorReport(res)
	if rerr == nil {
		t.Fatal("aborted sliced run produced a report")
	}
	msg := rerr.Error()
	if !strings.Contains(msg, "bu slice") || !strings.Contains(msg, "aborted") {
		t.Errorf("report error %q should name the engine and the abort", msg)
	}
	if strings.Contains(msg, "no instantiated states") {
		t.Errorf("report error %q still uses the misleading empty-state wording", msg)
	}
	if !errors.Is(rerr, core.ErrBudget) {
		t.Errorf("report error should wrap the budget cause, got %v", rerr)
	}
}
