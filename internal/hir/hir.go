// Package hir defines the high-level intermediate representation of
// mini-Java programs: classes with single inheritance, instance methods,
// reference-typed fields and locals, virtual dispatch, and type-state
// properties governing tracked built-in types (File, Iterator, …).
//
// The HIR plays the role of Chord's program representation in the paper's
// toolchain: package source parses mini-Java into HIR, package pointer runs
// a 0-CFA points-to/call-graph analysis over it, and package lower
// translates it into the command IR that the analyses consume. Benchmark
// generators construct HIR programmatically.
package hir

import (
	"fmt"
	"sort"

	"swift/internal/typestate"
)

// Program is a mini-Java program: a set of classes, the type-state
// properties of its tracked built-in types, and a designated entry method.
type Program struct {
	// Classes in declaration order.
	Classes []*Class
	// Properties maps tracked type names (e.g. "File") to their type-state
	// property.
	Properties map[string]*typestate.Property
	// EntryClass and EntryMethod name the root method (conventionally
	// Main.main). The entry method is static: it has no receiver.
	EntryClass  string
	EntryMethod string

	classByName map[string]*Class
}

// NewProgram returns an empty program with the conventional Main.main
// entry.
func NewProgram() *Program {
	return &Program{
		Properties:  map[string]*typestate.Property{},
		EntryClass:  "Main",
		EntryMethod: "main",
		classByName: map[string]*Class{},
	}
}

// AddClass appends a class. Duplicate names are reported by Validate.
func (p *Program) AddClass(c *Class) {
	p.Classes = append(p.Classes, c)
	if p.classByName == nil {
		p.classByName = map[string]*Class{}
	}
	if _, dup := p.classByName[c.Name]; !dup {
		p.classByName[c.Name] = c
	}
}

// Class returns the class with the given name, or nil.
func (p *Program) Class(name string) *Class { return p.classByName[name] }

// AddProperty registers a tracked built-in type.
func (p *Program) AddProperty(prop *typestate.Property) { p.Properties[prop.Name] = prop }

// Entry returns the entry method, or nil if missing.
func (p *Program) Entry() *Method {
	c := p.Class(p.EntryClass)
	if c == nil {
		return nil
	}
	return c.Method(p.EntryMethod)
}

// Lookup resolves a method name on a class, walking the superclass chain
// (Java virtual dispatch). It returns nil if no class in the chain defines
// the method.
func (p *Program) Lookup(class, method string) *Method {
	for c := p.Class(class); c != nil; c = p.Class(c.Super) {
		if m := c.Method(method); m != nil {
			return m
		}
		if c.Super == "" {
			return nil
		}
	}
	return nil
}

// Class is a program class with single inheritance.
type Class struct {
	Name   string
	Super  string // "" for none
	Fields []string
	// Methods in declaration order.
	Methods []*Method

	methodByName map[string]*Method
}

// NewClass returns an empty class.
func NewClass(name, super string) *Class {
	return &Class{Name: name, Super: super, methodByName: map[string]*Method{}}
}

// AddMethod appends a method and binds its Class back-pointer.
func (c *Class) AddMethod(m *Method) {
	m.Class = c
	c.Methods = append(c.Methods, m)
	if c.methodByName == nil {
		c.methodByName = map[string]*Method{}
	}
	if _, dup := c.methodByName[m.Name]; !dup {
		c.methodByName[m.Name] = m
	}
}

// Method returns the directly declared method with the given name, or nil.
func (c *Class) Method(name string) *Method { return c.methodByName[name] }

// RenameMethod renames a directly declared method, keeping the lookup
// index consistent. It reports whether the rename happened: the old name
// must exist and the new name must be free. Call sites are not rewritten;
// callers that dispatch on the old name must be rewired separately.
func (c *Class) RenameMethod(old, new string) bool {
	m := c.methodByName[old]
	if m == nil || old == new || c.methodByName[new] != nil {
		return false
	}
	m.Name = new
	delete(c.methodByName, old)
	c.methodByName[new] = m
	return true
}

// Method is an instance method. The entry method is the only static one.
type Method struct {
	Name   string
	Class  *Class
	Params []string
	Body   *Block
}

// QName returns the globally unique procedure name "Class.method".
func (m *Method) QName() string { return m.Class.Name + "." + m.Name }

// QVar returns the globally unique lowered name of a variable in this
// method's frame: "Class.method$v". The lowering and the pointer analysis
// share this namespace.
func (m *Method) QVar(v string) string { return m.QName() + "$" + v }

// ThisVar is the name of the implicit receiver parameter.
const ThisVar = "this"

// RetVar is the name of the implicit return-value variable.
const RetVar = "$ret"

// Locals returns the sorted variables assigned in the body that are neither
// parameters nor the receiver.
func (m *Method) Locals() []string {
	set := map[string]bool{}
	collectAssigned(m.Body, set)
	delete(set, ThisVar)
	for _, p := range m.Params {
		delete(set, p)
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func collectAssigned(s Stmt, set map[string]bool) {
	switch s := s.(type) {
	case *Block:
		for _, st := range s.Stmts {
			collectAssigned(st, set)
		}
	case *If:
		collectAssigned(s.Then, set)
		if s.Else != nil {
			collectAssigned(s.Else, set)
		}
	case *While:
		collectAssigned(s.Body, set)
	case *Assign:
		set[s.Dst] = true
	case *LoadStmt:
		set[s.Dst] = true
	case *NewStmt:
		set[s.Dst] = true
	case *CallStmt:
		if s.Dst != "" {
			set[s.Dst] = true
		}
	}
}

// Stmt is a statement. Conditions of if/while are abstracted away
// (non-deterministic), matching the command language the analyses consume.
type Stmt interface{ isStmt() }

// Block is a statement sequence.
type Block struct{ Stmts []Stmt }

// If is a two-way branch with abstracted condition. Else may be nil.
type If struct {
	Then Stmt
	Else Stmt
}

// While is a loop with abstracted condition.
type While struct{ Body Stmt }

// Skip is the empty statement.
type Skip struct{}

// Assign is "dst = src" between locals.
type Assign struct{ Dst, Src string }

// LoadStmt is "dst = base.field".
type LoadStmt struct{ Dst, Base, Field string }

// StoreStmt is "base.field = src".
type StoreStmt struct{ Base, Field, Src string }

// NewStmt is "dst = new Type" with an allocation-site label. Type is either
// a class name or a tracked property type name. Empty Site labels are
// assigned by Finalize.
type NewStmt struct{ Dst, Type, Site string }

// CallStmt is a method call: "dst = recv.method(args)". Recv == "" means a
// call through the implicit receiver ("this.method(args)"); Dst == "" means
// the result is unused. If method belongs to a tracked property it is a
// type-state transition, otherwise a virtual call.
type CallStmt struct {
	Dst    string
	Recv   string
	Method string
	Args   []string
}

// Return is "return src"; Validate only accepts it as the final statement
// of a method body.
type Return struct{ Src string }

func (*Block) isStmt()     {}
func (*If) isStmt()        {}
func (*While) isStmt()     {}
func (*Skip) isStmt()      {}
func (*Assign) isStmt()    {}
func (*LoadStmt) isStmt()  {}
func (*StoreStmt) isStmt() {}
func (*NewStmt) isStmt()   {}
func (*CallStmt) isStmt()  {}
func (*Return) isStmt()    {}

// Finalize assigns fresh labels to unlabeled allocation sites
// ("Type_k" in program order) and must be called before Validate when the
// program was built programmatically.
func (p *Program) Finalize() {
	counter := map[string]int{}
	used := map[string]bool{}
	var walk func(s Stmt)
	walk = func(s Stmt) {
		switch s := s.(type) {
		case *Block:
			for _, st := range s.Stmts {
				walk(st)
			}
		case *If:
			walk(s.Then)
			if s.Else != nil {
				walk(s.Else)
			}
		case *While:
			walk(s.Body)
		case *NewStmt:
			if s.Site != "" {
				used[s.Site] = true
			}
		}
	}
	for _, c := range p.Classes {
		for _, m := range c.Methods {
			walk(m.Body)
		}
	}
	var label func(s Stmt)
	label = func(s Stmt) {
		switch s := s.(type) {
		case *Block:
			for _, st := range s.Stmts {
				label(st)
			}
		case *If:
			label(s.Then)
			if s.Else != nil {
				label(s.Else)
			}
		case *While:
			label(s.Body)
		case *NewStmt:
			if s.Site == "" {
				for {
					counter[s.Type]++
					cand := fmt.Sprintf("%s_%d", s.Type, counter[s.Type])
					if !used[cand] {
						s.Site = cand
						used[cand] = true
						break
					}
				}
			}
		}
	}
	for _, c := range p.Classes {
		for _, m := range c.Methods {
			label(m.Body)
		}
	}
}
