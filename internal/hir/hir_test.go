package hir

import (
	"strings"
	"testing"

	"swift/internal/typestate"
)

func buildProgram() *Program {
	p := NewProgram()
	p.AddProperty(typestate.FileProperty())
	base := NewClass("Base", "")
	base.AddMethod(&Method{Name: "hook", Body: &Block{Stmts: []Stmt{&Skip{}}}})
	p.AddClass(base)
	sub := NewClass("Sub", "Base")
	sub.AddMethod(&Method{Name: "hook", Body: &Block{Stmts: []Stmt{&Skip{}}}})
	p.AddClass(sub)
	leaf := NewClass("Leaf", "Sub")
	p.AddClass(leaf)
	main := NewClass("Main", "")
	main.AddMethod(&Method{Name: "main", Body: &Block{Stmts: []Stmt{
		&NewStmt{Dst: "f", Type: "File"},
		&NewStmt{Dst: "l", Type: "Leaf"},
		&CallStmt{Recv: "l", Method: "hook"},
	}}})
	p.AddClass(main)
	p.Finalize()
	return p
}

func TestLookupWalksSuperChain(t *testing.T) {
	p := buildProgram()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	m := p.Lookup("Leaf", "hook")
	if m == nil || m.Class.Name != "Sub" {
		t.Fatalf("Lookup(Leaf, hook) resolved to %v, want Sub.hook", m)
	}
	if p.Lookup("Base", "nothing") != nil {
		t.Error("Lookup of undefined method should be nil")
	}
	if p.Lookup("Ghost", "hook") != nil {
		t.Error("Lookup on unknown class should be nil")
	}
}

func TestFinalizeAssignsUniqueSites(t *testing.T) {
	p := buildProgram()
	sites := map[string]bool{}
	for _, c := range p.Classes {
		for _, m := range c.Methods {
			var walk func(s Stmt)
			walk = func(s Stmt) {
				switch s := s.(type) {
				case *Block:
					for _, st := range s.Stmts {
						walk(st)
					}
				case *NewStmt:
					if s.Site == "" {
						t.Errorf("unlabeled site after Finalize: %v", s)
					}
					if sites[s.Site] {
						t.Errorf("duplicate site %q", s.Site)
					}
					sites[s.Site] = true
				}
			}
			walk(m.Body)
		}
	}
	if len(sites) != 2 {
		t.Errorf("found %d sites, want 2", len(sites))
	}
}

func TestQNames(t *testing.T) {
	p := buildProgram()
	m := p.Lookup("Sub", "hook")
	if got := m.QName(); got != "Sub.hook" {
		t.Errorf("QName = %q", got)
	}
	if got := m.QVar("x"); got != "Sub.hook$x" {
		t.Errorf("QVar = %q", got)
	}
}

func TestLocals(t *testing.T) {
	m := &Method{Name: "m", Params: []string{"p"}, Body: &Block{Stmts: []Stmt{
		&Assign{Dst: "a", Src: "p"},
		&If{Then: &Block{Stmts: []Stmt{&LoadStmt{Dst: "b", Base: "a", Field: "f"}}}},
		&While{Body: &Block{Stmts: []Stmt{&CallStmt{Dst: "c", Recv: "a", Method: "m"}}}},
		&Assign{Dst: "p", Src: "a"}, // parameter, not a local
		&Assign{Dst: ThisVar, Src: "a"},
	}}}
	got := m.Locals()
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("Locals = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Locals = %v, want %v", got, want)
		}
	}
}

func TestValidateEntryRules(t *testing.T) {
	p := NewProgram()
	main := NewClass("Main", "")
	main.AddMethod(&Method{Name: "main", Params: []string{"oops"}, Body: &Block{}})
	p.AddClass(main)
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "no parameters") {
		t.Errorf("parametered entry accepted: %v", err)
	}
}

func TestLineCount(t *testing.T) {
	p := buildProgram()
	if n := LineCount(p); n < 10 {
		t.Errorf("LineCount = %d, suspiciously small", n)
	}
}
