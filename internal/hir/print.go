package hir

import (
	"fmt"
	"sort"
	"strings"
)

// Print renders the program in the mini-Java surface syntax accepted by
// package source. Round-tripping through Print and the parser yields an
// equivalent program; the benchmark suite also uses Print for its
// line-of-code accounting.
func Print(p *Program) string {
	var b strings.Builder
	names := make([]string, 0, len(p.Properties))
	for n := range p.Properties {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		prop := p.Properties[n]
		fmt.Fprintf(&b, "property %s {\n", prop.Name)
		fmt.Fprintf(&b, "  states %s\n", strings.Join(prop.States, " "))
		fmt.Fprintf(&b, "  error %s\n", prop.States[prop.Error])
		for _, m := range prop.MethodNames() {
			tab := prop.Methods[m]
			for from, to := range tab {
				if tab[from] == prop.Error {
					continue // implied: unlisted transitions go to error
				}
				fmt.Fprintf(&b, "  %s: %s -> %s\n", m, prop.States[from], prop.States[to])
			}
		}
		b.WriteString("}\n\n")
	}
	for _, c := range p.Classes {
		if c.Super != "" {
			fmt.Fprintf(&b, "class %s extends %s {\n", c.Name, c.Super)
		} else {
			fmt.Fprintf(&b, "class %s {\n", c.Name)
		}
		for _, f := range c.Fields {
			fmt.Fprintf(&b, "  field %s\n", f)
		}
		for _, m := range c.Methods {
			fmt.Fprintf(&b, "  method %s(%s) {\n", m.Name, strings.Join(m.Params, ", "))
			printStmt(&b, m.Body, 2)
			b.WriteString("  }\n")
		}
		b.WriteString("}\n\n")
	}
	return b.String()
}

func printStmt(b *strings.Builder, s Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	switch s := s.(type) {
	case *Block:
		for _, st := range s.Stmts {
			printStmt(b, st, depth)
		}
	case *If:
		b.WriteString(ind + "if (*) {\n")
		printStmt(b, s.Then, depth+1)
		if s.Else != nil {
			b.WriteString(ind + "} else {\n")
			printStmt(b, s.Else, depth+1)
		}
		b.WriteString(ind + "}\n")
	case *While:
		b.WriteString(ind + "while (*) {\n")
		printStmt(b, s.Body, depth+1)
		b.WriteString(ind + "}\n")
	case *Skip:
		b.WriteString(ind + "skip\n")
	case *Assign:
		fmt.Fprintf(b, "%s%s = %s\n", ind, s.Dst, s.Src)
	case *LoadStmt:
		fmt.Fprintf(b, "%s%s = %s.%s\n", ind, s.Dst, s.Base, s.Field)
	case *StoreStmt:
		fmt.Fprintf(b, "%s%s.%s = %s\n", ind, s.Base, s.Field, s.Src)
	case *NewStmt:
		fmt.Fprintf(b, "%s%s = new %s @%s\n", ind, s.Dst, s.Type, s.Site)
	case *CallStmt:
		b.WriteString(ind)
		if s.Dst != "" {
			fmt.Fprintf(b, "%s = ", s.Dst)
		}
		if s.Recv != "" {
			fmt.Fprintf(b, "%s.", s.Recv)
		}
		fmt.Fprintf(b, "%s(%s)\n", s.Method, strings.Join(s.Args, ", "))
	case *Return:
		fmt.Fprintf(b, "%sreturn %s\n", ind, s.Src)
	}
}

// LineCount returns the number of lines Print would produce, the program's
// "KLOC" measure in the benchmark characteristics table.
func LineCount(p *Program) int {
	return strings.Count(Print(p), "\n")
}
