package hir

import (
	"fmt"
)

// Validate checks the structural and naming rules the rest of the toolchain
// relies on:
//
//   - class names are unique and do not clash with property names;
//   - superclasses exist and the inheritance relation is acyclic;
//   - method names are unique within a class, and no method name is shared
//     between a property and a class (so every call site is unambiguously a
//     virtual call or a type-state transition);
//   - allocation-site labels are globally unique and allocate known types;
//   - every called method is defined by some class or property;
//   - return appears only as the last statement of a method body;
//   - the entry method exists and has no parameters.
func (p *Program) Validate() error {
	seenClass := map[string]bool{}
	for _, c := range p.Classes {
		if seenClass[c.Name] {
			return fmt.Errorf("hir: duplicate class %q", c.Name)
		}
		seenClass[c.Name] = true
		if _, isProp := p.Properties[c.Name]; isProp {
			return fmt.Errorf("hir: class %q clashes with a property name", c.Name)
		}
	}
	// Superclass existence and acyclicity.
	for _, c := range p.Classes {
		if c.Super != "" && p.Class(c.Super) == nil {
			return fmt.Errorf("hir: class %q extends unknown class %q", c.Name, c.Super)
		}
		slow, fast := c, c
		for fast != nil && fast.Super != "" {
			fast = p.Class(fast.Super)
			if fast == nil || fast.Super == "" {
				break
			}
			fast = p.Class(fast.Super)
			slow = p.Class(slow.Super)
			if fast == slow && fast != nil {
				return fmt.Errorf("hir: inheritance cycle through class %q", c.Name)
			}
		}
	}
	// Method name rules.
	propMethods := map[string]string{} // method → property name
	for name, prop := range p.Properties {
		for m := range prop.Methods {
			propMethods[m] = name
		}
	}
	classMethods := map[string]bool{}
	for _, c := range p.Classes {
		seen := map[string]bool{}
		for _, m := range c.Methods {
			if seen[m.Name] {
				return fmt.Errorf("hir: class %q declares method %q twice", c.Name, m.Name)
			}
			seen[m.Name] = true
			classMethods[m.Name] = true
			if prop, clash := propMethods[m.Name]; clash {
				return fmt.Errorf("hir: method %s.%s clashes with property %s method",
					c.Name, m.Name, prop)
			}
		}
	}
	// Per-method statement rules and site/type checks.
	sites := map[string]string{} // site → method qname
	for _, c := range p.Classes {
		for _, m := range c.Methods {
			if err := p.validateBody(m, sites, propMethods, classMethods); err != nil {
				return err
			}
		}
	}
	// Entry.
	entry := p.Entry()
	if entry == nil {
		return fmt.Errorf("hir: entry method %s.%s not found", p.EntryClass, p.EntryMethod)
	}
	if len(entry.Params) != 0 {
		return fmt.Errorf("hir: entry method %s must have no parameters", entry.QName())
	}
	return nil
}

func (p *Program) validateBody(m *Method, sites map[string]string, propMethods map[string]string, classMethods map[string]bool) error {
	var check func(s Stmt, topLevel bool, last bool) error
	check = func(s Stmt, topLevel, last bool) error {
		switch s := s.(type) {
		case *Block:
			for i, st := range s.Stmts {
				if err := check(st, topLevel, last && i == len(s.Stmts)-1); err != nil {
					return err
				}
			}
			return nil
		case *If:
			if err := check(s.Then, false, false); err != nil {
				return err
			}
			if s.Else != nil {
				return check(s.Else, false, false)
			}
			return nil
		case *While:
			return check(s.Body, false, false)
		case *NewStmt:
			if s.Site == "" {
				return fmt.Errorf("hir: %s: unlabeled allocation site (call Finalize first)", m.QName())
			}
			if prev, dup := sites[s.Site]; dup {
				return fmt.Errorf("hir: %s: allocation site %q already used in %s", m.QName(), s.Site, prev)
			}
			sites[s.Site] = m.QName()
			if p.Class(s.Type) == nil {
				if _, isProp := p.Properties[s.Type]; !isProp {
					return fmt.Errorf("hir: %s: new of unknown type %q", m.QName(), s.Type)
				}
			}
			return nil
		case *CallStmt:
			_, isTS := propMethods[s.Method]
			if !isTS && !classMethods[s.Method] {
				return fmt.Errorf("hir: %s: call to undefined method %q", m.QName(), s.Method)
			}
			if isTS && s.Recv == "" {
				return fmt.Errorf("hir: %s: type-state method %q needs an explicit receiver", m.QName(), s.Method)
			}
			if s.Recv == "" && m.QName() == p.EntryClass+"."+p.EntryMethod {
				return fmt.Errorf("hir: %s: the static entry method has no receiver for call to %q", m.QName(), s.Method)
			}
			return nil
		case *Return:
			if !topLevel || !last {
				return fmt.Errorf("hir: %s: return must be the final statement of the method body", m.QName())
			}
			return nil
		default:
			return nil
		}
	}
	return check(m.Body, true, true)
}
