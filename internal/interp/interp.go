// Package interp is a concrete interpreter for the command IR: it executes
// programs over a real heap of objects with real type-state machines,
// resolving non-deterministic choices and loop iteration counts from a
// seeded random source.
//
// Its purpose is validation: any type-state error that occurs in some
// concrete execution must be predicted by the abstract analyses (soundness
// of the over-approximation), and the set of concrete (site, state) pairs
// observed at program exit must be covered by the abstract exit states.
// The soundness test suites drive random programs through both this
// interpreter and the three analysis engines and compare.
package interp

import (
	"fmt"
	"math/rand"

	"swift/internal/ir"
	"swift/internal/typestate"
)

// Object is a concrete heap object with a type-state.
type Object struct {
	// Site is the allocation site label.
	Site string
	// State is the current FSM state index, or 0 for untracked objects.
	State typestate.State
	// Prop is the object's property, nil if untracked.
	Prop *typestate.Property
	// Fields holds reference-valued fields.
	Fields map[string]*Object
	// Err records that the object entered its error state at some point
	// (the error state is absorbing, but we latch explicitly for clarity).
	Err bool
}

// Config bounds an execution.
type Config struct {
	// MaxSteps bounds primitive executions (loops are unbounded
	// otherwise).
	MaxSteps int
	// MaxLoopIter bounds each loop's iteration count; each entry draws a
	// count in [0, MaxLoopIter].
	MaxLoopIter int
	// Seed drives choice and loop resolution.
	Seed int64
}

// DefaultConfig returns reasonable execution bounds.
func DefaultConfig(seed int64) Config {
	return Config{MaxSteps: 100_000, MaxLoopIter: 3, Seed: seed}
}

// Result summarizes one concrete execution.
type Result struct {
	// Steps is the number of primitives executed.
	Steps int
	// ErrorSites lists sites whose objects entered an error state, sorted.
	ErrorSites []string
	// Exit holds the (site, state-name) pairs of all tracked objects
	// allocated during the run, at program exit.
	Exit []SiteState
	// Truncated reports that MaxSteps was hit (the execution is a prefix).
	Truncated bool
}

// SiteState is a concrete object's site and final state name.
type SiteState struct {
	Site  string
	State string
	Err   bool
}

// Interp executes programs.
type Interp struct {
	prog  *ir.Program
	track map[string]*typestate.Property
	cfg   Config

	rng     *rand.Rand
	vars    map[string]*Object
	objects []*Object
	steps   int
	errs    map[string]bool
}

// New prepares an interpreter for a program with the given tracked-site
// map (same shape as the type-state analysis').
func New(prog *ir.Program, track map[string]*typestate.Property, cfg Config) *Interp {
	return &Interp{
		prog:  prog,
		track: track,
		cfg:   cfg,
	}
}

// Run executes the program once from its entry procedure.
func (in *Interp) Run() (*Result, error) {
	in.rng = rand.New(rand.NewSource(in.cfg.Seed))
	in.vars = map[string]*Object{}
	in.objects = nil
	in.steps = 0
	in.errs = map[string]bool{}
	truncated := false
	if err := in.cmd(in.prog.Procs[in.prog.Entry].Body); err != nil {
		if err == errBudget {
			truncated = true
		} else {
			return nil, err
		}
	}
	res := &Result{Steps: in.steps, Truncated: truncated}
	for site := range in.errs {
		res.ErrorSites = append(res.ErrorSites, site)
	}
	sortStrings(res.ErrorSites)
	for _, o := range in.objects {
		res.Exit = append(res.Exit, SiteState{
			Site:  o.Site,
			State: o.Prop.States[o.State],
			Err:   o.Err,
		})
	}
	return res, nil
}

// errBudget aborts an execution that exceeded MaxSteps.
var errBudget = fmt.Errorf("interp: step budget exhausted")

func (in *Interp) tick() error {
	in.steps++
	if in.steps > in.cfg.MaxSteps {
		return errBudget
	}
	return nil
}

func (in *Interp) cmd(c ir.Cmd) error {
	switch c := c.(type) {
	case *ir.Prim:
		return in.prim(c)
	case *ir.Seq:
		for _, s := range c.Cmds {
			if err := in.cmd(s); err != nil {
				return err
			}
		}
		return nil
	case *ir.Choice:
		return in.cmd(c.Alts[in.rng.Intn(len(c.Alts))])
	case *ir.Loop:
		n := in.rng.Intn(in.cfg.MaxLoopIter + 1)
		for i := 0; i < n; i++ {
			if err := in.cmd(c.Body); err != nil {
				return err
			}
		}
		return nil
	case *ir.Call:
		proc, ok := in.prog.Procs[c.Callee]
		if !ok {
			return fmt.Errorf("interp: call to unknown procedure %q", c.Callee)
		}
		return in.cmd(proc.Body)
	}
	return fmt.Errorf("interp: unknown command %T", c)
}

func (in *Interp) prim(p *ir.Prim) error {
	if err := in.tick(); err != nil {
		return err
	}
	switch p.Kind {
	case ir.Nop, ir.Assert:
		return nil
	case ir.New:
		o := &Object{Site: p.Site, Fields: map[string]*Object{}}
		if prop, tracked := in.track[p.Site]; tracked {
			o.Prop = prop
			in.objects = append(in.objects, o)
		}
		in.vars[p.Dst] = o
		return nil
	case ir.Copy:
		in.vars[p.Dst] = in.vars[p.Src]
		return nil
	case ir.Load:
		base := in.vars[p.Src]
		if base == nil {
			in.vars[p.Dst] = nil // null dereference: model as null result
			return nil
		}
		in.vars[p.Dst] = base.Fields[p.Field]
		return nil
	case ir.Store:
		base := in.vars[p.Dst]
		if base == nil {
			return nil // null dereference: no concrete effect to model
		}
		base.Fields[p.Field] = in.vars[p.Src]
		return nil
	case ir.TSCall:
		o := in.vars[p.Dst]
		if o == nil || o.Prop == nil {
			return nil // call on null or untracked object
		}
		tab, defined := o.Prop.Methods[p.Method]
		if !defined {
			return nil // method outside the property's alphabet
		}
		o.State = tab[o.State]
		if o.State == o.Prop.Error {
			o.Err = true
			in.errs[o.Site] = true
		}
		return nil
	case ir.Kill:
		// Scope end: the variable no longer refers to the object.
		delete(in.vars, p.Dst)
		return nil
	}
	return fmt.Errorf("interp: unknown primitive %v", p.Kind)
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
