package interp

import (
	"fmt"
	"math/rand"
	"testing"

	"swift/internal/core"
	"swift/internal/ir"
	"swift/internal/typestate"
)

// This file cross-validates the abstract analyses against concrete
// executions: on randomized programs, everything the interpreter observes
// (errors, exit type-states) must be covered by what the top-down analysis
// — and therefore, by coincidence, all three engines — predicts.

// randomProgram mirrors the coincidence-test generator: small programs
// with sequencing, choice, loops, calls and every primitive form.
func randomProgram(rng *rand.Rand) *ir.Program {
	vars := []string{"a", "b", "c"}
	sites := []string{"s1", "s2", "s3"}
	methods := []string{"open", "close", "read"}
	numProcs := 2 + rng.Intn(3)
	procName := func(i int) string { return fmt.Sprintf("p%d", i) }
	randVar := func() string { return vars[rng.Intn(len(vars))] }
	randPrim := func() ir.Cmd {
		switch rng.Intn(8) {
		case 0:
			return &ir.Prim{Kind: ir.New, Dst: randVar(), Site: sites[rng.Intn(len(sites))]}
		case 1:
			return &ir.Prim{Kind: ir.Copy, Dst: randVar(), Src: randVar()}
		case 2:
			return &ir.Prim{Kind: ir.Load, Dst: randVar(), Src: randVar(), Field: "f"}
		case 3:
			return &ir.Prim{Kind: ir.Store, Dst: randVar(), Field: "f", Src: randVar()}
		case 4, 5:
			return &ir.Prim{Kind: ir.TSCall, Dst: randVar(), Method: methods[rng.Intn(len(methods))]}
		case 6:
			return &ir.Prim{Kind: ir.Kill, Dst: randVar()}
		default:
			return &ir.Prim{Kind: ir.Nop}
		}
	}
	var randCmd func(depth, self int) ir.Cmd
	randCmd = func(depth, self int) ir.Cmd {
		if depth > 0 {
			switch rng.Intn(6) {
			case 0:
				return &ir.Choice{Alts: []ir.Cmd{randCmd(depth-1, self), randCmd(depth-1, self)}}
			case 1:
				return &ir.Loop{Body: randCmd(depth-1, self)}
			case 2:
				if self+1 < numProcs {
					return &ir.Call{Callee: procName(self + 1 + rng.Intn(numProcs-self-1))}
				}
			}
		}
		n := 1 + rng.Intn(3)
		seq := make([]ir.Cmd, n)
		for i := range seq {
			seq[i] = randPrim()
		}
		return &ir.Seq{Cmds: seq}
	}
	prog := ir.NewProgram(procName(0))
	for i := 0; i < numProcs; i++ {
		body := make([]ir.Cmd, 2+rng.Intn(3))
		for j := range body {
			body[j] = randCmd(2, i)
		}
		prog.Add(&ir.Proc{Name: procName(i), Body: &ir.Seq{Cmds: body}})
	}
	return prog
}

func TestAbstractCoversConcrete(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	file := typestate.FileProperty()
	for trial := 0; trial < 40; trial++ {
		prog := randomProgram(rng)
		track := map[string]*typestate.Property{"s1": file, "s2": file}
		ts, err := typestate.NewAnalysis(prog, track, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		an, err := core.NewAnalysis[typestate.AbsID, typestate.RelID, typestate.FormulaID](ts, prog)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		res := an.RunTD(ts.InitialState(), core.TDConfig())
		if !res.Completed() {
			t.Fatalf("trial %d: TD did not complete: %v", trial, res.Err)
		}
		// Abstract facts: error sites anywhere, and (site, state) pairs at
		// the exit of the entry procedure.
		absErrors := map[string]bool{}
		for _, site := range ts.ErrorSites(res.TD.AllStates()) {
			absErrors[site] = true
		}
		absExit := map[SiteState]bool{}
		for _, s := range res.ExitStates(prog.Entry, ts.InitialState()) {
			if ts.Site(s) == "<none>" {
				continue
			}
			absExit[SiteState{Site: ts.Site(s), State: ts.StateName(s), Err: ts.IsError(s)}] = true
		}

		for run := 0; run < 30; run++ {
			in := New(prog, track, DefaultConfig(int64(trial*1000+run)))
			got, err := in.Run()
			if err != nil {
				t.Fatalf("trial %d run %d: %v", trial, run, err)
			}
			// Soundness of error reporting: a concrete error site must be
			// abstractly reported — even on truncated runs (the error
			// already happened in the executed prefix).
			for _, site := range got.ErrorSites {
				if !absErrors[site] {
					t.Fatalf("trial %d run %d: concrete error at %s missed by the analysis\n%s",
						trial, run, site, ir.Print(prog))
				}
			}
			if got.Truncated {
				continue
			}
			// Coverage of exit states: every concrete tracked object's
			// final (site, state) must appear among the abstract exit
			// tuples.
			for _, ss := range got.Exit {
				if !absExit[ss] {
					t.Fatalf("trial %d run %d: concrete exit %v not covered; abstract exit %v\n%s",
						trial, run, ss, absExit, ir.Print(prog))
				}
			}
		}
	}
}

func TestInterpDeterministicPerSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	prog := randomProgram(rng)
	track := map[string]*typestate.Property{"s1": typestate.FileProperty()}
	a, err := New(prog, track, DefaultConfig(42)).Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(prog, track, DefaultConfig(42)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Steps != b.Steps || len(a.Exit) != len(b.Exit) {
		t.Errorf("same seed, different executions: %+v vs %+v", a, b)
	}
}

func TestInterpBasics(t *testing.T) {
	// open; close is clean; read-after-close errors.
	prog := ir.NewProgram("main")
	prog.Add(&ir.Proc{Name: "main", Body: &ir.Seq{Cmds: []ir.Cmd{
		&ir.Prim{Kind: ir.New, Dst: "f", Site: "h1"},
		&ir.Prim{Kind: ir.TSCall, Dst: "f", Method: "open"},
		&ir.Prim{Kind: ir.TSCall, Dst: "f", Method: "close"},
		&ir.Prim{Kind: ir.TSCall, Dst: "f", Method: "read"},
	}}})
	track := map[string]*typestate.Property{"h1": typestate.FileProperty()}
	res, err := New(prog, track, DefaultConfig(1)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ErrorSites) != 1 || res.ErrorSites[0] != "h1" {
		t.Errorf("ErrorSites = %v", res.ErrorSites)
	}
	if len(res.Exit) != 1 || !res.Exit[0].Err || res.Exit[0].State != "error" {
		t.Errorf("Exit = %v", res.Exit)
	}
	if res.Steps != 4 {
		t.Errorf("Steps = %d", res.Steps)
	}
}

func TestInterpFieldsAndNull(t *testing.T) {
	prog := ir.NewProgram("main")
	prog.Add(&ir.Proc{Name: "main", Body: &ir.Seq{Cmds: []ir.Cmd{
		&ir.Prim{Kind: ir.New, Dst: "box", Site: "b"},
		&ir.Prim{Kind: ir.New, Dst: "f", Site: "h1"},
		&ir.Prim{Kind: ir.Store, Dst: "box", Field: "item", Src: "f"},
		&ir.Prim{Kind: ir.Load, Dst: "g", Src: "box", Field: "item"},
		&ir.Prim{Kind: ir.TSCall, Dst: "g", Method: "open"},
		// Null-safe behaviour: loads/stores/calls through unassigned vars.
		&ir.Prim{Kind: ir.Load, Dst: "x", Src: "zzz", Field: "item"},
		&ir.Prim{Kind: ir.Store, Dst: "zzz", Field: "item", Src: "f"},
		&ir.Prim{Kind: ir.TSCall, Dst: "zzz", Method: "open"},
		&ir.Prim{Kind: ir.Kill, Dst: "g"},
	}}})
	track := map[string]*typestate.Property{"h1": typestate.FileProperty()}
	res, err := New(prog, track, DefaultConfig(1)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ErrorSites) != 0 {
		t.Errorf("ErrorSites = %v", res.ErrorSites)
	}
	if len(res.Exit) != 1 || res.Exit[0].State != "opened" {
		t.Errorf("Exit = %v", res.Exit)
	}
}
