package ir

import (
	"fmt"
	"sort"
	"strings"
)

// Node is a program point (a vertex of a procedure's control-flow graph).
// Nodes are identified by a dense integer ID that is unique across the whole
// program's CFG, so analyses can index node-keyed tables by ID.
type Node struct {
	ID   int
	Proc string // name of the enclosing procedure
	// Out lists the outgoing edges in creation (hence deterministic) order.
	Out []*Edge
	// In lists the incoming edges in creation order.
	In []*Edge
}

// Edge is a control-flow edge labeled with either a primitive command or a
// procedure call. Exactly one of Prim and Call is meaningful: if Call is the
// empty string the edge executes Prim (possibly a Nop), otherwise the edge
// invokes procedure Call.
type Edge struct {
	From *Node
	To   *Node
	Prim *Prim  // non-nil iff Call == ""
	Call string // callee name, or "" for a primitive edge
}

// IsCall reports whether the edge is a procedure-call edge.
func (e *Edge) IsCall() bool { return e.Call != "" }

// Label renders the edge's command for diagnostics.
func (e *Edge) Label() string {
	if e.IsCall() {
		return "call " + e.Call
	}
	return e.Prim.String()
}

// ProcCFG is the control-flow graph of one procedure. Entry and Exit are
// distinct nodes; every path from Entry reaches Exit (the builder guarantees
// this structurally for the command language, which has no aborts).
type ProcCFG struct {
	Proc  string
	Entry *Node
	Exit  *Node
	Nodes []*Node
}

// CFG holds the control-flow graphs of all procedures of a program.
type CFG struct {
	Program *Program
	// ByProc maps procedure names to their graphs.
	ByProc map[string]*ProcCFG
	// NodeCount is the total number of nodes across all procedures; node IDs
	// range over [0, NodeCount).
	NodeCount int
	// AllNodes indexes nodes by ID.
	AllNodes []*Node
}

// BuildCFG constructs per-procedure control-flow graphs for the program.
// Sequencing, choice and loops are expanded structurally; loops become a
// head node with a back edge, so the graph of C* admits zero or more
// executions of C. The program must be valid (see Program.Validate).
func BuildCFG(p *Program) *CFG {
	g := &CFG{Program: p, ByProc: map[string]*ProcCFG{}}
	for _, name := range p.ProcNames() {
		pc := &ProcCFG{Proc: name}
		pc.Entry = g.newNode(pc)
		pc.Exit = g.newNode(pc)
		g.build(pc, p.Procs[name].Body, pc.Entry, pc.Exit)
		g.ByProc[name] = pc
	}
	return g
}

func (g *CFG) newNode(pc *ProcCFG) *Node {
	n := &Node{ID: g.NodeCount, Proc: pc.Proc}
	g.NodeCount++
	g.AllNodes = append(g.AllNodes, n)
	pc.Nodes = append(pc.Nodes, n)
	return n
}

func (g *CFG) addEdge(from, to *Node, prim *Prim, call string) {
	e := &Edge{From: from, To: to, Prim: prim, Call: call}
	from.Out = append(from.Out, e)
	to.In = append(to.In, e)
}

var nop = &Prim{Kind: Nop}

func (g *CFG) build(pc *ProcCFG, c Cmd, from, to *Node) {
	switch c := c.(type) {
	case *Prim:
		g.addEdge(from, to, c, "")
	case *Call:
		g.addEdge(from, to, nil, c.Callee)
	case *Seq:
		if len(c.Cmds) == 0 {
			g.addEdge(from, to, nop, "")
			return
		}
		cur := from
		for i, s := range c.Cmds {
			next := to
			if i < len(c.Cmds)-1 {
				next = g.newNode(pc)
			}
			g.build(pc, s, cur, next)
			cur = next
		}
	case *Choice:
		for _, a := range c.Alts {
			g.build(pc, a, from, to)
		}
	case *Loop:
		head := g.newNode(pc)
		g.addEdge(from, head, nop, "")
		g.build(pc, c.Body, head, head)
		g.addEdge(head, to, nop, "")
	default:
		panic(fmt.Sprintf("ir: BuildCFG on invalid command %T", c))
	}
}

// Dump renders the CFG as a deterministic adjacency listing, useful in tests
// and debugging.
func (g *CFG) Dump() string {
	var b strings.Builder
	names := make([]string, 0, len(g.ByProc))
	for n := range g.ByProc {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		pc := g.ByProc[name]
		fmt.Fprintf(&b, "proc %s entry=%d exit=%d\n", name, pc.Entry.ID, pc.Exit.ID)
		for _, n := range pc.Nodes {
			for _, e := range n.Out {
				fmt.Fprintf(&b, "  %d -> %d : %s\n", e.From.ID, e.To.ID, e.Label())
			}
		}
	}
	return b.String()
}
