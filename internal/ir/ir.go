// Package ir defines the command intermediate representation analyzed by the
// SWIFT framework. It is the language of Section 3 of the paper:
//
//	C ::= c | C + C | C ; C | C* | call f
//
// where c ranges over primitive commands. Primitive commands model a small
// object-oriented core: allocation, copies, field loads and stores, calls to
// type-state methods of tracked objects, and a "kill" pseudo command used by
// the lowering pass to retire out-of-scope locals.
//
// Analyses never see the front-end language (package source) or the
// high-level IR (package hir); they operate exclusively on this package's
// Program, either structurally (the bottom-up relational solver walks the
// command tree) or via the per-procedure control-flow graphs of package
// ir's CFG builder (the top-down tabulation solver).
package ir

import (
	"fmt"
	"sort"
	"strings"
)

// PrimKind enumerates the primitive commands.
type PrimKind int

const (
	// Nop is the identity command. It appears on structural CFG edges.
	Nop PrimKind = iota
	// New is "v = new h": v points to a fresh object allocated at site h.
	New
	// Copy is "v = w": copy a reference between variables.
	Copy
	// Load is "v = w.f": read a reference from a field.
	Load
	// Store is "v.f = w": write a reference into a field.
	Store
	// TSCall is "v.m()": invoke type-state method m of the object referred
	// to by v. It drives the finite-state machine of the tracked property
	// and is the only primitive that changes type-states.
	TSCall
	// Kill is "kill v": remove variable v (and paths rooted at it) from all
	// alias information. The lowering pass emits kills for callee locals at
	// procedure exits so stale aliases do not fragment the abstract state
	// space. It has no concrete effect beyond ending v's scope.
	Kill
	// Assert is "assert v ~ m": a checking directive. It does not change
	// state; clients may use it to report type-state errors at the point a
	// method would be invoked. The default type-state client treats it as
	// identical to TSCall for error accounting but without the transition.
	Assert
)

// String returns the mnemonic of the primitive kind.
func (k PrimKind) String() string {
	switch k {
	case Nop:
		return "nop"
	case New:
		return "new"
	case Copy:
		return "copy"
	case Load:
		return "load"
	case Store:
		return "store"
	case TSCall:
		return "tscall"
	case Kill:
		return "kill"
	case Assert:
		return "assert"
	}
	return fmt.Sprintf("PrimKind(%d)", int(k))
}

// Prim is a primitive command c. The meaning of the fields depends on Kind:
//
//	New:    Dst = new Site
//	Copy:   Dst = Src
//	Load:   Dst = Src.Field
//	Store:  Dst.Field = Src
//	TSCall: Dst.Method()
//	Kill:   kill Dst
//	Assert: assert Dst ~ Method
//	Nop:    (no fields)
type Prim struct {
	Kind   PrimKind
	Dst    string // destination / receiver variable
	Src    string // source variable (Copy, Load, Store)
	Field  string // field name (Load, Store)
	Site   string // allocation site label (New)
	Method string // type-state method name (TSCall, Assert)
}

func (*Prim) isCmd() {}

// String renders the primitive in surface syntax.
func (p *Prim) String() string {
	switch p.Kind {
	case Nop:
		return "nop"
	case New:
		return fmt.Sprintf("%s = new %s", p.Dst, p.Site)
	case Copy:
		return fmt.Sprintf("%s = %s", p.Dst, p.Src)
	case Load:
		return fmt.Sprintf("%s = %s.%s", p.Dst, p.Src, p.Field)
	case Store:
		return fmt.Sprintf("%s.%s = %s", p.Dst, p.Field, p.Src)
	case TSCall:
		return fmt.Sprintf("%s.%s()", p.Dst, p.Method)
	case Kill:
		return fmt.Sprintf("kill %s", p.Dst)
	case Assert:
		return fmt.Sprintf("assert %s ~ %s", p.Dst, p.Method)
	}
	return "prim?"
}

// Key returns a canonical string identity for the primitive, used for
// interning and deterministic ordering.
func (p *Prim) Key() string { return p.String() }

// Cmd is a command of the Section 3 language. The concrete types are *Prim,
// *Seq, *Choice, *Loop and *Call.
type Cmd interface {
	isCmd()
}

// Seq is sequential composition C1 ; C2 ; … ; Cn. An empty Seq behaves as a
// nop.
type Seq struct {
	Cmds []Cmd
}

func (*Seq) isCmd() {}

// Choice is non-deterministic choice C1 + C2 + … + Cn. It models branching
// whose condition is abstracted away. A Choice must have at least one
// alternative.
type Choice struct {
	Alts []Cmd
}

func (*Choice) isCmd() {}

// Loop is iteration C*: zero or more executions of Body.
type Loop struct {
	Body Cmd
}

func (*Loop) isCmd() {}

// Call invokes procedure Callee. Parameter passing has already been lowered
// to explicit copies by package lower, so calls carry no arguments (exactly
// as in the paper's Section 3.5 formalism).
type Call struct {
	Callee string
}

func (*Call) isCmd() {}

// Proc is a named procedure.
type Proc struct {
	Name string
	Body Cmd
	// Locals lists the variables considered local to this procedure. It is
	// informational (used by printers and statistics); the lowering pass has
	// already made all names globally unique.
	Locals []string
}

// Program is a closed set of procedures with a designated entry procedure.
type Program struct {
	// Procs maps procedure names to their definitions.
	Procs map[string]*Proc
	// Entry is the name of the root procedure ("main").
	Entry string
	// Sites lists all allocation site labels in deterministic order.
	Sites []string
}

// NewProgram returns an empty program with the given entry name.
func NewProgram(entry string) *Program {
	return &Program{Procs: map[string]*Proc{}, Entry: entry}
}

// Add registers a procedure, replacing any previous definition with the same
// name.
func (p *Program) Add(proc *Proc) { p.Procs[proc.Name] = proc }

// ProcNames returns all procedure names in sorted order.
func (p *Program) ProcNames() []string {
	names := make([]string, 0, len(p.Procs))
	for n := range p.Procs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Validate checks structural well-formedness: the entry exists, every called
// procedure is defined, and every Choice has at least one alternative.
func (p *Program) Validate() error {
	if _, ok := p.Procs[p.Entry]; !ok {
		return fmt.Errorf("ir: entry procedure %q is not defined", p.Entry)
	}
	for _, name := range p.ProcNames() {
		if err := validateCmd(p, p.Procs[name].Body); err != nil {
			return fmt.Errorf("ir: procedure %q: %w", name, err)
		}
	}
	return nil
}

func validateCmd(p *Program, c Cmd) error {
	switch c := c.(type) {
	case *Prim:
		return nil
	case *Seq:
		for _, s := range c.Cmds {
			if err := validateCmd(p, s); err != nil {
				return err
			}
		}
		return nil
	case *Choice:
		if len(c.Alts) == 0 {
			return fmt.Errorf("choice with no alternatives")
		}
		for _, a := range c.Alts {
			if err := validateCmd(p, a); err != nil {
				return err
			}
		}
		return nil
	case *Loop:
		return validateCmd(p, c.Body)
	case *Call:
		if _, ok := p.Procs[c.Callee]; !ok {
			return fmt.Errorf("call to undefined procedure %q", c.Callee)
		}
		return nil
	case nil:
		return fmt.Errorf("nil command")
	}
	return fmt.Errorf("unknown command type %T", c)
}

// Callees returns the names of procedures directly called by c, sorted and
// de-duplicated.
func Callees(c Cmd) []string {
	set := map[string]bool{}
	collectCallees(c, set)
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func collectCallees(c Cmd, set map[string]bool) {
	switch c := c.(type) {
	case *Seq:
		for _, s := range c.Cmds {
			collectCallees(s, set)
		}
	case *Choice:
		for _, a := range c.Alts {
			collectCallees(a, set)
		}
	case *Loop:
		collectCallees(c.Body, set)
	case *Call:
		set[c.Callee] = true
	}
}

// Reachable returns the names of all procedures reachable from the given
// root by call chains (including the root itself if defined), sorted.
func (p *Program) Reachable(root string) []string {
	seen := map[string]bool{}
	var visit func(string)
	visit = func(name string) {
		if seen[name] {
			return
		}
		proc, ok := p.Procs[name]
		if !ok {
			return
		}
		seen[name] = true
		for _, callee := range Callees(proc.Body) {
			visit(callee)
		}
	}
	visit(root)
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Stats summarizes the size of a program.
type Stats struct {
	Procs   int
	Prims   int
	Calls   int
	Choices int
	Loops   int
	MaxBody int // primitive count of the largest procedure body
}

// CollectStats computes size statistics over the whole program.
func CollectStats(p *Program) Stats {
	var st Stats
	st.Procs = len(p.Procs)
	for _, name := range p.ProcNames() {
		n := countCmd(p.Procs[name].Body, &st)
		if n > st.MaxBody {
			st.MaxBody = n
		}
	}
	return st
}

func countCmd(c Cmd, st *Stats) int {
	switch c := c.(type) {
	case *Prim:
		st.Prims++
		return 1
	case *Seq:
		n := 0
		for _, s := range c.Cmds {
			n += countCmd(s, st)
		}
		return n
	case *Choice:
		st.Choices++
		n := 0
		for _, a := range c.Alts {
			n += countCmd(a, st)
		}
		return n
	case *Loop:
		st.Loops++
		return countCmd(c.Body, st)
	case *Call:
		st.Calls++
		return 1
	}
	return 0
}

// Print renders the program in a readable block syntax, one procedure per
// block, in sorted order. The output is suitable for debugging and for
// line-of-code accounting in the benchmark characteristics table.
func Print(p *Program) string {
	var b strings.Builder
	for i, name := range p.ProcNames() {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "proc %s {\n", name)
		printCmd(&b, p.Procs[name].Body, 1)
		b.WriteString("}\n")
	}
	return b.String()
}

func printCmd(b *strings.Builder, c Cmd, depth int) {
	indent := strings.Repeat("  ", depth)
	switch c := c.(type) {
	case *Prim:
		b.WriteString(indent)
		b.WriteString(c.String())
		b.WriteByte('\n')
	case *Seq:
		for _, s := range c.Cmds {
			printCmd(b, s, depth)
		}
	case *Choice:
		b.WriteString(indent)
		b.WriteString("choice {\n")
		for i, a := range c.Alts {
			if i > 0 {
				b.WriteString(indent)
				b.WriteString("} or {\n")
			}
			printCmd(b, a, depth+1)
		}
		b.WriteString(indent)
		b.WriteString("}\n")
	case *Loop:
		b.WriteString(indent)
		b.WriteString("loop {\n")
		printCmd(b, c.Body, depth+1)
		b.WriteString(indent)
		b.WriteString("}\n")
	case *Call:
		fmt.Fprintf(b, "%scall %s\n", indent, c.Callee)
	}
}
