package ir

import (
	"strings"
	"testing"
)

func sampleProgram() *Program {
	p := NewProgram("main")
	p.Add(&Proc{Name: "main", Body: &Seq{Cmds: []Cmd{
		&Prim{Kind: New, Dst: "v", Site: "h1"},
		&Call{Callee: "helper"},
		&Loop{Body: &Prim{Kind: TSCall, Dst: "v", Method: "read"}},
	}}})
	p.Add(&Proc{Name: "helper", Body: &Choice{Alts: []Cmd{
		&Prim{Kind: Copy, Dst: "w", Src: "v"},
		&Seq{Cmds: []Cmd{
			&Prim{Kind: Store, Dst: "w", Field: "f", Src: "v"},
			&Prim{Kind: Load, Dst: "u", Src: "w", Field: "f"},
			&Call{Callee: "leaf"},
		}},
	}}})
	p.Add(&Proc{Name: "leaf", Body: &Prim{Kind: Kill, Dst: "u"}})
	return p
}

func TestValidateAccepts(t *testing.T) {
	if err := sampleProgram().Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		prog func() *Program
		want string
	}{
		{"missing entry", func() *Program {
			p := NewProgram("nope")
			p.Add(&Proc{Name: "main", Body: &Prim{Kind: Nop}})
			return p
		}, "entry"},
		{"undefined callee", func() *Program {
			p := NewProgram("main")
			p.Add(&Proc{Name: "main", Body: &Call{Callee: "ghost"}})
			return p
		}, "undefined"},
		{"empty choice", func() *Program {
			p := NewProgram("main")
			p.Add(&Proc{Name: "main", Body: &Choice{}})
			return p
		}, "choice"},
		{"nil command", func() *Program {
			p := NewProgram("main")
			p.Add(&Proc{Name: "main", Body: &Seq{Cmds: []Cmd{nil}}})
			return p
		}, "nil"},
	}
	for _, c := range cases {
		err := c.prog().Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error = %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestReachable(t *testing.T) {
	p := sampleProgram()
	got := p.Reachable("main")
	want := []string{"helper", "leaf", "main"}
	if len(got) != len(want) {
		t.Fatalf("Reachable(main) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Reachable(main) = %v, want %v", got, want)
		}
	}
	if leafOnly := p.Reachable("leaf"); len(leafOnly) != 1 || leafOnly[0] != "leaf" {
		t.Errorf("Reachable(leaf) = %v", leafOnly)
	}
}

func TestCallees(t *testing.T) {
	p := sampleProgram()
	got := Callees(p.Procs["helper"].Body)
	if len(got) != 1 || got[0] != "leaf" {
		t.Errorf("Callees(helper) = %v, want [leaf]", got)
	}
	if got := Callees(p.Procs["leaf"].Body); len(got) != 0 {
		t.Errorf("Callees(leaf) = %v, want none", got)
	}
}

func TestCollectStats(t *testing.T) {
	st := CollectStats(sampleProgram())
	if st.Procs != 3 {
		t.Errorf("Procs = %d, want 3", st.Procs)
	}
	if st.Calls != 2 {
		t.Errorf("Calls = %d, want 2", st.Calls)
	}
	if st.Choices != 1 || st.Loops != 1 {
		t.Errorf("Choices/Loops = %d/%d, want 1/1", st.Choices, st.Loops)
	}
	if st.Prims != 6 {
		t.Errorf("Prims = %d, want 6", st.Prims)
	}
}

func TestPrintRoundtrips(t *testing.T) {
	out := Print(sampleProgram())
	for _, want := range []string{
		"proc main {", "v = new h1", "call helper",
		"loop {", "choice {", "} or {", "w.f = v", "u = w.f", "kill u",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Print output missing %q:\n%s", want, out)
		}
	}
}

func TestCFGStructure(t *testing.T) {
	p := sampleProgram()
	g := BuildCFG(p)
	if len(g.ByProc) != 3 {
		t.Fatalf("CFG has %d procs, want 3", len(g.ByProc))
	}
	// Every proc entry differs from its exit, and node IDs are dense.
	for name, pc := range g.ByProc {
		if pc.Entry == pc.Exit {
			t.Errorf("%s: entry == exit", name)
		}
	}
	if len(g.AllNodes) != g.NodeCount {
		t.Errorf("AllNodes has %d entries, NodeCount = %d", len(g.AllNodes), g.NodeCount)
	}
	for i, n := range g.AllNodes {
		if n.ID != i {
			t.Errorf("node %d has ID %d", i, n.ID)
		}
	}
	// helper's choice: its entry must have two outgoing edges.
	h := g.ByProc["helper"]
	if len(h.Entry.Out) != 2 {
		t.Errorf("helper entry has %d out edges, want 2", len(h.Entry.Out))
	}
	// Exactly one call edge to leaf.
	calls := 0
	for _, n := range h.Nodes {
		for _, e := range n.Out {
			if e.IsCall() && e.Call == "leaf" {
				calls++
			}
		}
	}
	if calls != 1 {
		t.Errorf("helper has %d call edges to leaf, want 1", calls)
	}
	// The loop in main admits zero iterations: a nop path from the loop
	// head to main's exit must exist.
	if !strings.Contains(g.Dump(), "nop") {
		t.Errorf("CFG dump missing structural nop edges:\n%s", g.Dump())
	}
}

func TestCFGLoopReachesExit(t *testing.T) {
	p := NewProgram("main")
	p.Add(&Proc{Name: "main", Body: &Loop{Body: &Prim{Kind: Nop}}})
	g := BuildCFG(p)
	pc := g.ByProc["main"]
	// BFS from entry must reach exit.
	seen := map[int]bool{pc.Entry.ID: true}
	queue := []*Node{pc.Entry}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			if !seen[e.To.ID] {
				seen[e.To.ID] = true
				queue = append(queue, e.To)
			}
		}
	}
	if !seen[pc.Exit.ID] {
		t.Fatal("loop exit unreachable from entry")
	}
}
