package ir

import "sort"

// This file builds the per-procedure structure index consumed by the sparse
// tabulation scheduler (internal/core): reverse-postorder numbering over a
// CFGView plus the loop-nest hierarchy of natural loops, with per-region
// member sets kept in original-graph terms. The index is pure graph
// structure — it never inspects abstract states — so, like the view itself,
// one index is built per view and shared by every run over it (including
// concurrent sliced runs; see core.RunSliceSet's pre-build).

// Region is one natural loop of a procedure, discovered from the view's
// back edges (superedges whose target is on the DFS stack). Loops sharing a
// header are merged, so a header identifies its region uniquely.
type Region struct {
	// ID is dense over the index: [0, len(Regions)).
	ID   int
	Proc string
	// Header is the node ID of the loop header. For programs built by
	// BuildCFG (structured loops, no break) it is the region's unique entry
	// and exit boundary, but the index verifies that structurally rather
	// than assuming it — see SingleEntry.
	Header int
	// Parent is the ID of the innermost enclosing region, or -1 for an
	// outermost loop.
	Parent int
	// Depth is the nesting depth: 1 for an outermost loop.
	Depth int
	// ViewNodes lists the region's traversal points (non-interior member
	// nodes) in reverse postorder.
	ViewNodes []int
	// AllNodes lists every original node inside the region: the view
	// members plus the chain interiors of primitive superedges that begin
	// and end inside it, sorted by ID. This is the original-graph footprint
	// a region-level replay fills in.
	AllNodes []int
	// Exits lists the superedges through which facts leave the region's
	// interior propagation: From inside with To outside, plus call edges
	// from inside (a call must always reach the solver's interceptor). The
	// order is deterministic: ViewNodes order, then out-edge order.
	Exits []*SuperEdge
	// HasCall reports whether some superedge with both ends inside the
	// region is a call edge.
	HasCall bool
	// SingleEntry reports whether every superedge entering the region from
	// outside targets Header.
	SingleEntry bool
	// Memoizable marks regions eligible for region-level closure
	// memoization: single entry at the header, call-free inside, and
	// containing neither the procedure's entry nor its exit node (seeding
	// and summary recording must stay on the generic solver path).
	Memoizable bool
}

// StructIndex is the loop-structure overlay of one CFGView.
type StructIndex struct {
	View *CFGView
	// RPO is a reverse-postorder position per node ID, globally unique and
	// increasing within each procedure (procedures in sorted name order).
	// Interior nodes of compressed chains — never traversal points — hold
	// -1.
	RPO []int32
	// Depth is the innermost loop-nesting depth per node ID; 0 outside all
	// loops. Chain interiors inherit the depth of the innermost region
	// containing their superedge.
	Depth []int32
	// RegionOf is the innermost region ID containing each node, or -1.
	RegionOf []int32
	// MemoHeader maps a node ID to the ID of the memoizable region it
	// heads, or -1.
	MemoHeader []int32
	// Regions lists all loop regions, IDs dense in discovery order
	// (procedures sorted by name, headers by RPO).
	Regions []*Region
	// MaxDepth is the deepest loop nesting in the program.
	MaxDepth int
	// MemoizableRegions counts regions with Memoizable set.
	MemoizableRegions int
}

// BuildStructIndex computes the structure index of a view. The result
// depends only on the view's graph, so it is deterministic and immutable
// once built.
func BuildStructIndex(v *CFGView) *StructIndex {
	g := v.CFG
	x := &StructIndex{
		View:       v,
		RPO:        make([]int32, g.NodeCount),
		Depth:      make([]int32, g.NodeCount),
		RegionOf:   make([]int32, g.NodeCount),
		MemoHeader: make([]int32, g.NodeCount),
	}
	for i := 0; i < g.NodeCount; i++ {
		x.RPO[i] = -1
		x.RegionOf[i] = -1
		x.MemoHeader[i] = -1
	}
	rpoNext := int32(0)
	for _, name := range g.Program.ProcNames() {
		x.buildProc(g.ByProc[name], &rpoNext)
	}
	for _, r := range x.Regions {
		if r.Depth > x.MaxDepth {
			x.MaxDepth = r.Depth
		}
		if r.Memoizable {
			x.MemoizableRegions++
		}
	}
	return x
}

// buildProc indexes one procedure: DFS over the view's superedges for
// postorder and back edges, natural-loop membership per back-edge target,
// then nesting, member sets and memoizability.
func (x *StructIndex) buildProc(pc *ProcCFG, rpoNext *int32) {
	v := x.View
	const (
		onStack byte = 1
		visited byte = 2
	)
	state := map[int]byte{}
	type frame struct {
		node int
		edge int
	}
	type backEdge struct{ from, head int }
	var (
		stack []frame
		post  []int
		backs []backEdge
	)
	state[pc.Entry.ID] = onStack
	stack = append(stack, frame{node: pc.Entry.ID})
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.edge < len(v.Out[f.node]) {
			to := v.Out[f.node][f.edge].To.ID
			f.edge++
			switch state[to] {
			case 0:
				state[to] = onStack
				stack = append(stack, frame{node: to})
			case onStack:
				backs = append(backs, backEdge{from: f.node, head: to})
			}
			continue
		}
		state[f.node] = visited
		post = append(post, f.node)
		stack = stack[:len(stack)-1]
	}
	for i := len(post) - 1; i >= 0; i-- {
		x.RPO[post[i]] = *rpoNext
		*rpoNext++
	}
	if len(backs) == 0 {
		return
	}

	// Natural-loop membership: everything that reaches the back edge's
	// source without passing through the header, plus the header itself.
	preds := map[int][]int{}
	for _, n := range post {
		for _, se := range v.Out[n] {
			preds[se.To.ID] = append(preds[se.To.ID], n)
		}
	}
	members := map[int]map[int]bool{}
	for _, b := range backs {
		m := members[b.head]
		if m == nil {
			m = map[int]bool{b.head: true}
			members[b.head] = m
		}
		if m[b.from] {
			continue
		}
		m[b.from] = true
		walk := []int{b.from}
		for len(walk) > 0 {
			n := walk[len(walk)-1]
			walk = walk[:len(walk)-1]
			for _, p := range preds[n] {
				if !m[p] {
					m[p] = true
					walk = append(walk, p)
				}
			}
		}
	}
	heads := make([]int, 0, len(members))
	for h := range members {
		heads = append(heads, h)
	}
	sort.Slice(heads, func(i, j int) bool { return x.RPO[heads[i]] < x.RPO[heads[j]] })

	regs := make([]*Region, len(heads))
	for i, h := range heads {
		regs[i] = &Region{ID: len(x.Regions), Proc: pc.Proc, Header: h, Parent: -1, SingleEntry: true}
		x.Regions = append(x.Regions, regs[i])
	}
	// Nesting: the parent of a region is the smallest other region whose
	// member set contains its header. Structured programs produce reducible
	// graphs, where distinct natural loops are disjoint or nested, so
	// containment of the header implies containment of the loop.
	innermost := func(n, skip int) int {
		best := -1
		for i, h := range heads {
			if i == skip || !members[h][n] {
				continue
			}
			if best == -1 || len(members[heads[best]]) > len(members[h]) {
				best = i
			}
		}
		return best
	}
	for i, h := range heads {
		if p := innermost(h, i); p >= 0 {
			regs[i].Parent = regs[p].ID
		}
	}
	for i := range regs {
		d, p := 1, regs[i].Parent
		for p >= 0 {
			d++
			p = x.Regions[p].Parent
		}
		regs[i].Depth = d
	}
	for _, n := range post {
		if i := innermost(n, -1); i >= 0 {
			x.RegionOf[n] = int32(regs[i].ID)
			x.Depth[n] = int32(regs[i].Depth)
		}
	}
	// Member sets in RPO order, then the edge sweep: interiors, calls,
	// exits and entry violations per region.
	interiors := make([][]int, len(heads))
	for i := len(post) - 1; i >= 0; i-- {
		n := post[i]
		for ri, h := range heads {
			if members[h][n] {
				regs[ri].ViewNodes = append(regs[ri].ViewNodes, n)
			}
		}
		for _, se := range v.Out[n] {
			to := se.To.ID
			seInner := -1 // innermost region containing the whole superedge
			for ri, h := range heads {
				fromIn, toIn := members[h][n], members[h][to]
				switch {
				case fromIn && toIn:
					if se.IsCall() {
						regs[ri].HasCall = true
						regs[ri].Exits = append(regs[ri].Exits, se)
					} else {
						for _, w := range se.Interior {
							interiors[ri] = append(interiors[ri], w.ID)
						}
						if seInner == -1 || len(members[heads[seInner]]) > len(members[h]) {
							seInner = ri
						}
					}
				case fromIn:
					regs[ri].Exits = append(regs[ri].Exits, se)
				case toIn:
					if to != h {
						regs[ri].SingleEntry = false
					}
				}
			}
			if seInner >= 0 {
				for _, w := range se.Interior {
					x.RegionOf[w.ID] = int32(regs[seInner].ID)
					x.Depth[w.ID] = int32(regs[seInner].Depth)
				}
			}
		}
	}
	for ri := range regs {
		r := regs[ri]
		all := make([]int, 0, len(r.ViewNodes)+len(interiors[ri]))
		all = append(all, r.ViewNodes...)
		all = append(all, interiors[ri]...)
		sort.Ints(all)
		r.AllNodes = all
		boundary := members[heads[ri]][pc.Entry.ID] || members[heads[ri]][pc.Exit.ID]
		r.Memoizable = r.SingleEntry && !r.HasCall && !boundary
		if r.Memoizable {
			x.MemoHeader[r.Header] = int32(r.ID)
		}
	}
}
