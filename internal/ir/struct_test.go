package ir

import "testing"

func cp(dst, src string) *Prim { return &Prim{Kind: Copy, Dst: dst, Src: src} }

// structProgram builds main with the given body and a helper callee.
func structProgram(body Cmd) *CFG {
	p := NewProgram("main")
	p.Add(&Proc{Name: "main", Body: body})
	p.Add(&Proc{Name: "util", Body: cp("u", "v")})
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return BuildCFG(p)
}

func bothViews(t *testing.T, g *CFG, check func(t *testing.T, x *StructIndex)) {
	t.Helper()
	for _, v := range []*CFGView{RawView(g), CompressedView(g)} {
		name := "raw"
		if v.Compressed {
			name = "compressed"
		}
		t.Run(name, func(t *testing.T) { check(t, BuildStructIndex(v)) })
	}
}

// checkRPOTopological asserts every superedge either increases RPO or is a
// back edge into the header of a region containing its source.
func checkRPOTopological(t *testing.T, x *StructIndex) {
	t.Helper()
	for _, n := range x.View.CFG.AllNodes {
		if x.View.Interior[n.ID] {
			continue
		}
		for _, se := range x.View.Out[n.ID] {
			from, to := se.From.ID, se.To.ID
			if x.RPO[from] < x.RPO[to] {
				continue
			}
			// Must be a back edge: target heads a region that contains from.
			rid := x.RegionOf[from]
			found := false
			for rid >= 0 {
				if x.Regions[rid].Header == to {
					found = true
					break
				}
				rid = int32(x.Regions[rid].Parent)
			}
			if !found {
				t.Errorf("edge %d->%d: RPO %d >= %d but not a back edge",
					from, to, x.RPO[from], x.RPO[to])
			}
		}
	}
}

func TestStructIndexSingleLoop(t *testing.T) {
	g := structProgram(&Seq{Cmds: []Cmd{
		cp("a", "b"),
		&Loop{Body: &Seq{Cmds: []Cmd{cp("c", "d"), cp("d", "e"), cp("e", "f")}}},
		cp("f", "g"),
	}})
	bothViews(t, g, func(t *testing.T, x *StructIndex) {
		checkRPOTopological(t, x)
		if len(x.Regions) != 1 {
			t.Fatalf("regions = %d, want 1", len(x.Regions))
		}
		r := x.Regions[0]
		if r.Depth != 1 || x.MaxDepth != 1 || r.Parent != -1 {
			t.Errorf("depth/parent = %d/%d, MaxDepth %d, want 1/-1, 1", r.Depth, r.Parent, x.MaxDepth)
		}
		if !r.SingleEntry || r.HasCall || !r.Memoizable {
			t.Errorf("flags = entry:%v call:%v memo:%v, want true,false,true",
				r.SingleEntry, r.HasCall, r.Memoizable)
		}
		if x.MemoHeader[r.Header] != int32(r.ID) {
			t.Errorf("MemoHeader[header] = %d, want %d", x.MemoHeader[r.Header], r.ID)
		}
		if x.RegionOf[r.Header] != int32(r.ID) || x.Depth[r.Header] != 1 {
			t.Errorf("header RegionOf/Depth = %d/%d", x.RegionOf[r.Header], x.Depth[r.Header])
		}
		// The loop body is a 3-prim chain head->..->head: on the compressed
		// view its interiors must appear in AllNodes; on either view the
		// region must span more original nodes than traversal points — the
		// body nodes are inside the loop on both.
		if len(r.AllNodes) < 3 {
			t.Errorf("AllNodes = %v, want the header plus body nodes", r.AllNodes)
		}
		if x.View.Compressed && len(r.ViewNodes) >= len(r.AllNodes) {
			t.Errorf("compressed view: ViewNodes %v not smaller than AllNodes %v",
				r.ViewNodes, r.AllNodes)
		}
		// Exactly one exit superedge: header -> loop successor.
		if len(r.Exits) != 1 || r.Exits[0].From.ID != r.Header {
			t.Errorf("Exits = %v, want one edge from header", r.Exits)
		}
	})
}

func TestStructIndexNestedLoops(t *testing.T) {
	g := structProgram(&Seq{Cmds: []Cmd{
		cp("a", "b"),
		&Loop{Body: &Seq{Cmds: []Cmd{
			cp("c", "d"),
			&Loop{Body: &Seq{Cmds: []Cmd{
				cp("d", "e"),
				&Loop{Body: cp("e", "f")},
			}}},
		}}},
	}})
	bothViews(t, g, func(t *testing.T, x *StructIndex) {
		checkRPOTopological(t, x)
		if len(x.Regions) != 3 || x.MaxDepth != 3 {
			t.Fatalf("regions = %d, MaxDepth = %d, want 3 and 3", len(x.Regions), x.MaxDepth)
		}
		byDepth := map[int]*Region{}
		for _, r := range x.Regions {
			byDepth[r.Depth] = r
		}
		for d := 1; d <= 3; d++ {
			if byDepth[d] == nil {
				t.Fatalf("no region at depth %d", d)
			}
			if !byDepth[d].Memoizable {
				t.Errorf("depth-%d region not memoizable", d)
			}
		}
		if byDepth[3].Parent != byDepth[2].ID || byDepth[2].Parent != byDepth[1].ID {
			t.Errorf("parent chain broken: %+v", x.Regions)
		}
		if byDepth[1].Parent != -1 {
			t.Errorf("outermost region has parent %d", byDepth[1].Parent)
		}
		// Inner members are members of the outer region too.
		outer := map[int]bool{}
		for _, n := range byDepth[1].AllNodes {
			outer[n] = true
		}
		for _, n := range byDepth[3].AllNodes {
			if !outer[n] {
				t.Errorf("depth-3 node %d missing from outermost AllNodes", n)
			}
		}
		// Innermost header must be the deepest of the three headers.
		if x.Depth[byDepth[3].Header] != 3 {
			t.Errorf("Depth[innermost header] = %d, want 3", x.Depth[byDepth[3].Header])
		}
	})
}

func TestStructIndexLoopWithCall(t *testing.T) {
	g := structProgram(&Seq{Cmds: []Cmd{
		&Loop{Body: &Seq{Cmds: []Cmd{cp("a", "b"), &Call{Callee: "util"}}}},
	}})
	bothViews(t, g, func(t *testing.T, x *StructIndex) {
		checkRPOTopological(t, x)
		if len(x.Regions) != 1 {
			t.Fatalf("regions = %d, want 1", len(x.Regions))
		}
		r := x.Regions[0]
		if !r.HasCall || r.Memoizable {
			t.Errorf("HasCall=%v Memoizable=%v, want true,false", r.HasCall, r.Memoizable)
		}
		if x.MemoHeader[r.Header] != -1 {
			t.Errorf("MemoHeader set for call-bearing region")
		}
		if x.MemoizableRegions != 0 {
			t.Errorf("MemoizableRegions = %d, want 0", x.MemoizableRegions)
		}
	})
}

func TestStructIndexBranchNoLoops(t *testing.T) {
	g := structProgram(&Choice{Alts: []Cmd{cp("a", "b"), cp("c", "d"), cp("e", "f")}})
	bothViews(t, g, func(t *testing.T, x *StructIndex) {
		checkRPOTopological(t, x)
		if len(x.Regions) != 0 || x.MaxDepth != 0 {
			t.Fatalf("regions = %d, MaxDepth = %d, want none", len(x.Regions), x.MaxDepth)
		}
		for _, n := range g.AllNodes {
			if x.RegionOf[n.ID] != -1 {
				t.Errorf("node %d assigned region %d in loop-free program", n.ID, x.RegionOf[n.ID])
			}
		}
	})
}

func TestStructIndexSelfLoop(t *testing.T) {
	// An empty loop body lowers to a single self edge head->head.
	g := structProgram(&Seq{Cmds: []Cmd{cp("a", "b"), &Loop{Body: &Seq{}}, cp("b", "c")}})
	bothViews(t, g, func(t *testing.T, x *StructIndex) {
		checkRPOTopological(t, x)
		if len(x.Regions) != 1 {
			t.Fatalf("regions = %d, want 1", len(x.Regions))
		}
		r := x.Regions[0]
		if len(r.ViewNodes) != 1 || r.ViewNodes[0] != r.Header {
			t.Errorf("self-loop region nodes = %v, want just the header %d", r.ViewNodes, r.Header)
		}
		if !r.Memoizable {
			t.Errorf("self-loop region not memoizable")
		}
	})
}
