package ir

// This file builds the solver-facing views of a CFG. The original
// node/edge graph (cfg.go) stays untouched — the interpreter, checkers and
// diagnostics keep walking it — while the tabulation solver traverses a
// CFGView: either a raw view with one superedge per original edge, or a
// compressed view in which maximal chains of single-predecessor/
// single-successor primitive edges are collapsed into one superedge
// carrying the whole primitive sequence. Compression lets the solver pay
// one worklist item per straight-line region instead of one per edge, and
// gives the transfer-memoization layer a coarse unit to cache.

// SuperEdge is one traversal unit of a CFGView: either a single call edge
// (never compressed) or a chain of one or more primitive edges.
type SuperEdge struct {
	// ID is dense over the view: [0, CFGView.NumSuperEdges). Solvers index
	// per-superedge caches by it.
	ID   int
	From *Node
	To   *Node
	// Call is the callee name for call edges, "" for primitive chains.
	Call string
	// Prims is the primitive sequence along the chain, in execution order;
	// nil for call edges.
	Prims []*Prim
	// Interior lists the original nodes the chain passes through:
	// Interior[i] is the node reached after executing Prims[i], so
	// len(Interior) == len(Prims)-1. Empty for single-edge superedges.
	Interior []*Node
	// Edges lists the underlying original edges in execution order, so
	// diagnostics can map a superedge back to the source graph.
	Edges []*Edge
}

// IsCall reports whether the superedge is a procedure-call edge.
func (e *SuperEdge) IsCall() bool { return e.Call != "" }

// Len returns the number of original edges the superedge covers.
func (e *SuperEdge) Len() int { return len(e.Edges) }

// CFGView is a traversal overlay on a CFG: per-node outgoing superedges.
// Node IDs, entry/exit designations and the original graph are shared with
// the underlying CFG.
type CFGView struct {
	CFG *CFG
	// Out lists the outgoing superedges per node ID, in the same relative
	// order as the node's original out-edges. Interior nodes of compressed
	// chains have no superedges: their facts are produced by the chain
	// walk, never popped from a worklist.
	Out [][]*SuperEdge
	// Interior reports, per node ID, whether the node was swallowed into a
	// compressed chain.
	Interior []bool
	// NumSuperEdges is the total superedge count; superedge IDs range over
	// [0, NumSuperEdges).
	NumSuperEdges int
	// Compressed records which constructor built the view.
	Compressed bool
}

// RawView builds the one-superedge-per-edge view: traversing it is
// step-for-step identical to walking the original graph, which is what the
// order-sensitive hybrid engines require (see DESIGN.md).
func RawView(g *CFG) *CFGView {
	v := &CFGView{
		CFG:      g,
		Out:      make([][]*SuperEdge, g.NodeCount),
		Interior: make([]bool, g.NodeCount),
	}
	for _, n := range g.AllNodes {
		if len(n.Out) == 0 {
			continue
		}
		out := make([]*SuperEdge, len(n.Out))
		for i, e := range n.Out {
			se := &SuperEdge{
				ID:    v.NumSuperEdges,
				From:  n,
				To:    e.To,
				Call:  e.Call,
				Edges: []*Edge{e},
			}
			if !e.IsCall() {
				se.Prims = []*Prim{e.Prim}
			}
			v.NumSuperEdges++
			out[i] = se
		}
		v.Out[n.ID] = out
	}
	return v
}

// CompressedView builds the superblock view: maximal chains of primitive
// edges through interior nodes are collapsed into single superedges. A
// node is interior when it is neither the entry nor the exit of its
// procedure, has exactly one incoming and one outgoing edge, both
// primitive (calls are never compressed: the solver must intercept them),
// and neither edge is a self-loop. Entry and exit nodes always remain
// traversal points, so summary recording and seeding are untouched; every
// chain therefore begins and ends at a non-interior node, and a chain may
// legally return to its own start (a loop whose body is straight-line).
func CompressedView(g *CFG) *CFGView {
	v := &CFGView{
		CFG:        g,
		Out:        make([][]*SuperEdge, g.NodeCount),
		Interior:   make([]bool, g.NodeCount),
		Compressed: true,
	}
	for _, pc := range g.ByProc {
		for _, n := range pc.Nodes {
			v.Interior[n.ID] = n != pc.Entry && n != pc.Exit &&
				len(n.In) == 1 && len(n.Out) == 1 &&
				!n.In[0].IsCall() && !n.Out[0].IsCall() &&
				n.In[0].From != n && n.Out[0].To != n
		}
	}
	for _, n := range g.AllNodes {
		if v.Interior[n.ID] || len(n.Out) == 0 {
			continue
		}
		out := make([]*SuperEdge, len(n.Out))
		for i, e := range n.Out {
			se := &SuperEdge{ID: v.NumSuperEdges, From: n, Call: e.Call}
			v.NumSuperEdges++
			if e.IsCall() {
				se.To = e.To
				se.Edges = []*Edge{e}
				out[i] = se
				continue
			}
			// Extend the chain through interior nodes. Termination: every
			// step leaves via an interior node's single out-edge, and a
			// cycle made purely of interior nodes cannot be entered (its
			// nodes would need a second in-edge), so the walk reaches a
			// non-interior node.
			se.Prims = []*Prim{e.Prim}
			se.Edges = []*Edge{e}
			cur := e.To
			for v.Interior[cur.ID] {
				next := cur.Out[0]
				se.Interior = append(se.Interior, cur)
				se.Prims = append(se.Prims, next.Prim)
				se.Edges = append(se.Edges, next)
				cur = next.To
			}
			se.To = cur
			out[i] = se
		}
		v.Out[n.ID] = out
	}
	return v
}
