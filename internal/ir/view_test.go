package ir

import "testing"

// progOf wraps a single main body into a program.
func progOf(t *testing.T, body Cmd) *CFG {
	t.Helper()
	p := NewProgram("main")
	p.Add(&Proc{Name: "main", Body: body})
	return BuildCFG(p)
}

// checkViewInvariants asserts the structural contract every view must
// satisfy: each original out-edge of each non-interior node is covered by
// exactly one superedge, chains are contiguous, interior nodes are
// single-in/single-out non-entry/exit nodes with no superedges of their
// own, and superedge IDs are dense.
func checkViewInvariants(t *testing.T, g *CFG, v *CFGView) {
	t.Helper()
	covered := map[*Edge]int{}
	ids := map[int]bool{}
	for _, n := range g.AllNodes {
		for _, se := range v.Out[n.ID] {
			if se.From != n {
				t.Errorf("superedge %d listed at node %d but From=%d", se.ID, n.ID, se.From.ID)
			}
			if ids[se.ID] {
				t.Errorf("duplicate superedge ID %d", se.ID)
			}
			ids[se.ID] = true
			if se.ID < 0 || se.ID >= v.NumSuperEdges {
				t.Errorf("superedge ID %d out of range [0,%d)", se.ID, v.NumSuperEdges)
			}
			for _, e := range se.Edges {
				covered[e]++
			}
			if se.IsCall() {
				if len(se.Edges) != 1 || len(se.Prims) != 0 || len(se.Interior) != 0 {
					t.Errorf("call superedge %d compressed: %d edges", se.ID, len(se.Edges))
				}
				continue
			}
			if len(se.Prims) != len(se.Edges) || len(se.Interior) != len(se.Prims)-1 {
				t.Errorf("superedge %d shape: %d prims, %d edges, %d interior",
					se.ID, len(se.Prims), len(se.Edges), len(se.Interior))
			}
			cur := se.From
			for i, e := range se.Edges {
				if e.From != cur {
					t.Errorf("superedge %d not contiguous at position %d", se.ID, i)
				}
				if e.Prim != se.Prims[i] {
					t.Errorf("superedge %d prim mismatch at position %d", se.ID, i)
				}
				if i < len(se.Interior) && se.Interior[i] != e.To {
					t.Errorf("superedge %d interior mismatch at position %d", se.ID, i)
				}
				cur = e.To
			}
			if cur != se.To {
				t.Errorf("superedge %d ends at node %d, To=%d", se.ID, cur.ID, se.To.ID)
			}
			if v.Interior[se.To.ID] {
				t.Errorf("superedge %d targets interior node %d", se.ID, se.To.ID)
			}
		}
	}
	for _, pc := range g.ByProc {
		for _, n := range pc.Nodes {
			if !v.Interior[n.ID] {
				continue
			}
			if n == pc.Entry || n == pc.Exit {
				t.Errorf("entry/exit node %d marked interior", n.ID)
			}
			if len(n.In) != 1 || len(n.Out) != 1 {
				t.Errorf("interior node %d has %d in, %d out edges", n.ID, len(n.In), len(n.Out))
			}
			if n.In[0].IsCall() || n.Out[0].IsCall() {
				t.Errorf("interior node %d touches a call edge", n.ID)
			}
			if len(v.Out[n.ID]) != 0 {
				t.Errorf("interior node %d has its own superedges", n.ID)
			}
		}
	}
	// Every original edge of a view must be covered exactly once.
	for _, n := range g.AllNodes {
		for _, e := range n.Out {
			if covered[e] != 1 {
				t.Errorf("edge %d->%d (%s) covered %d times", e.From.ID, e.To.ID, e.Label(), covered[e])
			}
		}
	}
}

func nopSeq(n int) *Seq {
	cmds := make([]Cmd, n)
	for i := range cmds {
		cmds[i] = &Prim{Kind: Nop}
	}
	return &Seq{Cmds: cmds}
}

func TestRawViewMirrorsEdges(t *testing.T) {
	g := progOf(t, &Seq{Cmds: []Cmd{
		nopSeq(3),
		&Choice{Alts: []Cmd{&Prim{Kind: Nop}, nopSeq(2)}},
		&Loop{Body: &Prim{Kind: Nop}},
	}})
	v := RawView(g)
	checkViewInvariants(t, g, v)
	edges := 0
	for _, n := range g.AllNodes {
		if len(v.Out[n.ID]) != len(n.Out) {
			t.Errorf("node %d: %d superedges, %d edges", n.ID, len(v.Out[n.ID]), len(n.Out))
		}
		for i, se := range v.Out[n.ID] {
			if se.Len() != 1 || se.Edges[0] != n.Out[i] {
				t.Errorf("node %d superedge %d is not the matching single edge", n.ID, i)
			}
		}
		edges += len(n.Out)
	}
	if v.NumSuperEdges != edges {
		t.Errorf("NumSuperEdges = %d, want %d", v.NumSuperEdges, edges)
	}
	for id, in := range v.Interior {
		if in {
			t.Errorf("raw view marked node %d interior", id)
		}
	}
}

// TestCompressedStraightLine: a straight-line body collapses to a single
// entry→exit superedge swallowing every intermediate node.
func TestCompressedStraightLine(t *testing.T) {
	g := progOf(t, nopSeq(5))
	v := CompressedView(g)
	checkViewInvariants(t, g, v)
	pc := g.ByProc["main"]
	out := v.Out[pc.Entry.ID]
	if len(out) != 1 {
		t.Fatalf("entry has %d superedges, want 1", len(out))
	}
	se := out[0]
	if se.To != pc.Exit || se.Len() != 5 || len(se.Interior) != 4 {
		t.Errorf("chain = %d edges, %d interior, to exit=%v", se.Len(), len(se.Interior), se.To == pc.Exit)
	}
	if v.NumSuperEdges != 1 {
		t.Errorf("NumSuperEdges = %d, want 1", v.NumSuperEdges)
	}
}

// TestCompressedSingleEdgeProc: a one-command body (entry and exit
// adjacent) has nothing to compress.
func TestCompressedSingleEdgeProc(t *testing.T) {
	g := progOf(t, &Prim{Kind: Nop})
	v := CompressedView(g)
	checkViewInvariants(t, g, v)
	pc := g.ByProc["main"]
	out := v.Out[pc.Entry.ID]
	if len(out) != 1 || out[0].Len() != 1 || out[0].To != pc.Exit {
		t.Fatalf("single-edge proc compressed incorrectly: %+v", out)
	}
}

// TestCompressedSelfLoop: a loop head's back edge is a self-loop once the
// body is a single command; the head must stay a traversal point.
func TestCompressedSelfLoop(t *testing.T) {
	g := progOf(t, &Loop{Body: &Prim{Kind: Nop}})
	v := CompressedView(g)
	checkViewInvariants(t, g, v)
	for _, n := range g.AllNodes {
		for _, e := range n.Out {
			if e.From == e.To && v.Interior[e.From.ID] {
				t.Errorf("self-loop node %d marked interior", e.From.ID)
			}
		}
	}
}

// TestCompressedLoopBodyChain: a loop whose body is straight-line yields a
// chain that starts and ends at the loop head.
func TestCompressedLoopBodyChain(t *testing.T) {
	g := progOf(t, &Loop{Body: nopSeq(4)})
	v := CompressedView(g)
	checkViewInvariants(t, g, v)
	found := false
	for _, n := range g.AllNodes {
		for _, se := range v.Out[n.ID] {
			if se.From == se.To && se.Len() == 4 {
				found = true
			}
		}
	}
	if !found {
		t.Error("loop body chain back to its head not compressed")
	}
}

// TestCompressedCallAdjacentChains: calls are never swallowed; the chains
// on either side stop at the call's endpoints.
func TestCompressedCallAdjacentChains(t *testing.T) {
	p := NewProgram("main")
	p.Add(&Proc{Name: "callee", Body: &Prim{Kind: Nop}})
	p.Add(&Proc{Name: "main", Body: &Seq{Cmds: []Cmd{
		nopSeq(3), &Call{Callee: "callee"}, nopSeq(3),
	}}})
	g := BuildCFG(p)
	v := CompressedView(g)
	checkViewInvariants(t, g, v)
	calls := 0
	for _, n := range g.AllNodes {
		for _, se := range v.Out[n.ID] {
			if se.IsCall() {
				calls++
				if v.Interior[se.From.ID] || v.Interior[se.To.ID] {
					t.Error("call endpoint swallowed into a chain")
				}
			}
		}
	}
	if calls != 1 {
		t.Errorf("found %d call superedges, want 1", calls)
	}
	// The two flanking chains must each have been compressed to one
	// superedge of length 3.
	pc := g.ByProc["main"]
	if out := v.Out[pc.Entry.ID]; len(out) != 1 || out[0].Len() != 3 {
		t.Errorf("pre-call chain not compressed: %d superedges", len(v.Out[pc.Entry.ID]))
	}
}

// TestCompressedBranchJoinStaysUncompressed: nodes with two predecessors
// or two successors are never interior.
func TestCompressedBranchJoinStaysUncompressed(t *testing.T) {
	g := progOf(t, &Seq{Cmds: []Cmd{
		&Choice{Alts: []Cmd{nopSeq(2), &Prim{Kind: Nop}}},
		nopSeq(2),
	}})
	v := CompressedView(g)
	checkViewInvariants(t, g, v)
	for _, n := range g.AllNodes {
		if (len(n.In) > 1 || len(n.Out) > 1) && v.Interior[n.ID] {
			t.Errorf("branch/join node %d marked interior", n.ID)
		}
	}
}
