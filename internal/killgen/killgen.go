// Package killgen implements the kill/gen analysis family of Section 5.2
// of the paper, together with the automatic synthesis of a bottom-up
// analysis from a top-down one that the section describes.
//
// A kill/gen analysis is specified per primitive command as a list of
// guarded cases: a case fires when the incoming fact set contains all of
// Pos and none of Neg, and transforms the fact set s to (s ∧ Keep) ∨ Gen.
// From that top-down description alone, this package derives the entire
// bottom-up side — abstract relations, rtrans, rcomp, wp — generically:
// relations are guarded kill/gen transformers themselves, and guards are
// pulled back through Keep/Gen algebraically. Conditions C1–C3 hold by
// construction (and are property-tested).
//
// The resulting client plugs into the SWIFT framework exactly like the
// type-state client, demonstrating the framework's genericity; package-
// level taint analysis (taint.go) is the concrete instantiation.
package killgen

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"swift/internal/ir"
)

// Bits is a fixed-width bit vector of analysis facts. All Bits values of
// one Analysis have the same word count.
type Bits []uint64

// has reports whether fact i is set.
func (b Bits) has(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// set sets fact i.
func (b Bits) set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// containsAll reports a ⊇ b.
func containsAll(a, b Bits) bool {
	for i := range a {
		if b[i]&^a[i] != 0 {
			return false
		}
	}
	return true
}

// disjoint reports a ∩ b = ∅.
func disjoint(a, b Bits) bool {
	for i := range a {
		if a[i]&b[i] != 0 {
			return false
		}
	}
	return true
}

// Case is one guarded kill/gen case of a transfer function: if the incoming
// fact set contains all of Pos and none of Neg, the outgoing fact set is
// (in ∧ Keep) ∨ Gen.
type Case struct {
	Pos  Bits
	Neg  Bits
	Keep Bits
	Gen  Bits
}

// Spec supplies the guarded cases of each primitive command — the complete
// top-down description of a kill/gen analysis.
type Spec func(c *ir.Prim) []Case

// Analysis implements core.Client for a kill/gen analysis. States,
// relations and preconditions are encoded as canonical byte strings (they
// need a total order for the framework's canonical sets):
//
//	S = facts,  R = (Pos, Neg, Keep, Gen),  P = (Pos, Neg).
type Analysis struct {
	nwords int
	nfacts int
	names  []string
	index  map[string]int
	spec   Spec
}

// NewAnalysis creates a kill/gen analysis over the given fact names with
// the given per-command specification. The Spec may capture the returned
// Analysis to build Bits values (via MakeBits) lazily.
func NewAnalysis(facts []string) *Analysis {
	a := &Analysis{
		nfacts: len(facts),
		nwords: (len(facts) + 63) / 64,
		names:  append([]string(nil), facts...),
		index:  map[string]int{},
	}
	if a.nwords == 0 {
		a.nwords = 1
	}
	for i, f := range facts {
		a.index[f] = i
	}
	return a
}

// SetSpec installs the transfer-function specification.
func (a *Analysis) SetSpec(s Spec) { a.spec = s }

// ConcurrentClient marks the analysis as safe for concurrent use without
// external locking, so core.Synchronized leaves it unwrapped. The Analysis
// itself holds no runtime-mutable state — states, relations and
// preconditions are plain encoded strings — so thread safety reduces to
// the installed Spec being safe; the in-tree Taint and Nullness specs
// precompute their case tables during construction and are read-only
// afterwards. Specs that memoize lazily must not be used with the
// concurrent engine.
func (a *Analysis) ConcurrentClient() {}

// NumFacts returns the number of facts.
func (a *Analysis) NumFacts() int { return a.nfacts }

// FactNames returns the fact names in index order.
func (a *Analysis) FactNames() []string { return a.names }

// MakeBits builds a Bits value with the named facts set; unknown names
// panic (the spec is trusted code).
func (a *Analysis) MakeBits(facts ...string) Bits {
	b := make(Bits, a.nwords)
	for _, f := range facts {
		i, ok := a.index[f]
		if !ok {
			panic(fmt.Sprintf("killgen: unknown fact %q", f))
		}
		b.set(i)
	}
	return b
}

// Full returns the all-ones fact set (the identity Keep mask).
func (a *Analysis) Full() Bits {
	b := make(Bits, a.nwords)
	for i := 0; i < a.nfacts; i++ {
		b.set(i)
	}
	return b
}

// ---- encodings ----

func (a *Analysis) encBits(bs ...Bits) string {
	buf := make([]byte, 0, 8*a.nwords*len(bs))
	var w [8]byte
	for _, b := range bs {
		for _, word := range b {
			binary.LittleEndian.PutUint64(w[:], word)
			buf = append(buf, w[:]...)
		}
	}
	return string(buf)
}

func (a *Analysis) decBits(s string, n int) []Bits {
	out := make([]Bits, n)
	off := 0
	for i := range out {
		b := make(Bits, a.nwords)
		for w := range b {
			b[w] = binary.LittleEndian.Uint64([]byte(s[off : off+8]))
			off += 8
		}
		out[i] = b
	}
	return out
}

// State encodes a fact set as a framework state.
func (a *Analysis) State(b Bits) string { return a.encBits(b) }

// StateBits decodes a framework state.
func (a *Analysis) StateBits(s string) Bits { return a.decBits(s, 1)[0] }

// StateString renders a state's facts for diagnostics.
func (a *Analysis) StateString(s string) string {
	b := a.StateBits(s)
	var facts []string
	for i := 0; i < a.nfacts; i++ {
		if b.has(i) {
			facts = append(facts, a.names[i])
		}
	}
	sort.Strings(facts)
	return "{" + strings.Join(facts, ",") + "}"
}

func (a *Analysis) relOf(pos, neg, keep, gen Bits) string { return a.encBits(pos, neg, keep, gen) }

// ---- core.Client implementation (S = R-encoded strings) ----

// Trans implements core.Client: every case whose guard matches fires.
func (a *Analysis) Trans(c *ir.Prim, s string) []string {
	in := a.StateBits(s)
	var out []string
	for _, cs := range a.spec(c) {
		if !containsAll(in, cs.Pos) || !disjoint(in, cs.Neg) {
			continue
		}
		res := make(Bits, a.nwords)
		for w := range res {
			res[w] = (in[w] & cs.Keep[w]) | cs.Gen[w]
		}
		out = append(out, a.State(res))
	}
	return out
}

// Identity implements core.Client.
func (a *Analysis) Identity() string {
	zero := make(Bits, a.nwords)
	return a.relOf(zero, zero, a.Full(), zero)
}

// RTrans implements core.Client: compose every feasible case of the
// command onto the relation, pulling the case guard back through the
// relation's Keep/Gen masks.
func (a *Analysis) RTrans(c *ir.Prim, r string) []string {
	parts := a.decBits(r, 4)
	pos, neg, keep, gen := parts[0], parts[1], parts[2], parts[3]
	var out []string
	for _, cs := range a.spec(c) {
		comp, ok := a.composeCase(pos, neg, keep, gen, cs)
		if ok {
			out = append(out, comp)
		}
	}
	return out
}

// composeCase computes (r ; case) with guard weakest-precondition, or
// ok=false when infeasible. For each fact f required positive by the case:
// if r generates f the requirement is discharged; if r keeps f it becomes a
// requirement on r's input; otherwise the composition is void — and dually
// for negative requirements.
func (a *Analysis) composeCase(pos, neg, keep, gen Bits, cs Case) (string, bool) {
	pos2 := append(Bits(nil), pos...)
	neg2 := append(Bits(nil), neg...)
	for w := range pos2 {
		needPos := cs.Pos[w]
		if needPos&^(gen[w]|keep[w]) != 0 {
			return "", false // required fact that r can neither keep nor gen
		}
		pos2[w] |= needPos &^ gen[w] // keep-routed requirements fall on the input
		needNeg := cs.Neg[w]
		if needNeg&gen[w] != 0 {
			return "", false // r always generates a fact the case forbids
		}
		neg2[w] |= needNeg & keep[w]
	}
	for w := range pos2 {
		if pos2[w]&neg2[w] != 0 {
			return "", false
		}
	}
	keep2 := make(Bits, a.nwords)
	gen2 := make(Bits, a.nwords)
	for w := range keep2 {
		keep2[w] = keep[w] & cs.Keep[w]
		gen2[w] = (gen[w] & cs.Keep[w]) | cs.Gen[w]
	}
	return a.relOf(pos2, neg2, keep2, gen2), true
}

// RComp implements core.Client.
func (a *Analysis) RComp(r1, r2 string) []string {
	p1 := a.decBits(r1, 4)
	p2 := a.decBits(r2, 4)
	comp, ok := a.composeCase(p1[0], p1[1], p1[2], p1[3],
		Case{Pos: p2[0], Neg: p2[1], Keep: p2[2], Gen: p2[3]})
	if !ok {
		return nil
	}
	return []string{comp}
}

// Applies implements core.Client.
func (a *Analysis) Applies(r string, s string) bool {
	parts := a.decBits(r, 4)
	in := a.StateBits(s)
	return containsAll(in, parts[0]) && disjoint(in, parts[1])
}

// Apply implements core.Client.
func (a *Analysis) Apply(r string, s string) []string {
	parts := a.decBits(r, 4)
	in := a.StateBits(s)
	res := make(Bits, a.nwords)
	for w := range res {
		res[w] = (in[w] & parts[2][w]) | parts[3][w]
	}
	return []string{a.State(res)}
}

// PreOf implements core.Client: the guard (Pos, Neg).
func (a *Analysis) PreOf(r string) string {
	parts := a.decBits(r, 4)
	return a.encBits(parts[0], parts[1])
}

// PreHolds implements core.Client.
func (a *Analysis) PreHolds(pre string, s string) bool {
	parts := a.decBits(pre, 2)
	in := a.StateBits(s)
	return containsAll(in, parts[0]) && disjoint(in, parts[1])
}

// PreImplies implements core.Client: guard p entails guard q when p's
// requirements include q's.
func (a *Analysis) PreImplies(p, q string) bool {
	pp := a.decBits(p, 2)
	qq := a.decBits(q, 2)
	return containsAll(pp[0], qq[0]) && containsAll(pp[1], qq[1])
}

// Reduce implements core.Client: drop relations with the same Keep/Gen
// masks whose guard is strictly stronger than another's.
func (a *Analysis) Reduce(rels []string) []string {
	if len(rels) < 2 {
		return rels
	}
	guardLen := 2 * 8 * a.nwords
	groups := map[string][]string{}
	var order []string
	for _, r := range rels {
		k := r[guardLen:]
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], r)
	}
	out := make([]string, 0, len(rels))
	for _, k := range order {
		g := groups[k]
		for _, r := range g {
			rr := a.decBits(r, 2)
			dominated := false
			for _, s := range g {
				if s == r {
					continue
				}
				ss := a.decBits(s, 2)
				if containsAll(rr[0], ss[0]) && containsAll(rr[1], ss[1]) &&
					(a.encBits(rr[0], rr[1]) != a.encBits(ss[0], ss[1])) {
					dominated = true
					break
				}
			}
			if !dominated {
				out = append(out, r)
			}
		}
	}
	return out
}

// WPre implements core.Client: pull a guard back through a relation.
func (a *Analysis) WPre(r string, post string) []string {
	parts := a.decBits(r, 4)
	pq := a.decBits(post, 2)
	comp, ok := a.composeCase(parts[0], parts[1], parts[2], parts[3],
		Case{Pos: pq[0], Neg: pq[1], Keep: a.Full(), Gen: make(Bits, a.nwords)})
	if !ok {
		return nil
	}
	cp := a.decBits(comp, 4)
	return []string{a.encBits(cp[0], cp[1])}
}

// ---- common case constructors ----

// IdentityCase returns the unguarded no-op case.
func (a *Analysis) IdentityCase() Case {
	z := make(Bits, a.nwords)
	return Case{Pos: z, Neg: z, Keep: a.Full(), Gen: z}
}

// TransferCase returns the two cases of "dst gets the fact-status of src":
// one guarded on src being set (gen dst), one on src being clear (kill
// dst). This is the conditional kill/gen pattern of Section 5.2.
func (a *Analysis) TransferCase(dst, src string) []Case {
	z := make(Bits, a.nwords)
	keepNoDst := a.Full()
	keepNoDst[a.index[dst]>>6] &^= 1 << (uint(a.index[dst]) & 63)
	return []Case{
		{Pos: a.MakeBits(src), Neg: z, Keep: a.Full(), Gen: a.MakeBits(dst)},
		{Pos: z, Neg: a.MakeBits(src), Keep: keepNoDst, Gen: z},
	}
}

// GenCase unconditionally generates the facts.
func (a *Analysis) GenCase(facts ...string) Case {
	z := make(Bits, a.nwords)
	return Case{Pos: z, Neg: z, Keep: a.Full(), Gen: a.MakeBits(facts...)}
}

// KillCase unconditionally kills the facts.
func (a *Analysis) KillCase(facts ...string) Case {
	z := make(Bits, a.nwords)
	keep := a.Full()
	for _, f := range facts {
		i := a.index[f]
		keep[i>>6] &^= 1 << (uint(i) & 63)
	}
	return Case{Pos: z, Neg: z, Keep: keep, Gen: z}
}

// CondGenCase generates the gen facts when the single guard fact is
// present, and is an identity otherwise. The guard is a single fact so the
// two cases partition the state space exactly.
func (a *Analysis) CondGenCase(pos string, gen []string) []Case {
	z := make(Bits, a.nwords)
	return []Case{
		{Pos: a.MakeBits(pos), Neg: z, Keep: a.Full(), Gen: a.MakeBits(gen...)},
		{Pos: z, Neg: a.MakeBits(pos), Keep: a.Full(), Gen: z},
	}
}
