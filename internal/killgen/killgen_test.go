package killgen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"swift/internal/core"
	"swift/internal/ir"
)

// taintFixture builds a small lowered-style program and its taint client.
func taintFixture() (*ir.Program, *Taint, []*ir.Prim) {
	prims := []*ir.Prim{
		{Kind: ir.Nop},
		{Kind: ir.New, Dst: "a", Site: "src1"},
		{Kind: ir.New, Dst: "b", Site: "clean1"},
		{Kind: ir.Copy, Dst: "b", Src: "a"},
		{Kind: ir.Copy, Dst: "c", Src: "b"},
		{Kind: ir.Copy, Dst: "a", Src: "c"},
		{Kind: ir.Store, Dst: "b", Field: "f", Src: "a"},
		{Kind: ir.Load, Dst: "c", Src: "b", Field: "f"},
		{Kind: ir.TSCall, Dst: "c", Method: "write"},
		{Kind: ir.TSCall, Dst: "a", Method: "clean"},
		{Kind: ir.TSCall, Dst: "b", Method: "log"},
		{Kind: ir.Kill, Dst: "c"},
	}
	body := make([]ir.Cmd, len(prims))
	for i, p := range prims {
		body[i] = p
	}
	prog := ir.NewProgram("main")
	prog.Add(&ir.Proc{Name: "main", Body: &ir.Seq{Cmds: body}})
	t := NewTaint(prog, TaintConfig{
		Sources:    []string{"src1"},
		Sanitizers: []string{"clean"},
		Sinks:      []string{"write"},
	})
	return prog, t, prims
}

// randomBits draws an arbitrary fact set.
func randomBits(rng *rand.Rand, t *Taint) string {
	b := make(Bits, t.nwords)
	for i := 0; i < t.nfacts; i++ {
		if rng.Intn(3) == 0 {
			b.set(i)
		}
	}
	return t.State(b)
}

func taintPool(rng *rand.Rand, t *Taint, prims []*ir.Prim, size int) []string {
	pool := []string{t.Identity()}
	seen := map[string]bool{pool[0]: true}
	for len(pool) < size {
		r := pool[rng.Intn(len(pool))]
		var outs []string
		if rng.Intn(2) == 0 {
			outs = t.RTrans(prims[rng.Intn(len(prims))], r)
		} else {
			outs = t.RComp(r, pool[rng.Intn(len(pool))])
		}
		for _, o := range outs {
			if !seen[o] {
				seen[o] = true
				pool = append(pool, o)
			}
		}
	}
	return pool
}

// TestTaintConditions property-tests C1, C2, wp, dom and identity for the
// synthesized bottom-up analysis.
func TestTaintConditions(t *testing.T) {
	_, ta, prims := taintFixture()
	rng := rand.New(rand.NewSource(11))
	pool := taintPool(rng, ta, prims, 100)
	for i := 0; i < 4000; i++ {
		s := randomBits(rng, ta)
		r := pool[rng.Intn(len(pool))]
		prim := prims[rng.Intn(len(prims))]
		if err := core.CheckC1[string, string, string](ta, prim, r, s); err != nil {
			t.Fatalf("C1 iteration %d: %v", i, err)
		}
		r2 := pool[rng.Intn(len(pool))]
		if err := core.CheckC2[string, string, string](ta, r, r2, s); err != nil {
			t.Fatalf("C2 iteration %d: %v", i, err)
		}
		if err := core.CheckWPre[string, string, string](ta, r, ta.PreOf(r2), s); err != nil {
			t.Fatalf("WPre iteration %d: %v", i, err)
		}
		if err := core.CheckPre[string, string, string](ta, r, s); err != nil {
			t.Fatalf("Pre iteration %d: %v", i, err)
		}
		if err := core.CheckIdentity[string, string, string](ta, s); err != nil {
			t.Fatalf("Identity iteration %d: %v", i, err)
		}
	}
}

// TestBitsQuick property-tests the Bits primitives with testing/quick.
func TestBitsQuick(t *testing.T) {
	mk := func(x uint64) Bits { return Bits{x} }
	if err := quick.Check(func(x, y uint64) bool {
		return containsAll(mk(x|y), mk(y))
	}, nil); err != nil {
		t.Errorf("union contains operand: %v", err)
	}
	if err := quick.Check(func(x, y uint64) bool {
		return disjoint(mk(x&^y), mk(y&^x)) || x&y != 0 ||
			// x&^y and y&^x are always disjoint
			false
	}, nil); err != nil {
		t.Errorf("andnot disjoint: %v", err)
	}
	if err := quick.Check(func(x, y uint64) bool {
		// containsAll is antisymmetric up to equality
		if containsAll(mk(x), mk(y)) && containsAll(mk(y), mk(x)) {
			return x == y
		}
		return true
	}, nil); err != nil {
		t.Errorf("containsAll antisymmetry: %v", err)
	}
}

// taintProgram is an interprocedural taint scenario: helper procedures
// propagate taint through parameters; sanitizing on one path but not the
// other must alert.
func taintProgram() *ir.Program {
	prog := ir.NewProgram("main")
	prog.Add(&ir.Proc{Name: "emit", Body: &ir.Seq{Cmds: []ir.Cmd{
		&ir.Prim{Kind: ir.TSCall, Dst: "emit$x", Method: "write"},
	}}})
	prog.Add(&ir.Proc{Name: "scrub", Body: &ir.Seq{Cmds: []ir.Cmd{
		&ir.Prim{Kind: ir.TSCall, Dst: "scrub$x", Method: "clean"},
	}}})
	prog.Add(&ir.Proc{Name: "main", Body: &ir.Seq{Cmds: []ir.Cmd{
		&ir.Prim{Kind: ir.New, Dst: "t", Site: "src1"},
		&ir.Prim{Kind: ir.New, Dst: "u", Site: "clean1"},
		&ir.Choice{Alts: []ir.Cmd{
			// Path 1: sanitize then emit — no alert.
			&ir.Seq{Cmds: []ir.Cmd{
				&ir.Prim{Kind: ir.Copy, Dst: "scrub$x", Src: "t"},
				&ir.Call{Callee: "scrub"},
				&ir.Prim{Kind: ir.Copy, Dst: "emit$x", Src: "scrub$x"},
				&ir.Call{Callee: "emit"},
			}},
			// Path 2: emit the clean value — no alert.
			&ir.Seq{Cmds: []ir.Cmd{
				&ir.Prim{Kind: ir.Copy, Dst: "emit$x", Src: "u"},
				&ir.Call{Callee: "emit"},
			}},
			// Path 3: emit the tainted value — alert.
			&ir.Seq{Cmds: []ir.Cmd{
				&ir.Prim{Kind: ir.Copy, Dst: "emit$x", Src: "t"},
				&ir.Call{Callee: "emit"},
			}},
		}},
	}}})
	return prog
}

// TestTaintInterprocedural runs all three engines on the taint scenario and
// checks the alert verdicts coincide.
func TestTaintInterprocedural(t *testing.T) {
	prog := taintProgram()
	ta := NewTaint(prog, TaintConfig{
		Sources:    []string{"src1"},
		Sanitizers: []string{"clean"},
		Sinks:      []string{"write"},
	})
	an, err := core.NewAnalysis[string, string, string](ta, prog)
	if err != nil {
		t.Fatal(err)
	}
	init := ta.Initial()
	td := an.RunTD(init, core.TDConfig())
	cfg := core.DefaultConfig()
	cfg.K = 1
	sw := an.RunSwift(init, cfg)
	bu := an.RunBU(init, core.BUConfig())
	for name, res := range map[string]*core.Result[string, string, string]{
		"td": td, "swift": sw, "bu": bu,
	} {
		if !res.Completed() {
			t.Fatalf("%s: %v", name, res.Err)
		}
		exits := res.ExitStates("main", init)
		alerted, clean := false, false
		for _, s := range exits {
			if ta.Alerted(s) {
				alerted = true
			} else {
				clean = true
			}
		}
		if !alerted {
			t.Errorf("%s: expected an alerting path", name)
		}
		if !clean {
			t.Errorf("%s: expected a non-alerting path", name)
		}
		tdExits := td.ExitStates("main", init)
		if len(exits) != len(tdExits) {
			t.Errorf("%s: %d exit states, td %d", name, len(exits), len(tdExits))
		}
	}
}
