package killgen

import (
	"sort"
	"strings"

	"swift/internal/ir"
)

// Nullness is a second kill/gen instantiation: a definite-assignment
// analysis that flags method calls through possibly-unassigned (null)
// references. A variable fact means "definitely refers to an object";
// allocation establishes it, copies transfer it, field loads establish it
// only if the field fact says every stored value was definitely assigned
// (a field-insensitive merge, like the taint client), and a type-state
// call through a variable lacking the fact latches the NULLALERT fact.
//
// Like the taint client, only the top-down guarded kill/gen cases are
// written here; the bottom-up relational side is synthesized by the
// generic Analysis per Section 5.2 of the paper.
type Nullness struct {
	*Analysis
	memo map[string][]Case
}

// nullAlertFact is latched when a call through a possibly-null reference
// is observed.
const nullAlertFact = "NULLALERT"

// nnFieldFact is the per-field "all stored values definitely assigned"
// fact. It starts set (vacuously true before any store), so loads from a
// field only ever written with assigned values are assigned; a store of a
// possibly-null value clears it. Loads from never-written fields are thus
// treated optimistically — catching those would need per-field
// written-at-all facts, which this demonstration client omits.
func nnFieldFact(f string) string { return "nnfield:" + f }

// NewNullness builds the definite-assignment client for a lowered program.
func NewNullness(prog *ir.Program) *Nullness {
	vars := map[string]bool{}
	fields := map[string]bool{}
	var prims []*ir.Prim
	var walk func(c ir.Cmd)
	walk = func(c ir.Cmd) {
		switch c := c.(type) {
		case *ir.Prim:
			prims = append(prims, c)
			if c.Dst != "" {
				vars[c.Dst] = true
			}
			if c.Src != "" {
				vars[c.Src] = true
			}
			if c.Field != "" {
				fields[c.Field] = true
			}
		case *ir.Seq:
			for _, s := range c.Cmds {
				walk(s)
			}
		case *ir.Choice:
			for _, s := range c.Alts {
				walk(s)
			}
		case *ir.Loop:
			walk(c.Body)
		}
	}
	for _, name := range prog.ProcNames() {
		walk(prog.Procs[name].Body)
	}
	var facts []string
	for v := range vars {
		facts = append(facts, v)
	}
	for f := range fields {
		facts = append(facts, nnFieldFact(f))
	}
	sort.Strings(facts)
	facts = append(facts, nullAlertFact)
	n := &Nullness{Analysis: NewAnalysis(facts), memo: map[string][]Case{}}
	n.SetSpec(n.cases)
	// Freeze the memo before the client can be shared across goroutines
	// (the ConcurrentClient contract), as in NewTaint.
	for _, p := range prims {
		n.memo[p.Key()] = n.casesOf(p)
	}
	return n
}

// cases is the Spec; see Taint.cases for the read-only memo contract.
func (n *Nullness) cases(c *ir.Prim) []Case {
	if cs, ok := n.memo[c.Key()]; ok {
		return cs
	}
	return n.casesOf(c)
}

func (n *Nullness) casesOf(c *ir.Prim) []Case {
	var out []Case
	switch c.Kind {
	case ir.New:
		out = []Case{n.GenCase(c.Dst)}
	case ir.Copy:
		if c.Dst == c.Src {
			out = []Case{n.IdentityCase()}
		} else {
			out = n.TransferCase(c.Dst, c.Src)
		}
	case ir.Load:
		// The loaded value is definitely assigned only if every value ever
		// stored into the field was — and loading through a possibly-null
		// base is itself an alert.
		out = appendGuardAlert(n.Analysis, n.TransferCase(c.Dst, nnFieldFact(c.Field)), c.Src)
	case ir.Store:
		// The field keeps its "all assigned" fact only while every stored
		// value is assigned; storing through a possibly-null base alerts.
		z := make(Bits, n.nwords)
		keepNoField := n.Full()
		i := n.index[nnFieldFact(c.Field)]
		keepNoField[i>>6] &^= 1 << (uint(i) & 63)
		out = appendGuardAlert(n.Analysis, []Case{
			{Pos: n.MakeBits(c.Src), Neg: z, Keep: n.Full(), Gen: z},
			{Pos: z, Neg: n.MakeBits(c.Src), Keep: keepNoField, Gen: z},
		}, c.Dst)
	case ir.TSCall:
		out = appendGuardAlert(n.Analysis, []Case{n.IdentityCase()}, c.Dst)
	case ir.Kill:
		out = []Case{n.KillCase(c.Dst)}
	default:
		out = []Case{n.IdentityCase()}
	}
	return out
}

// appendGuardAlert splits every case on whether the dereferenced base is
// definitely assigned, latching the alert when it is not.
func appendGuardAlert(a *Analysis, cases []Case, base string) []Case {
	baseBit := a.MakeBits(base)
	alert := a.MakeBits(nullAlertFact)
	var out []Case
	for _, c := range cases {
		// base assigned: original effect.
		ok := c
		ok.Pos = orBits(c.Pos, baseBit)
		if !disjoint(ok.Pos, c.Neg) {
			continue
		}
		out = append(out, ok)
	}
	for _, c := range cases {
		// base possibly null: original effect plus the alert.
		bad := c
		bad.Neg = orBits(c.Neg, baseBit)
		if !disjoint(c.Pos, bad.Neg) {
			continue
		}
		bad.Gen = orBits(c.Gen, alert)
		out = append(out, bad)
	}
	return out
}

// orBits returns a fresh union of two bit vectors.
func orBits(a, b Bits) Bits {
	out := make(Bits, len(a))
	for i := range a {
		out[i] = a[i] | b[i]
	}
	return out
}

// Initial returns the entry state: no variable assigned, every field fact
// vacuously set.
func (n *Nullness) Initial() string {
	b := make(Bits, n.nwords)
	for i, name := range n.names {
		if strings.HasPrefix(name, "nnfield:") {
			b.set(i)
		}
	}
	return n.State(b)
}

// NullAlerted reports whether the state latched a possibly-null call.
func (n *Nullness) NullAlerted(s string) bool {
	return n.StateBits(s).has(n.index[nullAlertFact])
}

// AssignedVars lists the definitely-assigned variable facts of a state.
func (n *Nullness) AssignedVars(s string) []string {
	b := n.StateBits(s)
	var out []string
	for i := 0; i < n.nfacts; i++ {
		if !b.has(i) {
			continue
		}
		name := n.names[i]
		if name == nullAlertFact || strings.HasPrefix(name, "nnfield:") {
			continue
		}
		out = append(out, name)
	}
	return out
}
