package killgen

import (
	"math/rand"
	"testing"

	"swift/internal/core"
	"swift/internal/ir"
)

// nullnessProgram: branch A assigns before use (clean), branch B uses a
// maybe-unassigned variable (alert), and a helper checks interprocedural
// transfer of definite assignment.
func nullnessProgram() *ir.Program {
	prog := ir.NewProgram("main")
	prog.Add(&ir.Proc{Name: "use", Body: &ir.Seq{Cmds: []ir.Cmd{
		&ir.Prim{Kind: ir.TSCall, Dst: "use$x", Method: "ping"},
		&ir.Prim{Kind: ir.Kill, Dst: "use$x"},
	}}})
	prog.Add(&ir.Proc{Name: "main", Body: &ir.Seq{Cmds: []ir.Cmd{
		&ir.Choice{Alts: []ir.Cmd{
			&ir.Seq{Cmds: []ir.Cmd{
				&ir.Prim{Kind: ir.New, Dst: "a", Site: "s1"},
				&ir.Prim{Kind: ir.Copy, Dst: "use$x", Src: "a"},
				&ir.Call{Callee: "use"},
			}},
			&ir.Seq{Cmds: []ir.Cmd{
				// b was never assigned on this path.
				&ir.Prim{Kind: ir.Copy, Dst: "use$x", Src: "b"},
				&ir.Call{Callee: "use"},
			}},
		}},
	}}})
	return prog
}

func TestNullnessDetectsUnassignedUse(t *testing.T) {
	prog := nullnessProgram()
	nn := NewNullness(prog)
	an, err := core.NewAnalysis[string, string, string](nn, prog)
	if err != nil {
		t.Fatal(err)
	}
	init := nn.Initial()
	for _, engine := range []string{"td", "bu", "swift"} {
		var res *core.Result[string, string, string]
		switch engine {
		case "td":
			res = an.RunTD(init, core.TDConfig())
		case "bu":
			res = an.RunBU(init, core.BUConfig())
		default:
			cfg := core.DefaultConfig()
			cfg.K = 1
			res = an.RunSwift(init, cfg)
		}
		if !res.Completed() {
			t.Fatalf("%s: %v", engine, res.Err)
		}
		alert, clean := false, false
		for _, s := range res.ExitStates("main", init) {
			if nn.NullAlerted(s) {
				alert = true
			} else {
				clean = true
			}
		}
		if !alert {
			t.Errorf("%s: missed the unassigned use", engine)
		}
		if !clean {
			t.Errorf("%s: the assigned path should not alert", engine)
		}
	}
}

func TestNullnessFieldMerge(t *testing.T) {
	// A field written only with assigned values loads as assigned; a field
	// written with a maybe-null value poisons later loads.
	prog := ir.NewProgram("main")
	prog.Add(&ir.Proc{Name: "main", Body: &ir.Seq{Cmds: []ir.Cmd{
		&ir.Prim{Kind: ir.New, Dst: "o", Site: "s1"},
		&ir.Prim{Kind: ir.New, Dst: "v", Site: "s2"},
		&ir.Prim{Kind: ir.Store, Dst: "o", Field: "f", Src: "v"},
		&ir.Prim{Kind: ir.Load, Dst: "w", Src: "o", Field: "f"},
		&ir.Choice{Alts: []ir.Cmd{
			&ir.Prim{Kind: ir.Store, Dst: "o", Field: "f", Src: "q"}, // q unassigned
			&ir.Prim{Kind: ir.Nop},
		}},
		&ir.Prim{Kind: ir.Load, Dst: "z", Src: "o", Field: "f"},
		&ir.Prim{Kind: ir.TSCall, Dst: "z", Method: "ping"},
	}}})
	nn := NewNullness(prog)
	an, err := core.NewAnalysis[string, string, string](nn, prog)
	if err != nil {
		t.Fatal(err)
	}
	res := an.RunTD(nn.Initial(), core.TDConfig())
	if !res.Completed() {
		t.Fatal(res.Err)
	}
	sawWAssigned, sawAlert, sawClean := false, false, false
	for _, s := range res.ExitStates("main", nn.Initial()) {
		vars := nn.AssignedVars(s)
		for _, v := range vars {
			if v == "w" {
				sawWAssigned = true
			}
		}
		if nn.NullAlerted(s) {
			sawAlert = true
		} else {
			sawClean = true
		}
	}
	if !sawWAssigned {
		t.Error("w loaded from a cleanly-written field should be assigned")
	}
	if !sawAlert {
		t.Error("z.ping() after the poisoning store should alert on some path")
	}
	if !sawClean {
		t.Error("the nop path should stay clean")
	}
}

// TestNullnessConditions property-tests C1/C2/C3 for the nullness client —
// its cases use negative guards, exercising spec shapes the taint client
// does not.
func TestNullnessConditions(t *testing.T) {
	prog := nullnessProgram()
	nn := NewNullness(prog)
	prims := []*ir.Prim{
		{Kind: ir.New, Dst: "a", Site: "s1"},
		{Kind: ir.Copy, Dst: "b", Src: "a"},
		{Kind: ir.Copy, Dst: "use$x", Src: "b"},
		{Kind: ir.Load, Dst: "a", Src: "b", Field: "f"},
		{Kind: ir.Store, Dst: "b", Field: "f", Src: "a"},
		{Kind: ir.TSCall, Dst: "use$x", Method: "ping"},
		{Kind: ir.Kill, Dst: "a"},
		{Kind: ir.Nop},
	}
	// The prims must only mention program facts: extend the program walk's
	// universe by reusing its variables (a, b, use$x all occur; field f
	// must occur too — the Store/Load above add nothing to the universe,
	// so build a client over an extended program instead).
	ext := ir.NewProgram("main")
	ext.Add(prog.Procs["use"])
	ext.Add(&ir.Proc{Name: "main", Body: &ir.Seq{Cmds: []ir.Cmd{
		prog.Procs["main"].Body,
		&ir.Prim{Kind: ir.Store, Dst: "b", Field: "f", Src: "a"},
		&ir.Prim{Kind: ir.Load, Dst: "a", Src: "b", Field: "f"},
	}}})
	nn = NewNullness(ext)

	rng := rand.New(rand.NewSource(21))
	randState := func() string {
		b := make(Bits, nn.nwords)
		for i := 0; i < nn.nfacts; i++ {
			if rng.Intn(3) == 0 {
				b.set(i)
			}
		}
		return nn.State(b)
	}
	pool := []string{nn.Identity()}
	seen := map[string]bool{pool[0]: true}
	for len(pool) < 80 {
		r := pool[rng.Intn(len(pool))]
		var outs []string
		if rng.Intn(2) == 0 {
			outs = nn.RTrans(prims[rng.Intn(len(prims))], r)
		} else {
			outs = nn.RComp(r, pool[rng.Intn(len(pool))])
		}
		for _, o := range outs {
			if !seen[o] {
				seen[o] = true
				pool = append(pool, o)
			}
		}
	}
	for i := 0; i < 3000; i++ {
		s := randState()
		r := pool[rng.Intn(len(pool))]
		prim := prims[rng.Intn(len(prims))]
		if err := core.CheckC1[string, string, string](nn, prim, r, s); err != nil {
			t.Fatalf("C1 #%d: %v", i, err)
		}
		r2 := pool[rng.Intn(len(pool))]
		if err := core.CheckC2[string, string, string](nn, r, r2, s); err != nil {
			t.Fatalf("C2 #%d: %v", i, err)
		}
		if err := core.CheckWPre[string, string, string](nn, r, nn.PreOf(r2), s); err != nil {
			t.Fatalf("WPre #%d: %v", i, err)
		}
	}
}
