package killgen

import (
	"reflect"
	"testing"

	"swift/internal/ir"
)

// The solvers in internal/core memoize Trans per superedge chain and RTrans
// per primitive (the transfer memo introduced with the superblock-compressed
// CFG view). That is only sound if the transfer functions are pure: the
// result for a given (primitive, input) pair must not depend on when the
// call happens, how often, or what other transfers ran in between. The
// kill/gen clients are the ones served by the generic memo path (the
// type-state client additionally compiles transfers, tested in
// internal/typestate), so pin the property down here.

func TestTaintTransPure(t *testing.T) {
	_, taint, prims := taintFixture()

	// Collect reachable states by closure under Trans.
	seen := map[string]bool{taint.Initial(): true}
	frontier := []string{taint.Initial()}
	for len(frontier) > 0 {
		var next []string
		for _, s := range frontier {
			for _, c := range prims {
				for _, out := range taint.Trans(c, s) {
					if !seen[out] {
						seen[out] = true
						next = append(next, out)
					}
				}
			}
		}
		frontier = next
	}
	if len(seen) < 4 {
		t.Fatalf("fixture too small: only %d reachable states", len(seen))
	}

	// First pass: record Trans on every (prim, state) pair.
	want := map[*ir.Prim]map[string][]string{}
	for _, c := range prims {
		want[c] = map[string][]string{}
		for s := range seen {
			want[c][s] = taint.Trans(c, s)
		}
	}

	// Second pass in a different interleaving — states outer, prims inner,
	// with every other transfer running in between — must reproduce the
	// recorded results exactly.
	for s := range seen {
		for _, c := range prims {
			got := taint.Trans(c, s)
			if !reflect.DeepEqual(got, want[c][s]) {
				t.Fatalf("Trans(%v, %q) changed across calls: %v then %v",
					c, taint.StateString(s), want[c][s], got)
			}
		}
	}

	// Mutating a returned slice must not poison later calls (the memo
	// stores returned slices verbatim).
	for _, c := range prims {
		for s := range seen {
			out := taint.Trans(c, s)
			if len(out) > 0 {
				out[0] = "CLOBBERED"
			}
			if got := taint.Trans(c, s); !reflect.DeepEqual(got, want[c][s]) {
				t.Fatalf("Trans(%v, %q) shares state with caller-visible slice", c, s)
			}
		}
	}
}

func TestTaintRTransPure(t *testing.T) {
	_, taint, prims := taintFixture()

	// Close the identity relation under RTrans and RComp (bounded: the
	// relation space of the fixture is small).
	seen := map[string]bool{taint.Identity(): true}
	frontier := []string{taint.Identity()}
	for len(frontier) > 0 && len(seen) < 4096 {
		var next []string
		for _, r := range frontier {
			for _, c := range prims {
				for _, out := range taint.RTrans(c, r) {
					if !seen[out] {
						seen[out] = true
						next = append(next, out)
					}
				}
			}
		}
		frontier = next
	}
	if len(seen) < 4 {
		t.Fatalf("fixture too small: only %d reachable relations", len(seen))
	}

	want := map[*ir.Prim]map[string][]string{}
	for _, c := range prims {
		want[c] = map[string][]string{}
		for r := range seen {
			want[c][r] = taint.RTrans(c, r)
		}
	}
	for r := range seen {
		for _, c := range prims {
			if got := taint.RTrans(c, r); !reflect.DeepEqual(got, want[c][r]) {
				t.Fatalf("RTrans(%v, %q) changed across calls: %v then %v", c, r, want[c][r], got)
			}
		}
	}
}
