package killgen

import (
	"sort"
	"strings"

	"swift/internal/ir"
)

// TaintConfig instantiates the kill/gen family as an interprocedural taint
// analysis over the command IR: allocation at a source site taints the
// destination; taint propagates through copies, loads and stores
// (field-insensitively per field name); sanitizer methods clear their
// receiver; sink methods latch a per-site alert fact when called on a
// tainted receiver.
type TaintConfig struct {
	// Sources are allocation-site labels whose objects are tainted.
	Sources []string
	// Sanitizers are method names (TSCall) that clear their receiver's
	// taint.
	Sanitizers []string
	// Sinks are method names (TSCall) that must not see tainted receivers;
	// a violation latches the global ALERT fact.
	Sinks []string
}

// Taint bundles the generic kill/gen analysis with taint-specific queries.
type Taint struct {
	*Analysis
	cfg    TaintConfig
	sinks  map[string]bool
	sanit  map[string]bool
	source map[string]bool
	memo   map[string][]Case
}

// alertFact is the latched fact recording that some sink saw taint.
const alertFact = "ALERT"

// fieldFact names the taint fact of a field (field-insensitive across base
// objects, a common taint abstraction).
func fieldFact(f string) string { return "field:" + f }

// NewTaint builds the taint client for a lowered program. The fact universe
// is derived from the program: one fact per variable, one per stored or
// loaded field name, plus the alert fact.
func NewTaint(prog *ir.Program, cfg TaintConfig) *Taint {
	vars := map[string]bool{}
	fields := map[string]bool{}
	var prims []*ir.Prim
	var walk func(c ir.Cmd)
	walk = func(c ir.Cmd) {
		switch c := c.(type) {
		case *ir.Prim:
			prims = append(prims, c)
			if c.Dst != "" {
				vars[c.Dst] = true
			}
			if c.Src != "" {
				vars[c.Src] = true
			}
			if c.Field != "" {
				fields[c.Field] = true
			}
		case *ir.Seq:
			for _, s := range c.Cmds {
				walk(s)
			}
		case *ir.Choice:
			for _, s := range c.Alts {
				walk(s)
			}
		case *ir.Loop:
			walk(c.Body)
		}
	}
	for _, name := range prog.ProcNames() {
		walk(prog.Procs[name].Body)
	}
	var facts []string
	for v := range vars {
		facts = append(facts, v)
	}
	for f := range fields {
		facts = append(facts, fieldFact(f))
	}
	sort.Strings(facts)
	facts = append(facts, alertFact)

	t := &Taint{
		Analysis: NewAnalysis(facts),
		cfg:      cfg,
		sinks:    map[string]bool{},
		sanit:    map[string]bool{},
		source:   map[string]bool{},
		memo:     map[string][]Case{},
	}
	for _, s := range cfg.Sinks {
		t.sinks[s] = true
	}
	for _, s := range cfg.Sanitizers {
		t.sanit[s] = true
	}
	for _, s := range cfg.Sources {
		t.source[s] = true
	}
	t.SetSpec(t.cases)
	// Precompute the case table for every primitive in the program so the
	// memo is frozen before the client is shared across goroutines (the
	// ConcurrentClient contract); cases never writes it at runtime.
	for _, p := range prims {
		t.memo[p.Key()] = t.casesOf(p)
	}
	return t
}

// cases is the Spec: the guarded kill/gen cases of each primitive. Every
// primitive of the analyzed program is precomputed into the memo by
// NewTaint; primitives outside it (synthetic test commands) are computed
// fresh on each call rather than stored, keeping the method read-only.
func (t *Taint) cases(c *ir.Prim) []Case {
	if cs, ok := t.memo[c.Key()]; ok {
		return cs
	}
	return t.casesOf(c)
}

// casesOf computes the guarded kill/gen cases of one primitive.
func (t *Taint) casesOf(c *ir.Prim) []Case {
	var out []Case
	switch c.Kind {
	case ir.Nop, ir.Assert:
		out = []Case{t.IdentityCase()}
	case ir.New:
		if t.source[c.Site] {
			out = []Case{t.GenCase(c.Dst)}
		} else {
			out = []Case{t.KillCase(c.Dst)}
		}
	case ir.Copy:
		if c.Dst == c.Src {
			out = []Case{t.IdentityCase()}
		} else {
			out = t.TransferCase(c.Dst, c.Src)
		}
	case ir.Load:
		out = t.TransferCase(c.Dst, fieldFact(c.Field))
	case ir.Store:
		// Weak update: the field fact accumulates taint.
		out = t.CondGenCase(c.Src, []string{fieldFact(c.Field)})
	case ir.TSCall:
		switch {
		case t.sanit[c.Method]:
			out = []Case{t.KillCase(c.Dst)}
		case t.sinks[c.Method]:
			out = t.CondGenCase(c.Dst, []string{alertFact})
		default:
			out = []Case{t.IdentityCase()}
		}
	case ir.Kill:
		out = []Case{t.KillCase(c.Dst)}
	default:
		out = []Case{t.IdentityCase()}
	}
	return out
}

// Initial returns the entry state: nothing tainted.
func (t *Taint) Initial() string { return t.State(make(Bits, t.nwords)) }

// Alerted reports whether the state has latched a sink violation.
func (t *Taint) Alerted(s string) bool {
	return t.StateBits(s).has(t.index[alertFact])
}

// TaintedVars lists the tainted variable facts of a state (excluding field
// facts and the alert fact), sorted.
func (t *Taint) TaintedVars(s string) []string {
	b := t.StateBits(s)
	var out []string
	for i := 0; i < t.nfacts; i++ {
		if !b.has(i) {
			continue
		}
		name := t.names[i]
		if name == alertFact || strings.HasPrefix(name, "field:") {
			continue
		}
		out = append(out, name)
	}
	return out
}
