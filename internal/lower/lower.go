// Package lower translates the high-level IR into the command IR consumed
// by the analyses, using the pointer analysis for devirtualization.
//
// The translation follows the paper's formal setting (Section 3.5):
// procedure calls are parameterless over a global namespace. Every variable
// is renamed to its frame-qualified form "Class.method$v", argument passing
// becomes explicit copies into the callee's parameter variables, return
// values flow through the callee's $ret variable, and each procedure kills
// its frame variables at exit so stale aliases do not fragment the abstract
// state space of its callers.
package lower

import (
	"fmt"

	"swift/internal/hir"
	"swift/internal/ir"
	"swift/internal/pointer"
	"swift/internal/typestate"
)

// Output bundles the lowered program with the artifacts the analyses need.
type Output struct {
	// Prog is the lowered command program; its entry is the qualified name
	// of the HIR entry method.
	Prog *ir.Program
	// Track maps allocation-site labels of property-typed allocations to
	// their properties (the type-state analysis' tracked objects).
	Track map[string]*typestate.Property
	// Pointer is the points-to result, usable directly as the may-alias
	// oracle (its variable namespace equals the lowered one).
	Pointer *pointer.Result
	// MethodOf maps lowered procedure names back to their HIR methods.
	MethodOf map[string]*hir.Method
}

// Lower translates all pointer-reachable methods.
func Lower(prog *hir.Program, pts *pointer.Result) (*Output, error) {
	out := &Output{
		Prog:     ir.NewProgram(prog.Entry().QName()),
		Track:    map[string]*typestate.Property{},
		Pointer:  pts,
		MethodOf: map[string]*hir.Method{},
	}
	for _, site := range pts.Sites() {
		if prop, ok := prog.Properties[pts.SiteType(site)]; ok {
			out.Track[site] = prop
		}
	}
	for _, m := range pts.ReachableMethods() {
		l := &lowerer{prog: prog, pts: pts, m: m}
		body := l.block(m.Body)
		// Exit hygiene: retire the frame (receiver, parameters, locals) but
		// not $ret, which the caller reads and kills.
		var frame []string
		frame = append(frame, hir.ThisVar)
		frame = append(frame, m.Params...)
		frame = append(frame, m.Locals()...)
		locals := make([]string, 0, len(frame)+1)
		for _, v := range frame {
			body = append(body, &ir.Prim{Kind: ir.Kill, Dst: m.QVar(v)})
			locals = append(locals, m.QVar(v))
		}
		locals = append(locals, m.QVar(hir.RetVar))
		out.Prog.Add(&ir.Proc{Name: m.QName(), Body: &ir.Seq{Cmds: body}, Locals: locals})
		out.MethodOf[m.QName()] = m
	}
	if err := out.Prog.Validate(); err != nil {
		return nil, fmt.Errorf("lower: %w", err)
	}
	return out, nil
}

// lowerer lowers one method body.
type lowerer struct {
	prog  *hir.Program
	pts   *pointer.Result
	m     *hir.Method
	calls int // call-site counter for temporary names
}

func (l *lowerer) qv(v string) string { return l.m.QVar(v) }

func (l *lowerer) block(b *hir.Block) []ir.Cmd {
	var out []ir.Cmd
	for _, s := range b.Stmts {
		out = append(out, l.stmt(s)...)
	}
	if len(out) == 0 {
		out = append(out, &ir.Prim{Kind: ir.Nop})
	}
	return out
}

func (l *lowerer) stmt(s hir.Stmt) []ir.Cmd {
	switch s := s.(type) {
	case *hir.Block:
		return []ir.Cmd{&ir.Seq{Cmds: l.block(s)}}
	case *hir.Skip:
		return []ir.Cmd{&ir.Prim{Kind: ir.Nop}}
	case *hir.If:
		then := &ir.Seq{Cmds: l.stmt(s.Then)}
		var els ir.Cmd = &ir.Prim{Kind: ir.Nop}
		if s.Else != nil {
			els = &ir.Seq{Cmds: l.stmt(s.Else)}
		}
		return []ir.Cmd{&ir.Choice{Alts: []ir.Cmd{then, els}}}
	case *hir.While:
		return []ir.Cmd{&ir.Loop{Body: &ir.Seq{Cmds: l.stmt(s.Body)}}}
	case *hir.Assign:
		return []ir.Cmd{&ir.Prim{Kind: ir.Copy, Dst: l.qv(s.Dst), Src: l.qv(s.Src)}}
	case *hir.LoadStmt:
		return []ir.Cmd{&ir.Prim{Kind: ir.Load, Dst: l.qv(s.Dst), Src: l.qv(s.Base), Field: s.Field}}
	case *hir.StoreStmt:
		return []ir.Cmd{&ir.Prim{Kind: ir.Store, Dst: l.qv(s.Base), Field: s.Field, Src: l.qv(s.Src)}}
	case *hir.NewStmt:
		return []ir.Cmd{&ir.Prim{Kind: ir.New, Dst: l.qv(s.Dst), Site: s.Site}}
	case *hir.Return:
		return []ir.Cmd{&ir.Prim{Kind: ir.Copy, Dst: l.qv(hir.RetVar), Src: l.qv(s.Src)}}
	case *hir.CallStmt:
		return l.call(s)
	}
	panic(fmt.Sprintf("lower: unknown statement %T", s))
}

func (l *lowerer) call(s *hir.CallStmt) []ir.Cmd {
	l.calls++
	if l.pts.IsPropertyMethod(s.Method) {
		// Type-state transition on the receiver object.
		cmds := []ir.Cmd{&ir.Prim{Kind: ir.TSCall, Dst: l.qv(s.Recv), Method: s.Method}}
		if s.Dst != "" {
			// The transition's result is a non-reference value.
			cmds = append(cmds, &ir.Prim{Kind: ir.Kill, Dst: l.qv(s.Dst)})
		}
		return cmds
	}
	recv := s.Recv
	if recv == "" {
		recv = hir.ThisVar
	}
	targets := l.pts.Targets(s)
	if len(targets) == 0 {
		// Dead call: the receiver points to no object with this method.
		if s.Dst != "" {
			return []ir.Cmd{&ir.Prim{Kind: ir.Kill, Dst: l.qv(s.Dst)}}
		}
		return []ir.Cmd{&ir.Prim{Kind: ir.Nop}}
	}
	alts := make([]ir.Cmd, 0, len(targets))
	for _, t := range targets {
		alts = append(alts, &ir.Seq{Cmds: l.invoke(s, recv, t)})
	}
	if len(alts) == 1 {
		return []ir.Cmd{alts[0]}
	}
	// After a multi-target call, kill every candidate frame. Each branch's
	// callee already kills its own frame at exit, but the other branches
	// leave it untouched; the post-choice kills make all branches agree on
	// the (dead anyway) frames, so their relational summaries merge instead
	// of forcing the pruning operator to split the ignored set.
	out := []ir.Cmd{&ir.Choice{Alts: alts}}
	for _, t := range targets {
		for _, v := range frameVars(t) {
			out = append(out, &ir.Prim{Kind: ir.Kill, Dst: t.QVar(v)})
		}
	}
	return out
}

// frameVars lists a method's frame variables: receiver, parameters, locals
// and the return slot.
func frameVars(t *hir.Method) []string {
	out := []string{hir.ThisVar}
	out = append(out, t.Params...)
	out = append(out, t.Locals()...)
	out = append(out, hir.RetVar)
	return out
}

// invoke lowers one devirtualized call: bind the receiver and arguments
// into the callee frame, call, read back $ret. A self-call (the target is
// the enclosing method, so both frames are the same global variables) binds
// through call-site temporaries so argument reads all happen before
// parameter writes.
func (l *lowerer) invoke(s *hir.CallStmt, recv string, t *hir.Method) []ir.Cmd {
	var cmds []ir.Cmd
	srcs := []string{l.qv(recv)}
	dsts := []string{t.QVar(hir.ThisVar)}
	for i, p := range t.Params {
		if i < len(s.Args) {
			srcs = append(srcs, l.qv(s.Args[i]))
		} else {
			srcs = append(srcs, "") // unbound parameter: killed below
		}
		dsts = append(dsts, t.QVar(p))
	}
	if t == l.m {
		// Route through temporaries, reading every source first.
		tmps := make([]string, len(srcs))
		for i, src := range srcs {
			if src == "" {
				continue
			}
			tmps[i] = l.qv(fmt.Sprintf("$tmp%d_%d", l.calls, i))
			cmds = append(cmds, &ir.Prim{Kind: ir.Copy, Dst: tmps[i], Src: src})
		}
		for i := range srcs {
			if srcs[i] == "" {
				cmds = append(cmds, &ir.Prim{Kind: ir.Kill, Dst: dsts[i]})
				continue
			}
			cmds = append(cmds,
				&ir.Prim{Kind: ir.Copy, Dst: dsts[i], Src: tmps[i]},
				&ir.Prim{Kind: ir.Kill, Dst: tmps[i]})
		}
	} else {
		for i := range srcs {
			if srcs[i] == "" {
				cmds = append(cmds, &ir.Prim{Kind: ir.Kill, Dst: dsts[i]})
				continue
			}
			cmds = append(cmds, &ir.Prim{Kind: ir.Copy, Dst: dsts[i], Src: srcs[i]})
		}
	}
	cmds = append(cmds, &ir.Call{Callee: t.QName()})
	if s.Dst != "" {
		cmds = append(cmds, &ir.Prim{Kind: ir.Copy, Dst: l.qv(s.Dst), Src: t.QVar(hir.RetVar)})
	}
	cmds = append(cmds, &ir.Prim{Kind: ir.Kill, Dst: t.QVar(hir.RetVar)})
	return cmds
}
