package lower

import (
	"strings"
	"testing"

	"swift/internal/hir"
	"swift/internal/ir"
	"swift/internal/pointer"
	"swift/internal/source"
)

func lowerSource(t *testing.T, src string) *Output {
	t.Helper()
	prog, err := source.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	pts, err := pointer.Analyze(prog)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	out, err := Lower(prog, pts)
	if err != nil {
		t.Fatalf("Lower: %v", err)
	}
	return out
}

const lowerFixture = `
property File {
  states closed opened error
  error error
  open: closed -> opened
  close: opened -> closed
}

class Main {
  method main() {
    f = new File @h1
    a = new A @oa
    b = new B @ob
    x = a
    if (*) { x = b }
    y = x.id(f)
    r = a.me()
  }
}

class A {
  method id(v) { return v }
  method me() { s = this.id(this); return s }
}

class B extends A {
  method id(v) { w = v; return w }
}
`

func TestLowerStructure(t *testing.T) {
	out := lowerSource(t, lowerFixture)
	text := ir.Print(out.Prog)

	// Multi-target call on x: a Choice over A.id and B.id with post-choice
	// frame kills for both targets.
	if !strings.Contains(text, "call A.id") || !strings.Contains(text, "call B.id") {
		t.Fatalf("devirtualized calls missing:\n%s", text)
	}
	for _, want := range []string{
		"A.id$v = Main.main$f", // parameter binding
		"B.id$v = Main.main$f",
		"Main.main$y = A.id$$ret", // return plumbing (per branch)
		"kill A.id$$ret",
		"kill B.id$v", // post-choice frame kill
	} {
		if !strings.Contains(text, want) {
			t.Errorf("lowered program missing %q:\n%s", want, text)
		}
	}
	// Tracked site map.
	if out.Track["h1"] == nil || out.Track["h1"].Name != "File" {
		t.Errorf("Track = %v", out.Track)
	}
	if out.Track["oa"] != nil {
		t.Errorf("untracked site oa in Track")
	}
	// MethodOf round-trips.
	if m := out.MethodOf["A.me"]; m == nil || m.QName() != "A.me" {
		t.Errorf("MethodOf missing A.me")
	}
	// Entry name.
	if out.Prog.Entry != "Main.main" {
		t.Errorf("entry = %q", out.Prog.Entry)
	}
	// Frame kills at exits.
	if !strings.Contains(text, "kill Main.main$f") {
		t.Errorf("frame kill for main local missing:\n%s", text)
	}
}

func TestLowerSelfCallTemporaries(t *testing.T) {
	// A method calling itself with swapped arguments must route through
	// temporaries (the frames coincide).
	const src = `
class Main {
  method main() {
    a = new A
    b = new A
    a.swap(a, b)
  }
}
class A {
  method swap(x, y) {
    if (*) { swap(y, x) }
  }
}
`
	out := lowerSource(t, src)
	text := ir.Print(out.Prog)
	if !strings.Contains(text, "$tmp") {
		t.Fatalf("self-call did not use temporaries:\n%s", text)
	}
	// The temporaries are read after all argument reads: the direct
	// clobbering copy A.swap$x = A.swap$y must not appear.
	if strings.Contains(text, "A.swap$x = A.swap$y\n") && !strings.Contains(text, "$tmp") {
		t.Fatalf("clobbering binding:\n%s", text)
	}
}

func TestLowerTSCallAndDeadCall(t *testing.T) {
	const src = `
property File {
  states closed opened error
  error error
  open: closed -> opened
}
class Main {
  method main() {
    f = new File @h1
    f.open()
    ok = f.open()
    n = new Null
    n.nothing()
  }
}
class Null {
}
class Other {
  method nothing() { skip }
}
`
	out := lowerSource(t, src)
	text := ir.Print(out.Prog)
	if !strings.Contains(text, "Main.main$f.open()") {
		t.Errorf("TSCall missing:\n%s", text)
	}
	// Result of a type-state call is a non-reference: dst killed.
	if !strings.Contains(text, "kill Main.main$ok") {
		t.Errorf("TSCall result kill missing:\n%s", text)
	}
	// n.nothing() is dead (no Null target defines it): lowered to nop.
	if strings.Contains(text, "call Other.nothing") {
		t.Errorf("dead call resolved:\n%s", text)
	}
}

func TestLowerValidates(t *testing.T) {
	out := lowerSource(t, lowerFixture)
	if err := out.Prog.Validate(); err != nil {
		t.Fatalf("lowered program invalid: %v", err)
	}
}

func TestFrameVars(t *testing.T) {
	m := &hir.Method{Name: "m", Params: []string{"p"}, Body: &hir.Block{Stmts: []hir.Stmt{
		&hir.Assign{Dst: "loc", Src: "p"},
	}}}
	hir.NewClass("C", "").AddMethod(m)
	got := frameVars(m)
	want := []string{hir.ThisVar, "p", "loc", hir.RetVar}
	if len(got) != len(want) {
		t.Fatalf("frameVars = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("frameVars = %v, want %v", got, want)
		}
	}
}
