package pointer

import "math/bits"

// bitset is a growable bit vector over small non-negative integers (site
// indices).
type bitset []uint64

// set turns bit i on, growing as needed. It returns true when the bit was
// previously unset.
func (b *bitset) set(i int) bool {
	w := i >> 6
	for len(*b) <= w {
		*b = append(*b, 0)
	}
	mask := uint64(1) << (uint(i) & 63)
	if (*b)[w]&mask != 0 {
		return false
	}
	(*b)[w] |= mask
	return true
}

// has reports whether bit i is on.
func (b bitset) has(i int) bool {
	w := i >> 6
	return w < len(b) && b[w]&(uint64(1)<<(uint(i)&63)) != 0
}

// empty reports whether no bit is on.
func (b bitset) empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// orChanged unions other into b, reporting whether b grew.
func (b *bitset) orChanged(other bitset) bool {
	changed := false
	for len(*b) < len(other) {
		*b = append(*b, 0)
	}
	for i, w := range other {
		if (*b)[i]|w != (*b)[i] {
			(*b)[i] |= w
			changed = true
		}
	}
	return changed
}

// each calls f for every set bit in ascending order.
func (b bitset) each(f func(i int)) {
	for wi, w := range b {
		for w != 0 {
			bit := w & (-w)
			i := wi<<6 + bits.TrailingZeros64(bit)
			f(i)
			w &^= bit
		}
	}
}

// count returns the number of set bits.
func (b bitset) count() int {
	n := 0
	b.each(func(int) { n++ })
	return n
}
