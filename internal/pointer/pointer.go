// Package pointer implements a flow-insensitive, context-insensitive
// (0-CFA) Andersen-style points-to analysis over the high-level IR, with
// on-the-fly call-graph construction: virtual call edges are discovered as
// receiver points-to sets grow, and only methods reachable from the entry
// are analyzed.
//
// It plays two roles from the paper's toolchain: the "0-CFA call-graph
// analysis" used to characterize and devirtualize the benchmarks, and the
// mayalias oracle consulted by the type-state analysis when an access
// path's relation to a tracked object is unknown.
package pointer

import (
	"fmt"
	"sort"

	"swift/internal/hir"
)

// Result holds points-to sets, the call graph and reachability facts.
type Result struct {
	prog *hir.Program

	sites    []string
	siteIdx  map[string]int
	siteType []string

	nodeIdx map[string]int // node key → dense id
	pts     []bitset
	succ    [][]int
	edgeSet map[edge]bool

	loadsOf  map[int][]complexC
	storesOf map[int][]complexC
	callsOf  map[int][]*callSite

	reachable map[*hir.Method]bool
	reachList []*hir.Method
	targets   map[*hir.CallStmt][]*hir.Method
	targetSet map[callEdge]bool

	propMethods map[string]bool

	work []int
	inWl []bool
}

type edge struct{ from, to int }

type complexC struct {
	field string
	other int // dst for loads, src for stores
}

type callSite struct {
	stmt *hir.CallStmt
	m    *hir.Method // enclosing method
}

type callEdge struct {
	stmt   *hir.CallStmt
	target *hir.Method
}

// Analyze runs the analysis from the program's entry method. The program
// must already be validated.
func Analyze(prog *hir.Program) (*Result, error) {
	entry := prog.Entry()
	if entry == nil {
		return nil, fmt.Errorf("pointer: program has no entry method")
	}
	r := &Result{
		prog:        prog,
		siteIdx:     map[string]int{},
		nodeIdx:     map[string]int{},
		edgeSet:     map[edge]bool{},
		loadsOf:     map[int][]complexC{},
		storesOf:    map[int][]complexC{},
		callsOf:     map[int][]*callSite{},
		reachable:   map[*hir.Method]bool{},
		targets:     map[*hir.CallStmt][]*hir.Method{},
		targetSet:   map[callEdge]bool{},
		propMethods: map[string]bool{},
	}
	for _, prop := range prog.Properties {
		for m := range prop.Methods {
			r.propMethods[m] = true
		}
	}
	r.visitMethod(entry)
	r.solve()
	sort.Slice(r.reachList, func(i, j int) bool {
		return r.reachList[i].QName() < r.reachList[j].QName()
	})
	for _, ts := range r.targets {
		sort.Slice(ts, func(i, j int) bool { return ts[i].QName() < ts[j].QName() })
	}
	return r, nil
}

// node interns a node key to a dense id.
func (r *Result) node(key string) int {
	if id, ok := r.nodeIdx[key]; ok {
		return id
	}
	id := len(r.pts)
	r.nodeIdx[key] = id
	r.pts = append(r.pts, nil)
	r.succ = append(r.succ, nil)
	r.inWl = append(r.inWl, false)
	return id
}

// varNode returns the node of a variable in a method's frame.
func (r *Result) varNode(m *hir.Method, v string) int { return r.node(m.QVar(v)) }

// slotNode returns the node of a field slot of an abstract object.
func (r *Result) slotNode(site int, field string) int {
	return r.node(fmt.Sprintf("#%d.%s", site, field))
}

// internSite interns an allocation site with its type.
func (r *Result) internSite(label, typ string) int {
	if id, ok := r.siteIdx[label]; ok {
		return id
	}
	id := len(r.sites)
	r.siteIdx[label] = id
	r.sites = append(r.sites, label)
	r.siteType = append(r.siteType, typ)
	return id
}

func (r *Result) push(n int) {
	if !r.inWl[n] {
		r.inWl[n] = true
		r.work = append(r.work, n)
	}
}

// addTo adds sites into a node's points-to set, scheduling propagation.
func (r *Result) addTo(n int, sites bitset) {
	if r.pts[n].orChanged(sites) {
		r.push(n)
	}
}

// addEdge inserts a subset edge and transfers the current points-to set.
func (r *Result) addEdge(from, to int) {
	e := edge{from, to}
	if r.edgeSet[e] {
		return
	}
	r.edgeSet[e] = true
	r.succ[from] = append(r.succ[from], to)
	r.addTo(to, r.pts[from])
}

// visitMethod makes a method reachable and installs its constraints.
func (r *Result) visitMethod(m *hir.Method) {
	if r.reachable[m] {
		return
	}
	r.reachable[m] = true
	r.reachList = append(r.reachList, m)
	r.visitStmt(m, m.Body)
}

func (r *Result) visitStmt(m *hir.Method, s hir.Stmt) {
	switch s := s.(type) {
	case *hir.Block:
		for _, st := range s.Stmts {
			r.visitStmt(m, st)
		}
	case *hir.If:
		r.visitStmt(m, s.Then)
		if s.Else != nil {
			r.visitStmt(m, s.Else)
		}
	case *hir.While:
		r.visitStmt(m, s.Body)
	case *hir.NewStmt:
		site := r.internSite(s.Site, s.Type)
		var b bitset
		b.set(site)
		r.addTo(r.varNode(m, s.Dst), b)
	case *hir.Assign:
		r.addEdge(r.varNode(m, s.Src), r.varNode(m, s.Dst))
	case *hir.LoadStmt:
		base := r.varNode(m, s.Base)
		r.loadsOf[base] = append(r.loadsOf[base], complexC{field: s.Field, other: r.varNode(m, s.Dst)})
		r.processComplex(base)
	case *hir.StoreStmt:
		base := r.varNode(m, s.Base)
		r.storesOf[base] = append(r.storesOf[base], complexC{field: s.Field, other: r.varNode(m, s.Src)})
		r.processComplex(base)
	case *hir.Return:
		r.addEdge(r.varNode(m, s.Src), r.varNode(m, hir.RetVar))
	case *hir.CallStmt:
		if r.propMethods[s.Method] {
			return // type-state transition: no flow
		}
		recv := s.Recv
		if recv == "" {
			recv = hir.ThisVar
		}
		rn := r.varNode(m, recv)
		r.callsOf[rn] = append(r.callsOf[rn], &callSite{stmt: s, m: m})
		r.processComplex(rn)
	}
}

// processComplex applies a node's field and call constraints to its current
// points-to set. It is idempotent: edge and call-target insertion both
// de-duplicate.
func (r *Result) processComplex(n int) {
	sites := r.pts[n]
	if sites.empty() {
		return
	}
	for _, c := range r.loadsOf[n] {
		sites.each(func(o int) { r.addEdge(r.slotNode(o, c.field), c.other) })
	}
	for _, c := range r.storesOf[n] {
		sites.each(func(o int) { r.addEdge(c.other, r.slotNode(o, c.field)) })
	}
	for _, cs := range r.callsOf[n] {
		sites.each(func(o int) { r.resolveCall(cs, o) })
	}
}

// resolveCall connects one call site to the target selected by the dynamic
// type of one receiver object, making the target reachable.
func (r *Result) resolveCall(cs *callSite, site int) {
	target := r.prog.Lookup(r.siteType[site], cs.stmt.Method)
	if target == nil {
		return // property-typed or method-less receiver object
	}
	ce := callEdge{stmt: cs.stmt, target: target}
	if r.targetSet[ce] {
		return
	}
	r.targetSet[ce] = true
	r.targets[cs.stmt] = append(r.targets[cs.stmt], target)
	r.visitMethod(target)

	recv := cs.stmt.Recv
	if recv == "" {
		recv = hir.ThisVar
	}
	r.addEdge(r.varNode(cs.m, recv), r.varNode(target, hir.ThisVar))
	for i, arg := range cs.stmt.Args {
		if i < len(target.Params) {
			r.addEdge(r.varNode(cs.m, arg), r.varNode(target, target.Params[i]))
		}
	}
	if cs.stmt.Dst != "" {
		r.addEdge(r.varNode(target, hir.RetVar), r.varNode(cs.m, cs.stmt.Dst))
	}
}

// solve drains the propagation worklist to a fixpoint.
func (r *Result) solve() {
	for len(r.work) > 0 {
		n := r.work[0]
		r.work = r.work[1:]
		r.inWl[n] = false
		for _, to := range r.succ[n] {
			r.addTo(to, r.pts[n])
		}
		r.processComplex(n)
	}
}

// ---- query API ----

// Targets returns the resolved targets of a virtual call site, sorted by
// qualified name. Nil means the receiver can point to no object with that
// method (a dead call).
func (r *Result) Targets(call *hir.CallStmt) []*hir.Method { return r.targets[call] }

// ReachableMethods returns all methods reachable from the entry, sorted by
// qualified name.
func (r *Result) ReachableMethods() []*hir.Method { return r.reachList }

// IsPropertyMethod reports whether a method name is a type-state transition
// of some tracked property.
func (r *Result) IsPropertyMethod(name string) bool { return r.propMethods[name] }

// Sites returns all discovered allocation-site labels in discovery order.
func (r *Result) Sites() []string { return r.sites }

// SiteType returns the allocated type of a site label ("" if unknown).
func (r *Result) SiteType(label string) string {
	if i, ok := r.siteIdx[label]; ok {
		return r.siteType[i]
	}
	return ""
}

// PathMayPoint reports whether the access path (base, field) — base being a
// lowered qualified variable name — may point to an object allocated at the
// named site. Unknown variables and sites conservatively may point
// anywhere... except that an unknown site cannot be pointed to: an absent
// site means the allocation was never reached.
func (r *Result) PathMayPoint(base, field, site string) bool {
	sid, ok := r.siteIdx[site]
	if !ok {
		return false
	}
	vn, ok := r.nodeIdx[base]
	if !ok {
		return false // never-assigned variable points nowhere
	}
	if field == "" {
		return r.pts[vn].has(sid)
	}
	found := false
	r.pts[vn].each(func(o int) {
		if found {
			return
		}
		if sn, ok := r.nodeIdx[fmt.Sprintf("#%d.%s", o, field)]; ok && r.pts[sn].has(sid) {
			found = true
		}
	})
	return found
}

// MayAlias implements the typestate.Oracle interface.
func (r *Result) MayAlias(base, field, site string) bool {
	return r.PathMayPoint(base, field, site)
}

// Stats summarizes reachable program size for the benchmark
// characteristics table.
type Stats struct {
	ReachableMethods int
	ReachableClasses int
	Sites            int
	CallEdges        int
}

// CollectStats computes reachability statistics.
func (r *Result) CollectStats() Stats {
	classes := map[*hir.Class]bool{}
	for _, m := range r.reachList {
		classes[m.Class] = true
	}
	return Stats{
		ReachableMethods: len(r.reachList),
		ReachableClasses: len(classes),
		Sites:            len(r.sites),
		CallEdges:        len(r.targetSet),
	}
}
