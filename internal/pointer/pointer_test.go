package pointer

import (
	"testing"

	"swift/internal/hir"
	"swift/internal/typestate"
)

// fixture builds a program exercising dispatch, field flow, returns,
// recursion and unreachable code.
func fixture(t *testing.T) (*hir.Program, *Result) {
	t.Helper()
	p := hir.NewProgram()
	p.AddProperty(typestate.FileProperty())

	shape := hir.NewClass("Shape", "")
	shape.AddMethod(&hir.Method{Name: "draw", Body: &hir.Block{Stmts: []hir.Stmt{&hir.Skip{}}}})
	p.AddClass(shape)

	circle := hir.NewClass("Circle", "Shape")
	circle.AddMethod(&hir.Method{Name: "draw", Body: &hir.Block{Stmts: []hir.Stmt{
		// Recursion through this.
		&hir.CallStmt{Method: "draw"},
	}}})
	p.AddClass(circle)

	square := hir.NewClass("Square", "Shape") // inherits draw
	p.AddClass(square)

	box := hir.NewClass("Box", "")
	box.Fields = []string{"item"}
	box.AddMethod(&hir.Method{Name: "put", Params: []string{"x"}, Body: &hir.Block{Stmts: []hir.Stmt{
		&hir.StoreStmt{Base: "this", Field: "item", Src: "x"},
	}}})
	box.AddMethod(&hir.Method{Name: "get", Body: &hir.Block{Stmts: []hir.Stmt{
		&hir.LoadStmt{Dst: "r", Base: "this", Field: "item"},
		&hir.Return{Src: "r"},
	}}})
	p.AddClass(box)

	dead := hir.NewClass("Dead", "")
	dead.AddMethod(&hir.Method{Name: "never", Body: &hir.Block{Stmts: []hir.Stmt{&hir.Skip{}}}})
	p.AddClass(dead)

	main := hir.NewClass("Main", "")
	main.AddMethod(&hir.Method{Name: "main", Body: &hir.Block{Stmts: []hir.Stmt{
		&hir.NewStmt{Dst: "c", Type: "Circle", Site: "circ"},
		&hir.NewStmt{Dst: "s", Type: "Square", Site: "sq"},
		&hir.Assign{Dst: "x", Src: "c"},
		&hir.If{
			Then: &hir.Block{Stmts: []hir.Stmt{&hir.Assign{Dst: "x", Src: "s"}}},
		},
		&hir.CallStmt{Recv: "x", Method: "draw"},
		&hir.NewStmt{Dst: "b", Type: "Box", Site: "box"},
		&hir.NewStmt{Dst: "f", Type: "File", Site: "file"},
		&hir.CallStmt{Recv: "b", Method: "put", Args: []string{"f"}},
		&hir.CallStmt{Dst: "g", Recv: "b", Method: "get"},
		&hir.CallStmt{Recv: "g", Method: "open"},
	}}})
	p.AddClass(main)
	p.Finalize()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	r, err := Analyze(p)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return p, r
}

func TestReachability(t *testing.T) {
	_, r := fixture(t)
	names := map[string]bool{}
	for _, m := range r.ReachableMethods() {
		names[m.QName()] = true
	}
	for _, want := range []string{"Main.main", "Circle.draw", "Shape.draw", "Box.put", "Box.get"} {
		if !names[want] {
			t.Errorf("method %s should be reachable (have %v)", want, names)
		}
	}
	if names["Dead.never"] {
		t.Error("Dead.never should be unreachable")
	}
}

func TestDevirtualization(t *testing.T) {
	p, r := fixture(t)
	// The x.draw() call dispatches on {circ, sq}: Circle overrides draw,
	// Square inherits Shape.draw — two targets.
	var call *hir.CallStmt
	var walk func(s hir.Stmt)
	walk = func(s hir.Stmt) {
		switch s := s.(type) {
		case *hir.Block:
			for _, st := range s.Stmts {
				walk(st)
			}
		case *hir.If:
			walk(s.Then)
			if s.Else != nil {
				walk(s.Else)
			}
		case *hir.CallStmt:
			if s.Method == "draw" && s.Recv == "x" {
				call = s
			}
		}
	}
	walk(p.Class("Main").Method("main").Body)
	if call == nil {
		t.Fatal("draw call not found")
	}
	targets := r.Targets(call)
	if len(targets) != 2 {
		t.Fatalf("draw targets = %d, want 2", len(targets))
	}
	if targets[0].QName() != "Circle.draw" || targets[1].QName() != "Shape.draw" {
		t.Errorf("targets = %s, %s", targets[0].QName(), targets[1].QName())
	}
}

func TestFieldFlowAndOracle(t *testing.T) {
	_, r := fixture(t)
	// The file flows main.f → put.x → box.item → get.r → get.$ret → main.g.
	for _, q := range []string{"Main.main$f", "Box.put$x", "Box.get$r", "Box.get$" + hir.RetVar, "Main.main$g"} {
		if !r.PathMayPoint(q, "", "file") {
			t.Errorf("%s should may-point to file", q)
		}
	}
	if r.PathMayPoint("Main.main$g", "", "circ") {
		t.Error("g should not may-point to circ")
	}
	// Field query: put's receiver field item holds the file.
	if !r.PathMayPoint("Box.put$this", "item", "file") {
		t.Error("Box.put$this.item should may-point to file")
	}
	// Oracle interface adapter.
	if !r.MayAlias("Main.main$g", "", "file") {
		t.Error("MayAlias adapter disagrees")
	}
	// Unknown names point nowhere.
	if r.PathMayPoint("Ghost.var$x", "", "file") || r.PathMayPoint("Main.main$g", "", "nosite") {
		t.Error("unknown variable or site should not may-point")
	}
}

func TestStats(t *testing.T) {
	_, r := fixture(t)
	st := r.CollectStats()
	if st.ReachableMethods != 5 {
		t.Errorf("ReachableMethods = %d, want 5", st.ReachableMethods)
	}
	if st.Sites != 4 {
		t.Errorf("Sites = %d, want 4", st.Sites)
	}
	if st.CallEdges < 5 {
		t.Errorf("CallEdges = %d, want >= 5", st.CallEdges)
	}
}

func TestBitset(t *testing.T) {
	var b bitset
	if !b.set(3) || b.set(3) {
		t.Error("set should report first insertion only")
	}
	b.set(100)
	if !b.has(3) || !b.has(100) || b.has(64) {
		t.Error("membership wrong")
	}
	var c bitset
	c.set(64)
	if !c.orChanged(b) {
		t.Error("orChanged should report growth")
	}
	if c.orChanged(b) {
		t.Error("second or should be a no-op")
	}
	var got []int
	c.each(func(i int) { got = append(got, i) })
	want := []int{3, 64, 100}
	if len(got) != len(want) {
		t.Fatalf("each = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("each = %v, want %v", got, want)
		}
	}
	if c.count() != 3 {
		t.Errorf("count = %d", c.count())
	}
	if bitset(nil).empty() != true || c.empty() {
		t.Error("empty wrong")
	}
}
