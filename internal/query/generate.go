package query

import (
	"fmt"
	"math/rand"
	"sort"

	"swift/internal/driver"
)

// Generate produces n seeded pseudo-random valid queries against the
// program: uniformly drawn tracked sites, query kinds, procedures, node
// indices and (for canReach) FSM states. The sequence is a pure function
// of the program and the seed, so benchmark runs and their hit-rate
// numbers are reproducible; every generated query passes Validate.
func Generate(b *driver.Build, kinds []Kind, seed int64, n int) ([]Query, error) {
	if len(kinds) == 0 {
		kinds = Kinds()
	}
	for _, k := range kinds {
		if _, err := ParseKind(string(k)); err != nil {
			return nil, err
		}
	}
	sites := b.TS.TrackedSites()
	if len(sites) == 0 {
		return nil, fmt.Errorf("query: program has no tracked allocation sites to query")
	}
	procs := append([]string(nil), b.Core.CFG.Program.ProcNames()...)
	sort.Strings(procs)
	states := make(map[string][]string, len(sites))
	for _, site := range sites {
		names, err := b.TS.SiteStates(site)
		if err != nil {
			return nil, err
		}
		states[site] = names
	}
	rng := rand.New(rand.NewSource(seed))
	qs := make([]Query, 0, n)
	for i := 0; i < n; i++ {
		q := Query{
			Kind: kinds[rng.Intn(len(kinds))],
			Site: sites[rng.Intn(len(sites))],
		}
		if q.Kind != KindIsError {
			q.Proc = procs[rng.Intn(len(procs))]
			q.Node = rng.Intn(len(b.Core.CFG.ByProc[q.Proc].Nodes))
			if q.Kind == KindCanReach {
				ss := states[q.Site]
				q.State = ss[rng.Intn(len(ss))]
			}
		}
		qs = append(qs, q)
	}
	return qs, nil
}

// ParseKinds parses a comma-separated kind list ("canReach,isError").
func ParseKinds(list []string) ([]Kind, error) {
	kinds := make([]Kind, 0, len(list))
	for _, s := range list {
		k, err := ParseKind(s)
		if err != nil {
			return nil, err
		}
		kinds = append(kinds, k)
	}
	return kinds, nil
}
