// Package query is the demand-driven query engine over the type-state
// analysis: point queries — "can site h reach state t at node n?", "which
// states does site h reach at node n?", "may site h error anywhere?" —
// answered by running only the tracked-site slice the query names
// (driver.RunSliceSet over the PR 5 decomposition) instead of the whole
// program, with completed slice results memoized across queries
// (driver.SliceMemo, keyed by the warm store's content digests). Latency
// scales with the question, not the program: a batch of queries costs the
// distinct slices it touches, repeated queries against the same program
// version cost nothing.
//
// Answer semantics. Every answer is computed from the named site's slice
// run under the chosen engine — the monolithic fixpoint restricted to
// {bootstrap} ∪ {tuples of the site} (DESIGN.md §8). IsError answers are
// therefore exactly the exhaustive run's error report, for every engine,
// and a sweep of IsError (or of CanReach on error states) over all sites
// reconstructs that report exactly. Node-level answers (StatesAt,
// CanReach) equal the exhaustive run's per-node states under the
// exhaustive engines (td, and bu's instantiation pass); under the hybrid
// engines they are at least as instantiated — the monolithic hybrid
// leaves summarized procedure bodies untabulated, while the demand slice
// instantiates the queried site's flow through them — and agree on every
// error-observable fact.
//
// Determinism: a slice's table is byte-identical whether it was computed
// alone, beside other slices on the pool, or served from the memo (fresh
// per-slice interners over frozen tables), so answers are independent of
// batch composition, query order, Config.SliceWorkers and cache state.
package query

import (
	"fmt"
	"sort"

	"swift/internal/core"
	"swift/internal/driver"
)

// Kind names a point-query form.
type Kind string

const (
	// KindCanReach asks whether the site's tracked object may be in the
	// named FSM state at the named node.
	KindCanReach Kind = "canReach"
	// KindStatesAt asks for all FSM states the site's tracked object may
	// be in at the named node.
	KindStatesAt Kind = "statesAt"
	// KindIsError asks whether the site's tracked object may reach its
	// property's error state anywhere in the program — the per-site
	// projection of the exhaustive error report.
	KindIsError Kind = "isError"
)

// Kinds lists every query kind, in rendering order.
func Kinds() []Kind { return []Kind{KindCanReach, KindStatesAt, KindIsError} }

// ParseKind resolves a kind name, case-sensitively, with a diagnostic
// naming the valid kinds on failure.
func ParseKind(s string) (Kind, error) {
	for _, k := range Kinds() {
		if string(k) == s {
			return k, nil
		}
	}
	return "", fmt.Errorf("query: unknown query kind %q (want canReach, statesAt or isError)", s)
}

// Query is one point query. Site always names a tracked allocation site.
// Node queries (canReach, statesAt) locate a program point as (Proc,
// Node): the procedure name and the node's index within that procedure's
// CFG in deterministic construction order — index 0 is the procedure
// entry, 1 its exit. CanReach additionally names an FSM state of the
// site's property.
type Query struct {
	Kind  Kind   `json:"kind"`
	Site  string `json:"site"`
	Proc  string `json:"proc,omitempty"`
	Node  int    `json:"node,omitempty"`
	State string `json:"state,omitempty"`
}

// String renders the query for diagnostics.
func (q Query) String() string {
	switch q.Kind {
	case KindCanReach:
		return fmt.Sprintf("canReach{%s, %s#%d, %s}", q.Site, q.Proc, q.Node, q.State)
	case KindStatesAt:
		return fmt.Sprintf("statesAt{%s, %s#%d}", q.Site, q.Proc, q.Node)
	case KindIsError:
		return fmt.Sprintf("isError{%s}", q.Site)
	}
	return fmt.Sprintf("%s{%s}", string(q.Kind), q.Site)
}

// Answer is one query's result. Reachable answers canReach ("the state is
// reachable at the node") and isError ("the site may error"); States
// answers statesAt (sorted distinct FSM state names, empty when the
// site's object never reaches the node).
type Answer struct {
	Query     Query    `json:"query"`
	Reachable bool     `json:"reachable"`
	States    []string `json:"states,omitempty"`
}

// Engine answers point queries for one built pipeline under one engine
// and configuration, through a slice memo. Safe for concurrent use: the
// underlying evaluator only reads the frozen pipeline and the memo is
// internally synchronized.
type Engine struct {
	b    *driver.Build
	eval *driver.DemandEvaluator

	tracked map[string]bool
	states  map[string]map[string]bool // site → FSM state names
}

// New binds a query engine. memo may be shared across engines (and
// program versions — keys carry the program digests); nil gets a private
// default-capacity memo.
func New(b *driver.Build, engine string, cfg core.Config, memo *driver.SliceMemo) (*Engine, error) {
	eval, err := driver.NewDemandEvaluator(b, engine, cfg, memo)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		b:       b,
		eval:    eval,
		tracked: map[string]bool{},
		states:  map[string]map[string]bool{},
	}
	for _, site := range b.TS.TrackedSites() {
		e.tracked[site] = true
		names, err := b.TS.SiteStates(site)
		if err != nil {
			return nil, err
		}
		set := make(map[string]bool, len(names))
		for _, n := range names {
			set[n] = true
		}
		e.states[site] = set
	}
	return e, nil
}

// TrackedSites returns the sorted tracked allocation-site labels queries
// may name.
func (e *Engine) TrackedSites() []string { return e.b.TS.TrackedSites() }

// Validate checks a query against the program: known kind, tracked site,
// and — for node queries — an existing procedure, an in-range node index,
// and (canReach) an FSM state of the site's property. Validation is free
// of any analysis work, so servers can reject bad queries before paying
// for slices.
func (e *Engine) Validate(q Query) error {
	if _, err := ParseKind(string(q.Kind)); err != nil {
		return err
	}
	if !e.tracked[q.Site] {
		return fmt.Errorf("query: %s: site %q is not a tracked allocation site", q, q.Site)
	}
	if q.Kind == KindIsError {
		return nil
	}
	pc, ok := e.b.Core.CFG.ByProc[q.Proc]
	if !ok {
		return fmt.Errorf("query: %s: unknown procedure %q", q, q.Proc)
	}
	if q.Node < 0 || q.Node >= len(pc.Nodes) {
		return fmt.Errorf("query: %s: node %d out of range (procedure %q has %d nodes)",
			q, q.Node, q.Proc, len(pc.Nodes))
	}
	if q.Kind == KindCanReach && !e.states[q.Site][q.State] {
		return fmt.Errorf("query: %s: property tracking site %q has no state %q", q, q.Site, q.State)
	}
	return nil
}

// globalNode resolves a validated node query to the global CFG node ID.
func (e *Engine) globalNode(q Query) int {
	return e.b.Core.CFG.ByProc[q.Proc].Nodes[q.Node].ID
}

// answerFrom derives one validated query's answer from its slice table.
func (e *Engine) answerFrom(q Query, t *driver.SliceTable) Answer {
	a := Answer{Query: q}
	switch q.Kind {
	case KindIsError:
		a.Reachable = t.ErrorSite
	case KindStatesAt:
		a.States = t.StatesAtNode(e.globalNode(q))
	case KindCanReach:
		for _, s := range t.StatesAtNode(e.globalNode(q)) {
			if s == q.State {
				a.Reachable = true
				break
			}
		}
	}
	return a
}

// Answer evaluates a single query.
func (e *Engine) Answer(q Query) (Answer, driver.EvalStats, error) {
	answers, stats, err := e.AnswerBatch([]Query{q})
	if err != nil {
		return Answer{}, stats, err
	}
	return answers[0], stats, nil
}

// AnswerBatch evaluates a query batch: every query is validated first (an
// invalid query fails the whole batch before any analysis runs), the
// batch is coalesced to its distinct slices, the slices are resolved
// through the memo — missing ones computed together on the bounded pool —
// and every answer is derived from the resulting tables. Answers are
// positionally aligned with the queries and independent of batch
// composition, order and worker count.
func (e *Engine) AnswerBatch(qs []Query) ([]Answer, driver.EvalStats, error) {
	for i, q := range qs {
		if err := e.Validate(q); err != nil {
			return nil, driver.EvalStats{}, fmt.Errorf("query %d: %w", i, err)
		}
	}
	ids := make([]core.SliceID, len(qs))
	for i, q := range qs {
		ids[i] = core.SliceID(q.Site)
	}
	tables, stats, err := e.eval.Tables(ids)
	if err != nil {
		return nil, stats, err
	}
	answers := make([]Answer, len(qs))
	for i, q := range qs {
		answers[i] = e.answerFrom(q, tables[core.SliceID(q.Site)])
	}
	return answers, stats, nil
}

// SortQueries orders queries site-first (then kind, proc, node, state) —
// the coalescing order batches use for deterministic rendering. It is a
// convenience for tests and tools; AnswerBatch itself accepts any order.
func SortQueries(qs []Query) {
	sort.Slice(qs, func(i, j int) bool {
		a, b := qs[i], qs[j]
		if a.Site != b.Site {
			return a.Site < b.Site
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.State < b.State
	})
}
