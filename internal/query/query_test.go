package query

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"swift/internal/core"
	"swift/internal/driver"
)

var allEngines = []string{"td", "bu", "swift", "swift-async"}

// badProgram misuses two of its three tracked Files (h1 read-before-open,
// h2 double-open) through a helper, leaving h3 clean.
const badProgram = `
property File {
  states closed opened error
  error error
  open: closed -> opened
  close: opened -> closed
  read: opened -> opened
}
class Worker {
  method use(f) { f.read(); }
  method openTwice(f) { f.open(); f.open(); }
}
class Main {
  method main() {
    w = new Worker @w1
    a = new File @h1
    b = new File @h2
    c = new File @h3
    w.use(a)
    w.openTwice(b)
    c.open()
    c.read()
    c.close()
  }
}
`

// randomSource mirrors the driver package's seeded program generator:
// several tracked sites, helper methods with protocol-violating operation
// sequences, loops, branches and aliasing.
func randomSource(rng *rand.Rand) string {
	ops := []string{"open", "close", "read"}
	nSites := 1 + rng.Intn(4)
	nMethods := 1 + rng.Intn(3)

	var body func(depth int) string
	body = func(depth int) string {
		n := 1 + rng.Intn(3)
		out := ""
		for i := 0; i < n; i++ {
			switch k := rng.Intn(6); {
			case k == 0 && depth > 0:
				out += "while (*) { " + body(depth-1) + "} "
			case k == 1 && depth > 0:
				out += "if (*) { " + body(depth-1) + "} "
			case k == 2:
				out += "g = f; g." + ops[rng.Intn(len(ops))] + "(); "
			default:
				out += "f." + ops[rng.Intn(len(ops))] + "(); "
			}
		}
		return out
	}

	src := `
property File {
  states closed opened error
  error error
  open: closed -> opened
  close: opened -> closed
  read: opened -> opened
}
class Worker {
`
	for m := 0; m < nMethods; m++ {
		src += fmt.Sprintf("  method m%d(f) { %s}\n", m, body(2))
	}
	src += "}\nclass Main {\n  method main() {\n    w = new Worker @w\n"
	for s := 0; s < nSites; s++ {
		src += fmt.Sprintf("    f%d = new File @h%d\n", s, s)
	}
	src += "    u = new Worker @u0\n"
	for c := 0; c < 2+rng.Intn(4); c++ {
		src += fmt.Sprintf("    w.m%d(f%d)\n", rng.Intn(nMethods), rng.Intn(nSites))
	}
	src += "  }\n}\n"
	return src
}

// sweepQueries enumerates the full query space of a program: isError per
// site, statesAt per (site, proc, node), canReach per (site, proc, node,
// state).
func sweepQueries(e *Engine, b *driver.Build) []Query {
	var qs []Query
	procs := append([]string(nil), b.Core.CFG.Program.ProcNames()...)
	sort.Strings(procs)
	for _, site := range e.TrackedSites() {
		qs = append(qs, Query{Kind: KindIsError, Site: site})
		states, _ := b.TS.SiteStates(site)
		for _, proc := range procs {
			for n := range b.Core.CFG.ByProc[proc].Nodes {
				qs = append(qs, Query{Kind: KindStatesAt, Site: site, Proc: proc, Node: n})
				for _, st := range states {
					qs = append(qs, Query{Kind: KindCanReach, Site: site, Proc: proc, Node: n, State: st})
				}
			}
		}
	}
	return qs
}

// exhaustiveSiteStates renders one site's sorted distinct state names at a
// global node from a completed monolithic run.
func exhaustiveSiteStates(b *driver.Build, res *driver.Result, site string, node int) []string {
	var names []string
	for _, s := range res.TD.NodeStates(node) {
		if b.TS.Site(s) == site {
			names = append(names, b.TS.StateName(s))
		}
	}
	sort.Strings(names)
	j := 0
	for i, n := range names {
		if i == 0 || n != names[j-1] {
			names[j] = n
			j++
		}
	}
	return names[:j]
}

// checkAgainstExhaustive runs the full query sweep under every engine and
// asserts the acceptance contract: isError answers reconstruct the
// exhaustive error report exactly; a canReach sweep over error states
// reconstructs it too; and under the exhaustive engines (td, bu) statesAt
// and canReach equal the exhaustive run's per-node NodeStates.
func checkAgainstExhaustive(t *testing.T, label, src string) {
	t.Helper()
	for _, engine := range allEngines {
		b, err := driver.FromSource(src)
		if err != nil {
			t.Fatalf("%s: FromSource: %v", label, err)
		}
		cfg := core.DefaultConfig()
		cfg.K = 1 // exercise the bottom-up side in the hybrids
		mono, err := b.Run(engine, cfg)
		if err != nil {
			t.Fatalf("%s/%s: Run: %v", label, engine, err)
		}
		wantReport, err := b.ErrorReport(mono)
		if err != nil {
			t.Fatalf("%s/%s: ErrorReport: %v", label, engine, err)
		}
		e, err := New(b, engine, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		qs := sweepQueries(e, b)
		answers, stats, err := e.AnswerBatch(qs)
		if err != nil {
			t.Fatalf("%s/%s: AnswerBatch: %v", label, engine, err)
		}
		if stats.Slices != len(e.TrackedSites()) {
			t.Errorf("%s/%s: sweep coalesced to %d slices, want %d",
				label, engine, stats.Slices, len(e.TrackedSites()))
		}

		var gotReport []string
		reachError := map[string]bool{}
		for i, a := range answers {
			q := qs[i]
			switch q.Kind {
			case KindIsError:
				if a.Reachable {
					gotReport = append(gotReport, q.Site)
				}
			case KindCanReach:
				errState, err := b.TS.SiteErrorState(q.Site)
				if err != nil {
					t.Fatal(err)
				}
				if q.State == errState && a.Reachable {
					reachError[q.Site] = true
				}
			}
		}
		sort.Strings(gotReport)
		if len(gotReport) == 0 {
			gotReport = nil
		}
		var want []string = wantReport
		if len(want) == 0 {
			want = nil
		}
		if !reflect.DeepEqual(gotReport, want) {
			t.Errorf("%s/%s: isError sweep = %v, exhaustive report %v",
				label, engine, gotReport, wantReport)
		}
		var reachReport []string
		for s := range reachError {
			reachReport = append(reachReport, s)
		}
		sort.Strings(reachReport)
		if len(reachReport) == 0 {
			reachReport = nil
		}
		if !reflect.DeepEqual(reachReport, want) {
			t.Errorf("%s/%s: canReach(error) sweep = %v, exhaustive report %v",
				label, engine, reachReport, wantReport)
		}

		if engine != "td" && engine != "bu" {
			continue
		}
		for i, a := range answers {
			q := qs[i]
			if q.Kind == KindIsError {
				continue
			}
			node := b.Core.CFG.ByProc[q.Proc].Nodes[q.Node].ID
			want := exhaustiveSiteStates(b, mono, q.Site, node)
			switch q.Kind {
			case KindStatesAt:
				got := a.States
				if len(got) == 0 && len(want) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s/%s: %s = %v, exhaustive %v", label, engine, q, got, want)
				}
			case KindCanReach:
				wantReach := false
				for _, s := range want {
					if s == q.State {
						wantReach = true
					}
				}
				if a.Reachable != wantReach {
					t.Errorf("%s/%s: %s = %v, exhaustive %v", label, engine, q, a.Reachable, wantReach)
				}
			}
		}
	}
}

// TestQueriesMatchExhaustiveFixture pins the acceptance contract on the
// fixture program.
func TestQueriesMatchExhaustiveFixture(t *testing.T) {
	checkAgainstExhaustive(t, "bad", badProgram)
}

// TestQueriesMatchExhaustiveRandomPrograms is the seeded random-program
// property test: for every generated program and engine, query answers
// agree with the exhaustive run.
func TestQueriesMatchExhaustiveRandomPrograms(t *testing.T) {
	trials := 6
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(4000 + trial)))
		src := randomSource(rng)
		checkAgainstExhaustive(t, fmt.Sprintf("rand%d", trial), src)
	}
}

// answerFingerprint renders a batch's answers for byte-level comparison.
func answerFingerprint(answers []Answer) string {
	out := ""
	for _, a := range answers {
		out += fmt.Sprintf("%s -> reach=%v states=%v\n", a.Query, a.Reachable, a.States)
	}
	return out
}

// TestBatchDeterminism is the -race determinism test: the same batch,
// shuffled, against fresh engines at several worker counts — and again
// against a warm memo — produces identical answers per query.
func TestBatchDeterminism(t *testing.T) {
	b, err := driver.FromSource(badProgram)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.K = 1
	base, err := New(b, "swift", cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	qs := sweepQueries(base, b)
	answers, _, err := base.AnswerBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	byQuery := map[string]string{}
	for i, a := range answers {
		byQuery[qs[i].String()] = fmt.Sprintf("reach=%v states=%v", a.Reachable, a.States)
	}

	rng := rand.New(rand.NewSource(99))
	for _, workers := range []int{1, 2, 8} {
		shuffled := append([]Query(nil), qs...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		wcfg := cfg
		wcfg.SliceWorkers = workers
		e, err := New(b, "swift", wcfg, nil) // fresh engine and memo
		if err != nil {
			t.Fatal(err)
		}
		for pass := 0; pass < 2; pass++ { // cold, then warm
			got, stats, err := e.AnswerBatch(shuffled)
			if err != nil {
				t.Fatalf("workers=%d pass=%d: %v", workers, pass, err)
			}
			if pass == 1 && stats.Misses != 0 {
				t.Errorf("workers=%d: warm pass recomputed %d slices", workers, stats.Misses)
			}
			for i, a := range got {
				key := shuffled[i].String()
				if s := fmt.Sprintf("reach=%v states=%v", a.Reachable, a.States); s != byQuery[key] {
					t.Errorf("workers=%d pass=%d: %s = %s, want %s", workers, pass, key, s, byQuery[key])
				}
			}
		}
	}
}

// TestConcurrentAnswering hammers one engine (shared memo) from many
// goroutines under -race: answers stay consistent and the memo never
// serves a wrong table.
func TestConcurrentAnswering(t *testing.T) {
	b, err := driver.FromSource(badProgram)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(b, "td", core.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	qs := sweepQueries(e, b)
	want, _, err := e.AnswerBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	wantFP := answerFingerprint(want)

	const workers = 8
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(seed int64) {
			shuffled := append([]Query(nil), qs...)
			rng := rand.New(rand.NewSource(seed))
			rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
			got, _, err := e.AnswerBatch(shuffled)
			if err != nil {
				errs <- err
				return
			}
			byQ := map[string]Answer{}
			for i, a := range got {
				byQ[shuffled[i].String()] = a
			}
			ordered := make([]Answer, len(qs))
			for i, q := range qs {
				ordered[i] = byQ[q.String()]
				ordered[i].Query = q
			}
			if fp := answerFingerprint(ordered); fp != wantFP {
				errs <- fmt.Errorf("concurrent answers diverged:\n%s\nwant:\n%s", fp, wantFP)
				return
			}
			errs <- nil
		}(int64(w))
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestValidate covers every rejection path, none of which may run any
// analysis.
func TestValidate(t *testing.T) {
	b, err := driver.FromSource(badProgram)
	if err != nil {
		t.Fatal(err)
	}
	memo := driver.NewSliceMemo(0)
	e, err := New(b, "td", core.DefaultConfig(), memo)
	if err != nil {
		t.Fatal(err)
	}
	proc := b.Core.CFG.Program.ProcNames()[0]
	bad := []Query{
		{Kind: "reaches", Site: "h1"},                                        // unknown kind
		{Kind: KindIsError, Site: "h9"},                                      // unknown site
		{Kind: KindIsError, Site: "w1"},                                      // untracked site
		{Kind: KindStatesAt, Site: "h1", Proc: "Nope.m", Node: 0},            // unknown proc
		{Kind: KindStatesAt, Site: "h1", Proc: proc, Node: -1},               // node underflow
		{Kind: KindStatesAt, Site: "h1", Proc: proc, Node: 1 << 20},          // node overflow
		{Kind: KindCanReach, Site: "h1", Proc: proc, Node: 0, State: "ajar"}, // unknown state
	}
	for _, q := range bad {
		if err := e.Validate(q); err == nil {
			t.Errorf("Validate(%v) accepted an invalid query", q)
		}
	}
	// An invalid query fails the whole batch before any slice runs.
	if _, _, err := e.AnswerBatch([]Query{{Kind: KindIsError, Site: "h1"}, bad[0]}); err == nil {
		t.Error("batch with an invalid query should fail")
	}
	if s := memo.Stats(); s.Entries != 0 || s.Misses != 0 {
		t.Errorf("validation ran analysis work: %+v", s)
	}
	good := []Query{
		{Kind: KindIsError, Site: "h1"},
		{Kind: KindStatesAt, Site: "h1", Proc: proc, Node: 0},
		{Kind: KindCanReach, Site: "h1", Proc: proc, Node: 0, State: "opened"},
	}
	for _, q := range good {
		if err := e.Validate(q); err != nil {
			t.Errorf("Validate(%v): %v", q, err)
		}
	}
}

// TestParseKind pins the kind namespace.
func TestParseKind(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(string(k))
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k, got, err)
		}
	}
	for _, s := range []string{"", "IsError", "canreach", "states"} {
		if _, err := ParseKind(s); err == nil {
			t.Errorf("ParseKind(%q) should fail", s)
		}
	}
}
