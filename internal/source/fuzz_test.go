package source

import (
	"strings"
	"testing"

	"swift/internal/hir"
)

// FuzzParse feeds arbitrary text to the front end: it must never panic, and
// whatever it accepts must print and re-parse to the same program
// (Print∘Parse is a fixpoint on the accepted language).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"class Main { method main() { skip } }",
		"property P { states a error\n error error\n m: a -> a }\nclass Main { method main() { x = new P; x.m() } }",
		"class A extends B {}\nclass B {}\nclass Main { method main() { skip } }",
		"class Main { method main() { if (*) { skip } else { skip }\n while (*) { skip } } }",
		"class Main { method main() { x = new Main @s1\n y = x\n x.f = y\n z = x.f } }",
		"// comment\n/* block */ class Main { method main() { skip } }",
		"class Main { method main() { w = new W\n r = w.go(r) } }\nclass W { method go(a) { return a } }",
		"property File { states closed opened error\n error error\n open: closed -> opened }",
		"class Main { method main() { x = 42 } }",
		"class Main { method main() { x = new Ghost } }",
		"}{)(*=;:.@->",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		out := hir.Print(prog)
		prog2, err := Parse(out)
		if err != nil {
			t.Fatalf("printed form rejected: %v\ninput: %q\nprinted:\n%s", err, src, out)
		}
		if out2 := hir.Print(prog2); out2 != out {
			t.Fatalf("Print∘Parse not a fixpoint\nfirst:\n%s\nsecond:\n%s", out, out2)
		}
	})
}

// FuzzLexer checks the tokenizer never panics and always terminates with an
// EOF token.
func FuzzLexer(f *testing.F) {
	f.Add("class A { method m() { x = y } }")
	f.Add(strings.Repeat("/*", 50))
	f.Add("a\n=\nb@;;;->->")
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := lex(src)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].kind != tokEOF {
			t.Fatalf("token stream does not end with EOF: %v", toks)
		}
	})
}
