// Package source implements the mini-Java front end: a lexer and recursive-
// descent parser producing the high-level IR of package hir. The surface
// language has classes with single inheritance, instance methods, fields,
// allocation with optional site labels, virtual calls, abstracted branch
// conditions, and property blocks declaring type-state machines for tracked
// built-in types:
//
//	property File {
//	  states closed opened error
//	  error error
//	  open: closed -> opened
//	  close: opened -> closed
//	}
//
//	class Main {
//	  method main() {
//	    f = new File @h1
//	    w = new Worker
//	    w.process(f)
//	  }
//	}
//
//	class Worker {
//	  method process(f) { f.open(); f.close() }
//	}
//
// Statements are terminated by newlines or semicolons (the lexer inserts a
// semicolon at a newline after an identifier or closing parenthesis, like
// Go). All keywords are contextual, so FSM states may be called "error".
package source

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates lexical token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokPunct // single punctuation: { } ( ) , = ; : . @ *
	tokArrow // ->
)

// token is one lexical token with its source position.
type token struct {
	kind tokKind
	text string
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokArrow:
		return "'->'"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// Error is a front-end error with a source position.
type Error struct {
	Line int
	Col  int
	Msg  string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg) }

func errorf(line, col int, format string, args ...any) *Error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

// lex tokenizes the input, inserting semicolons at newlines that follow an
// identifier or a closing parenthesis.
func lex(src string) ([]token, error) {
	var toks []token
	line, col := 1, 1
	i := 0
	lastInsertable := false // previous token can end a statement
	emit := func(k tokKind, text string, l, c int) {
		toks = append(toks, token{kind: k, text: text, line: l, col: c})
		lastInsertable = k == tokIdent || (k == tokPunct && text == ")")
	}
	for i < len(src) {
		ch := src[i]
		switch {
		case ch == '\n':
			if lastInsertable {
				emit(tokPunct, ";", line, col)
			}
			line++
			col = 1
			i++
		case ch == ' ' || ch == '\t' || ch == '\r':
			i++
			col++
		case ch == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case ch == '/' && i+1 < len(src) && src[i+1] == '*':
			depth := 1
			j := i + 2
			c2 := col + 2
			for j < len(src) && depth > 0 {
				if src[j] == '\n' {
					line++
					c2 = 1
					j++
					continue
				}
				if src[j] == '*' && j+1 < len(src) && src[j+1] == '/' {
					depth--
					j += 2
					c2 += 2
					continue
				}
				j++
				c2++
			}
			if depth != 0 {
				return nil, errorf(line, c2, "unterminated block comment")
			}
			i = j
			col = c2
		case ch == '-' && i+1 < len(src) && src[i+1] == '>':
			emit(tokArrow, "->", line, col)
			i += 2
			col += 2
		case strings.ContainsRune("{}(),=;:.@*", rune(ch)):
			emit(tokPunct, string(ch), line, col)
			i++
			col++
		case isIdentStart(rune(ch)):
			start := i
			c0 := col
			for i < len(src) && isIdentPart(rune(src[i])) {
				i++
				col++
			}
			emit(tokIdent, src[start:i], line, c0)
		default:
			return nil, errorf(line, col, "unexpected character %q", string(ch))
		}
	}
	if lastInsertable {
		emit(tokPunct, ";", line, col)
	}
	toks = append(toks, token{kind: tokEOF, line: line, col: col})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_' || r == '$'
}

func isIdentPart(r rune) bool {
	return isIdentStart(r) || unicode.IsDigit(r)
}
