package source

import (
	"swift/internal/hir"
	"swift/internal/typestate"
)

// Parse parses mini-Java source into a finalized, validated HIR program.
func Parse(src string) (*hir.Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, prog: hir.NewProgram()}
	if err := p.program(); err != nil {
		return nil, err
	}
	p.prog.Finalize()
	if err := p.prog.Validate(); err != nil {
		return nil, err
	}
	return p.prog, nil
}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
	prog *hir.Program
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

// is reports whether the current token is the given punctuation or, for
// identifier words, the given contextual keyword.
func (p *parser) is(text string) bool {
	t := p.cur()
	return (t.kind == tokPunct || t.kind == tokIdent) && t.text == text
}

func (p *parser) accept(text string) bool {
	if p.is(text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if p.accept(text) {
		return nil
	}
	t := p.cur()
	return errorf(t.line, t.col, "expected %q, found %s", text, t)
}

func (p *parser) ident() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", errorf(t.line, t.col, "expected identifier, found %s", t)
	}
	p.pos++
	return t.text, nil
}

// skipSeps consumes any run of statement separators.
func (p *parser) skipSeps() {
	for p.accept(";") {
	}
}

func (p *parser) program() error {
	for {
		p.skipSeps()
		t := p.cur()
		switch {
		case t.kind == tokEOF:
			return nil
		case p.is("property"):
			if err := p.property(); err != nil {
				return err
			}
		case p.is("class"):
			if err := p.class(); err != nil {
				return err
			}
		default:
			return errorf(t.line, t.col, "expected 'property' or 'class', found %s", t)
		}
	}
}

// property parses a property block into a typestate.Property.
func (p *parser) property() error {
	start := p.cur()
	p.next() // property
	name, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.expect("{"); err != nil {
		return err
	}
	var states []string
	errState := ""
	var transitions [][3]string
	for {
		p.skipSeps()
		if p.accept("}") {
			break
		}
		t := p.cur()
		if t.kind == tokEOF {
			return errorf(start.line, start.col, "unterminated property %q", name)
		}
		word, err := p.ident()
		if err != nil {
			return err
		}
		switch {
		case word == "states" && len(states) == 0:
			for p.cur().kind == tokIdent {
				s, _ := p.ident()
				states = append(states, s)
			}
			if len(states) == 0 {
				return errorf(t.line, t.col, "property %q: empty states list", name)
			}
		case word == "error" && errState == "" && p.cur().kind == tokIdent:
			errState, _ = p.ident()
		default:
			// transition: method ':' from '->' to
			if err := p.expect(":"); err != nil {
				return err
			}
			from, err := p.ident()
			if err != nil {
				return err
			}
			if p.cur().kind != tokArrow {
				return errorf(p.cur().line, p.cur().col, "expected '->', found %s", p.cur())
			}
			p.next()
			to, err := p.ident()
			if err != nil {
				return err
			}
			transitions = append(transitions, [3]string{word, from, to})
		}
	}
	if len(states) == 0 {
		return errorf(start.line, start.col, "property %q: missing states declaration", name)
	}
	if errState == "" {
		return errorf(start.line, start.col, "property %q: missing error declaration", name)
	}
	prop, err := typestate.NewProperty(name, states, errState, transitions)
	if err != nil {
		return errorf(start.line, start.col, "property %q: %v", name, err)
	}
	p.prog.AddProperty(prop)
	return nil
}

func (p *parser) class() error {
	p.next() // class
	name, err := p.ident()
	if err != nil {
		return err
	}
	super := ""
	if p.is("extends") {
		p.next()
		if super, err = p.ident(); err != nil {
			return err
		}
	}
	c := hir.NewClass(name, super)
	if err := p.expect("{"); err != nil {
		return err
	}
	for {
		p.skipSeps()
		if p.accept("}") {
			break
		}
		t := p.cur()
		switch {
		case p.is("field"):
			p.next()
			f, err := p.ident()
			if err != nil {
				return err
			}
			c.Fields = append(c.Fields, f)
		case p.is("method"):
			m, err := p.method()
			if err != nil {
				return err
			}
			c.AddMethod(m)
		case t.kind == tokEOF:
			return errorf(t.line, t.col, "unterminated class %q", name)
		default:
			return errorf(t.line, t.col, "expected 'field' or 'method' in class %q, found %s", name, t)
		}
	}
	p.prog.AddClass(c)
	return nil
}

func (p *parser) method() (*hir.Method, error) {
	p.next() // method
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var params []string
	for !p.is(")") {
		v, err := p.ident()
		if err != nil {
			return nil, err
		}
		params = append(params, v)
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &hir.Method{Name: name, Params: params, Body: body}, nil
}

func (p *parser) block() (*hir.Block, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	b := &hir.Block{}
	for {
		p.skipSeps()
		if p.accept("}") {
			return b, nil
		}
		if p.cur().kind == tokEOF {
			t := p.cur()
			return nil, errorf(t.line, t.col, "unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
}

// condBlock parses "( * )" block — the abstracted condition of if/while.
func (p *parser) condBlock() (*hir.Block, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	if err := p.expect("*"); err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return p.block()
}

func (p *parser) stmt() (hir.Stmt, error) {
	t := p.cur()
	switch {
	case p.is("if"):
		p.next()
		then, err := p.condBlock()
		if err != nil {
			return nil, err
		}
		st := &hir.If{Then: then}
		p.skipSeps()
		if p.is("else") {
			p.next()
			if st.Else, err = p.block(); err != nil {
				return nil, err
			}
		}
		return st, nil
	case p.is("while"):
		p.next()
		body, err := p.condBlock()
		if err != nil {
			return nil, err
		}
		return &hir.While{Body: body}, nil
	case p.is("skip"):
		p.next()
		return &hir.Skip{}, nil
	case p.is("return"):
		p.next()
		src, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &hir.Return{Src: src}, nil
	case t.kind == tokIdent:
		return p.simpleStmt()
	}
	return nil, errorf(t.line, t.col, "expected statement, found %s", t)
}

// simpleStmt parses assignments, loads, stores and calls, all of which
// start with an identifier.
func (p *parser) simpleStmt() (hir.Stmt, error) {
	first, _ := p.ident()
	switch {
	case p.accept("."):
		member, err := p.ident()
		if err != nil {
			return nil, err
		}
		if p.is("(") {
			// first.member(args)
			args, err := p.args()
			if err != nil {
				return nil, err
			}
			return &hir.CallStmt{Recv: first, Method: member, Args: args}, nil
		}
		// first.member = src
		if err := p.expect("="); err != nil {
			return nil, err
		}
		src, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &hir.StoreStmt{Base: first, Field: member, Src: src}, nil

	case p.is("("):
		// this-call: first(args)
		args, err := p.args()
		if err != nil {
			return nil, err
		}
		return &hir.CallStmt{Method: first, Args: args}, nil

	case p.accept("="):
		return p.assignRHS(first)
	}
	t := p.cur()
	return nil, errorf(t.line, t.col, "expected '=', '.' or '(' after %q, found %s", first, t)
}

// assignRHS parses the right-hand side of "dst = …".
func (p *parser) assignRHS(dst string) (hir.Stmt, error) {
	if p.is("new") {
		p.next()
		typ, err := p.ident()
		if err != nil {
			return nil, err
		}
		site := ""
		if p.accept("@") {
			if site, err = p.ident(); err != nil {
				return nil, err
			}
		}
		return &hir.NewStmt{Dst: dst, Type: typ, Site: site}, nil
	}
	first, err := p.ident()
	if err != nil {
		return nil, err
	}
	switch {
	case p.accept("."):
		member, err := p.ident()
		if err != nil {
			return nil, err
		}
		if p.is("(") {
			args, err := p.args()
			if err != nil {
				return nil, err
			}
			return &hir.CallStmt{Dst: dst, Recv: first, Method: member, Args: args}, nil
		}
		return &hir.LoadStmt{Dst: dst, Base: first, Field: member}, nil
	case p.is("("):
		args, err := p.args()
		if err != nil {
			return nil, err
		}
		return &hir.CallStmt{Dst: dst, Method: first, Args: args}, nil
	}
	return &hir.Assign{Dst: dst, Src: first}, nil
}

func (p *parser) args() ([]string, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var out []string
	for !p.is(")") {
		v, err := p.ident()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return out, nil
}
