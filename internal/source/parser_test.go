package source

import (
	"strings"
	"testing"

	"swift/internal/hir"
)

func TestParseRoundtrip(t *testing.T) {
	const src = `
property File {
  states closed opened error
  error error
  open: closed -> opened
  close: opened -> closed
}

class Main {
  method main() {
    f = new File @h1
    w = new Worker
    w.run(f)
  }
}

class Worker extends Base {
  field cache
  method run(f) {
    f.open()
    x = f
    this.cache = x
    y = this.cache
    if (*) { y.close() } else { f.close() }
    while (*) { skip }
    r = helper(x, y)
    return r
  }
  method helper(a, b) { return a }
}

class Base {
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	out := hir.Print(prog)
	// Reparse the printed form; it must parse cleanly and reprint
	// identically (fixpoint of Print∘Parse).
	prog2, err := Parse(out)
	if err != nil {
		t.Fatalf("reparse of printed program failed: %v\n%s", err, out)
	}
	if out2 := hir.Print(prog2); out2 != out {
		t.Fatalf("print/parse not a fixpoint:\n--- first\n%s\n--- second\n%s", out, out2)
	}
	// Structure checks.
	w := prog.Class("Worker")
	if w == nil || w.Super != "Base" {
		t.Fatalf("Worker class mis-parsed: %+v", w)
	}
	if len(w.Fields) != 1 || w.Fields[0] != "cache" {
		t.Errorf("fields = %v", w.Fields)
	}
	run := w.Method("run")
	if run == nil || len(run.Params) != 1 {
		t.Fatalf("run method mis-parsed")
	}
	prop := prog.Properties["File"]
	if prop == nil || len(prop.States) != 3 {
		t.Fatalf("property mis-parsed: %+v", prop)
	}
}

func TestParseSemicolonInsertion(t *testing.T) {
	// Semicolons and newlines are interchangeable statement separators.
	oneLine := `
property P { states a error; error error; m: a -> a }
class Main { method main() { x = new P; x.m(); y = x } }
`
	if _, err := Parse(oneLine); err != nil {
		t.Fatalf("semicolon-separated form rejected: %v", err)
	}
}

func TestParseComments(t *testing.T) {
	src := `
// line comment
property P { states a error
  error error /* block
  comment spanning lines */
  m: a -> a
}
class Main { method main() { x = new P /* inline */ ; x.m() } }
`
	if _, err := Parse(src); err != nil {
		t.Fatalf("comments rejected: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"lex", "class Main { method main() { x = 42 } }", "unexpected character"},
		{"no entry", "class Other { method m() { skip } }", "entry"},
		{"dup class", "class A {}\nclass A {}\nclass Main { method main() { skip } }", "duplicate class"},
		{"bad extends", "class A extends Ghost {}\nclass Main { method main() { skip } }", "unknown class"},
		{"cycle", "class A extends B {}\nclass B extends A {}\nclass Main { method main() { skip } }", "cycle"},
		{"return not last", "class Main { method main() { skip } }\nclass A { method m() { return x; skip } }", "final statement"},
		{"property clash", "property A { states s error\n error error }\nclass A {}\nclass Main { method main() { skip } }", "clashes"},
		{"method clash", "property P { states s error\n error error\n m: s -> s }\nclass A { method m() { skip } }\nclass Main { method main() { skip } }", "clashes"},
		{"dup site", "class Main { method main() { x = new Main @s\n y = new Main @s } }", "already used"},
		{"unknown type", "class Main { method main() { x = new Ghost } }", "unknown type"},
		{"undefined call", "class Main { method main() { w = new Main\n w.nothing() } }", "undefined method"},
		{"unterminated", "class Main { method main() { skip }", "unterminated"},
		{"missing states", "property P { error e }\nclass Main { method main() { skip } }", "states"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error = %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestParsePositions(t *testing.T) {
	_, err := Parse("class Main {\n  method main() {\n    x = 42\n  }\n}")
	perr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T, want *Error", err)
	}
	if perr.Line != 3 {
		t.Errorf("error line = %d, want 3 (%v)", perr.Line, perr)
	}
}

func TestLexerStatementSplit(t *testing.T) {
	// "x = y" then "foo(a)" on separate lines must NOT parse as a call
	// "y(...)": the inserted semicolon separates them.
	src := `
class Main { method main() {
  w = new Helper
  x = w
  w.go(x)
} }
class Helper { method go(a) { skip } }
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	body := prog.Class("Main").Method("main").Body
	if n := len(body.Stmts); n != 3 {
		t.Fatalf("main has %d statements, want 3:\n%s", n, hir.Print(prog))
	}
	if _, ok := body.Stmts[1].(*hir.Assign); !ok {
		t.Errorf("second statement is %T, want assign", body.Stmts[1])
	}
}
