package store

import (
	"os"
	"path/filepath"
	"testing"
)

func TestProbeHealthyDisk(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Probe(); err != nil {
		t.Fatalf("probe on healthy store: %v", err)
	}
	// The sentinel must not linger.
	ents, err := os.ReadDir(filepath.Join(dir, "zz"))
	if err == nil && len(ents) != 0 {
		t.Fatalf("probe left %d sentinel files behind", len(ents))
	}
	if n := s.Stats().DiskErrors; n != 0 {
		t.Fatalf("healthy probe counted %d disk errors", n)
	}
}

func TestProbeMemoryOnlyTriviallyHealthy(t *testing.T) {
	s, err := Open("", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Probe(); err != nil {
		t.Fatalf("memory-only probe: %v", err)
	}
}

// TestProbeBrokenDiskFails replaces the store directory with a plain
// file, so every write under it fails with ENOTDIR — this breaks writes
// even when the test runs as root, which ignores permission bits. The
// memory tier stays warm on purpose: the probe must not be fooled by it.
func TestProbeBrokenDiskFails(t *testing.T) {
	parent := t.TempDir()
	dir := filepath.Join(parent, "store")
	s, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	key := Key{Kind: "result", Body: "x"}
	s.Put(key, []byte("blob"))
	if _, ok := s.Get(key); !ok {
		t.Fatal("memory tier lost the blob")
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Probe(); err == nil {
		t.Fatal("probe succeeded on a broken disk tier")
	}
	if n := s.Stats().DiskErrors; n == 0 {
		t.Fatal("failed probe did not count a disk error")
	}
	// The memory tier still serves: degradation, not amnesia.
	if _, ok := s.Get(key); !ok {
		t.Fatal("memory tier stopped serving after probe failure")
	}
}

func TestCloseIdempotentAndFinal(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	key := Key{Kind: "result", Body: "y"}
	s.Put(key, []byte("blob"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("Get served from a closed store")
	}
	s.Put(Key{Kind: "result", Body: "z"}, []byte("late"))
	s.Delete(key)
	if err := s.Probe(); err == nil {
		t.Fatal("probe succeeded on a closed store")
	}
	// The pre-close blob survives on disk untouched by the late ops.
	s2, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if blob, ok := s2.Get(key); !ok || string(blob) != "blob" {
		t.Fatalf("reopened store: got %q, %v", blob, ok)
	}
	if _, ok := s2.Get(Key{Kind: "result", Body: "z"}); ok {
		t.Fatal("write after close reached the disk")
	}
}
