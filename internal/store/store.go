// Package store implements the persistent artifact cache behind warm-start
// analysis and the swiftd server: a content-addressed blob store with an
// in-memory LRU tier over an on-disk tier.
//
// Entries are opaque byte blobs (the codecs live with the packages that
// own the encoded types) addressed by a structured Key. The key is hashed
// to a hex ID; the blob is stored in memory up to a byte budget and
// always on disk (when a directory is configured) under
// dir/<id[:2]>/<id>. Disk writes go through a temp file and rename, so a
// crashed writer never leaves a torn entry — readers see the old blob or
// the new one, nothing in between. Disk read errors and short/corrupt
// files degrade to misses; the codecs validate content, the store only
// moves bytes.
package store

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Key identifies one cached artifact. Every field that can change the
// artifact's bytes must be part of it: the engines' outputs depend on the
// procedure bodies analyzed (Body: a closure hash), the client's frozen
// construction (Frozen: property layout and may-alias oracle digest), the
// engine and its thresholds, and the ablation knobs (they do not change
// result tables, but keys stay distinct so stats remain attributable).
type Key struct {
	// Kind separates artifact namespaces: "summary" (one trigger outcome),
	// "tables" (intern-table snapshot + TD tables of a full run), "result"
	// (swiftd response blobs).
	Kind string
	// Proc is the trigger procedure ("" for whole-program artifacts).
	Proc string
	// Body is the hex digest of the procedure bodies the artifact depends
	// on — the call-graph closure of Proc, or the whole program.
	Body string
	// Frozen is the client's frozen-construction digest
	// (typestate.FrozenDigest).
	Frozen string
	// Engine, K and Theta pin the solver and its thresholds.
	Engine string
	K      int
	Theta  int
	// RawCFG, NoTransferMemo, NoSparse and NoStructIndex are the ablation
	// knobs. They never change result tables, but keyed runs must not
	// alias: a cached response reports the run's own telemetry, and an
	// ablation request served from another knob setting's entry would
	// silently skip the ablation.
	RawCFG         bool
	NoTransferMemo bool
	NoSparse       bool
	NoStructIndex  bool
}

// ID returns the content address of the key: a hex SHA-256 over an
// unambiguous (length-delimited) rendering of the fields.
func (k Key) ID() string {
	h := sha256.New()
	for _, s := range []string{k.Kind, k.Proc, k.Body, k.Frozen, k.Engine} {
		fmt.Fprintf(h, "%d:%s;", len(s), s)
	}
	fmt.Fprintf(h, "%d;%d;%t;%t;%t;%t", k.K, k.Theta, k.RawCFG, k.NoTransferMemo, k.NoSparse, k.NoStructIndex)
	return hex.EncodeToString(h.Sum(nil))
}

// Stats are cumulative counters of one Store. Counters only increase;
// read them via Store.Stats.
type Stats struct {
	MemHits    int64
	MemMisses  int64 // memory-tier misses (includes those that then hit disk)
	DiskHits   int64
	DiskMisses int64
	Puts       int64
	Deletes    int64
	Evictions  int64
	DiskErrors int64
}

// Store is a two-tier blob cache, safe for concurrent use.
type Store struct {
	dir string // "" = memory-only

	mu       sync.Mutex
	closed   bool
	maxBytes int64
	curBytes int64
	lru      *list.List               // front = most recent; values are *entry
	entries  map[string]*list.Element // id → element
	stats    Stats

	probeSeq atomic.Int64
}

// entry is one memory-tier resident blob.
type entry struct {
	id   string
	blob []byte
}

// Open returns a store over dir (created if missing) holding at most
// maxMemBytes in memory. An empty dir means memory-only; maxMemBytes <= 0
// disables the memory tier.
func Open(dir string, maxMemBytes int64) (*Store, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	return &Store{
		dir:      dir,
		maxBytes: maxMemBytes,
		lru:      list.New(),
		entries:  map[string]*list.Element{},
	}, nil
}

// path returns the disk location of an id, fanned out by the first byte
// so directories stay small.
func (s *Store) path(id string) string {
	return filepath.Join(s.dir, id[:2], id)
}

// Get returns the blob stored under key, or ok=false on a miss. The
// returned slice must not be modified: the memory tier hands out its
// resident copy.
func (s *Store) Get(key Key) ([]byte, bool) {
	id := key.ID()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false
	}
	if el, ok := s.entries[id]; ok {
		s.lru.MoveToFront(el)
		s.stats.MemHits++
		blob := el.Value.(*entry).blob
		s.mu.Unlock()
		return blob, true
	}
	s.stats.MemMisses++
	s.mu.Unlock()

	if s.dir == "" {
		return nil, false
	}
	blob, err := os.ReadFile(s.path(id))
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		if os.IsNotExist(err) {
			s.stats.DiskMisses++
		} else {
			s.stats.DiskErrors++
		}
		return nil, false
	}
	s.stats.DiskHits++
	s.installLocked(id, blob)
	return blob, true
}

// Put stores blob under key in both tiers. The store keeps the slice;
// callers must not modify it afterwards.
func (s *Store) Put(key Key, blob []byte) {
	id := key.ID()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.stats.Puts++
	s.installLocked(id, blob)
	s.mu.Unlock()

	if s.dir == "" {
		return
	}
	if err := s.writeFile(id, blob); err != nil {
		s.mu.Lock()
		s.stats.DiskErrors++
		s.mu.Unlock()
	}
}

// installLocked inserts or refreshes a memory-tier entry and evicts from
// the LRU tail until the byte budget holds. A blob larger than the whole
// budget is evicted too — even freshly installed — so the documented
// "at most maxMemBytes in memory" bound always holds; the disk tier
// still serves oversized blobs. Callers hold mu.
func (s *Store) installLocked(id string, blob []byte) {
	if s.maxBytes <= 0 {
		return
	}
	if el, ok := s.entries[id]; ok {
		e := el.Value.(*entry)
		s.curBytes += int64(len(blob)) - int64(len(e.blob))
		e.blob = blob
		s.lru.MoveToFront(el)
	} else {
		s.entries[id] = s.lru.PushFront(&entry{id: id, blob: blob})
		s.curBytes += int64(len(blob))
	}
	for s.curBytes > s.maxBytes && s.lru.Len() > 0 {
		el := s.lru.Back()
		e := el.Value.(*entry)
		s.lru.Remove(el)
		delete(s.entries, e.id)
		s.curBytes -= int64(len(e.blob))
		s.stats.Evictions++
	}
}

// Delete removes the entry stored under key from both tiers. Deleting an
// absent key is a no-op. Callers use it to drop blobs whose content
// failed validation (a corrupt snapshot or cached response), so the next
// request misses cleanly instead of re-failing on the same bytes forever.
func (s *Store) Delete(key Key) {
	id := key.ID()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if el, ok := s.entries[id]; ok {
		e := el.Value.(*entry)
		s.lru.Remove(el)
		delete(s.entries, id)
		s.curBytes -= int64(len(e.blob))
	}
	s.stats.Deletes++
	s.mu.Unlock()

	if s.dir == "" {
		return
	}
	if err := os.Remove(s.path(id)); err != nil && !os.IsNotExist(err) {
		s.mu.Lock()
		s.stats.DiskErrors++
		s.mu.Unlock()
	}
}

// writeFile persists a blob atomically: temp file in the target
// directory, then rename.
func (s *Store) writeFile(id string, blob []byte) error {
	dir := filepath.Dir(s.path(id))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "put-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, s.path(id)); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// MemBytes returns the current memory-tier footprint (for tests).
func (s *Store) MemBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.curBytes
}

// MemLen returns the number of memory-resident entries (for tests).
func (s *Store) MemLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// Close marks the store closed and drops the memory tier. Every write
// already went through a temp-file-plus-rename, so there is nothing to
// flush: closing exists so a shutting-down server can guarantee no
// straggler request mutates the directory after the drain finishes —
// subsequent Gets miss, Puts and Deletes are no-ops, and Probe fails.
// Close is idempotent and safe to race with in-flight operations.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.lru.Init()
	s.entries = map[string]*list.Element{}
	s.curBytes = 0
	return nil
}

// Probe verifies the disk tier is usable: it writes a small sentinel
// blob through the normal atomic-write path, reads it back from disk,
// and removes it — deliberately bypassing the memory tier, which would
// otherwise mask a dead disk behind cache hits. Memory-only stores have
// no disk tier to break and trivially pass. Probe failures count as
// DiskErrors. swiftd's /healthz calls this so liveness reflects storage
// health.
func (s *Store) Probe() error {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return fmt.Errorf("store: closed")
	}
	if s.dir == "" {
		return nil
	}
	// Unique per probe so concurrent probes never race on one file
	// (writeFile's rename is atomic, but a reader could otherwise observe
	// another probe's delete).
	id := fmt.Sprintf("zzprobe-%d", s.probeSeq.Add(1))
	blob := []byte(id)
	fail := func(stage string, err error) error {
		s.mu.Lock()
		s.stats.DiskErrors++
		s.mu.Unlock()
		return fmt.Errorf("store: probe %s: %w", stage, err)
	}
	if err := s.writeFile(id, blob); err != nil {
		return fail("write", err)
	}
	got, err := os.ReadFile(s.path(id))
	if err != nil {
		return fail("read", err)
	}
	if !bytes.Equal(got, blob) {
		return fail("verify", fmt.Errorf("sentinel mismatch: got %d bytes", len(got)))
	}
	if err := os.Remove(s.path(id)); err != nil {
		return fail("remove", err)
	}
	return nil
}
