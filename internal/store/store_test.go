package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func k(kind, proc string) Key {
	return Key{Kind: kind, Proc: proc, Body: "b", Frozen: "f", Engine: "swift", K: 5, Theta: 1}
}

// TestKeyIDDistinct: every field must contribute to the address, and the
// length-delimited rendering must not let adjacent strings bleed into
// each other.
func TestKeyIDDistinct(t *testing.T) {
	base := k("summary", "p")
	variants := []Key{base}
	add := func(mut func(*Key)) {
		v := base
		mut(&v)
		variants = append(variants, v)
	}
	add(func(v *Key) { v.Kind = "tables" })
	add(func(v *Key) { v.Proc = "q" })
	add(func(v *Key) { v.Body = "b2" })
	add(func(v *Key) { v.Frozen = "f2" })
	add(func(v *Key) { v.Engine = "td" })
	add(func(v *Key) { v.K = 6 })
	add(func(v *Key) { v.Theta = 2 })
	add(func(v *Key) { v.RawCFG = true })
	add(func(v *Key) { v.NoTransferMemo = true })
	// Concatenation ambiguity: ("ab","c") vs ("a","bc").
	add(func(v *Key) { v.Kind, v.Proc = "summaryp", "" })
	seen := map[string]int{}
	for i, v := range variants {
		id := v.ID()
		if j, dup := seen[id]; dup {
			t.Errorf("variants %d and %d share ID %s", j, i, id)
		}
		seen[id] = i
	}
	if base.ID() != k("summary", "p").ID() {
		t.Error("identical keys produced different IDs")
	}
}

func TestMemoryTierRoundTrip(t *testing.T) {
	s, err := Open("", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k("summary", "p")); ok {
		t.Fatal("empty store hit")
	}
	s.Put(k("summary", "p"), []byte("hello"))
	blob, ok := s.Get(k("summary", "p"))
	if !ok || string(blob) != "hello" {
		t.Fatalf("get = %q, %v", blob, ok)
	}
	// Overwrite replaces.
	s.Put(k("summary", "p"), []byte("world"))
	if blob, _ := s.Get(k("summary", "p")); string(blob) != "world" {
		t.Fatalf("after overwrite got %q", blob)
	}
	st := s.Stats()
	if st.MemHits != 2 || st.MemMisses != 1 || st.Puts != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	s, err := Open("", 10) // fits two 5-byte blobs
	if err != nil {
		t.Fatal(err)
	}
	s.Put(k("x", "a"), []byte("aaaaa"))
	s.Put(k("x", "b"), []byte("bbbbb"))
	// Touch a so b is the LRU victim.
	s.Get(k("x", "a"))
	s.Put(k("x", "c"), []byte("ccccc"))
	if _, ok := s.Get(k("x", "b")); ok {
		t.Error("b survived eviction")
	}
	for _, proc := range []string{"a", "c"} {
		if _, ok := s.Get(k("x", proc)); !ok {
			t.Errorf("%s was evicted, want b only", proc)
		}
	}
	if ev := s.Stats().Evictions; ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
	if s.MemBytes() > 10 {
		t.Errorf("mem bytes = %d over budget", s.MemBytes())
	}
}

// TestOversizedBlobNotResident: a blob larger than the whole memory
// budget must not stay resident (it would pin the tier over budget
// forever); with a disk tier it is still served from disk.
func TestOversizedBlobNotResident(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 10)
	if err != nil {
		t.Fatal(err)
	}
	s.Put(k("x", "small"), []byte("aaaaa"))
	s.Put(k("x", "huge"), make([]byte, 100))
	if s.MemBytes() > 10 {
		t.Errorf("mem bytes = %d, over the 10-byte budget", s.MemBytes())
	}
	if blob, ok := s.Get(k("x", "huge")); !ok || len(blob) != 100 {
		t.Fatalf("disk tier did not serve the oversized blob: %d bytes, %v", len(blob), ok)
	}
	// The disk-hit promotion attempt must not leave it resident either.
	if s.MemBytes() > 10 {
		t.Errorf("mem bytes = %d after promotion, over budget", s.MemBytes())
	}

	// Memory-only store: the oversized blob is simply not cached.
	m, err := Open("", 10)
	if err != nil {
		t.Fatal(err)
	}
	m.Put(k("x", "huge"), make([]byte, 100))
	if m.MemLen() != 0 || m.MemBytes() != 0 {
		t.Errorf("memory-only store kept oversized blob: len=%d bytes=%d", m.MemLen(), m.MemBytes())
	}
}

// TestDelete removes an entry from both tiers and tolerates absent keys.
func TestDelete(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	key := k("result", "p")
	s.Put(key, []byte("cached"))
	s.Delete(key)
	if _, ok := s.Get(key); ok {
		t.Fatal("deleted entry still served")
	}
	if _, err := os.Stat(filepath.Join(dir, key.ID()[:2], key.ID())); !os.IsNotExist(err) {
		t.Errorf("disk file survived delete: %v", err)
	}
	// Deleting an absent key is a no-op, not an error.
	s.Delete(k("result", "absent"))
	st := s.Stats()
	if st.Deletes != 2 || st.DiskErrors != 0 {
		t.Errorf("stats = %+v, want 2 deletes and no disk errors", st)
	}
}

func TestDiskTierPersistsAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	s1.Put(k("tables", ""), []byte("snapshot"))

	// A fresh store over the same directory serves the blob from disk and
	// promotes it into memory.
	s2, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	blob, ok := s2.Get(k("tables", ""))
	if !ok || string(blob) != "snapshot" {
		t.Fatalf("cross-open get = %q, %v", blob, ok)
	}
	st := s2.Stats()
	if st.DiskHits != 1 || st.MemMisses != 1 {
		t.Errorf("stats = %+v, want one disk hit", st)
	}
	if blob, ok := s2.Get(k("tables", "")); !ok || string(blob) != "snapshot" {
		t.Fatalf("promoted get = %q, %v", blob, ok)
	} else if s2.Stats().MemHits != 1 {
		t.Errorf("second get did not hit memory: %+v", s2.Stats())
	}
}

func TestMemoryDisabledStillUsesDisk(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Put(k("x", "p"), []byte("data"))
	if s.MemLen() != 0 {
		t.Errorf("mem len = %d with disabled memory tier", s.MemLen())
	}
	if blob, ok := s.Get(k("x", "p")); !ok || string(blob) != "data" {
		t.Fatalf("disk-only get = %q, %v", blob, ok)
	}
}

func TestMissingFileIsAMiss(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k("x", "p")); ok {
		t.Fatal("hit on empty disk store")
	}
	if st := s.Stats(); st.DiskMisses != 1 || st.DiskErrors != 0 {
		t.Errorf("stats = %+v, want one clean disk miss", st)
	}
}

// TestConcurrentAccess hammers one store from many goroutines; run under
// -race this is the data-race check the issue calls for.
func TestConcurrentAccess(t *testing.T) {
	s, err := Open(t.TempDir(), 256) // small budget forces eviction churn
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := k("x", fmt.Sprintf("p%d", i%10))
				want := []byte(fmt.Sprintf("blob-%d", i%10))
				s.Put(key, want)
				if blob, ok := s.Get(key); ok && string(blob) != string(want) {
					t.Errorf("g%d: got %q, want %q", g, blob, want)
				}
			}
		}(g)
	}
	wg.Wait()
	st := s.Stats()
	if st.Puts != 8*50 {
		t.Errorf("puts = %d, want %d", st.Puts, 8*50)
	}
}

// TestCorruptDiskEntryServed documents the contract split: the store
// moves bytes without validating them (a truncated file is served
// as-is); rejecting corrupt content is the codecs' job.
func TestCorruptDiskEntryServed(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	key := k("tables", "")
	s.Put(key, []byte("good bytes"))
	id := key.ID()
	if err := os.WriteFile(filepath.Join(dir, id[:2], id), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	blob, ok := s.Get(key)
	if !ok || string(blob) != "torn" {
		t.Fatalf("get = %q, %v; the store should serve raw bytes", blob, ok)
	}
}
