package swiftd

// Single-flight coalescing: concurrent requests whose result-cache key
// is identical share one engine run. The first participant (the leader)
// computes; the rest wait for its result. Each participant departs when
// its request context ends, and when the last one is gone the flight's
// cancel channel closes, so an engine run whose audience has left
// aborts at its next periodic check instead of running to completion
// for nobody. CancelInflight (graceful shutdown) force-closes every
// flight's cancel channel the same way.

import (
	"sync"
	"sync/atomic"
)

// flightResult is the outcome every participant of a flight shares:
// a pre-marshaled response body plus its status, and the Retry-After
// seconds for shed (429) results.
type flightResult struct {
	status     int
	body       []byte
	retryAfter int
}

type flight struct {
	id string
	// done closes when the leader finished and res is valid; cancel
	// closes when every participant departed (or on cancelAll) and feeds
	// the engine's Config.Cancel.
	done   chan struct{}
	cancel chan struct{}

	group    *flightGroup
	waiters  int // guarded by group.mu
	canceled bool
	finished bool
	res      flightResult
}

func (f *flight) result() flightResult {
	<-f.done
	return f.res
}

type flightGroup struct {
	mu        sync.Mutex
	flights   map[string]*flight
	coalesced atomic.Int64
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flights: map[string]*flight{}}
}

// join registers the caller as a participant of id's flight, creating
// it (leader == true) if none is in flight.
func (g *flightGroup) join(id string) (*flight, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.flights[id]; ok {
		f.waiters++
		return f, false
	}
	f := &flight{
		id:      id,
		done:    make(chan struct{}),
		cancel:  make(chan struct{}),
		group:   g,
		waiters: 1,
	}
	g.flights[id] = f
	return f, true
}

// depart removes one participant. When the last one leaves an
// unfinished flight, its cancel channel closes: nobody is waiting for
// the result, so the engine run should stop.
func (g *flightGroup) depart(f *flight) {
	g.mu.Lock()
	f.waiters--
	cancelNow := f.waiters == 0 && !f.finished && !f.canceled
	if cancelNow {
		f.canceled = true
	}
	g.mu.Unlock()
	if cancelNow {
		close(f.cancel)
	}
}

// finish publishes the leader's result to every waiter and retires the
// flight, so the next identical request starts fresh (the result cache,
// not the flight group, serves repeats).
func (g *flightGroup) finish(f *flight, res flightResult) {
	g.mu.Lock()
	delete(g.flights, f.id)
	f.finished = true
	f.res = res
	g.mu.Unlock()
	close(f.done)
}

// cancelAll force-closes every in-flight cancel channel (graceful
// shutdown past the drain deadline). Leaders still publish their
// (canceled) results normally.
func (g *flightGroup) cancelAll() {
	g.mu.Lock()
	var toCancel []*flight
	for _, f := range g.flights {
		if !f.finished && !f.canceled {
			f.canceled = true
			toCancel = append(toCancel, f)
		}
	}
	g.mu.Unlock()
	for _, f := range toCancel {
		close(f.cancel)
	}
}
