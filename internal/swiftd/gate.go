package swiftd

// Admission control: a fixed pool of in-flight slots plus a bounded
// wait queue. Requests that find every slot busy may queue (up to
// maxQueue of them, each for at most queueWait) and are otherwise shed,
// so a burst degrades into fast 429s instead of an unbounded pile of
// concurrent engine runs fighting for memory and cores.

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

var (
	// errSaturated means the gate shed the request: every slot busy and
	// the queue full, or the queue wait expired.
	errSaturated = errors.New("swiftd: admission gate saturated")
	// errQueueCanceled means the request's context ended while queued.
	errQueueCanceled = errors.New("swiftd: request canceled while queued")
)

type gate struct {
	// slots is pre-filled with maxInFlight tokens; holding one admits an
	// engine run.
	slots     chan struct{}
	maxQueue  int64
	queueWait time.Duration

	// queued is the instantaneous wait-queue depth, bounded by maxQueue
	// via CAS admission (a channel of waiters would let two waiters
	// rendezvous through a zero-capacity queue).
	queued   atomic.Int64
	inFlight atomic.Int64
	peak     atomic.Int64
	shed     atomic.Int64
}

func newGate(maxInFlight, maxQueue int, queueWait time.Duration) *gate {
	g := &gate{
		slots:     make(chan struct{}, maxInFlight),
		maxQueue:  int64(maxQueue),
		queueWait: queueWait,
	}
	for i := 0; i < maxInFlight; i++ {
		g.slots <- struct{}{}
	}
	return g
}

// acquire admits the caller or fails with errSaturated (shed) or
// errQueueCanceled (ctx ended while waiting). Every nil return must be
// paired with a release.
func (g *gate) acquire(ctx context.Context) error {
	select {
	case <-g.slots:
		g.admitted()
		return nil
	default:
	}
	for {
		n := g.queued.Load()
		if n >= g.maxQueue {
			g.shed.Add(1)
			return errSaturated
		}
		if g.queued.CompareAndSwap(n, n+1) {
			break
		}
	}
	defer g.queued.Add(-1)
	timer := time.NewTimer(g.queueWait)
	defer timer.Stop()
	select {
	case <-g.slots:
		g.admitted()
		return nil
	case <-timer.C:
		g.shed.Add(1)
		return errSaturated
	case <-ctx.Done():
		return errQueueCanceled
	}
}

func (g *gate) admitted() {
	n := g.inFlight.Add(1)
	for {
		p := g.peak.Load()
		if n <= p || g.peak.CompareAndSwap(p, n) {
			return
		}
	}
}

func (g *gate) release() {
	g.inFlight.Add(-1)
	g.slots <- struct{}{}
}

// saturated reports whether a new request would be shed right now:
// every slot busy and the queue full. Feeds /readyz.
func (g *gate) saturated() bool {
	return len(g.slots) == 0 && g.queued.Load() >= g.maxQueue
}
