package swiftd

// POST /query: the demand-driven serving path. A request names a program
// and one point query (or a batch); the server answers from the
// slice-level demand engine (internal/query) instead of running the whole
// program. Two caches cooperate: whole-response blobs in the persistent
// store (Kind "queryresult", keyed by program digest + engine + normalized
// thresholds + a digest of the canonicalized batch), and the in-process
// slice memo shared across all /query requests — so distinct batches that
// touch the same sites still reuse each other's slice runs, across program
// versions too (slice keys carry the program digests).

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"swift/internal/core"
	"swift/internal/driver"
	"swift/internal/query"
	"swift/internal/store"
)

// queryRequest is the POST /query body. Exactly one of "query" (single)
// and "queries" (batch) must be present; config fields mirror /analyze.
type queryRequest struct {
	Source         string        `json:"source"`
	Engine         string        `json:"engine"`
	K              *int          `json:"k"`
	Theta          *int          `json:"theta"`
	RawCFG         bool          `json:"rawCFG"`
	NoTransferMemo bool          `json:"noTransferMemo"`
	Query          *query.Query  `json:"query,omitempty"`
	Queries        []query.Query `json:"queries,omitempty"`
}

// queryResponse is the POST /query reply. Answers align positionally with
// the request's queries (a single "query" yields one answer).
type queryResponse struct {
	Engine  string         `json:"engine"`
	Answers []query.Answer `json:"answers"`
	// Cached reports the whole response was served from the result cache
	// without touching the slice memo.
	Cached bool `json:"cached"`
	// Demand telemetry of the evaluation that produced this response: how
	// many distinct slices the batch coalesced to, how many came from the
	// slice memo, and the deterministic work spent on the misses.
	Slices     int   `json:"slices"`
	MemoHits   int   `json:"memoHits"`
	MemoMisses int   `json:"memoMisses"`
	Work       int   `json:"work"`
	ElapsedMS  int64 `json:"elapsedMs"`
}

// queryStats is the /stats query telemetry block.
type queryStats struct {
	// Batches counts /query requests that reached evaluation; Queries the
	// point queries inside them; MaxBatch the largest batch seen.
	Batches  int64 `json:"batches"`
	Queries  int64 `json:"queries"`
	MaxBatch int64 `json:"maxBatch"`
	// Per-kind counts of queries served.
	CanReach int64 `json:"canReach"`
	StatesAt int64 `json:"statesAt"`
	IsError  int64 `json:"isError"`
	// ResultHits/Misses/Corrupt count the whole-response blob cache;
	// SliceMemo snapshots the shared in-process slice memo.
	ResultHits   int64            `json:"resultHits"`
	ResultMisses int64            `json:"resultMisses"`
	SliceMemo    driver.MemoStats `json:"sliceMemo"`
}

// batchDigest canonicalizes a query batch into the result-cache key's Proc
// field. The batch is hashed in request order: order changes the answer
// order, so it is part of the response identity.
func batchDigest(qs []query.Query) string {
	blob, _ := json.Marshal(qs)
	sum := sha256.Sum256(blob)
	return "batch-" + hex.EncodeToString(sum[:16])
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w, r) {
		return
	}
	var req queryRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Engine == "" {
		req.Engine = "swift"
	}
	if !validEngines[req.Engine] {
		s.httpError(w, http.StatusBadRequest, "unknown engine %q (want td, bu, swift or swift-async)", req.Engine)
		return
	}
	if (req.Query == nil) == (len(req.Queries) == 0) {
		s.httpError(w, http.StatusBadRequest, `exactly one of "query" and "queries" must be set`)
		return
	}
	qs := req.Queries
	if req.Query != nil {
		qs = []query.Query{*req.Query}
	}
	cfg := core.DefaultConfig()
	if req.K != nil {
		cfg.K = *req.K
	}
	if req.Theta != nil {
		cfg.Theta = *req.Theta
	}
	cfg.RawCFG = req.RawCFG
	cfg.NoTransferMemo = req.NoTransferMemo

	b, err := driver.FromSource(req.Source)
	if err != nil {
		s.httpError(w, http.StatusUnprocessableEntity, "build failed: %v", err)
		return
	}
	// Validation runs before admission and coalescing: malformed queries
	// must fail fast with 400, not occupy an engine slot.
	e, err := query.New(b, req.Engine, cfg, s.sliceMemo)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	for i, q := range qs {
		if err := e.Validate(q); err != nil {
			s.httpError(w, http.StatusBadRequest, "query %d: %v", i, err)
			return
		}
	}
	s.countQueries(qs)

	// Whole-response cache: same program bytes, engine, thresholds and
	// batch → same answers, so a hit is exact.
	key := driver.SliceRunKey(b, req.Engine, cfg, "")
	key.Kind = "queryresult"
	key.Proc = batchDigest(qs)
	var resp queryResponse
	if s.lookupResult(key, &resp, &s.queryResultHits, &s.queryResultMisses) {
		resp.Cached = true
		s.writeJSON(w, resp)
		return
	}

	ctx, cancelCtx := s.requestContext(r)
	defer cancelCtx()
	s.serveFlight(w, r, ctx, key.ID(), func(cancel <-chan struct{}) flightResult {
		return s.computeQuery(ctx, b, req, cfg, qs, key, cancel)
	})
}

// computeQuery is the /query leader path: admission, the demand
// evaluation and the response blob all participants share. It builds a
// second engine over the same build and memo so the cancel channel
// reaches the slice runs without contaminating the validation engine.
func (s *Server) computeQuery(ctx context.Context, b *driver.Build, req queryRequest, cfg core.Config, qs []query.Query, key store.Key, cancel <-chan struct{}) flightResult {
	if err := s.gate.acquire(ctx); err != nil {
		return s.gateResult(err)
	}
	defer s.gate.release()
	cfg.Cancel = cancel
	e, err := query.New(b, req.Engine, cfg, s.sliceMemo)
	if err != nil {
		return flightResult{status: http.StatusInternalServerError, body: errorBody("%v", err)}
	}
	s.engineRuns.Add(1)

	start := time.Now()
	answers, stats, err := e.AnswerBatch(qs)
	if err != nil {
		if errors.Is(err, core.ErrCanceled) {
			s.canceledRuns.Add(1)
			return flightResult{status: http.StatusServiceUnavailable, body: errorBody("query evaluation canceled before completion")}
		}
		// An aborted slice run (budget, deadline): the batch has no
		// answers. Nothing is cached — a budget abort would recur, but a
		// deadline abort might not, and neither yields a response blob.
		return flightResult{status: http.StatusInternalServerError, body: errorBody("query evaluation failed: %v", err)}
	}
	resp := queryResponse{
		Engine:     req.Engine,
		Answers:    answers,
		Slices:     stats.Slices,
		MemoHits:   stats.Hits,
		MemoMisses: stats.Misses,
		Work:       stats.Work,
		ElapsedMS:  time.Since(start).Milliseconds(),
	}
	blob, merr := json.Marshal(resp)
	if merr != nil {
		s.encodeFailures.Add(1)
		s.logf("swiftd: query response encode failed: %v", merr)
		return flightResult{status: http.StatusInternalServerError, body: errorBody("response encode failed: %v", merr)}
	}
	s.store.Put(key, blob)
	return flightResult{status: http.StatusOK, body: append(blob, '\n')}
}

// countQueries folds one accepted batch into the query telemetry.
func (s *Server) countQueries(qs []query.Query) {
	s.queryBatches.Add(1)
	s.queriesServed.Add(int64(len(qs)))
	for {
		cur := s.queryMaxBatch.Load()
		if int64(len(qs)) <= cur || s.queryMaxBatch.CompareAndSwap(cur, int64(len(qs))) {
			break
		}
	}
	for _, q := range qs {
		switch q.Kind {
		case query.KindCanReach:
			s.queryCanReach.Add(1)
		case query.KindStatesAt:
			s.queryStatesAt.Add(1)
		case query.KindIsError:
			s.queryIsError.Add(1)
		}
	}
}

// queryStatsSnapshot renders the /stats query block.
func (s *Server) queryStatsSnapshot() queryStats {
	return queryStats{
		Batches:      s.queryBatches.Load(),
		Queries:      s.queriesServed.Load(),
		MaxBatch:     s.queryMaxBatch.Load(),
		CanReach:     s.queryCanReach.Load(),
		StatesAt:     s.queryStatesAt.Load(),
		IsError:      s.queryIsError.Load(),
		ResultHits:   s.queryResultHits.Load(),
		ResultMisses: s.queryResultMisses.Load(),
		SliceMemo:    s.sliceMemo.Stats(),
	}
}
