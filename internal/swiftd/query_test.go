package swiftd

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"swift/internal/core"
	"swift/internal/driver"
	"swift/internal/query"
)

func postQuery(t *testing.T, url string, req queryRequest) (queryResponse, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out queryResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return out, resp.StatusCode
}

// TestQuerySingleAndBatch covers the endpoint end to end: a single query,
// a batch, demand telemetry, the shared slice memo across requests, the
// whole-response cache, and the /stats query block.
func TestQuerySingleAndBatch(t *testing.T) {
	_, ts := newTestServer(t)

	// Single isError on the misused site.
	single, code := postQuery(t, ts.URL, queryRequest{
		Source: testProgram,
		Query:  &query.Query{Kind: query.KindIsError, Site: "h1"},
	})
	if code != http.StatusOK {
		t.Fatalf("single query status = %d", code)
	}
	if len(single.Answers) != 1 || !single.Answers[0].Reachable {
		t.Fatalf("isError(h1) answers = %+v, want one reachable answer", single.Answers)
	}
	if single.Cached || single.Slices != 1 || single.MemoMisses != 1 || single.Work <= 0 {
		t.Fatalf("single telemetry = %+v, want 1 fresh slice with work", single)
	}

	// A batch touching both sites: h1's slice comes from the memo shared
	// with the previous request, h2's is fresh.
	batch, code := postQuery(t, ts.URL, queryRequest{
		Source: testProgram,
		Queries: []query.Query{
			{Kind: query.KindIsError, Site: "h2"},
			{Kind: query.KindStatesAt, Site: "h1", Proc: "Worker.doubleOpen", Node: 1},
			{Kind: query.KindCanReach, Site: "h1", Proc: "Worker.doubleOpen", Node: 1, State: "error"},
		},
	})
	if code != http.StatusOK {
		t.Fatalf("batch status = %d", code)
	}
	if len(batch.Answers) != 3 {
		t.Fatalf("batch answers = %+v, want 3", batch.Answers)
	}
	if batch.Answers[0].Reachable {
		t.Error("isError(h2) should be false (h2 is used correctly)")
	}
	// h1 double-opens: its error state is live at Worker.doubleOpen's exit.
	if len(batch.Answers[1].States) == 0 {
		t.Errorf("statesAt(h1, doubleOpen exit) = %+v, want states", batch.Answers[1])
	}
	if !batch.Answers[2].Reachable {
		t.Error("canReach(h1, doubleOpen exit, error) should be true")
	}
	if batch.Slices != 2 || batch.MemoHits != 1 || batch.MemoMisses != 1 {
		t.Errorf("batch telemetry = %+v, want 2 slices with 1 memo hit", batch)
	}

	// The identical batch again: whole response from the blob cache.
	again, code := postQuery(t, ts.URL, queryRequest{
		Source: testProgram,
		Queries: []query.Query{
			{Kind: query.KindIsError, Site: "h2"},
			{Kind: query.KindStatesAt, Site: "h1", Proc: "Worker.doubleOpen", Node: 1},
			{Kind: query.KindCanReach, Site: "h1", Proc: "Worker.doubleOpen", Node: 1, State: "error"},
		},
	})
	if code != http.StatusOK || !again.Cached {
		t.Fatalf("repeat batch: status=%d cached=%v, want a cache hit", code, again.Cached)
	}
	if len(again.Answers) != 3 || !again.Answers[2].Reachable {
		t.Errorf("cached answers = %+v, want the original three", again.Answers)
	}

	stats := getStats(t, ts.URL)
	q := stats.Query
	if q.Batches != 3 || q.Queries != 7 || q.MaxBatch != 3 {
		t.Errorf("query stats = %+v, want 3 batches / 7 queries / maxBatch 3", q)
	}
	if q.IsError != 3 || q.StatesAt != 2 || q.CanReach != 2 {
		t.Errorf("per-kind counts = %+v, want isError 3, statesAt 2, canReach 2", q)
	}
	if q.ResultHits != 1 || q.ResultMisses != 2 {
		t.Errorf("query result cache = %+v, want 1 hit / 2 misses", q)
	}
	if q.SliceMemo.Misses != 2 || q.SliceMemo.Entries != 2 {
		t.Errorf("slice memo = %+v, want 2 misses and 2 entries", q.SliceMemo)
	}
}

// TestQueryRejectsBadRequests covers the endpoint's validation paths; none
// of them may run any analysis.
func TestQueryRejectsBadRequests(t *testing.T) {
	srv, ts := newTestServer(t)
	one := &query.Query{Kind: query.KindIsError, Site: "h1"}

	if _, code := postQuery(t, ts.URL, queryRequest{Source: testProgram, Engine: "frobnicate", Query: one}); code != http.StatusBadRequest {
		t.Errorf("bad engine status = %d, want 400", code)
	}
	if _, code := postQuery(t, ts.URL, queryRequest{Source: "class {", Query: one}); code != http.StatusUnprocessableEntity {
		t.Errorf("unparsable source status = %d, want 422", code)
	}
	if _, code := postQuery(t, ts.URL, queryRequest{Source: testProgram}); code != http.StatusBadRequest {
		t.Errorf("no query status = %d, want 400", code)
	}
	if _, code := postQuery(t, ts.URL, queryRequest{
		Source: testProgram, Query: one,
		Queries: []query.Query{*one},
	}); code != http.StatusBadRequest {
		t.Errorf("both query and queries status = %d, want 400", code)
	}
	for _, q := range []query.Query{
		{Kind: "reaches", Site: "h1"},
		{Kind: query.KindIsError, Site: "h9"},
		{Kind: query.KindStatesAt, Site: "h1", Proc: "Nope.m", Node: 0},
		{Kind: query.KindCanReach, Site: "h1", Proc: "Main.main", Node: 0, State: "ajar"},
	} {
		q := q
		if _, code := postQuery(t, ts.URL, queryRequest{Source: testProgram, Query: &q}); code != http.StatusBadRequest {
			t.Errorf("invalid query %v status = %d, want 400", q, code)
		}
	}
	resp, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query status = %d, want 405", resp.StatusCode)
	}
	if n := srv.sliceMemo.Stats().Entries; n != 0 {
		t.Errorf("rejected requests ran %d slices", n)
	}
}

// TestQueryCorruptCacheDropped: /query shares /analyze's corrupt-entry
// deletion path — a garbage blob is deleted, counted, recomputed and
// replaced, instead of being re-parsed on every request.
func TestQueryCorruptCacheDropped(t *testing.T) {
	srv, ts := newTestServer(t)
	req := queryRequest{Source: testProgram, Query: &query.Query{Kind: query.KindIsError, Site: "h1"}}

	if _, code := postQuery(t, ts.URL, req); code != http.StatusOK {
		t.Fatalf("first request status = %d", code)
	}
	b, err := driver.FromSource(testProgram)
	if err != nil {
		t.Fatal(err)
	}
	key := driver.SliceRunKey(b, "swift", core.DefaultConfig(), "")
	key.Kind = "queryresult"
	key.Proc = batchDigest([]query.Query{*req.Query})
	srv.store.Put(key, []byte("not json"))

	second, code := postQuery(t, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("post-corruption status = %d", code)
	}
	if second.Cached {
		t.Fatal("corrupt entry was served as a cache hit")
	}
	if len(second.Answers) != 1 || !second.Answers[0].Reachable {
		t.Fatalf("recomputed answers = %+v, want isError(h1)=true", second.Answers)
	}
	third, _ := postQuery(t, ts.URL, req)
	if !third.Cached {
		t.Fatal("recompute did not replace the corrupt entry")
	}
	if stats := getStats(t, ts.URL); stats.ResultCorrupt != 1 {
		t.Errorf("resultCorrupt = %d, want 1", stats.ResultCorrupt)
	}
}

// TestQueryAgreesWithAnalyze: the demand path and the exhaustive /analyze
// path answer the error question identically for every engine.
func TestQueryAgreesWithAnalyze(t *testing.T) {
	_, ts := newTestServer(t)
	for _, engine := range []string{"td", "bu", "swift", "swift-async"} {
		an, code := postAnalyze(t, ts.URL, analyzeRequest{Source: testProgram, Engine: engine})
		if code != http.StatusOK {
			t.Fatalf("%s: /analyze status = %d", engine, code)
		}
		errSites := map[string]bool{}
		for _, s := range an.ErrorSites {
			errSites[s] = true
		}
		for _, site := range []string{"h1", "h2"} {
			q, code := postQuery(t, ts.URL, queryRequest{
				Source: testProgram, Engine: engine,
				Query: &query.Query{Kind: query.KindIsError, Site: site},
			})
			if code != http.StatusOK {
				t.Fatalf("%s: /query status = %d", engine, code)
			}
			if q.Answers[0].Reachable != errSites[site] {
				t.Errorf("%s: isError(%s) = %v, /analyze report %v",
					engine, site, q.Answers[0].Reachable, an.ErrorSites)
			}
		}
	}
}
