package swiftd

// Robustness tests: admission control and shedding, single-flight
// coalescing, cooperative cancellation on client disconnect and request
// timeout, drain mode, the probing health check, body caps and the
// access log.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"swift/internal/store"
)

// slowProgram builds a program variant whose /analyze run takes long
// enough (deep chain of loop-and-branch methods) that concurrent
// requests reliably overlap; the variant marker partitions every cache.
func slowProgram(variant, depth, width int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, `
property File {
  states closed opened error
  error error
  open: closed -> opened
  close: opened -> closed
  read: opened -> opened
}

class Main {
  method main() {
    v%d = new File @v%d
    w = new Worker @w1
    f = new File @h1
    f.open()
    w.m0(f)
    f.close()
  }
}

class Worker {
`, variant, variant)
	for i := 0; i < depth; i++ {
		fmt.Fprintf(&sb, "  method m%d(f) {\n    while (*) {\n", i)
		for j := 0; j < width; j++ {
			sb.WriteString("      if (*) { f.read() } else { f.open(); f.close(); f.open() }\n")
		}
		if i+1 < depth {
			fmt.Fprintf(&sb, "      this.m%d(f)\n", i+1)
		}
		sb.WriteString("    }\n  }\n")
	}
	sb.WriteString("}\n")
	return sb.String()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCoalesceIdenticalRequests is the single-flight acceptance check:
// N identical concurrent requests run the engine exactly once, every
// participant gets the same response bytes, and the coalesced counter
// accounts for the other N-1.
func TestCoalesceIdenticalRequests(t *testing.T) {
	srv, ts := newTestServerOpts(t, Options{Quiet: true, MaxInFlight: 2})
	const n = 6
	body, _ := json.Marshal(analyzeRequest{Source: slowProgram(1, 30, 15)})

	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/analyze", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d", i, resp.StatusCode)
				return
			}
			bodies[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()

	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d got different bytes than request 0", i)
		}
	}
	if got := srv.engineRuns.Load(); got != 1 {
		t.Errorf("engineRuns = %d, want exactly 1", got)
	}
	if got := srv.flights.coalesced.Load(); got != n-1 {
		t.Errorf("coalesced = %d, want %d", got, n-1)
	}
	var resp analyzeResponse
	if err := json.Unmarshal(bodies[0], &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.ErrorSites) != 1 || resp.ErrorSites[0] != "h1" {
		t.Errorf("error sites = %v, want [h1]", resp.ErrorSites)
	}
}

// TestShedWith429 saturates a 1-slot, 0-queue gate and asserts the
// second request is shed with 429 + Retry-After while /readyz turns
// unready; after the first run finishes the gate recovers.
func TestShedWith429(t *testing.T) {
	srv, ts := newTestServerOpts(t, Options{
		Quiet: true, MaxInFlight: 1, MaxQueue: 0, QueueWait: 50 * time.Millisecond,
	})

	firstDone := make(chan int, 1)
	body1, _ := json.Marshal(analyzeRequest{Source: slowProgram(1, 30, 15)})
	go func() {
		resp, err := http.Post(ts.URL+"/analyze", "application/json", bytes.NewReader(body1))
		if err != nil {
			firstDone <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		firstDone <- resp.StatusCode
	}()
	waitFor(t, "first run in flight", func() bool { return srv.gate.inFlight.Load() == 1 })

	ready, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, ready.Body)
	ready.Body.Close()
	if ready.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz while saturated = %d, want 503", ready.StatusCode)
	}

	body2, _ := json.Marshal(analyzeRequest{Source: slowProgram(2, 30, 15)})
	resp, err := http.Post(ts.URL+"/analyze", "application/json", bytes.NewReader(body2))
	if err != nil {
		t.Fatal(err)
	}
	shedBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated request status = %d, want 429 (body %s)", resp.StatusCode, shedBody)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	if !strings.Contains(string(shedBody), "saturated") {
		t.Errorf("shed body = %s, want a structured saturation error", shedBody)
	}
	if got := srv.gate.shed.Load(); got != 1 {
		t.Errorf("shed = %d, want 1", got)
	}

	if code := <-firstDone; code != http.StatusOK {
		t.Fatalf("first request status = %d, want 200", code)
	}
	ready2, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, ready2.Body)
	ready2.Body.Close()
	if ready2.StatusCode != http.StatusOK {
		t.Errorf("/readyz after recovery = %d, want 200", ready2.StatusCode)
	}
}

// TestRequestTimeout504: a run that exceeds the per-request deadline
// returns a structured 504 and its engine run is canceled — the slot
// frees up without the run completing.
func TestRequestTimeout504(t *testing.T) {
	srv, ts := newTestServerOpts(t, Options{
		Quiet: true, MaxInFlight: 1, ReqTimeout: 100 * time.Millisecond,
	})
	body, _ := json.Marshal(analyzeRequest{Source: slowProgram(1, 30, 15)})
	resp, err := http.Post(ts.URL+"/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", resp.StatusCode, out)
	}
	if !strings.Contains(string(out), "deadline") {
		t.Errorf("504 body = %s, want a structured deadline error", out)
	}
	if got := srv.timeouts.Load(); got != 1 {
		t.Errorf("timeouts = %d, want 1", got)
	}
	waitFor(t, "canceled run to unwind", func() bool {
		return srv.canceledRuns.Load() == 1 && srv.gate.inFlight.Load() == 0
	})
}

// TestClientDisconnectCancelsRun: closing the client connection while a
// run is in flight cancels the engine run and writes nothing.
func TestClientDisconnectCancelsRun(t *testing.T) {
	srv, ts := newTestServerOpts(t, Options{Quiet: true, MaxInFlight: 1})
	body, _ := json.Marshal(analyzeRequest{Source: slowProgram(1, 30, 15)})
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/analyze", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	waitFor(t, "run in flight", func() bool { return srv.gate.inFlight.Load() == 1 })
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("disconnected request still got a response")
	}
	waitFor(t, "canceled run to unwind", func() bool {
		return srv.canceledRuns.Load() == 1 && srv.gate.inFlight.Load() == 0
	})
	if got := srv.timeouts.Load(); got != 0 {
		t.Errorf("timeouts = %d, want 0 (disconnect is not a deadline)", got)
	}
}

// TestDrainRejectsNewWork: BeginDrain turns /readyz unready and rejects
// analysis endpoints with 503, while /healthz and /stats stay up.
func TestDrainRejectsNewWork(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.BeginDrain()

	for _, path := range []string{"/analyze", "/query"} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("POST %s while draining = %d, want 503", path, resp.StatusCode)
		}
	}
	ready, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, ready.Body)
	ready.Body.Close()
	if ready.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz while draining = %d, want 503", ready.StatusCode)
	}
	for _, path := range []string{"/healthz", "/stats"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s while draining = %d, want 200", path, resp.StatusCode)
		}
	}
	stats := getStats(t, ts.URL)
	if !stats.Robustness.Draining {
		t.Error("stats.robustness.draining = false while draining")
	}
}

// TestHealthzProbesStore: /healthz reflects disk-tier health — it fails
// (503, counted) once the store directory is replaced by a plain file,
// which breaks every write with ENOTDIR even when running as root.
func TestHealthzProbesStore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "st")
	st, err := store.Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(st, Options{Quiet: true})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy probe status = %d", resp.StatusCode)
	}

	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("broken-disk probe status = %d, want 503 (body %s)", resp.StatusCode, out)
	}
	if !strings.Contains(string(out), "probe") {
		t.Errorf("probe failure body = %s, want a structured probe error", out)
	}
	if got := srv.probeFailures.Load(); got == 0 {
		t.Error("probeFailures = 0 after a failed probe")
	}
}

// TestOversizedBody413: a body past MaxBody gets a structured 413 and
// is counted.
func TestOversizedBody413(t *testing.T) {
	srv, ts := newTestServerOpts(t, Options{Quiet: true, MaxBody: 1024})
	big, _ := json.Marshal(analyzeRequest{Source: strings.Repeat("x", 4096)})
	resp, err := http.Post(ts.URL+"/analyze", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413 (body %s)", resp.StatusCode, out)
	}
	if !strings.Contains(string(out), "1024") {
		t.Errorf("413 body = %s, want the configured limit", out)
	}
	if got := srv.oversizedBodies.Load(); got != 1 {
		t.Errorf("oversizedBodies = %d, want 1", got)
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer for capturing the access
// log, which is written from handler goroutines.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestAccessLog: every request produces one log line with method, path
// and status unless Quiet is set.
func TestAccessLog(t *testing.T) {
	var buf syncBuffer
	st, err := store.Open("", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(st, Options{Logger: log.New(&buf, "", 0)})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	waitFor(t, "access log line", func() bool {
		return strings.Contains(buf.String(), "GET /healthz 200")
	})
}
