// Package swiftd implements the analysis server behind cmd/swiftd: a
// JSON-over-HTTP front end over the persistent artifact store, hardened
// for production use. Beyond the three cache layers (whole-response
// blobs, per-trigger summaries, intern-table snapshots) it provides:
//
//   - cooperative cancellation: every engine run carries a cancel
//     channel wired to the request context, so a client disconnect or a
//     per-request deadline aborts the run at its next periodic check;
//   - admission control: a bounded in-flight gate with a bounded wait
//     queue sheds excess load with 429 + Retry-After instead of
//     accepting unbounded work;
//   - single-flight coalescing: concurrent requests for the same result
//     key share one engine run and one response blob;
//   - graceful shutdown: BeginDrain flips /readyz and rejects new
//     analysis work, CancelInflight aborts stragglers past the drain
//     deadline.
package swiftd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"swift/internal/core"
	"swift/internal/driver"
	"swift/internal/store"
)

// Options configures a Server. Zero values take the documented
// defaults, except MaxQueue: a zero queue really is a zero-length queue
// (requests that find every slot busy are shed immediately), because
// "no queue" is a meaningful production configuration.
type Options struct {
	// MaxInFlight bounds concurrently executing engine runs; defaults to
	// runtime.GOMAXPROCS(0).
	MaxInFlight int
	// MaxQueue bounds requests waiting for an in-flight slot. Negative
	// values mean zero.
	MaxQueue int
	// QueueWait bounds how long a queued request waits for a slot before
	// being shed; defaults to 2s.
	QueueWait time.Duration
	// ReqTimeout is the per-request deadline (0 = none). A request that
	// exceeds it gets a structured 504 and its engine run is canceled.
	ReqTimeout time.Duration
	// MaxBody caps request body bytes (413 beyond); defaults to 8 MiB.
	MaxBody int64
	// Quiet suppresses the per-request access log.
	Quiet bool
	// Logger receives the access log and internal error reports;
	// defaults to log.Default().
	Logger *log.Logger
}

func (o Options) withDefaults() Options {
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if o.MaxQueue < 0 {
		o.MaxQueue = 0
	}
	if o.QueueWait <= 0 {
		o.QueueWait = 2 * time.Second
	}
	if o.MaxBody <= 0 {
		o.MaxBody = 8 << 20
	}
	if o.Logger == nil {
		o.Logger = log.Default()
	}
	return o
}

// Server is the swiftd request handler. Three cache layers cooperate on
// a request: whole-response blobs (Kind "result"/"queryresult"),
// per-trigger summaries and intern-table snapshots (via driver.Warm).
// All are keyed by content digests, so serving a cached response for a
// byte-identical program is exact, not heuristic.
type Server struct {
	store *store.Store
	opts  Options

	// gate is the admission controller; flights coalesces concurrent
	// identical requests onto one engine run.
	gate    *gate
	flights *flightGroup

	// draining rejects new analysis work during graceful shutdown.
	draining atomic.Bool

	// sliceMemo is the in-process slice-table cache behind /query, shared
	// across requests and program versions (its keys carry the program
	// digests, so cross-version reuse is impossible by construction).
	sliceMemo *driver.SliceMemo

	requests      atomic.Int64
	resultHits    atomic.Int64
	resultMisses  atomic.Int64
	resultCorrupt atomic.Int64

	// /query telemetry (see queryStats).
	queryBatches      atomic.Int64
	queriesServed     atomic.Int64
	queryMaxBatch     atomic.Int64
	queryCanReach     atomic.Int64
	queryStatesAt     atomic.Int64
	queryIsError      atomic.Int64
	queryResultHits   atomic.Int64
	queryResultMisses atomic.Int64

	// Incremental telemetry: cumulative warm-path counters across every
	// engine run, surfaced in /stats so repeated /analyze calls on
	// successive program versions show how much the store reused.
	restoredRuns   atomic.Int64
	relaxedRuns    atomic.Int64
	failedRestores atomic.Int64
	summaryHits    atomic.Int64
	summaryMisses  atomic.Int64

	// Robustness telemetry (see robustnessStats).
	engineRuns      atomic.Int64
	canceledRuns    atomic.Int64
	timeouts        atomic.Int64
	probeFailures   atomic.Int64
	encodeFailures  atomic.Int64
	oversizedBodies atomic.Int64

	// Structure telemetry: cumulative sparse-scheduler counters across
	// every /analyze engine run (see structureStats).
	sparseRuns      atomic.Int64
	denseRuns       atomic.Int64
	sparsePops      atomic.Int64
	sparseSteps     atomic.Int64
	sparseReplay    atomic.Int64
	regionHits      atomic.Int64
	regionMisses    atomic.Int64
	regionFallbacks atomic.Int64
}

// analyzeRequest is the POST /analyze body. Absent k/theta default to
// core.DefaultConfig's thresholds; engine defaults to "swift".
type analyzeRequest struct {
	Source         string `json:"source"`
	Engine         string `json:"engine"`
	K              *int   `json:"k"`
	Theta          *int   `json:"theta"`
	RawCFG         bool   `json:"rawCFG"`
	NoTransferMemo bool   `json:"noTransferMemo"`
	// NoSparse pins the order-insensitive solvers to the dense FIFO
	// worklist; NoStructIndex keeps the sparse scheduler but ignores loop
	// structure. Both are A/B knobs: result tables are identical either
	// way (the hybrids always run dense).
	NoSparse      bool `json:"noSparse"`
	NoStructIndex bool `json:"noStructIndex"`
}

// analyzeResponse is the POST /analyze reply.
type analyzeResponse struct {
	Engine string `json:"engine"`
	// ErrorSites lists allocation sites whose tracked objects may reach a
	// property error state; empty means no misuse found.
	ErrorSites []string `json:"errorSites"`
	// Err is non-empty when the engine aborted (budget exhaustion); the
	// report is then unavailable rather than empty.
	Err       string `json:"err,omitempty"`
	Completed bool   `json:"completed"`
	// Cached reports the response was served from the result cache without
	// running any engine.
	Cached bool `json:"cached"`
	// TablesDigest fingerprints the deterministic result tables
	// (driver.ResultTablesDigest), so clients can compare runs.
	TablesDigest string `json:"tablesDigest,omitempty"`
	// Warm-start telemetry of the run that produced this response. Relaxed
	// means summaries were reused without a restored tables snapshot (same
	// report, but tables need not be byte-identical to the cold run).
	RestoredTables bool  `json:"restoredTables"`
	Relaxed        bool  `json:"relaxed"`
	SummaryHits    int64 `json:"summaryHits"`
	SummaryMisses  int64 `json:"summaryMisses"`
	ElapsedMS      int64 `json:"elapsedMs"`
}

// incrementalStats is the /stats incremental telemetry block.
type incrementalStats struct {
	// RestoredRuns counts runs that restored a tables snapshot
	// (byte-identity mode); RelaxedRuns counts runs with summary reuse but
	// no snapshot; FailedRestores counts corrupt snapshots dropped.
	RestoredRuns   int64 `json:"restoredRuns"`
	RelaxedRuns    int64 `json:"relaxedRuns"`
	FailedRestores int64 `json:"failedRestores"`
	SummaryHits    int64 `json:"summaryHits"`
	SummaryMisses  int64 `json:"summaryMisses"`
}

// robustnessStats is the /stats robustness telemetry block.
type robustnessStats struct {
	// EngineRuns counts engine executions actually started (cache hits
	// and coalesced followers don't run engines); Coalesced counts
	// requests that shared another request's in-flight run.
	EngineRuns int64 `json:"engineRuns"`
	Coalesced  int64 `json:"coalesced"`
	// Shed counts requests rejected with 429 by the admission gate;
	// CanceledRuns counts engine runs aborted by cancellation (client
	// disconnect, request timeout or shutdown); Timeouts counts 504s.
	Shed         int64 `json:"shed"`
	CanceledRuns int64 `json:"canceledRuns"`
	Timeouts     int64 `json:"timeouts"`
	// InFlight/QueueDepth are instantaneous; InFlightPeak is the high
	// watermark of concurrently executing runs.
	InFlight     int64 `json:"inFlight"`
	InFlightPeak int64 `json:"inFlightPeak"`
	QueueDepth   int64 `json:"queueDepth"`
	Draining     bool  `json:"draining"`
	// ProbeFailures counts failed /healthz store probes; EncodeFailures
	// counts response bodies that failed to encode; OversizedBodies
	// counts 413s.
	ProbeFailures   int64 `json:"probeFailures"`
	EncodeFailures  int64 `json:"encodeFailures"`
	OversizedBodies int64 `json:"oversizedBodies"`
}

// structureStats is the /stats structure-driven scheduler telemetry
// block: cumulative counters over every /analyze engine run whose
// top-down solve used the sparse priority worklist. Restored-snapshot
// and hybrid runs count as dense (they do no sparse propagation).
type structureStats struct {
	SparseRuns int64 `json:"sparseRuns"`
	DenseRuns  int64 `json:"denseRuns"`
	// Pops counts worklist batch pops across sparse runs; Steps is the
	// propagation-step total of the same runs (the dense-equivalent
	// work), so Steps/Pops is the realized batching factor.
	Pops  int64 `json:"pops"`
	Steps int64 `json:"steps"`
	// ReplayFacts counts facts installed by region-closure replay;
	// RegionHits/RegionMisses/RegionFallbacks are the region memo's
	// lookup outcomes.
	ReplayFacts     int64 `json:"replayFacts"`
	RegionHits      int64 `json:"regionHits"`
	RegionMisses    int64 `json:"regionMisses"`
	RegionFallbacks int64 `json:"regionFallbacks"`
}

// statsResponse is the GET /stats reply.
type statsResponse struct {
	Requests      int64            `json:"requests"`
	ResultHits    int64            `json:"resultHits"`
	ResultMisses  int64            `json:"resultMisses"`
	ResultCorrupt int64            `json:"resultCorrupt"`
	Incremental   incrementalStats `json:"incremental"`
	Query         queryStats       `json:"query"`
	Robustness    robustnessStats  `json:"robustness"`
	Structure     structureStats   `json:"structure"`
	Store         store.Stats      `json:"store"`
}

// New returns a Server over st. The store stays owned by the caller
// (swiftd's main closes it after the drain finishes).
func New(st *store.Store, opts Options) *Server {
	opts = opts.withDefaults()
	return &Server{
		store:     st,
		opts:      opts,
		gate:      newGate(opts.MaxInFlight, opts.MaxQueue, opts.QueueWait),
		flights:   newFlightGroup(),
		sliceMemo: driver.NewSliceMemo(0),
	}
}

// BeginDrain puts the server into graceful-shutdown mode: /readyz turns
// unready and new /analyze and /query requests are rejected with 503.
// In-flight requests keep running until they finish or CancelInflight.
func (s *Server) BeginDrain() {
	s.draining.Store(true)
}

// CancelInflight aborts every in-flight engine run by closing its
// flight's cancel channel. Used when the drain deadline passes with
// stragglers still computing: they return ErrCanceled (publishing
// nothing) and their requests complete with 503.
func (s *Server) CancelInflight() {
	s.flights.cancelAll()
}

// Handler returns the routed HTTP handler, wrapped in the access log.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/analyze", s.handleAnalyze)
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	return s.accessLog(mux)
}

// statusWriter records the status code and byte count a handler wrote,
// for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(b)
	sw.bytes += n
	return n, err
}

// accessLog wraps h with a per-request log line (suppressed by
// Options.Quiet). Status 0 means the handler wrote nothing — the client
// disconnected before a response existed.
func (s *Server) accessLog(h http.Handler) http.Handler {
	if s.opts.Quiet {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h.ServeHTTP(sw, r)
		status := "aborted"
		if sw.status != 0 {
			status = strconv.Itoa(sw.status)
		}
		s.logf("swiftd: %s %s %s %dB %s", r.Method, r.URL.Path, status, sw.bytes, time.Since(start).Round(time.Microsecond))
	})
}

func (s *Server) logf(format string, args ...any) {
	s.opts.Logger.Printf(format, args...)
}

// httpError writes a structured JSON error. Encode failures are counted
// and logged — a response we could not produce must not vanish silently.
func (s *Server) httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)}); err != nil {
		s.encodeFailures.Add(1)
		s.logf("swiftd: error response encode failed: %v", err)
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.encodeFailures.Add(1)
		s.logf("swiftd: response encode failed: %v", err)
	}
}

// errorBody renders the structured error payload used inside flight
// results (which carry pre-marshaled bytes).
func errorBody(format string, args ...any) []byte {
	blob, _ := json.Marshal(map[string]string{"error": fmt.Sprintf(format, args...)})
	return append(blob, '\n')
}

var validEngines = map[string]bool{"td": true, "bu": true, "swift": true, "swift-async": true}

// admit runs the shared request preamble: method, drain state and body
// cap. It reports whether the handler should proceed.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		s.httpError(w, http.StatusMethodNotAllowed, "POST required")
		return false
	}
	if s.draining.Load() {
		s.httpError(w, http.StatusServiceUnavailable, "server is shutting down")
		return false
	}
	s.requests.Add(1)
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBody)
	return true
}

// decodeBody decodes the JSON request body into v, mapping an oversized
// body to a structured 413 and anything else malformed to 400.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.oversizedBodies.Add(1)
			s.httpError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooLarge.Limit)
			return false
		}
		s.httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// requestContext applies the per-request deadline, if configured.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.opts.ReqTimeout > 0 {
		return context.WithTimeout(r.Context(), s.opts.ReqTimeout)
	}
	return r.Context(), func() {}
}

// serveFlight coalesces the computation identified by id: the first
// participant becomes the leader and runs compute with a cancel channel
// that closes when every participant has gone away (or on
// CancelInflight); later participants wait for the leader's result.
// Each participant departs when its ctx ends, so a per-request deadline
// or client disconnect stops counting toward keeping the run alive.
func (s *Server) serveFlight(w http.ResponseWriter, r *http.Request, ctx context.Context, id string, compute func(cancel <-chan struct{}) flightResult) {
	f, leader := s.flights.join(id)
	if !leader {
		s.flights.coalesced.Add(1)
	}
	stop := context.AfterFunc(ctx, func() { s.flights.depart(f) })
	defer func() {
		if stop() {
			// AfterFunc never ran: this participant departs normally.
			s.flights.depart(f)
		}
	}()

	if leader {
		res := compute(f.cancel)
		s.flights.finish(f, res)
		s.writeFlightResult(w, r, ctx, res)
		return
	}
	select {
	case <-f.done:
		s.writeFlightResult(w, r, ctx, f.result())
	case <-ctx.Done():
		s.writeFlightResult(w, r, ctx, flightResult{})
	}
}

// writeFlightResult delivers a flight's outcome to one participant. A
// participant whose own deadline fired while the client is still there
// gets a structured 504; one whose client is gone gets nothing.
func (s *Server) writeFlightResult(w http.ResponseWriter, r *http.Request, ctx context.Context, res flightResult) {
	if ctx.Err() != nil {
		if errors.Is(ctx.Err(), context.DeadlineExceeded) && r.Context().Err() == nil {
			s.timeouts.Add(1)
			s.httpError(w, http.StatusGatewayTimeout, "request exceeded the %s server deadline", s.opts.ReqTimeout)
		}
		return
	}
	if res.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(res.retryAfter))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(res.status)
	if _, err := w.Write(res.body); err != nil {
		s.logf("swiftd: response write failed: %v", err)
	}
}

// gateResult maps an admission failure to a flight result: saturation
// sheds with 429 + Retry-After sized to the queue wait, a context that
// ended while queued yields 503 (the participant's own 504/disconnect
// handling decides what, if anything, reaches the client).
func (s *Server) gateResult(err error) flightResult {
	if errors.Is(err, errSaturated) {
		retry := int(s.opts.QueueWait / time.Second)
		if retry < 1 {
			retry = 1
		}
		return flightResult{
			status:     http.StatusTooManyRequests,
			body:       errorBody("server saturated: %d runs in flight, queue full; retry later", s.opts.MaxInFlight),
			retryAfter: retry,
		}
	}
	return flightResult{
		status: http.StatusServiceUnavailable,
		body:   errorBody("request canceled while queued for admission"),
	}
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w, r) {
		return
	}
	var req analyzeRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Engine == "" {
		req.Engine = "swift"
	}
	if !validEngines[req.Engine] {
		s.httpError(w, http.StatusBadRequest, "unknown engine %q (want td, bu, swift or swift-async)", req.Engine)
		return
	}
	cfg := core.DefaultConfig()
	if req.K != nil {
		cfg.K = *req.K
	}
	if req.Theta != nil {
		cfg.Theta = *req.Theta
	}
	cfg.RawCFG = req.RawCFG
	cfg.NoTransferMemo = req.NoTransferMemo
	cfg.NoSparse = req.NoSparse
	cfg.NoStructIndex = req.NoStructIndex

	// The build (parse → points-to → lower → client construction) always
	// runs: the cache keys are content digests of the built pipeline.
	b, err := driver.FromSource(req.Source)
	if err != nil {
		s.httpError(w, http.StatusUnprocessableEntity, "build failed: %v", err)
		return
	}

	key := driver.ResultKey(b, req.Engine, cfg)
	{
		var resp analyzeResponse
		if s.lookupResult(key, &resp, &s.resultHits, &s.resultMisses) {
			resp.Cached = true
			s.writeJSON(w, resp)
			return
		}
	}

	ctx, cancelCtx := s.requestContext(r)
	defer cancelCtx()
	s.serveFlight(w, r, ctx, key.ID(), func(cancel <-chan struct{}) flightResult {
		return s.computeAnalyze(ctx, b, req, cfg, key, cancel)
	})
}

// computeAnalyze is the /analyze leader path: admission, the engine run
// and the response blob all participants share.
func (s *Server) computeAnalyze(ctx context.Context, b *driver.Build, req analyzeRequest, cfg core.Config, key store.Key, cancel <-chan struct{}) flightResult {
	if err := s.gate.acquire(ctx); err != nil {
		return s.gateResult(err)
	}
	defer s.gate.release()
	cfg.Cancel = cancel
	s.engineRuns.Add(1)

	start := time.Now()
	res, wstats, err := driver.Warm{Store: s.store}.Run(b, req.Engine, cfg)
	if err != nil {
		return flightResult{status: http.StatusInternalServerError, body: errorBody("run failed: %v", err)}
	}
	if wstats.RestoredTables {
		s.restoredRuns.Add(1)
	}
	if wstats.Relaxed {
		s.relaxedRuns.Add(1)
	}
	if wstats.RestoreFailed {
		s.failedRestores.Add(1)
	}
	s.summaryHits.Add(wstats.SummaryHits)
	s.summaryMisses.Add(wstats.SummaryMisses)
	if res.TD != nil && res.TD.Sparse.Enabled {
		sp := res.TD.Sparse
		s.sparseRuns.Add(1)
		s.sparsePops.Add(int64(sp.Pops))
		s.sparseSteps.Add(int64(res.TD.Steps))
		s.sparseReplay.Add(int64(sp.ReplayFacts))
		s.regionHits.Add(int64(sp.RegionHits))
		s.regionMisses.Add(int64(sp.RegionMisses))
		s.regionFallbacks.Add(int64(sp.RegionFallbacks))
	} else {
		s.denseRuns.Add(1)
	}
	if errors.Is(res.Err, core.ErrCanceled) {
		s.canceledRuns.Add(1)
		return flightResult{status: http.StatusServiceUnavailable, body: errorBody("analysis canceled before completion")}
	}
	resp := analyzeResponse{
		Engine:         res.Engine,
		Completed:      res.Completed(),
		TablesDigest:   driver.ResultTablesDigest(b, res),
		RestoredTables: wstats.RestoredTables,
		Relaxed:        wstats.Relaxed,
		SummaryHits:    wstats.SummaryHits,
		SummaryMisses:  wstats.SummaryMisses,
		ElapsedMS:      time.Since(start).Milliseconds(),
	}
	if res.Err != nil {
		resp.Err = res.Err.Error()
	} else {
		sites, rerr := b.ErrorReport(res)
		if rerr != nil {
			return flightResult{status: http.StatusInternalServerError, body: errorBody("report failed: %v", rerr)}
		}
		resp.ErrorSites = sites
	}
	blob, merr := json.Marshal(resp)
	if merr != nil {
		s.encodeFailures.Add(1)
		s.logf("swiftd: analyze response encode failed: %v", merr)
		return flightResult{status: http.StatusInternalServerError, body: errorBody("response encode failed: %v", merr)}
	}
	// Cache only deterministic outcomes: reruns of a wall-clock timeout
	// or a canceled run might succeed, so those must not be pinned.
	if res.Err == nil || (errors.Is(res.Err, core.ErrBudget) &&
		!errors.Is(res.Err, core.ErrDeadline) && !errors.Is(res.Err, core.ErrCanceled)) {
		s.store.Put(key, blob)
	}
	return flightResult{status: http.StatusOK, body: append(blob, '\n')}
}

// lookupResult fetches and decodes a cached response blob, counting the
// outcome. A blob that fails to decode is corrupt: it is deleted and
// counted (resultCorrupt) so the caller recomputes once instead of every
// subsequent request paying a failed unmarshal. Without the delete, a
// rerun that ends in a wall-clock timeout (which never publishes) would
// leave the garbage blob in place forever. Shared by /analyze and /query.
func (s *Server) lookupResult(key store.Key, out any, hits, misses *atomic.Int64) bool {
	if blob, ok := s.store.Get(key); ok {
		if err := json.Unmarshal(blob, out); err == nil {
			hits.Add(1)
			return true
		}
		s.store.Delete(key)
		s.resultCorrupt.Add(1)
	}
	misses.Add(1)
	return false
}

// handleHealthz is the liveness probe. It exercises the store's disk
// tier (write, read back, remove a sentinel) so a dead or full disk
// turns the daemon unhealthy instead of silently degrading every
// request to a cache miss.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if err := s.store.Probe(); err != nil {
		s.probeFailures.Add(1)
		s.httpError(w, http.StatusServiceUnavailable, "store probe failed: %v", err)
		return
	}
	w.Write([]byte("ok\n"))
}

// handleReadyz is the readiness probe: unready while draining (so load
// balancers stop sending work during shutdown) and while the admission
// gate is saturated (every slot busy and the queue full).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	if s.gate.saturated() {
		s.httpError(w, http.StatusServiceUnavailable, "saturated")
		return
	}
	w.Write([]byte("ok\n"))
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	s.writeJSON(w, statsResponse{
		Requests:      s.requests.Load(),
		ResultHits:    s.resultHits.Load(),
		ResultMisses:  s.resultMisses.Load(),
		ResultCorrupt: s.resultCorrupt.Load(),
		Incremental: incrementalStats{
			RestoredRuns:   s.restoredRuns.Load(),
			RelaxedRuns:    s.relaxedRuns.Load(),
			FailedRestores: s.failedRestores.Load(),
			SummaryHits:    s.summaryHits.Load(),
			SummaryMisses:  s.summaryMisses.Load(),
		},
		Query: s.queryStatsSnapshot(),
		Robustness: robustnessStats{
			EngineRuns:      s.engineRuns.Load(),
			Coalesced:       s.flights.coalesced.Load(),
			Shed:            s.gate.shed.Load(),
			CanceledRuns:    s.canceledRuns.Load(),
			Timeouts:        s.timeouts.Load(),
			InFlight:        s.gate.inFlight.Load(),
			InFlightPeak:    s.gate.peak.Load(),
			QueueDepth:      s.gate.queued.Load(),
			Draining:        s.draining.Load(),
			ProbeFailures:   s.probeFailures.Load(),
			EncodeFailures:  s.encodeFailures.Load(),
			OversizedBodies: s.oversizedBodies.Load(),
		},
		Structure: structureStats{
			SparseRuns:      s.sparseRuns.Load(),
			DenseRuns:       s.denseRuns.Load(),
			Pops:            s.sparsePops.Load(),
			Steps:           s.sparseSteps.Load(),
			ReplayFacts:     s.sparseReplay.Load(),
			RegionHits:      s.regionHits.Load(),
			RegionMisses:    s.regionMisses.Load(),
			RegionFallbacks: s.regionFallbacks.Load(),
		},
		Store: s.store.Stats(),
	})
}
