package swiftd

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"swift/internal/core"
	"swift/internal/driver"
	"swift/internal/store"
)

const testProgram = `
property File {
  states closed opened error
  error error
  open: closed -> opened
  close: opened -> closed
  read: opened -> opened
}

class Main {
  method main() {
    w = new Worker @w1
    a = new File @h1
    b = new File @h2
    w.doubleOpen(a)
    w.ok(b)
  }
}

class Worker {
  method doubleOpen(f) { f.open(); f.open() }
  method ok(f) { f.open(); f.close() }
}
`

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	return newTestServerOpts(t, Options{Quiet: true})
}

func newTestServerOpts(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	st, err := store.Open(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(st, opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postAnalyze(t *testing.T, url string, req analyzeRequest) (analyzeResponse, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out analyzeResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return out, resp.StatusCode
}

func getStats(t *testing.T, url string) statsResponse {
	t.Helper()
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/stats status = %d", resp.StatusCode)
	}
	var out statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestAnalyzeRepeatHitsCache is the tentpole acceptance check at the HTTP
// layer: the second identical request is served from the result cache,
// with identical findings and tables digest.
func TestAnalyzeRepeatHitsCache(t *testing.T) {
	_, ts := newTestServer(t)

	first, code := postAnalyze(t, ts.URL, analyzeRequest{Source: testProgram})
	if code != http.StatusOK {
		t.Fatalf("first request status = %d", code)
	}
	if first.Cached {
		t.Fatal("first request reported cached=true")
	}
	if len(first.ErrorSites) != 1 || first.ErrorSites[0] != "h1" {
		t.Fatalf("error sites = %v, want [h1]", first.ErrorSites)
	}
	if first.TablesDigest == "" {
		t.Fatal("first response missing tables digest")
	}

	second, code := postAnalyze(t, ts.URL, analyzeRequest{Source: testProgram})
	if code != http.StatusOK {
		t.Fatalf("second request status = %d", code)
	}
	if !second.Cached {
		t.Fatal("second identical request was not served from cache")
	}
	if second.TablesDigest != first.TablesDigest {
		t.Fatalf("cached tables digest %s != original %s", second.TablesDigest, first.TablesDigest)
	}
	if len(second.ErrorSites) != 1 || second.ErrorSites[0] != "h1" {
		t.Fatalf("cached error sites = %v, want [h1]", second.ErrorSites)
	}

	stats := getStats(t, ts.URL)
	if stats.Requests != 2 || stats.ResultHits != 1 || stats.ResultMisses != 1 {
		t.Fatalf("stats = %+v, want 2 requests / 1 hit / 1 miss", stats)
	}
	if stats.Store.Puts == 0 {
		t.Fatalf("store stats = %+v, expected puts from the first run", stats.Store)
	}
}

// TestAnalyzeEngineAndConfigPartitionCache: different engines and
// thresholds must not share result-cache entries, but identical settings
// expressed differently (td ignores K) must.
func TestAnalyzeEngineAndConfigPartitionCache(t *testing.T) {
	_, ts := newTestServer(t)

	swift, _ := postAnalyze(t, ts.URL, analyzeRequest{Source: testProgram, Engine: "swift"})
	td, _ := postAnalyze(t, ts.URL, analyzeRequest{Source: testProgram, Engine: "td"})
	if swift.Cached || td.Cached {
		t.Fatal("distinct engines shared a cache entry")
	}
	// td normalizes K away: a td request with any K hits the same entry.
	k := 3
	td2, _ := postAnalyze(t, ts.URL, analyzeRequest{Source: testProgram, Engine: "td", K: &k})
	if !td2.Cached {
		t.Fatal("td with explicit K missed; K should be normalized out of td keys")
	}
	// A different theta for swift is a different entry.
	th := 7
	sw2, _ := postAnalyze(t, ts.URL, analyzeRequest{Source: testProgram, Engine: "swift", Theta: &th})
	if sw2.Cached {
		t.Fatal("swift with different theta hit the default-theta entry")
	}
}

func TestAnalyzeRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t)

	if _, code := postAnalyze(t, ts.URL, analyzeRequest{Source: testProgram, Engine: "frobnicate"}); code != http.StatusBadRequest {
		t.Errorf("bad engine status = %d, want 400", code)
	}
	if _, code := postAnalyze(t, ts.URL, analyzeRequest{Source: "class {"}); code != http.StatusUnprocessableEntity {
		t.Errorf("unparsable source status = %d, want 422", code)
	}
	resp, err := http.Get(ts.URL + "/analyze")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /analyze status = %d, want 405", resp.StatusCode)
	}
}

// TestStructureTelemetry: a td run engages the sparse scheduler and its
// counters land in the /stats structure block; a hybrid run stays dense,
// as does a td run with the noSparse knob set (which must also occupy its
// own result-cache entry rather than aliasing the sparse run's — the
// tables are identical, but the knobs are part of the config key).
func TestStructureTelemetry(t *testing.T) {
	_, ts := newTestServer(t)

	td, code := postAnalyze(t, ts.URL, analyzeRequest{Source: testProgram, Engine: "td"})
	if code != http.StatusOK {
		t.Fatalf("td status = %d", code)
	}
	stats := getStats(t, ts.URL)
	st := stats.Structure
	if st.SparseRuns != 1 || st.DenseRuns != 0 {
		t.Fatalf("structure after td = %+v, want 1 sparse / 0 dense", st)
	}
	if st.Pops == 0 || st.Steps == 0 || st.Pops >= st.Steps {
		t.Errorf("structure batching counters = %+v, want 0 < pops < steps", st)
	}
	if st.RegionFallbacks != 0 {
		t.Errorf("structure reports %d region fallbacks", st.RegionFallbacks)
	}

	if _, code := postAnalyze(t, ts.URL, analyzeRequest{Source: testProgram, Engine: "swift"}); code != http.StatusOK {
		t.Fatalf("swift status = %d", code)
	}
	dense, code := postAnalyze(t, ts.URL, analyzeRequest{Source: testProgram, Engine: "td", NoSparse: true})
	if code != http.StatusOK {
		t.Fatalf("td noSparse status = %d", code)
	}
	if dense.Cached {
		t.Fatal("td noSparse aliased the sparse run's cache entry")
	}
	if dense.TablesDigest != td.TablesDigest {
		t.Fatalf("noSparse tables digest %s != sparse %s", dense.TablesDigest, td.TablesDigest)
	}
	st = getStats(t, ts.URL).Structure
	if st.SparseRuns != 1 || st.DenseRuns != 2 {
		t.Errorf("structure after swift + dense td = %+v, want 1 sparse / 2 dense", st)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status = %d", resp.StatusCode)
	}
}

// TestCorruptResultCacheDropped: a corrupt cached response must be
// deleted and counted, and the recompute must repopulate the entry so
// the next identical request hits again.
func TestCorruptResultCacheDropped(t *testing.T) {
	srv, ts := newTestServer(t)

	if _, code := postAnalyze(t, ts.URL, analyzeRequest{Source: testProgram}); code != http.StatusOK {
		t.Fatalf("first request status = %d", code)
	}
	b, err := driver.FromSource(testProgram)
	if err != nil {
		t.Fatal(err)
	}
	key := driver.ResultKey(b, "swift", core.DefaultConfig())
	srv.store.Put(key, []byte("not json"))

	second, code := postAnalyze(t, ts.URL, analyzeRequest{Source: testProgram})
	if code != http.StatusOK {
		t.Fatalf("post-corruption request status = %d", code)
	}
	if second.Cached {
		t.Fatal("corrupt entry was served as a cache hit")
	}
	if len(second.ErrorSites) != 1 || second.ErrorSites[0] != "h1" {
		t.Fatalf("recomputed error sites = %v, want [h1]", second.ErrorSites)
	}

	third, _ := postAnalyze(t, ts.URL, analyzeRequest{Source: testProgram})
	if !third.Cached {
		t.Fatal("recompute did not replace the corrupt entry")
	}
	stats := getStats(t, ts.URL)
	if stats.ResultCorrupt != 1 {
		t.Errorf("resultCorrupt = %d, want 1", stats.ResultCorrupt)
	}
	if stats.Store.Deletes == 0 {
		t.Errorf("store stats = %+v, want a delete of the corrupt blob", stats.Store)
	}
}

// incTestProgramV1/V2 are two versions of one program: V2 adds a
// redundant g.read() inside Worker.other. The edit adds no variables, no
// allocation sites and no points-to flows, so the client's frozen
// construction is unchanged and Worker.use — whose call-graph closure
// does not contain Worker.other — keeps its summary-store key across
// versions. Worker.use is invoked in two distinct states (closed, then
// opened), so it triggers run_bu at K=1.
const incTestProgramV1 = `
property File {
  states closed opened error
  error error
  open: closed -> opened
  close: opened -> closed
  read: opened -> opened
}

class Main {
  method main() {
    w = new Worker @w1
    a = new File @h1
    w.use(a)
    a.open()
    w.use(a)
    b = new File @h2
    w.other(b)
  }
}

class Worker {
  method use(f) { f.read() }
  method other(g) { g.open(); g.close() }
}
`

const incTestProgramV2 = `
property File {
  states closed opened error
  error error
  open: closed -> opened
  close: opened -> closed
  read: opened -> opened
}

class Main {
  method main() {
    w = new Worker @w1
    a = new File @h1
    w.use(a)
    a.open()
    w.use(a)
    b = new File @h2
    w.other(b)
  }
}

class Worker {
  method use(f) { f.read() }
  method other(g) { g.open(); g.read(); g.close() }
}
`

// TestIncrementalTelemetryAcrossVersions: analyzing an edited program
// version reuses the untouched procedure's summary (relaxed mode — no
// tables snapshot for the new program digest) and the /stats incremental
// block records it.
func TestIncrementalTelemetryAcrossVersions(t *testing.T) {
	_, ts := newTestServer(t)
	one := 1

	first, code := postAnalyze(t, ts.URL, analyzeRequest{Source: incTestProgramV1, Engine: "swift", K: &one})
	if code != http.StatusOK {
		t.Fatalf("v1 status = %d", code)
	}
	if first.SummaryMisses == 0 {
		t.Fatal("v1 run triggered no run_bu; the fixture no longer exercises summaries")
	}
	if first.SummaryHits != 0 {
		t.Fatalf("v1 run on an empty store reported %d summary hits", first.SummaryHits)
	}

	second, code := postAnalyze(t, ts.URL, analyzeRequest{Source: incTestProgramV2, Engine: "swift", K: &one})
	if code != http.StatusOK {
		t.Fatalf("v2 status = %d", code)
	}
	if second.Cached {
		t.Fatal("v2 hit the whole-response cache despite a different program digest")
	}
	if second.SummaryHits == 0 {
		t.Fatal("v2 run reused no summaries; want a hit for the untouched closure")
	}
	if second.RestoredTables {
		t.Fatal("v2 restored tables despite a different program digest")
	}
	if !second.Relaxed {
		t.Fatal("v2 summary reuse without tables restore not reported as relaxed")
	}

	stats := getStats(t, ts.URL)
	if stats.Incremental.SummaryHits == 0 || stats.Incremental.RelaxedRuns == 0 {
		t.Errorf("incremental stats = %+v, want nonzero summaryHits and relaxedRuns", stats.Incremental)
	}
	if stats.Incremental.FailedRestores != 0 {
		t.Errorf("incremental stats = %+v, want no failed restores", stats.Incremental)
	}
}
