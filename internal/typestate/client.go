package typestate

import (
	"fmt"
	"sort"
	"sync"

	"swift/internal/ir"
)

// Oracle answers global may-alias queries: may the access path (base,
// field) point to an object allocated at site? field is empty for plain
// variables. Answering true when unsure is the sound default; the pointer
// package provides a precise implementation backed by Andersen's analysis.
type Oracle interface {
	MayAlias(base, field, site string) bool
}

// OracleFunc adapts a function to the Oracle interface.
type OracleFunc func(base, field, site string) bool

// MayAlias implements Oracle.
func (f OracleFunc) MayAlias(base, field, site string) bool { return f(base, field, site) }

// Analysis is the type-state instantiation of the SWIFT framework for one
// program: it implements core.Client[AbsID, RelID, FormulaID]. Once
// NewAnalysis returns, an Analysis is safe for concurrent use: all mutable
// state lives in the sharded interners of shard.go, so concurrent client
// calls contend only on hash-selected lock stripes.
type Analysis struct {
	tab      *tables
	prog     *ir.Program
	track    map[string]*Property // site label → property
	initial  AbsID
	emptySet SetID

	// slice restricts fresh-tuple spawning to one allocation site: a
	// negative value (the monolithic analysis) spawns at every tracked
	// site, a non-negative value only at that site (see slice.go). The
	// h=0 bootstrap flow is identical either way.
	slice SiteID

	// relation interning
	rels  *interner[rel, rel]
	idRel RelID

	// compiled transfer cache (compile.go), lazily populated
	compiledMu sync.RWMutex
	compiled   map[*ir.Prim]func(AbsID, []AbsID) []AbsID
}

// ConcurrentClient marks the analysis as safe for concurrent use, so
// core.Synchronized leaves it unwrapped. See shard.go for the argument.
func (a *Analysis) ConcurrentClient() {}

// NewAnalysis prepares a type-state analysis of prog. track maps allocation
// site labels to the property governing objects allocated there; sites
// absent from track are untracked (their allocations update alias
// information of tracked objects but spawn no tuples). oracle supplies
// may-alias facts; nil means "may alias everything" (sound but imprecise).
func NewAnalysis(prog *ir.Program, track map[string]*Property, oracle Oracle) (*Analysis, error) {
	for site, p := range track {
		if p == nil {
			return nil, fmt.Errorf("typestate: site %q tracked by nil property", site)
		}
		if err := p.Validate(); err != nil {
			return nil, err
		}
	}
	a := &Analysis{
		prog:  prog,
		track: track,
		slice: -1,
		tab: &tables{
			paths:       newInterner[path, path](hashPath),
			rootedOf:    map[string][]PathID{},
			fieldOf:     map[string][]PathID{},
			sets:        newInterner[string, []PathID](hashString),
			siteIDs:     map[string]SiteID{},
			trans:       newInterner[string, []GState](hashString),
			methodTrans: newMemoMap[string, TransID](hashString),
			composeMemo: newMemoMap[[2]TransID, TransID](hashTransPair),
			setOpMemo:   newMemoMap[setOpKey, SetID](hashSetOp),
			abs:         newInterner[absState, absState](hashAbs),
			forms:       newInterner[string, []literal](hashString),
		},
		rels: newInterner[rel, rel](hashRel),
	}
	t := a.tab
	a.buildProperties()
	a.buildUniverse()
	a.buildOracle(oracle)
	// The alias sets only ever track relevant paths: restrict the
	// rooted/field indexes accordingly, so bookkeeping for irrelevant
	// variables neither splits relational cases nor fragments abstract
	// states. (The path universe itself is restricted in initMutable's
	// univSet.)
	for v, ids := range t.rootedOf {
		t.rootedOf[v] = filterRelevant(t, ids)
	}
	for f, ids := range t.fieldOf {
		t.fieldOf[f] = filterRelevant(t, ids)
	}
	a.initMutable()
	return a, nil
}

// initMutable seeds the instance's fresh mutable interners from the frozen
// construction tables, in a fixed order. Slice clones (slice.go) replay
// exactly this order into their own fresh interners, so every slice's
// ground IDs — transformer 0/1, formula 0, set 0/1, abstract state 0,
// relation 0 — coincide with a fresh monolithic pipeline's, which is what
// makes per-slice results independent of scheduling.
func (a *Analysis) initMutable() {
	t := a.tab
	// Identity and all-error transformers over the frozen state layout.
	id := make([]GState, t.numG)
	errv := make([]GState, t.numG)
	for g := 0; g < t.numG; g++ {
		id[g] = GState(g)
		if pi := t.propOfG[g]; pi >= 0 {
			errv[g] = t.propBase[pi] + GState(t.props[pi].Error)
		} else {
			errv[g] = GState(g)
		}
	}
	t.idTrans = t.internTrans(id)
	t.errTrans = t.internTrans(errv)

	// Formula 0 is true; set 0 is empty; set 1 is the relevant universe.
	t.internFormula(nil)
	a.emptySet = t.internSet(nil)
	var all []PathID
	for i := 0; i < t.numPaths(); i++ {
		if t.relevant[i] {
			all = append(all, PathID(i))
		}
	}
	t.univSet = t.internSet(all)

	// The bootstrap abstract state: no object tracked yet, and nothing
	// known must-not-alias the (nonexistent) object.
	a.initial = t.internAbs(absState{h: 0, t: 0, a: a.emptySet, nc: t.univSet})

	// The identity relation id#.
	a.idRel = a.internRel(rel{
		kind: kXform,
		iota: t.idTrans,
		aK:   t.coUniverse(), aG: a.emptySet,
		nK: t.coUniverse(), nG: a.emptySet,
		pre: 0,
	})
}

// spawnsAt reports whether an allocation at the site spawns a fresh
// tracked tuple in this analysis instance: the site must be tracked, and a
// slice instance additionally restricts spawning to its own site. Trans,
// RTrans and CompileTrans all gate on it, so the three transfer forms stay
// coherent (C1) within a slice.
func (a *Analysis) spawnsAt(site SiteID) bool {
	return a.tab.sitePropOf[site] >= 0 && (a.slice < 0 || a.slice == site)
}

// buildProperties lays out the global state space: None, then each tracked
// property's states in sorted property-name order.
func (a *Analysis) buildProperties() {
	t := a.tab
	seen := map[*Property]bool{}
	var props []*Property
	for _, p := range a.track {
		if !seen[p] {
			seen[p] = true
			props = append(props, p)
		}
	}
	sort.Slice(props, func(i, j int) bool { return props[i].Name < props[j].Name })
	t.props = props
	t.numG = 1
	t.propOfG = []int{-1}
	t.localOfG = []State{0}
	t.isErrorG = []bool{false}
	for pi, p := range props {
		t.propBase = append(t.propBase, GState(t.numG))
		for si := range p.States {
			t.propOfG = append(t.propOfG, pi)
			t.localOfG = append(t.localOfG, State(si))
			t.isErrorG = append(t.isErrorG, State(si) == p.Error)
			t.numG++
		}
	}
	// The identity and all-error transformers over this layout are
	// interned per instance by initMutable.
}

// buildUniverse scans the program and interns the fixed path and site
// universes: all variables, the one-field paths mentioned by loads and
// stores, the "<none>" bootstrap site and all allocation sites.
func (a *Analysis) buildUniverse() {
	t := a.tab
	vars := map[string]bool{}
	fieldPaths := map[path]bool{}
	sites := map[string]bool{}
	var walk func(c ir.Cmd)
	walk = func(c ir.Cmd) {
		switch c := c.(type) {
		case *ir.Prim:
			if c.Dst != "" {
				vars[c.Dst] = true
			}
			if c.Src != "" {
				vars[c.Src] = true
			}
			switch c.Kind {
			case ir.Load:
				fieldPaths[path{base: c.Src, field: c.Field}] = true
			case ir.Store:
				fieldPaths[path{base: c.Dst, field: c.Field}] = true
			case ir.New:
				sites[c.Site] = true
			}
		case *ir.Seq:
			for _, s := range c.Cmds {
				walk(s)
			}
		case *ir.Choice:
			for _, alt := range c.Alts {
				walk(alt)
			}
		case *ir.Loop:
			walk(c.Body)
		}
	}
	for _, name := range a.prog.ProcNames() {
		walk(a.prog.Procs[name].Body)
	}

	// Intern paths: variables first, then field paths, each sorted.
	allVars := make([]string, 0, len(vars))
	for v := range vars {
		allVars = append(allVars, v)
	}
	sort.Strings(allVars)
	for _, v := range allVars {
		t.internPath(path{base: v})
	}
	fps := make([]path, 0, len(fieldPaths))
	for p := range fieldPaths {
		fps = append(fps, p)
	}
	sort.Slice(fps, func(i, j int) bool {
		if fps[i].base != fps[j].base {
			return fps[i].base < fps[j].base
		}
		return fps[i].field < fps[j].field
	})
	for _, p := range fps {
		t.internPath(p)
	}

	// rootedOf and fieldOf indexes (path IDs are already in sorted order of
	// interning, but collect then sort to be safe).
	for id := 0; id < t.numPaths(); id++ {
		p := t.pathAt(PathID(id))
		t.rootedOf[p.base] = append(t.rootedOf[p.base], PathID(id))
		if p.field != "" {
			t.fieldOf[p.field] = append(t.fieldOf[p.field], PathID(id))
		}
	}
	for _, ids := range t.rootedOf {
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	}
	for _, ids := range t.fieldOf {
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	}

	// Sites: "<none>" first, then program sites sorted.
	t.internSite("<none>", -1)
	siteNames := make([]string, 0, len(sites))
	for s := range sites {
		siteNames = append(siteNames, s)
	}
	sort.Strings(siteNames)
	for _, s := range siteNames {
		pi := -1
		if p, ok := a.track[s]; ok {
			for i, q := range t.props {
				if q == p {
					pi = i
					break
				}
			}
		}
		t.internSite(s, pi)
	}
}

// buildOracle materializes the may-alias matrix over the path and site
// universes. The bootstrap site aliases nothing.
func (a *Analysis) buildOracle(oracle Oracle) {
	t := a.tab
	t.mayAlias = make([][]bool, t.numPaths())
	t.relevant = make([]bool, t.numPaths())
	for pid := 0; pid < t.numPaths(); pid++ {
		p := t.pathAt(PathID(pid))
		row := make([]bool, len(t.sites))
		for sid := 1; sid < len(t.sites); sid++ {
			if oracle == nil {
				row[sid] = true
			} else {
				row[sid] = oracle.MayAlias(p.base, p.field, t.sites[sid])
			}
			if row[sid] && t.sitePropOf[sid] >= 0 {
				t.relevant[pid] = true
			}
		}
		t.mayAlias[pid] = row
	}
}

// filterRelevant keeps the relevant paths of a sorted slice.
func filterRelevant(t *tables, ids []PathID) []PathID {
	out := ids[:0]
	for _, id := range ids {
		if t.relevant[id] {
			out = append(out, id)
		}
	}
	return out
}

// mustPath returns the PathID of a path that is guaranteed to be in the
// universe (it appears in the program text being analyzed).
func (a *Analysis) mustPath(base, field string) PathID {
	id, ok := a.tab.paths.lookup(path{base: base, field: field})
	if !ok {
		panic(fmt.Sprintf("typestate: path %s.%s not in universe", base, field))
	}
	return PathID(id)
}

// InitialState returns the bootstrap abstract state (no tracked object).
func (a *Analysis) InitialState() AbsID { return a.initial }

// MakeState builds an abstract state from surface syntax, for tests and
// examples: site is an allocation-site label (or "<none>" with state ""),
// state names an FSM state of the site's property, and must/mustNot list
// access paths ("v" or "v.f") that must appear in the program text.
func (a *Analysis) MakeState(site, state string, must, mustNot []string) (AbsID, error) {
	t := a.tab
	sid, ok := t.siteIDs[site]
	if !ok {
		return 0, fmt.Errorf("typestate: unknown site %q", site)
	}
	g := GState(0)
	if pi := t.sitePropOf[sid]; pi >= 0 {
		p := t.props[pi]
		found := false
		for i, name := range p.States {
			if name == state {
				g = t.propBase[pi] + GState(i)
				found = true
			}
		}
		if !found {
			return 0, fmt.Errorf("typestate: property %q has no state %q", p.Name, state)
		}
	} else if state != "" {
		return 0, fmt.Errorf("typestate: site %q is untracked; state must be empty", site)
	}
	toSet := func(paths []string) (SetID, error) {
		var ids []PathID
		for _, s := range paths {
			base, field := s, ""
			for i := 0; i < len(s); i++ {
				if s[i] == '.' {
					base, field = s[:i], s[i+1:]
					break
				}
			}
			id, ok := t.paths.lookup(path{base: base, field: field})
			if !ok {
				return 0, fmt.Errorf("typestate: path %q not in program universe", s)
			}
			ids = append(ids, PathID(id))
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		return t.internSet(ids), nil
	}
	aSet, err := toSet(must)
	if err != nil {
		return 0, err
	}
	nSet, err := toSet(mustNot)
	if err != nil {
		return 0, err
	}
	nc := t.setMinus(t.univSet, t.setElems(nSet))
	return t.internAbs(absState{h: sid, t: g, a: aSet, nc: nc}), nil
}

// IsError reports whether the abstract state's type-state is a property's
// error state.
func (a *Analysis) IsError(s AbsID) bool { return a.tab.isErrorG[a.tab.absOf(s).t] }

// Site returns the allocation-site label of the state's tracked object, or
// "<none>" for the bootstrap state.
func (a *Analysis) Site(s AbsID) string { return a.tab.sites[a.tab.absOf(s).h] }

// StateName returns the FSM state name of the state's tracked object, or
// "none" for the bootstrap state.
func (a *Analysis) StateName(s AbsID) string {
	t := a.tab
	st := t.absOf(s)
	if pi := t.propOfG[st.t]; pi >= 0 {
		return t.props[pi].States[t.localOfG[st.t]]
	}
	return "none"
}

// TrackedSites returns the sorted labels of every tracked allocation site
// appearing in the program — exactly the slice universe of Slices(), minus
// the degenerate "<none>" bootstrap slice of untracked programs. Query
// validation and seeded query generation both draw from it.
func (a *Analysis) TrackedSites() []string {
	t := a.tab
	var out []string
	for sid := 1; sid < len(t.sites); sid++ {
		if t.sitePropOf[sid] >= 0 {
			out = append(out, t.sites[sid])
		}
	}
	return out
}

// SiteStates returns the FSM state names of the property tracking the
// site, in the property's own state order (index 0 is the initial state).
// Untracked and unknown sites are errors: they have no property states.
func (a *Analysis) SiteStates(site string) ([]string, error) {
	t := a.tab
	sid, ok := t.siteIDs[site]
	if !ok {
		return nil, fmt.Errorf("typestate: unknown site %q", site)
	}
	pi := t.sitePropOf[sid]
	if pi < 0 {
		return nil, fmt.Errorf("typestate: site %q is untracked and has no property states", site)
	}
	return append([]string(nil), t.props[pi].States...), nil
}

// SiteErrorState returns the error-state name of the property tracking the
// site.
func (a *Analysis) SiteErrorState(site string) (string, error) {
	states, err := a.SiteStates(site)
	if err != nil {
		return "", err
	}
	sid := a.tab.siteIDs[site]
	return states[a.tab.props[a.tab.sitePropOf[sid]].Error], nil
}

// ErrorSites returns the sorted distinct site labels among error states.
func (a *Analysis) ErrorSites(states []AbsID) []string {
	set := map[string]bool{}
	for _, s := range states {
		if a.IsError(s) {
			set[a.Site(s)] = true
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// StateString renders an abstract state as (site, state, {must}, {mustNot}).
// Since must-not sets are co-finite, a large one prints in complement form
// V∖{…}.
func (a *Analysis) StateString(s AbsID) string {
	t := a.tab
	st := t.absOf(s)
	name := "none"
	if pi := t.propOfG[st.t]; pi >= 0 {
		name = t.props[pi].States[t.localOfG[st.t]]
	}
	nStr := "V∖{" + a.pathSetString(st.nc) + "}"
	if n := t.setMinus(t.univSet, t.setElems(st.nc)); len(t.setElems(n)) <= 4 {
		nStr = "{" + a.pathSetString(n) + "}"
	}
	return fmt.Sprintf("(%s, %s, {%s}, %s)",
		t.sites[st.h], name, a.pathSetString(st.a), nStr)
}

func (a *Analysis) pathSetString(s SetID) string {
	elems := a.tab.setElems(s)
	out := ""
	for i, p := range elems {
		if i > 0 {
			out += ","
		}
		out += a.tab.pathString(p)
	}
	return out
}

// FormulaString renders a precondition for diagnostics.
func (a *Analysis) FormulaString(f FormulaID) string { return a.tab.formulaString(f) }

// PreHolds implements core.Client.
func (a *Analysis) PreHolds(pre FormulaID, s AbsID) bool {
	return a.tab.holds(pre, a.tab.absOf(s))
}

// PreImplies implements core.Client.
func (a *Analysis) PreImplies(p, q FormulaID) bool { return a.tab.implies(p, q) }

// Identity implements core.Client: it returns id#.
func (a *Analysis) Identity() RelID { return a.idRel }

// PathCount and SiteCount expose universe sizes for reporting.
func (a *Analysis) PathCount() int { return a.tab.numPaths() }

// SiteCount returns the number of allocation sites including "<none>".
func (a *Analysis) SiteCount() int { return len(a.tab.sites) }

// StateCount returns how many distinct abstract states have been interned.
func (a *Analysis) StateCount() int { return a.tab.abs.size() }

// RelCount returns how many distinct abstract relations have been interned.
func (a *Analysis) RelCount() int { return a.rels.size() }
