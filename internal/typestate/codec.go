package typestate

// This file makes the type-state client's artifacts serializable for the
// persistent summary store (internal/store):
//
//   - FrozenDigest fingerprints everything NewAnalysis freezes before any
//     solver runs: the path and site universes, the property layout, the
//     may-alias oracle matrix and the relevance filter. Two Analysis
//     instances with equal digests assign identical IDs to every frozen
//     value (construction is deterministic), and — crucially for soundness
//     — agree on every mayalias literal a stored summary may test. A
//     summary computed under one oracle is NOT valid under another, which
//     is why the digest is part of every store key.
//
//   - EncodeTables/RestoreTables snapshot the mutable interners (path
//     sets, transformers, abstract states, formulas, relations) in dense
//     ID order. Restoring a cold run's snapshot into a freshly built
//     pipeline replays every intern in first-intern order, so the warm
//     pipeline's ID assignment is bit-for-bit the cold run's — which makes
//     the deterministic engines produce byte-identical result tables on
//     reuse (ID order drives sorted sets, worklist order and pruning
//     tie-breaks; see shard.go).
//
//   - EncodeSummaries/DecodeSummaries serialize one trigger outcome (the
//     eta map of pruned bottom-up summaries) structurally: mutable-table
//     IDs are never written, only frozen IDs and inlined set/vector/
//     formula contents, and the relations of each procedure are sorted by
//     their encoded bytes. The encoding is therefore canonical across
//     clients — decode into any same-digest instance and re-encode, and
//     the bytes are identical whatever IDs that instance assigned.
//
// Every decoder treats malformed input as an error (never a panic): the
// store turns codec errors into cache misses.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"slices"
	"sort"

	"swift/internal/core"
	"swift/internal/wire"
)

const (
	tablesMagic    = "SWTB1"
	summariesMagic = "SWSM1"
)

// FrozenDigest returns the hex SHA-256 fingerprint of the analysis's frozen
// construction tables (see the file comment for what that covers and why
// the oracle matrix must be included). Slice clones digest differently from
// the monolithic instance: a slice spawns tuples at one site only, so its
// summaries are not interchangeable with the monolithic run's.
func (a *Analysis) FrozenDigest() string {
	t := a.tab
	var w wire.Writer
	w.Uint(uint64(t.numPaths()))
	for i := 0; i < t.numPaths(); i++ {
		p := t.pathAt(PathID(i))
		w.String(p.base)
		w.String(p.field)
	}
	w.Uint(uint64(len(t.sites)))
	for i, s := range t.sites {
		w.String(s)
		w.Int(int64(t.sitePropOf[i]))
	}
	w.Uint(uint64(len(t.props)))
	for _, p := range t.props {
		w.String(p.Name)
		w.Uint(uint64(len(p.States)))
		for _, s := range p.States {
			w.String(s)
		}
		w.Uint(uint64(p.Error))
		methods := make([]string, 0, len(p.Methods))
		for m := range p.Methods {
			methods = append(methods, m)
		}
		sort.Strings(methods)
		w.Uint(uint64(len(methods)))
		for _, m := range methods {
			w.String(m)
			tab := p.Methods[m]
			w.Uint(uint64(len(tab)))
			for _, st := range tab {
				w.Uint(uint64(st))
			}
		}
	}
	w.Uint(uint64(t.numG))
	for p := 0; p < t.numPaths(); p++ {
		for s := range t.sites {
			w.Bool(t.mayAlias[p][s])
		}
		w.Bool(t.relevant[p])
	}
	w.Int(int64(a.slice))
	sum := sha256.Sum256(w.Bytes())
	return hex.EncodeToString(sum[:])
}

// ---- intern-table snapshots ----

// EncodeTables serializes the full mutable intern-table state — path sets,
// transformers, formulas, abstract states and relations, each in dense ID
// order — together with the frozen digest the snapshot was taken under.
// Call it only when no solver run is in flight (the engines' entry points
// have returned), as it walks the live tables.
func (a *Analysis) EncodeTables() []byte {
	t := a.tab
	var w wire.Writer
	w.Raw([]byte(tablesMagic))
	w.String(a.FrozenDigest())

	nSets := t.sets.size()
	w.Uint(uint64(nSets))
	for i := 0; i < nSets; i++ {
		wire.WriteI32s(&w, t.sets.at(int32(i)))
	}
	nTrans := t.trans.size()
	w.Uint(uint64(nTrans))
	for i := 0; i < nTrans; i++ {
		wire.WriteI32s(&w, t.trans.at(int32(i)))
	}
	nForms := t.forms.size()
	w.Uint(uint64(nForms))
	for i := 0; i < nForms; i++ {
		wire.WriteI32s(&w, t.forms.at(int32(i)))
	}
	nAbs := t.abs.size()
	w.Uint(uint64(nAbs))
	for i := 0; i < nAbs; i++ {
		s := t.abs.at(int32(i))
		w.Int(int64(s.h))
		w.Int(int64(s.t))
		w.Int(int64(s.a))
		w.Int(int64(s.nc))
	}
	nRels := a.rels.size()
	w.Uint(uint64(nRels))
	for i := 0; i < nRels; i++ {
		r := a.rels.at(int32(i))
		w.Uint(uint64(r.kind))
		w.Int(int64(r.out))
		w.Int(int64(r.iota))
		w.Bool(r.aK.Co)
		w.Int(int64(r.aK.Set))
		w.Int(int64(r.aG))
		w.Bool(r.nK.Co)
		w.Int(int64(r.nK.Set))
		w.Int(int64(r.nG))
		w.Int(int64(r.pre))
	}
	return w.Bytes()
}

// Fresh reports whether the instance's mutable interners hold exactly the
// initMutable seeds — i.e. no solver has interned anything yet. Only a
// fresh instance can restore a snapshot, and only a snapshot taken from
// an instance that STARTED fresh reproduces a cold run's tables (the
// warm-start driver gates its publishes on this). The seed counts
// collapse in degenerate programs (the all-error transformer equals the
// identity when every property state is its own error state; the relevant
// universe is the empty set when nothing is tracked), so they are derived
// from the seed IDs rather than hard-coded.
func (a *Analysis) Fresh() bool {
	t := a.tab
	nTrans := 2 // identity, all-error
	if t.errTrans == t.idTrans {
		nTrans = 1
	}
	nSets := 2 // empty, relevant universe
	if t.univSet == a.emptySet {
		nSets = 1
	}
	return t.sets.size() == nSets &&
		t.trans.size() == nTrans &&
		t.forms.size() == 1 && // true
		t.abs.size() == 1 && // bootstrap state
		a.rels.size() == 1 // id#
}

// id32 narrows a decoded varint to a table ID, bounds-checked.
func id32[T ~int32](v int64, n int, what string) (T, error) {
	if v < 0 || v >= int64(n) {
		return 0, fmt.Errorf("typestate: %s id %d out of range [0,%d)", what, v, n)
	}
	return T(v), nil
}

// RestoreTables replays a snapshot produced by EncodeTables into this
// instance, asserting that every replayed intern receives exactly the ID it
// held in the snapshot. That assertion can only hold when the instance is
// freshly built (only the initMutable seeds interned) and was constructed
// from the same program, property set and oracle (equal FrozenDigest) —
// both are checked and violations are errors, which the warm-start path
// treats as a cache miss. After a successful restore the instance's tables
// are bit-for-bit the snapshotted run's final tables.
func (a *Analysis) RestoreTables(data []byte) error {
	if !a.Fresh() {
		return fmt.Errorf("typestate: RestoreTables needs a freshly built pipeline (tables already populated)")
	}
	t := a.tab
	r := wire.NewReader(data)
	r.Expect(tablesMagic)
	digest := r.String()
	if err := r.Err(); err != nil {
		return err
	}
	if want := a.FrozenDigest(); digest != want {
		return fmt.Errorf("typestate: snapshot frozen digest %.12s… does not match this pipeline's %.12s…", digest, want)
	}

	numPaths, numG := t.numPaths(), t.numG

	nSets := r.Len()
	sets := make([][]PathID, 0, nSets)
	for i := 0; i < nSets && r.Err() == nil; i++ {
		elems := wire.ReadI32s[PathID](r)
		if err := validateIDSlice(elems, numPaths, true, "path"); err != nil {
			return err
		}
		sets = append(sets, elems)
	}
	nTrans := r.Len()
	trans := make([][]GState, 0, nTrans)
	for i := 0; i < nTrans && r.Err() == nil; i++ {
		vec := wire.ReadI32s[GState](r)
		if r.Err() == nil && len(vec) != numG {
			return fmt.Errorf("typestate: transformer vector has %d states, want %d", len(vec), numG)
		}
		if err := validateIDSlice(vec, numG, false, "global state"); err != nil {
			return err
		}
		trans = append(trans, vec)
	}
	nForms := r.Len()
	forms := make([][]literal, 0, nForms)
	for i := 0; i < nForms && r.Err() == nil; i++ {
		lits := wire.ReadI32s[literal](r)
		if err := validateLits(lits, numPaths); err != nil {
			return err
		}
		forms = append(forms, lits)
	}
	nAbs := r.Len()
	abss := make([]absState, 0, nAbs)
	for i := 0; i < nAbs && r.Err() == nil; i++ {
		var s absState
		var err error
		if s.h, err = id32[SiteID](r.Int(), len(t.sites), "site"); err != nil {
			return err
		}
		if s.t, err = id32[GState](r.Int(), numG, "global state"); err != nil {
			return err
		}
		if s.a, err = id32[SetID](r.Int(), nSets, "set"); err != nil {
			return err
		}
		if s.nc, err = id32[SetID](r.Int(), nSets, "set"); err != nil {
			return err
		}
		abss = append(abss, s)
	}
	nRels := r.Len()
	rels := make([]rel, 0, nRels)
	for i := 0; i < nRels && r.Err() == nil; i++ {
		var x rel
		var err error
		kind := r.Uint()
		if kind > uint64(kXform) {
			return fmt.Errorf("typestate: unknown relation kind %d", kind)
		}
		x.kind = relKind(kind)
		if x.out, err = id32[AbsID](r.Int(), nAbs, "abstract state"); err != nil {
			return err
		}
		if x.iota, err = id32[TransID](r.Int(), nTrans, "transformer"); err != nil {
			return err
		}
		x.aK.Co = r.Bool()
		if x.aK.Set, err = id32[SetID](r.Int(), nSets, "set"); err != nil {
			return err
		}
		if x.aG, err = id32[SetID](r.Int(), nSets, "set"); err != nil {
			return err
		}
		x.nK.Co = r.Bool()
		if x.nK.Set, err = id32[SetID](r.Int(), nSets, "set"); err != nil {
			return err
		}
		if x.nG, err = id32[SetID](r.Int(), nSets, "set"); err != nil {
			return err
		}
		if x.pre, err = id32[FormulaID](r.Int(), nForms, "formula"); err != nil {
			return err
		}
		rels = append(rels, x)
	}
	if err := r.Done(); err != nil {
		return err
	}

	// Replay in dense ID order. Each intern must land on its snapshot ID:
	// the seeds interned by initMutable form a prefix of any fresh-pipeline
	// snapshot (same construction order), and every later entry is new to
	// this instance.
	for i, elems := range sets {
		if got := t.internSet(elems); int(got) != i {
			return fmt.Errorf("typestate: snapshot set %d replayed to id %d (duplicate or reordered entry)", i, got)
		}
	}
	for i, vec := range trans {
		if got := t.internTrans(vec); int(got) != i {
			return fmt.Errorf("typestate: snapshot transformer %d replayed to id %d", i, got)
		}
	}
	for i, lits := range forms {
		if got := t.internFormula(lits); int(got) != i {
			return fmt.Errorf("typestate: snapshot formula %d replayed to id %d", i, got)
		}
	}
	for i, s := range abss {
		if got := t.internAbs(s); int(got) != i {
			return fmt.Errorf("typestate: snapshot abstract state %d replayed to id %d", i, got)
		}
	}
	for i, x := range rels {
		// Snapshotted relations are already canonical (internRel
		// canonicalizes before interning and is idempotent), so replaying
		// through internRel cannot alter them.
		if got := a.internRel(x); int(got) != i {
			return fmt.Errorf("typestate: snapshot relation %d replayed to id %d", i, got)
		}
	}
	return nil
}

// validateIDSlice checks a decoded slice of frozen-table IDs: every value
// in [0,n), strictly ascending when sorted is set (canonical set form).
func validateIDSlice[T ~int32](xs []T, n int, sorted bool, what string) error {
	for i, x := range xs {
		if int(x) < 0 || int(x) >= n {
			return fmt.Errorf("typestate: %s id %d out of range [0,%d)", what, x, n)
		}
		if sorted && i > 0 && xs[i-1] >= x {
			return fmt.Errorf("typestate: %s set is not in canonical sorted order", what)
		}
	}
	return nil
}

// validateLits checks a decoded formula: literals strictly ascending, known
// kinds, paths in range.
func validateLits(lits []literal, numPaths int) error {
	for i, l := range lits {
		if l.kind() > litNotMay || int(l.path()) < 0 || int(l.path()) >= numPaths {
			return fmt.Errorf("typestate: literal %d out of range", l)
		}
		if i > 0 && lits[i-1] >= l {
			return fmt.Errorf("typestate: formula literals not in canonical sorted order")
		}
	}
	return nil
}

// ---- structural summary encoding ----

// RSet is the concrete summary-element type of this client.
type rsetT = core.RSet[RelID, FormulaID]

// encSet inlines a path set's contents.
func (a *Analysis) encSet(w *wire.Writer, s SetID) { wire.WriteI32s(w, a.tab.setElems(s)) }

// encRel renders one relation self-contained: only frozen IDs (paths,
// sites, global states) appear raw; everything from the mutable tables is
// inlined.
func (a *Analysis) encRel(id RelID) []byte {
	t := a.tab
	r := a.relOf(id)
	var w wire.Writer
	w.Uint(uint64(r.kind))
	if r.kind == kConst {
		out := t.absOf(r.out)
		w.Int(int64(out.h))
		w.Int(int64(out.t))
		a.encSet(&w, out.a)
		a.encSet(&w, out.nc)
	} else {
		wire.WriteI32s(&w, t.trans.at(int32(r.iota)))
		w.Bool(r.aK.Co)
		a.encSet(&w, r.aK.Set)
		a.encSet(&w, r.aG)
		w.Bool(r.nK.Co)
		a.encSet(&w, r.nK.Set)
		a.encSet(&w, r.nG)
	}
	wire.WriteI32s(&w, t.formLits(r.pre))
	return w.Bytes()
}

// encFormula renders one precondition formula self-contained.
func (a *Analysis) encFormula(id FormulaID) []byte {
	var w wire.Writer
	wire.WriteI32s(&w, a.tab.formLits(id))
	return w.Bytes()
}

// decSet decodes and interns an inlined path set.
func (a *Analysis) decSet(r *wire.Reader) (SetID, error) {
	elems := wire.ReadI32s[PathID](r)
	if err := r.Err(); err != nil {
		return 0, err
	}
	if err := validateIDSlice(elems, a.tab.numPaths(), true, "path"); err != nil {
		return 0, err
	}
	return a.tab.internSet(elems), nil
}

// decFormulaLits decodes, validates and interns an inlined formula.
func (a *Analysis) decFormulaLits(r *wire.Reader) (FormulaID, error) {
	lits := wire.ReadI32s[literal](r)
	if err := r.Err(); err != nil {
		return 0, err
	}
	if err := validateLits(lits, a.tab.numPaths()); err != nil {
		return 0, err
	}
	return a.tab.internFormula(lits), nil
}

// decRel decodes one encRel blob into this instance, interning every
// component.
func (a *Analysis) decRel(blob []byte) (RelID, error) {
	t := a.tab
	r := wire.NewReader(blob)
	kind := r.Uint()
	if r.Err() == nil && kind > uint64(kXform) {
		return 0, fmt.Errorf("typestate: unknown relation kind %d", kind)
	}
	var x rel
	x.kind = relKind(kind)
	if x.kind == kConst {
		var out absState
		var err error
		if out.h, err = id32[SiteID](r.Int(), len(t.sites), "site"); err != nil {
			return 0, err
		}
		if out.t, err = id32[GState](r.Int(), t.numG, "global state"); err != nil {
			return 0, err
		}
		if out.a, err = a.decSet(r); err != nil {
			return 0, err
		}
		if out.nc, err = a.decSet(r); err != nil {
			return 0, err
		}
		// kConst relations leave every transformer component at its zero
		// value (exactly how the solvers build them — see RTrans/RComp),
		// so the struct interns back to the original relation.
		x.out = t.internAbs(out)
	} else {
		vec := wire.ReadI32s[GState](r)
		if err := r.Err(); err != nil {
			return 0, err
		}
		if len(vec) != t.numG {
			return 0, fmt.Errorf("typestate: transformer vector has %d states, want %d", len(vec), t.numG)
		}
		if err := validateIDSlice(vec, t.numG, false, "global state"); err != nil {
			return 0, err
		}
		x.iota = t.internTrans(vec)
		var err error
		x.aK.Co = r.Bool()
		if x.aK.Set, err = a.decSet(r); err != nil {
			return 0, err
		}
		if x.aG, err = a.decSet(r); err != nil {
			return 0, err
		}
		x.nK.Co = r.Bool()
		if x.nK.Set, err = a.decSet(r); err != nil {
			return 0, err
		}
		if x.nG, err = a.decSet(r); err != nil {
			return 0, err
		}
	}
	var err error
	if x.pre, err = a.decFormulaLits(r); err != nil {
		return 0, err
	}
	if err := r.Done(); err != nil {
		return 0, err
	}
	return a.internRel(x), nil
}

// kConst relations round-trip their unused transformer components through
// the defaults decRel assigns, so encode→decode→re-encode is stable only
// because encRel never writes them. The canonical blob order below is what
// makes the whole summary encoding ID-independent: blobs are sorted by
// their bytes, and equal relations encode to equal bytes in every
// same-digest client.

// EncodeSummaries serializes one trigger outcome: the frontier it covered,
// the per-procedure pruned summaries, and whether the trigger failed (a
// deterministic budget abort, cached so warm runs skip the doomed
// recomputation). Procedures are written in sorted-name order and each
// procedure's relations and Sigma formulas in sorted encoded-byte order,
// so any same-digest client re-encodes a decoded summary byte-identically.
func (a *Analysis) EncodeSummaries(frontier []string, eta map[string]rsetT, failed bool) []byte {
	var w wire.Writer
	w.Raw([]byte(summariesMagic))
	w.String(a.FrozenDigest())
	w.Bool(failed)
	w.Uint(uint64(len(frontier)))
	for _, f := range frontier {
		w.String(f)
	}
	procs := make([]string, 0, len(eta))
	for name := range eta {
		procs = append(procs, name)
	}
	sort.Strings(procs)
	w.Uint(uint64(len(procs)))
	for _, name := range procs {
		rs := eta[name]
		w.String(name)
		relBlobs := make([][]byte, len(rs.Rels))
		for i, id := range rs.Rels {
			relBlobs[i] = a.encRel(id)
		}
		slices.SortFunc(relBlobs, sliceCmp)
		w.Uint(uint64(len(relBlobs)))
		for _, b := range relBlobs {
			w.Uint(uint64(len(b)))
			w.Raw(b)
		}
		sigBlobs := make([][]byte, len(rs.Sigma))
		for i, id := range rs.Sigma {
			sigBlobs[i] = a.encFormula(id)
		}
		slices.SortFunc(sigBlobs, sliceCmp)
		w.Uint(uint64(len(sigBlobs)))
		for _, b := range sigBlobs {
			w.Uint(uint64(len(b)))
			w.Raw(b)
		}
	}
	return w.Bytes()
}

func sliceCmp(a, b []byte) int { return slices.Compare(a, b) }

// DecodeSummaries decodes an EncodeSummaries artifact into this instance,
// interning every component value. It fails if the artifact was produced
// under a different frozen digest — using such a summary would consult the
// wrong may-alias oracle. The returned eta is freshly allocated on every
// call, so callers may install it into a Result without aliasing the store.
func (a *Analysis) DecodeSummaries(data []byte) (frontier []string, eta map[string]rsetT, failed bool, err error) {
	r := wire.NewReader(data)
	r.Expect(summariesMagic)
	digest := r.String()
	if e := r.Err(); e != nil {
		return nil, nil, false, e
	}
	if want := a.FrozenDigest(); digest != want {
		return nil, nil, false, fmt.Errorf("typestate: summary frozen digest %.12s… does not match this pipeline's %.12s…", digest, want)
	}
	failed = r.Bool()
	nf := r.Len()
	frontier = make([]string, 0, nf)
	for i := 0; i < nf && r.Err() == nil; i++ {
		frontier = append(frontier, r.String())
	}
	np := r.Len()
	eta = make(map[string]rsetT, np)
	for i := 0; i < np && r.Err() == nil; i++ {
		name := r.String()
		nr := r.Len()
		relIDs := make([]RelID, 0, nr)
		for j := 0; j < nr && r.Err() == nil; j++ {
			blob := r.Raw(r.Len())
			if r.Err() != nil {
				break
			}
			id, derr := a.decRel(blob)
			if derr != nil {
				return nil, nil, false, derr
			}
			relIDs = append(relIDs, id)
		}
		ns := r.Len()
		sigIDs := make([]FormulaID, 0, ns)
		for j := 0; j < ns && r.Err() == nil; j++ {
			blob := r.Raw(r.Len())
			if r.Err() != nil {
				break
			}
			sub := wire.NewReader(blob)
			id, derr := a.decFormulaLits(sub)
			if derr == nil {
				derr = sub.Done()
			}
			if derr != nil {
				return nil, nil, false, derr
			}
			sigIDs = append(sigIDs, id)
		}
		eta[name] = core.MakeRSet(relIDs, sigIDs)
	}
	if e := r.Done(); e != nil {
		return nil, nil, false, e
	}
	return frontier, eta, failed, nil
}
