package typestate

import (
	"bytes"
	"math/rand"
	"testing"

	"swift/internal/core"
	"swift/internal/ir"
)

// This file pins the snapshot codec's contract: decode∘encode is the
// identity on bytes (tables and summaries), restored tables reproduce the
// exact intern IDs of the run that published them, and every corrupt or
// mismatched input is rejected with an error — never a panic, never a
// silently wrong table.

func buildPair(t *testing.T, prog *ir.Program, track map[string]*Property) (*Analysis, *core.Analysis[AbsID, RelID, FormulaID]) {
	t.Helper()
	ts, err := NewAnalysis(prog, track, nil)
	if err != nil {
		t.Fatalf("NewAnalysis: %v", err)
	}
	an, err := core.NewAnalysis[AbsID, RelID, FormulaID](ts, prog)
	if err != nil {
		t.Fatalf("core.NewAnalysis: %v", err)
	}
	return ts, an
}

func figure1Track() map[string]*Property {
	file := FileProperty()
	return map[string]*Property{"h1": file, "h2": file, "h3": file}
}

// runSwift drives the hybrid engine with thresholds low enough that
// figure 1 (and the random programs) actually trigger bottom-up
// summarization, so the snapshot has real content.
func runSwift(t *testing.T, ts *Analysis, an *core.Analysis[AbsID, RelID, FormulaID]) *core.Result[AbsID, RelID, FormulaID] {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.K = 1
	cfg.Theta = 1
	res, err := an.RunEngine("swift", ts.InitialState(), cfg)
	if err != nil {
		t.Fatalf("swift: %v", err)
	}
	if !res.Completed() {
		t.Fatalf("swift did not complete: %v", res.Err)
	}
	return res
}

func TestTablesRoundTripFigure1(t *testing.T) {
	ts, an := buildPair(t, figure1Program(), figure1Track())
	if !ts.Fresh() {
		t.Fatal("new pipeline not Fresh")
	}
	runSwift(t, ts, an)
	if ts.Fresh() {
		t.Fatal("pipeline still Fresh after a run; snapshot would be trivial")
	}
	blob := ts.EncodeTables()

	ts2, _ := buildPair(t, figure1Program(), figure1Track())
	if err := ts2.RestoreTables(blob); err != nil {
		t.Fatalf("RestoreTables: %v", err)
	}
	if ts2.Fresh() {
		t.Fatal("restored pipeline claims to be Fresh")
	}
	again := ts2.EncodeTables()
	if !bytes.Equal(blob, again) {
		t.Fatalf("re-encoded tables differ: %d vs %d bytes", len(blob), len(again))
	}
}

// TestTablesRestoredIDsPinResults is the point of the tables snapshot:
// a restored pipeline re-running the same engine produces the same
// interned IDs everywhere, hence a byte-identical snapshot again.
func TestTablesRestoredIDsPinResults(t *testing.T) {
	ts, an := buildPair(t, figure1Program(), figure1Track())
	res1 := runSwift(t, ts, an)
	blob := ts.EncodeTables()

	ts2, an2 := buildPair(t, figure1Program(), figure1Track())
	if err := ts2.RestoreTables(blob); err != nil {
		t.Fatalf("RestoreTables: %v", err)
	}
	res2 := runSwift(t, ts2, an2)
	if !bytes.Equal(blob, ts2.EncodeTables()) {
		t.Fatal("run after restore changed the tables")
	}
	// Summaries of both runs must encode identically too.
	s1 := ts.EncodeSummaries(nil, res1.BU, false)
	s2 := ts2.EncodeSummaries(nil, res2.BU, false)
	if !bytes.Equal(s1, s2) {
		t.Fatal("summary encodings differ between cold and restored runs")
	}
}

func TestRestoreTablesRejectsNonFresh(t *testing.T) {
	ts, an := buildPair(t, figure1Program(), figure1Track())
	runSwift(t, ts, an)
	blob := ts.EncodeTables()
	if err := ts.RestoreTables(blob); err == nil {
		t.Fatal("RestoreTables into a used pipeline succeeded")
	}
}

func TestRestoreTablesRejectsDigestMismatch(t *testing.T) {
	ts, an := buildPair(t, figure1Program(), figure1Track())
	runSwift(t, ts, an)
	blob := ts.EncodeTables()

	// Same property, different program shape → different frozen digest.
	other := ir.NewProgram("main")
	other.Add(&ir.Proc{Name: "main", Body: &ir.Seq{Cmds: []ir.Cmd{
		&ir.Prim{Kind: ir.New, Dst: "f", Site: "h1"},
		&ir.Prim{Kind: ir.TSCall, Dst: "f", Method: "open"},
	}}})
	ts2, _ := buildPair(t, other, map[string]*Property{"h1": FileProperty()})
	if err := ts2.RestoreTables(blob); err == nil {
		t.Fatal("RestoreTables accepted a snapshot from a different program")
	}
}

// TestTablesCodecRejectsCorruption: every truncation must error, and no
// byte flip may panic. (A flip can legitimately decode — the digest only
// guards the frozen construction — but it must never crash the decoder.)
func TestTablesCodecRejectsCorruption(t *testing.T) {
	ts, an := buildPair(t, figure1Program(), figure1Track())
	runSwift(t, ts, an)
	blob := ts.EncodeTables()

	restore := func(data []byte) error {
		ts2, _ := buildPair(t, figure1Program(), figure1Track())
		return ts2.RestoreTables(data)
	}
	for n := 0; n < len(blob); n += 1 + len(blob)/97 {
		if err := restore(blob[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	for i := 0; i < len(blob); i += 1 + len(blob)/97 {
		mut := bytes.Clone(blob)
		mut[i] ^= 0x5a
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("flip at byte %d panicked: %v", i, r)
				}
			}()
			restore(mut)
		}()
	}
}

func TestSummariesRoundTrip(t *testing.T) {
	ts, an := buildPair(t, figure1Program(), figure1Track())
	res := runSwift(t, ts, an)
	if len(res.BU) == 0 {
		t.Fatal("swift run produced no bottom-up summaries; fixture lost its point")
	}
	frontier := []string{"foo"}
	blob := ts.EncodeSummaries(frontier, res.BU, false)

	gotFrontier, eta, failed, err := ts.DecodeSummaries(blob)
	if err != nil {
		t.Fatalf("DecodeSummaries: %v", err)
	}
	if failed {
		t.Fatal("failed flag flipped on")
	}
	if len(gotFrontier) != 1 || gotFrontier[0] != "foo" {
		t.Fatalf("frontier = %v", gotFrontier)
	}
	if len(eta) != len(res.BU) {
		t.Fatalf("decoded %d procs, want %d", len(eta), len(res.BU))
	}
	again := ts.EncodeSummaries(gotFrontier, eta, failed)
	if !bytes.Equal(blob, again) {
		t.Fatal("re-encoded summaries differ")
	}

	// The failed flag round-trips as well.
	fblob := ts.EncodeSummaries(frontier, nil, true)
	if _, _, f2, err := ts.DecodeSummaries(fblob); err != nil || !f2 {
		t.Fatalf("failed-outcome round trip: failed=%v err=%v", f2, err)
	}
}

// TestSummariesEncodingIsInternOrderIndependent: the summary encoding is
// structural, so a pipeline with completely different intern IDs (a
// fresh one that never ran anything) decodes the blob and re-encodes it
// to identical bytes. This is what makes relaxed (no tables snapshot)
// summary reuse possible at all.
func TestSummariesEncodingIsInternOrderIndependent(t *testing.T) {
	ts, an := buildPair(t, figure1Program(), figure1Track())
	res := runSwift(t, ts, an)
	blob := ts.EncodeSummaries([]string{"foo"}, res.BU, false)

	ts2, _ := buildPair(t, figure1Program(), figure1Track())
	frontier, eta, failed, err := ts2.DecodeSummaries(blob)
	if err != nil {
		t.Fatalf("DecodeSummaries on fresh pipeline: %v", err)
	}
	if !bytes.Equal(blob, ts2.EncodeSummaries(frontier, eta, failed)) {
		t.Fatal("structural encoding depends on intern order")
	}
}

func TestSummariesCodecRejectsCorruption(t *testing.T) {
	ts, an := buildPair(t, figure1Program(), figure1Track())
	res := runSwift(t, ts, an)
	blob := ts.EncodeSummaries([]string{"foo"}, res.BU, false)
	for n := 0; n < len(blob); n += 1 + len(blob)/97 {
		if _, _, _, err := ts.DecodeSummaries(blob[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	for i := 0; i < len(blob); i += 1 + len(blob)/97 {
		mut := bytes.Clone(blob)
		mut[i] ^= 0x5a
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("flip at byte %d panicked: %v", i, r)
				}
			}()
			ts.DecodeSummaries(mut)
		}()
	}
}

// TestCodecRandomPrograms sweeps the round-trip properties over seeded
// random programs (the coincidence-test generator), so the codec is
// exercised well beyond the hand-built fixture: empty summaries,
// degenerate seed collapses, loops, recursion.
func TestCodecRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	track := func() map[string]*Property {
		file := FileProperty()
		return map[string]*Property{"s1": file, "s2": file}
	}
	cfg := core.DefaultConfig()
	cfg.K = 1
	cfg.Theta = 1
	cfg.MaxBUSteps = 2_000_000
	cfg.MaxRelations = 2_000_000

	for trial := 0; trial < 25; trial++ {
		prog := randomProgram(rng)
		ts, an := buildPair(t, prog, track())
		res, err := an.RunEngine("swift", ts.InitialState(), cfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !res.Completed() {
			continue // budget aborts are possible; codec needs completed tables
		}
		blob := ts.EncodeTables()
		sblob := ts.EncodeSummaries([]string{prog.Entry}, res.BU, false)

		ts2, an2 := buildPair(t, prog, track())
		if err := ts2.RestoreTables(blob); err != nil {
			t.Fatalf("trial %d: RestoreTables: %v", trial, err)
		}
		if !bytes.Equal(blob, ts2.EncodeTables()) {
			t.Fatalf("trial %d: tables round trip differs", trial)
		}
		res2, err := an2.RunEngine("swift", ts2.InitialState(), cfg)
		if err != nil || !res2.Completed() {
			t.Fatalf("trial %d: restored run: %v / %v", trial, err, res2.Err)
		}
		if !bytes.Equal(sblob, ts2.EncodeSummaries([]string{prog.Entry}, res2.BU, false)) {
			t.Fatalf("trial %d: summaries differ between cold and restored runs", trial)
		}

		// Structural independence on a fresh pipeline.
		ts3, _ := buildPair(t, prog, track())
		fr, eta, failed, err := ts3.DecodeSummaries(sblob)
		if err != nil {
			t.Fatalf("trial %d: fresh decode: %v", trial, err)
		}
		if !bytes.Equal(sblob, ts3.EncodeSummaries(fr, eta, failed)) {
			t.Fatalf("trial %d: structural summary encoding not intern-order independent", trial)
		}
	}
}
