package typestate

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"swift/internal/core"
	"swift/internal/ir"
)

// This file tests Theorem 3.1 (coincidence) end to end: on randomized
// programs, the hybrid analysis — for several (k, θ) settings — and the
// bottom-up baseline must compute exactly the same abstract states as the
// conventional top-down analysis, at every program point of every
// top-down-analyzed procedure and at the program exit.

// randomProgram generates a small well-formed program with sequencing,
// choice, loops, calls (including recursion) and every primitive form.
func randomProgram(rng *rand.Rand) *ir.Program {
	vars := []string{"a", "b", "c"}
	fields := []string{"f"}
	sites := []string{"s1", "s2", "s3"}
	methods := []string{"open", "close"}
	numProcs := 2 + rng.Intn(3)
	procName := func(i int) string { return fmt.Sprintf("p%d", i) }

	randVar := func() string { return vars[rng.Intn(len(vars))] }
	var randCmd func(depth, self int) ir.Cmd
	randPrim := func() ir.Cmd {
		switch rng.Intn(8) {
		case 0:
			return &ir.Prim{Kind: ir.New, Dst: randVar(), Site: sites[rng.Intn(len(sites))]}
		case 1:
			return &ir.Prim{Kind: ir.Copy, Dst: randVar(), Src: randVar()}
		case 2:
			return &ir.Prim{Kind: ir.Load, Dst: randVar(), Src: randVar(), Field: fields[0]}
		case 3:
			return &ir.Prim{Kind: ir.Store, Dst: randVar(), Field: fields[0], Src: randVar()}
		case 4, 5:
			return &ir.Prim{Kind: ir.TSCall, Dst: randVar(), Method: methods[rng.Intn(len(methods))]}
		case 6:
			return &ir.Prim{Kind: ir.Kill, Dst: randVar()}
		default:
			return &ir.Prim{Kind: ir.Nop}
		}
	}
	randCmd = func(depth, self int) ir.Cmd {
		if depth > 0 {
			switch rng.Intn(7) {
			case 0:
				return &ir.Choice{Alts: []ir.Cmd{randCmd(depth-1, self), randCmd(depth-1, self)}}
			case 1:
				return &ir.Loop{Body: randCmd(depth-1, self)}
			case 2:
				if self+1 < numProcs {
					// Call a later procedure, or occasionally recurse.
					callee := self + 1 + rng.Intn(numProcs-self-1)
					if rng.Intn(4) == 0 {
						callee = self
					}
					return &ir.Call{Callee: procName(callee)}
				}
			}
		}
		n := 1 + rng.Intn(3)
		seq := make([]ir.Cmd, n)
		for i := range seq {
			seq[i] = randPrim()
		}
		return &ir.Seq{Cmds: seq}
	}

	prog := ir.NewProgram(procName(0))
	for i := 0; i < numProcs; i++ {
		body := make([]ir.Cmd, 2+rng.Intn(3))
		for j := range body {
			body[j] = randCmd(2, i)
		}
		prog.Add(&ir.Proc{Name: procName(i), Body: &ir.Seq{Cmds: body}})
	}
	return prog
}

// statesAt collects the abstract states recorded at every node of the named
// procedure's CFG in one entry context, keyed by node ID. Filtering by
// context matters: a recursive entry procedure gains extra entry contexts
// under pure top-down analysis that summary-answering engines never create,
// and the coincidence theorem is a per-context statement.
func statesAt(an *core.Analysis[AbsID, RelID, FormulaID], res *core.Result[AbsID, RelID, FormulaID], proc string, in AbsID) map[int][]AbsID {
	out := map[int][]AbsID{}
	for _, n := range an.CFG.ByProc[proc].Nodes {
		out[n.ID] = res.TD.NodeStatesIn(n.ID, in)
	}
	return out
}

func sameStates(a, b map[int][]AbsID) (int, bool) {
	for id, sa := range a {
		sb := b[id]
		if len(sa) != len(sb) {
			return id, false
		}
		for i := range sa {
			if sa[i] != sb[i] {
				return id, false
			}
		}
	}
	return 0, true
}

func TestCoincidenceRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	configs := []struct {
		k, theta int
	}{
		{1, 1}, {1, 2}, {2, 1}, {3, 2}, {5, 3},
	}
	budget := core.DefaultConfig()
	budget.MaxBUSteps = 2_000_000
	budget.MaxRelations = 2_000_000

	for trial := 0; trial < 60; trial++ {
		prog := randomProgram(rng)
		file := FileProperty()
		ts, err := NewAnalysis(prog, map[string]*Property{"s1": file, "s2": file}, nil)
		if err != nil {
			t.Fatalf("trial %d: NewAnalysis: %v", trial, err)
		}
		an, err := core.NewAnalysis[AbsID, RelID, FormulaID](ts, prog)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		init := ts.InitialState()

		tdCfg := budget
		tdCfg.K = core.Unlimited
		td := an.RunTD(init, tdCfg)
		if !td.Completed() {
			t.Fatalf("trial %d: TD did not complete: %v", trial, td.Err)
		}
		tdMain := statesAt(an, td, prog.Entry, init)

		for _, c := range configs {
			cfg := budget
			cfg.K = c.k
			cfg.Theta = c.theta
			sw := an.RunSwift(init, cfg)
			if !sw.Completed() {
				t.Fatalf("trial %d k=%d θ=%d: SWIFT did not complete: %v", trial, c.k, c.theta, sw.Err)
			}
			if node, ok := sameStates(tdMain, statesAt(an, sw, prog.Entry, init)); !ok {
				t.Errorf("trial %d k=%d θ=%d: states at node %d of %s differ from TD\nprogram:\n%s",
					trial, c.k, c.theta, node, prog.Entry, ir.Print(prog))
			}
			// Every procedure SWIFT analyzed top-down must agree with TD at
			// each of its nodes on the contexts both analyzed.
			if sw.TDSummaryTotal() > td.TDSummaryTotal() {
				t.Errorf("trial %d k=%d θ=%d: SWIFT computed more TD summaries (%d) than TD (%d)",
					trial, c.k, c.theta, sw.TDSummaryTotal(), td.TDSummaryTotal())
			}
		}

		buCfg := budget
		buCfg.Theta = core.Unlimited
		bu := an.RunBU(init, buCfg)
		if errors.Is(bu.Err, core.ErrBudget) {
			continue // expected on occasional blow-up programs
		}
		if !bu.Completed() {
			t.Fatalf("trial %d: BU failed unexpectedly: %v", trial, bu.Err)
		}
		if node, ok := sameStates(tdMain, statesAt(an, bu, prog.Entry, init)); !ok {
			t.Errorf("trial %d: BU states at node %d of %s differ from TD\nprogram:\n%s",
				trial, node, prog.Entry, ir.Print(prog))
		}
	}
}

// TestPruningFallbackSoundness replays Section 2.4: with two parameters,
// pruning keeps only some of the applicable cases; SWIFT must then
// re-analyze top-down rather than answer from an incomplete summary. The
// observable guarantee is coincidence with TD even at θ=1 on a program
// where multiple relational cases apply to one state.
func TestPruningFallbackSoundness(t *testing.T) {
	// foo(f, g) { if (*) { f.open(); f.close(); } else { g.open(); } }
	prog := ir.NewProgram("main")
	prog.Add(&ir.Proc{Name: "foo", Body: &ir.Choice{Alts: []ir.Cmd{
		&ir.Seq{Cmds: []ir.Cmd{
			&ir.Prim{Kind: ir.TSCall, Dst: "f", Method: "open"},
			&ir.Prim{Kind: ir.TSCall, Dst: "f", Method: "close"},
		}},
		&ir.Prim{Kind: ir.TSCall, Dst: "g", Method: "open"},
	}}})
	// main drives foo with states where f,g ∈ a; f ∈ a only; g ∈ a only;
	// neither — enough incoming diversity to trigger at k=2.
	var cmds []ir.Cmd
	mk := func(site string, fSrc, gSrc string) []ir.Cmd {
		return []ir.Cmd{
			&ir.Prim{Kind: ir.New, Dst: "x", Site: site},
			&ir.Prim{Kind: ir.Copy, Dst: "f", Src: fSrc},
			&ir.Prim{Kind: ir.Copy, Dst: "g", Src: gSrc},
			&ir.Call{Callee: "foo"},
		}
	}
	cmds = append(cmds, mk("h1", "x", "x")...) // f,g both must-alias
	cmds = append(cmds, mk("h2", "x", "f")...)
	cmds = append(cmds, mk("h3", "x", "x")...)
	cmds = append(cmds, mk("h4", "f", "x")...) // g must-alias, f stale
	prog.Add(&ir.Proc{Name: "main", Body: &ir.Seq{Cmds: cmds}})

	file := FileProperty()
	track := map[string]*Property{"h1": file, "h2": file, "h3": file, "h4": file}
	ts, err := NewAnalysis(prog, track, nil)
	if err != nil {
		t.Fatal(err)
	}
	an, err := core.NewAnalysis[AbsID, RelID, FormulaID](ts, prog)
	if err != nil {
		t.Fatal(err)
	}
	init := ts.InitialState()
	td := an.RunTD(init, core.TDConfig())
	if !td.Completed() {
		t.Fatalf("TD: %v", td.Err)
	}
	for _, theta := range []int{1, 2, 3} {
		cfg := core.DefaultConfig()
		cfg.K = 2
		cfg.Theta = theta
		sw := an.RunSwift(init, cfg)
		if !sw.Completed() {
			t.Fatalf("SWIFT θ=%d: %v", theta, sw.Err)
		}
		if node, ok := sameStates(statesAt(an, td, "main", init), statesAt(an, sw, "main", init)); !ok {
			t.Errorf("θ=%d: states differ from TD at main node %d", theta, node)
		}
	}
}
