package typestate

import (
	"swift/internal/ir"
)

// This file implements core.TransCompiler for the type-state client.
//
// Trans (trans.go) re-derives a surprising amount of state-independent
// information on every call: access-path and allocation-site resolution by
// string, method-transformer lookup by name, and the rooted/field operand
// sets — all of which depend only on the primitive, not on the incoming
// state. CompileTrans hoists that work out of the per-state path once per
// primitive, and routes the remaining set algebra through the
// integer-pair-keyed setOpMemo (domain.go): distinct abstract states
// overwhelmingly share their a/nc set components, so the per-state work of
// a compiled transfer collapses to a couple of memo hits plus one
// abstract-state intern.
//
// The compiled function appends exactly what Trans(c, s) returns — same
// states, same order — so the solvers can use either form interchangeably;
// TestCompiledTransMatchesTrans checks the agreement exhaustively on the
// states reached by a run, and the cross-view equivalence tests in
// internal/core cover it end to end.

// CompileTrans implements core.TransCompiler[AbsID]. The returned function
// is safe for concurrent use (all caches are the sharded tables of the
// analysis); the slice it returns must be treated as read-only by callers
// that alias it elsewhere, exactly like the result of Trans. Compiled
// transfers are cached per primitive on the Analysis, so repeated solver
// runs (benchmarks, the hybrid engines' re-entries) pay the compile once.
func (a *Analysis) CompileTrans(c *ir.Prim) func(s AbsID, dst []AbsID) []AbsID {
	a.compiledMu.RLock()
	f := a.compiled[c]
	a.compiledMu.RUnlock()
	if f != nil {
		return f
	}
	f = a.compileTrans(c)
	a.compiledMu.Lock()
	if g := a.compiled[c]; g != nil {
		f = g // a racing compile won; both are equivalent
	} else {
		if a.compiled == nil {
			a.compiled = map[*ir.Prim]func(AbsID, []AbsID) []AbsID{}
		}
		a.compiled[c] = f
	}
	a.compiledMu.Unlock()
	return f
}

func (a *Analysis) compileTrans(c *ir.Prim) func(s AbsID, dst []AbsID) []AbsID {
	t := a.tab
	switch c.Kind {
	case ir.Nop, ir.Assert:
		return func(s AbsID, dst []AbsID) []AbsID { return append(dst, s) }

	case ir.New:
		rootedID := t.internSet(t.rooted(c.Dst))
		vp := a.mustPath(c.Dst, "")
		vpRel := t.relevant[vp]
		vpSet := t.internSet([]PathID{vp})
		site := t.siteIDs[c.Site]
		tracked := a.spawnsAt(site)
		var fresh AbsID
		if tracked {
			// The fresh-object state is entirely state-independent.
			fresh = t.internAbs(absState{
				h: site, t: t.propBase[t.sitePropOf[site]],
				a: vpSet, nc: rootedID,
			})
		}
		return func(s AbsID, dst []AbsID) []AbsID {
			st := t.absOf(s)
			nc := t.setUnionID(st.nc, rootedID)
			if vpRel {
				nc = t.setMinusID(nc, vpSet)
			}
			dst = append(dst, t.internAbs(absState{
				h: st.h, t: st.t,
				a:  t.setMinusID(st.a, rootedID),
				nc: nc,
			}))
			if tracked {
				dst = append(dst, fresh)
			}
			return dst
		}

	case ir.Copy:
		if c.Dst == c.Src {
			return func(s AbsID, dst []AbsID) []AbsID { return append(dst, s) }
		}
		return a.compileCopyLike(c.Dst, a.mustPath(c.Src, ""))

	case ir.Load:
		return a.compileCopyLike(c.Dst, a.mustPath(c.Src, c.Field))

	case ir.Store:
		src := a.mustPath(c.Src, "")
		srcRel := t.relevant[src]
		ffID := t.internSet(t.withField(c.Field))
		vf := a.mustPath(c.Dst, c.Field)
		vfRel := t.relevant[vf]
		vfSet := t.internSet([]PathID{vf})
		return func(s AbsID, dst []AbsID) []AbsID {
			st := t.absOf(s)
			inA := srcRel && t.setHas(st.a, src)
			inN := !srcRel || !t.setHas(st.nc, src)
			a2 := t.setMinusID(st.a, ffID)
			var nc2 SetID
			switch {
			case inA:
				if vfRel {
					a2 = t.setUnionID(a2, vfSet)
				}
				nc2 = t.setUnionID(st.nc, ffID)
			case inN:
				nc2 = st.nc
				if vfRel {
					nc2 = t.setMinusID(nc2, vfSet)
				}
			default:
				nc2 = t.setUnionID(st.nc, ffID)
			}
			return append(dst, t.internAbs(absState{h: st.h, t: st.t, a: a2, nc: nc2}))
		}

	case ir.TSCall:
		v := a.mustPath(c.Dst, "")
		vRel := t.relevant[v]
		mt := t.methodTransformer(c.Method)
		errT := t.errTrans
		mayRow := t.mayAlias[v]
		return func(s AbsID, dst []AbsID) []AbsID {
			st := t.absOf(s)
			switch {
			case vRel && t.setHas(st.a, v):
				g := t.applyTrans(mt, st.t)
				return append(dst, t.internAbs(absState{h: st.h, t: g, a: st.a, nc: st.nc}))
			case !vRel || !t.setHas(st.nc, v):
				return append(dst, s)
			case mayRow[st.h]:
				g := t.applyTrans(errT, st.t)
				return append(dst, t.internAbs(absState{h: st.h, t: g, a: st.a, nc: st.nc}))
			default:
				return append(dst, s)
			}
		}

	case ir.Kill:
		rootedID := t.internSet(t.rooted(c.Dst))
		return func(s AbsID, dst []AbsID) []AbsID {
			st := t.absOf(s)
			return append(dst, t.internAbs(absState{
				h: st.h, t: st.t,
				a:  t.setMinusID(st.a, rootedID),
				nc: t.setUnionID(st.nc, rootedID),
			}))
		}
	}
	// Unknown primitives fall back to Trans, which panics with the
	// canonical message.
	return func(s AbsID, dst []AbsID) []AbsID { return append(dst, a.Trans(c, s)...) }
}

// compileCopyLike is the compiled form of copyLike: v = src where src is a
// variable or one-field path resolved at compile time.
func (a *Analysis) compileCopyLike(dstVar string, src PathID) func(AbsID, []AbsID) []AbsID {
	t := a.tab
	srcRel := t.relevant[src]
	rootedID := t.internSet(t.rooted(dstVar))
	dp := a.mustPath(dstVar, "")
	dpRel := t.relevant[dp]
	dpSet := t.internSet([]PathID{dp})
	return func(s AbsID, dst []AbsID) []AbsID {
		st := t.absOf(s)
		inA := srcRel && t.setHas(st.a, src)
		inN := !srcRel || !t.setHas(st.nc, src)
		a2 := t.setMinusID(st.a, rootedID)
		nc2 := t.setUnionID(st.nc, rootedID)
		switch {
		case inA && dpRel:
			a2 = t.setUnionID(a2, dpSet)
		case inN && dpRel:
			nc2 = t.setMinusID(nc2, dpSet)
		}
		return append(dst, t.internAbs(absState{h: st.h, t: st.t, a: a2, nc: nc2}))
	}
}
