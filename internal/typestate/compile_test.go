package typestate

import (
	"math/rand"
	"reflect"
	"testing"

	"swift/internal/core"
	"swift/internal/ir"
)

// TestCompiledTransMatchesTrans checks the TransCompiler contract
// (internal/core/client.go): for every primitive of a program and every
// abstract state the top-down analysis reaches, the compiled transfer must
// append exactly what Trans returns — same states, same order — and must
// extend the destination slice it is given rather than replace it.
func TestCompiledTransMatchesTrans(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	file := FileProperty()
	for trial := 0; trial < 40; trial++ {
		prog := randomProgram(rng)
		ts, err := NewAnalysis(prog, map[string]*Property{"s1": file, "s2": file}, nil)
		if err != nil {
			t.Fatalf("trial %d: NewAnalysis: %v", trial, err)
		}
		an, err := core.NewAnalysis[AbsID, RelID, FormulaID](ts, prog)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		res := an.RunTD(ts.InitialState(), core.TDConfig())
		if !res.Completed() {
			t.Fatalf("trial %d: TD did not complete: %v", trial, res.Err)
		}
		states := res.TD.AllStates()
		if len(states) == 0 {
			t.Fatalf("trial %d: no reached states", trial)
		}
		prefix := []AbsID{states[0]}
		checked := 0
		for _, proc := range an.CFG.ByProc {
			for _, n := range proc.Nodes {
				for _, e := range n.Out {
					if e.IsCall() {
						continue
					}
					compiled := ts.CompileTrans(e.Prim)
					for _, s := range states {
						want := ts.Trans(e.Prim, s)
						got := compiled(s, nil)
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("trial %d: %v on state %d: compiled %v, Trans %v",
								trial, e.Prim, s, got, want)
						}
						// Append semantics: an existing prefix must survive.
						got2 := compiled(s, append([]AbsID(nil), prefix...))
						if len(got2) != 1+len(want) || got2[0] != prefix[0] ||
							!reflect.DeepEqual(got2[1:], want) {
							t.Fatalf("trial %d: %v on state %d: compiled clobbered dst: %v",
								trial, e.Prim, s, got2)
						}
						checked++
					}
				}
			}
		}
		if checked == 0 {
			t.Fatalf("trial %d: no primitive/state pairs checked", trial)
		}
	}
}

// TestCompileTransCached checks that compiling the same primitive twice
// returns the same cached function, so repeated solver runs do not redo the
// per-primitive resolution work.
func TestCompileTransCached(t *testing.T) {
	prog := ir.NewProgram("main")
	prog.Add(&ir.Proc{Name: "main", Body: &ir.Seq{Cmds: []ir.Cmd{
		&ir.Prim{Kind: ir.New, Dst: "a", Site: "s1"},
		&ir.Prim{Kind: ir.TSCall, Dst: "a", Method: "open"},
	}}})
	ts, err := NewAnalysis(prog, map[string]*Property{"s1": FileProperty()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	an, err := core.NewAnalysis[AbsID, RelID, FormulaID](ts, prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, proc := range an.CFG.ByProc {
		for _, n := range proc.Nodes {
			for _, e := range n.Out {
				if e.IsCall() {
					continue
				}
				f1 := ts.CompileTrans(e.Prim)
				f2 := ts.CompileTrans(e.Prim)
				if reflect.ValueOf(f1).Pointer() != reflect.ValueOf(f2).Pointer() {
					t.Fatalf("%v: CompileTrans not cached", e.Prim)
				}
			}
		}
	}
}
