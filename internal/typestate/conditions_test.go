package typestate

import (
	"math/rand"
	"testing"

	"swift/internal/core"
	"swift/internal/ir"
)

// This file property-tests the framework conditions of Figure 4 (C1–C3) on
// the type-state client: the symbolic operators rtrans, rcomp and wp are
// compared against their state-level specifications on randomized abstract
// states and relations.

// conditionsProgram mentions every primitive form so the path universe
// contains variables u, v, w and the field paths used by loads and stores.
func conditionsProgram() (*ir.Program, []*ir.Prim) {
	prims := []*ir.Prim{
		{Kind: ir.Nop},
		{Kind: ir.New, Dst: "u", Site: "h1"},
		{Kind: ir.New, Dst: "v", Site: "h2"},
		{Kind: ir.New, Dst: "w", Site: "h3"}, // untracked site
		{Kind: ir.Copy, Dst: "u", Src: "v"},
		{Kind: ir.Copy, Dst: "v", Src: "w"},
		{Kind: ir.Copy, Dst: "w", Src: "u"},
		{Kind: ir.Copy, Dst: "u", Src: "u"},
		{Kind: ir.Load, Dst: "u", Src: "v", Field: "f"},
		{Kind: ir.Load, Dst: "v", Src: "w", Field: "g"},
		{Kind: ir.Load, Dst: "w", Src: "w", Field: "f"},
		{Kind: ir.Store, Dst: "u", Field: "f", Src: "v"},
		{Kind: ir.Store, Dst: "w", Field: "g", Src: "u"},
		{Kind: ir.Store, Dst: "v", Field: "f", Src: "v"},
		{Kind: ir.TSCall, Dst: "u", Method: "open"},
		{Kind: ir.TSCall, Dst: "u", Method: "close"},
		{Kind: ir.TSCall, Dst: "v", Method: "hasNext"},
		{Kind: ir.TSCall, Dst: "v", Method: "next"},
		{Kind: ir.TSCall, Dst: "w", Method: "open"},
		{Kind: ir.Kill, Dst: "u"},
		{Kind: ir.Kill, Dst: "w"},
		{Kind: ir.Assert, Dst: "u", Method: "open"},
	}
	body := make([]ir.Cmd, len(prims))
	for i, p := range prims {
		body[i] = p
	}
	prog := ir.NewProgram("main")
	prog.Add(&ir.Proc{Name: "main", Body: &ir.Seq{Cmds: body}})
	return prog, prims
}

// conditionsAnalysis builds the analysis with a nontrivial deterministic
// may-alias oracle so both mayalias branches are exercised.
func conditionsAnalysis(t *testing.T) (*Analysis, []*ir.Prim) {
	t.Helper()
	prog, prims := conditionsProgram()
	oracle := OracleFunc(func(base, field, site string) bool {
		return (len(base)+2*len(field)+3*len(site))%3 != 0
	})
	ts, err := NewAnalysis(prog, map[string]*Property{
		"h1": FileProperty(),
		"h2": IteratorProperty(),
	}, oracle)
	if err != nil {
		t.Fatalf("NewAnalysis: %v", err)
	}
	return ts, prims
}

// randomState draws an arbitrary abstract state, including "junk" states
// (overlapping must/must-not sets, mismatched property states) on which the
// two analyses must still agree exactly.
func randomState(rng *rand.Rand, ts *Analysis) AbsID {
	t := ts.tab
	h := SiteID(rng.Intn(len(t.sites)))
	g := GState(rng.Intn(t.numG))
	var aset, nset []PathID
	for p := 0; p < t.numPaths(); p++ {
		if rng.Intn(4) == 0 {
			aset = append(aset, PathID(p))
		}
		if rng.Intn(4) == 0 {
			nset = append(nset, PathID(p))
		}
	}
	return t.internAbs(absState{h: h, t: g, a: t.internSet(aset), nc: t.internSet(nset)})
}

// relationPool grows a pool of relations by repeatedly pushing random
// primitives through RTrans starting from id#, plus constant relations and
// a few compositions — mirroring how relations arise during a real run.
func relationPool(rng *rand.Rand, ts *Analysis, prims []*ir.Prim, size int) []RelID {
	pool := []RelID{ts.Identity()}
	seen := map[RelID]bool{ts.Identity(): true}
	add := func(r RelID) {
		if !seen[r] {
			seen[r] = true
			pool = append(pool, r)
		}
	}
	for len(pool) < size {
		r := pool[rng.Intn(len(pool))]
		switch rng.Intn(6) {
		case 0, 1, 2:
			for _, o := range ts.RTrans(prims[rng.Intn(len(prims))], r) {
				add(o)
			}
		case 3:
			s := randomState(rng, ts)
			pre := ts.PreOf(pool[rng.Intn(len(pool))])
			add(ts.internRel(rel{kind: kConst, out: s, pre: pre}))
		default:
			r2 := pool[rng.Intn(len(pool))]
			for _, o := range ts.RComp(r, r2) {
				add(o)
			}
		}
	}
	return pool
}

func TestConditionC1(t *testing.T) {
	ts, prims := conditionsAnalysis(t)
	rng := rand.New(rand.NewSource(1))
	pool := relationPool(rng, ts, prims, 120)
	for i := 0; i < 4000; i++ {
		prim := prims[rng.Intn(len(prims))]
		r := pool[rng.Intn(len(pool))]
		s := randomState(rng, ts)
		if err := core.CheckC1[AbsID, RelID, FormulaID](ts, prim, r, s); err != nil {
			t.Fatalf("iteration %d (rel %s): %v", i, ts.RelString(r), err)
		}
	}
}

func TestConditionC2(t *testing.T) {
	ts, prims := conditionsAnalysis(t)
	rng := rand.New(rand.NewSource(2))
	pool := relationPool(rng, ts, prims, 120)
	for i := 0; i < 4000; i++ {
		r1 := pool[rng.Intn(len(pool))]
		r2 := pool[rng.Intn(len(pool))]
		s := randomState(rng, ts)
		if err := core.CheckC2[AbsID, RelID, FormulaID](ts, r1, r2, s); err != nil {
			t.Fatalf("iteration %d (%s ; %s): %v", i, ts.RelString(r1), ts.RelString(r2), err)
		}
	}
}

func TestConditionC3WPre(t *testing.T) {
	ts, prims := conditionsAnalysis(t)
	rng := rand.New(rand.NewSource(3))
	pool := relationPool(rng, ts, prims, 120)
	for i := 0; i < 4000; i++ {
		r := pool[rng.Intn(len(pool))]
		post := ts.PreOf(pool[rng.Intn(len(pool))])
		s := randomState(rng, ts)
		if err := core.CheckWPre[AbsID, RelID, FormulaID](ts, r, post, s); err != nil {
			t.Fatalf("iteration %d (rel %s, post %s): %v",
				i, ts.RelString(r), ts.FormulaString(post), err)
		}
	}
}

func TestPreconditionsDenoteDomains(t *testing.T) {
	ts, prims := conditionsAnalysis(t)
	rng := rand.New(rand.NewSource(4))
	pool := relationPool(rng, ts, prims, 120)
	for i := 0; i < 2000; i++ {
		r := pool[rng.Intn(len(pool))]
		s := randomState(rng, ts)
		if err := core.CheckPre[AbsID, RelID, FormulaID](ts, r, s); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
}

func TestIdentityRelation(t *testing.T) {
	ts, _ := conditionsAnalysis(t)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		s := randomState(rng, ts)
		if err := core.CheckIdentity[AbsID, RelID, FormulaID](ts, s); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
}

// TestSynthesizedTopDownAgrees cross-checks the hand-written Trans against
// the Section 5.1 synthesis trans(c)(σ) = γ(rtrans(c)(id#))(σ): they must
// coincide on every state (this is C1 specialized to id#).
func TestSynthesizedTopDownAgrees(t *testing.T) {
	ts, prims := conditionsAnalysis(t)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 3000; i++ {
		prim := prims[rng.Intn(len(prims))]
		s := randomState(rng, ts)
		direct := map[AbsID]bool{}
		for _, o := range ts.Trans(prim, s) {
			direct[o] = true
		}
		synth := core.SynthTopDown[AbsID, RelID, FormulaID](ts, prim, s)
		if len(synth) != len(direct) {
			t.Fatalf("%s on %s: synth %d states, direct %d", prim, ts.StateString(s), len(synth), len(direct))
		}
		for _, o := range synth {
			if !direct[o] {
				t.Fatalf("%s on %s: synth produced %s not in direct result", prim, ts.StateString(s), ts.StateString(o))
			}
		}
	}
}

// TestPreImpliesSound checks the entailment used by excl: whenever
// PreImplies(p, q) holds, every state satisfying p satisfies q.
func TestPreImpliesSound(t *testing.T) {
	ts, prims := conditionsAnalysis(t)
	rng := rand.New(rand.NewSource(7))
	pool := relationPool(rng, ts, prims, 150)
	var pres []FormulaID
	seen := map[FormulaID]bool{}
	for _, r := range pool {
		if f := ts.PreOf(r); !seen[f] {
			seen[f] = true
			pres = append(pres, f)
		}
	}
	for i := 0; i < 4000; i++ {
		p := pres[rng.Intn(len(pres))]
		q := pres[rng.Intn(len(pres))]
		if !ts.PreImplies(p, q) {
			continue
		}
		s := randomState(rng, ts)
		if ts.PreHolds(p, s) && !ts.PreHolds(q, s) {
			t.Fatalf("PreImplies(%s, %s) but state %s distinguishes them",
				ts.FormulaString(p), ts.FormulaString(q), ts.StateString(s))
		}
	}
}
