package typestate

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// This file implements the interned ground domains of the type-state
// analysis: access paths, path sets, global FSM states, type-state
// transformers, allocation sites, abstract states and precondition formulas.
// Everything is interned to dense integer IDs so the framework's sets and
// maps operate on ordered integers, and so equality is O(1).
//
// The runtime-mutated tables (path sets, transformers, abstract states,
// formulas) are backed by the sharded interners of shard.go, so a tables
// value IS safe for concurrent use once construction (NewAnalysis) has
// finished: interning new values only contends on one hash-selected lock
// stripe, and ID→value reads never lock. The construction-only tables
// (paths, sites, properties, the may-alias matrix, the rooted/field
// indexes) are frozen by NewAnalysis and read-only afterwards.

// PathID identifies an access path: a variable v or a one-field path v.f.
type PathID int32

// SetID identifies an interned, sorted, duplicate-free set of paths.
type SetID int32

// SiteID identifies an allocation site. Site 0 is the distinguished "none"
// site of the bootstrap abstract state, which tracks no object.
type SiteID int32

// GState is a global FSM state: 0 is the None state (no tracked object);
// the states of each property occupy a contiguous block after it.
type GState int32

// TransID identifies an interned type-state transformer ι: a total function
// GState → GState represented as a dense vector.
type TransID int32

// AbsID identifies an interned abstract state (h, t, a, n).
type AbsID int32

// FormulaID identifies an interned conjunction of precondition literals.
// Formula 0 is true (the empty conjunction).
type FormulaID int32

// path is the structural form of an access path.
type path struct {
	base  string
	field string // "" for a plain variable
}

func (p path) String() string {
	if p.field == "" {
		return p.base
	}
	return p.base + "." + p.field
}

// litKind enumerates precondition literal kinds. Literals constrain the
// incoming abstract state (σ0 in the paper's γ definitions).
type litKind int32

const (
	litInA litKind = iota // path ∈ must set (the paper's have)
	litNotInA
	litInN // path ∈ must-not set
	litNotInN
	litMay // mayalias(path, h) per the global may-alias oracle
	litNotMay
)

// literal packs a path and a kind into one ordered value.
type literal int32

func mkLit(p PathID, k litKind) literal { return literal(int32(p)<<3 | int32(k)) }
func (l literal) path() PathID          { return PathID(int32(l) >> 3) }
func (l literal) kind() litKind         { return litKind(int32(l) & 7) }

// negation pairs: kinds 2i and 2i+1 contradict each other on the same path.
func (l literal) negated() literal { return literal(int32(l) ^ 1) }

// absState is the structural form of an abstract state (h, t, a, n). The
// must set a is stored explicitly (it is small). The must-not set n is
// stored as its complement nc — the set of paths NOT known to differ from
// the object — because must-not sets are co-finite in practice: a freshly
// allocated object is must-not-aliased by every existing path (Fink et
// al.'s uniqueness), and the transfer functions keep that form closed.
type absState struct {
	h  SiteID
	t  GState
	a  SetID
	nc SetID // complement of the must-not set: p ∈ n ⟺ p ∉ nc
}

// inMustNot reports p ∈ n for a state.
func (t *tables) inMustNot(s absState, p PathID) bool { return !t.setHas(s.nc, p) }

// tables owns every interning table of one analysis instance. The four
// runtime-hot tables (sets, trans, abs, forms) and the two transformer
// memos are sharded for concurrent use; everything else is populated by
// NewAnalysis and immutable afterwards.
type tables struct {
	// paths (interned during construction only; lookups at runtime)
	paths    *interner[path, path]
	rootedOf map[string][]PathID // variable → sorted paths rooted at it
	fieldOf  map[string][]PathID // field → sorted paths carrying it

	// path sets, keyed by the canonical i32key encoding
	sets *interner[string, []PathID]
	// univSet is the set of all paths; it is the nc component of states
	// with an empty must-not set.
	univSet SetID

	// sites (construction-only)
	siteIDs    map[string]SiteID
	sites      []string
	sitePropOf []int // property index per site, -1 if untracked

	// properties and global states (construction-only)
	props    []*Property
	propBase []GState // first global state of each property
	numG     int
	propOfG  []int // property index per global state, -1 for None
	localOfG []State
	isErrorG []bool

	// transformers, keyed by the canonical i32key encoding of the vector
	trans       *interner[string, []GState]
	idTrans     TransID
	errTrans    TransID // per-property error; None stays None
	methodTrans *memoMap[string, TransID]
	composeMemo *memoMap[[2]TransID, TransID]

	// setOpMemo caches union/minus results on interned operand pairs, so
	// the compiled transfer path (compile.go) replaces the canonical
	// encode-and-hash of internSet with one integer-keyed lookup for
	// operand pairs it has seen before. Op results are deterministic, so
	// racing puts are benign (see memoMap).
	setOpMemo *memoMap[setOpKey, SetID]

	// abstract states
	abs *interner[absState, absState]

	// formulas (sorted literal conjunctions, keyed by i32key encoding)
	forms *interner[string, []literal]

	// may-alias oracle matrix: mayAlias[p][h]
	mayAlias [][]bool
	// relevant[p] reports whether path p may point to any tracked object.
	// Irrelevant paths are treated as must-not-aliased without case
	// splitting — the static type filter real Java type-state analyses
	// apply, and the reason the paper's dominant relational case is "the
	// identity function with a certain precondition".
	relevant []bool
}

// i32key encodes an int32 slice as a compact map key.
func i32key[T ~int32](xs []T) string {
	b := make([]byte, 4*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(x))
	}
	return string(b)
}

// ---- paths ----

func (t *tables) internPath(p path) PathID {
	return PathID(t.paths.intern(p, func() path { return p }))
}

func (t *tables) pathAt(id PathID) path { return t.paths.at(int32(id)) }

func (t *tables) numPaths() int { return t.paths.size() }

func (t *tables) pathString(p PathID) string { return t.pathAt(p).String() }

// ---- path sets ----

func (t *tables) internSet(sorted []PathID) SetID {
	key := i32key(sorted)
	return SetID(t.sets.intern(key, func() []PathID {
		cp := make([]PathID, len(sorted))
		copy(cp, sorted)
		return cp
	}))
}

func (t *tables) setElems(s SetID) []PathID { return t.sets.at(int32(s)) }

func (t *tables) setHas(s SetID, p PathID) bool {
	elems := t.setElems(s)
	lo, hi := 0, len(elems)
	for lo < hi {
		mid := (lo + hi) / 2
		if elems[mid] < p {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(elems) && elems[lo] == p
}

func (t *tables) setInsert(s SetID, p PathID) SetID {
	if t.setHas(s, p) {
		return s
	}
	elems := t.setElems(s)
	out := make([]PathID, 0, len(elems)+1)
	done := false
	for _, e := range elems {
		if !done && p < e {
			out = append(out, p)
			done = true
		}
		out = append(out, e)
	}
	if !done {
		out = append(out, p)
	}
	return t.internSet(out)
}

// setMinus removes every path in the sorted slice rm.
func (t *tables) setMinus(s SetID, rm []PathID) SetID {
	if len(rm) == 0 {
		return s
	}
	elems := t.setElems(s)
	out := make([]PathID, 0, len(elems))
	i := 0
	for _, e := range elems {
		for i < len(rm) && rm[i] < e {
			i++
		}
		if i < len(rm) && rm[i] == e {
			continue
		}
		out = append(out, e)
	}
	if len(out) == len(elems) {
		return s
	}
	return t.internSet(out)
}

func (t *tables) setUnion(a, b SetID) SetID {
	if a == b {
		return a
	}
	ea, eb := t.setElems(a), t.setElems(b)
	if len(ea) == 0 {
		return b
	}
	if len(eb) == 0 {
		return a
	}
	out := make([]PathID, 0, len(ea)+len(eb))
	i, j := 0, 0
	for i < len(ea) && j < len(eb) {
		switch {
		case ea[i] < eb[j]:
			out = append(out, ea[i])
			i++
		case eb[j] < ea[i]:
			out = append(out, eb[j])
			j++
		default:
			out = append(out, ea[i])
			i, j = i+1, j+1
		}
	}
	out = append(out, ea[i:]...)
	out = append(out, eb[j:]...)
	return t.internSet(out)
}

// setUnionElems unions a sorted path slice into a set.
func (t *tables) setUnionElems(s SetID, add []PathID) SetID {
	if len(add) == 0 {
		return s
	}
	return t.setUnion(s, t.internSet(add))
}

// setOpKey identifies one memoized binary set operation.
type setOpKey struct {
	op   int8 // opUnion or opMinus
	x, y SetID
}

const (
	opUnion int8 = iota
	opMinus
)

func hashSetOp(k setOpKey) uint64 {
	h := mix(uint64(fnvOffset), uint64(uint8(k.op)))
	h = mix(h, uint64(uint32(k.x)))
	return mix(h, uint64(uint32(k.y)))
}

// setUnionID is setUnion with the result memoized under the operand pair,
// for hot paths whose right operand is a fixed interned set.
func (t *tables) setUnionID(a, b SetID) SetID {
	if a == b {
		return a
	}
	key := setOpKey{op: opUnion, x: a, y: b}
	if id, ok := t.setOpMemo.get(key); ok {
		return id
	}
	id := t.setUnion(a, b)
	t.setOpMemo.put(key, id)
	return id
}

// setMinusID is setMinus with an interned subtrahend and the result
// memoized under the operand pair.
func (t *tables) setMinusID(s, rm SetID) SetID {
	key := setOpKey{op: opMinus, x: s, y: rm}
	if id, ok := t.setOpMemo.get(key); ok {
		return id
	}
	id := t.setMinus(s, t.setElems(rm))
	t.setOpMemo.put(key, id)
	return id
}

func (t *tables) setIntersect(a, b SetID) SetID {
	if a == b {
		return a
	}
	ea, eb := t.setElems(a), t.setElems(b)
	out := make([]PathID, 0, min(len(ea), len(eb)))
	i, j := 0, 0
	for i < len(ea) && j < len(eb) {
		switch {
		case ea[i] < eb[j]:
			i++
		case eb[j] < ea[i]:
			j++
		default:
			out = append(out, ea[i])
			i, j = i+1, j+1
		}
	}
	return t.internSet(out)
}

// rooted returns the sorted paths rooted at variable v (v itself and every
// v.f in the program's path universe).
func (t *tables) rooted(v string) []PathID { return t.rootedOf[v] }

// withField returns the sorted paths of the form _.f.
func (t *tables) withField(f string) []PathID { return t.fieldOf[f] }

// ---- co-sets ----

// coSet represents a possibly co-finite path set: the explicit set when Co
// is false, or the complement (universe minus Set) when Co is true. The keep
// components a0/n0 of relational transformers start as the full universe
// (id# keeps everything) and only ever shrink by removing small sets, so the
// complement representation keeps them small.
type coSet struct {
	Co  bool
	Set SetID
}

func (t *tables) coUniverse() coSet { return coSet{Co: true, Set: t.internSet(nil)} }

func (t *tables) coHas(c coSet, p PathID) bool {
	if c.Co {
		return !t.setHas(c.Set, p)
	}
	return t.setHas(c.Set, p)
}

// coMinus removes the sorted paths rm from the co-set.
func (t *tables) coMinus(c coSet, rm []PathID) coSet {
	if c.Co {
		s := c.Set
		for _, p := range rm {
			s = t.setInsert(s, p)
		}
		return coSet{Co: true, Set: s}
	}
	return coSet{Co: false, Set: t.setMinus(c.Set, rm)}
}

// coIntersect intersects two co-sets.
func (t *tables) coIntersect(a, b coSet) coSet {
	switch {
	case a.Co && b.Co:
		return coSet{Co: true, Set: t.setUnion(a.Set, b.Set)}
	case a.Co:
		return coSet{Co: false, Set: t.setMinus(b.Set, t.setElems(a.Set))}
	case b.Co:
		return coSet{Co: false, Set: t.setMinus(a.Set, t.setElems(b.Set))}
	default:
		return coSet{Co: false, Set: t.setIntersect(a.Set, b.Set)}
	}
}

// coIntersectSet intersects an explicit set with a co-set.
func (t *tables) coIntersectSet(s SetID, c coSet) SetID {
	if c.Co {
		return t.setMinus(s, t.setElems(c.Set))
	}
	return t.setIntersect(s, c.Set)
}

// applyMustNot maps a complement-represented must-not set through a
// transformer's keep/gen components: n_out = (n ∩ N0) ∪ N1, i.e.
// nc_out = (nc ∪ complement(N0)) ∖ N1. The keep component of a transformer
// is always co-finite (it starts as the universe in id# and only shrinks),
// which keeps the complement representation closed.
func (t *tables) applyMustNot(nc SetID, nK coSet, nG SetID) SetID {
	if !nK.Co {
		panic("typestate: transformer must-not keep set must be co-finite")
	}
	return t.setMinus(t.setUnion(nc, nK.Set), t.setElems(nG))
}

// ---- sites ----

func (t *tables) internSite(name string, propIdx int) SiteID {
	if id, ok := t.siteIDs[name]; ok {
		return id
	}
	id := SiteID(len(t.sites))
	t.siteIDs[name] = id
	t.sites = append(t.sites, name)
	t.sitePropOf = append(t.sitePropOf, propIdx)
	return id
}

// ---- transformers ----

func (t *tables) internTrans(vec []GState) TransID {
	return TransID(t.trans.intern(i32key(vec), func() []GState {
		cp := make([]GState, len(vec))
		copy(cp, vec)
		return cp
	}))
}

// applyTrans applies transformer ι to a global state.
func (t *tables) applyTrans(id TransID, g GState) GState { return t.trans.at(int32(id))[g] }

// compose returns after ∘ before (first before, then after), memoized.
func (t *tables) compose(after, before TransID) TransID {
	if before == t.idTrans {
		return after
	}
	if after == t.idTrans {
		return before
	}
	key := [2]TransID{after, before}
	if id, ok := t.composeMemo.get(key); ok {
		return id
	}
	av, bv := t.trans.at(int32(after)), t.trans.at(int32(before))
	out := make([]GState, len(bv))
	for i, mid := range bv {
		out[i] = av[mid]
	}
	id := t.internTrans(out)
	t.composeMemo.put(key, id)
	return id
}

// methodTransformer returns [m], the global transformer of method m: on each
// property that defines m it follows the property's table; on every other
// state (including None) it is the identity.
func (t *tables) methodTransformer(m string) TransID {
	if id, ok := t.methodTrans.get(m); ok {
		return id
	}
	vec := make([]GState, t.numG)
	for g := range vec {
		vec[g] = GState(g)
		pi := t.propOfG[g]
		if pi < 0 {
			continue
		}
		if tab, ok := t.props[pi].Methods[m]; ok {
			vec[g] = t.propBase[pi] + GState(tab[t.localOfG[g]])
		}
	}
	id := t.internTrans(vec)
	t.methodTrans.put(m, id)
	return id
}

// ---- abstract states ----

func (t *tables) internAbs(s absState) AbsID {
	return AbsID(t.abs.intern(s, func() absState { return s }))
}

func (t *tables) absOf(id AbsID) absState { return t.abs.at(int32(id)) }

// ---- formulas ----

// internFormula interns a sorted, duplicate-free literal conjunction.
func (t *tables) internFormula(sorted []literal) FormulaID {
	return FormulaID(t.forms.intern(i32key(sorted), func() []literal {
		cp := make([]literal, len(sorted))
		copy(cp, sorted)
		return cp
	}))
}

// formLits returns the literal conjunction interned under f.
func (t *tables) formLits(f FormulaID) []literal { return t.forms.at(int32(f)) }

// conj conjoins extra literals onto a formula, reporting ok=false when the
// result is contradictory (p ∈ a ∧ p ∉ a, etc.).
func (t *tables) conj(f FormulaID, extra ...literal) (FormulaID, bool) {
	if len(extra) == 0 {
		return f, true
	}
	lits := t.formLits(f)
	out := make([]literal, len(lits), len(lits)+len(extra))
	copy(out, lits)
	for _, l := range extra {
		pos := 0
		dup := false
		for pos < len(out) && out[pos] < l {
			pos++
		}
		if pos < len(out) && out[pos] == l {
			dup = true
		}
		if !dup {
			out = append(out, 0)
			copy(out[pos+1:], out[pos:])
			out[pos] = l
		}
	}
	// contradiction check: negation pairs are adjacent after sorting
	for i := 1; i < len(out); i++ {
		if out[i] == out[i-1].negated() {
			return f, false
		}
	}
	return t.internFormula(out), true
}

// conjFormulas conjoins two formulas.
func (t *tables) conjFormulas(f, g FormulaID) (FormulaID, bool) {
	if f == g {
		return f, true
	}
	return t.conj(f, t.formLits(g)...)
}

// implies reports whether formula p entails formula q: every literal of q
// occurs in p (sound and complete for conjunctions over independent
// literals).
func (t *tables) implies(p, q FormulaID) bool {
	lp, lq := t.formLits(p), t.formLits(q)
	i := 0
	for _, l := range lq {
		for i < len(lp) && lp[i] < l {
			i++
		}
		if i >= len(lp) || lp[i] != l {
			return false
		}
	}
	return true
}

// holds evaluates a formula on an abstract state.
func (t *tables) holds(f FormulaID, s absState) bool {
	for _, l := range t.formLits(f) {
		p := l.path()
		var v bool
		switch l.kind() {
		case litInA:
			v = t.setHas(s.a, p)
		case litNotInA:
			v = !t.setHas(s.a, p)
		case litInN:
			v = t.inMustNot(s, p)
		case litNotInN:
			v = !t.inMustNot(s, p)
		case litMay:
			v = t.mayAlias[p][s.h]
		case litNotMay:
			v = !t.mayAlias[p][s.h]
		}
		if !v {
			return false
		}
	}
	return true
}

// formulaString renders a formula for diagnostics.
func (t *tables) formulaString(f FormulaID) string {
	lits := t.formLits(f)
	if len(lits) == 0 {
		return "true"
	}
	var b strings.Builder
	for i, l := range lits {
		if i > 0 {
			b.WriteString(" ∧ ")
		}
		p := t.pathString(l.path())
		switch l.kind() {
		case litInA:
			fmt.Fprintf(&b, "have(%s)", p)
		case litNotInA:
			fmt.Fprintf(&b, "notHave(%s)", p)
		case litInN:
			fmt.Fprintf(&b, "mustNot(%s)", p)
		case litNotInN:
			fmt.Fprintf(&b, "notMustNot(%s)", p)
		case litMay:
			fmt.Fprintf(&b, "mayalias(%s,h)", p)
		case litNotMay:
			fmt.Fprintf(&b, "¬mayalias(%s,h)", p)
		}
	}
	return b.String()
}
